package apclassifier

import (
	"fmt"

	"apclassifier/internal/checkpoint"
	"apclassifier/internal/network"
)

// This file is the facade's warm-restart surface: capturing a running
// classifier into a checkpoint.Source, and rebuilding a Classifier from
// a decoded checkpoint without touching raw rules. The expensive work a
// cold New performs — predicate conversion, atomic-predicate
// computation, AP Tree construction — is exactly what the checkpoint
// already holds, so NewFromRestored only rewires the topology around
// the restored manager.

// CheckpointSource captures the classifier's published epoch plus the
// dataset and topology wiring into an encodable Source. The snapshot
// pins the classifier state, so encoding the result runs concurrently
// with queries; the dataset and wiring are read here, so callers must
// synchronize with rule updates exactly as Behavior's contract requires
// (the HTTP server takes its read lock around this call).
func (c *Classifier) CheckpointSource() *checkpoint.Source {
	wiring := make([]checkpoint.BoxWiring, len(c.Net.Boxes))
	for b, box := range c.Net.Boxes {
		w := checkpoint.BoxWiring{
			InACL:  box.InACL,
			Fwd:    make([]int32, len(box.Ports)),
			OutACL: make([]int32, len(box.Ports)),
		}
		for p := range box.Ports {
			w.Fwd[p] = box.Ports[p].Fwd
			w.OutACL[p] = box.Ports[p].OutACL
		}
		wiring[b] = w
	}
	return &checkpoint.Source{
		Snap:     c.Manager.Snapshot(),
		Dataset:  c.Dataset,
		Method:   c.Manager.Method(),
		Wiring:   wiring,
		DeltaSeq: c.deltaSeq.Load(),
	}
}

// NewFromRestored assembles a Classifier around a decoded checkpoint:
// the restored manager already answers queries, so all that remains is
// rebuilding the stage-2 topology from the embedded dataset and binding
// the checkpointed predicate IDs to it. No predicate is converted, no
// atom computed, no tree built — that asymmetry is the point of warm
// restart.
func NewFromRestored(res *checkpoint.Restored) (*Classifier, error) {
	ds := res.Dataset
	if len(res.Wiring) != len(ds.Boxes) {
		return nil, fmt.Errorf("apclassifier: checkpoint wires %d boxes, dataset has %d", len(res.Wiring), len(ds.Boxes))
	}
	c := &Classifier{
		Layout:  ds.Layout,
		Manager: res.Manager,
		Dataset: ds,
	}
	c.Net = network.New()
	c.PortPred = make([][]int32, len(ds.Boxes))
	for bi := range ds.Boxes {
		c.Net.AddBox(ds.Boxes[bi].Name, ds.Boxes[bi].NumPorts)
		w := res.Wiring[bi]
		if len(w.Fwd) != ds.Boxes[bi].NumPorts {
			return nil, fmt.Errorf("apclassifier: checkpoint wires %d ports on box %q, dataset has %d",
				len(w.Fwd), ds.Boxes[bi].Name, ds.Boxes[bi].NumPorts)
		}
		c.Net.Boxes[bi].InACL = w.InACL
		c.PortPred[bi] = append([]int32(nil), w.Fwd...)
		for pi := 0; pi < ds.Boxes[bi].NumPorts; pi++ {
			c.Net.Boxes[bi].Ports[pi].Fwd = w.Fwd[pi]
			c.Net.Boxes[bi].Ports[pi].OutACL = w.OutACL[pi]
		}
	}
	for _, l := range ds.Links {
		c.Net.Link(l.A, l.PA, l.B, l.PB)
	}
	for _, h := range ds.Hosts {
		c.Net.AttachHost(h.Box, h.Port, h.Name)
	}
	if flatDisabledByEnv() {
		c.Manager.SetFlatCompile(false)
	}
	c.env = &network.Env{Source: c.Manager}
	// Resume the firehose cursor: sequenced /rules/batch deliveries the
	// checkpointed classifier already applied stay acknowledged-only.
	c.deltaSeq.Store(res.DeltaSeq)
	return c, nil
}

// RestoreFile is the one-call warm restart: decode a checkpoint file
// and assemble the classifier around it.
func RestoreFile(path string) (*Classifier, error) {
	res, err := checkpoint.RestoreFile(path)
	if err != nil {
		return nil, err
	}
	return NewFromRestored(res)
}

// RestoreDir warm-restarts from the newest intact checkpoint in a
// managed directory, falling back past corrupt entries.
func RestoreDir(dir *checkpoint.Dir) (*Classifier, error) {
	res, err := dir.Restore()
	if err != nil {
		return nil, err
	}
	return NewFromRestored(res)
}
