//go:build !apdebug

package apclassifier

import (
	"apclassifier/internal/aptree"
	"apclassifier/internal/network"
)

// debugCheckCacheEpoch is free in release builds; see debug_on.go.
func debugCheckCacheEpoch(*network.BehaviorCache, *aptree.Snapshot) {}
