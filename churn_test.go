package apclassifier

import (
	"math/rand"
	"testing"

	"apclassifier/internal/aptree"
	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

// checkFlatAgainstPointer differentially probes the published epoch's
// compiled flat core against the pointer tree — boundary and random
// headers, single-packet and batched descent — as the churn-equivalence
// guard against stale flat compiles at epoch swaps.
func checkFlatAgainstPointer(t *testing.T, c *Classifier, ds *netgen.Dataset, rng *rand.Rand, batch int) {
	t.Helper()
	s := c.Manager.Snapshot()
	f := s.Flat()
	if f == nil {
		t.Fatalf("batch %d: published epoch carries no flat core", batch)
	}
	probes := boundaryFields(ds, rng, 1)
	for i := 0; i < 32; i++ {
		probes = append(probes, ds.RandomFields(rng))
	}
	pkts := make([][]byte, len(probes))
	for i, fl := range probes {
		pkts[i] = ds.PacketFromFields(fl)
		want, _ := s.ClassifyPointer(pkts[i])
		if got := f.Classify(pkts[i]); got != want {
			t.Fatalf("batch %d probe %d: flat atom %d != pointer atom %d",
				batch, i, got.AtomID, want.AtomID)
		}
	}
	outF := make([]*aptree.Node, len(pkts))
	outP := make([]*aptree.Node, len(pkts))
	s.ClassifyBatchWith(&aptree.BatchScratch{}, pkts, outF)
	s.ClassifyBatchPointerWith(&aptree.BatchScratch{}, pkts, outP)
	for i := range pkts {
		if outF[i] != outP[i] {
			t.Fatalf("batch %d probe %d: batched flat atom %d != pointer atom %d",
				batch, i, outF[i].AtomID, outP[i].AtomID)
		}
	}
}

// randomChurnACL builds a small ACL around a random destination prefix —
// enough structure to exercise the ACL arms of the delta pipeline without
// denying everything. Destination-only matches keep it compilable on the
// dst-only layouts (internet2, multitenant) as well as the five-tuple one.
func randomChurnACL(rng *rand.Rand) *rule.ACL {
	m := rule.MatchAll()
	m.Dst = rule.P(rng.Uint32(), 1+rng.Intn(8))
	return &rule.ACL{
		Rules:   []rule.ACLRule{{Match: m, Action: rule.Deny}},
		Default: rule.Permit,
	}
}

// churnChild derives a more-specific child of an existing rule in the
// box's table — the FIB churn idiom every churn experiment and test uses.
// ok is false when the box has no splittable rule.
func churnChild(tbl *rule.FwdTable, rng *rand.Rand) (rule.FwdRule, bool) {
	if len(tbl.Rules) == 0 {
		return rule.FwdRule{}, false
	}
	for try := 0; try < 16; try++ {
		parent := tbl.Rules[rng.Intn(len(tbl.Rules))]
		if parent.Prefix.Length >= 32 {
			continue
		}
		length := parent.Prefix.Length + 1 + rng.Intn(32-parent.Prefix.Length)
		return rule.FwdRule{
			Prefix: rule.P(parent.Prefix.Value|rng.Uint32()&^uint32(0xFFFFFFFF<<uint(32-parent.Prefix.Length)), length),
			Port:   parent.Port,
		}, true
	}
	return rule.FwdRule{}, false
}

// TestChurnDeltasMatchFreshBuild is the churn-equivalence differential
// satellite: on every netgen dataset it drives a live classifier through
// randomized interleaved delta batches — forwarding adds and removes,
// port and ingress ACL installs and clears — via the batched
// ApplyRuleDeltas pipeline (cone-scoped predicate recomputation plus
// leaf-local atom split/merge), then builds a second classifier cold from
// the mutated dataset and requires the two to be behaviorally
// indistinguishable on boundary and random headers. The incrementally
// maintained tree must equal the from-scratch refinement, and both must
// agree with the rule-table simulator on deliveries. The live tree's leaf
// partition is audited after every batch.
func TestChurnDeltasMatchFreshBuild(t *testing.T) {
	for name, ds := range diffDatasets() {
		t.Run(name, func(t *testing.T) {
			c, err := New(ds, Options{})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(46))
			var installed []RuleDelta // synthetic adds, replayed as removes

			for batch := 0; batch < 12; batch++ {
				n := 1 + rng.Intn(4)
				deltas := make([]RuleDelta, 0, n)
				for k := 0; k < n; k++ {
					box := rng.Intn(len(ds.Boxes))
					spec := &ds.Boxes[box]
					switch op := rng.Intn(6); {
					case op <= 2: // bias toward FIB adds: the split-heavy path
						if r, ok := churnChild(&spec.Fwd, rng); ok {
							deltas = append(deltas, RuleDelta{Op: OpAddFwdRule, Box: box, Rule: r})
							installed = append(installed, RuleDelta{Op: OpRemoveFwdRule, Box: box, Prefix: r.Prefix})
						}
					case op == 3: // FIB removes: the merge-heavy path
						if len(installed) > 0 {
							j := rng.Intn(len(installed))
							deltas = append(deltas, installed[j])
							installed = append(installed[:j], installed[j+1:]...)
						} else if len(spec.Fwd.Rules) > 0 {
							p := spec.Fwd.Rules[rng.Intn(len(spec.Fwd.Rules))].Prefix
							deltas = append(deltas, RuleDelta{Op: OpRemoveFwdRule, Box: box, Prefix: p})
						}
					case op == 4:
						var acl *rule.ACL
						if rng.Intn(3) > 0 {
							acl = randomChurnACL(rng)
						}
						deltas = append(deltas, RuleDelta{Op: OpSetPortACL, Box: box, Port: rng.Intn(spec.NumPorts), ACL: acl})
					default:
						var acl *rule.ACL
						if rng.Intn(3) > 0 {
							acl = randomChurnACL(rng)
						}
						deltas = append(deltas, RuleDelta{Op: OpSetInACL, Box: box, ACL: acl})
					}
				}
				if err := c.ApplyRuleDeltas(deltas); err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				if err := c.Manager.Tree().CheckLeafPartition(); err != nil {
					t.Fatalf("batch %d broke the leaf partition: %v", batch, err)
				}
				// Every delta publish recompiles the flat core for the new
				// epoch; check it against the pointer tree immediately so a
				// stale compile is caught at the batch that introduced it,
				// not after all twelve.
				checkFlatAgainstPointer(t, c, ds, rng, batch)
			}

			// Cold rebuild from the mutated dataset: the full refinement the
			// incremental engine must have tracked exactly.
			fresh, err := New(ds, Options{})
			if err != nil {
				t.Fatal(err)
			}

			probes := boundaryFields(ds, rng, 3)
			for i := 0; i < 200; i++ {
				probes = append(probes, ds.RandomFields(rng))
			}
			for i, f := range probes {
				pkt := ds.PacketFromFields(f)
				ingress := rng.Intn(len(ds.Boxes))
				bl := c.Behavior(ingress, pkt)
				bf := fresh.Behavior(ingress, pkt)
				if bl.String() != bf.String() {
					t.Fatalf("probe %d from box %d:\n churned %s\n fresh   %s", i, ingress, bl, bf)
				}
				want := ds.Simulate(ingress, f)
				var got []string
				for _, del := range bl.Deliveries {
					got = append(got, del.Host)
				}
				if !hostsEqual(sortedHosts(want.Delivered), sortedHosts(got)) {
					t.Fatalf("probe %d from box %d: oracle delivers %v, churned walk delivers %v",
						i, ingress, want.Delivered, got)
				}
			}
		})
	}
}
