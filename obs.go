package apclassifier

import (
	"time"

	"apclassifier/internal/header"
	"apclassifier/internal/network"
	"apclassifier/internal/obs"
)

// SetTraceSink installs (or, with nil, removes) a trace ring that
// Behavior and BehaviorWith record per-query stage timings into. The
// hook contract keeps the query path lock-free: when no sink is set a
// query pays exactly one atomic pointer load; when one is set, recording
// happens after the answer is computed, under the ring's own mutex,
// never touching classifier state. Traces from concurrent queries
// interleave in arrival order.
func (c *Classifier) SetTraceSink(r *obs.TraceRing) { c.sink.Store(r) }

// TraceSink returns the installed trace ring, or nil.
func (c *Classifier) TraceSink() *obs.TraceRing { return c.sink.Load() }

// RegisterMetrics registers this classifier's derived metrics — values
// computed at scrape time from the published snapshot and the striped
// visit counters, costing the query path nothing — into reg (typically
// obs.Default). A process hosting several classifiers calls this on the
// one /metrics should describe; re-registration rebinds, newest wins.
func (c *Classifier) RegisterMetrics(reg *obs.Registry) {
	m := c.Manager
	reg.CounterFunc("apc_aptree_classify_total",
		"Stage-1 classifications served, derived at scrape time from the striped visit counters (no query-path work; see DESIGN §7 for the retired-epoch undercount caveat).",
		m.TotalClassifications)
	reg.GaugeFunc("apc_aptree_atoms",
		"Atomic predicates (leaves) in the published AP Tree.",
		func() float64 { return float64(m.Snapshot().Tree().NumLeaves()) })
	reg.GaugeFunc("apc_aptree_predicates_live",
		"Live (non-tombstoned) predicates in the published epoch.",
		func() float64 { return float64(m.NumLive()) })
	reg.GaugeFunc("apc_aptree_avg_depth",
		"Mean leaf depth of the published AP Tree.",
		func() float64 { return m.Snapshot().Tree().AverageDepth() })
	reg.GaugeFunc("apc_aptree_max_depth",
		"Maximum leaf depth of the published AP Tree.",
		func() float64 { return float64(m.Snapshot().Tree().MaxDepth()) })
	reg.GaugeFunc("apc_aptree_version",
		"Published reconstruction epoch.",
		func() float64 { return float64(m.Version()) })
	reg.GaugeFunc("apc_aptree_updates_since_swap",
		"Tree updates applied since the last reconstruction swap.",
		func() float64 { return float64(m.UpdatesSinceSwap()) })
	reg.GaugeFunc("apc_bdd_live_nodes",
		"Live BDD nodes in the published epoch's frozen view.",
		func() float64 { return float64(m.Snapshot().View().LiveNodes()) })
	reg.GaugeFunc("apc_bdd_live_mem_bytes",
		"Estimated bytes of live BDD state in the published epoch.",
		func() float64 { return float64(m.Snapshot().View().LiveMemBytes()) })
	reg.GaugeFunc("apc_flat_enabled",
		"Whether the published epoch carries a compiled flat classify core (0 when disabled via APC_FLAT=0 or SetFlatCompile).",
		func() float64 {
			if m.Snapshot().Flat() != nil {
				return 1
			}
			return 0
		})
}

// traceQuery runs one pinned two-stage query with stage timing and
// records it into ring. Factored out of Behavior/BehaviorWith so both
// share one definition of the stage boundaries.
func (c *Classifier) traceQuery(ring *obs.TraceRing, w *network.Walker, ingress int, pkt header.Packet) *network.Behavior {
	t0 := time.Now()
	s := c.Manager.Snapshot()
	t1 := time.Now()
	leaf, version := s.Classify(pkt)
	t2 := time.Now()
	b := c.behaviorVia(c.cacheFor(s), w, s, ingress, pkt, leaf, false)
	t3 := time.Now()
	ring.Record(obs.QueryTrace{
		Start:    t0,
		Ingress:  ingress,
		Atom:     int(leaf.AtomID),
		Depth:    int(leaf.Depth),
		Visits:   int(leaf.Depth) + 1, // nodes touched by the descent, leaf included
		Version:  version,
		PinNs:    t1.Sub(t0).Nanoseconds(),
		ClassNs:  t2.Sub(t1).Nanoseconds(),
		WalkNs:   t3.Sub(t2).Nanoseconds(),
		Hops:     len(b.Edges),
		Delivers: len(b.Deliveries),
		Drops:    len(b.Drops),
		Rewrites: b.Rewrites,
	})
	return b
}
