// Package apclassifier is a control-plane tool for network-wide packet
// behavior identification, reproducing "Practical Network-Wide Packet
// Behavior Identification by AP Classifier" (Wang, Qian, Yu, Yang, Lam;
// CoNEXT 2015 / ToN 2017).
//
// Given the data-plane state of a network — forwarding tables and ACLs on
// every box — a Classifier answers, for any packet header and ingress box,
// the packet's complete network-wide behavior: the path (or multicast
// tree) it takes, where it is delivered, and where and why it is dropped.
//
// Queries run in two stages. Stage 1 classifies the packet to its atomic
// predicate by searching the AP Tree, a binary decision tree over the
// network's predicates whose construction order is optimized to minimize
// average search depth. Stage 2 walks the topology using the atomic
// predicate's membership bits — one bit per predicate — without touching a
// single BDD.
//
// Basic use:
//
//	ds := netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: 0.05})
//	c, err := apclassifier.New(ds, apclassifier.Options{})
//	...
//	pkt := c.Layout.NewPacket()
//	c.Layout.Set(pkt, "dstIP", 0x0A000001)
//	b := c.Behavior(ingressBox, pkt)
//	fmt.Println(b)
package apclassifier

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"

	"apclassifier/internal/aptree"
	"apclassifier/internal/bdd"
	"apclassifier/internal/header"
	"apclassifier/internal/netgen"
	"apclassifier/internal/network"
	"apclassifier/internal/obs"
	"apclassifier/internal/predicate"
	"apclassifier/internal/rule"
)

// Method re-exports the AP Tree construction methods.
type Method = aptree.Method

// Construction methods.
const (
	MethodOrder  = aptree.MethodOrder
	MethodRandom = aptree.MethodRandom
	MethodQuick  = aptree.MethodQuick
	MethodOAPT   = aptree.MethodOAPT
)

// Options configures Classifier construction.
type Options struct {
	// Method selects the AP Tree construction algorithm; the zero value
	// selects MethodOAPT, the paper's optimized construction. (The plain
	// fixed-order construction is available through TreeInput +
	// aptree.Build for experiments, not through the facade.)
	Method Method
	// Weights, if non-nil, holds per-atom query weights for the
	// distribution-aware construction (§V-D). Most callers instead query
	// for a while and call ReconstructWeighted.
	// (Weights indexes atoms of the initial build; advanced use only.)
	Weights []float64
	// SkipGC keeps intermediate BDD nodes after construction. Default
	// false: a mark-sweep pass reclaims conversion scratch space.
	SkipGC bool
}

// Classifier is the compiled form of a dataset: predicates, atoms, the AP
// Tree behind a reconstruction manager, and the topology for stage 2.
type Classifier struct {
	Layout  *header.Layout
	Manager *aptree.Manager
	Net     *network.Network
	Dataset *netgen.Dataset

	// PortPred[b][p] is the predicate ID of box b's port-p forwarding
	// predicate, or network.NoPred when the port never forwards.
	PortPred [][]int32

	env *network.Env

	// sink, when non-nil, receives per-query stage traces from Behavior
	// and BehaviorWith; see SetTraceSink for the hook contract.
	sink atomic.Pointer[obs.TraceRing]

	// bcache is the behavior cache of the currently published epoch,
	// installed lazily by the first query of each epoch and keyed to its
	// snapshot by pointer identity; see cacheFor. Queries pinned to a
	// retired epoch find a mismatch and simply walk uncached, so the
	// pointer never needs explicit invalidation.
	bcache atomic.Pointer[network.BehaviorCache]

	// deltaSeq is the sequence number of the last applied sequenced
	// rule-delta batch (ApplyRuleDeltasSeq); checkpoints record it so a
	// restored classifier resumes the firehose idempotently.
	deltaSeq atomic.Uint64
}

// New compiles a dataset: converts every forwarding table and ACL to
// predicates, computes atomic predicates, builds the AP Tree, and wires
// the topology.
func New(ds *netgen.Dataset, opts Options) (*Classifier, error) {
	if opts.Method == aptree.MethodRandom {
		return nil, fmt.Errorf("apclassifier: MethodRandom is for experiments; use TreeInput with aptree.Build")
	}
	if opts.Method == aptree.MethodOrder {
		opts.Method = aptree.MethodOAPT
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("apclassifier: invalid dataset: %w", err)
	}
	c := &Classifier{Layout: ds.Layout, Dataset: ds}
	d := bdd.New(ds.Layout.Bits())
	reg := aptree.NewRegistry()

	dstField := "dstIP"
	if _, ok := ds.Layout.FieldByName(dstField); !ok {
		return nil, fmt.Errorf("apclassifier: layout lacks %q field", dstField)
	}

	// Convert forwarding tables: one predicate per non-empty output port.
	c.PortPred = make([][]int32, len(ds.Boxes))
	for bi := range ds.Boxes {
		box := &ds.Boxes[bi]
		preds := predicate.PortPredicates(d, ds.Layout, dstField, &box.Fwd, box.NumPorts)
		c.PortPred[bi] = make([]int32, box.NumPorts)
		for pi, p := range preds {
			if p == bdd.False {
				c.PortPred[bi][pi] = network.NoPred
				continue
			}
			d.Retain(p)
			c.PortPred[bi][pi] = reg.Add(p)
		}
	}

	// Convert ACLs.
	type aclRef struct {
		box, port int // port == -1 for box ingress ACLs
		id        int32
	}
	var aclRefs []aclRef
	for bi := range ds.Boxes {
		box := &ds.Boxes[bi]
		// Sorted port order, not map order: predicate registry IDs fix the
		// atom numbering, and a sharded fleet (internal/cluster) relies on
		// independent builds of one dataset agreeing bit for bit.
		ports := make([]int, 0, len(box.PortACL))
		for pi := range box.PortACL {
			ports = append(ports, pi)
		}
		sort.Ints(ports)
		for _, pi := range ports {
			p := predicate.ACLPredicate(d, ds.Layout, box.PortACL[pi])
			d.Retain(p)
			aclRefs = append(aclRefs, aclRef{bi, pi, reg.Add(p)})
		}
		if box.InACL != nil {
			p := predicate.ACLPredicate(d, ds.Layout, box.InACL)
			d.Retain(p)
			aclRefs = append(aclRefs, aclRef{bi, -1, reg.Add(p)})
		}
	}

	// Atoms and tree.
	live := reg.LiveIDs()
	refs := make([]bdd.Ref, len(live))
	ids := make([]int, len(live))
	for i, id := range live {
		refs[i] = reg.Ref(id)
		ids[i] = int(id)
	}
	atoms := predicate.ComputeMapped(d, refs, ids, reg.NumIDs())
	tree := aptree.Build(aptree.Input{
		D:       d,
		Preds:   reg.Refs(),
		Live:    live,
		Atoms:   atoms,
		Weights: opts.Weights,
	}, opts.Method)
	// Reclaim conversion scratch before the manager publishes its first
	// snapshot: once a frozen view of the DD is out, the DD must never be
	// garbage collected again (the GC-at-swap rule; see bdd.View).
	if !opts.SkipGC {
		d.GC()
	}
	c.Manager = aptree.NewManagerWith(d, reg, tree, opts.Method)
	if flatDisabledByEnv() {
		c.Manager.SetFlatCompile(false)
	}

	// Topology.
	c.Net = network.New()
	for bi := range ds.Boxes {
		c.Net.AddBox(ds.Boxes[bi].Name, ds.Boxes[bi].NumPorts)
		for pi := 0; pi < ds.Boxes[bi].NumPorts; pi++ {
			c.Net.Boxes[bi].Ports[pi].Fwd = c.PortPred[bi][pi]
		}
	}
	for _, ar := range aclRefs {
		if ar.port < 0 {
			c.Net.Boxes[ar.box].InACL = ar.id
		} else {
			c.Net.Boxes[ar.box].Ports[ar.port].OutACL = ar.id
		}
	}
	for _, l := range ds.Links {
		c.Net.Link(l.A, l.PA, l.B, l.PB)
	}
	for _, h := range ds.Hosts {
		c.Net.AttachHost(h.Box, h.Port, h.Name)
	}

	c.env = &network.Env{Source: c.Manager}
	return c, nil
}

// flatDisabledByEnv reports the APC_FLAT=0 escape hatch: operators set it
// to serve stage 1 from the pointer tree instead of the compiled flat
// core — the rollback lever if a flat-compile bug ever ships. Read at
// classifier construction; flip at runtime via Manager.SetFlatCompile.
func flatDisabledByEnv() bool { return os.Getenv("APC_FLAT") == "0" }

// Env returns the stage-2 environment (classification, liveness); useful
// for driving network.Behavior directly or attaching middleboxes.
func (c *Classifier) Env() *network.Env { return c.env }

// TreeInput recomputes the atomic predicates of the live predicate set and
// returns a build input suitable for constructing additional AP Trees over
// the same predicates — the experiment harness uses it to compare
// construction methods. The classifier must be quiescent (no concurrent
// updates or reconstructions) while the input and trees built from it are
// in use, because they share the live DD.
func (c *Classifier) TreeInput() aptree.Input {
	m := c.Manager
	d := m.DD()
	live := m.LiveIDs()
	refs := make([]bdd.Ref, len(live))
	ids := make([]int, len(live))
	maxID := int32(0)
	for i, id := range live {
		refs[i] = m.Ref(id)
		ids[i] = int(id)
		if id > maxID {
			maxID = id
		}
	}
	atoms := predicate.ComputeMapped(d, refs, ids, int(maxID)+1)
	preds := make([]bdd.Ref, maxID+1)
	for i, id := range live {
		preds[id] = refs[i]
	}
	return aptree.Input{D: d, Preds: preds, Live: live, Atoms: atoms}
}

// Classify runs stage 1: it returns the AP Tree leaf (atomic predicate)
// for the packet. It acquires no lock.
func (c *Classifier) Classify(pkt header.Packet) *aptree.Node {
	leaf, _ := c.Manager.Classify(pkt)
	return leaf
}

// Behavior runs both stages: it classifies the packet and computes its
// network-wide behavior from the given ingress box. The whole query is
// pinned to one snapshot epoch and acquires no lock; it runs safely
// concurrent with updates and reconstructions. Deterministic walks are
// memoized per (ingress, atom) in the epoch's behavior cache, so repeated
// queries in the same traffic class skip stage 2 entirely; the returned
// behavior may be that shared cached value and must be treated as
// read-only.
func (c *Classifier) Behavior(ingress int, pkt header.Packet) *network.Behavior {
	if ring := c.sink.Load(); ring != nil {
		return c.traceQuery(ring, nil, ingress, pkt)
	}
	s := c.Manager.Snapshot()
	leaf, _ := s.Classify(pkt)
	return c.behaviorVia(c.cacheFor(s), nil, s, ingress, pkt, leaf, false)
}

// cacheFor resolves the behavior cache for queries pinned to s: the
// published epoch's cache when s is (still) the published snapshot,
// creating and installing it on first use; nil when s is a retired epoch,
// whose queries walk uncached rather than thrash the live table. The
// install races benignly — CompareAndSwap serializes writers, and a
// loser that cannot return a cache matching s returns nil, which is
// always safe (the next query self-heals the pointer).
func (c *Classifier) cacheFor(s *aptree.Snapshot) *network.BehaviorCache {
	bc := c.bcache.Load()
	if bc != nil && bc.Epoch() == s {
		return bc
	}
	if c.Manager.Snapshot() != s {
		return nil
	}
	fresh := network.NewBehaviorCache(s, len(c.Net.Boxes))
	if c.bcache.CompareAndSwap(bc, fresh) {
		return fresh
	}
	if bc = c.bcache.Load(); bc != nil && bc.Epoch() == s {
		return bc
	}
	return nil
}

// behaviorVia is the one stage-2 pipeline every query path — single
// packet, batch, traced, snapshot-pinned — funnels through: consult the
// epoch's behavior cache, walk on a miss (through the caller's Walker
// scratch when given), and memoize the walk if it was deterministic.
// With persist set the result never aliases Walker scratch, the form
// batch queries need (all results of a batch must be valid at once).
func (c *Classifier) behaviorVia(bc *network.BehaviorCache, w *network.Walker, s *aptree.Snapshot, ingress int, pkt header.Packet, leaf *aptree.Node, persist bool) *network.Behavior {
	debugCheckCacheEpoch(bc, s)
	if bc != nil {
		if b := bc.Lookup(ingress, leaf.AtomID); b != nil {
			return b
		}
	}
	var b *network.Behavior
	if w != nil {
		b = w.BehaviorPinned(s, ingress, pkt, leaf)
		if persist || (bc != nil && b.Deterministic()) {
			b = b.Clone()
		}
	} else {
		b = c.Net.Behavior(&network.Env{Source: s}, ingress, pkt, leaf)
	}
	if bc != nil && b.Deterministic() {
		bc.Store(ingress, leaf.AtomID, b)
	}
	return b
}

// PinForVerify captures one consistent verification input: the published
// epoch together with a deep copy of the topology as of that epoch.
// Rule-delta batches mutate c.Net only inside the manager's write-locked
// Update callback, so taking the pin and the copy under the manager's
// read lock guarantees the pair is mutually consistent — no delta can
// land between the snapshot load and the topology clone. The result is
// immutable and stays valid under any amount of later churn; it is what
// verify.New builds its Analyzer from.
func (c *Classifier) PinForVerify() (*aptree.Snapshot, *network.Network) {
	var snap *aptree.Snapshot
	var net *network.Network
	c.Manager.ReadPinned(func(s *aptree.Snapshot) {
		snap = s
		net = c.Net.Clone()
	})
	return snap, net
}

// NewWalker returns a reusable stage-2 traverser bound to this classifier,
// for allocation-free hot query loops. One Walker per goroutine.
func (c *Classifier) NewWalker() *network.Walker {
	return network.NewWalker(c.Net, c.env)
}

// BehaviorWith runs both stages using the caller's Walker, pinned to one
// snapshot epoch like Behavior; the result is read-only and valid until
// the Walker's next query (cache hits return the longer-lived shared
// behavior, but callers should assume the Walker-scratch lifetime).
func (c *Classifier) BehaviorWith(w *network.Walker, ingress int, pkt header.Packet) *network.Behavior {
	if ring := c.sink.Load(); ring != nil {
		return c.traceQuery(ring, w, ingress, pkt)
	}
	s := c.Manager.Snapshot()
	leaf, _ := s.Classify(pkt)
	return c.behaviorVia(c.cacheFor(s), w, s, ingress, pkt, leaf, false)
}

// NumPredicates reports the number of live predicates.
func (c *Classifier) NumPredicates() int { return c.Manager.NumLive() }

// NumAtoms reports the number of leaves (atomic predicates) of the
// published tree.
func (c *Classifier) NumAtoms() int { return c.Manager.Snapshot().Tree().NumLeaves() }

// AverageDepth reports the published tree's mean leaf depth.
func (c *Classifier) AverageDepth() float64 { return c.Manager.Snapshot().Tree().AverageDepth() }

// MemBytes estimates the memory footprint of the classifier state: BDD
// store (predicates + atoms + tree labels share it), membership vectors
// and tree nodes. It reads the published snapshot, so it is safe
// concurrent with updates.
func (c *Classifier) MemBytes() int {
	s := c.Manager.Snapshot()
	tree := s.Tree()
	mem := s.View().MemBytes()
	perLeaf := 64 // node struct
	mem += tree.NumLeaves() * (perLeaf + (tree.NumPreds()+7)/8)
	mem += (tree.NumLeaves() - 1) * perLeaf // internal nodes
	return mem
}

// Reconstruct rebuilds the AP Tree (optionally distribution-aware) and
// swaps it in; safe concurrently with queries and updates.
func (c *Classifier) Reconstruct(weighted bool) { c.Manager.Reconstruct(weighted) }

// AddFwdRule installs a forwarding rule on a box and updates the AP Tree
// in real time through the delta pipeline: the table mutation reports its
// LPM cone, only the port predicates whose covering set changed are
// recomputed (and only inside the cone region), and each swap runs the
// atom split/merge path — the rule-update-to-predicate-change conversion
// of §VI-A made incremental end to end. See ApplyRuleDeltas for batches.
func (c *Classifier) AddFwdRule(box int, r rule.FwdRule) {
	if err := c.ApplyRuleDeltas([]RuleDelta{{Op: OpAddFwdRule, Box: box, Rule: r}}); err != nil {
		panic(err)
	}
}

// RemoveFwdRule removes a forwarding rule (by exact prefix) from a box and
// updates the AP Tree in real time via the delta pipeline; the atoms the
// rule's predicates refined are merged back immediately rather than
// tombstoned until the next Reconstruct.
func (c *Classifier) RemoveFwdRule(box int, p rule.Prefix) bool {
	removed := false
	for _, r := range c.Dataset.Boxes[box].Fwd.Rules {
		if r.Prefix == p {
			removed = true
			break
		}
	}
	if !removed {
		return false
	}
	if err := c.ApplyRuleDeltas([]RuleDelta{{Op: OpRemoveFwdRule, Box: box, Prefix: p}}); err != nil {
		panic(err)
	}
	return true
}

// SetPortACL installs, replaces, or (with nil) removes the egress ACL of a
// port, converting it to a predicate and updating the AP Tree in real time.
// Like the rule-level updates, callers must externally synchronize with
// Behavior.
func (c *Classifier) SetPortACL(box, port int, acl *rule.ACL) {
	if err := c.ApplyRuleDeltas([]RuleDelta{{Op: OpSetPortACL, Box: box, Port: port, ACL: acl}}); err != nil {
		panic(err)
	}
}

// SetInACL installs, replaces, or (with nil) removes a box's ingress ACL.
func (c *Classifier) SetInACL(box int, acl *rule.ACL) {
	if err := c.ApplyRuleDeltas([]RuleDelta{{Op: OpSetInACL, Box: box, ACL: acl}}); err != nil {
		panic(err)
	}
}

// ReconvertBox recomputes every port predicate of a box from scratch and
// swaps the changed ones, tombstoning replaced IDs until the next
// Reconstruct. This is the pre-delta update path, kept as the baseline the
// churn benchmark (and EXPERIMENTS.md) compares the delta pipeline
// against; production callers should use ApplyRuleDeltas or the rule-level
// mutators, which touch only the cone a change actually affects.
func (c *Classifier) ReconvertBox(box int) {
	spec := &c.Dataset.Boxes[box]
	c.Manager.Update(func(tx *aptree.Tx) {
		preds := predicate.PortPredicates(tx.DD(), c.Layout, "dstIP", &spec.Fwd, spec.NumPorts)
		for pi := 0; pi < spec.NumPorts; pi++ {
			oldID := c.PortPred[box][pi]
			oldRef := bdd.False
			if oldID != network.NoPred {
				oldRef = tx.Ref(oldID)
			}
			if preds[pi] == oldRef {
				continue
			}
			newID := network.NoPred
			if oldID != network.NoPred {
				tx.Delete(oldID)
			}
			if preds[pi] != bdd.False {
				newID = tx.Add(preds[pi])
			}
			c.PortPred[box][pi] = newID
			c.Net.Boxes[box].Ports[pi].Fwd = newID
		}
	})
}
