package apclassifier

import (
	"math/rand"
	"testing"

	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

func TestWhatIfFwdRuleDetectsBlackhole(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 14, RuleScale: 0.01})
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))

	// Build probes from currently delivered flows.
	var probes []FlowProbe
	for len(probes) < 10 {
		f := ds.RandomFields(rng)
		ing := rng.Intn(len(ds.Boxes))
		if c.Behavior(ing, ds.PacketFromFields(f)).Delivered("") {
			probes = append(probes, FlowProbe{Ingress: ing, Fields: f})
		}
	}

	// Hypothetical: blackhole the first probe's destination on its
	// ingress box. The what-if must flag at least that probe.
	victim := probes[0]
	changes := c.WhatIfFwdRule(victim.Ingress, rule.FwdRule{
		Prefix: rule.P(victim.Fields.Dst, 32),
		Port:   rule.Drop,
	}, probes)
	found := false
	for _, ch := range changes {
		if ch.Probe == victim {
			found = true
			if !ch.DeliveryChange {
				t.Fatal("blackhole must be a delivery change")
			}
			if ch.After.Delivered("") {
				t.Fatal("after-behavior should not deliver")
			}
		}
	}
	if !found {
		t.Fatalf("what-if missed the blackholed probe (changes: %d)", len(changes))
	}

	// Rollback: state unchanged — every probe behaves as before, and the
	// dataset holds no trace of the hypothetical rule.
	for _, p := range probes {
		if !c.Behavior(p.Ingress, ds.PacketFromFields(p.Fields)).Delivered("") {
			t.Fatal("what-if leaked state: probe no longer delivered")
		}
	}
	for _, r := range ds.Boxes[victim.Ingress].Fwd.Rules {
		if r.Prefix == rule.P(victim.Fields.Dst, 32) {
			t.Fatal("hypothetical rule still installed")
		}
	}
}

func TestWhatIfNoEffectRuleReportsNothing(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 15, RuleScale: 0.01})
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	var probes []FlowProbe
	for i := 0; i < 10; i++ {
		probes = append(probes, FlowProbe{Ingress: rng.Intn(len(ds.Boxes)), Fields: ds.RandomFields(rng)})
	}
	// A rule for entirely unrelated address space (240/8 unused) cannot
	// change any probe... unless a probe randomly lands there; use a
	// prefix guaranteed untouched by RandomFields' bases and check.
	changes := c.WhatIfFwdRule(0, rule.FwdRule{Prefix: rule.P(0xF0000000, 8), Port: rule.Drop}, probes)
	for _, ch := range changes {
		if ch.Probe.Fields.Dst>>24 != 0xF0 {
			t.Fatalf("unrelated rule changed probe %+v", ch.Probe)
		}
	}
}

func TestWhatIfWithExistingSamePrefixRule(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 16, RuleScale: 0.01})
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	box := 0
	// Pick a rule that is the LPM winner for its own base address, so a
	// same-prefix override actually changes the forwarding decision.
	var existing rule.FwdRule
	found := false
	for _, r := range ds.Boxes[box].Fwd.Rules {
		best := -1
		for _, o := range ds.Boxes[box].Fwd.Rules {
			if o.Prefix.Matches(r.Prefix.Value) && o.Prefix.Length > best {
				best = o.Prefix.Length
			}
		}
		if best == r.Prefix.Length && r.Port != rule.Drop {
			existing, found = r, true
			break
		}
	}
	if !found {
		t.Fatal("no LPM-winning rule found")
	}
	probe := FlowProbe{Ingress: box, Fields: rule.Fields{Dst: existing.Prefix.Value}}
	beforeStr := c.Behavior(box, ds.PacketFromFields(probe.Fields)).String()

	// Hypothetical rule with the SAME prefix but dropping: must take
	// effect during the what-if...
	changes := c.WhatIfFwdRule(box, rule.FwdRule{Prefix: existing.Prefix, Port: rule.Drop}, []FlowProbe{probe})
	if len(changes) == 0 {
		t.Fatal("same-prefix override not observed")
	}
	// ...and the original rule must be back afterwards.
	afterStr := c.Behavior(box, ds.PacketFromFields(probe.Fields)).String()
	if beforeStr != afterStr {
		t.Fatalf("rollback incomplete: %q -> %q", beforeStr, afterStr)
	}
	count := 0
	for _, r := range ds.Boxes[box].Fwd.Rules {
		if r.Prefix == existing.Prefix {
			count++
			if r.Port != existing.Port {
				t.Fatal("restored rule has wrong port")
			}
		}
	}
	if count != 1 {
		t.Fatalf("expected exactly 1 restored rule, got %d", count)
	}
}
