package apclassifier

import (
	"math/rand"
	"sort"
	"testing"

	"apclassifier/internal/baseline"
	"apclassifier/internal/bdd"
	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

// diffDatasets enumerates every netgen generator at test-friendly scale.
func diffDatasets() map[string]*netgen.Dataset {
	return map[string]*netgen.Dataset{
		"internet2":   netgen.Internet2Like(netgen.Config{Seed: 41, RuleScale: 0.01}),
		"stanford":    netgen.StanfordLike(netgen.Config{Seed: 42, RuleScale: 0.003}),
		"multitenant": netgen.MultiTenantLike(4, 3, 43),
	}
}

func diffPrefixMask(length int) uint32 {
	if length == 0 {
		return 0
	}
	return ^uint32(0) << uint(32-length)
}

// boundaryFields builds headers that sit exactly on classification edges:
// the first and last address of installed prefixes, the addresses one
// before and one past each prefix, the all-zero and all-one destinations,
// and port/proto extremes (which straddle ACL range boundaries on the
// five-tuple datasets).
func boundaryFields(ds *netgen.Dataset, rng *rand.Rand, rulesPerBox int) []rule.Fields {
	var out []rule.Fields
	add := func(dst uint32) {
		out = append(out, rule.Fields{
			Src:     rng.Uint32(),
			Dst:     dst,
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: uint16(rng.Intn(65536)),
			Proto:   []uint8{6, 17, 1, 47}[rng.Intn(4)],
		})
	}
	add(0)
	add(^uint32(0))
	for bi := range ds.Boxes {
		rules := ds.Boxes[bi].Fwd.Rules
		n := rulesPerBox
		if len(rules) < n {
			n = len(rules)
		}
		for _, r := range rules[:n] {
			lo := r.Prefix.Value
			hi := r.Prefix.Value | ^diffPrefixMask(r.Prefix.Length)
			add(lo)
			add(hi)
			add(lo - 1) // wraps to all-ones for lo==0: still a valid probe
			add(hi + 1)
		}
	}
	// Port and proto extremes on a fixed routed-ish destination: ACL rules
	// on the five-tuple datasets carry port ranges and proto equalities.
	base := out[len(out)/2].Dst
	for _, sp := range []uint16{0, 65535} {
		for _, dp := range []uint16{0, 65535} {
			for _, pr := range []uint8{0, 6, 255} {
				out = append(out, rule.Fields{Src: rng.Uint32(), Dst: base, SrcPort: sp, DstPort: dp, Proto: pr})
			}
		}
	}
	return out
}

func sortedHosts(hosts []string) []string {
	out := append([]string(nil), hosts...)
	sort.Strings(out)
	return out
}

func hostsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClassifyMatchesBaseline is the differential satellite: for every
// netgen dataset it pushes random and boundary headers through the AP
// Tree and checks, against the linear-scan baseline oracles, that
//
//   - the leaf's atom BDD actually contains the packet, and is the very
//     atom APLinear finds by scanning the atom list (hash-consing makes
//     equal functions identical refs, so this is pointer-strength);
//   - the leaf's membership vector agrees with PScan evaluating every
//     live predicate directly on the packet;
//   - the stage-2 behavior walk delivers to exactly the hosts the
//     rule-table simulator and the per-box forwarding simulation reach,
//     and drops in the same places.
func TestClassifyMatchesBaseline(t *testing.T) {
	for name, ds := range diffDatasets() {
		t.Run(name, func(t *testing.T) {
			c, err := New(ds, Options{})
			if err != nil {
				t.Fatal(err)
			}
			d := c.Manager.DD()
			in := c.TreeInput()
			ap := &baseline.APLinear{D: d, Atoms: in.Atoms}
			ids := c.Manager.LiveIDs()
			refs := make([]bdd.Ref, len(ids))
			capBits := 0
			for i, id := range ids {
				refs[i] = c.Manager.Ref(id)
				if int(id) >= capBits {
					capBits = int(id) + 1
				}
			}
			ps := baseline.NewPScan(d, ids, refs, capBits)
			sim := baseline.ManagerEnv(c.Manager, c.Net)

			rng := rand.New(rand.NewSource(44))
			probes := boundaryFields(ds, rng, 4)
			for i := 0; i < 200; i++ {
				probes = append(probes, ds.RandomFields(rng))
			}

			for i, f := range probes {
				pkt := ds.PacketFromFields(f)
				leaf := c.Classify(pkt)

				// Stage 1: atomic predicate agreement.
				if !d.EvalBits(leaf.BDD, pkt) {
					t.Fatalf("probe %d: packet not contained in its own leaf atom", i)
				}
				apIdx := ap.Classify(pkt)
				if apIdx < 0 {
					t.Fatalf("probe %d: APLinear found no atom", i)
				}
				if in.Atoms.List[apIdx] != leaf.BDD {
					t.Fatalf("probe %d: tree atom ref %d != APLinear atom ref %d",
						i, leaf.BDD, in.Atoms.List[apIdx])
				}
				member := ps.Member(pkt)
				for _, id := range ids {
					if member.Get(int(id)) != leaf.Member.Get(int(id)) {
						t.Fatalf("probe %d: PScan and tree disagree on predicate %d", i, id)
					}
				}

				// Stage 2: behavior walk agreement.
				ingress := rng.Intn(len(ds.Boxes))
				want := ds.Simulate(ingress, f)
				b := c.Behavior(ingress, pkt)
				var got []string
				for _, del := range b.Deliveries {
					got = append(got, del.Host)
				}
				if !hostsEqual(sortedHosts(want.Delivered), sortedHosts(got)) {
					t.Fatalf("probe %d from box %d: oracle delivers %v, walk delivers %v",
						i, ingress, want.Delivered, got)
				}
				fs := sim.Behavior(ingress, pkt)
				if !hostsEqual(sortedHosts(fs.Delivered), sortedHosts(got)) {
					t.Fatalf("probe %d from box %d: FwdSim delivers %v, walk delivers %v",
						i, ingress, fs.Delivered, got)
				}
				if !want.Looped {
					// Loop-free traffic must die in the same boxes. (On a
					// loop, the simulators count drop sites differently.)
					wd := append([]int(nil), want.DropBoxes...)
					var gd []int
					for _, dr := range b.Drops {
						gd = append(gd, dr.Box)
					}
					sort.Ints(wd)
					sort.Ints(gd)
					if len(wd) != len(gd) {
						t.Fatalf("probe %d from box %d: oracle drops at %v, walk drops at %v",
							i, ingress, wd, gd)
					}
					for j := range wd {
						if wd[j] != gd[j] {
							t.Fatalf("probe %d from box %d: oracle drops at %v, walk drops at %v",
								i, ingress, wd, gd)
						}
					}
				}
			}
		})
	}
}
