package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"apclassifier"
	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

// RuleUpdateCost goes beyond the paper's Fig 13, which times adding a
// ready-made predicate: here the unit of work is a data-plane *rule*
// insertion, including the rule-to-predicate-change conversion of §VI-A
// (recomputing the affected box's port predicates, tombstoning the changed
// ones, and splicing the replacements into the live tree).
func (e *Env) RuleUpdateCost(inserts int) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Rule-level update cost (beyond the paper) — %d random rule inserts", inserts),
		Header: []string{"network", "p50 (ms)", "p90 (ms)", "p99 (ms)", "max (ms)"},
		Notes: []string{
			"each insert converts the whole box table to predicates and updates the tree; cost grows with per-box rule count",
		},
	}
	for _, name := range e.networks() {
		_, ds0 := e.network(name)
		// Fresh classifier: rule updates mutate the dataset.
		var ds *netgen.Dataset
		if name == "internet2" {
			ds = netgen.Internet2Like(netgen.Config{Seed: 2, RuleScale: e.Scale.I2})
		} else {
			ds = netgen.StanfordLike(netgen.Config{Seed: 2, RuleScale: e.Scale.SF})
		}
		_ = ds0
		c, err := apclassifier.New(ds, apclassifier.Options{})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(31))
		var lat []time.Duration
		for i := 0; i < inserts; i++ {
			box := rng.Intn(len(ds.Boxes))
			spec := &ds.Boxes[box]
			// A new more-specific of an existing prefix toward a random
			// existing port — a realistic FIB churn event.
			parent := spec.Fwd.Rules[rng.Intn(len(spec.Fwd.Rules))]
			for parent.Prefix.Length >= 32 {
				parent = spec.Fwd.Rules[rng.Intn(len(spec.Fwd.Rules))]
			}
			length := parent.Prefix.Length + 1 + rng.Intn(32-parent.Prefix.Length)
			newRule := rule.FwdRule{
				Prefix: rule.P(parent.Prefix.Value|rng.Uint32()&^uint32(0xFFFFFFFF<<uint(32-parent.Prefix.Length)), length),
				Port:   parent.Port,
			}
			start := time.Now()
			c.AddFwdRule(box, newRule)
			lat = append(lat, time.Since(start))
		}
		s := sortedDurations(lat)
		t.AddRow(name,
			fmt.Sprintf("%.2f", percentile(s, 0.50)*1e3),
			fmt.Sprintf("%.2f", percentile(s, 0.90)*1e3),
			fmt.Sprintf("%.2f", percentile(s, 0.99)*1e3),
			fmt.Sprintf("%.2f", percentile(s, 1.0)*1e3))
	}
	return t
}
