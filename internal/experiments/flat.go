package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"apclassifier/internal/aptree"
)

// flatBatch is the batch size the flat experiment drives both group-by-
// branch descents at — the mid point of the batch experiment's sweep.
const flatBatch = 256

// FlatVsPointer measures stage 1 alone: the compiled flat classify core
// against the pointer descent of the same published epoch, single-packet
// and batched, over a uniform atom-sampled trace on both networks. The
// lowering mix columns say how much of each tree the compiler got out of
// the BDD (mask = minterm byte-compare, table = truth-table bit test,
// cube = union-of-rules cube list, bdd = frozen-view fallback) — the flat win tracks that mix.
func (e *Env) FlatVsPointer(traceLen int, minDur time.Duration) *Table {
	t := &Table{
		Title: "Flat classify core — compiled array engine vs pointer descent (Mqps)",
		Header: []string{"network", "nodes", "mask", "table", "cube", "bdd",
			"flat", "pointer", "speedup", "batch flat", "batch ptr", "batch speedup"},
		Notes: []string{
			"single-packet: one stage-1 descent per query, visit accounting off on both engines",
			fmt.Sprintf("%d-packet batches through each engine's group-by-branch descent", flatBatch),
		},
	}
	for _, name := range e.networks() {
		c, ds := e.network(name)
		in := e.treeInput(name)
		rng := rand.New(rand.NewSource(240))
		pkts := uniformTrace(in, ds.Layout.Bytes(), traceLen, rng)

		s := c.Manager.Snapshot()
		f := s.Flat()
		st := f.Stats()
		flat := measureQPS(func(p []byte) { f.Classify(p) }, pkts, minDur)
		ptr := measureQPS(func(p []byte) { s.ClassifyPointer(p) }, pkts, minDur)

		sc := &aptree.BatchScratch{}
		out := make([]*aptree.Node, flatBatch)
		bflat := measureChunkQPS(pkts, flatBatch, minDur, func(chunk [][]byte) {
			s.ClassifyBatchWith(sc, chunk, out[:len(chunk)])
		})
		bptr := measureChunkQPS(pkts, flatBatch, minDur, func(chunk [][]byte) {
			s.ClassifyBatchPointerWith(sc, chunk, out[:len(chunk)])
		})

		t.AddRow(name, fmt.Sprint(st.Nodes), fmt.Sprint(st.MaskNodes),
			fmt.Sprint(st.TableNodes), fmt.Sprint(st.CubeNodes), fmt.Sprint(st.FallbackNodes),
			mqps(flat), mqps(ptr), fmt.Sprintf("%.2fx", flat/ptr),
			mqps(bflat), mqps(bptr), fmt.Sprintf("%.2fx", bflat/bptr))
	}
	return t
}

// measureChunkQPS drives run over the trace in chunks of size for at least
// minDur and reports per-packet throughput.
func measureChunkQPS(pkts [][]byte, size int, minDur time.Duration, run func(chunk [][]byte)) float64 {
	start := time.Now()
	n := 0
	for time.Since(start) < minDur {
		for i := 0; i < len(pkts); i += size {
			end := min(i+size, len(pkts))
			run(pkts[i:end])
			n += end - i
		}
	}
	return float64(n) / time.Since(start).Seconds()
}
