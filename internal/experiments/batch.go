package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"apclassifier"
	"apclassifier/internal/network"
)

// flowLen is how many consecutive packets a bursty trace repeats per
// flow. Real query streams (data-plane taps, invariant sweeps over
// prefixes) are bursty: consecutive packets often share a header. The
// batched pipeline collapses such runs to one tree descent.
const flowLen = 16

// BatchThroughput measures the batched query pipeline against the
// single-packet path on both networks, over a uniform trace (every packet
// an independent atom sample) and a bursty one (flows of flowLen repeated
// headers). One deterministic middlebox rides on the highest-degree box
// so stage 2 is non-trivial but cacheable — the configuration the batch
// acceptance numbers in EXPERIMENTS.md quote.
func (e *Env) BatchThroughput(sizes []int, traceLen int, minDur time.Duration) *Table {
	t := &Table{
		Title:  "Batched queries — throughput vs single-packet path (Mqps)",
		Header: []string{"network", "trace", "single"},
		Notes: []string{
			fmt.Sprintf("bursty trace repeats each header %d× (flow locality); uniform trace samples atoms independently", flowLen),
			"one Type-1 middlebox attached; both paths share the per-epoch behavior cache",
		},
	}
	for _, size := range sizes {
		t.Header = append(t.Header, fmt.Sprintf("batch %d", size))
	}
	t.Header = append(t.Header, fmt.Sprintf("speedup @%d", sizes[len(sizes)-1]))

	for _, name := range e.networks() {
		_, ds := e.network(name)
		mb := newMBBench(ds, traceLen)
		mb.attachDeterministic(1)

		rng := rand.New(rand.NewSource(230))
		in := mb.c.TreeInput()
		uniformPkts := uniformTrace(in, ds.Layout.Bytes(), traceLen, rng)
		uniformIng := make([]int, len(uniformPkts))
		for i := range uniformIng {
			uniformIng[i] = rng.Intn(len(ds.Boxes))
		}
		burstyPkts := make([][]byte, 0, traceLen)
		burstyIng := make([]int, 0, traceLen)
		for len(burstyPkts) < traceLen {
			atom := rng.Intn(in.Atoms.N())
			pkt := in.Atoms.SamplePacket(atom, ds.Layout.Bytes(), rng)
			ing := rng.Intn(len(ds.Boxes))
			for k := 0; k < flowLen && len(burstyPkts) < traceLen; k++ {
				burstyPkts = append(burstyPkts, pkt)
				burstyIng = append(burstyIng, ing)
			}
		}

		for _, tr := range []struct {
			label string
			pkts  [][]byte
			ing   []int
		}{{"bursty", burstyPkts, burstyIng}, {"uniform", uniformPkts, uniformIng}} {
			single := measureSingleQPS(mb.c, tr.ing, tr.pkts, minDur)
			row := []string{name, tr.label, mqps(single)}
			var last float64
			for _, size := range sizes {
				last = measureBatchQPS(mb.c, tr.ing, tr.pkts, size, minDur)
				row = append(row, mqps(last))
			}
			row = append(row, fmt.Sprintf("%.2fx", last/single))
			t.AddRow(row...)
		}
		mb.detach()
	}
	return t
}

// attachDeterministic installs numMB all-Type-1 middlebox flow tables on
// the highest-degree boxes (the TableII placement, ratio 1.0).
func (m *mbBench) attachDeterministic(numMB int) {
	for mbi := 0; mbi < numMB; mbi++ {
		mb := &network.Middlebox{Name: fmt.Sprintf("MB%d", mbi)}
		for ei := 0; ei < mbEntries; ei++ {
			tgt := m.targets[ei]
			mb.Entries = append(mb.Entries, network.MBEntry{
				Match: m.matchIDs[ei], Type: network.MBDeterministic,
				Rewrite: func(pkt []byte) [][]byte {
					out := make([]byte, len(tgt))
					copy(out, tgt)
					return [][]byte{out}
				},
			})
		}
		m.c.Net.Boxes[m.boxOrder[mbi]].MB = mb
	}
}

// detach removes every middlebox attached by attachDeterministic/measure.
func (m *mbBench) detach() {
	for _, b := range m.c.Net.Boxes {
		b.MB = nil
	}
}

// measureSingleQPS runs the single-packet path with a reused Walker.
func measureSingleQPS(c *apclassifier.Classifier, ingress []int, pkts [][]byte, minDur time.Duration) float64 {
	w := c.NewWalker()
	i := 0
	return measureQPS(func(p []byte) {
		c.BehaviorWith(w, ingress[i%len(ingress)], p)
		i++
	}, pkts, minDur)
}

// measureBatchQPS runs the batched pipeline in chunks of size and reports
// per-packet throughput.
func measureBatchQPS(c *apclassifier.Classifier, ingress []int, pkts [][]byte, size int, minDur time.Duration) float64 {
	buf := c.NewBatchBuffer()
	start := time.Now()
	n := 0
	for time.Since(start) < minDur {
		for i := 0; i < len(pkts); i += size {
			end := min(i+size, len(pkts))
			c.BehaviorBatch(buf, ingress[i:end], pkts[i:end])
			n += end - i
		}
	}
	return float64(n) / time.Since(start).Seconds()
}
