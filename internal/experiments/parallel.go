package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"apclassifier/internal/aptree"
)

// measureQPSParallel runs fn over the trace from `workers` goroutines for
// at least minDur and returns aggregate queries per second.
func measureQPSParallel(fn func(pkt []byte), trace [][]byte, workers int, minDur time.Duration) float64 {
	var total uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			n := uint64(0)
			i := off
			for {
				select {
				case <-stop:
					atomic.AddUint64(&total, n)
					return
				default:
				}
				fn(trace[i%len(trace)])
				i++
				n++
			}
		}(w * 37)
	}
	time.Sleep(minDur)
	close(stop)
	wg.Wait()
	return float64(total) / time.Since(start).Seconds()
}

// parallelWorkerCounts returns the goroutine counts the parallel figures
// sweep: powers of two up to the machine.
func parallelWorkerCounts() []int {
	var counts []int
	for w := 1; w <= runtime.GOMAXPROCS(0); w *= 2 {
		counts = append(counts, w)
	}
	if last := counts[len(counts)-1]; last != runtime.GOMAXPROCS(0) {
		counts = append(counts, runtime.GOMAXPROCS(0))
	}
	return counts
}

// Fig12Parallel is the multi-core companion to Fig12: stage-1 query
// throughput through the lock-free snapshot path as the number of query
// goroutines grows. The paper evaluates a single query process; this
// figure exists to validate the snapshot architecture — queries take no
// lock, so aggregate throughput must scale with cores instead of
// collapsing on a reader-writer lock's cache line.
func (e *Env) Fig12Parallel(traceLen int, minDur time.Duration) *Table {
	t := &Table{
		Title:  "Fig 12 (parallel) — stage-1 throughput vs query goroutines, snapshot path",
		Header: []string{"network", "goroutines", "throughput (Mqps)", "speedup vs 1"},
		Notes: []string{
			"queries go through Manager.Classify: one atomic snapshot load, zero locks",
			"expected shape: near-linear scaling until memory bandwidth saturates",
		},
	}
	for _, name := range e.networks() {
		c, ds := e.network(name)
		in := e.treeInput(name)
		rng := rand.New(rand.NewSource(12))
		trace := uniformTrace(in, ds.Layout.Bytes(), traceLen, rng)
		m := c.Manager
		base := 0.0
		for _, w := range parallelWorkerCounts() {
			q := measureQPSParallel(func(p []byte) { m.Classify(p) }, trace, w, minDur)
			if w == 1 {
				base = q
			}
			t.AddRow(name, fmt.Sprint(w), mqps(q), fmt.Sprintf("%.2fx", q/base))
		}
	}
	return t
}

// Fig14Parallel is the multi-core companion to Fig14: aggregate query
// throughput over time while a Poisson update process and a periodic
// reconstruction process run concurrently — the full three-process
// operation of §VI with a parallel query stage. Every query pins one
// published snapshot; updates and swaps never block it.
func (e *Env) Fig14Parallel(workers, updatesPerSec int, duration, bucket, reconEvery time.Duration) []*Table {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var out []*Table
	for _, name := range e.networks() {
		in := e.treeInput(name)
		_, ds := e.network(name)
		pool := newPredPool(in)
		rng := rand.New(rand.NewSource(14))
		order := shuffledOrder(len(pool.refs), rng)
		initial := len(pool.refs) * 7 / 10
		m := subsetManager(pool, order, initial, aptree.MethodOAPT)
		trace := uniformTrace(in, ds.Layout.Bytes(), 512, rng)

		buckets := int(duration / bucket)
		counts := make([]uint64, buckets)
		var wg sync.WaitGroup
		stop := make(chan struct{})
		start := time.Now()

		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(off int) {
				defer wg.Done()
				i := off
				for {
					select {
					case <-stop:
						return
					default:
					}
					m.Classify(trace[i%len(trace)])
					i++
					if b := int(time.Since(start) / bucket); b >= 0 && b < buckets {
						atomic.AddUint64(&counts[b], 1)
					}
				}
			}(w * 37)
		}

		// Update process: Poisson arrivals, alternating add/delete.
		wg.Add(1)
		go func() {
			defer wg.Done()
			urng := rand.New(rand.NewSource(99))
			next := initial
			var deletable []int32
			for k := 0; k < initial; k++ {
				deletable = append(deletable, int32(k))
			}
			for {
				wait := time.Duration(urng.ExpFloat64() * float64(time.Second) / float64(updatesPerSec))
				select {
				case <-stop:
					return
				case <-time.After(wait):
				}
				if urng.Intn(2) == 0 && next < len(order) {
					id := m.AddPredicate(pool.builder(order[next]))
					deletable = append(deletable, id)
					next++
				} else if len(deletable) > 0 {
					k := urng.Intn(len(deletable))
					id := deletable[k]
					deletable = append(deletable[:k], deletable[k+1:]...)
					if m.IsLive(id) {
						m.DeletePredicate(id)
					}
				}
			}
		}()

		// Reconstruction process: periodic rebuilds and swaps.
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(reconEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					m.Reconstruct(false)
				}
			}
		}()

		time.Sleep(duration)
		close(stop)
		wg.Wait()

		t := &Table{
			Title: fmt.Sprintf("Fig 14 (parallel, %s) — %d query goroutines under %d updates/s, reconstruction every %v",
				name, workers, updatesPerSec, reconEvery),
			Header: []string{"time (s)", "aggregate (Mqps)", "per-goroutine (Mqps)"},
			Notes: []string{
				"expected shape: aggregate ≈ workers × single-thread Fig 14 throughput; update/swap activity causes no cliff",
			},
		}
		perSec := 1.0 / bucket.Seconds()
		for b := 0; b < buckets; b++ {
			agg := float64(counts[b]) * perSec
			t.AddRow(fmt.Sprintf("%.2f", (time.Duration(b)*bucket).Seconds()),
				mqps(agg), mqps(agg/float64(workers)))
		}
		var sum uint64
		for _, c := range counts {
			sum += c
		}
		t.Notes = append(t.Notes, fmt.Sprintf("average aggregate: %s Mqps over %d goroutines",
			mqps(float64(sum)/duration.Seconds()), workers))
		out = append(out, t)
	}
	return out
}
