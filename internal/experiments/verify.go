package experiments

import (
	"fmt"
	"time"

	"apclassifier"
	"apclassifier/internal/netgen"
	"apclassifier/internal/verify"
)

// Verify measures the snapshot-native verification engine on generated
// fat-tree fabrics: dataset compilation, then the three exhaustive sweeps
// (loop enumeration, all-pairs ingress×host reachability, blackhole
// enumeration), each over every atom from every ingress.
//
// It is standalone — it does not touch the Env datasets — because its
// subject is scale: the "large" preset exceeds 1000 boxes and 100k rules,
// far past the paper's two networks.
func Verify(presets []string) (*Table, error) {
	t := &Table{
		Title: "Network-wide verification on fat-tree fabrics (exhaustive, per epoch)",
		Header: []string{"preset", "boxes", "rules", "atoms", "compile", "loops", "reach(all-pairs)", "blackholes(all)"},
	}
	for _, name := range presets {
		cfg, err := netgen.FatTreePreset(name)
		if err != nil {
			return nil, err
		}
		ds := netgen.FatTree(cfg)
		start := time.Now()
		c, err := apclassifier.New(ds, apclassifier.Options{})
		if err != nil {
			return nil, fmt.Errorf("compile %s: %w", name, err)
		}
		compile := time.Since(start)
		a := verify.New(c)

		start = time.Now()
		loops := a.Loops()
		loopDur := time.Since(start)
		if len(loops) != 0 {
			return nil, fmt.Errorf("%s: generated fabric must be loop-free, found %d", name, len(loops))
		}

		start = time.Now()
		nonEmpty := 0
		for ingress := 0; ingress < a.NumBoxes(); ingress++ {
			for _, h := range ds.Hosts {
				if !a.ReachSet(ingress, h.Name).Empty() {
					nonEmpty++
				}
			}
		}
		reachDur := time.Since(start)
		if want := a.NumBoxes() * len(ds.Hosts); nonEmpty != want {
			return nil, fmt.Errorf("%s: %d/%d ingress×host pairs reachable", name, nonEmpty, want)
		}

		start = time.Now()
		bhAtoms := 0
		for ingress := 0; ingress < a.NumBoxes(); ingress++ {
			bhAtoms += a.Blackholes(ingress).NumAtoms()
		}
		bhDur := time.Since(start)

		t.AddRow(name,
			fmt.Sprintf("%d", a.NumBoxes()),
			fmt.Sprintf("%d", ds.NumRules()),
			fmt.Sprintf("%d", a.NumAtoms()),
			compile.Round(time.Millisecond).String(),
			loopDur.Round(time.Millisecond).String(),
			reachDur.Round(time.Millisecond).String(),
			fmt.Sprintf("%s (%d atom-pairs)", bhDur.Round(time.Millisecond), bhAtoms),
		)
	}
	return t, nil
}

// VerifyPresets picks the fat-tree presets appropriate for a scale.
func VerifyPresets(scale Scale) []string {
	switch scale.Name {
	case "small":
		return []string{"small"}
	case "full":
		return []string{"small", "mid", "large"}
	}
	return []string{"small", "mid"}
}
