// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII) on the synthetic Internet2-like and Stanford-like
// datasets. Each experiment returns printable tables; cmd/apbench renders
// them and the root bench_test.go wraps them as benchmarks.
//
// Scales: the paper's full rule volumes make some experiments take
// minutes; the default "mid" scale keeps every experiment in seconds while
// preserving predicate counts (which is what the algorithms actually see).
// Set APBENCH_SCALE=full for paper-scale rule volumes, or =small for CI.
package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"apclassifier"
	"apclassifier/internal/aptree"
	"apclassifier/internal/netgen"
)

// Scale sets the generator rule scales for the two networks.
type Scale struct {
	Name   string
	I2, SF float64
}

// Scales.
var (
	ScaleSmall = Scale{"small", 0.02, 0.005}
	ScaleMid   = Scale{"mid", 0.2, 0.05}
	ScaleFull  = Scale{"full", 1.0, 1.0}
)

// DefaultScale reads APBENCH_SCALE (small|mid|full); default mid.
func DefaultScale() Scale {
	switch os.Getenv("APBENCH_SCALE") {
	case "full":
		return ScaleFull
	case "small":
		return ScaleSmall
	}
	return ScaleMid
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	line(dashes(widths))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Env caches the compiled datasets every experiment shares.
type Env struct {
	Scale Scale
	I2DS  *netgen.Dataset
	SFDS  *netgen.Dataset
	I2    *apclassifier.Classifier
	SF    *apclassifier.Classifier

	i2Input, sfInput *aptree.Input
}

// NewEnv generates and compiles both datasets.
func NewEnv(scale Scale) (*Env, error) {
	e := &Env{Scale: scale}
	e.I2DS = netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: scale.I2})
	e.SFDS = netgen.StanfordLike(netgen.Config{Seed: 1, RuleScale: scale.SF})
	var err error
	if e.I2, err = apclassifier.New(e.I2DS, apclassifier.Options{}); err != nil {
		return nil, err
	}
	if e.SF, err = apclassifier.New(e.SFDS, apclassifier.Options{}); err != nil {
		return nil, err
	}
	return e, nil
}

// network selects one of the two compiled networks by short name.
func (e *Env) network(name string) (*apclassifier.Classifier, *netgen.Dataset) {
	if name == "internet2" {
		return e.I2, e.I2DS
	}
	return e.SF, e.SFDS
}

// networks iterates both datasets.
func (e *Env) networks() []string { return []string{"internet2", "stanford"} }

// treeInput caches the experiment-grade build input per network.
func (e *Env) treeInput(name string) aptree.Input {
	c, _ := e.network(name)
	cache := &e.i2Input
	if name != "internet2" {
		cache = &e.sfInput
	}
	if *cache == nil {
		in := c.TreeInput()
		*cache = &in
	}
	return **cache
}

// uniformTrace draws n packets uniformly over the atoms of the build input
// — the paper's query workload ("generated randomly with respect to the
// atomic predicates").
func uniformTrace(in aptree.Input, nbytes, n int, rng *rand.Rand) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		atom := rng.Intn(in.Atoms.N())
		out[i] = in.Atoms.SamplePacket(atom, nbytes, rng)
	}
	return out
}

// paretoWeights draws per-atom query weights from Pareto(xm=1, α=1) scaled
// so about half the atoms get ~1000 packets, as in §VII-F.
func paretoWeights(natoms int, rng *rand.Rand) []float64 {
	w := make([]float64, natoms)
	for i := range w {
		x := 1.0 / (1.0 - rng.Float64()) // Pareto xm=1, α=1
		if x > 100 {
			x = 100 // cap the tail like a finite trace would
		}
		w[i] = x * 1000
	}
	return w
}

// weightedTrace draws n packets with per-atom weights.
func weightedTrace(in aptree.Input, nbytes, n int, weights []float64, rng *rand.Rand) [][]byte {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	out := make([][]byte, n)
	for i := range out {
		x := rng.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = in.Atoms.SamplePacket(lo, nbytes, rng)
	}
	return out
}

// measureQPS runs fn over the trace repeatedly for at least minDur and
// returns queries per second.
func measureQPS(fn func(pkt []byte), trace [][]byte, minDur time.Duration) float64 {
	start := time.Now()
	n := 0
	for time.Since(start) < minDur {
		for _, pkt := range trace {
			fn(pkt)
		}
		n += len(trace)
	}
	return float64(n) / time.Since(start).Seconds()
}

// mqps formats queries/second in millions.
func mqps(v float64) string { return fmt.Sprintf("%.2f", v/1e6) }

// kqps formats queries/second in thousands.
func kqps(v float64) string { return fmt.Sprintf("%.1f", v/1e3) }
