package experiments

import (
	"math/rand"

	"apclassifier/internal/aptree"
	"apclassifier/internal/bdd"
	"apclassifier/internal/predicate"
)

// predPool is an immutable snapshot of a network's predicates that dynamic
// experiments draw from. The pool lives in its own DD so that transferring
// a predicate into a live manager (whose DD changes across reconstructions)
// is always safe.
type predPool struct {
	d    *bdd.DD
	refs []bdd.Ref
}

// newPredPool snapshots the live predicates of a build input.
func newPredPool(in aptree.Input) *predPool {
	p := &predPool{d: bdd.New(in.D.NumVars())}
	for _, id := range in.Live {
		ref := bdd.Transfer(p.d, in.D, in.Preds[id])
		p.d.Retain(ref)
		p.refs = append(p.refs, ref)
	}
	return p
}

// builder returns an AddPredicate callback installing pool predicate i.
func (p *predPool) builder(i int) func(d *bdd.DD) bdd.Ref {
	ref := p.refs[i]
	src := p.d
	return func(d *bdd.DD) bdd.Ref { return bdd.Transfer(d, src, ref) }
}

// subsetManager builds a live Manager over the first `initial` predicates
// of the pool (in a shuffled order), with its own DD and an OAPT (or other
// method) tree — the starting point of the dynamic experiments (§VII-E).
func subsetManager(pool *predPool, order []int, initial int, method aptree.Method) *aptree.Manager {
	d := bdd.New(pool.d.NumVars())
	reg := aptree.NewRegistry()
	var live []int32
	for k := 0; k < initial; k++ {
		ref := bdd.Transfer(d, pool.d, pool.refs[order[k]])
		d.Retain(ref)
		live = append(live, reg.Add(ref))
	}
	refs := make([]bdd.Ref, len(live))
	ids := make([]int, len(live))
	for i, id := range live {
		refs[i] = reg.Ref(id)
		ids[i] = int(id)
	}
	atoms := predicate.ComputeMapped(d, refs, ids, reg.NumIDs())
	tree := aptree.Build(aptree.Input{D: d, Preds: reg.Refs(), Live: live, Atoms: atoms}, method)
	return aptree.NewManagerWith(d, reg, tree, method)
}

// shuffledOrder returns a deterministic shuffle of [0, n).
func shuffledOrder(n int, rng *rand.Rand) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}
