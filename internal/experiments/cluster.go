package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"apclassifier/internal/netgen"
	"apclassifier/internal/server"
)

// ClusterThroughput measures the sharded fleet end to end: real apserver
// worker processes behind a real aprouter process, driven over HTTP with
// /query/batch. Each fleet size gets a fresh set of processes; workers
// regenerate the dataset deterministically from flags, so nothing is
// copied between processes. The "1 (direct)" row is the same workload
// against a single unsharded worker with no router in front — the
// router's fan-out overhead is the gap between it and the N=1 row.
//
// Honesty note: on a single pinned CPU every worker shares one core, so
// the speedup column measures protocol overhead, not parallelism. Run
// on a multi-core host for the scaling claim.
func (e *Env) ClusterThroughput(counts []int, batch, clients int, minDur time.Duration) *Table {
	t := &Table{
		Title: "Cluster throughput — multi-process apserver fleet behind aprouter (/query/batch over HTTP)",
		Header: []string{"shards", "qps", "speedup vs 1"},
		Notes: []string{
			fmt.Sprintf("batch=%d, clients=%d, internet2 ×%.3g; workers rebuild the dataset from flags", batch, clients, e.Scale.I2),
			fmt.Sprintf("GOMAXPROCS=%d on this host — with one core the fleet shares it and speedup reflects overhead only", maxProcs()),
		},
	}
	bins, err := buildClusterBinaries()
	if err != nil {
		t.Notes = append(t.Notes, "SKIPPED: "+err.Error())
		return t
	}
	defer func() { _ = os.RemoveAll(filepath.Dir(bins.apserver)) }()

	ds := netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: e.Scale.I2})
	bodies := clusterBatches(ds, batch, 32)

	var base float64
	direct, err := measureFleet(bins, 1, false, e.Scale.I2, bodies, clients, minDur)
	if err != nil {
		t.Notes = append(t.Notes, "SKIPPED: "+err.Error())
		return t
	}
	t.AddRow("1 (direct)", fmt.Sprintf("%.0f", direct), "-")
	for _, n := range counts {
		qps, err := measureFleet(bins, n, true, e.Scale.I2, bodies, clients, minDur)
		if err != nil {
			t.AddRow(fmt.Sprint(n), "error: "+err.Error(), "-")
			continue
		}
		if base == 0 {
			base = qps
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprintf("%.0f", qps), fmt.Sprintf("%.2fx", qps/base))
	}
	return t
}

func maxProcs() int { return runtime.GOMAXPROCS(0) }

type clusterBinaries struct {
	apserver, aprouter string
}

// buildClusterBinaries compiles the two commands into a temp dir. The
// build runs with the current working directory, which for apbench is
// the module root; a failure degrades the experiment to a note instead
// of killing the whole run.
func buildClusterBinaries() (clusterBinaries, error) {
	dir, err := os.MkdirTemp("", "apcluster-*")
	if err != nil {
		return clusterBinaries{}, err
	}
	b := clusterBinaries{
		apserver: filepath.Join(dir, "apserver"),
		aprouter: filepath.Join(dir, "aprouter"),
	}
	for pkg, out := range map[string]string{
		"apclassifier/cmd/apserver": b.apserver,
		"apclassifier/cmd/aprouter": b.aprouter,
	} {
		cmd := exec.Command("go", "build", "-o", out, pkg)
		if msg, err := cmd.CombinedOutput(); err != nil {
			_ = os.RemoveAll(dir)
			return clusterBinaries{}, fmt.Errorf("go build %s: %v: %s", pkg, err, bytes.TrimSpace(msg))
		}
	}
	return b, nil
}

// clusterBatches pre-marshals m query batches so the measurement loop
// does no encoding work.
func clusterBatches(ds *netgen.Dataset, batch, m int) [][]byte {
	rng := rand.New(rand.NewSource(42))
	bodies := make([][]byte, m)
	for i := range bodies {
		qs := make([]server.QueryRequest, batch)
		for j := range qs {
			f := ds.RandomFields(rng)
			qs[j] = server.QueryRequest{
				Ingress: ds.Boxes[rng.Intn(len(ds.Boxes))].Name,
				Dst:     ip4(f.Dst), Src: ip4(f.Src),
				SrcPort: f.SrcPort, DstPort: f.DstPort, Proto: f.Proto,
			}
		}
		bodies[i], _ = json.Marshal(qs)
	}
	return bodies
}

func ip4(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// measureFleet starts n workers (plus aprouter when routed), waits for
// health, then counts completed /query/batch queries for minDur.
func measureFleet(bins clusterBinaries, n int, routed bool, scale float64, bodies [][]byte, clients int, minDur time.Duration) (float64, error) {
	ports, err := freePorts(n + 1)
	if err != nil {
		return 0, err
	}
	var procs []*exec.Cmd
	defer func() {
		for _, p := range procs {
			stopProcess(p)
		}
	}()
	shardURLs := make([]string, n)
	for k := 0; k < n; k++ {
		addr := fmt.Sprintf("127.0.0.1:%d", ports[k])
		shardURLs[k] = "http://" + addr
		args := []string{
			"-listen", addr, "-net", "internet2",
			"-scale", fmt.Sprint(scale), "-seed", "1",
		}
		if routed {
			args = append(args, "-shard", fmt.Sprintf("%d/%d", k, n))
		}
		cmd := exec.Command(bins.apserver, args...)
		cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
		if err := cmd.Start(); err != nil {
			return 0, err
		}
		procs = append(procs, cmd)
	}
	target := shardURLs[0]
	if routed {
		addr := fmt.Sprintf("127.0.0.1:%d", ports[n])
		cmd := exec.Command(bins.aprouter,
			"-listen", addr, "-shards", joinComma(shardURLs))
		cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
		if err := cmd.Start(); err != nil {
			return 0, err
		}
		procs = append(procs, cmd)
		target = "http://" + addr
	}
	for _, u := range append(append([]string{}, shardURLs...), target) {
		if err := waitHealthy(u+"/healthz", 2*time.Minute); err != nil {
			return 0, err
		}
	}

	perBatch := 0
	var probe []json.RawMessage
	resp, err := http.Post(target+"/query/batch", "application/json", bytes.NewReader(bodies[0]))
	if err != nil {
		return 0, err
	}
	raw, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != 200 {
		return 0, fmt.Errorf("probe batch: status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return 0, err
	}
	perBatch = len(probe)

	var done atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var firstErr atomic.Value
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := c; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(target+"/query/batch", "application/json", bytes.NewReader(bodies[i%len(bodies)]))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				if resp.StatusCode != 200 {
					firstErr.CompareAndSwap(nil, fmt.Errorf("batch status %d", resp.StatusCode))
					return
				}
				done.Add(1)
			}
		}(c)
	}
	time.Sleep(minDur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, err
	}
	return float64(done.Load()*int64(perBatch)) / elapsed.Seconds(), nil
}

// freePorts reserves n distinct ports by binding and releasing them.
// The window between release and the worker's own bind is a benign race
// on a bench host.
func freePorts(n int) ([]int, error) {
	ports := make([]int, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			_ = ln.Close()
		}
	}()
	for len(ports) < n {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	return ports, nil
}

func joinComma(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ","
		}
		out += x
	}
	return out
}

// stopProcess mirrors an orchestrator: SIGTERM, then SIGKILL after a
// grace period.
func stopProcess(cmd *exec.Cmd) {
	if cmd.Process == nil {
		return
	}
	_ = cmd.Process.Signal(syscall.SIGTERM)
	exited := make(chan struct{})
	go func() { _, _ = cmd.Process.Wait(); close(exited) }()
	select {
	case <-exited:
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		<-exited
	}
}

func waitHealthy(url string, deadline time.Duration) error {
	client := &http.Client{Timeout: time.Second}
	until := time.Now().Add(deadline)
	for time.Now().Before(until) {
		resp, err := client.Get(url)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == 200 {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("%s not healthy after %v", url, deadline)
}
