package experiments

import (
	"fmt"
	"math/rand"

	"apclassifier/internal/aptree"
	"apclassifier/internal/bdd"
	"apclassifier/internal/predicate"
)

// OptimalityGap goes beyond the paper: it measures how far the OAPT
// heuristic and Quick-Ordering land from the exact minimum-total-depth
// tree (equation (1), which the paper deems intractable and never
// evaluates). Exact search is exponential, so the comparison runs on
// random subsets of each network's real predicates.
func (e *Env) OptimalityGap(subsetSize, trials int) *Table {
	if subsetSize > aptree.MaxOptimalPreds {
		subsetSize = aptree.MaxOptimalPreds
	}
	t := &Table{
		Title:  fmt.Sprintf("Optimality gap (beyond the paper) — %d-predicate subsets, %d trials", subsetSize, trials),
		Header: []string{"network", "optimal Σdepth", "OAPT Σdepth (gap)", "quick Σdepth (gap)"},
		Notes: []string{
			"exact optimum from the O(2^k·k!) recursion of §V-C that the paper dismisses as intractable",
		},
	}
	for _, name := range e.networks() {
		in := e.treeInput(name)
		pool := newPredPool(in)
		rng := rand.New(rand.NewSource(77))
		var totOpt, totOAPT, totQuick int
		for trial := 0; trial < trials; trial++ {
			order := shuffledOrder(len(pool.refs), rng)[:subsetSize]
			d := bdd.New(pool.d.NumVars())
			refs := make([]bdd.Ref, subsetSize)
			ids := make([]int, subsetSize)
			live := make([]int32, subsetSize)
			for i, oi := range order {
				refs[i] = bdd.Transfer(d, pool.d, pool.refs[oi])
				d.Retain(refs[i])
				ids[i] = i
				live[i] = int32(i)
			}
			atoms := predicate.ComputeMapped(d, refs, ids, subsetSize)
			in2 := aptree.Input{D: d, Preds: refs, Live: live, Atoms: atoms}
			totOpt += aptree.BuildOptimal(in2).SumDepth()
			totOAPT += aptree.Build(in2, aptree.MethodOAPT).SumDepth()
			totQuick += aptree.Build(in2, aptree.MethodQuick).SumDepth()
		}
		gap := func(v int) string {
			return fmt.Sprintf("%d (+%.1f%%)", v, 100*(float64(v)/float64(totOpt)-1))
		}
		t.AddRow(name, fmt.Sprint(totOpt), gap(totOAPT), gap(totQuick))
	}
	return t
}
