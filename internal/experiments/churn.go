package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"apclassifier"
	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

// churnEvent is one pregenerated FIB mutation: the insertion of a
// more-specific child of an existing prefix toward the parent's port, or
// the removal of a previously inserted child. The sequence is generated
// once per network and replayed identically by every engine, so the
// engines are timed on the same semantic work.
type churnEvent struct {
	add    bool
	box    int
	rule   rule.FwdRule // add
	prefix rule.Prefix  // remove
}

// genChurnEvents builds a deterministic add/remove sequence against a
// pristine dataset. Adds draw a parent from the original tables (which the
// sequence never removes), removes target a random still-installed
// synthetic child, so replaying any prefix of the sequence is valid.
func genChurnEvents(ds *netgen.Dataset, n int, rng *rand.Rand) []churnEvent {
	type inst struct {
		box    int
		prefix rule.Prefix
	}
	var installed []inst
	events := make([]churnEvent, 0, n)
	for len(events) < n {
		if len(installed) > 8 && rng.Intn(2) == 0 {
			k := rng.Intn(len(installed))
			e := installed[k]
			installed = append(installed[:k], installed[k+1:]...)
			events = append(events, churnEvent{add: false, box: e.box, prefix: e.prefix})
			continue
		}
		box := rng.Intn(len(ds.Boxes))
		spec := &ds.Boxes[box]
		parent := spec.Fwd.Rules[rng.Intn(len(spec.Fwd.Rules))]
		for parent.Prefix.Length >= 32 {
			parent = spec.Fwd.Rules[rng.Intn(len(spec.Fwd.Rules))]
		}
		length := parent.Prefix.Length + 1 + rng.Intn(32-parent.Prefix.Length)
		r := rule.FwdRule{
			Prefix: rule.P(parent.Prefix.Value|rng.Uint32()&^uint32(0xFFFFFFFF<<uint(32-parent.Prefix.Length)), length),
			Port:   parent.Port,
		}
		installed = append(installed, inst{box, r.Prefix})
		events = append(events, churnEvent{add: true, box: box, rule: r})
	}
	return events
}

// freshChurnDataset generates the churn dataset for a network. Every
// engine starts from its own copy (same seed and scale) because replaying
// the events mutates the tables.
func (e *Env) freshChurnDataset(name string) *netgen.Dataset {
	if name == "internet2" {
		return netgen.Internet2Like(netgen.Config{Seed: 3, RuleScale: e.Scale.I2})
	}
	return netgen.StanfordLike(netgen.Config{Seed: 3, RuleScale: e.Scale.SF})
}

// churnResult is one engine's measurement.
type churnResult struct {
	updates int
	updRate float64 // sustained updates/sec
	qps     float64 // aggregate queries/sec across workers
}

// runChurn replays events through apply while queryWorkers goroutines
// classify packets on the lock-free snapshot path, stopping after budget
// (but applying at least minEvents so the slowest engine still reports a
// rate). Queries go through Manager.Classify: the delta and reconvert
// engines rewire facade topology state between epochs, which stage-2
// Behavior callers must externally synchronize with, but stage-1
// classification is wait-free against updates by design — exactly the
// concurrency the experiment is about.
func runChurn(c *apclassifier.Classifier, ds *netgen.Dataset, events []churnEvent,
	apply func(churnEvent), queryWorkers int, budget time.Duration, minEvents int) churnResult {

	rng := rand.New(rand.NewSource(7))
	trace := make([][]byte, 256)
	for i := range trace {
		trace[i] = ds.PacketFromFields(ds.RandomFields(rng))
	}

	m := c.Manager
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var queries atomic.Uint64
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			n := uint64(0)
			for i := off; ; i++ {
				select {
				case <-stop:
					queries.Add(n)
					return
				default:
				}
				m.Classify(trace[i%len(trace)])
				n++
			}
		}(w * 31)
	}

	start := time.Now()
	applied := 0
	for _, ev := range events {
		apply(ev)
		applied++
		if applied >= minEvents && time.Since(start) >= budget {
			break
		}
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	queryElapsed := time.Since(start)

	return churnResult{
		updates: applied,
		updRate: float64(applied) / elapsed.Seconds(),
		qps:     float64(queries.Load()) / queryElapsed.Seconds(),
	}
}

// Churn is the incremental delta engine's headline experiment: sustained
// rule updates per second under concurrent query load, for three engines
// replaying one identical pregenerated event sequence.
//
//   - delta: ApplyRuleDeltas — LPM-cone-scoped predicate recomputation and
//     leaf-local atom split/merge in the live tree.
//   - reconvert: the pre-delta path — mutate the table, recompute every
//     port predicate of the box (PortPredicates) and splice changed ones.
//   - reconvert+rebuild: reconvert followed by a full Reconstruct per
//     update — the convert-everything-and-rebuild strawman the paper's
//     §VI-A update story argues against.
func (e *Env) Churn(budget time.Duration, queryWorkers int) *Table {
	t := &Table{
		Title: fmt.Sprintf("Churn — sustained rule updates under %d concurrent query workers (budget %v/engine)",
			queryWorkers, budget),
		Header: []string{"network", "engine", "updates", "upd/s", "query Mqps", "speedup"},
		Notes: []string{
			"identical pregenerated FIB event sequence (more-specific child adds / their removals) replayed per engine on fresh same-seed datasets",
			"speedup = upd/s relative to reconvert+rebuild on the same network",
		},
	}
	for _, name := range e.networks() {
		events := genChurnEvents(e.freshChurnDataset(name), 16384, rand.New(rand.NewSource(17)))

		engines := []struct {
			label string
			apply func(c *apclassifier.Classifier, ds *netgen.Dataset) func(churnEvent)
		}{
			{"delta (ApplyRuleDeltas)", func(c *apclassifier.Classifier, ds *netgen.Dataset) func(churnEvent) {
				return func(ev churnEvent) {
					dl := apclassifier.RuleDelta{Op: apclassifier.OpRemoveFwdRule, Box: ev.box, Prefix: ev.prefix}
					if ev.add {
						dl = apclassifier.RuleDelta{Op: apclassifier.OpAddFwdRule, Box: ev.box, Rule: ev.rule}
					}
					if err := c.ApplyRuleDeltas([]apclassifier.RuleDelta{dl}); err != nil {
						panic(err)
					}
				}
			}},
			{"reconvert (whole box)", func(c *apclassifier.Classifier, ds *netgen.Dataset) func(churnEvent) {
				return func(ev churnEvent) {
					spec := &ds.Boxes[ev.box]
					if ev.add {
						spec.Fwd.Add(ev.rule)
					} else {
						spec.Fwd.Remove(ev.prefix)
					}
					c.ReconvertBox(ev.box)
				}
			}},
			{"reconvert+rebuild", func(c *apclassifier.Classifier, ds *netgen.Dataset) func(churnEvent) {
				return func(ev churnEvent) {
					spec := &ds.Boxes[ev.box]
					if ev.add {
						spec.Fwd.Add(ev.rule)
					} else {
						spec.Fwd.Remove(ev.prefix)
					}
					c.ReconvertBox(ev.box)
					c.Reconstruct(false)
				}
			}},
		}

		results := make([]churnResult, len(engines))
		for i, eng := range engines {
			ds := e.freshChurnDataset(name)
			c, err := apclassifier.New(ds, apclassifier.Options{})
			if err != nil {
				panic(err)
			}
			results[i] = runChurn(c, ds, events, eng.apply(c, ds), queryWorkers, budget, 3)
		}
		baseline := results[len(results)-1].updRate
		for i, eng := range engines {
			r := results[i]
			t.AddRow(name, eng.label,
				fmt.Sprintf("%d", r.updates),
				fmt.Sprintf("%.0f", r.updRate),
				mqps(r.qps),
				fmt.Sprintf("%.1fx", r.updRate/baseline))
		}
	}
	return t
}
