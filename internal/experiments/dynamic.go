package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"apclassifier/internal/aptree"
	"apclassifier/internal/bdd"
	"apclassifier/internal/predicate"
)

// Fig13 reproduces Fig. 13: the cumulative distribution of the time to add
// one predicate to a live AP Tree, for several initial tree sizes.
// initial maps a label to the number of predicates the tree starts with
// (the paper uses 40/80/120 for Internet2 and 100/250/400 for Stanford;
// counts are clamped to what the scaled dataset provides).
func (e *Env) Fig13(adds int) []*Table {
	var out []*Table
	for _, name := range e.networks() {
		in := e.treeInput(name)
		pool := newPredPool(in)
		initials := []int{40, 80, 120}
		if name != "internet2" {
			initials = []int{100, 250, 400}
		}
		t := &Table{
			Title:  fmt.Sprintf("Fig 13 (%s) — CDF of time to add a predicate", name),
			Header: []string{"percentile", "", "", ""},
			Notes: []string{
				"paper: 80% of Internet2 additions < 2 ms (worst 5-6 ms); 90% of Stanford additions < 1 ms",
			},
		}
		for i, init := range initials {
			if init >= len(pool.refs) {
				init = len(pool.refs) * (i + 1) / (len(initials) + 1)
			}
			t.Header[i+1] = fmt.Sprintf("start=%d preds (ms)", init)
		}
		// Collect per-initial sorted add latencies.
		var lat [][]float64
		for i, init := range initials {
			if init >= len(pool.refs) {
				init = len(pool.refs) * (i + 1) / (len(initials) + 1)
			}
			rng := rand.New(rand.NewSource(13 + int64(i)))
			order := shuffledOrder(len(pool.refs), rng)
			m := subsetManager(pool, order, init, aptree.MethodOAPT)
			var ds []time.Duration
			n := adds
			if init+n > len(order) {
				n = len(order) - init
			}
			for k := 0; k < n; k++ {
				build := pool.builder(order[init+k])
				start := time.Now()
				m.AddPredicate(build)
				ds = append(ds, time.Since(start))
			}
			lat = append(lat, sortedDurations(ds))
		}
		for _, p := range []float64{0.10, 0.25, 0.50, 0.75, 0.80, 0.90, 0.95, 0.99, 1.0} {
			row := []string{fmt.Sprintf("p%02.0f", p*100)}
			for _, l := range lat {
				row = append(row, fmt.Sprintf("%.3f", percentile(l, p)*1e3))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out
}

// dynAPLinear is the APLinear baseline under churn: it maintains the atom
// set incrementally (AP Verifier's update) and scans it linearly per query.
// Both baselines evaluate against the same pool DD, whose node store grows
// under AddPredicate's BDD operations, so they share one RWMutex: queries
// are pure reads (EvalBits) and take the read lock, updates the write lock.
type dynAPLinear struct {
	mu    *sync.RWMutex // shared with dynPScan (same underlying DD)
	d     *bdd.DD
	atoms *predicate.Atoms
}

func (a *dynAPLinear) classify(pkt []byte) int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.atoms.ClassifyLinear(pkt)
}

func (a *dynAPLinear) add(id int, ref bdd.Ref) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.atoms.AddPredicate(id, ref)
}

// dynPScan is the PScan baseline under churn: a mutable predicate list
// scanned per query.
type dynPScan struct {
	mu   *sync.RWMutex // shared with dynAPLinear (same underlying DD)
	d    *bdd.DD
	refs map[int32]bdd.Ref
}

func (p *dynPScan) scan(pkt []byte) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for _, ref := range p.refs {
		if p.d.EvalBits(ref, pkt) {
			n++
		}
	}
	return n
}

// Fig14 reproduces Fig. 14: query throughput over time for a dynamic
// network with Poisson predicate updates and periodic reconstruction,
// compared against APLinear and PScan. One row per time bucket.
func (e *Env) Fig14(updatesPerSec int, duration, bucket, reconEvery time.Duration) []*Table {
	var out []*Table
	for _, name := range e.networks() {
		in := e.treeInput(name)
		_, ds := e.network(name)
		pool := newPredPool(in)
		rng := rand.New(rand.NewSource(14))
		order := shuffledOrder(len(pool.refs), rng)
		initial := len(pool.refs) * 7 / 10
		m := subsetManager(pool, order, initial, aptree.MethodOAPT)

		// Baselines share the pool DD (no swap hazards) and therefore one
		// RWMutex: APLinear's incremental atom update runs BDD operations
		// that grow the DD under PScan's reader.
		baseMu := new(sync.RWMutex)
		base := &dynAPLinear{mu: baseMu, d: pool.d}
		{
			refs := make([]bdd.Ref, initial)
			ids := make([]int, initial)
			for k := 0; k < initial; k++ {
				refs[k] = pool.refs[order[k]]
				ids[k] = k
			}
			base.atoms = predicate.ComputeMapped(pool.d, refs, ids, len(pool.refs))
		}
		pscan := &dynPScan{mu: baseMu, d: pool.d, refs: map[int32]bdd.Ref{}}
		for k := 0; k < initial; k++ {
			pscan.refs[int32(k)] = pool.refs[order[k]]
		}

		trace := uniformTrace(in, ds.Layout.Bytes(), 512, rng)

		// Shared clock: counts per bucket for each method.
		buckets := int(duration / bucket)
		type series struct {
			counts []uint64
		}
		mkSeries := func() *series { return &series{counts: make([]uint64, buckets)} }
		sAP, sLin, sPS := mkSeries(), mkSeries(), mkSeries()

		var wg sync.WaitGroup
		stop := make(chan struct{})
		start := time.Now()
		bucketOf := func() int {
			b := int(time.Since(start) / bucket)
			if b >= buckets {
				return -1
			}
			return b
		}
		runQuery := func(s *series, fn func(pkt []byte)) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				fn(trace[i%len(trace)])
				i++
				if b := bucketOf(); b >= 0 {
					atomic.AddUint64(&s.counts[b], 1)
				}
			}
		}
		wg.Add(3)
		go runQuery(sAP, func(p []byte) { m.Classify(p) })
		go runQuery(sLin, func(p []byte) { base.classify(p) })
		go runQuery(sPS, func(p []byte) { pscan.scan(p) })

		// Update process: Poisson arrivals, alternating add/delete.
		wg.Add(1)
		go func() {
			defer wg.Done()
			urng := rand.New(rand.NewSource(99))
			next := initial
			var deletable []int32
			for k := 0; k < initial; k++ {
				deletable = append(deletable, int32(k))
			}
			for {
				wait := time.Duration(urng.ExpFloat64() * float64(time.Second) / float64(updatesPerSec))
				select {
				case <-stop:
					return
				case <-time.After(wait):
				}
				if urng.Intn(2) == 0 && next < len(order) {
					id := m.AddPredicate(pool.builder(order[next]))
					base.add(int(id), pool.refs[order[next]])
					pscan.mu.Lock()
					pscan.refs[id] = pool.refs[order[next]]
					pscan.mu.Unlock()
					deletable = append(deletable, id)
					next++
				} else if len(deletable) > 0 {
					k := urng.Intn(len(deletable))
					id := deletable[k]
					deletable = append(deletable[:k], deletable[k+1:]...)
					if m.IsLive(id) {
						m.DeletePredicate(id)
					}
					pscan.mu.Lock()
					delete(pscan.refs, id)
					pscan.mu.Unlock()
				}
			}
		}()

		// Reconstruction process: periodic rebuilds.
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(reconEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					m.Reconstruct(false)
				}
			}
		}()

		time.Sleep(duration)
		close(stop)
		wg.Wait()

		t := &Table{
			Title: fmt.Sprintf("Fig 14 (%s) — throughput under %d updates/s, reconstruction every %v",
				name, updatesPerSec, reconEvery),
			Header: []string{"time (s)", "AP Classifier (Mqps)", "APLinear (Mqps)", "PScan (Mqps)"},
			Notes: []string{
				"expected shape: AP Classifier an order of magnitude above both baselines; dips recover after each reconstruction",
			},
		}
		perSec := 1.0 / bucket.Seconds()
		for b := 0; b < buckets; b++ {
			t.AddRow(fmt.Sprintf("%.2f", (time.Duration(b)*bucket).Seconds()),
				mqps(float64(sAP.counts[b])*perSec),
				mqps(float64(sLin.counts[b])*perSec),
				mqps(float64(sPS.counts[b])*perSec))
		}
		avg := func(s *series) float64 {
			var sum uint64
			for _, c := range s.counts {
				sum += c
			}
			return float64(sum) / duration.Seconds()
		}
		t.Notes = append(t.Notes, fmt.Sprintf("averages: AP Classifier %s, APLinear %s, PScan %s Mqps",
			mqps(avg(sAP)), mqps(avg(sLin)), mqps(avg(sPS))))
		out = append(out, t)
	}
	return out
}
