package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"apclassifier/internal/aptree"
)

// Fig15 reproduces Fig. 15 / §VII-F: query throughput under Pareto-skewed
// packet distributions, comparing a distribution-unaware OAPT tree against
// the distribution-aware (weighted) construction, over several trace sets.
func (e *Env) Fig15(traceSets, traceLen int, minDur time.Duration) []*Table {
	var out []*Table
	for _, name := range e.networks() {
		in := e.treeInput(name)
		_, ds := e.network(name)
		unaware := aptree.Build(in, aptree.MethodOAPT)

		t := &Table{
			Title:  fmt.Sprintf("Fig 15 (%s) — throughput under Pareto packet distributions", name),
			Header: []string{"trace", "unaware (Mqps)", "aware (Mqps)", "unaware avg query depth", "aware avg query depth"},
			Notes: []string{
				"paper: average throughput rises 4.2→5.2 Mqps (Internet2) and 2.4→3.2 Mqps (Stanford); avg query depth falls 10.65→8.09 and 16.2→11.3",
			},
		}
		var sumU, sumA float64
		for set := 0; set < traceSets; set++ {
			rng := rand.New(rand.NewSource(1500 + int64(set)))
			weights := paretoWeights(in.Atoms.N(), rng)
			trace := weightedTrace(in, ds.Layout.Bytes(), traceLen, weights, rng)

			win := in
			win.Weights = weights
			aware := aptree.Build(win, aptree.MethodOAPT)

			qU := measureQPS(func(p []byte) { unaware.Classify(p) }, trace, minDur)
			qA := measureQPS(func(p []byte) { aware.Classify(p) }, trace, minDur)
			wf := func(a int32) float64 { return weights[a] }
			t.AddRow(fmt.Sprintf("pareto-%02d", set), mqps(qU), mqps(qA),
				fmt.Sprintf("%.2f", unaware.WeightedAverageDepth(wf)),
				fmt.Sprintf("%.2f", aware.WeightedAverageDepth(wf)))
			sumU += qU
			sumA += qA
			aware.Drop()
		}
		t.Notes = append(t.Notes, fmt.Sprintf("averages: unaware %s, aware %s Mqps",
			mqps(sumU/float64(traceSets)), mqps(sumA/float64(traceSets))))
		unaware.Drop()
		out = append(out, t)
	}
	return out
}
