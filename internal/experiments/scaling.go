package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"apclassifier"
	"apclassifier/internal/netgen"
)

// Scaling goes beyond the paper: it sweeps the rule volume and reports how
// predicate count, atom count, tree depth, construction time, memory, and
// query throughput respond. The paper's key scalability claim — query cost
// tracks the number of predicates, not the number of rules — shows up here
// as a flat depth/throughput row while rules grow by an order of
// magnitude.
func (e *Env) Scaling(scales []float64, traceLen int, minDur time.Duration) *Table {
	t := &Table{
		Title:  "Scaling sweep (beyond the paper) — Internet2-like generator",
		Header: []string{"rule scale", "rules", "preds", "atoms", "avg depth", "build", "mem (MB)", "throughput (Mqps)"},
		Notes: []string{
			"expected shape: rules grow ~linearly with scale; predicates saturate at the port budget; depth and throughput stay near-flat",
		},
	}
	for _, s := range scales {
		ds := netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: s})
		start := time.Now()
		c, err := apclassifier.New(ds, apclassifier.Options{})
		if err != nil {
			panic(err)
		}
		build := time.Since(start)
		rng := rand.New(rand.NewSource(int64(s * 1000)))
		in := c.TreeInput()
		trace := uniformTrace(in, ds.Layout.Bytes(), traceLen, rng)
		tree := c.Manager.Tree()
		q := measureQPS(func(p []byte) { tree.Classify(p) }, trace, minDur)
		t.AddRow(
			fmt.Sprintf("%.2f", s),
			fmt.Sprint(ds.NumRules()),
			fmt.Sprint(c.NumPredicates()),
			fmt.Sprint(c.NumAtoms()),
			fmt.Sprintf("%.1f", c.AverageDepth()),
			build.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", float64(c.MemBytes())/1e6),
			mqps(q),
		)
	}
	return t
}
