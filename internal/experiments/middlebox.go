package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"apclassifier"
	"apclassifier/internal/bdd"
	"apclassifier/internal/netgen"
	"apclassifier/internal/network"
)

// TableII reproduces Table II (§VII-G): throughput of computing packet
// behaviors when 1–3 boxes host header-modifying middleboxes, for
// deterministic ratios 0.9, 0.5 and 0.
//
// Following the paper: each middlebox flow table has ten entries whose
// match fields are obtained by grouping all atomic predicates into ten
// predicates, so every incoming packet matches an entry. A deterministic
// (Type 1) entry's new atomic predicate is served from the flow table
// cache; the rest force a second AP Tree search.
func (e *Env) TableII(traceLen int, minDur time.Duration) *Table {
	t := &Table{
		Title:  "Table II — throughput with packet header changes (Mqps)",
		Header: []string{"network", "middleboxes", "ratio 0.9", "ratio 0.5", "ratio 0.0"},
		Notes: []string{
			"paper (full behavior computation): Internet2 5.5→3.8, Stanford 3.1→2.1 Mqps as ratio drops and middleboxes increase",
		},
	}
	for _, name := range e.networks() {
		_, ds := e.network(name)
		mb := newMBBench(ds, traceLen)
		for _, numMB := range []int{1, 2, 3} {
			row := []string{name, fmt.Sprint(numMB)}
			for _, ratio := range []float64{0.9, 0.5, 0.0} {
				row = append(row, mqps(mb.measure(numMB, ratio, minDur)))
			}
			t.AddRow(row...)
		}
	}
	return t
}

// mbBench holds a compiled classifier with the ten match-group predicates
// registered once; individual cells attach/detach middlebox flow tables.
type mbBench struct {
	ds        *netgen.Dataset
	c         *apclassifier.Classifier
	rng       *rand.Rand
	matchIDs  []int32
	targets   [][]byte
	boxOrder  []int
	trace     [][]byte
	ingresses []int
}

const mbEntries = 10

func newMBBench(ds *netgen.Dataset, traceLen int) *mbBench {
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		panic(err)
	}
	m := &mbBench{ds: ds, c: c, rng: rand.New(rand.NewSource(220))}
	in := c.TreeInput()

	// Ten rewrite target 5-tuples drawn from routed prefixes, so rewritten
	// packets keep flowing.
	m.targets = make([][]byte, mbEntries)
	for i := range m.targets {
		f := ds.RandomFields(m.rng)
		m.targets[i] = ds.PacketFromFields(f)
	}

	// Group all atoms into ten match predicates (every packet matches).
	groups := make([]bdd.Ref, mbEntries)
	for i := range groups {
		groups[i] = bdd.False
	}
	d := c.Manager.DD()
	for a := 0; a < in.Atoms.N(); a++ {
		g := a % mbEntries
		groups[g] = d.Or(groups[g], in.Atoms.List[a])
	}
	m.matchIDs = make([]int32, mbEntries)
	for i, g := range groups {
		g := g
		m.matchIDs[i] = c.Manager.AddPredicate(func(dd *bdd.DD) bdd.Ref { return g })
	}

	// Middleboxes go on the highest-degree boxes (backbone hubs).
	deg := make([]int, len(ds.Boxes))
	for _, l := range ds.Links {
		deg[l.A]++
		deg[l.B]++
	}
	m.boxOrder = shuffledOrder(len(ds.Boxes), m.rng)
	for i := 0; i < len(m.boxOrder); i++ {
		for j := i + 1; j < len(m.boxOrder); j++ {
			if deg[m.boxOrder[j]] > deg[m.boxOrder[i]] {
				m.boxOrder[i], m.boxOrder[j] = m.boxOrder[j], m.boxOrder[i]
			}
		}
	}

	m.trace = uniformTrace(in, ds.Layout.Bytes(), traceLen, m.rng)
	m.ingresses = make([]int, len(m.trace))
	for i := range m.ingresses {
		m.ingresses[i] = m.rng.Intn(len(ds.Boxes))
	}
	return m
}

// measure attaches numMB middleboxes with the given deterministic ratio,
// measures end-to-end behavior-computation throughput, and detaches them.
func (m *mbBench) measure(numMB int, ratio float64, minDur time.Duration) float64 {
	numDet := int(ratio*mbEntries + 0.5)
	for mbi := 0; mbi < numMB; mbi++ {
		mb := &network.Middlebox{Name: fmt.Sprintf("MB%d", mbi)}
		for ei := 0; ei < mbEntries; ei++ {
			typ := network.MBPayload
			var rewrite network.Rewrite
			tgt := m.targets[ei]
			if ei < numDet {
				// Type 1: full-header rewrite to a constant — the new
				// atomic predicate is a pure function of the entry, so the
				// flow-table cache applies.
				typ = network.MBDeterministic
				rewrite = func(pkt []byte) [][]byte {
					out := make([]byte, len(tgt))
					copy(out, tgt)
					return [][]byte{out}
				}
			} else {
				// Type 2: only the destination is rewritten; the rest of
				// the header is payload-determined, forcing a re-search.
				tgtDst := m.ds.Layout.Get(tgt, "dstIP")
				layout := m.ds.Layout
				rewrite = func(pkt []byte) [][]byte {
					out := make([]byte, len(pkt))
					copy(out, pkt)
					layout.Set(out, "dstIP", tgtDst)
					return [][]byte{out}
				}
			}
			mb.Entries = append(mb.Entries, network.MBEntry{
				Match: m.matchIDs[ei], Type: typ, Rewrite: rewrite,
			})
		}
		m.c.Net.Boxes[m.boxOrder[mbi]].MB = mb
	}

	walker := m.c.NewWalker()
	i := 0
	q := measureQPS(func(p []byte) {
		m.c.BehaviorWith(walker, m.ingresses[i%len(m.ingresses)], p)
		i++
	}, m.trace, minDur)

	for _, b := range m.c.Net.Boxes {
		b.MB = nil
	}
	return q
}
