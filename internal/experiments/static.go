package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"apclassifier/internal/aptree"
	"apclassifier/internal/baseline"
	"apclassifier/internal/bdd"
	"apclassifier/internal/hsa"
	"apclassifier/internal/rule"
	"apclassifier/internal/trie"
)

// ruleFields aliases the 5-tuple ground-truth type for trace buffers.
type ruleFields = rule.Fields

// TableI reproduces Table I: statistics of the two networks.
func (e *Env) TableI() *Table {
	t := &Table{
		Title:  "Table I — statistics of the two networks (synthetic stand-ins)",
		Header: []string{"network", "boxes", "fwd rules", "ACL rules", "predicates", "atomic predicates"},
		Notes: []string{
			"paper full-scale reference: Internet2 126,017 rules / 161 predicates; Stanford 757,170 rules + 1,584 ACL rules / 507 predicates",
			fmt.Sprintf("generator scale: %s (internet2 ×%.3g, stanford ×%.3g)", e.Scale.Name, e.Scale.I2, e.Scale.SF),
		},
	}
	for _, name := range e.networks() {
		c, ds := e.network(name)
		t.AddRow(name,
			fmt.Sprint(len(ds.Boxes)),
			fmt.Sprint(ds.NumRules()),
			fmt.Sprint(ds.NumACLRules()),
			fmt.Sprint(c.NumPredicates()),
			fmt.Sprint(c.NumAtoms()),
		)
	}
	return t
}

// randomTrees builds n pruned AP Trees with random predicate orders and
// returns them; the caller must Drop() them.
func randomTrees(in aptree.Input, n int, seed int64) []*aptree.Tree {
	trees := make([]*aptree.Tree, n)
	for i := range trees {
		in.Rand = rand.New(rand.NewSource(seed + int64(i)))
		trees[i] = aptree.Build(in, aptree.MethodRandom)
	}
	return trees
}

// Fig4 reproduces Fig. 4: query throughput versus average leaf depth over
// randomly ordered AP Trees, with the OAPT tree as the star point.
func (e *Env) Fig4(numTrees, traceLen int, minDur time.Duration) []*Table {
	var out []*Table
	for _, name := range e.networks() {
		in := e.treeInput(name)
		_, ds := e.network(name)
		rng := rand.New(rand.NewSource(4))
		trace := uniformTrace(in, ds.Layout.Bytes(), traceLen, rng)
		t := &Table{
			Title:  fmt.Sprintf("Fig 4 (%s) — query throughput vs average depth, %d random trees + OAPT", name, numTrees),
			Header: []string{"tree", "avg depth", "throughput (Mqps)"},
		}
		trees := randomTrees(in, numTrees, 4)
		for i, tree := range trees {
			q := measureQPS(func(p []byte) { tree.Classify(p) }, trace, minDur)
			t.AddRow(fmt.Sprintf("random-%02d", i), fmt.Sprintf("%.1f", tree.AverageDepth()), mqps(q))
			tree.Drop()
		}
		opt := aptree.Build(in, aptree.MethodOAPT)
		q := measureQPS(func(p []byte) { opt.Classify(p) }, trace, minDur)
		t.AddRow("OAPT (star)", fmt.Sprintf("%.1f", opt.AverageDepth()), mqps(q))
		opt.Drop()
		t.Notes = append(t.Notes, "expected shape: throughput decreases as average depth grows; OAPT dominates")
		out = append(out, t)
	}
	return out
}

// buildThree builds Best-from-Random (min average depth over n random
// orders), Quick-Ordering, and OAPT trees.
func buildThree(in aptree.Input, nRandom int) (best, quick, oapt *aptree.Tree) {
	trees := randomTrees(in, nRandom, 9)
	best = trees[0]
	for _, tr := range trees[1:] {
		if tr.AverageDepth() < best.AverageDepth() {
			best.Drop()
			best = tr
		} else {
			tr.Drop()
		}
	}
	quick = aptree.Build(in, aptree.MethodQuick)
	oapt = aptree.Build(in, aptree.MethodOAPT)
	return best, quick, oapt
}

// Fig9 reproduces Fig. 9: average leaf depth per construction method.
func (e *Env) Fig9(nRandom int) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Fig 9 — average depth of leaves (Best from %d Random / Quick-Ordering / OAPT)", nRandom),
		Header: []string{"network", "best-from-random", "quick-ordering", "OAPT"},
		Notes:  []string{"paper: Internet2 16.0 / 13.0 / 10.6; Stanford 39.0 / 24.2 / 16.9"},
	}
	for _, name := range e.networks() {
		in := e.treeInput(name)
		best, quick, oapt := buildThree(in, nRandom)
		t.AddRow(name,
			fmt.Sprintf("%.1f", best.AverageDepth()),
			fmt.Sprintf("%.1f", quick.AverageDepth()),
			fmt.Sprintf("%.1f", oapt.AverageDepth()))
		best.Drop()
		quick.Drop()
		oapt.Drop()
	}
	return t
}

// Fig10 reproduces Fig. 10: cumulative distribution of leaf depths.
func (e *Env) Fig10(nRandom int) []*Table {
	var out []*Table
	for _, name := range e.networks() {
		in := e.treeInput(name)
		best, quick, oapt := buildThree(in, nRandom)
		t := &Table{
			Title:  fmt.Sprintf("Fig 10 (%s) — CDF of leaf depths", name),
			Header: []string{"depth", "best-from-random %", "quick-ordering %", "OAPT %"},
		}
		hb, hq, ho := best.DepthHistogram(), quick.DepthHistogram(), oapt.DepthHistogram()
		maxD := len(hb)
		if len(hq) > maxD {
			maxD = len(hq)
		}
		if len(ho) > maxD {
			maxD = len(ho)
		}
		cum := func(h []int, d int) float64 {
			c, total := 0, 0
			for _, v := range h {
				total += v
			}
			for i := 0; i <= d && i < len(h); i++ {
				c += h[i]
			}
			return 100 * float64(c) / float64(total)
		}
		for d := 0; d < maxD; d++ {
			t.AddRow(fmt.Sprint(d),
				fmt.Sprintf("%.1f", cum(hb, d)),
				fmt.Sprintf("%.1f", cum(hq, d)),
				fmt.Sprintf("%.1f", cum(ho, d)))
		}
		t.Notes = append(t.Notes, "expected shape: OAPT curve strictly above the others at every depth")
		best.Drop()
		quick.Drop()
		oapt.Drop()
		out = append(out, t)
	}
	return out
}

// MemoryUsage reproduces §VII-B: memory cost of all classifier components.
// "allocated" counts the BDD node table including construction scratch
// already garbage-collected (slot capacity); "live" counts only reachable
// nodes — the working set a compacting reconstruction leaves behind, which
// is the number comparable to the paper's JDD measurements.
func (e *Env) MemoryUsage() *Table {
	t := &Table{
		Title:  "§VII-B — memory usage of AP Classifier (all components)",
		Header: []string{"network", "allocated (MB)", "live BDD+tree (MB)", "predicates", "atoms"},
		Notes:  []string{"paper: Internet2 4.79 MB, Stanford 2.15 MB at full scale (live)"},
	}
	for _, name := range e.networks() {
		c, _ := e.network(name)
		tree := c.Manager.Tree()
		live := c.Manager.DD().LiveMemBytes() +
			tree.NumLeaves()*(64+(tree.NumPreds()+7)/8) +
			(tree.NumLeaves()-1)*64
		t.AddRow(name,
			fmt.Sprintf("%.2f", float64(c.MemBytes())/1e6),
			fmt.Sprintf("%.2f", float64(live)/1e6),
			fmt.Sprint(c.NumPredicates()),
			fmt.Sprint(c.NumAtoms()))
	}
	return t
}

// Fig11 reproduces Fig. 11: overall construction time (atom computation +
// tree construction) per method.
func (e *Env) Fig11(nRandom int) *Table {
	t := &Table{
		Title:  "Fig 11 — overall construction time (atoms + tree)",
		Header: []string{"network", "random (one)", "quick-ordering", "OAPT"},
		Notes:  []string{"paper: Internet2 201/204 ms, Stanford 293/343 ms (Quick/OAPT)"},
	}
	for _, name := range e.networks() {
		c, _ := e.network(name)
		timeMethod := func(m aptree.Method) time.Duration {
			start := time.Now()
			in := c.TreeInput() // includes atom computation, as in the paper
			in.Rand = rand.New(rand.NewSource(11))
			tr := aptree.Build(in, m)
			d := time.Since(start)
			tr.Drop()
			return d
		}
		t.AddRow(name,
			timeMethod(aptree.MethodRandom).Round(10*time.Microsecond).String(),
			timeMethod(aptree.MethodQuick).Round(10*time.Microsecond).String(),
			timeMethod(aptree.MethodOAPT).Round(10*time.Microsecond).String())
	}
	return t
}

// Fig12 reproduces Fig. 12: query throughput for static networks across
// AP Classifier variants and baselines (Hassel/HSA, AP Verifier linear
// search, Forwarding Simulation).
func (e *Env) Fig12(nRandom, traceLen int, minDur time.Duration) *Table {
	t := &Table{
		Title:  "Fig 12 — query throughput for static networks",
		Header: []string{"network", "method", "throughput (Mqps)", "avg work/query"},
		Notes: []string{
			"paper: AP Classifier 3.4 (I2) / 1.8 (SF) Mqps; Hassel-C 0.006 / 0.0047; Forwarding Simulation 0.2 / 0.16",
			"work/query: predicates evaluated (tree methods & FwdSim & PScan), atoms scanned (APLinear), ternary rule checks (HSA)",
		},
	}
	for _, name := range e.networks() {
		c, ds := e.network(name)
		in := e.treeInput(name)
		rng := rand.New(rand.NewSource(12))
		trace := uniformTrace(in, ds.Layout.Bytes(), traceLen, rng)
		ingresses := make([]int, len(trace))
		for i := range ingresses {
			ingresses[i] = rng.Intn(len(ds.Boxes))
		}

		best, quick, oapt := buildThree(in, nRandom)
		for _, row := range []struct {
			label string
			tree  *aptree.Tree
		}{{"AP Classifier (OAPT)", oapt}, {"Quick-Ordering", quick}, {"Best from Random", best}} {
			tree := row.tree
			q := measureQPS(func(p []byte) { tree.Classify(p) }, trace, minDur)
			t.AddRow(name, row.label, mqps(q), fmt.Sprintf("%.1f preds", tree.AverageDepth()))
		}

		// APLinear: linear scan over atom BDDs.
		ap := &baseline.APLinear{D: in.D, Atoms: in.Atoms}
		q := measureQPS(func(p []byte) { ap.Classify(p) }, trace, minDur)
		t.AddRow(name, "AP Verifier (APLinear)", mqps(q), fmt.Sprintf("%.1f atoms", float64(in.Atoms.N())/2))

		// PScan: evaluate every predicate.
		ids := c.Manager.LiveIDs()
		prefs := make([]bdd.Ref, len(ids))
		for i, id := range ids {
			prefs[i] = c.Manager.Ref(id)
		}
		ps := baseline.NewPScan(in.D, ids, prefs, c.Manager.Tree().NumPreds())
		q = measureQPS(func(p []byte) { ps.Member(p) }, trace, minDur)
		t.AddRow(name, "PScan", mqps(q), fmt.Sprintf("%d preds", len(ids)))

		// Forwarding Simulation: per-box linear predicate checks, hop by hop.
		sim := baseline.ManagerEnv(c.Manager, c.Net)
		var fsChecks, fsQueries int
		i := 0
		q = measureQPS(func(p []byte) {
			r := sim.Behavior(ingresses[i%len(ingresses)], p)
			fsChecks += r.PredChecks
			fsQueries++
			i++
		}, trace, minDur)
		t.AddRow(name, "Forwarding Simulation", mqps(q), fmt.Sprintf("%.1f preds", float64(fsChecks)/float64(fsQueries)))

		// Veriflow-style trie: network-wide rule trie + path simulation
		// (the related-work approach the paper discusses).
		tsim := trie.NewSim(ds)
		fieldsTrace := make([]ruleFields, len(trace))
		{
			frng := rand.New(rand.NewSource(1212))
			for i := range fieldsTrace {
				fieldsTrace[i] = ds.RandomFields(frng)
			}
		}
		var trWork, trQueries int
		i = 0
		q = measureQPS(func(p []byte) {
			r := tsim.Behavior(ingresses[i%len(ingresses)], fieldsTrace[i%len(fieldsTrace)])
			trWork += r.RulesCollected
			trQueries++
			i++
		}, trace, minDur)
		t.AddRow(name, "Veriflow trie", mqps(q), fmt.Sprintf("%.0f rules", float64(trWork)/float64(trQueries)))

		// HSA (Hassel stand-in): full behavior identification by
		// header-space propagation. Far slower; measure fewer iterations.
		hnet := hsa.Compile(ds)
		var hChecks, hQueries int
		i = 0
		q = measureQPS(func(p []byte) {
			r := hnet.Reach(ingresses[i%len(ingresses)], p)
			hChecks += r.RuleChecks
			hQueries++
			i++
		}, trace[:min(64, len(trace))], minDur)
		t.AddRow(name, "HSA (Hassel)", mqps(q), fmt.Sprintf("%.0f rules", float64(hChecks)/float64(hQueries)))

		best.Drop()
		quick.Drop()
		oapt.Drop()
	}
	return t
}

// Percentile helper for depth/time distributions.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func sortedDurations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	sort.Float64s(out)
	return out
}
