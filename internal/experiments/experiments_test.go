package experiments

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"
)

// testEnv builds a small-scale environment shared by the tests in this
// package (experiments are deterministic given the scale and seeds).
var sharedEnv *Env

func env(t *testing.T) *Env {
	t.Helper()
	if sharedEnv == nil {
		e, err := NewEnv(ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		sharedEnv = e
	}
	return sharedEnv
}

const fastDur = 20 * time.Millisecond

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "x", Header: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.AddRow("1", "2")
	s := tab.String()
	for _, want := range []string{"== x ==", "a", "bb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestDefaultScale(t *testing.T) {
	t.Setenv("APBENCH_SCALE", "")
	if DefaultScale().Name != "mid" {
		t.Fatal("default must be mid")
	}
	t.Setenv("APBENCH_SCALE", "full")
	if DefaultScale().Name != "full" {
		t.Fatal("full not honored")
	}
	t.Setenv("APBENCH_SCALE", "small")
	if DefaultScale().Name != "small" {
		t.Fatal("small not honored")
	}
}

func TestTableI(t *testing.T) {
	tab := env(t).TableI()
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "internet2" || tab.Rows[1][0] != "stanford" {
		t.Fatalf("unexpected networks: %v", tab.Rows)
	}
}

func TestFig4ShapeThroughputFallsWithDepth(t *testing.T) {
	tabs := env(t).Fig4(6, 64, fastDur)
	if len(tabs) != 2 {
		t.Fatalf("tables = %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 7 { // 6 random + star
			t.Fatalf("rows = %d", len(tab.Rows))
		}
		if tab.Rows[len(tab.Rows)-1][0] != "OAPT (star)" {
			t.Fatal("missing star row")
		}
	}
}

func TestFig9OrderingHolds(t *testing.T) {
	tab := env(t).Fig9(8)
	for _, row := range tab.Rows {
		var best, quick, oapt float64
		mustParse(t, row[1], &best)
		mustParse(t, row[2], &quick)
		mustParse(t, row[3], &oapt)
		// The paper's headline: OAPT ≤ Quick ≤ Best-from-Random.
		if oapt > quick+0.05 {
			t.Errorf("%s: OAPT depth %.1f worse than Quick %.1f", row[0], oapt, quick)
		}
		if oapt > best+0.05 {
			t.Errorf("%s: OAPT depth %.1f worse than best random %.1f", row[0], oapt, best)
		}
	}
}

func TestFig10CDFsMonotone(t *testing.T) {
	tabs := env(t).Fig10(5)
	for _, tab := range tabs {
		prev := []float64{0, 0, 0}
		for _, row := range tab.Rows {
			for c := 1; c <= 3; c++ {
				var v float64
				mustParse(t, row[c], &v)
				if v+1e-9 < prev[c-1] {
					t.Fatalf("%s: CDF column %d not monotone", tab.Title, c)
				}
				prev[c-1] = v
			}
		}
		last := tab.Rows[len(tab.Rows)-1]
		for c := 1; c <= 3; c++ {
			var v float64
			mustParse(t, last[c], &v)
			if v < 99.9 {
				t.Fatalf("%s: CDF column %d does not reach 100%%", tab.Title, c)
			}
		}
	}
}

func TestMemoryUsage(t *testing.T) {
	tab := env(t).MemoryUsage()
	for _, row := range tab.Rows {
		var mb float64
		mustParse(t, row[2], &mb)
		if mb <= 0 || mb > 1024 {
			t.Fatalf("%s: memory estimate %v MB implausible", row[0], mb)
		}
	}
}

func TestFig11ConstructionTimes(t *testing.T) {
	tab := env(t).Fig11(3)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for c := 1; c <= 3; c++ {
			if row[c] == "" || row[c] == "0s" {
				t.Fatalf("suspicious construction time %q", row[c])
			}
		}
	}
}

func TestFig12OrderingHolds(t *testing.T) {
	tab := env(t).Fig12(4, 64, fastDur)
	rates := map[string]map[string]float64{}
	for _, row := range tab.Rows {
		if rates[row[0]] == nil {
			rates[row[0]] = map[string]float64{}
		}
		var v float64
		mustParse(t, row[2], &v)
		rates[row[0]][row[1]] = v
	}
	for net, r := range rates {
		if r["AP Classifier (OAPT)"] <= r["HSA (Hassel)"] {
			t.Errorf("%s: OAPT (%.2f) must beat HSA (%.2f)", net, r["AP Classifier (OAPT)"], r["HSA (Hassel)"])
		}
		if r["AP Classifier (OAPT)"] <= r["Forwarding Simulation"] {
			t.Errorf("%s: OAPT must beat Forwarding Simulation", net)
		}
		if r["AP Classifier (OAPT)"] <= r["PScan"] {
			t.Errorf("%s: OAPT must beat PScan", net)
		}
	}
}

func TestFig13LatenciesSane(t *testing.T) {
	tabs := env(t).Fig13(20)
	for _, tab := range tabs {
		if len(tab.Rows) == 0 {
			t.Fatal("no percentile rows")
		}
		// Percentile columns must be non-decreasing down the table.
		prev := []float64{0, 0, 0}
		for _, row := range tab.Rows {
			for c := 1; c <= 3; c++ {
				var v float64
				mustParse(t, row[c], &v)
				if v < 0 {
					t.Fatalf("negative latency %v", v)
				}
				if v+1e-9 < prev[c-1] {
					t.Fatalf("%s: percentile column %d not monotone", tab.Title, c)
				}
				prev[c-1] = v
			}
		}
	}
}

func TestFig14RunsAndAPWins(t *testing.T) {
	tabs := env(t).Fig14(100, 400*time.Millisecond, 100*time.Millisecond, 150*time.Millisecond)
	if len(tabs) != 2 {
		t.Fatalf("tables = %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 4 {
			t.Fatalf("buckets = %d", len(tab.Rows))
		}
		var ap, lin float64
		for _, row := range tab.Rows {
			var a, l float64
			mustParse(t, row[1], &a)
			mustParse(t, row[2], &l)
			ap += a
			lin += l
		}
		if ap <= lin {
			t.Errorf("%s: AP Classifier total %.2f should beat APLinear %.2f", tab.Title, ap, lin)
		}
	}
}

func TestFig15AwareNotWorse(t *testing.T) {
	tabs := env(t).Fig15(3, 64, fastDur)
	for _, tab := range tabs {
		for _, row := range tab.Rows {
			var du, da float64
			mustParse(t, row[3], &du)
			mustParse(t, row[4], &da)
			if da > du+0.05 {
				t.Errorf("%s %s: aware weighted depth %.2f worse than unaware %.2f",
					tab.Title, row[0], da, du)
			}
		}
	}
}

func TestTableIIRuns(t *testing.T) {
	tab := env(t).TableII(64, fastDur)
	if len(tab.Rows) != 6 { // 2 networks × 3 middlebox counts
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for c := 2; c <= 4; c++ {
			var v float64
			mustParse(t, row[c], &v)
			if v <= 0 {
				t.Fatalf("non-positive throughput in %v", row)
			}
		}
	}
}

func TestOptimalityGap(t *testing.T) {
	tab := env(t).OptimalityGap(7, 5)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		var opt float64
		mustParse(t, row[1], &opt)
		if opt <= 0 {
			t.Fatalf("optimal depth must be positive: %v", row)
		}
		// The gap strings must report non-negative gaps.
		for c := 2; c <= 3; c++ {
			if strings.Contains(row[c], "(-") {
				t.Fatalf("heuristic beat the optimum: %v", row)
			}
		}
	}
}

func TestRuleUpdateCost(t *testing.T) {
	tab := env(t).RuleUpdateCost(15)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		var p50, max float64
		mustParse(t, row[1], &p50)
		mustParse(t, row[4], &max)
		if p50 < 0 || max < p50 {
			t.Fatalf("implausible percentiles: %v", row)
		}
		if max > 10000 {
			t.Fatalf("rule update took >10s: %v", row)
		}
	}
}

func TestChurn(t *testing.T) {
	tab := env(t).Churn(fastDur, 2)
	if len(tab.Rows) != 6 { // 2 networks × 3 engines
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	rates := map[string]map[string]float64{}
	maxQPS := map[string]float64{}
	for _, row := range tab.Rows {
		var upd, qps float64
		mustParse(t, row[3], &upd)
		mustParse(t, row[4], &qps)
		if upd <= 0 {
			t.Fatalf("non-positive update rate in %v", row)
		}
		if rates[row[0]] == nil {
			rates[row[0]] = map[string]float64{}
		}
		rates[row[0]][row[1]] = upd
		if qps > maxQPS[row[0]] {
			maxQPS[row[0]] = qps
		}
	}
	for net, r := range rates {
		// The delta engine's row can round its Mqps column to 0.00 at the
		// tiny CI budget under -race (it publishes an epoch per event, so
		// the workers get almost no wall-clock), but the slow rebuild
		// engine always leaves the workers room — so starvation is judged
		// per network, not per row.
		if maxQPS[net] <= 0 {
			t.Errorf("%s: query workers starved across all engines", net)
		}
		delta := r["delta (ApplyRuleDeltas)"]
		rebuild := r["reconvert+rebuild"]
		// The recorded EXPERIMENTS.md run shows ≥10x at mid scale; at the
		// tiny CI scale and budget we assert a conservative margin so the
		// test stays robust under -race.
		if delta < 2*rebuild {
			t.Errorf("%s: delta engine %.0f upd/s must be ≥2x reconvert+rebuild %.0f", net, delta, rebuild)
		}
	}
}

func TestScaling(t *testing.T) {
	tab := env(t).Scaling([]float64{0.01, 0.03}, 64, fastDur)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var rules0, rules1, depth0, depth1 float64
	mustParse(t, tab.Rows[0][1], &rules0)
	mustParse(t, tab.Rows[1][1], &rules1)
	mustParse(t, tab.Rows[0][4], &depth0)
	mustParse(t, tab.Rows[1][4], &depth1)
	if rules1 <= rules0 {
		t.Fatal("rules must grow with scale")
	}
	// Depth stays near-flat: within a few levels across 3× the rules.
	if depth1 > depth0+5 {
		t.Fatalf("depth exploded with scale: %.1f -> %.1f", depth0, depth1)
	}
}

func TestTraceSamplers(t *testing.T) {
	e := env(t)
	in := e.treeInput("internet2")
	rng := rand.New(rand.NewSource(1))
	trace := uniformTrace(in, e.I2DS.Layout.Bytes(), 100, rng)
	if len(trace) != 100 {
		t.Fatal("trace length")
	}
	for _, p := range trace {
		if len(p) != e.I2DS.Layout.Bytes() {
			t.Fatal("packet size")
		}
	}
	w := paretoWeights(in.Atoms.N(), rng)
	for _, v := range w {
		if v < 1000 || v > 100*1000 {
			t.Fatalf("pareto weight %v out of [1000, 100000]", v)
		}
	}
	wt := weightedTrace(in, e.I2DS.Layout.Bytes(), 200, w, rng)
	if len(wt) != 200 {
		t.Fatal("weighted trace length")
	}
}

func mustParse(t *testing.T, s string, v *float64) {
	t.Helper()
	parsed, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	*v = parsed
}
