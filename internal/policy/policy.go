// Package policy turns the flow properties of §I into declarative,
// checkable objects, and implements the controller workflow the paper
// opens with: *verify the data plane with the new updates before
// committing them*. A Guard applies a hypothetical rule, checks every
// registered property exactly (at atomic-predicate granularity), and
// keeps the rule only if no property breaks.
package policy

import (
	"fmt"

	"apclassifier"
	"apclassifier/internal/bdd"
	"apclassifier/internal/rule"
	"apclassifier/internal/verify"
)

// Kind enumerates the §I flow-property families.
type Kind int

// Property kinds.
const (
	// Reachable: some packet entering From is delivered to Host
	// (forwarding correctness for a service).
	Reachable Kind = iota
	// NotReachable: no packet entering From is delivered to Host
	// (drop compliance / tenant isolation at host granularity).
	NotReachable
	// Waypoint: every packet delivered to Host from From traverses Via
	// (policy enforcement: firewall/IDS on path).
	Waypoint
	// LoopFree: no packet from any ingress loops.
	LoopFree
	// Isolated: no packet entering From ever traverses box To
	// (VLAN/tenant isolation at box granularity).
	Isolated
)

func (k Kind) String() string {
	switch k {
	case Reachable:
		return "reachable"
	case NotReachable:
		return "not-reachable"
	case Waypoint:
		return "waypoint"
	case LoopFree:
		return "loop-free"
	case Isolated:
		return "isolated"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Property is one declarative flow property.
type Property struct {
	Kind Kind
	From int    // ingress box (Reachable, NotReachable, Waypoint, Isolated)
	Host string // target host (Reachable, NotReachable, Waypoint)
	Via  int    // required waypoint box (Waypoint)
	To   int    // forbidden box (Isolated)
	// Scope optionally restricts the property to a packet set (a BDD in
	// the classifier's live DD); bdd.False means "all packets".
	Scope bdd.Ref
}

// String renders the property for reports.
func (p Property) String() string {
	switch p.Kind {
	case Reachable:
		return fmt.Sprintf("reachable(from=%d, host=%s)", p.From, p.Host)
	case NotReachable:
		return fmt.Sprintf("not-reachable(from=%d, host=%s)", p.From, p.Host)
	case Waypoint:
		return fmt.Sprintf("waypoint(from=%d, host=%s, via=%d)", p.From, p.Host, p.Via)
	case LoopFree:
		return "loop-free()"
	case Isolated:
		return fmt.Sprintf("isolated(from=%d, to=%d)", p.From, p.To)
	}
	return "unknown()"
}

// Violation reports a broken property with an exact witness set.
type Violation struct {
	Property Property
	// Witness is the packet set demonstrating the violation (or the
	// emptiness that constitutes it, for Reachable). May be bdd.False
	// for Reachable violations (nothing reaches).
	Witness bdd.Ref
	Detail  string
}

// Check evaluates every property against the current data plane and
// returns the violations (empty = all hold). The classifier must be
// quiescent during the check.
func Check(c *apclassifier.Classifier, props []Property) []Violation {
	a := verify.New(c)
	d := c.Manager.DD()
	var out []Violation
	// Properties scope with arbitrary BDDs, so packet sets are
	// materialized as refs in the live DD (sound here: the check requires
	// quiescence, so the analyzer's pinned epoch is the live lineage).
	scope := func(p Property, ps verify.PacketSet) bdd.Ref {
		set := ps.UnionRef(d)
		if p.Scope != bdd.False {
			return d.And(set, p.Scope)
		}
		return set
	}
	describe := func(set bdd.Ref) string { return verify.DescribeRef(d, c.Layout, set) }
	for _, p := range props {
		switch p.Kind {
		case Reachable:
			set := scope(p, a.ReachSet(p.From, p.Host))
			if set == bdd.False {
				out = append(out, Violation{p, bdd.False, "no packet reaches the host"})
			}
		case NotReachable:
			set := scope(p, a.ReachSet(p.From, p.Host))
			if set != bdd.False {
				out = append(out, Violation{p, set, "packets reach a forbidden host: " + describe(set)})
			}
		case Waypoint:
			set := scope(p, a.WaypointViolations(p.From, p.Host, p.Via))
			if set != bdd.False {
				out = append(out, Violation{p, set, "packets bypass the waypoint: " + describe(set)})
			}
		case LoopFree:
			if loops := a.Loops(); len(loops) != 0 {
				out = append(out, Violation{p, bdd.False,
					fmt.Sprintf("%d (ingress, atom) pairs loop", len(loops))})
			}
		case Isolated:
			set := scope(p, a.CanReach(p.From, p.To))
			if set != bdd.False {
				out = append(out, Violation{p, set, "packets cross the isolation boundary: " + describe(set)})
			}
		}
	}
	return out
}

// Guard gates data-plane updates on a property set.
type Guard struct {
	c     *apclassifier.Classifier
	props []Property
}

// NewGuard builds a guard. The property set should already hold; use
// Check to establish that.
func NewGuard(c *apclassifier.Classifier, props []Property) *Guard {
	return &Guard{c: c, props: props}
}

// TryFwdRule implements the §I pre-update verification workflow: apply the
// rule, re-check every property, and keep the rule only if all still hold.
// It returns whether the rule was committed and any violations found (the
// rule is rolled back when violations exist).
func (g *Guard) TryFwdRule(box int, r rule.FwdRule) (committed bool, violations []Violation) {
	g.c.AddFwdRule(box, r)
	violations = Check(g.c, g.props)
	if len(violations) > 0 {
		g.c.RemoveFwdRule(box, r.Prefix)
		return false, violations
	}
	return true, nil
}
