package policy

import (
	"math/rand"
	"testing"

	"apclassifier"
	"apclassifier/internal/bdd"
	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

func testNet(t *testing.T) (*apclassifier.Classifier, *netgen.Dataset, rule.Fields, string) {
	t.Helper()
	ds := netgen.Internet2Like(netgen.Config{Seed: 61, RuleScale: 0.01})
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	for {
		f := ds.RandomFields(rng)
		b := c.Behavior(0, ds.PacketFromFields(f))
		if len(b.Deliveries) == 1 {
			return c, ds, f, b.Deliveries[0].Host
		}
	}
}

func TestCheckHoldsOnHealthyNetwork(t *testing.T) {
	c, _, _, host := testNet(t)
	props := []Property{
		{Kind: Reachable, From: 0, Host: host},
		{Kind: LoopFree},
	}
	if v := Check(c, props); len(v) != 0 {
		t.Fatalf("healthy network reported violations: %v", v)
	}
}

func TestCheckDetectsBrokenReachability(t *testing.T) {
	c, _, flow, host := testNet(t)
	props := []Property{{Kind: Reachable, From: 0, Host: host}}
	// Break it: blackhole the host's entire traffic at its delivery box.
	b := c.Behavior(0, c.Dataset.PacketFromFields(flow))
	dbox := b.Deliveries[0].Box
	c.AddFwdRule(dbox, rule.FwdRule{Prefix: rule.P(0, 0), Port: rule.Drop})
	// The /0 drop shadows everything shorter... LPM: /0 is the shortest,
	// so it only catches previously-unmatched packets. Use per-host /32s
	// won't cover "reachable by any packet": instead drop the flow dst.
	c.AddFwdRule(dbox, rule.FwdRule{Prefix: rule.P(flow.Dst, 32), Port: rule.Drop})
	v := Check(c, props)
	// Reachability may survive via other packets; assert NotReachable
	// detection instead on a stronger break below if this held.
	_ = v

	// Full break: deny-all egress ACL on the delivery port.
	c.SetPortACL(dbox, b.Deliveries[0].Port, &rule.ACL{Default: rule.Deny})
	v = Check(c, props)
	if len(v) != 1 || v[0].Property.Kind != Reachable {
		t.Fatalf("broken reachability not detected: %v", v)
	}
}

func TestCheckDetectsForbiddenReachability(t *testing.T) {
	c, _, _, host := testNet(t)
	props := []Property{{Kind: NotReachable, From: 0, Host: host}}
	v := Check(c, props)
	if len(v) != 1 || v[0].Witness == bdd.False {
		t.Fatalf("NotReachable must flag a reachable host with a witness: %v", v)
	}
}

func TestScopedProperty(t *testing.T) {
	c, ds, flow, host := testNet(t)
	d := c.Manager.DD()
	// Scope the NotReachable property to a slice of space that does NOT
	// contain the flow: no violation. Then scope to the flow dst: violation.
	other := d.FromPrefix(ds.Layout.MustField("dstIP").Offset, uint64(^flow.Dst), 32, 32)
	props := []Property{{Kind: NotReachable, From: 0, Host: host, Scope: other}}
	if v := Check(c, props); len(v) != 0 {
		t.Fatalf("scoped property leaked outside its scope: %v", v)
	}
	hit := d.FromPrefix(ds.Layout.MustField("dstIP").Offset, uint64(flow.Dst), 32, 32)
	props[0].Scope = hit
	if v := Check(c, props); len(v) != 1 {
		t.Fatalf("scoped property missed its witness: %v", v)
	}
}

func TestGuardRejectsViolatingRule(t *testing.T) {
	// Deterministic tiny network: h1 receives exactly 10/8 at box a, so a
	// longer drop covering all of 10/8 removes all reachability.
	layout := netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: 0.01}).Layout
	ds := &netgen.Dataset{Name: "tiny", Layout: layout}
	ds.Boxes = []netgen.BoxSpec{{Name: "a", NumPorts: 1, PortACL: map[int]*rule.ACL{}}}
	ds.Hosts = []netgen.Host{{Box: 0, Port: 0, Name: "h1"}}
	ds.Boxes[0].Fwd.Add(rule.FwdRule{Prefix: rule.P(0x0A000000, 8), Port: 0})
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGuard(c, []Property{{Kind: Reachable, From: 0, Host: "h1"}})
	if v := Check(c, g.props); len(v) != 0 {
		t.Fatalf("precondition: %v", v)
	}
	// A /9+/9 pair would be needed to fully cover /8 with longer
	// prefixes; the guard must reject the update that kills the last
	// reachable packets. First half: still committed (10.128/9 remains).
	committed, _ := g.TryFwdRule(0, rule.FwdRule{Prefix: rule.P(0x0A000000, 9), Port: rule.Drop})
	if !committed {
		t.Fatal("half-drop leaves reachability; must commit")
	}
	// Second half: would blackhole everything — must be rejected.
	committed, violations := g.TryFwdRule(0, rule.FwdRule{Prefix: rule.P(0x0A800000, 9), Port: rule.Drop})
	if committed {
		t.Fatal("reachability-killing rule must be rejected")
	}
	if len(violations) != 1 || violations[0].Property.Kind != Reachable {
		t.Fatalf("violations = %v", violations)
	}
	// Rolled back: the property still holds and the bad rule is gone.
	if v := Check(c, g.props); len(v) != 0 {
		t.Fatalf("guard failed to roll back: %v", v)
	}
	for _, r := range ds.Boxes[0].Fwd.Rules {
		if r.Prefix == rule.P(0x0A800000, 9) {
			t.Fatal("rejected rule still installed")
		}
	}
}

func TestGuardCommitsSafeRule(t *testing.T) {
	c, _, _, host := testNet(t)
	g := NewGuard(c, []Property{{Kind: Reachable, From: 0, Host: host}, {Kind: LoopFree}})
	// A rule in unused space (240/8) cannot affect the properties.
	safe := rule.FwdRule{Prefix: rule.P(0xF0000000, 8), Port: rule.Drop}
	committed, violations := g.TryFwdRule(0, safe)
	if !committed || len(violations) != 0 {
		t.Fatalf("safe rule rejected: %v", violations)
	}
	// And it is actually installed.
	found := false
	for _, r := range c.Dataset.Boxes[0].Fwd.Rules {
		if r.Prefix == safe.Prefix {
			found = true
		}
	}
	if !found {
		t.Fatal("committed rule missing from the table")
	}
}

func TestIsolatedProperty(t *testing.T) {
	// Two disconnected islands: isolation holds; link them: it breaks.
	layout := netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: 0.01}).Layout
	ds := &netgen.Dataset{Name: "split", Layout: layout}
	ds.Boxes = []netgen.BoxSpec{
		{Name: "a", NumPorts: 2, PortACL: map[int]*rule.ACL{}},
		{Name: "b", NumPorts: 2, PortACL: map[int]*rule.ACL{}},
	}
	ds.Hosts = []netgen.Host{{Box: 0, Port: 0, Name: "ha"}, {Box: 1, Port: 0, Name: "hb"}}
	ds.Boxes[0].Fwd.Add(rule.FwdRule{Prefix: rule.P(0x0A000000, 8), Port: 0})
	ds.Boxes[1].Fwd.Add(rule.FwdRule{Prefix: rule.P(0x0B000000, 8), Port: 0})
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	props := []Property{{Kind: Isolated, From: 0, To: 1}}
	if v := Check(c, props); len(v) != 0 {
		t.Fatalf("disconnected boxes reported non-isolated: %v", v)
	}
	// Bridge them: a routes 11/8 toward b.
	ds.Links = append(ds.Links, netgen.Link{A: 0, PA: 1, B: 1, PB: 1})
	c2, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2.AddFwdRule(0, rule.FwdRule{Prefix: rule.P(0x0B000000, 8), Port: 1})
	if v := Check(c2, props); len(v) != 1 || v[0].Witness == bdd.False {
		t.Fatalf("bridged boxes must violate isolation with a witness: %v", v)
	}
}

func TestWaypointProperty(t *testing.T) {
	// Chain a -> w -> b(h): waypoint w holds. Add a bypass link a -> b and
	// a route using it: waypoint breaks.
	layout := netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: 0.01}).Layout
	ds := &netgen.Dataset{Name: "chain", Layout: layout}
	ds.Boxes = []netgen.BoxSpec{
		{Name: "a", NumPorts: 3, PortACL: map[int]*rule.ACL{}},
		{Name: "w", NumPorts: 2, PortACL: map[int]*rule.ACL{}},
		{Name: "b", NumPorts: 3, PortACL: map[int]*rule.ACL{}},
	}
	ds.Links = []netgen.Link{{A: 0, PA: 0, B: 1, PB: 0}, {A: 1, PA: 1, B: 2, PB: 0}, {A: 0, PA: 2, B: 2, PB: 2}}
	ds.Hosts = []netgen.Host{{Box: 2, Port: 1, Name: "h"}}
	p10 := rule.P(0x0A000000, 8)
	ds.Boxes[0].Fwd.Add(rule.FwdRule{Prefix: p10, Port: 0}) // a -> w
	ds.Boxes[1].Fwd.Add(rule.FwdRule{Prefix: p10, Port: 1}) // w -> b
	ds.Boxes[2].Fwd.Add(rule.FwdRule{Prefix: p10, Port: 1}) // b -> h
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	props := []Property{{Kind: Waypoint, From: 0, Host: "h", Via: 1}}
	if v := Check(c, props); len(v) != 0 {
		t.Fatalf("waypoint should hold: %v", v)
	}
	// Reroute half of 10/8 over the bypass link (port 2 of a).
	c.AddFwdRule(0, rule.FwdRule{Prefix: rule.P(0x0A000000, 9), Port: 2})
	v := Check(c, props)
	if len(v) != 1 || v[0].Witness == bdd.False {
		t.Fatalf("bypass must violate the waypoint with a witness: %v", v)
	}
}

func TestKindAndPropertyStrings(t *testing.T) {
	for _, p := range []Property{
		{Kind: Reachable, Host: "h"},
		{Kind: NotReachable, Host: "h"},
		{Kind: Waypoint, Host: "h", Via: 2},
		{Kind: LoopFree},
		{Kind: Isolated, To: 3},
	} {
		if p.String() == "unknown()" || p.Kind.String() == "" {
			t.Fatalf("bad rendering for %v", p.Kind)
		}
	}
}
