package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// brute evaluates a formula over nvars variables for every assignment and
// compares against the BDD, proving functional equality.
func assertEqualFunc(t *testing.T, d *DD, f Ref, nvars int, want func(a uint) bool) {
	t.Helper()
	for a := uint(0); a < 1<<uint(nvars); a++ {
		got := d.Eval(f, func(i int) bool { return a&(1<<uint(i)) != 0 })
		if got != want(a) {
			t.Fatalf("assignment %0*b: got %v, want %v", nvars, a, got, want(a))
		}
	}
}

func TestTerminals(t *testing.T) {
	d := New(4)
	if d.Eval(True, func(int) bool { return false }) != true {
		t.Fatal("True must evaluate to true")
	}
	if d.Eval(False, func(int) bool { return true }) != false {
		t.Fatal("False must evaluate to false")
	}
	if d.Size() != 2 {
		t.Fatalf("fresh DD size = %d, want 2", d.Size())
	}
}

func TestVarAndNVar(t *testing.T) {
	d := New(3)
	for i := 0; i < 3; i++ {
		i := i
		assertEqualFunc(t, d, d.Var(i), 3, func(a uint) bool { return a&(1<<uint(i)) != 0 })
		assertEqualFunc(t, d, d.NVar(i), 3, func(a uint) bool { return a&(1<<uint(i)) == 0 })
	}
}

func TestCanonicity(t *testing.T) {
	d := New(4)
	// Two different derivations of the same function must share the Ref.
	a := d.And(d.Var(0), d.Var(1))
	b := d.Not(d.Or(d.Not(d.Var(0)), d.Not(d.Var(1)))) // De Morgan
	if a != b {
		t.Fatalf("canonical forms differ: %d vs %d", a, b)
	}
	x := d.Xor(d.Var(2), d.Var(3))
	y := d.Or(d.And(d.Var(2), d.Not(d.Var(3))), d.And(d.Not(d.Var(2)), d.Var(3)))
	if x != y {
		t.Fatalf("xor expansions differ: %d vs %d", x, y)
	}
}

func TestBasicOps(t *testing.T) {
	d := New(4)
	v := []Ref{d.Var(0), d.Var(1), d.Var(2), d.Var(3)}
	cases := []struct {
		name string
		f    Ref
		want func(a uint) bool
	}{
		{"and", d.And(v[0], v[1]), func(a uint) bool { return a&1 != 0 && a&2 != 0 }},
		{"or", d.Or(v[0], v[2]), func(a uint) bool { return a&1 != 0 || a&4 != 0 }},
		{"xor", d.Xor(v[1], v[3]), func(a uint) bool { return (a&2 != 0) != (a&8 != 0) }},
		{"diff", d.Diff(v[0], v[1]), func(a uint) bool { return a&1 != 0 && a&2 == 0 }},
		{"not", d.Not(v[2]), func(a uint) bool { return a&4 == 0 }},
		{"ite", d.Ite(v[0], v[1], v[2]), func(a uint) bool {
			if a&1 != 0 {
				return a&2 != 0
			}
			return a&4 != 0
		}},
		{"andn", d.AndN(v[0], v[1], v[2]), func(a uint) bool { return a&7 == 7 }},
		{"orn", d.OrN(v[1], v[2], v[3]), func(a uint) bool { return a&14 != 0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { assertEqualFunc(t, d, c.f, 4, c.want) })
	}
}

// formula is a random boolean expression tree used to fuzz the engine.
type formula struct {
	op       byte // 'v' leaf, '&', '|', '^', '!', '?'
	v        int
	l, r, ri *formula
}

func genFormula(rng *rand.Rand, depth, nvars int) *formula {
	if depth == 0 || rng.Intn(3) == 0 {
		return &formula{op: 'v', v: rng.Intn(nvars)}
	}
	switch rng.Intn(5) {
	case 0:
		return &formula{op: '&', l: genFormula(rng, depth-1, nvars), r: genFormula(rng, depth-1, nvars)}
	case 1:
		return &formula{op: '|', l: genFormula(rng, depth-1, nvars), r: genFormula(rng, depth-1, nvars)}
	case 2:
		return &formula{op: '^', l: genFormula(rng, depth-1, nvars), r: genFormula(rng, depth-1, nvars)}
	case 3:
		return &formula{op: '!', l: genFormula(rng, depth-1, nvars)}
	default:
		return &formula{op: '?', l: genFormula(rng, depth-1, nvars), r: genFormula(rng, depth-1, nvars), ri: genFormula(rng, depth-1, nvars)}
	}
}

func (f *formula) build(d *DD) Ref {
	switch f.op {
	case 'v':
		return d.Var(f.v)
	case '&':
		return d.And(f.l.build(d), f.r.build(d))
	case '|':
		return d.Or(f.l.build(d), f.r.build(d))
	case '^':
		return d.Xor(f.l.build(d), f.r.build(d))
	case '!':
		return d.Not(f.l.build(d))
	default:
		return d.Ite(f.l.build(d), f.r.build(d), f.ri.build(d))
	}
}

func (f *formula) eval(a uint) bool {
	switch f.op {
	case 'v':
		return a&(1<<uint(f.v)) != 0
	case '&':
		return f.l.eval(a) && f.r.eval(a)
	case '|':
		return f.l.eval(a) || f.r.eval(a)
	case '^':
		return f.l.eval(a) != f.r.eval(a)
	case '!':
		return !f.l.eval(a)
	default:
		if f.l.eval(a) {
			return f.r.eval(a)
		}
		return f.ri.eval(a)
	}
}

func TestRandomFormulasMatchTruthTable(t *testing.T) {
	const nvars = 6
	rng := rand.New(rand.NewSource(42))
	d := New(nvars)
	for trial := 0; trial < 200; trial++ {
		f := genFormula(rng, 5, nvars)
		r := f.build(d)
		for a := uint(0); a < 1<<nvars; a++ {
			if d.Eval(r, func(i int) bool { return a&(1<<uint(i)) != 0 }) != f.eval(a) {
				t.Fatalf("trial %d assignment %06b mismatch", trial, a)
			}
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after fuzzing: %v", err)
	}
}

func TestAlgebraicLawsQuick(t *testing.T) {
	const nvars = 8
	d := New(nvars)
	rng := rand.New(rand.NewSource(7))
	randF := func() Ref { return genFormula(rng, 4, nvars).build(d) }
	check := func(name string, law func() bool) {
		if err := quick.Check(func(uint8) bool { return law() }, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("law %s: %v", name, err)
		}
	}
	check("double negation", func() bool { f := randF(); return d.Not(d.Not(f)) == f })
	check("and idempotent", func() bool { f := randF(); return d.And(f, f) == f })
	check("or idempotent", func() bool { f := randF(); return d.Or(f, f) == f })
	check("excluded middle", func() bool { f := randF(); return d.Or(f, d.Not(f)) == True })
	check("contradiction", func() bool { f := randF(); return d.And(f, d.Not(f)) == False })
	check("de morgan", func() bool {
		f, g := randF(), randF()
		return d.Not(d.And(f, g)) == d.Or(d.Not(f), d.Not(g))
	})
	check("distribution", func() bool {
		f, g, h := randF(), randF(), randF()
		return d.And(f, d.Or(g, h)) == d.Or(d.And(f, g), d.And(f, h))
	})
	check("diff as and-not", func() bool {
		f, g := randF(), randF()
		return d.Diff(f, g) == d.And(f, d.Not(g))
	})
	check("ite as or-of-ands", func() bool {
		f, g, h := randF(), randF(), randF()
		return d.Ite(f, g, h) == d.Or(d.And(f, g), d.And(d.Not(f), h))
	})
	check("implies reflexive", func() bool { f := randF(); return d.Implies(f, f) })
	check("absorption", func() bool {
		f, g := randF(), randF()
		return d.Or(f, d.And(f, g)) == f && d.And(f, d.Or(f, g)) == f
	})
}

func TestSatCount(t *testing.T) {
	d := New(5)
	cases := []struct {
		name string
		f    Ref
		want float64
	}{
		{"false", False, 0},
		{"true", True, 32},
		{"single var", d.Var(0), 16},
		{"and two", d.And(d.Var(0), d.Var(1)), 8},
		{"or two", d.Or(d.Var(0), d.Var(1)), 24},
		{"xor", d.Xor(d.Var(3), d.Var(4)), 16},
		{"all vars", d.AndN(d.Var(0), d.Var(1), d.Var(2), d.Var(3), d.Var(4)), 1},
	}
	for _, c := range cases {
		if got := d.SatCount(c.f); got != c.want {
			t.Errorf("%s: SatCount = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSatCountMatchesBruteForce(t *testing.T) {
	const nvars = 7
	d := New(nvars)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		f := genFormula(rng, 5, nvars)
		r := f.build(d)
		want := 0
		for a := uint(0); a < 1<<nvars; a++ {
			if f.eval(a) {
				want++
			}
		}
		if got := d.SatCount(r); got != float64(want) {
			t.Fatalf("trial %d: SatCount = %v, want %d", trial, got, want)
		}
	}
}

func TestAnySat(t *testing.T) {
	const nvars = 6
	d := New(nvars)
	if d.AnySat(False) != nil {
		t.Fatal("AnySat(False) must be nil")
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		f := genFormula(rng, 5, nvars)
		r := f.build(d)
		if r == False {
			continue
		}
		a := d.AnySat(r)
		if a == nil {
			t.Fatalf("trial %d: no assignment for satisfiable BDD", trial)
		}
		// Any completion of don't-cares must satisfy f; check the all-zero one.
		var packed uint
		for i, v := range a {
			if v == 1 {
				packed |= 1 << uint(i)
			}
		}
		if !f.eval(packed) {
			t.Fatalf("trial %d: AnySat assignment %v does not satisfy formula", trial, a)
		}
	}
}

func TestEvalBits(t *testing.T) {
	d := New(16)
	f := d.AndN(d.Var(0), d.NVar(5), d.Var(12))
	bits := make([]byte, 2)
	set := func(i int) { bits[i/8] |= 0x80 >> uint(i%8) }
	set(0)
	set(12)
	if !d.EvalBits(f, bits) {
		t.Fatal("expected match")
	}
	set(5)
	if d.EvalBits(f, bits) {
		t.Fatal("expected mismatch after setting bit 5")
	}
}

func TestEvalBitsAgreesWithEval(t *testing.T) {
	const nvars = 24
	d := New(nvars)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		f := genFormula(rng, 6, nvars).build(d)
		bits := make([]byte, 3)
		rng.Read(bits)
		want := d.Eval(f, func(i int) bool { return bits[i/8]&(0x80>>uint(i%8)) != 0 })
		if got := d.EvalBits(f, bits); got != want {
			t.Fatalf("trial %d: EvalBits=%v Eval=%v", trial, got, want)
		}
	}
}

func TestFromPrefix(t *testing.T) {
	d := New(32)
	// 10.0.0.0/8 at offset 0 over a 32-bit field.
	f := d.FromPrefix(0, 0x0A000000, 8, 32)
	match := func(ip uint32) bool {
		bits := []byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)}
		return d.EvalBits(f, bits)
	}
	if !match(0x0A000001) || !match(0x0AFFFFFF) {
		t.Fatal("addresses inside 10.0.0.0/8 must match")
	}
	if match(0x0B000000) || match(0x09FFFFFF) {
		t.Fatal("addresses outside 10.0.0.0/8 must not match")
	}
	if got, want := d.SatCount(f), float64(uint64(1)<<24); got != want {
		t.Fatalf("SatCount = %v, want %v", got, want)
	}
	if d.FromPrefix(0, 0, 0, 32) != True {
		t.Fatal("zero-length prefix must be True")
	}
	if d.NodeCount(f) != 8 {
		t.Fatalf("a /8 must be an 8-node chain, got %d", d.NodeCount(f))
	}
}

func TestFromValue(t *testing.T) {
	d := New(16)
	f := d.FromValue(0, 0xBEEF, 16)
	if got := d.SatCount(f); got != 1 {
		t.Fatalf("exact value SatCount = %v, want 1", got)
	}
	if !d.EvalBits(f, []byte{0xBE, 0xEF}) {
		t.Fatal("exact value must match its own bits")
	}
	if d.EvalBits(f, []byte{0xBE, 0xEE}) {
		t.Fatal("different value must not match")
	}
}

func TestFromRange(t *testing.T) {
	d := New(16)
	check := func(lo, hi uint64) {
		f := d.FromRange(0, lo, hi, 16)
		if got, want := d.SatCount(f), float64(hi-lo+1); got != want {
			t.Fatalf("range [%d,%d]: SatCount = %v, want %v", lo, hi, got, want)
		}
		for _, probe := range []uint64{lo, hi, (lo + hi) / 2, lo - 1, hi + 1} {
			if probe > 0xFFFF {
				continue
			}
			bits := []byte{byte(probe >> 8), byte(probe)}
			want := probe >= lo && probe <= hi
			if lo == 0 && probe == lo-1 { // underflow wrapped
				continue
			}
			if got := d.EvalBits(f, bits); got != want {
				t.Fatalf("range [%d,%d] probe %d: got %v, want %v", lo, hi, probe, got, want)
			}
		}
	}
	check(0, 0xFFFF)
	check(80, 80)
	check(1024, 65535)
	check(0, 1023)
	check(53, 1000)
	check(1, 0xFFFE)
	if d.FromRange(0, 5, 4, 16) != False {
		t.Fatal("empty range must be False")
	}
}

func TestFromRangeQuick(t *testing.T) {
	d := New(12)
	err := quick.Check(func(a, b uint16, probe uint16) bool {
		lo, hi := uint64(a&0xFFF), uint64(b&0xFFF)
		if lo > hi {
			lo, hi = hi, lo
		}
		p := uint64(probe & 0xFFF)
		f := d.FromRange(0, lo, hi, 12)
		bits := []byte{byte(p >> 4), byte(p << 4)}
		return d.EvalBits(f, bits) == (p >= lo && p <= hi)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFromTernary(t *testing.T) {
	d := New(8)
	f := d.FromTernary("10**01")
	for a := uint(0); a < 256; a++ {
		bits := []byte{byte(a)}
		want := bits[0]&0x80 != 0 && bits[0]&0x40 == 0 && bits[0]&0x08 == 0 && bits[0]&0x04 != 0
		if got := d.EvalBits(f, bits); got != want {
			t.Fatalf("pattern 10**01 on %08b: got %v want %v", a, got, want)
		}
	}
	if d.FromTernary("") != True {
		t.Fatal("empty ternary pattern must be True")
	}
	if d.FromTernary("********") != True {
		t.Fatal("all-wildcard pattern must be True")
	}
}

func TestGC(t *testing.T) {
	d := New(16)
	kept := d.Retain(d.AndN(d.Var(0), d.Var(1), d.Var(2)))
	temp := d.OrN(d.Var(3), d.Var(4), d.Var(5), d.Var(6))
	_ = temp
	before := d.Size()
	freed := d.GC()
	if freed == 0 {
		t.Fatal("GC should free the unretained OR chain")
	}
	if d.Size() >= before {
		t.Fatalf("size did not shrink: %d -> %d", before, d.Size())
	}
	// The retained function must still be intact and correct.
	assertEqualFunc(t, d, kept, 8, func(a uint) bool { return a&7 == 7 })
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("invariants after GC: %v", err)
	}
	// Rebuilding the freed function must work and reuse freed slots.
	re := d.OrN(d.Var(3), d.Var(4), d.Var(5), d.Var(6))
	assertEqualFunc(t, d, re, 8, func(a uint) bool { return a&0x78 != 0 })
}

func TestGCPreservesSharedSubgraphs(t *testing.T) {
	d := New(8)
	shared := d.And(d.Var(6), d.Var(7))
	a := d.Retain(d.Or(d.Var(0), shared))
	b := d.Or(d.Var(1), shared) // unretained, but `shared` is reachable via a
	_ = b
	d.GC()
	if !d.Eval(a, func(i int) bool { return i >= 6 }) {
		t.Fatal("shared subgraph corrupted by GC")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRetainRelease(t *testing.T) {
	d := New(8)
	f := d.And(d.Var(0), d.Var(1))
	d.Retain(f)
	d.Retain(f)
	d.Release(f)
	d.GC()
	if d.Eval(f, func(i int) bool { return true }) != true {
		t.Fatal("doubly-retained node must survive one release + GC")
	}
	d.Release(f)
	d.GC()
	// f's slot is now free; rebuilding must give a valid node again.
	g := d.And(d.Var(0), d.Var(1))
	assertEqualFunc(t, d, g, 4, func(a uint) bool { return a&3 == 3 })
}

func TestReleasePanicsOnUnretained(t *testing.T) {
	d := New(4)
	f := d.And(d.Var(0), d.Var(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Release of unretained node must panic")
		}
	}()
	d.Release(f)
}

func TestOperationsAfterGCStayCanonical(t *testing.T) {
	const nvars = 8
	d := New(nvars)
	rng := rand.New(rand.NewSource(23))
	var retained []Ref
	var forms []*formula
	for round := 0; round < 10; round++ {
		for i := 0; i < 20; i++ {
			f := genFormula(rng, 5, nvars)
			r := f.build(d)
			if i%4 == 0 {
				retained = append(retained, d.Retain(r))
				forms = append(forms, f)
			}
		}
		d.GC()
		for i, r := range retained {
			for probe := 0; probe < 16; probe++ {
				a := uint(rng.Intn(1 << nvars))
				if d.Eval(r, func(j int) bool { return a&(1<<uint(j)) != 0 }) != forms[i].eval(a) {
					t.Fatalf("round %d: retained BDD %d corrupted", round, i)
				}
			}
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestNodeCount(t *testing.T) {
	d := New(8)
	if d.NodeCount(True) != 0 || d.NodeCount(False) != 0 {
		t.Fatal("terminals have zero node count")
	}
	if d.NodeCount(d.Var(0)) != 1 {
		t.Fatal("a literal is one node")
	}
	chain := d.AndN(d.Var(0), d.Var(1), d.Var(2), d.Var(3))
	if d.NodeCount(chain) != 4 {
		t.Fatalf("4-literal cube should be 4 nodes, got %d", d.NodeCount(chain))
	}
}

func TestImpliesAndDisjoint(t *testing.T) {
	d := New(8)
	sub := d.FromPrefix(0, 0b10100000, 4, 8)  // 1010****
	sup := d.FromPrefix(0, 0b10000000, 2, 8)  // 10******
	othr := d.FromPrefix(0, 0b01000000, 2, 8) // 01******
	if !d.Implies(sub, sup) {
		t.Fatal("longer prefix must imply shorter covering prefix")
	}
	if d.Implies(sup, sub) {
		t.Fatal("shorter prefix must not imply longer one")
	}
	if !d.Disjoint(sub, othr) || !d.Disjoint(sup, othr) {
		t.Fatal("non-overlapping prefixes must be disjoint")
	}
	if d.Disjoint(sub, sup) {
		t.Fatal("nested prefixes are not disjoint")
	}
}

func TestMemBytesAndSizeGrow(t *testing.T) {
	d := New(32)
	m0, s0 := d.MemBytes(), d.Size()
	for i := 0; i < 1000; i++ {
		d.FromValue(0, uint64(i), 32)
	}
	if d.Size() <= s0 {
		t.Fatal("size must grow after building many values")
	}
	if d.MemBytes() < m0 {
		t.Fatal("MemBytes must not shrink while building")
	}
}

func TestLargeVariableCount(t *testing.T) {
	d := New(104) // 5-tuple layout width
	f := d.AndN(
		d.FromPrefix(0, 0x0A000000, 8, 32),
		d.FromPrefix(32, 0xC0A80000, 16, 32),
		d.FromValue(64, 443, 16),
		d.FromRange(80, 1024, 65535, 16),
		d.FromValue(96, 6, 8),
	)
	if f == False {
		t.Fatal("conjunction of compatible field constraints must be satisfiable")
	}
	a := d.AnySat(f)
	if a == nil {
		t.Fatal("AnySat must find an assignment")
	}
	if got := d.SatCount(f); got <= 0 {
		t.Fatalf("SatCount = %v, want positive", got)
	}
}

func TestOpsCounter(t *testing.T) {
	d := New(16)
	before := d.Ops()
	d.And(d.FromPrefix(0, 0xAB00, 8, 16), d.FromPrefix(0, 0xA000, 4, 16))
	if d.Ops() <= before {
		t.Fatal("apply work must increment the ops counter")
	}
}

func TestNewWithCacheValidation(t *testing.T) {
	d := NewWithCache(8, 1<<10)
	if d.MemBytes() <= 0 {
		t.Fatal("cache-sized DD must report memory")
	}
	for _, bad := range []int{0, -1, 3, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cache size %d must panic", bad)
				}
			}()
			NewWithCache(8, bad)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("zero variables must panic")
		}
	}()
	New(0)
}

func TestLiveMemBytesShrinksAfterGC(t *testing.T) {
	d := New(32)
	kept := d.Retain(d.FromPrefix(0, 0x0A000000, 8, 32))
	for i := 0; i < 500; i++ {
		d.FromValue(0, uint64(i)*2654435761, 32)
	}
	before := d.LiveMemBytes()
	d.GC()
	after := d.LiveMemBytes()
	if after >= before {
		t.Fatalf("live memory must shrink after GC: %d -> %d", before, after)
	}
	_ = kept
	if d.MemBytes() < after {
		t.Fatal("allocated memory must be at least live memory")
	}
}

func BenchmarkApplyAnd(b *testing.B) {
	d := New(32)
	rng := rand.New(rand.NewSource(1))
	ps := make([]Ref, 256)
	for i := range ps {
		ps[i] = d.Retain(d.FromPrefix(0, uint64(rng.Uint32()), 8+rng.Intn(17), 32))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.And(ps[i%256], ps[(i*7+3)%256])
	}
}

func BenchmarkEvalBits(b *testing.B) {
	d := New(32)
	f := d.FromPrefix(0, 0x0A0B0000, 16, 32)
	bits := []byte{0x0A, 0x0B, 0xCC, 0xDD}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.EvalBits(f, bits)
	}
}
