package bdd

import "fmt"

// FromPrefix returns the BDD matching the leading length bits of value
// (an unsigned field of width bits) placed at variable offset. Bit 0 of the
// field is its most significant bit, i.e. variable offset. A length of 0
// matches everything.
//
// Building bottom-up yields the minimal chain of length nodes without any
// apply calls.
func (d *DD) FromPrefix(offset int, value uint64, length, width int) Ref {
	if length < 0 || length > width {
		panic(fmt.Sprintf("bdd: prefix length %d out of range [0,%d]", length, width))
	}
	if offset < 0 || offset+width > d.numVars {
		panic(fmt.Sprintf("bdd: field [%d,%d) out of variable range", offset, offset+width))
	}
	r := True
	for i := length - 1; i >= 0; i-- {
		v := int32(offset + i)
		if value&(1<<uint(width-1-i)) != 0 {
			r = d.mk(v, False, r)
		} else {
			r = d.mk(v, r, False)
		}
	}
	return r
}

// FromValue returns the BDD matching the exact width-bit value at offset.
func (d *DD) FromValue(offset int, value uint64, width int) Ref {
	return d.FromPrefix(offset, value, width, width)
}

// FromRange returns the BDD matching lo ≤ field ≤ hi for the width-bit field
// at offset, by decomposing the range into maximal aligned prefixes (the
// standard range-to-prefix expansion used for ACL port ranges).
func (d *DD) FromRange(offset int, lo, hi uint64, width int) Ref {
	if lo > hi {
		return False
	}
	max := uint64(1)<<uint(width) - 1
	if hi > max {
		panic(fmt.Sprintf("bdd: range bound %d exceeds %d-bit field", hi, width))
	}
	r := False
	for lo <= hi {
		// Largest aligned block starting at lo that fits within [lo, hi].
		size := uint64(1)
		for lo+size*2-1 <= hi && lo&(size*2-1) == 0 && size*2 != 0 {
			size *= 2
		}
		bits := 0
		for s := size; s > 1; s >>= 1 {
			bits++
		}
		r = d.Or(r, d.FromPrefix(offset, lo, width-bits, width))
		if lo+size-1 == max {
			break // avoid wrap-around
		}
		lo += size
	}
	return r
}

// FromTernary returns the BDD matching a ternary bit pattern over the whole
// variable range: '0', '1' match that bit value, '*' or 'x' match both.
// The pattern may be shorter than NumVars; missing trailing bits are '*'.
func (d *DD) FromTernary(pattern string) Ref {
	if len(pattern) > d.numVars {
		panic(fmt.Sprintf("bdd: ternary pattern longer (%d) than variable count (%d)", len(pattern), d.numVars))
	}
	r := True
	for i := len(pattern) - 1; i >= 0; i-- {
		switch pattern[i] {
		case '1':
			r = d.mk(int32(i), False, r)
		case '0':
			r = d.mk(int32(i), r, False)
		case '*', 'x', 'X':
		default:
			panic(fmt.Sprintf("bdd: invalid ternary character %q", pattern[i]))
		}
	}
	return r
}
