package bdd

// opCache is a direct-mapped cache for apply/ite results. A fixed-size
// array cache (rather than a map) keeps the hot classification-construction
// path allocation-free; collisions simply overwrite.
type opCache struct {
	entries []cacheEntry
	mask    uint32
}

type cacheEntry struct {
	a, b, c Ref
	op      uint8
	valid   bool
	result  Ref
}

func (c *opCache) init(size int) {
	c.entries = make([]cacheEntry, size)
	c.mask = uint32(size - 1)
}

func (c *opCache) memBytes() int { return len(c.entries) * 20 }

func (c *opCache) clear() {
	for i := range c.entries {
		c.entries[i].valid = false
	}
}

func cacheHash(op uint8, a, b, c Ref) uint32 {
	h := uint64(uint32(a))*0x9e3779b97f4a7c15 + uint64(uint32(b))*0xc2b2ae3d27d4eb4f + uint64(uint32(c))*0x165667b19e3779f9 + uint64(op)
	h ^= h >> 31
	h *= 0x7fb5d329728ea185
	h ^= h >> 29
	return uint32(h)
}

func (c *opCache) get2(op uint8, a, b Ref) (Ref, bool) { return c.get3(op, a, b, 0) }

func (c *opCache) put2(op uint8, a, b, r Ref) { c.put3(op, a, b, 0, r) }

func (c *opCache) get3(op uint8, a, b, cc Ref) (Ref, bool) {
	e := &c.entries[cacheHash(op, a, b, cc)&c.mask]
	if e.valid && e.op == op && e.a == a && e.b == b && e.c == cc {
		return e.result, true
	}
	return 0, false
}

func (c *opCache) put3(op uint8, a, b, cc, r Ref) {
	e := &c.entries[cacheHash(op, a, b, cc)&c.mask]
	*e = cacheEntry{a: a, b: b, c: cc, op: op, valid: true, result: r}
}
