package bdd

import "fmt"

// VarSet selects a subset of variables for quantification, as a sorted
// list of variable indices.
type VarSet []int

// NewVarSet validates and normalizes a variable list.
func NewVarSet(vars ...int) VarSet {
	out := append(VarSet(nil), vars...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	for i := 1; i < len(out); i++ {
		if out[i] == out[i-1] {
			panic(fmt.Sprintf("bdd: duplicate variable %d in VarSet", out[i]))
		}
	}
	return out
}

func (vs VarSet) contains(v int32) bool {
	for _, x := range vs {
		if int32(x) == v {
			return true
		}
		if int32(x) > v {
			return false
		}
	}
	return false
}

// Exists existentially quantifies the variables of vs out of f:
// ∃x.f = f[x:=0] ∨ f[x:=1]. Used, e.g., to project a 5-tuple predicate
// onto its destination field.
func (d *DD) Exists(f Ref, vs VarSet) Ref {
	memo := make(map[Ref]Ref)
	var walk func(Ref) Ref
	walk = func(f Ref) Ref {
		if f <= True {
			return f
		}
		if r, ok := memo[f]; ok {
			return r
		}
		n := d.nodes[f]
		lo, hi := walk(n.low), walk(n.high)
		var r Ref
		if vs.contains(n.level) {
			r = d.Or(lo, hi)
		} else {
			r = d.mk(n.level, lo, hi)
		}
		memo[f] = r
		return r
	}
	return walk(f)
}

// ForAll universally quantifies the variables of vs out of f:
// ∀x.f = f[x:=0] ∧ f[x:=1].
func (d *DD) ForAll(f Ref, vs VarSet) Ref {
	memo := make(map[Ref]Ref)
	var walk func(Ref) Ref
	walk = func(f Ref) Ref {
		if f <= True {
			return f
		}
		if r, ok := memo[f]; ok {
			return r
		}
		n := d.nodes[f]
		lo, hi := walk(n.low), walk(n.high)
		var r Ref
		if vs.contains(n.level) {
			r = d.And(lo, hi)
		} else {
			r = d.mk(n.level, lo, hi)
		}
		memo[f] = r
		return r
	}
	return walk(f)
}

// Restrict cofactors f by the given partial assignment (variable → value):
// every listed variable is fixed to its value and disappears from the
// result.
func (d *DD) Restrict(f Ref, assign map[int]bool) Ref {
	memo := make(map[Ref]Ref)
	var walk func(Ref) Ref
	walk = func(f Ref) Ref {
		if f <= True {
			return f
		}
		if r, ok := memo[f]; ok {
			return r
		}
		n := d.nodes[f]
		var r Ref
		if v, ok := assign[int(n.level)]; ok {
			if v {
				r = walk(n.high)
			} else {
				r = walk(n.low)
			}
		} else {
			r = d.mk(n.level, walk(n.low), walk(n.high))
		}
		memo[f] = r
		return r
	}
	return walk(f)
}

// Support returns the variables f actually depends on, in increasing
// order.
func (d *DD) Support(f Ref) []int {
	seen := make(map[Ref]bool)
	vars := make(map[int32]bool)
	var walk func(Ref)
	walk = func(f Ref) {
		if f <= True || seen[f] {
			return
		}
		seen[f] = true
		n := d.nodes[f]
		vars[n.level] = true
		walk(n.low)
		walk(n.high)
	}
	walk(f)
	out := make([]int, 0, len(vars))
	for v := int32(0); v < int32(d.numVars); v++ {
		if vars[v] {
			out = append(out, int(v))
		}
	}
	return out
}
