//go:build apdebug

// Debug-tagged wrappers: with -tags apdebug every GC already self-checks
// via debugAfterGC; these tests drive GC-heavy workloads through that path
// and additionally call the checks directly so a failure reports through
// the testing package rather than a panic.
package bdd

import (
	"math/rand"
	"testing"
)

func TestApdebugGCAuditUnderChurn(t *testing.T) {
	if !Debug {
		t.Fatal("apdebug build tag set but Debug is false")
	}
	rng := rand.New(rand.NewSource(7))
	d := New(24)
	var kept []Ref
	for round := 0; round < 6; round++ {
		// Build a pile of random conjunctions, retain a few, drop the rest.
		for i := 0; i < 40; i++ {
			f := True
			for j := 0; j < 6; j++ {
				v := rng.Intn(24)
				if rng.Intn(2) == 0 {
					f = d.And(f, d.Var(v))
				} else {
					f = d.And(f, d.NVar(v))
				}
			}
			if rng.Intn(4) == 0 && f > True {
				d.Retain(f)
				kept = append(kept, f)
			}
		}
		// Release a random half of what we kept.
		for i := 0; i < len(kept); {
			if rng.Intn(2) == 0 {
				d.Release(kept[i])
				kept[i] = kept[len(kept)-1]
				kept = kept[:len(kept)-1]
			} else {
				i++
			}
		}
		d.GC() // debugAfterGC runs the sanitizers inside
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := d.AuditAfterGC(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// Drain the remaining roots; the final GC must leave only terminals.
	for _, f := range kept {
		d.Release(f)
	}
	d.GC()
	if d.Size() != 2 {
		t.Fatalf("after releasing all roots, %d nodes live, want 2 terminals", d.Size())
	}
	if err := d.AuditAfterGC(); err != nil {
		t.Fatal(err)
	}
}

func TestApdebugAuditCountsSharedRoots(t *testing.T) {
	d := New(8)
	f := d.And(d.Var(0), d.Var(1))
	d.Retain(f)
	d.Retain(f) // double retain, single root entry with count 2
	d.GC()
	if err := d.AuditAfterGC(); err != nil {
		t.Fatal(err)
	}
	d.Release(f)
	d.GC()
	if err := d.AuditAfterGC(); err != nil {
		t.Fatal(err)
	}
	if d.Size() == 2 {
		t.Fatal("node freed while still retained once")
	}
	d.Release(f)
	d.GC()
	if d.Size() != 2 {
		t.Fatalf("%d nodes live after final release, want 2", d.Size())
	}
}
