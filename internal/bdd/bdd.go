// Package bdd implements reduced ordered binary decision diagrams (ROBDDs).
//
// The package is the storage and logic substrate for every predicate in the
// AP Classifier: forwarding predicates, ACL predicates, atomic predicates and
// AP Tree node labels are all BDDs managed by a single DD instance. The
// design follows Bryant's classic formulation: a hash-consed unique table
// guarantees canonicity (two equivalent functions share one node), so
// equality of functions is equality of Refs.
//
// Variables are packet-header bits: variable 0 is the first (most
// significant) filtered bit of the header, matching the convention used by
// AP Verifier, so an IP prefix of length L becomes a conjunction of L
// literals and a chain of L BDD nodes.
//
// Concurrency: a DD is not safe for concurrent mutation. Read-only use
// (Eval/EvalBits) is safe from multiple goroutines as long as no operation
// that can allocate nodes runs concurrently. For readers that must overlap
// a writer, Freeze returns a View: an immutable evaluation view of the
// store's current prefix that stays valid while the writer appends,
// because the store is append-only between garbage collections (see
// View's safety model). The AP Classifier serializes all node-allocating
// work on its update path and publishes Views in epoch snapshots for the
// query path.
package bdd

import (
	"fmt"
	"math"
)

// Ref identifies a BDD node within its owning DD. Refs are stable across
// garbage collections (collection is non-moving) but are only meaningful
// together with the DD that produced them.
type Ref int32

// Terminal nodes. False and True are shared by every DD.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level int32 // variable index; numVars for terminals
	low   Ref   // child when the variable is 0
	high  Ref   // child when the variable is 1
}

// DD is a BDD manager: a node store, a unique table and operation caches for
// a fixed number of Boolean variables.
type DD struct {
	numVars int
	nodes   []node
	// next chains nodes within a unique-table bucket; parallel to nodes.
	next    []Ref
	buckets []Ref
	mask    uint32
	free    []Ref
	live    int // number of live (allocated, not freed) nodes incl. terminals

	cache opCache

	// roots maps externally retained nodes to their retain count. Only
	// nodes reachable from roots survive GC.
	roots map[Ref]int

	ops uint64 // statistics: number of apply steps performed

	// stats holds the remaining work counters (see Stats); published is
	// the watermark of what PublishStats already flushed to obs.
	stats     Stats
	published Stats
}

// New returns a DD over numVars Boolean variables.
func New(numVars int) *DD { return NewWithCache(numVars, 1<<16) }

// NewWithCache is New with an explicit operation-cache size (a power of
// two). Smaller caches trade recomputation for memory; the cache-size
// ablation benchmark sweeps this.
func NewWithCache(numVars, cacheSize int) *DD {
	if numVars <= 0 || numVars >= 1<<20 {
		panic(fmt.Sprintf("bdd: invalid variable count %d", numVars))
	}
	if cacheSize <= 0 || cacheSize&(cacheSize-1) != 0 {
		panic(fmt.Sprintf("bdd: cache size %d not a power of two", cacheSize))
	}
	d := &DD{numVars: numVars, roots: make(map[Ref]int)}
	d.nodes = make([]node, 2, 1024)
	d.next = make([]Ref, 2, 1024)
	d.nodes[False] = node{level: int32(numVars), low: False, high: False}
	d.nodes[True] = node{level: int32(numVars), low: True, high: True}
	d.live = 2
	d.initBuckets(1 << 12)
	d.cache.init(cacheSize)
	return d
}

// NumVars reports the number of Boolean variables the DD was created with.
func (d *DD) NumVars() int { return d.numVars }

// Size reports the number of live nodes, including the two terminals.
func (d *DD) Size() int { return d.live }

// MemBytes estimates the heap footprint of the node store, unique table and
// operation cache in bytes, counting allocated capacity (freed slots
// included). It is used by the memory-usage experiment.
func (d *DD) MemBytes() int {
	return len(d.nodes)*12 + len(d.next)*4 + len(d.buckets)*4 + d.cache.memBytes()
}

// LiveMemBytes estimates the footprint of live nodes only — what a
// compacted manager (e.g. after a Reconstruct into a fresh DD) would
// occupy. Construction scratch that GC has freed is excluded.
func (d *DD) LiveMemBytes() int {
	return d.live*16 + d.cache.memBytes()
}

// Ops reports the cumulative number of apply steps, a machine-independent
// work measure used by ablation benchmarks.
func (d *DD) Ops() uint64 { return d.ops }

func (d *DD) initBuckets(n int) {
	d.buckets = make([]Ref, n)
	for i := range d.buckets {
		d.buckets[i] = -1
	}
	d.mask = uint32(n - 1)
}

func hash3(level int32, low, high Ref) uint32 {
	h := uint64(uint32(level))*0x9e3779b97f4a7c15 ^ uint64(uint32(low))*0xbf58476d1ce4e5b9 ^ uint64(uint32(high))*0x94d049bb133111eb
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return uint32(h)
}

// mk returns the canonical node (level, low, high), applying the reduction
// rules: identical children collapse, and structurally equal nodes are
// shared via the unique table.
func (d *DD) mk(level int32, low, high Ref) Ref {
	if low == high {
		return low
	}
	b := hash3(level, low, high) & d.mask
	for r := d.buckets[b]; r >= 0; r = d.next[r] {
		n := &d.nodes[r]
		if n.level == level && n.low == low && n.high == high {
			return r
		}
	}
	d.stats.NodesAllocated++
	var r Ref
	if n := len(d.free); n > 0 {
		r = d.free[n-1]
		d.free = d.free[:n-1]
		d.nodes[r] = node{level: level, low: low, high: high}
	} else {
		r = Ref(len(d.nodes))
		d.nodes = append(d.nodes, node{level: level, low: low, high: high})
		d.next = append(d.next, -1)
	}
	d.live++
	d.next[r] = d.buckets[b]
	d.buckets[b] = r
	if d.live > len(d.buckets) {
		d.rehash(len(d.buckets) * 2)
	}
	return r
}

func (d *DD) rehash(n int) {
	d.initBuckets(n)
	for r := Ref(2); int(r) < len(d.nodes); r++ {
		nd := d.nodes[r]
		if nd.level < 0 { // freed slot
			continue
		}
		b := hash3(nd.level, nd.low, nd.high) & d.mask
		d.next[r] = d.buckets[b]
		d.buckets[b] = r
	}
}

// Var returns the BDD of the single positive literal x_i.
func (d *DD) Var(i int) Ref {
	d.checkVar(i)
	return d.mk(int32(i), False, True)
}

// NVar returns the BDD of the single negative literal ¬x_i.
func (d *DD) NVar(i int) Ref {
	d.checkVar(i)
	return d.mk(int32(i), True, False)
}

func (d *DD) checkVar(i int) {
	if i < 0 || i >= d.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, d.numVars))
	}
}

// Level reports the variable index labeling node f (NumVars for terminals).
func (d *DD) Level(f Ref) int { return int(d.nodes[f].level) }

// Low returns the 0-successor of node f.
func (d *DD) Low(f Ref) Ref { return d.nodes[f].low }

// High returns the 1-successor of node f.
func (d *DD) High(f Ref) Ref { return d.nodes[f].high }

// Binary operation codes for the apply cache.
const (
	opAnd uint8 = iota + 1
	opOr
	opXor
	opDiff
	opNot
	opIte
	opSat
)

// Not returns ¬f.
func (d *DD) Not(f Ref) Ref {
	switch f {
	case False:
		return True
	case True:
		return False
	}
	if r, ok := d.cache.get2(opNot, f, 0); ok {
		d.stats.CacheHits++
		return r
	}
	d.stats.CacheMisses++
	d.ops++
	n := d.nodes[f]
	r := d.mk(n.level, d.Not(n.low), d.Not(n.high))
	d.cache.put2(opNot, f, 0, r)
	return r
}

// And returns f ∧ g.
func (d *DD) And(f, g Ref) Ref { return d.apply(opAnd, f, g) }

// Or returns f ∨ g.
func (d *DD) Or(f, g Ref) Ref { return d.apply(opOr, f, g) }

// Xor returns f ⊕ g.
func (d *DD) Xor(f, g Ref) Ref { return d.apply(opXor, f, g) }

// Diff returns f ∧ ¬g.
func (d *DD) Diff(f, g Ref) Ref { return d.apply(opDiff, f, g) }

// apply computes a binary Boolean operation by Shannon expansion with
// memoization.
func (d *DD) apply(op uint8, f, g Ref) Ref {
	// Terminal cases.
	switch op {
	case opAnd:
		if f == g {
			return f
		}
		if f == False || g == False {
			return False
		}
		if f == True {
			return g
		}
		if g == True {
			return f
		}
		if f > g { // commutative: normalize operand order for the cache
			f, g = g, f
		}
	case opOr:
		if f == g {
			return f
		}
		if f == True || g == True {
			return True
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f > g {
			f, g = g, f
		}
	case opXor:
		if f == g {
			return False
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f == True {
			return d.Not(g)
		}
		if g == True {
			return d.Not(f)
		}
		if f > g {
			f, g = g, f
		}
	case opDiff:
		if f == False || g == True || f == g {
			return False
		}
		if g == False {
			return f
		}
		if f == True {
			return d.Not(g)
		}
	}
	if r, ok := d.cache.get2(op, f, g); ok {
		d.stats.CacheHits++
		return r
	}
	d.stats.CacheMisses++
	d.ops++
	nf, ng := d.nodes[f], d.nodes[g]
	var level int32
	var f0, f1, g0, g1 Ref
	switch {
	case nf.level == ng.level:
		level, f0, f1, g0, g1 = nf.level, nf.low, nf.high, ng.low, ng.high
	case nf.level < ng.level:
		level, f0, f1, g0, g1 = nf.level, nf.low, nf.high, g, g
	default:
		level, f0, f1, g0, g1 = ng.level, f, f, ng.low, ng.high
	}
	r := d.mk(level, d.apply(op, f0, g0), d.apply(op, f1, g1))
	d.cache.put2(op, f, g, r)
	return r
}

// Ite returns if-then-else(f, g, h) = (f ∧ g) ∨ (¬f ∧ h).
func (d *DD) Ite(f, g, h Ref) Ref {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	case g == False && h == True:
		return d.Not(f)
	}
	if r, ok := d.cache.get3(opIte, f, g, h); ok {
		d.stats.CacheHits++
		return r
	}
	d.stats.CacheMisses++
	d.ops++
	level := d.nodes[f].level
	if l := d.nodes[g].level; l < level {
		level = l
	}
	if l := d.nodes[h].level; l < level {
		level = l
	}
	cof := func(x Ref, hi bool) Ref {
		n := d.nodes[x]
		if n.level != level {
			return x
		}
		if hi {
			return n.high
		}
		return n.low
	}
	r := d.mk(level,
		d.Ite(cof(f, false), cof(g, false), cof(h, false)),
		d.Ite(cof(f, true), cof(g, true), cof(h, true)))
	d.cache.put3(opIte, f, g, h, r)
	return r
}

// Implies reports whether f ⇒ g, i.e. the set of packets of f is contained
// in that of g.
func (d *DD) Implies(f, g Ref) bool { return d.Diff(f, g) == False }

// Disjoint reports whether f ∧ g is unsatisfiable. It short-circuits without
// building the conjunction node set beyond what apply memoization requires.
func (d *DD) Disjoint(f, g Ref) bool { return d.And(f, g) == False }

// AndN folds And over all operands (True for none).
func (d *DD) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = d.And(r, f)
		if r == False {
			return False
		}
	}
	return r
}

// OrN folds Or over all operands (False for none).
func (d *DD) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = d.Or(r, f)
		if r == True {
			return True
		}
	}
	return r
}

// Eval evaluates f under the assignment provided by bit, which must return
// the value of variable i. This is the classification hot path.
func (d *DD) Eval(f Ref, bit func(i int) bool) bool {
	for f > True {
		n := d.nodes[f]
		if bit(int(n.level)) {
			f = n.high
		} else {
			f = n.low
		}
	}
	return f == True
}

// EvalBits evaluates f against a packed bit vector (bit i of the header is
// bit 7-i%8 of byte i/8, i.e. MSB-first), avoiding a closure allocation.
func (d *DD) EvalBits(f Ref, bits []byte) bool {
	nodes := d.nodes
	for f > True {
		n := nodes[f]
		if bits[n.level>>3]&(0x80>>(uint(n.level)&7)) != 0 {
			f = n.high
		} else {
			f = n.low
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments of f over all
// NumVars variables, as a float64 (exact for counts below 2^53).
func (d *DD) SatCount(f Ref) float64 {
	memo := make(map[Ref]float64)
	var count func(Ref) float64
	count = func(f Ref) float64 {
		if f == False {
			return 0
		}
		if f == True {
			return 1
		}
		if v, ok := memo[f]; ok {
			return v
		}
		n := d.nodes[f]
		lo := count(n.low) * math.Exp2(float64(d.nodes[n.low].level-n.level-1))
		hi := count(n.high) * math.Exp2(float64(d.nodes[n.high].level-n.level-1))
		v := lo + hi
		memo[f] = v
		return v
	}
	return count(f) * math.Exp2(float64(d.nodes[f].level))
}

// AnySat returns one satisfying assignment of f as a slice of length
// NumVars with entries 0, 1 or -1 (don't care). It returns nil for False.
func (d *DD) AnySat(f Ref) []int8 {
	if f == False {
		return nil
	}
	a := make([]int8, d.numVars)
	for i := range a {
		a[i] = -1
	}
	for f > True {
		n := d.nodes[f]
		if n.high != False {
			a[n.level] = 1
			f = n.high
		} else {
			a[n.level] = 0
			f = n.low
		}
	}
	return a
}

// NodeCount returns the number of distinct nodes reachable from f,
// excluding terminals.
func (d *DD) NodeCount(f Ref) int {
	seen := make(map[Ref]struct{})
	var walk func(Ref)
	walk = func(f Ref) {
		if f <= True {
			return
		}
		if _, ok := seen[f]; ok {
			return
		}
		seen[f] = struct{}{}
		walk(d.nodes[f].low)
		walk(d.nodes[f].high)
	}
	walk(f)
	return len(seen)
}

// Retain registers f as a GC root. Each Retain must eventually be paired
// with a Release for the node to become collectable.
func (d *DD) Retain(f Ref) Ref {
	if f > True {
		d.roots[f]++
	}
	return f
}

// Release drops one root registration of f.
func (d *DD) Release(f Ref) {
	if f <= True {
		return
	}
	c, ok := d.roots[f]
	if !ok {
		panic(fmt.Sprintf("bdd: Release of unretained node %d", f))
	}
	if c == 1 {
		delete(d.roots, f)
	} else {
		d.roots[f] = c - 1
	}
}

// GC reclaims every node not reachable from a retained root. Collection is
// non-moving: live Refs remain valid. The operation caches are cleared.
// It reports the number of nodes freed.
func (d *DD) GC() int {
	marked := make([]bool, len(d.nodes))
	marked[False], marked[True] = true, true
	var mark func(Ref)
	mark = func(f Ref) {
		if marked[f] {
			return
		}
		marked[f] = true
		n := d.nodes[f]
		mark(n.low)
		mark(n.high)
	}
	for r := range d.roots {
		mark(r)
	}
	freed := 0
	for r := Ref(2); int(r) < len(d.nodes); r++ {
		if !marked[r] && d.nodes[r].level >= 0 {
			d.nodes[r].level = -1
			d.free = append(d.free, r)
			freed++
		}
	}
	d.live -= freed
	d.rehash(len(d.buckets))
	d.cache.clear()
	d.stats.GCRuns++
	d.stats.GCFreed += uint64(freed)
	d.debugAfterGC()
	return freed
}

// CheckInvariants verifies structural soundness of every live node: child
// levels strictly greater than parent level, no node with identical
// children, unique-table canonicity (no structural duplicates), and
// unique-table integrity (every live node findable through its hash
// bucket, so mk cannot re-allocate it). It is used by tests and, under the
// apdebug build tag, after every GC.
func (d *DD) CheckInvariants() error {
	type key struct {
		level     int32
		low, high Ref
	}
	seen := make(map[key]Ref)
	for r := Ref(2); int(r) < len(d.nodes); r++ {
		n := d.nodes[r]
		if n.level < 0 {
			continue
		}
		if n.level >= int32(d.numVars) {
			return fmt.Errorf("node %d: level %d out of range", r, n.level)
		}
		if n.low == n.high {
			return fmt.Errorf("node %d: redundant (low == high == %d)", r, n.low)
		}
		if d.nodes[n.low].level <= n.level && n.low > True {
			return fmt.Errorf("node %d: low child level %d not below %d", r, d.nodes[n.low].level, n.level)
		}
		if d.nodes[n.high].level <= n.level && n.high > True {
			return fmt.Errorf("node %d: high child level %d not below %d", r, d.nodes[n.high].level, n.level)
		}
		k := key{n.level, n.low, n.high}
		if prev, ok := seen[k]; ok {
			return fmt.Errorf("duplicate nodes %d and %d for %+v", prev, r, k)
		}
		seen[k] = r
		b := hash3(n.level, n.low, n.high) & d.mask
		found := false
		for c := d.buckets[b]; c >= 0; c = d.next[c] {
			if c == r {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("node %d missing from its unique-table bucket", r)
		}
	}
	return nil
}

// AuditAfterGC cross-checks the root set against the node store right
// after a garbage collection: every retained root must be a live node, no
// freed slot may be reachable, and the number of nodes reachable from the
// roots (plus the two terminals) must equal the live count — i.e. GC freed
// exactly the garbage and nothing survives without a justifying root.
// Between collections the audit does not hold (construction scratch is
// live but unrooted), so call it only immediately after GC.
func (d *DD) AuditAfterGC() error {
	reach := make([]bool, len(d.nodes))
	reach[False], reach[True] = true, true
	var mark func(Ref) error
	mark = func(f Ref) error {
		if f < 0 || int(f) >= len(d.nodes) {
			return fmt.Errorf("reachable ref %d out of range [0,%d)", f, len(d.nodes))
		}
		if reach[f] {
			return nil
		}
		if d.nodes[f].level < 0 {
			return fmt.Errorf("reachable node %d is freed", f)
		}
		reach[f] = true
		if err := mark(d.nodes[f].low); err != nil {
			return err
		}
		return mark(d.nodes[f].high)
	}
	for r, c := range d.roots {
		if c <= 0 {
			return fmt.Errorf("root %d has non-positive retain count %d", r, c)
		}
		if err := mark(r); err != nil {
			return fmt.Errorf("root %d: %v", r, err)
		}
	}
	n := 0
	for _, ok := range reach {
		if ok {
			n++
		}
	}
	if n != d.live {
		return fmt.Errorf("%d live nodes but %d reachable from %d roots", d.live, n, len(d.roots))
	}
	return nil
}
