//go:build apdebug

package bdd

// Debug reports whether the apdebug runtime sanitizers are compiled in.
const Debug = true

// debugAfterGC runs the full structural invariant check and the
// roots-vs-live audit after every collection, turning silent unique-table
// or refcount corruption into an immediate panic at the GC that exposed
// it. Only compiled under -tags apdebug; release builds pay nothing.
func (d *DD) debugAfterGC() {
	if err := d.CheckInvariants(); err != nil {
		panic("bdd: apdebug invariant violation after GC: " + err.Error())
	}
	if err := d.AuditAfterGC(); err != nil {
		panic("bdd: apdebug audit violation after GC: " + err.Error())
	}
}
