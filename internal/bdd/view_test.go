package bdd

import (
	"math/rand"
	"sync"
	"testing"
)

// TestViewMatchesDD checks that a frozen view evaluates exactly like the
// DD it was taken from, before and after further writer activity.
func TestViewMatchesDD(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := New(24)
	refs := make([]Ref, 16)
	for i := range refs {
		refs[i] = d.Retain(d.FromPrefix(0, uint64(rng.Uint32())>>8, 1+rng.Intn(16), 24))
	}
	v := d.Freeze()
	if v.NumVars() != d.NumVars() {
		t.Fatalf("view vars %d, dd vars %d", v.NumVars(), d.NumVars())
	}
	if v.LiveMemBytes() != d.LiveMemBytes() || v.MemBytes() != d.MemBytes() {
		t.Fatal("view memory stats must match the DD at freeze time")
	}
	pkt := make([]byte, 3)
	check := func() {
		for i := 0; i < 200; i++ {
			rng.Read(pkt)
			for _, f := range refs {
				if got, want := v.EvalBits(f, pkt), d.EvalBits(f, pkt); got != want {
					t.Fatalf("view eval %v, dd eval %v", got, want)
				}
				bit := func(i int) bool { return pkt[i>>3]&(0x80>>(uint(i)&7)) != 0 }
				if got, want := v.Eval(f, bit), d.Eval(f, bit); got != want {
					t.Fatalf("view Eval %v, dd Eval %v", got, want)
				}
			}
		}
	}
	check()
	// The writer keeps allocating: frozen refs must evaluate identically.
	for i := 0; i < 64; i++ {
		d.Retain(d.FromPrefix(0, uint64(rng.Uint32())>>8, 1+rng.Intn(16), 24))
	}
	check()
}

// TestViewConcurrentWithAppends is the memory-model contract test: readers
// evaluate through a published view while a writer appends nodes to the
// same DD. Run under -race this exercises the append-only store guarantee
// the snapshot query path depends on.
func TestViewConcurrentWithAppends(t *testing.T) {
	d := New(24)
	rng := rand.New(rand.NewSource(33))
	refs := make([]Ref, 12)
	for i := range refs {
		refs[i] = d.Retain(d.FromPrefix(0, uint64(rng.Uint32())>>8, 1+rng.Intn(12), 24))
	}
	var published struct {
		sync.Mutex
		v *View
	}
	published.v = d.Freeze()

	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			pkt := make([]byte, 3)
			for {
				select {
				case <-done:
					return
				default:
				}
				published.Lock()
				v := published.v
				published.Unlock()
				rng.Read(pkt)
				for _, f := range refs {
					v.EvalBits(f, pkt)
				}
			}
		}(int64(r))
	}
	// Writer: allocate aggressively (forcing node-store growth and
	// unique-table rehashes) and republish fresh views.
	for i := 0; i < 400; i++ {
		d.Retain(d.FromPrefix(0, uint64(rng.Uint32())>>8, 1+rng.Intn(20), 24))
		if i%16 == 0 {
			v := d.Freeze()
			published.Lock()
			published.v = v
			published.Unlock()
		}
	}
	close(done)
	wg.Wait()
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
