package bdd

import "apclassifier/internal/obs"

// Stats is a snapshot of a DD's cumulative work counters. The fields are
// plain integers maintained by the DD's single mutating goroutine (the
// classifier serializes all node-allocating work under the manager's
// write lock), so updating them costs one register increment in the
// already-memory-bound apply/mk loops — no atomics, no sharing.
type Stats struct {
	// Ops is the number of apply steps (cache-missing recursive calls).
	Ops uint64
	// NodesAllocated counts unique-table misses that allocated or reused
	// a node slot. Shared (hash-consed) hits do not count.
	NodesAllocated uint64
	// CacheHits / CacheMisses count operation-cache probes.
	CacheHits   uint64
	CacheMisses uint64
	// GCRuns counts garbage collections; GCFreed sums nodes reclaimed.
	GCRuns  uint64
	GCFreed uint64
}

// Stats returns the DD's cumulative counters. Like all mutating-path
// state it must not be called concurrently with operations that allocate
// nodes.
func (d *DD) Stats() Stats {
	s := d.stats
	s.Ops = d.ops
	return s
}

// Process-wide bdd counters, aggregated across every DD that publishes.
// Registered at package init so /metrics exposes the family even before
// the first flush.
var (
	mNodesAllocated = obs.Default.Counter("apc_bdd_nodes_allocated_total",
		"BDD nodes allocated (unique-table misses), summed over published DDs.")
	mCacheHits = obs.Default.Counter("apc_bdd_cache_hits_total",
		"BDD operation-cache hits, summed over published DDs.")
	mCacheMisses = obs.Default.Counter("apc_bdd_cache_misses_total",
		"BDD operation-cache misses, summed over published DDs.")
	mApplyOps = obs.Default.Counter("apc_bdd_apply_ops_total",
		"BDD apply steps performed, summed over published DDs.")
	mGCRuns = obs.Default.Counter("apc_bdd_gc_runs_total",
		"BDD garbage collections, summed over published DDs.")
	mGCFreed = obs.Default.Counter("apc_bdd_gc_freed_nodes_total",
		"BDD nodes reclaimed by garbage collection, summed over published DDs.")
)

// PublishStats flushes the delta of the DD's counters since the last
// flush into the process-wide obs registry. The manager calls it at
// publish boundaries (snapshot republish, pre-swap retirement), keeping
// the per-operation hot loops free of atomics: the only atomic writes
// happen here, a handful per flush. Callers must serialize it with the
// DD's mutating operations (the manager holds its write lock).
func (d *DD) PublishStats() {
	s := d.Stats()
	p := d.published
	mNodesAllocated.Add(s.NodesAllocated - p.NodesAllocated)
	mCacheHits.Add(s.CacheHits - p.CacheHits)
	mCacheMisses.Add(s.CacheMisses - p.CacheMisses)
	mApplyOps.Add(s.Ops - p.Ops)
	mGCRuns.Add(s.GCRuns - p.GCRuns)
	mGCFreed.Add(s.GCFreed - p.GCFreed)
	d.published = s
}
