package bdd

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestExistsBasic(t *testing.T) {
	d := New(4)
	f := d.And(d.Var(0), d.Var(1))
	// ∃x1.(x0 ∧ x1) = x0
	if got := d.Exists(f, NewVarSet(1)); got != d.Var(0) {
		t.Fatalf("Exists gave wrong function")
	}
	// ∃x0,x1.(x0 ∧ x1) = True
	if got := d.Exists(f, NewVarSet(0, 1)); got != True {
		t.Fatal("full quantification of satisfiable f must be True")
	}
	if d.Exists(False, NewVarSet(0)) != False {
		t.Fatal("Exists(False) = False")
	}
}

func TestForAllBasic(t *testing.T) {
	d := New(4)
	f := d.Or(d.Var(0), d.Var(1))
	// ∀x1.(x0 ∨ x1) = x0
	if got := d.ForAll(f, NewVarSet(1)); got != d.Var(0) {
		t.Fatal("ForAll gave wrong function")
	}
	// ∀x0.(x0) = False
	if got := d.ForAll(d.Var(0), NewVarSet(0)); got != False {
		t.Fatal("∀x.x must be False")
	}
	if d.ForAll(True, NewVarSet(0, 1)) != True {
		t.Fatal("ForAll(True) = True")
	}
}

func TestQuantificationSemantics(t *testing.T) {
	const nvars = 6
	d := New(nvars)
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		form := genFormula(rng, 5, nvars)
		f := form.build(d)
		v := rng.Intn(nvars)
		ex := d.Exists(f, NewVarSet(v))
		fa := d.ForAll(f, NewVarSet(v))
		for a := uint(0); a < 1<<nvars; a++ {
			a0 := a &^ (1 << uint(v))
			a1 := a | (1 << uint(v))
			wantEx := form.eval(a0) || form.eval(a1)
			wantFa := form.eval(a0) && form.eval(a1)
			get := func(g Ref) bool {
				return d.Eval(g, func(i int) bool { return a&(1<<uint(i)) != 0 })
			}
			if get(ex) != wantEx {
				t.Fatalf("trial %d: Exists wrong at %06b", trial, a)
			}
			if get(fa) != wantFa {
				t.Fatalf("trial %d: ForAll wrong at %06b", trial, a)
			}
		}
		// Duality: ∃x.f = ¬∀x.¬f
		if ex != d.Not(d.ForAll(d.Not(f), NewVarSet(v))) {
			t.Fatalf("trial %d: quantifier duality violated", trial)
		}
	}
}

func TestExistsProjection(t *testing.T) {
	// Project a (src, dst) predicate onto dst: a realistic use — the set
	// of destinations some source can reach.
	d := New(16)
	srcVars := NewVarSet(0, 1, 2, 3, 4, 5, 6, 7)
	f := d.And(
		d.FromPrefix(0, 0xAB, 8, 8), // src == 0xAB
		d.FromPrefix(8, 0x10, 4, 8), // dst in 0x10/4
	)
	proj := d.Exists(f, srcVars)
	want := d.FromPrefix(8, 0x10, 4, 8)
	if proj != want {
		t.Fatal("projection must drop the src constraint")
	}
}

func TestRestrict(t *testing.T) {
	const nvars = 6
	d := New(nvars)
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 100; trial++ {
		form := genFormula(rng, 5, nvars)
		f := form.build(d)
		assign := map[int]bool{}
		for v := 0; v < nvars; v++ {
			if rng.Intn(2) == 0 {
				assign[v] = rng.Intn(2) == 0
			}
		}
		g := d.Restrict(f, assign)
		// The restricted function must not depend on assigned variables.
		for _, v := range d.Support(g) {
			if _, fixed := assign[v]; fixed {
				t.Fatalf("trial %d: restricted BDD still depends on x%d", trial, v)
			}
		}
		for a := uint(0); a < 1<<nvars; a++ {
			aa := a
			for v, val := range assign {
				if val {
					aa |= 1 << uint(v)
				} else {
					aa &^= 1 << uint(v)
				}
			}
			got := d.Eval(g, func(i int) bool { return a&(1<<uint(i)) != 0 })
			if got != form.eval(aa) {
				t.Fatalf("trial %d: Restrict wrong", trial)
			}
		}
	}
}

func TestSupport(t *testing.T) {
	d := New(8)
	f := d.AndN(d.Var(1), d.NVar(4), d.Var(6))
	got := d.Support(f)
	if len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 6 {
		t.Fatalf("Support = %v", got)
	}
	if len(d.Support(True)) != 0 || len(d.Support(False)) != 0 {
		t.Fatal("terminals have empty support")
	}
}

func TestVarSetValidation(t *testing.T) {
	vs := NewVarSet(5, 1, 3)
	if vs[0] != 1 || vs[1] != 3 || vs[2] != 5 {
		t.Fatalf("VarSet not sorted: %v", vs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate vars must panic")
		}
	}()
	NewVarSet(2, 2)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	const nvars = 12
	d := New(nvars)
	rng := rand.New(rand.NewSource(63))
	var roots []Ref
	var forms []*formula
	for i := 0; i < 10; i++ {
		form := genFormula(rng, 6, nvars)
		roots = append(roots, form.build(d))
		forms = append(forms, form)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf, roots...); err != nil {
		t.Fatal(err)
	}

	// Load into a fresh DD.
	d2 := New(nvars)
	loaded, err := d2.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(roots) {
		t.Fatalf("loaded %d roots, want %d", len(loaded), len(roots))
	}
	for i, r := range loaded {
		for a := uint(0); a < 1<<nvars; a += 37 {
			got := d2.Eval(r, func(j int) bool { return a&(1<<uint(j)) != 0 })
			if got != forms[i].eval(a) {
				t.Fatalf("root %d: loaded function differs at %012b", i, a)
			}
		}
	}
	if err := d2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Loading into the original DD must give back identical refs
	// (canonicalization against existing nodes).
	loaded2, err := d.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range roots {
		if loaded2[i] != roots[i] {
			t.Fatalf("root %d: reload into same DD gave different ref", i)
		}
	}
}

func TestSaveLoadTerminals(t *testing.T) {
	d := New(4)
	var buf bytes.Buffer
	if err := d.Save(&buf, True, False); err != nil {
		t.Fatal(err)
	}
	roots, err := New(4).Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if roots[0] != True || roots[1] != False {
		t.Fatalf("terminal roots = %v", roots)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	d := New(4)
	cases := [][]byte{
		[]byte("XYZ1\x00\x00\x00\x00"),
		[]byte("BDD1"),
		{},
	}
	for i, c := range cases {
		if _, err := d.Load(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Wrong variable count.
	var buf bytes.Buffer
	if err := New(8).Save(&buf, True); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Load(&buf); err == nil {
		t.Fatal("variable-count mismatch must fail")
	}
}

func TestDOT(t *testing.T) {
	d := New(4)
	f := d.And(d.Var(0), d.Not(d.Var(2)))
	dot := d.DOT(f, "test")
	for _, want := range []string{"digraph", "x0", "x2", "style=dashed", "T [shape=box"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}
