package bdd

import "math"

// View is a read-only evaluation view of a DD, frozen at a point in time.
// It is the substrate of the classifier's lock-free query path: a writer
// keeps allocating nodes in the DD while any number of readers evaluate
// through Views taken earlier.
//
// Safety model. A View aliases the DD's node store rather than copying it;
// what makes that sound is that the store is append-only between garbage
// collections. The View captures the store prefix that existed at Freeze
// time, and every Ref reachable from a root retained at Freeze time points
// into that prefix. Later mk calls only write slots past the prefix (or
// slots freed by a GC, which are by definition unreachable from retained
// roots), so readers and the writer never touch the same memory. Publish
// the View through an atomic pointer (or another happens-before edge) so
// its prefix writes are visible to readers.
//
// Rules for holders of a View:
//
//   - Only evaluate Refs that were retained (directly or transitively, e.g.
//     via an AP Tree's leaf retentions) when the View was frozen, and whose
//     retention outlives the View.
//   - Releasing such a root and then running DD.GC invalidates the View:
//     freed slots may be rewritten by later allocations. The classifier
//     therefore collects garbage only at swap boundaries — when a rebuild
//     retires a whole DD and no View over it is published anymore — never
//     on a DD with outstanding Views.
type View struct {
	nodes   []node
	numVars int
	live    int // live node count at freeze, incl. terminals
	mem     int // MemBytes() at freeze
	liveMem int // LiveMemBytes() at freeze
}

// Freeze returns a read-only evaluation view of the DD's current state.
// Freezing is O(1): the view aliases the node store and records its
// current length and memory statistics.
func (d *DD) Freeze() *View {
	return &View{
		nodes:   d.nodes[:len(d.nodes):len(d.nodes)],
		numVars: d.numVars,
		live:    d.live,
		mem:     d.MemBytes(),
		liveMem: d.LiveMemBytes(),
	}
}

// NumVars reports the number of Boolean variables of the frozen DD.
func (v *View) NumVars() int { return v.numVars }

// NumNodes reports the size of the frozen node-store prefix (allocated
// slots, including freed ones and the two terminals).
func (v *View) NumNodes() int { return len(v.nodes) }

// LiveNodes reports the number of live nodes at freeze time.
func (v *View) LiveNodes() int { return v.live }

// MemBytes reports the DD's allocated-footprint estimate at freeze time.
func (v *View) MemBytes() int { return v.mem }

// LiveMemBytes reports the DD's live-footprint estimate at freeze time —
// what /stats and the memory experiment historically read from the live
// DD, now answerable without touching it.
func (v *View) LiveMemBytes() int { return v.liveMem }

// Node decomposes the internal node f into its variable level and two
// children. It exists for compilers that lower frozen BDDs into other
// evaluation forms (the AP Tree's flat classify core walks predicate
// structure through it); f must be a non-terminal Ref that was retained
// — directly or transitively — when the view was frozen.
func (v *View) Node(f Ref) (level int32, low, high Ref) {
	n := v.nodes[f]
	return n.level, n.low, n.high
}

// Eval evaluates f under the assignment provided by bit; see DD.Eval.
func (v *View) Eval(f Ref, bit func(i int) bool) bool {
	nodes := v.nodes
	for f > True {
		n := nodes[f]
		if bit(int(n.level)) {
			f = n.high
		} else {
			f = n.low
		}
	}
	return f == True
}

// EvalBits evaluates f against a packed MSB-first bit vector; see
// DD.EvalBits. This is the snapshot query path's hot loop.
func (v *View) EvalBits(f Ref, bits []byte) bool {
	nodes := v.nodes
	for f > True {
		n := nodes[f]
		if bits[n.level>>3]&(0x80>>(uint(n.level)&7)) != 0 {
			f = n.high
		} else {
			f = n.low
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments of f over the
// frozen DD's variables; see DD.SatCount. Like Eval it only reads the
// frozen node-store prefix, so the verification engine can size packet
// sets from a pinned epoch while the live DD keeps growing.
func (v *View) SatCount(f Ref) float64 {
	memo := make(map[Ref]float64)
	var count func(Ref) float64
	count = func(f Ref) float64 {
		if f == False {
			return 0
		}
		if f == True {
			return 1
		}
		if c, ok := memo[f]; ok {
			return c
		}
		n := v.nodes[f]
		lo := count(n.low) * math.Exp2(float64(v.nodes[n.low].level-n.level-1))
		hi := count(n.high) * math.Exp2(float64(v.nodes[n.high].level-n.level-1))
		c := lo + hi
		memo[f] = c
		return c
	}
	return count(f) * math.Exp2(float64(v.nodes[f].level))
}

// AnySat returns one satisfying assignment of f as a slice of length
// NumVars with entries 0, 1 or -1 (don't care), or nil for False; see
// DD.AnySat. Reads only the frozen prefix.
func (v *View) AnySat(f Ref) []int8 {
	if f == False {
		return nil
	}
	a := make([]int8, v.numVars)
	for i := range a {
		a[i] = -1
	}
	for f > True {
		n := v.nodes[f]
		if n.high != False {
			a[n.level] = 1
			f = n.high
		} else {
			a[n.level] = 0
			f = n.low
		}
	}
	return a
}
