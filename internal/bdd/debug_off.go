//go:build !apdebug

package bdd

// Debug reports whether the apdebug runtime sanitizers are compiled in.
// Build with -tags apdebug to enable invariant checking after every GC.
const Debug = false

func (d *DD) debugAfterGC() {}
