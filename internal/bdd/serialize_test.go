package bdd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// stream hand-crafts a BDD1 stream: header (numVars, numNodes, numRoots)
// followed by raw uint32 words for node records and root indices.
func stream(numVars, numNodes, numRoots uint32, words ...uint32) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	for _, v := range append([]uint32{numVars, numNodes, numRoots}, words...) {
		var w [4]byte
		binary.LittleEndian.PutUint32(w[:], v)
		buf.Write(w[:])
	}
	return buf.Bytes()
}

// TestLoadErrorPaths is the satellite's table-driven malformed-stream
// suite: every rejection class maps to its typed error, and no case may
// leave Load panicking or silently accepting bad state.
func TestLoadErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short magic", []byte("BD"), ErrTruncated},
		{"wrong magic", []byte("XYZ1\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"), ErrBadMagic},
		{"header cut", []byte("BDD1\x04\x00\x00\x00"), ErrTruncated},
		{"var mismatch", stream(8, 0, 0), ErrVarMismatch},
		{"node record cut", stream(4, 1, 0, 0, 0), ErrTruncated},
		{"promised nodes missing", stream(4, 3, 0, 0, 0, 1), ErrTruncated},
		{"level out of range", stream(4, 1, 0, 4, 0, 1), ErrMalformed},
		{"level huge", stream(4, 1, 0, ^uint32(0), 0, 1), ErrMalformed},
		{"forward low ref", stream(4, 1, 0, 0, 2, 1), ErrMalformed},
		{"forward high ref", stream(4, 1, 0, 0, 0, 3), ErrMalformed},
		{"self low ref", stream(4, 2, 0, 0, 0, 1, 1, 3, 0), ErrMalformed},
		{"redundant node", stream(4, 1, 0, 0, 1, 1), ErrMalformed},
		// Node 0 at level 2, node 1 at level 2 pointing at node 0: the
		// edge does not increase the level.
		{"non-increasing level", stream(4, 2, 0, 2, 0, 1, 2, 2, 1), ErrMalformed},
		// Same, with the child level above the parent's but equal: level
		// 1 node whose child is also level 1.
		{"equal child level", stream(4, 2, 0, 1, 0, 1, 1, 0, 2), ErrMalformed},
		{"root record cut", stream(4, 1, 2, 0, 0, 1, 2), ErrTruncated},
		{"root out of range", stream(4, 1, 1, 0, 0, 1, 3), ErrMalformed},
		// Huge counts must fail on truncation, not allocate first.
		{"huge node count", stream(4, ^uint32(0), 0), ErrTruncated},
		{"huge root count", stream(4, 0, ^uint32(0)), ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := New(4)
			_, err := d.Load(bytes.NewReader(tc.in))
			if err == nil {
				t.Fatalf("Load accepted malformed stream %x", tc.in)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Load error = %v, want errors.Is(..., %v)", err, tc.want)
			}
			if err := d.CheckInvariants(); err != nil {
				t.Fatalf("DD invariants violated after rejected load: %v", err)
			}
		})
	}
}

// TestLoadValidMinimal accepts the smallest well-formed streams so the
// error table above is known to be testing rejections, not a decoder
// that rejects everything.
func TestLoadValidMinimal(t *testing.T) {
	d := New(4)
	// One node: x2 (level 2, low=False, high=True), exported as root.
	roots, err := d.Load(bytes.NewReader(stream(4, 1, 1, 2, 0, 1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || roots[0] != d.Var(2) {
		t.Fatalf("roots = %v, want [%v]", roots, d.Var(2))
	}
	// Zero nodes, terminal roots only.
	roots, err = d.Load(bytes.NewReader(stream(4, 0, 2, 1, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 || roots[0] != True || roots[1] != False {
		t.Fatalf("terminal roots = %v", roots)
	}
}

// TestViewSaveMatchesDDSave freezes a view and checks its Save emits the
// same bytes as the live DD's for the same roots, and that the stream
// round-trips through a fresh DD to equivalent functions.
func TestViewSaveMatchesDDSave(t *testing.T) {
	d := New(8)
	a := d.And(d.Var(0), d.Or(d.Var(3), d.NVar(5)))
	b := d.Xor(d.Var(1), d.Var(7))
	d.Retain(a)
	d.Retain(b)
	v := d.Freeze()

	var fromDD, fromView bytes.Buffer
	if err := d.Save(&fromDD, a, b); err != nil {
		t.Fatal(err)
	}
	if err := v.Save(&fromView, a, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromDD.Bytes(), fromView.Bytes()) {
		t.Fatal("View.Save and DD.Save disagree on identical state")
	}

	// A writer growing the DD after the freeze must not change what the
	// view serializes.
	d.And(a, b)
	var after bytes.Buffer
	if err := v.Save(&after, a, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromView.Bytes(), after.Bytes()) {
		t.Fatal("View.Save changed after the live DD grew")
	}

	d2 := New(8)
	roots, err := d2.Load(bytes.NewReader(fromView.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 256; probe++ {
		bits := []byte{byte(probe)}
		if d2.EvalBits(roots[0], bits) != d.EvalBits(a, bits) ||
			d2.EvalBits(roots[1], bits) != d.EvalBits(b, bits) {
			t.Fatalf("round-tripped function differs at probe %08b", probe)
		}
	}
}
