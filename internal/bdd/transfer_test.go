package bdd

import (
	"math/rand"
	"testing"
)

func TestTransferPreservesFunctions(t *testing.T) {
	const nvars = 10
	src := New(nvars)
	dst := New(nvars)
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 100; trial++ {
		form := genFormula(rng, 6, nvars)
		f := form.build(src)
		g := Transfer(dst, src, f)
		for a := uint(0); a < 1<<nvars; a += 3 {
			got := dst.Eval(g, func(i int) bool { return a&(1<<uint(i)) != 0 })
			if got != form.eval(a) {
				t.Fatalf("trial %d: transferred function differs at %010b", trial, a)
			}
		}
	}
	if err := dst.CheckInvariants(); err != nil {
		t.Fatalf("destination DD corrupted: %v", err)
	}
}

func TestTransferTerminalsAndIdentity(t *testing.T) {
	src, dst := New(4), New(4)
	if Transfer(dst, src, True) != True || Transfer(dst, src, False) != False {
		t.Fatal("terminals must map to terminals")
	}
	// Transferring into the same DD returns the identical ref.
	f := src.And(src.Var(0), src.Var(2))
	if Transfer(src, src, f) != f {
		t.Fatal("self-transfer must be the identity")
	}
}

func TestTransferCanonicalizesAgainstExisting(t *testing.T) {
	src, dst := New(8), New(8)
	// Build the same function independently in dst first.
	existing := dst.And(dst.Var(1), dst.Var(3))
	f := src.And(src.Var(1), src.Var(3))
	if got := Transfer(dst, src, f); got != existing {
		t.Fatalf("transfer must share structure: got %d, existing %d", got, existing)
	}
}

func TestTransferSharedSubgraphs(t *testing.T) {
	src, dst := New(8), New(8)
	shared := src.Xor(src.Var(4), src.Var(5))
	a := src.And(src.Var(0), shared)
	b := src.Or(src.Var(1), shared)
	ta := Transfer(dst, src, a)
	tb := Transfer(dst, src, b)
	// Functional checks.
	for probe := 0; probe < 256; probe++ {
		bit := func(i int) bool { return probe&(1<<uint(i)) != 0 }
		sharedVal := bit(4) != bit(5)
		if dst.Eval(ta, bit) != (bit(0) && sharedVal) {
			t.Fatal("ta wrong")
		}
		if dst.Eval(tb, bit) != (bit(1) || sharedVal) {
			t.Fatal("tb wrong")
		}
	}
}

func TestTransferRejectsMismatchedWidths(t *testing.T) {
	src, dst := New(8), New(9)
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch must panic")
		}
	}()
	Transfer(dst, src, src.Var(0))
}

func TestTransferAfterSourceGC(t *testing.T) {
	src, dst := New(8), New(8)
	f := src.Retain(src.AndN(src.Var(0), src.Var(1), src.Var(2)))
	src.OrN(src.Var(3), src.Var(4)) // garbage
	src.GC()
	g := Transfer(dst, src, f)
	if dst.SatCount(g) != 32 { // 3 fixed bits of 8
		t.Fatalf("SatCount = %v", dst.SatCount(g))
	}
}
