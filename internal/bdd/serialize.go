package bdd

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// serialization format: a little-endian binary stream
//
//	magic "BDD1" | numVars uint32 | numNodes uint32 | numRoots uint32
//	nodes: (level uint32, low uint32, high uint32) in topological order
//	roots: uint32 indices into the stream's node numbering
//
// Node 0 and 1 are the terminals and are not written. Stream node i
// (i ≥ 2) may only reference nodes < i.

const magic = "BDD1"

// Typed stream errors. Load wraps each with positional detail; callers
// match with errors.Is. The distinctions matter operationally: a
// truncated stream is a partial write or disk fault, a malformed one is
// corruption or an attack, and a variable-count mismatch is a
// configuration error (wrong layout for the checkpoint being loaded).
var (
	// ErrBadMagic means the stream does not start with the BDD1 marker.
	ErrBadMagic = errors.New("bdd: bad magic")
	// ErrTruncated means the stream ended inside a record the header
	// promised: an io.EOF or io.ErrUnexpectedEOF mid-structure.
	ErrTruncated = errors.New("bdd: truncated stream")
	// ErrMalformed means a structurally invalid record: out-of-range
	// levels or child refs, non-increasing levels along an edge, a
	// redundant node (low == high), or a root index past the node table.
	ErrMalformed = errors.New("bdd: malformed stream")
	// ErrVarMismatch means the stream was saved from a DD with a
	// different variable count than the one loading it.
	ErrVarMismatch = errors.New("bdd: variable count mismatch")
)

// Save writes the functions rooted at roots to w. The on-disk node
// numbering is private to the stream; Load rebuilds canonical nodes.
func (d *DD) Save(w io.Writer, roots ...Ref) error {
	return saveNodes(d.nodes, d.numVars, w, roots)
}

// Save writes the functions rooted at roots from the frozen view. Roots
// must have been retained (directly or transitively) when the view was
// frozen, per the View safety model; the checkpoint encoder uses this to
// serialize a published epoch without touching the live DD.
func (v *View) Save(w io.Writer, roots ...Ref) error {
	return saveNodes(v.nodes, v.numVars, w, roots)
}

// saveNodes is the shared encoder behind DD.Save and View.Save: nodes is
// either the live store or a frozen prefix of it.
func saveNodes(nodes []node, numVars int, w io.Writer, roots []Ref) error {
	bw := bufio.NewWriter(w)
	// Collect reachable nodes in child-before-parent order.
	index := map[Ref]uint32{False: 0, True: 1}
	var order []Ref
	var walk func(Ref)
	walk = func(f Ref) {
		if _, ok := index[f]; ok {
			return
		}
		n := nodes[f]
		walk(n.low)
		walk(n.high)
		index[f] = uint32(len(order) + 2)
		order = append(order, f)
	}
	for _, r := range roots {
		walk(r)
	}
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	hdr := []uint32{uint32(numVars), uint32(len(order)), uint32(len(roots))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, f := range order {
		n := nodes[f]
		rec := []uint32{uint32(n.level), index[n.low], index[n.high]}
		for _, v := range rec {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	for _, r := range roots {
		if err := binary.Write(bw, binary.LittleEndian, index[r]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readU32 reads one little-endian uint32, mapping stream exhaustion to
// ErrTruncated so callers (and their callers, transitively) can
// distinguish a short file from structural corruption.
func readU32(br *bufio.Reader, p *uint32) error {
	if err := binary.Read(br, binary.LittleEndian, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrTruncated
		}
		return err
	}
	return nil
}

// loadPrealloc caps the speculative allocation Load performs from the
// header's node count: a hostile 4-byte count must not translate into a
// multi-gigabyte slice before a single record is read. The ref table
// grows by append past this, bounded by actual input consumed.
const loadPrealloc = 1 << 16

// Load reads functions previously written by Save into d, which must have
// the same variable count, and returns the roots in stream order. Loaded
// nodes are canonicalized against d's existing nodes (structural sharing
// with what is already there).
//
// Load validates the stream defensively — it is also the decode path for
// checkpoint files — and returns an error wrapping ErrBadMagic,
// ErrTruncated, ErrMalformed or ErrVarMismatch rather than building bad
// state: child refs must precede their parent, levels must strictly
// increase along edges, and no record may encode a redundant node. On
// error the DD may hold already-loaded (canonical, well-formed) nodes;
// they are unreachable garbage unless retained and are reclaimed by the
// next GC.
func (d *DD) Load(r io.Reader) ([]Ref, error) {
	br := bufio.NewReader(r)
	got := make([]byte, 4)
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrTruncated, err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, got)
	}
	var numVars, numNodes, numRoots uint32
	for _, p := range []*uint32{&numVars, &numNodes, &numRoots} {
		if err := readU32(br, p); err != nil {
			return nil, fmt.Errorf("%w: in header", err)
		}
	}
	if int(numVars) != d.numVars {
		return nil, fmt.Errorf("%w: stream has %d variables, DD has %d", ErrVarMismatch, numVars, d.numVars)
	}
	prealloc := int(numNodes) + 2
	if prealloc > loadPrealloc {
		prealloc = loadPrealloc
	}
	refs := make([]Ref, 2, prealloc)
	refs[0], refs[1] = False, True
	for i := uint32(0); i < numNodes; i++ {
		var level, lo, hi uint32
		for _, p := range []*uint32{&level, &lo, &hi} {
			if err := readU32(br, p); err != nil {
				return nil, fmt.Errorf("%w: in node record %d of %d", err, i, numNodes)
			}
		}
		if int(level) >= d.numVars {
			return nil, fmt.Errorf("%w: node %d level %d out of range [0,%d)", ErrMalformed, i, level, d.numVars)
		}
		if lo >= i+2 || hi >= i+2 {
			return nil, fmt.Errorf("%w: node %d forward child ref %d/%d (max %d)", ErrMalformed, i, lo, hi, i+1)
		}
		if lo == hi {
			return nil, fmt.Errorf("%w: node %d is redundant (low == high == %d)", ErrMalformed, i, lo)
		}
		// Ordered BDD invariant: levels strictly increase toward the
		// terminals (which sit at level numVars). A violating stream
		// would still canonicalize into *some* DAG via mk, but not the
		// function Save encoded — reject it instead.
		if d.nodes[refs[lo]].level <= int32(level) || d.nodes[refs[hi]].level <= int32(level) {
			return nil, fmt.Errorf("%w: node %d level %d not above child levels %d/%d",
				ErrMalformed, i, level, d.nodes[refs[lo]].level, d.nodes[refs[hi]].level)
		}
		refs = append(refs, d.mk(int32(level), refs[lo], refs[hi]))
	}
	roots := make([]Ref, 0, minInt(int(numRoots), loadPrealloc))
	for i := uint32(0); i < numRoots; i++ {
		var idx uint32
		if err := readU32(br, &idx); err != nil {
			return nil, fmt.Errorf("%w: in root record %d of %d", err, i, numRoots)
		}
		if int(idx) >= len(refs) {
			return nil, fmt.Errorf("%w: root index %d out of range [0,%d)", ErrMalformed, idx, len(refs))
		}
		roots = append(roots, refs[idx])
	}
	return roots, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// DOT renders the subgraph rooted at f in Graphviz format, with solid
// edges for the 1-branch and dashed for the 0-branch — handy for
// documentation and debugging small predicates.
func (d *DD) DOT(f Ref, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  F [shape=box,label=\"0\"];\n  T [shape=box,label=\"1\"];\n")
	nodeID := func(r Ref) string {
		switch r {
		case False:
			return "F"
		case True:
			return "T"
		}
		return fmt.Sprintf("n%d", r)
	}
	seen := map[Ref]bool{}
	var walk func(Ref)
	walk = func(f Ref) {
		if f <= True || seen[f] {
			return
		}
		seen[f] = true
		n := d.nodes[f]
		fmt.Fprintf(&b, "  n%d [label=\"x%d\"];\n", f, n.level)
		fmt.Fprintf(&b, "  n%d -> %s [style=dashed];\n", f, nodeID(n.low))
		fmt.Fprintf(&b, "  n%d -> %s;\n", f, nodeID(n.high))
		walk(n.low)
		walk(n.high)
	}
	walk(f)
	b.WriteString("}\n")
	return b.String()
}
