package bdd

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// serialization format: a little-endian binary stream
//
//	magic "BDD1" | numVars uint32 | numNodes uint32 | numRoots uint32
//	nodes: (level uint32, low uint32, high uint32) in topological order
//	roots: uint32 indices into the stream's node numbering
//
// Node 0 and 1 are the terminals and are not written. Stream node i
// (i ≥ 2) may only reference nodes < i.

const magic = "BDD1"

// Save writes the functions rooted at roots to w. The on-disk node
// numbering is private to the stream; Load rebuilds canonical nodes.
func (d *DD) Save(w io.Writer, roots ...Ref) error {
	bw := bufio.NewWriter(w)
	// Collect reachable nodes in child-before-parent order.
	index := map[Ref]uint32{False: 0, True: 1}
	var order []Ref
	var walk func(Ref)
	walk = func(f Ref) {
		if _, ok := index[f]; ok {
			return
		}
		n := d.nodes[f]
		walk(n.low)
		walk(n.high)
		index[f] = uint32(len(order) + 2)
		order = append(order, f)
	}
	for _, r := range roots {
		walk(r)
	}
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	hdr := []uint32{uint32(d.numVars), uint32(len(order)), uint32(len(roots))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, f := range order {
		n := d.nodes[f]
		rec := []uint32{uint32(n.level), index[n.low], index[n.high]}
		for _, v := range rec {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	for _, r := range roots {
		if err := binary.Write(bw, binary.LittleEndian, index[r]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads functions previously written by Save into d, which must have
// the same variable count, and returns the roots in stream order. Loaded
// nodes are canonicalized against d's existing nodes (structural sharing
// with what is already there).
func (d *DD) Load(r io.Reader) ([]Ref, error) {
	br := bufio.NewReader(r)
	got := make([]byte, 4)
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, err
	}
	if string(got) != magic {
		return nil, fmt.Errorf("bdd: bad magic %q", got)
	}
	var numVars, numNodes, numRoots uint32
	for _, p := range []*uint32{&numVars, &numNodes, &numRoots} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if int(numVars) != d.numVars {
		return nil, fmt.Errorf("bdd: stream has %d variables, DD has %d", numVars, d.numVars)
	}
	refs := make([]Ref, numNodes+2)
	refs[0], refs[1] = False, True
	for i := uint32(0); i < numNodes; i++ {
		var level, lo, hi uint32
		for _, p := range []*uint32{&level, &lo, &hi} {
			if err := binary.Read(br, binary.LittleEndian, p); err != nil {
				return nil, err
			}
		}
		if int(level) >= d.numVars || lo >= i+2 || hi >= i+2 {
			return nil, fmt.Errorf("bdd: malformed node %d (level %d, children %d/%d)", i, level, lo, hi)
		}
		refs[i+2] = d.mk(int32(level), refs[lo], refs[hi])
	}
	roots := make([]Ref, numRoots)
	for i := range roots {
		var idx uint32
		if err := binary.Read(br, binary.LittleEndian, &idx); err != nil {
			return nil, err
		}
		if int(idx) >= len(refs) {
			return nil, fmt.Errorf("bdd: root index %d out of range", idx)
		}
		roots[i] = refs[idx]
	}
	return roots, nil
}

// DOT renders the subgraph rooted at f in Graphviz format, with solid
// edges for the 1-branch and dashed for the 0-branch — handy for
// documentation and debugging small predicates.
func (d *DD) DOT(f Ref, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  F [shape=box,label=\"0\"];\n  T [shape=box,label=\"1\"];\n")
	nodeID := func(r Ref) string {
		switch r {
		case False:
			return "F"
		case True:
			return "T"
		}
		return fmt.Sprintf("n%d", r)
	}
	seen := map[Ref]bool{}
	var walk func(Ref)
	walk = func(f Ref) {
		if f <= True || seen[f] {
			return
		}
		seen[f] = true
		n := d.nodes[f]
		fmt.Fprintf(&b, "  n%d [label=\"x%d\"];\n", f, n.level)
		fmt.Fprintf(&b, "  n%d -> %s [style=dashed];\n", f, nodeID(n.low))
		fmt.Fprintf(&b, "  n%d -> %s;\n", f, nodeID(n.high))
		walk(n.low)
		walk(n.high)
	}
	walk(f)
	b.WriteString("}\n")
	return b.String()
}
