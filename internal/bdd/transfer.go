package bdd

// Transfer copies the function rooted at f in src into dst, which must have
// the same variable count, and returns the corresponding Ref in dst.
// It reads src but never mutates it, so concurrent read-only use of src is
// safe; dst must be private to the caller. The AP Classifier uses Transfer
// to rebuild an AP Tree in a fresh DD while the live DD keeps serving
// queries.
func Transfer(dst, src *DD, f Ref) Ref {
	if dst.numVars != src.numVars {
		panic("bdd: Transfer between DDs with different variable counts")
	}
	memo := make(map[Ref]Ref)
	var walk func(Ref) Ref
	walk = func(f Ref) Ref {
		if f <= True {
			return f
		}
		if r, ok := memo[f]; ok {
			return r
		}
		n := src.nodes[f]
		r := dst.mk(n.level, walk(n.low), walk(n.high))
		memo[f] = r
		return r
	}
	return walk(f)
}
