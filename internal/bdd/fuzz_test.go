package bdd

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzLoad feeds arbitrary bytes to the stream decoder. Load must never
// panic and never build non-canonical state: it either returns roots in
// a DD that still satisfies all structural invariants, or a typed error.
// Seeds cover the valid encodings (so mutations explore near-valid
// corruptions) plus each rejection class from TestLoadErrorPaths.
func FuzzLoad(f *testing.F) {
	seedDD := New(8)
	fn := seedDD.And(seedDD.Var(0), seedDD.Or(seedDD.Var(3), seedDD.NVar(5)))
	var buf bytes.Buffer
	if err := seedDD.Save(&buf, fn, seedDD.Not(fn), True); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:len(buf.Bytes())-3]) // truncated root table
	f.Add(buf.Bytes()[:7])                  // truncated header
	f.Add([]byte("BDD1"))
	f.Add([]byte("XYZ1\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add(stream(8, 1, 1, 9, 0, 1, 2))            // level out of range
	f.Add(stream(8, 1, 0, 0, 1, 1))               // redundant node
	f.Add(stream(8, 2, 0, 2, 0, 1, 2, 2, 1))      // non-increasing level
	f.Add(stream(8, ^uint32(0), 0))               // hostile node count
	f.Add(stream(8, 0, ^uint32(0)))               // hostile root count
	f.Fuzz(func(t *testing.T, in []byte) {
		d := New(8)
		roots, err := d.Load(bytes.NewReader(in))
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrTruncated) &&
				!errors.Is(err, ErrMalformed) && !errors.Is(err, ErrVarMismatch) {
				t.Fatalf("untyped Load error: %v", err)
			}
			return
		}
		for _, r := range roots {
			if r < 0 || int(r) >= len(d.nodes) {
				t.Fatalf("root %d out of store range", r)
			}
			// Every accepted root must evaluate without faulting.
			d.EvalBits(r, []byte{0xA5})
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("invariants after successful load: %v", err)
		}
	})
}

// FuzzFromRange cross-checks the range-to-prefix decomposition against
// direct comparison for arbitrary bounds and probes.
func FuzzFromRange(f *testing.F) {
	f.Add(uint16(0), uint16(65535), uint16(80))
	f.Add(uint16(80), uint16(80), uint16(80))
	f.Add(uint16(1024), uint16(65535), uint16(1023))
	f.Add(uint16(1), uint16(65534), uint16(65535))
	d := New(16)
	f.Fuzz(func(t *testing.T, lo, hi, probe uint16) {
		if lo > hi {
			lo, hi = hi, lo
		}
		r := d.FromRange(0, uint64(lo), uint64(hi), 16)
		bits := []byte{byte(probe >> 8), byte(probe)}
		want := probe >= lo && probe <= hi
		if got := d.EvalBits(r, bits); got != want {
			t.Fatalf("range [%d,%d] probe %d: got %v want %v", lo, hi, probe, got, want)
		}
		if got, want := d.SatCount(r), float64(int(hi)-int(lo)+1); got != want {
			t.Fatalf("range [%d,%d]: SatCount %v want %v", lo, hi, got, want)
		}
	})
}

// FuzzTernary checks FromTernary against character-by-character matching.
func FuzzTernary(f *testing.F) {
	f.Add("10**01", uint16(0b1011010000000000))
	f.Add("****************", uint16(0))
	f.Add("0000000000000000", uint16(1))
	d := New(16)
	f.Fuzz(func(t *testing.T, pattern string, probe uint16) {
		if len(pattern) > 16 {
			pattern = pattern[:16]
		}
		for _, c := range []byte(pattern) {
			if c != '0' && c != '1' && c != '*' {
				return // invalid patterns are rejected by panic; not fuzzed here
			}
		}
		r := d.FromTernary(pattern)
		bits := []byte{byte(probe >> 8), byte(probe)}
		want := true
		for i := 0; i < len(pattern); i++ {
			bit := probe&(1<<uint(15-i)) != 0
			if pattern[i] == '1' && !bit || pattern[i] == '0' && bit {
				want = false
			}
		}
		if got := d.EvalBits(r, bits); got != want {
			t.Fatalf("pattern %q probe %016b: got %v want %v", pattern, probe, got, want)
		}
	})
}

// FuzzPrefixOps checks the interplay of prefix BDDs under and/or/diff
// against direct membership arithmetic.
func FuzzPrefixOps(f *testing.F) {
	f.Add(uint16(0xAB00), uint8(8), uint16(0xAB40), uint8(10), uint16(0xAB7F))
	d := New(16)
	f.Fuzz(func(t *testing.T, v1 uint16, l1 uint8, v2 uint16, l2 uint8, probe uint16) {
		la, lb := int(l1%17), int(l2%17)
		a := d.FromPrefix(0, uint64(v1), la, 16)
		b := d.FromPrefix(0, uint64(v2), lb, 16)
		inA := maskEq(probe, v1, la)
		inB := maskEq(probe, v2, lb)
		bits := []byte{byte(probe >> 8), byte(probe)}
		if got := d.EvalBits(d.And(a, b), bits); got != (inA && inB) {
			t.Fatal("and mismatch")
		}
		if got := d.EvalBits(d.Or(a, b), bits); got != (inA || inB) {
			t.Fatal("or mismatch")
		}
		if got := d.EvalBits(d.Diff(a, b), bits); got != (inA && !inB) {
			t.Fatal("diff mismatch")
		}
		if got := d.EvalBits(d.Xor(a, b), bits); got != (inA != inB) {
			t.Fatal("xor mismatch")
		}
	})
}

func maskEq(probe, value uint16, length int) bool {
	if length == 0 {
		return true
	}
	mask := uint16(0xFFFF) << uint(16-length)
	return probe&mask == value&mask
}
