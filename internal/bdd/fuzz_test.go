package bdd

import "testing"

// FuzzFromRange cross-checks the range-to-prefix decomposition against
// direct comparison for arbitrary bounds and probes.
func FuzzFromRange(f *testing.F) {
	f.Add(uint16(0), uint16(65535), uint16(80))
	f.Add(uint16(80), uint16(80), uint16(80))
	f.Add(uint16(1024), uint16(65535), uint16(1023))
	f.Add(uint16(1), uint16(65534), uint16(65535))
	d := New(16)
	f.Fuzz(func(t *testing.T, lo, hi, probe uint16) {
		if lo > hi {
			lo, hi = hi, lo
		}
		r := d.FromRange(0, uint64(lo), uint64(hi), 16)
		bits := []byte{byte(probe >> 8), byte(probe)}
		want := probe >= lo && probe <= hi
		if got := d.EvalBits(r, bits); got != want {
			t.Fatalf("range [%d,%d] probe %d: got %v want %v", lo, hi, probe, got, want)
		}
		if got, want := d.SatCount(r), float64(int(hi)-int(lo)+1); got != want {
			t.Fatalf("range [%d,%d]: SatCount %v want %v", lo, hi, got, want)
		}
	})
}

// FuzzTernary checks FromTernary against character-by-character matching.
func FuzzTernary(f *testing.F) {
	f.Add("10**01", uint16(0b1011010000000000))
	f.Add("****************", uint16(0))
	f.Add("0000000000000000", uint16(1))
	d := New(16)
	f.Fuzz(func(t *testing.T, pattern string, probe uint16) {
		if len(pattern) > 16 {
			pattern = pattern[:16]
		}
		for _, c := range []byte(pattern) {
			if c != '0' && c != '1' && c != '*' {
				return // invalid patterns are rejected by panic; not fuzzed here
			}
		}
		r := d.FromTernary(pattern)
		bits := []byte{byte(probe >> 8), byte(probe)}
		want := true
		for i := 0; i < len(pattern); i++ {
			bit := probe&(1<<uint(15-i)) != 0
			if pattern[i] == '1' && !bit || pattern[i] == '0' && bit {
				want = false
			}
		}
		if got := d.EvalBits(r, bits); got != want {
			t.Fatalf("pattern %q probe %016b: got %v want %v", pattern, probe, got, want)
		}
	})
}

// FuzzPrefixOps checks the interplay of prefix BDDs under and/or/diff
// against direct membership arithmetic.
func FuzzPrefixOps(f *testing.F) {
	f.Add(uint16(0xAB00), uint8(8), uint16(0xAB40), uint8(10), uint16(0xAB7F))
	d := New(16)
	f.Fuzz(func(t *testing.T, v1 uint16, l1 uint8, v2 uint16, l2 uint8, probe uint16) {
		la, lb := int(l1%17), int(l2%17)
		a := d.FromPrefix(0, uint64(v1), la, 16)
		b := d.FromPrefix(0, uint64(v2), lb, 16)
		inA := maskEq(probe, v1, la)
		inB := maskEq(probe, v2, lb)
		bits := []byte{byte(probe >> 8), byte(probe)}
		if got := d.EvalBits(d.And(a, b), bits); got != (inA && inB) {
			t.Fatal("and mismatch")
		}
		if got := d.EvalBits(d.Or(a, b), bits); got != (inA || inB) {
			t.Fatal("or mismatch")
		}
		if got := d.EvalBits(d.Diff(a, b), bits); got != (inA && !inB) {
			t.Fatal("diff mismatch")
		}
		if got := d.EvalBits(d.Xor(a, b), bits); got != (inA != inB) {
			t.Fatal("xor mismatch")
		}
	})
}

func maskEq(probe, value uint16, length int) bool {
	if length == 0 {
		return true
	}
	mask := uint16(0xFFFF) << uint(16-length)
	return probe&mask == value&mask
}
