// Package netgen generates synthetic data-plane datasets standing in for
// the two real networks the paper evaluates on: Internet2 (a national
// backbone with pure destination-IP routing) and the Stanford campus
// backbone (a two-tier enterprise network with 5-tuple ACLs).
//
// The real datasets are not redistributable; these generators reproduce
// their aggregate structure — router/link counts, rule volumes, predicate
// counts, prefix-length mix, and the nesting that makes longest-prefix
// shadowing matter — so the algorithmic behavior the paper measures (tree
// depths, construction cost, update cost, query throughput shape) carries
// over. Generation is deterministic per seed.
package netgen

import (
	"fmt"
	"math/rand"

	"apclassifier/internal/header"
	"apclassifier/internal/rule"
)

// BoxSpec describes one box's data-plane state.
type BoxSpec struct {
	Name     string
	NumPorts int
	// Fwd is the box's forwarding table over dstIP.
	Fwd rule.FwdTable
	// PortACL maps a port index to its egress ACL, if any.
	PortACL map[int]*rule.ACL
	// InACL optionally filters everything entering the box.
	InACL *rule.ACL
}

// Link is a bidirectional cable between two box ports.
type Link struct {
	A, PA, B, PB int
}

// Host attaches a named end host to a box port.
type Host struct {
	Box, Port int
	Name      string
}

// Dataset is a complete data-plane snapshot: topology plus rule state.
type Dataset struct {
	Name   string
	Layout *header.Layout
	Boxes  []BoxSpec
	Links  []Link
	Hosts  []Host
}

// NumRules reports the total number of forwarding rules.
func (ds *Dataset) NumRules() int {
	n := 0
	for i := range ds.Boxes {
		n += len(ds.Boxes[i].Fwd.Rules)
	}
	return n
}

// NumACLRules reports the total number of ACL rules.
func (ds *Dataset) NumACLRules() int {
	n := 0
	for i := range ds.Boxes {
		for _, acl := range ds.Boxes[i].PortACL {
			n += len(acl.Rules)
		}
		if ds.Boxes[i].InACL != nil {
			n += len(ds.Boxes[i].InACL.Rules)
		}
	}
	return n
}

// NumACLs reports the number of distinct ACLs.
func (ds *Dataset) NumACLs() int {
	n := 0
	for i := range ds.Boxes {
		n += len(ds.Boxes[i].PortACL)
		if ds.Boxes[i].InACL != nil {
			n++
		}
	}
	return n
}

// HostAt returns the host name attached to (box, port), or "".
func (ds *Dataset) HostAt(box, port int) string {
	for _, h := range ds.Hosts {
		if h.Box == box && h.Port == port {
			return h.Name
		}
	}
	return ""
}

// Config controls generator scale.
type Config struct {
	// Seed makes generation reproducible.
	Seed int64
	// RuleScale scales rule volume relative to the paper's dataset
	// (1.0 ≈ 126k rules for Internet2, ≈ 757k for Stanford). Values in
	// (0, 1] shrink the prefix pool proportionally.
	RuleScale float64
	// Multihome controls anycast-style dual announcement of prefixes,
	// which adds forwarding-pattern diversity (and hence atoms). 0
	// selects the generator's default — an absolute count, so atom counts
	// stay near the paper's at every scale; negative disables it (every
	// destination then delivers to the same host from every ingress);
	// a positive value is a fraction of the prefix pool.
	Multihome float64
}

// diversity resolves the atom-diversity knobs: the number of multihomed
// prefixes and of nested specifics with divergent owners. Defaults are
// absolute (capped by pool size) because real networks' atomic-predicate
// counts do not grow linearly with their rule counts.
func (c Config) diversity(count, defMultihome, defDivergent int) (multihome, divergent int) {
	divergent = defDivergent
	if divergent > count/4 {
		divergent = count / 4
	}
	switch {
	case c.Multihome < 0:
		multihome = 0
	case c.Multihome == 0:
		multihome = defMultihome
		if multihome > count/8 {
			multihome = count / 8
		}
	default:
		multihome = int(c.Multihome * float64(count))
	}
	return multihome, divergent
}

func (c Config) scale(full int) int {
	if c.RuleScale <= 0 {
		c.RuleScale = 1
	}
	n := int(float64(full) * c.RuleScale)
	if n < 8 {
		n = 8
	}
	return n
}

// topology is scaffolding shared by the generators.
type topology struct {
	ds        *Dataset
	rng       *rand.Rand
	nextPort  []int   // next free port index per box
	edgePorts [][]int // per box: ports facing hosts
	adj       [][]int // box adjacency (box IDs)
	linkPort  []map[int]int
}

func newTopology(name string, layout *header.Layout, numBoxes int, names []string, rng *rand.Rand) *topology {
	t := &topology{
		ds:       &Dataset{Name: name, Layout: layout},
		rng:      rng,
		nextPort: make([]int, numBoxes),
		adj:      make([][]int, numBoxes),
		linkPort: make([]map[int]int, numBoxes),
	}
	t.edgePorts = make([][]int, numBoxes)
	for i := 0; i < numBoxes; i++ {
		t.ds.Boxes = append(t.ds.Boxes, BoxSpec{Name: names[i], PortACL: map[int]*rule.ACL{}})
		t.linkPort[i] = map[int]int{}
	}
	return t
}

func (t *topology) link(a, b int) {
	pa, pb := t.nextPort[a], t.nextPort[b]
	t.nextPort[a]++
	t.nextPort[b]++
	t.ds.Links = append(t.ds.Links, Link{a, pa, b, pb})
	t.adj[a] = append(t.adj[a], b)
	t.adj[b] = append(t.adj[b], a)
	t.linkPort[a][b] = pa
	t.linkPort[b][a] = pb
}

func (t *topology) addEdgePorts(box, n int) {
	for i := 0; i < n; i++ {
		p := t.nextPort[box]
		t.nextPort[box]++
		t.edgePorts[box] = append(t.edgePorts[box], p)
		t.ds.Hosts = append(t.ds.Hosts, Host{Box: box, Port: p, Name: fmt.Sprintf("h%d_%d", box, p)})
	}
}

func (t *topology) finish() {
	for i := range t.ds.Boxes {
		t.ds.Boxes[i].NumPorts = t.nextPort[i]
	}
}

// nextHops computes, for every (from, to) box pair, the egress port at
// `from` on a shortest path to `to` and the hop distance, by BFS per
// destination.
func (t *topology) nextHops() (nh [][]int, dist [][]int) {
	n := len(t.ds.Boxes)
	nh = make([][]int, n)
	dist = make([][]int, n)
	for i := range nh {
		nh[i] = make([]int, n)
		dist[i] = make([]int, n)
		for j := range nh[i] {
			nh[i][j] = -1
			dist[i][j] = -1
		}
	}
	for dst := 0; dst < n; dst++ {
		dist[dst][dst] = 0
		queue := []int{dst}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range t.adj[u] {
				if dist[v][dst] < 0 {
					dist[v][dst] = dist[u][dst] + 1
					nh[v][dst] = t.linkPort[v][u]
					queue = append(queue, v)
				}
			}
		}
	}
	return nh, dist
}

// prefixOwner pairs an address block with the edge port that originates it.
type prefixOwner struct {
	prefix rule.Prefix
	box    int
	port   int
}

// generatePrefixes draws a prefix pool with BGP-like structure: a majority
// of quasi-disjoint base prefixes plus a tail of more-specifics nested in
// earlier prefixes. Nested specifics inherit their parent's owner — real
// FIBs are full of same-next-hop deaggregation, which inflates rule counts
// without creating new forwarding patterns — except for divergentNested of
// them, which get independent owners and therefore create new atoms. This
// is how the generators hit the paper's rule volumes *and* its modest
// atomic-predicate counts at the same time.
func (t *topology) generatePrefixes(count, minLen, maxLen int, bases []uint32, baseLen, divergentNested int) []prefixOwner {
	owners := make([]prefixOwner, 0, count)
	used := make(map[rule.Prefix]bool, count)
	var nested []int // indices of nested prefixes
	for len(owners) < count {
		var p rule.Prefix
		parent := -1
		if len(owners) > 0 && t.rng.Intn(100) < 40 {
			// Nested specific of an earlier prefix.
			parent = t.rng.Intn(len(owners))
			pp := owners[parent].prefix
			if pp.Length >= maxLen {
				continue
			}
			l := pp.Length + 1 + t.rng.Intn(maxLen-pp.Length)
			p = rule.P(pp.Value|t.rng.Uint32()&^maskFor(pp.Length), l)
		} else {
			base := bases[t.rng.Intn(len(bases))]
			l := minLen + t.rng.Intn(maxLen-minLen+1)
			p = rule.P(base|t.rng.Uint32()&^maskFor(baseLen), l)
		}
		if used[p] {
			continue // keep the pool at exactly `count` distinct prefixes
		}
		used[p] = true
		if parent >= 0 {
			owners = append(owners, prefixOwner{p, owners[parent].box, owners[parent].port})
			nested = append(nested, len(owners)-1)
		} else {
			b, port := t.randomEdge()
			owners = append(owners, prefixOwner{p, b, port})
		}
	}
	// Re-home a bounded number of nested specifics (traffic-engineered
	// more-specifics announced from elsewhere).
	t.rng.Shuffle(len(nested), func(i, j int) { nested[i], nested[j] = nested[j], nested[i] })
	if divergentNested > len(nested) {
		divergentNested = len(nested)
	}
	for _, idx := range nested[:divergentNested] {
		owners[idx].box, owners[idx].port = t.randomEdge()
	}
	return owners
}

// randomEdge picks a uniformly random host-facing (box, port).
func (t *topology) randomEdge() (int, int) {
	for {
		b := t.rng.Intn(len(t.edgePorts))
		if len(t.edgePorts[b]) > 0 {
			return b, t.edgePorts[b][t.rng.Intn(len(t.edgePorts[b]))]
		}
	}
}

func maskFor(length int) uint32 {
	if length == 0 {
		return 0
	}
	return ^uint32(0) << uint(32-length)
}

// populateFIBs installs, on every box, one rule per prefix: toward the
// nearest owner's edge port locally, or out the shortest-path backbone
// port. multihomeCount prefixes are multihomed (anycast-style, announced
// from a second edge port elsewhere), adding forwarding-pattern diversity
// in a bounded way.
func (t *topology) populateFIBs(owners []prefixOwner, multihomeCount int) {
	nh, dist := t.nextHops()
	multihomed := map[int]bool{}
	if multihomeCount > len(owners) {
		multihomeCount = len(owners)
	}
	for len(multihomed) < multihomeCount {
		multihomed[t.rng.Intn(len(owners))] = true
	}
	for oi, o := range owners {
		sites := []prefixOwner{o}
		if multihomed[oi] {
			b2, p2 := t.randomEdge()
			if b2 != o.box {
				sites = append(sites, prefixOwner{o.prefix, b2, p2})
			}
		}
		for b := range t.ds.Boxes {
			// Route toward the nearest announcing site.
			best := sites[0]
			bestDist := dist[b][best.box]
			for _, s := range sites[1:] {
				if d := dist[b][s.box]; d >= 0 && (bestDist < 0 || d < bestDist) {
					best, bestDist = s, d
				}
			}
			port := best.port
			if b != best.box {
				port = nh[b][best.box]
				if port < 0 {
					continue // disconnected (cannot happen in our graphs)
				}
			}
			t.ds.Boxes[b].Fwd.Add(rule.FwdRule{Prefix: o.prefix, Port: port})
		}
	}
}
