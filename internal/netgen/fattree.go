package netgen

import (
	"fmt"
	"math/rand"

	"apclassifier/internal/header"
	"apclassifier/internal/rule"
)

// FatTreeConfig shapes a three-tier Clos (fat-tree) data center fabric:
// Core core switches at the top, Pods pods below, each pod holding
// AggPerPod aggregation switches fully meshed to EdgePerPod edge switches,
// and HostsPerEdge host ports per edge switch.
//
// Generation is fully deterministic (no RNG): addressing is structural
// (edge switch e in pod p owns 10.p.e.0/24, host i is 10.p.e.(i+1)/32) and
// ECMP-style uplink spreading uses a fixed hash of the routed prefix, so
// the same config always yields the same dataset. This is the scale
// vehicle for the verification engine: the Large preset exceeds 1000
// boxes and 100k forwarding rules.
type FatTreeConfig struct {
	Pods        int
	EdgePerPod  int
	AggPerPod   int
	Core        int // must be a multiple of AggPerPod
	HostsPerEdge int
	// InjectLoop, when set, adds a deliberately broken route pair: the
	// first edge switch and first aggregation switch of pod 0 bounce
	// 10.254.0.0/16 between each other forever. Used to exercise loop
	// enumeration on an otherwise loop-free fabric.
	InjectLoop bool
}

// Fat-tree presets. Boxes = Core + Pods·(AggPerPod + EdgePerPod).
var (
	// FatTreeSmall: 28 boxes, a few hundred rules — CI-sized.
	FatTreeSmall = FatTreeConfig{Pods: 4, EdgePerPod: 4, AggPerPod: 2, Core: 4, HostsPerEdge: 2}
	// FatTreeMid: 104 boxes, ~3k rules — race/soak-sized.
	FatTreeMid = FatTreeConfig{Pods: 8, EdgePerPod: 8, AggPerPod: 4, Core: 8, HostsPerEdge: 2}
	// FatTreeLarge: 1072 boxes, ~218k rules — the paper-scale experiment.
	FatTreeLarge = FatTreeConfig{Pods: 24, EdgePerPod: 36, AggPerPod: 8, Core: 16, HostsPerEdge: 2}
)

// FatTreePreset resolves a preset by name ("small", "mid", "large").
func FatTreePreset(name string) (FatTreeConfig, error) {
	switch name {
	case "small":
		return FatTreeSmall, nil
	case "mid":
		return FatTreeMid, nil
	case "large":
		return FatTreeLarge, nil
	}
	return FatTreeConfig{}, fmt.Errorf("netgen: unknown fat-tree preset %q (small, mid, large)", name)
}

// NumBoxes reports the box count the config will generate.
func (cfg FatTreeConfig) NumBoxes() int {
	return cfg.Core + cfg.Pods*(cfg.AggPerPod+cfg.EdgePerPod)
}

func (cfg FatTreeConfig) validate() {
	switch {
	case cfg.Pods < 1 || cfg.Pods > 250:
		panic("netgen: fat-tree pods out of range")
	case cfg.EdgePerPod < 1 || cfg.EdgePerPod > 250:
		panic("netgen: fat-tree edges-per-pod out of range")
	case cfg.AggPerPod < 1 || cfg.Core < cfg.AggPerPod || cfg.Core%cfg.AggPerPod != 0:
		panic("netgen: fat-tree core count must be a positive multiple of agg-per-pod")
	case cfg.HostsPerEdge < 1 || cfg.HostsPerEdge > 200:
		panic("netgen: fat-tree hosts-per-edge out of range")
	}
}

// fthash spreads prefixes over uplinks deterministically (Knuth
// multiplicative hash — no RNG so the dataset is a pure function of the
// config).
func fthash(v uint32) uint32 {
	return v * 2654435761
}

// FatTree generates the fabric. Box order: cores, then per pod all
// aggregation switches followed by all edge switches.
//
// Routing is the standard hierarchical scheme: edge switches deliver
// their own /24 to host ports, send same-pod /24s and remote-pod /16s up
// a hashed aggregation uplink; aggregation switches carry the full /24
// table (down for their own pod, up a hashed core uplink otherwise);
// cores route each pod /16 down their single link into that pod.
// Unallocated destination space has no route anywhere and blackholes at
// the ingress — useful ground truth for blackhole enumeration.
func FatTree(cfg FatTreeConfig) *Dataset {
	cfg.validate()
	n := cfg.NumBoxes()
	names := make([]string, 0, n)
	for c := 0; c < cfg.Core; c++ {
		names = append(names, fmt.Sprintf("core%02d", c))
	}
	for p := 0; p < cfg.Pods; p++ {
		for a := 0; a < cfg.AggPerPod; a++ {
			names = append(names, fmt.Sprintf("p%02d-agg%02d", p, a))
		}
		for e := 0; e < cfg.EdgePerPod; e++ {
			names = append(names, fmt.Sprintf("p%02d-edge%02d", p, e))
		}
	}
	aggID := func(p, a int) int { return cfg.Core + p*(cfg.AggPerPod+cfg.EdgePerPod) + a }
	edgeID := func(p, e int) int { return cfg.Core + p*(cfg.AggPerPod+cfg.EdgePerPod) + cfg.AggPerPod + e }

	t := newTopology("fattree", header.IPv4Dst, n, names, rand.New(rand.NewSource(0)))

	// Wiring. Aggregation switch a serves the core stripe
	// [a·r, (a+1)·r) with r = Core/AggPerPod, so every core reaches every
	// pod through exactly one aggregation switch.
	r := cfg.Core / cfg.AggPerPod
	for p := 0; p < cfg.Pods; p++ {
		for a := 0; a < cfg.AggPerPod; a++ {
			for c := a * r; c < (a+1)*r; c++ {
				t.link(aggID(p, a), c)
			}
			for e := 0; e < cfg.EdgePerPod; e++ {
				t.link(aggID(p, a), edgeID(p, e))
			}
		}
	}
	// Host ports (named structurally, not via addEdgePorts).
	hostPort := make(map[int][]int, cfg.Pods*cfg.EdgePerPod) // edge box -> ports
	for p := 0; p < cfg.Pods; p++ {
		for e := 0; e < cfg.EdgePerPod; e++ {
			box := edgeID(p, e)
			for h := 0; h < cfg.HostsPerEdge; h++ {
				port := t.nextPort[box]
				t.nextPort[box]++
				hostPort[box] = append(hostPort[box], port)
				t.ds.Hosts = append(t.ds.Hosts, Host{Box: box, Port: port, Name: fmt.Sprintf("p%02de%02dh%d", p, e, h)})
			}
		}
	}
	t.finish()

	pod16 := func(p int) rule.Prefix { return rule.P(0x0A000000|uint32(p)<<16, 16) }
	edge24 := func(p, e int) rule.Prefix { return rule.P(0x0A000000|uint32(p)<<16|uint32(e)<<8, 24) }
	host32 := func(p, e, h int) rule.Prefix {
		return rule.P(0x0A000000|uint32(p)<<16|uint32(e)<<8|uint32(h+1), 32)
	}

	// Core switches: one /16 per pod, down the stripe link.
	for c := 0; c < cfg.Core; c++ {
		for p := 0; p < cfg.Pods; p++ {
			t.ds.Boxes[c].Fwd.Add(rule.FwdRule{Prefix: pod16(p), Port: t.linkPort[c][aggID(p, c/r)]})
		}
	}
	// Aggregation switches: full /24 table.
	for p := 0; p < cfg.Pods; p++ {
		for a := 0; a < cfg.AggPerPod; a++ {
			box := aggID(p, a)
			for p2 := 0; p2 < cfg.Pods; p2++ {
				for e2 := 0; e2 < cfg.EdgePerPod; e2++ {
					pfx := edge24(p2, e2)
					var port int
					if p2 == p {
						port = t.linkPort[box][edgeID(p, e2)]
					} else {
						core := a*r + int(fthash(pfx.Value)%uint32(r))
						port = t.linkPort[box][core]
					}
					t.ds.Boxes[box].Fwd.Add(rule.FwdRule{Prefix: pfx, Port: port})
				}
			}
		}
	}
	// Edge switches: host /32s, same-pod /24s up, remote /16s up.
	for p := 0; p < cfg.Pods; p++ {
		for e := 0; e < cfg.EdgePerPod; e++ {
			box := edgeID(p, e)
			for h := 0; h < cfg.HostsPerEdge; h++ {
				t.ds.Boxes[box].Fwd.Add(rule.FwdRule{Prefix: host32(p, e, h), Port: hostPort[box][h]})
			}
			up := func(pfx rule.Prefix) int {
				a := int(fthash(pfx.Value) % uint32(cfg.AggPerPod))
				return t.linkPort[box][aggID(p, a)]
			}
			for e2 := 0; e2 < cfg.EdgePerPod; e2++ {
				if e2 != e {
					pfx := edge24(p, e2)
					t.ds.Boxes[box].Fwd.Add(rule.FwdRule{Prefix: pfx, Port: up(pfx)})
				}
			}
			for p2 := 0; p2 < cfg.Pods; p2++ {
				if p2 != p {
					pfx := pod16(p2)
					t.ds.Boxes[box].Fwd.Add(rule.FwdRule{Prefix: pfx, Port: up(pfx)})
				}
			}
		}
	}

	if cfg.InjectLoop {
		// 10.254.0.0/16 is outside the allocated pod space (pods ≤ 250):
		// edge00 sends it to agg00, agg00 sends it straight back.
		loop := rule.P(0x0AFE0000, 16)
		e0, a0 := edgeID(0, 0), aggID(0, 0)
		t.ds.Boxes[e0].Fwd.Add(rule.FwdRule{Prefix: loop, Port: t.linkPort[e0][a0]})
		t.ds.Boxes[a0].Fwd.Add(rule.FwdRule{Prefix: loop, Port: t.linkPort[a0][e0]})
	}
	return t.ds
}
