package netgen

import (
	"fmt"
	"math/rand"

	"apclassifier/internal/header"
	"apclassifier/internal/rule"
)

// TenantPrefix returns tenant t's address block: 10.(t).0.0/16. Tenant
// identity is carried in the source/destination address, the way cloud
// fabrics map tenants to VRF subnets.
func TenantPrefix(t int) rule.Prefix {
	return rule.P(0x0A000000|uint32(t)<<16, 16)
}

// MultiTenantLike generates a small leaf-spine cloud fabric with hard
// tenant isolation — the "VLAN isolation" flow property of §I: a cloud
// provider guarantees packets in one virtual network cannot travel to
// another. Two spines, `leaves` leaf switches, `tenants` tenants; each
// tenant gets one host port on every leaf and owns 10.t.0.0/16. Egress
// ACLs on host ports permit only intra-tenant sources, so cross-tenant
// traffic is delivered nowhere.
//
// The generator is intentionally small and fully regular: it exists to
// verify isolation properties exactly (see verify.CanReach), not to model
// scale.
func MultiTenantLike(leaves, tenants int, seed int64) *Dataset {
	if leaves < 1 || tenants < 1 || tenants > 200 {
		panic("netgen: unreasonable multi-tenant shape")
	}
	rng := rand.New(rand.NewSource(seed))
	_ = rng
	names := []string{"spine0", "spine1"}
	for l := 0; l < leaves; l++ {
		names = append(names, fmt.Sprintf("leaf%02d", l))
	}
	t := newTopology("multitenant", header.FiveTuple, 2+leaves, names, rng)
	// Dual-homed leaves.
	for l := 0; l < leaves; l++ {
		t.link(2+l, 0)
		t.link(2+l, 1)
	}
	// One host port per (leaf, tenant).
	hostPort := make([][]int, leaves) // [leaf][tenant] -> port
	for l := 0; l < leaves; l++ {
		hostPort[l] = make([]int, tenants)
		for tn := 0; tn < tenants; tn++ {
			p := t.nextPort[2+l]
			t.nextPort[2+l]++
			hostPort[l][tn] = p
			t.ds.Hosts = append(t.ds.Hosts, Host{Box: 2 + l, Port: p, Name: fmt.Sprintf("t%d-leaf%02d", tn, l)})
		}
	}
	t.finish()

	// Routing: tenant t's per-leaf /24 is 10.t.l.0/24 at leaf l. Spines
	// route each /24 to its leaf; leaves route local /24s to host ports
	// and everything else up a spine (alternating for variety).
	for tn := 0; tn < tenants; tn++ {
		for l := 0; l < leaves; l++ {
			p24 := rule.P(0x0A000000|uint32(tn)<<16|uint32(l)<<8, 24)
			for s := 0; s < 2; s++ {
				t.ds.Boxes[s].Fwd.Add(rule.FwdRule{Prefix: p24, Port: t.linkPort[s][2+l]})
			}
			for l2 := 0; l2 < leaves; l2++ {
				if l2 == l {
					t.ds.Boxes[2+l2].Fwd.Add(rule.FwdRule{Prefix: p24, Port: hostPort[l2][tn]})
				} else {
					spine := (tn + l2) % 2
					t.ds.Boxes[2+l2].Fwd.Add(rule.FwdRule{Prefix: p24, Port: t.linkPort[2+l2][spine]})
				}
			}
		}
	}

	// Isolation: the egress ACL on each host port permits only sources in
	// the port's tenant.
	for l := 0; l < leaves; l++ {
		for tn := 0; tn < tenants; tn++ {
			m := rule.MatchAll()
			m.Src = TenantPrefix(tn)
			t.ds.Boxes[2+l].PortACL[hostPort[l][tn]] = &rule.ACL{
				Rules:   []rule.ACLRule{{Match: m, Action: rule.Permit}},
				Default: rule.Deny,
			}
		}
	}
	return t.ds
}
