package netgen

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"apclassifier/internal/header"
	"apclassifier/internal/rule"
)

// The dataset text format is a line-oriented snapshot of data-plane state,
// so real configurations can be fed to the classifier without recompiling:
//
//	# comment
//	dataset <name> <layout>            # layout: ipv4dst | fivetuple
//	box <name> <numPorts>
//	rule <box> <prefix> <port|drop>    # forwarding rule, e.g. 10.0.0.0/8 3
//	link <boxA> <portA> <boxB> <portB>
//	host <box> <port> <name>
//	acl <box> <port|in> <default>      # begins an ACL; default: permit|deny
//	  <permit|deny> src <prefix> dst <prefix> sport <lo>-<hi> dport <lo>-<hi> proto <n|any>
//	end
//
// Box names are declared before use; ACL rule lines run until "end".

// Write serializes the dataset in the text format.
func (ds *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	layout := "ipv4dst"
	if ds.Layout == header.FiveTuple {
		layout = "fivetuple"
	}
	name := ds.Name
	if name == "" || strings.ContainsAny(name, " \t") {
		name = "unnamed"
	}
	fmt.Fprintf(bw, "dataset %s %s\n", name, layout)
	for i := range ds.Boxes {
		fmt.Fprintf(bw, "box %s %d\n", ds.Boxes[i].Name, ds.Boxes[i].NumPorts)
	}
	for _, l := range ds.Links {
		fmt.Fprintf(bw, "link %s %d %s %d\n", ds.Boxes[l.A].Name, l.PA, ds.Boxes[l.B].Name, l.PB)
	}
	for _, h := range ds.Hosts {
		fmt.Fprintf(bw, "host %s %d %s\n", ds.Boxes[h.Box].Name, h.Port, h.Name)
	}
	for i := range ds.Boxes {
		b := &ds.Boxes[i]
		for _, r := range b.Fwd.Rules {
			port := strconv.Itoa(r.Port)
			if r.Port == rule.Drop {
				port = "drop"
			}
			fmt.Fprintf(bw, "rule %s %s %s\n", b.Name, r.Prefix, port)
		}
	}
	for i := range ds.Boxes {
		b := &ds.Boxes[i]
		if b.InACL != nil {
			writeACL(bw, b.Name, "in", b.InACL)
		}
		// Sorted port order, not map order, so the same dataset always
		// serializes to the same bytes (diffable snapshots).
		ports := make([]int, 0, len(b.PortACL))
		for port := range b.PortACL {
			ports = append(ports, port)
		}
		sort.Ints(ports)
		for _, port := range ports {
			writeACL(bw, b.Name, strconv.Itoa(port), b.PortACL[port])
		}
	}
	return bw.Flush()
}

func writeACL(w io.Writer, box, port string, acl *rule.ACL) {
	def := "permit"
	if acl.Default == rule.Deny {
		def = "deny"
	}
	fmt.Fprintf(w, "acl %s %s %s\n", box, port, def)
	for _, r := range acl.Rules {
		action := "permit"
		if r.Action == rule.Deny {
			action = "deny"
		}
		proto := "any"
		if r.Match.Proto != rule.AnyProto {
			proto = strconv.Itoa(r.Match.Proto)
		}
		fmt.Fprintf(w, "%s src %s dst %s sport %d-%d dport %d-%d proto %s\n",
			action, r.Match.Src, r.Match.Dst,
			r.Match.SrcPort.Lo, r.Match.SrcPort.Hi,
			r.Match.DstPort.Lo, r.Match.DstPort.Hi, proto)
	}
	fmt.Fprintln(w, "end")
}

// Read parses a dataset in the text format.
func Read(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	ds := &Dataset{Layout: header.IPv4Dst}
	boxByName := map[string]int{}
	lineNo := 0
	var curACL *rule.ACL
	fail := func(format string, args ...interface{}) (*Dataset, error) {
		return nil, fmt.Errorf("line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	boxID := func(name string) (int, bool) {
		id, ok := boxByName[name]
		return id, ok
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if curACL != nil {
			if f[0] == "end" {
				curACL = nil
				continue
			}
			r, err := parseACLRule(f)
			if err != nil {
				return fail("%v", err)
			}
			curACL.Rules = append(curACL.Rules, r)
			continue
		}
		switch f[0] {
		case "dataset":
			if len(f) != 3 {
				return fail("dataset needs name and layout")
			}
			ds.Name = f[1]
			switch f[2] {
			case "ipv4dst":
				ds.Layout = header.IPv4Dst
			case "fivetuple":
				ds.Layout = header.FiveTuple
			default:
				return fail("unknown layout %q", f[2])
			}
		case "box":
			if len(f) != 3 {
				return fail("box needs name and port count")
			}
			n, err := strconv.Atoi(f[2])
			if err != nil || n < 0 {
				return fail("bad port count %q", f[2])
			}
			if _, dup := boxByName[f[1]]; dup {
				return fail("duplicate box %q", f[1])
			}
			boxByName[f[1]] = len(ds.Boxes)
			ds.Boxes = append(ds.Boxes, BoxSpec{Name: f[1], NumPorts: n, PortACL: map[int]*rule.ACL{}})
		case "rule":
			if len(f) != 4 {
				return fail("rule needs box, prefix, port")
			}
			b, ok := boxID(f[1])
			if !ok {
				return fail("unknown box %q", f[1])
			}
			p, err := ParsePrefix(f[2])
			if err != nil {
				return fail("%v", err)
			}
			port := rule.Drop
			if f[3] != "drop" {
				port, err = strconv.Atoi(f[3])
				if err != nil || port < 0 || port >= ds.Boxes[b].NumPorts {
					return fail("bad port %q", f[3])
				}
			}
			ds.Boxes[b].Fwd.Add(rule.FwdRule{Prefix: p, Port: port})
		case "link":
			if len(f) != 5 {
				return fail("link needs boxA portA boxB portB")
			}
			a, ok1 := boxID(f[1])
			b, ok2 := boxID(f[3])
			if !ok1 || !ok2 {
				return fail("unknown box in link")
			}
			pa, e1 := strconv.Atoi(f[2])
			pb, e2 := strconv.Atoi(f[4])
			if e1 != nil || e2 != nil || pa < 0 || pa >= ds.Boxes[a].NumPorts || pb < 0 || pb >= ds.Boxes[b].NumPorts {
				return fail("bad link ports")
			}
			ds.Links = append(ds.Links, Link{a, pa, b, pb})
		case "host":
			if len(f) != 4 {
				return fail("host needs box, port, name")
			}
			b, ok := boxID(f[1])
			if !ok {
				return fail("unknown box %q", f[1])
			}
			p, err := strconv.Atoi(f[2])
			if err != nil || p < 0 || p >= ds.Boxes[b].NumPorts {
				return fail("bad host port %q", f[2])
			}
			ds.Hosts = append(ds.Hosts, Host{Box: b, Port: p, Name: f[3]})
		case "acl":
			if len(f) != 4 {
				return fail("acl needs box, port|in, default")
			}
			b, ok := boxID(f[1])
			if !ok {
				return fail("unknown box %q", f[1])
			}
			def := rule.Permit
			switch f[3] {
			case "permit":
			case "deny":
				def = rule.Deny
			default:
				return fail("bad default %q", f[3])
			}
			curACL = &rule.ACL{Default: def}
			if f[2] == "in" {
				ds.Boxes[b].InACL = curACL
			} else {
				p, err := strconv.Atoi(f[2])
				if err != nil || p < 0 || p >= ds.Boxes[b].NumPorts {
					return fail("bad acl port %q", f[2])
				}
				ds.Boxes[b].PortACL[p] = curACL
			}
		default:
			return fail("unknown directive %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if curACL != nil {
		return nil, fmt.Errorf("unterminated acl block")
	}
	return ds, nil
}

// parseACLRule parses "permit|deny src P dst P sport a-b dport a-b proto n".
func parseACLRule(f []string) (rule.ACLRule, error) {
	var r rule.ACLRule
	if len(f) != 11 {
		return r, fmt.Errorf("acl rule needs 11 fields, got %d", len(f))
	}
	switch f[0] {
	case "permit":
		r.Action = rule.Permit
	case "deny":
		r.Action = rule.Deny
	default:
		return r, fmt.Errorf("bad action %q", f[0])
	}
	if f[1] != "src" || f[3] != "dst" || f[5] != "sport" || f[7] != "dport" || f[9] != "proto" {
		return r, fmt.Errorf("malformed acl rule")
	}
	var err error
	if r.Match.Src, err = ParsePrefix(f[2]); err != nil {
		return r, err
	}
	if r.Match.Dst, err = ParsePrefix(f[4]); err != nil {
		return r, err
	}
	if r.Match.SrcPort, err = parseRange(f[6]); err != nil {
		return r, err
	}
	if r.Match.DstPort, err = parseRange(f[8]); err != nil {
		return r, err
	}
	if f[10] == "any" {
		r.Match.Proto = rule.AnyProto
	} else {
		p, err := strconv.Atoi(f[10])
		if err != nil || p < 0 || p > 255 {
			return r, fmt.Errorf("bad proto %q", f[10])
		}
		r.Match.Proto = p
	}
	return r, nil
}

func parseRange(s string) (rule.PortRange, error) {
	parts := strings.SplitN(s, "-", 2)
	if len(parts) != 2 {
		return rule.PortRange{}, fmt.Errorf("bad port range %q", s)
	}
	lo, e1 := strconv.Atoi(parts[0])
	hi, e2 := strconv.Atoi(parts[1])
	if e1 != nil || e2 != nil || lo < 0 || hi > 65535 || lo > hi {
		return rule.PortRange{}, fmt.Errorf("bad port range %q", s)
	}
	return rule.PortRange{Lo: uint16(lo), Hi: uint16(hi)}, nil
}

// ParsePrefix parses dotted-quad CIDR, e.g. "10.0.0.0/8".
func ParsePrefix(s string) (rule.Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return rule.Prefix{}, fmt.Errorf("prefix %q missing /length", s)
	}
	length, err := strconv.Atoi(s[slash+1:])
	if err != nil || length < 0 || length > 32 {
		return rule.Prefix{}, fmt.Errorf("bad prefix length in %q", s)
	}
	octets := strings.Split(s[:slash], ".")
	if len(octets) != 4 {
		return rule.Prefix{}, fmt.Errorf("bad address in %q", s)
	}
	var v uint32
	for _, o := range octets {
		n, err := strconv.Atoi(o)
		if err != nil || n < 0 || n > 255 {
			return rule.Prefix{}, fmt.Errorf("bad octet %q in %q", o, s)
		}
		v = v<<8 | uint32(n)
	}
	return rule.P(v, length), nil
}
