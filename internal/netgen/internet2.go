package netgen

import (
	"math/rand"

	"apclassifier/internal/header"
)

// internet2Cities are the nine Abilene/Internet2 backbone PoPs.
var internet2Cities = []string{
	"seattle", "sunnyvale", "losangeles", "denver", "kansascity",
	"houston", "chicago", "indianapolis", "atlanta",
}

// internet2Links is the (approximate) Abilene backbone: a sparse national
// ring with cross-country chords, 13 links over 9 routers.
var internet2Links = [][2]int{
	{0, 1}, // seattle–sunnyvale
	{0, 3}, // seattle–denver
	{1, 2}, // sunnyvale–losangeles
	{1, 3}, // sunnyvale–denver
	{2, 5}, // losangeles–houston
	{3, 4}, // denver–kansascity
	{4, 5}, // kansascity–houston
	{4, 6}, // kansascity–chicago
	{5, 8}, // houston–atlanta
	{6, 7}, // chicago–indianapolis
	{7, 8}, // indianapolis–atlanta
	{6, 8}, // chicago–atlanta (chord)
	{2, 8}, // losangeles–atlanta (chord)
}

// internet2FullRules matches Table I of the paper.
const internet2FullRules = 126017

// Internet2Like generates a synthetic stand-in for the Internet2 dataset:
// 9 backbone routers, 13 links, destination-IP routing only (no ACLs),
// with edge-port counts chosen so the predicate count lands near the
// paper's 161. At RuleScale 1.0 the forwarding-rule volume matches Table I
// (≈126k rules).
func Internet2Like(cfg Config) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := newTopology("internet2-like", header.IPv4Dst, len(internet2Cities), internet2Cities, rng)
	for _, l := range internet2Links {
		t.link(l[0], l[1])
	}
	// 13 links use 26 ports; 135 edge ports (15 per router) bring the
	// total port count — and hence the forwarding-predicate budget — to
	// 161, matching the paper.
	for b := range internet2Cities {
		t.addEdgePorts(b, 15)
	}
	t.finish()

	// One FIB rule per (box, prefix): the pool size follows from the
	// target rule volume.
	prefixes := cfg.scale(internet2FullRules) / len(internet2Cities)
	bases := []uint32{0x0A000000, 0x40000000, 0x80000000, 0xC0000000}
	multihome, divergent := cfg.diversity(prefixes, 150, 330)
	owners := t.generatePrefixes(prefixes, 10, 24, bases, 4, divergent)
	t.populateFIBs(owners, multihome)
	return t.ds
}
