package netgen

import (
	"fmt"
	"math/rand"

	"apclassifier/internal/header"
	"apclassifier/internal/rule"
)

// stanfordFullRules and stanfordFullACLRules match Table I of the paper.
const (
	stanfordFullRules    = 757170
	stanfordFullACLRules = 1584
)

// StanfordLike generates a synthetic stand-in for the Stanford backbone
// dataset: 16 boxes in a two-tier topology (2 backbone routers, 14 zone
// routers), dense campus-style FIBs over 171.64.0.0/14-like space, and
// 5-tuple ACLs on zone-router ports. At RuleScale 1.0 the rule volume
// matches Table I (≈757k forwarding rules, 1,584 ACL rules), and the port
// budget is tuned so the predicate count (forwarding + ACL) lands near the
// paper's 507.
func StanfordLike(cfg Config) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	names := []string{"bbra", "bbrb"}
	for i := 0; i < 14; i++ {
		names = append(names, fmt.Sprintf("zone%02d", i))
	}
	t := newTopology("stanford-like", header.FiveTuple, 16, names, rng)
	// Each zone router dual-homes to both backbone routers; the backbones
	// interconnect. 29 links → 58 link ports.
	t.link(0, 1)
	for z := 2; z < 16; z++ {
		t.link(z, 0)
		t.link(z, 1)
	}
	// 28 edge (subnet) ports per zone router: 58 + 14×28 = 450 ports, so
	// ~450 forwarding predicates; ACL predicates bring the total near 507.
	for z := 2; z < 16; z++ {
		t.addEdgePorts(z, 28)
	}
	t.finish()

	prefixes := cfg.scale(stanfordFullRules) / 16
	multihome, divergent := cfg.diversity(prefixes, 120, 500)
	owners := t.campusPrefixes(prefixes, divergent)
	t.populateFIBs(owners, multihome)

	// ACLs: the paper's 1,584 ACL rules spread over egress ACLs on zone
	// uplink ports and a few ingress ACLs — 57 ACLs of ~28 rules each, so
	// that total predicates ≈ 450 + 57 = 507. Rules draw their match
	// terms from a shared vocabulary (campus configs reuse the same
	// organizational blocks and service ports everywhere); fresh random
	// terms per rule would explode the atomic-predicate count far beyond
	// anything real data planes exhibit.
	aclRules := cfg.scale(stanfordFullACLRules)
	const numACLs = 57
	perACL := aclRules / numACLs
	if perACL < 1 {
		perACL = 1
	}
	vocab := t.newACLVocab(owners)
	for i := 0; i < numACLs; i++ {
		z := 2 + i%14
		switch {
		case i < 28: // uplink egress ACLs (two uplinks per zone router)
			t.ds.Boxes[z].PortACL[t.linkPort[z][(i/14)%2]] = t.randomACL(perACL, vocab, i%4 == 0)
		case i < 42: // edge-port egress ACLs
			ports := t.edgePorts[z]
			t.ds.Boxes[z].PortACL[ports[i%len(ports)]] = t.randomACL(perACL, vocab, i%3 == 0)
		case i < 56:
			// Zone-router ingress ACLs: block-list style only — an
			// ingress filter that default-denied would blackhole the
			// whole box, which real campus configs avoid.
			t.ds.Boxes[z].InACL = t.randomACL(perACL, vocab, false)
		default: // the 57th ACL guards the primary backbone router
			t.ds.Boxes[0].InACL = t.randomACL(perACL, vocab, false)
		}
	}
	return t.ds
}

// campusPrefixes generates a campus-style prefix pool: disjoint covering
// subnets (aligned /20–/24 blocks allocated sequentially, so they never
// overlap by accident) plus a large majority of host routes (/29–/32)
// inside them. Host routes inherit their subnet's owner — in real campus
// FIBs host routes exist for accounting and security, not to route
// differently — so rule volume grows without inflating the atomic-
// predicate count. Exactly `divergent` host routes are re-homed elsewhere
// (plus multihoming, applied later), which bounds atom diversity the same
// way the Internet2 generator does.
func (t *topology) campusPrefixes(count, divergent int) []prefixOwner {
	bases := []uint32{0x0A000000, 0xAB400000, 0x80400000, 0xC0A80000}
	numSubnets := count / 8
	if numSubnets < 1 {
		numSubnets = 1
	}
	owners := make([]prefixOwner, 0, count)
	// Sequential /20 slots across the bases keep subnets disjoint.
	slot := 0
	maxSlots := len(bases) << 12 // /8 regions sliced into /20 slots
	for len(owners) < numSubnets && slot < maxSlots {
		base := bases[slot%len(bases)]
		addr := base | uint32(slot/len(bases))<<12
		l := 20 + t.rng.Intn(5) // /20../24 anchored at the slot start
		b, port := t.randomEdge()
		owners = append(owners, prefixOwner{rule.P(addr, l), b, port})
		slot++
	}
	subnets := len(owners)
	// Host routes inside random subnets, inheriting the subnet's owner.
	used := make(map[rule.Prefix]bool, count)
	for len(owners) < count {
		parent := owners[t.rng.Intn(subnets)]
		l := 29 + t.rng.Intn(4)
		p := rule.P(parent.prefix.Value|t.rng.Uint32()&^maskFor(parent.prefix.Length), l)
		if used[p] {
			continue
		}
		used[p] = true
		owners = append(owners, prefixOwner{p, parent.box, parent.port})
	}
	// Re-home a bounded number of host routes (servers living in another
	// zone than their subnet, VPN'd hosts, and similar oddities).
	if divergent > count-subnets {
		divergent = count - subnets
	}
	for i := 0; i < divergent; i++ {
		idx := subnets + t.rng.Intn(count-subnets)
		owners[idx].box, owners[idx].port = t.randomEdge()
	}
	return owners
}

// aclVocab is the shared pool of match terms all generated ACLs draw from.
type aclVocab struct {
	dstAnchors []rule.Prefix // specific routed destinations
	dstBroad   []rule.Prefix // broad campus blocks
	srcBlocks  []rule.Prefix // organizational source blocks
	services   []rule.PortRange
}

func (t *topology) newACLVocab(owners []prefixOwner) *aclVocab {
	v := &aclVocab{}
	for i := 0; i < 24; i++ {
		v.dstAnchors = append(v.dstAnchors, owners[t.rng.Intn(len(owners))].prefix)
	}
	for i := 0; i < 8; i++ {
		p := owners[t.rng.Intn(len(owners))].prefix
		l := 14 + t.rng.Intn(5)
		if l > p.Length {
			l = p.Length
		}
		v.dstBroad = append(v.dstBroad, rule.P(p.Value, l))
	}
	for i := 0; i < 10; i++ {
		v.srcBlocks = append(v.srcBlocks, rule.P(t.rng.Uint32(), 8+8*t.rng.Intn(2)))
	}
	// Standard service ports (the usual suspects of campus ACLs).
	for _, pr := range [][2]uint16{{22, 22}, {23, 23}, {25, 25}, {53, 53}, {80, 80}, {443, 443}, {135, 139}, {0, 1023}} {
		v.services = append(v.services, rule.R(pr[0], pr[1]))
	}
	return v
}

// randomACL builds a campus-style ACL from the shared vocabulary. Two
// flavors, like Cisco-style campus configs:
//
//   - permit-list ACLs: permit broad campus destination blocks (with a few
//     targeted denies shadowing them), implicit deny — their permit
//     predicates cover a mid-sized chunk of the header space;
//   - block-list ACLs: deny specific prefixes/ports, default permit.
func (t *topology) randomACL(n int, vocab *aclVocab, permitList bool) *rule.ACL {
	acl := &rule.ACL{Default: rule.Permit}
	if permitList {
		acl.Default = rule.Deny
	}
	for i := 0; i < n; i++ {
		m := rule.MatchAll()
		action := rule.Deny
		switch {
		case permitList && i >= n/3:
			m.Dst = vocab.dstBroad[t.rng.Intn(len(vocab.dstBroad))]
			action = rule.Permit
		default:
			m.Dst = vocab.dstAnchors[t.rng.Intn(len(vocab.dstAnchors))]
		}
		if t.rng.Intn(3) == 0 {
			m.Src = vocab.srcBlocks[t.rng.Intn(len(vocab.srcBlocks))]
		}
		switch t.rng.Intn(4) {
		case 0:
			m.Proto = 6 // tcp
			m.DstPort = vocab.services[t.rng.Intn(len(vocab.services))]
		case 1:
			m.Proto = 17 // udp
		}
		if !permitList && t.rng.Intn(4) == 0 {
			action = rule.Permit // targeted exception in a block list
		}
		acl.Rules = append(acl.Rules, rule.ACLRule{Match: m, Action: action})
	}
	return acl
}
