package netgen

import (
	"testing"

	"apclassifier/internal/header"
	"apclassifier/internal/rule"
)

func validBase() *Dataset {
	ds := &Dataset{Name: "v", Layout: header.IPv4Dst}
	ds.Boxes = []BoxSpec{
		{Name: "a", NumPorts: 2, PortACL: map[int]*rule.ACL{}},
		{Name: "b", NumPorts: 2, PortACL: map[int]*rule.ACL{}},
	}
	ds.Links = []Link{{A: 0, PA: 1, B: 1, PB: 1}}
	ds.Hosts = []Host{{Box: 0, Port: 0, Name: "h1"}, {Box: 1, Port: 0, Name: "h2"}}
	ds.Boxes[0].Fwd.Add(rule.FwdRule{Prefix: rule.P(0x0A000000, 8), Port: 0})
	return ds
}

func TestValidateAcceptsGeneratedAndHandBuilt(t *testing.T) {
	for _, ds := range []*Dataset{
		validBase(),
		Internet2Like(Config{Seed: 1, RuleScale: 0.005}),
		StanfordLike(Config{Seed: 1, RuleScale: 0.002}),
	} {
		if err := ds.Validate(); err != nil {
			t.Errorf("%s: %v", ds.Name, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := map[string]func(*Dataset){
		"rule port out of range": func(ds *Dataset) {
			ds.Boxes[0].Fwd.Add(rule.FwdRule{Prefix: rule.P(0, 0), Port: 9})
		},
		"negative rule port": func(ds *Dataset) {
			ds.Boxes[0].Fwd.Add(rule.FwdRule{Prefix: rule.P(0, 0), Port: -2})
		},
		"non-canonical prefix": func(ds *Dataset) {
			ds.Boxes[0].Fwd.Add(rule.FwdRule{Prefix: rule.Prefix{Value: 0x0A0000FF, Length: 8}, Port: 0})
		},
		"duplicate box name": func(ds *Dataset) {
			ds.Boxes[1].Name = "a"
		},
		"empty box name": func(ds *Dataset) {
			ds.Boxes[0].Name = ""
		},
		"link to missing box": func(ds *Dataset) {
			ds.Links = append(ds.Links, Link{A: 0, PA: 0, B: 7, PB: 0})
		},
		"link to missing port": func(ds *Dataset) {
			ds.Links = append(ds.Links, Link{A: 0, PA: 5, B: 1, PB: 0})
		},
		"host on linked port": func(ds *Dataset) {
			ds.Hosts = append(ds.Hosts, Host{Box: 0, Port: 1, Name: "clash"})
		},
		"duplicate host name": func(ds *Dataset) {
			ds.Hosts = append(ds.Hosts, Host{Box: 1, Port: 0, Name: "h1"})
		},
		"two hosts one port": func(ds *Dataset) {
			ds.Hosts = append(ds.Hosts, Host{Box: 0, Port: 0, Name: "h3"})
		},
		"ACL on missing port": func(ds *Dataset) {
			ds.Boxes[0].PortACL[9] = &rule.ACL{Default: rule.Permit}
		},
		"5-tuple ACL on dst-only layout": func(ds *Dataset) {
			acl := &rule.ACL{Default: rule.Permit}
			acl.Rules = append(acl.Rules, rule.ACLRule{
				Match:  rule.Match5{Src: rule.P(0x0A000000, 8), SrcPort: rule.AnyPort, DstPort: rule.AnyPort, Proto: rule.AnyProto},
				Action: rule.Deny,
			})
			ds.Boxes[0].PortACL[0] = acl
		},
		"proto match on dst-only layout": func(ds *Dataset) {
			acl := &rule.ACL{Default: rule.Permit}
			m := rule.MatchAll()
			m.Proto = 6
			acl.Rules = append(acl.Rules, rule.ACLRule{Match: m, Action: rule.Deny})
			ds.Boxes[0].InACL = acl
		},
	}
	for name, corrupt := range cases {
		ds := validBase()
		corrupt(ds)
		if err := ds.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestDstOnlyACLAllowedOnDstLayout(t *testing.T) {
	ds := validBase()
	acl := &rule.ACL{Default: rule.Permit}
	m := rule.MatchAll()
	m.Dst = rule.P(0x0A000000, 8)
	acl.Rules = append(acl.Rules, rule.ACLRule{Match: m, Action: rule.Deny})
	ds.Boxes[0].InACL = acl
	if err := ds.Validate(); err != nil {
		t.Fatalf("dst-only ACL must validate on dst-only layout: %v", err)
	}
}
