package netgen

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead ensures the dataset parser never panics on arbitrary input, and
// that anything it accepts survives a Write/Read round trip with identical
// structure.
func FuzzRead(f *testing.F) {
	f.Add("dataset toy ipv4dst\nbox a 2\nhost a 0 h1\nrule a 10.0.0.0/8 0\n")
	f.Add("box a 1\nacl a 0 permit\ndeny src 0.0.0.0/0 dst 10.0.0.0/8 sport 0-65535 dport 80-80 proto 6\nend\n")
	f.Add("# only a comment\n")
	f.Add("box a 1\nbox b 1\nlink a 0 b 0\n")
	f.Add("dataset x fivetuple\nbox q 300\nrule q 1.2.3.4/32 299\n")
	var small bytes.Buffer
	if err := Internet2Like(Config{Seed: 1, RuleScale: 0.003}).Write(&small); err != nil {
		f.Fatal(err)
	}
	f.Add(small.String())

	f.Fuzz(func(t *testing.T, text string) {
		ds, err := Read(strings.NewReader(text))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := ds.Validate(); err != nil {
			return // parseable but structurally invalid (e.g. host/link clash)
		}
		var buf bytes.Buffer
		if err := ds.Write(&buf); err != nil {
			t.Fatalf("Write failed on accepted dataset: %v", err)
		}
		ds2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if ds2.NumRules() != ds.NumRules() || ds2.NumACLRules() != ds.NumACLRules() ||
			len(ds2.Boxes) != len(ds.Boxes) || len(ds2.Links) != len(ds.Links) || len(ds2.Hosts) != len(ds.Hosts) {
			t.Fatal("round trip changed the dataset")
		}
	})
}
