package netgen

import (
	"fmt"

	"apclassifier/internal/rule"
)

// Validate checks structural soundness of a dataset: every rule, link,
// host, and ACL reference must point at an existing box and port, no port
// may be both linked and host-facing, and ACLs must be representable in
// the layout (a 5-tuple ACL on a dstIP-only layout cannot be compiled
// faithfully). The classifier refuses datasets that fail validation.
func (ds *Dataset) Validate() error {
	if ds.Layout == nil {
		return fmt.Errorf("dataset %q: nil layout", ds.Name)
	}
	names := map[string]bool{}
	for i := range ds.Boxes {
		b := &ds.Boxes[i]
		if b.Name == "" {
			return fmt.Errorf("box %d: empty name", i)
		}
		if names[b.Name] {
			return fmt.Errorf("duplicate box name %q", b.Name)
		}
		names[b.Name] = true
		if b.NumPorts < 0 {
			return fmt.Errorf("box %q: negative port count", b.Name)
		}
		for ri, r := range b.Fwd.Rules {
			if r.Port != rule.Drop && (r.Port < 0 || r.Port >= b.NumPorts) {
				return fmt.Errorf("box %q rule %d: port %d out of range [0,%d)", b.Name, ri, r.Port, b.NumPorts)
			}
			if r.Prefix != rule.P(r.Prefix.Value, r.Prefix.Length) {
				return fmt.Errorf("box %q rule %d: non-canonical prefix", b.Name, ri)
			}
		}
		for p, acl := range b.PortACL {
			if p < 0 || p >= b.NumPorts {
				return fmt.Errorf("box %q: ACL on nonexistent port %d", b.Name, p)
			}
			if err := ds.validateACL(acl); err != nil {
				return fmt.Errorf("box %q port %d: %v", b.Name, p, err)
			}
		}
		if b.InACL != nil {
			if err := ds.validateACL(b.InACL); err != nil {
				return fmt.Errorf("box %q ingress ACL: %v", b.Name, err)
			}
		}
	}
	used := map[[2]int]string{}
	claim := func(box, port int, what string) error {
		if box < 0 || box >= len(ds.Boxes) {
			return fmt.Errorf("%s references box %d of %d", what, box, len(ds.Boxes))
		}
		if port < 0 || port >= ds.Boxes[box].NumPorts {
			return fmt.Errorf("%s references port %d of box %q (%d ports)", what, port, ds.Boxes[box].Name, ds.Boxes[box].NumPorts)
		}
		key := [2]int{box, port}
		if prev, ok := used[key]; ok {
			return fmt.Errorf("port %d of box %q used by both %s and %s", port, ds.Boxes[box].Name, prev, what)
		}
		used[key] = what
		return nil
	}
	for li, l := range ds.Links {
		what := fmt.Sprintf("link %d", li)
		if err := claim(l.A, l.PA, what); err != nil {
			return err
		}
		if err := claim(l.B, l.PB, what); err != nil {
			return err
		}
	}
	hostNames := map[string]bool{}
	for hi, h := range ds.Hosts {
		if h.Name == "" {
			return fmt.Errorf("host %d: empty name", hi)
		}
		if hostNames[h.Name] {
			return fmt.Errorf("duplicate host name %q", h.Name)
		}
		hostNames[h.Name] = true
		if err := claim(h.Box, h.Port, fmt.Sprintf("host %q", h.Name)); err != nil {
			return err
		}
	}
	return nil
}

// validateACL rejects ACLs that constrain fields the layout lacks.
func (ds *Dataset) validateACL(acl *rule.ACL) error {
	has := func(f string) bool {
		_, ok := ds.Layout.FieldByName(f)
		return ok
	}
	for i, r := range acl.Rules {
		m := r.Match
		if m.Src.Length > 0 && !has("srcIP") {
			return fmt.Errorf("rule %d constrains srcIP, absent from layout", i)
		}
		if m.SrcPort != rule.AnyPort && m.SrcPort != (rule.PortRange{}) && !has("srcPort") {
			return fmt.Errorf("rule %d constrains srcPort, absent from layout", i)
		}
		if m.DstPort != rule.AnyPort && m.DstPort != (rule.PortRange{}) && !has("dstPort") {
			return fmt.Errorf("rule %d constrains dstPort, absent from layout", i)
		}
		if m.Proto != rule.AnyProto && !has("proto") {
			return fmt.Errorf("rule %d constrains proto, absent from layout", i)
		}
	}
	return nil
}
