package netgen

import (
	"math/rand"
	"testing"

	"apclassifier/internal/rule"
)

func TestInternet2Topology(t *testing.T) {
	ds := Internet2Like(Config{Seed: 1, RuleScale: 0.01})
	if len(ds.Boxes) != 9 {
		t.Fatalf("boxes = %d, want 9", len(ds.Boxes))
	}
	if len(ds.Links) != 13 {
		t.Fatalf("links = %d, want 13", len(ds.Links))
	}
	ports := 0
	for i := range ds.Boxes {
		ports += ds.Boxes[i].NumPorts
	}
	if ports != 161 {
		t.Fatalf("total ports = %d, want 161 (the paper's predicate budget)", ports)
	}
	if ds.NumACLRules() != 0 {
		t.Fatal("Internet2 has no ACLs")
	}
	if len(ds.Hosts) != 135 {
		t.Fatalf("hosts = %d, want 135 edge ports", len(ds.Hosts))
	}
}

func TestInternet2RuleVolumeScales(t *testing.T) {
	small := Internet2Like(Config{Seed: 1, RuleScale: 0.01})
	big := Internet2Like(Config{Seed: 1, RuleScale: 0.05})
	if small.NumRules() >= big.NumRules() {
		t.Fatalf("scaling broken: %d !< %d", small.NumRules(), big.NumRules())
	}
	// One rule per (box, prefix): volume ≈ 9 × pool size.
	if got := small.NumRules(); got < 9*100 || got > 9*150 {
		t.Fatalf("rule count %d outside expected band for scale 0.01", got)
	}
}

func TestInternet2Deterministic(t *testing.T) {
	a := Internet2Like(Config{Seed: 42, RuleScale: 0.01})
	b := Internet2Like(Config{Seed: 42, RuleScale: 0.01})
	if a.NumRules() != b.NumRules() {
		t.Fatal("same seed must give same dataset")
	}
	for i := range a.Boxes {
		if len(a.Boxes[i].Fwd.Rules) != len(b.Boxes[i].Fwd.Rules) {
			t.Fatalf("box %d rule counts differ", i)
		}
		for j, r := range a.Boxes[i].Fwd.Rules {
			if r != b.Boxes[i].Fwd.Rules[j] {
				t.Fatalf("box %d rule %d differs", i, j)
			}
		}
	}
	c := Internet2Like(Config{Seed: 43, RuleScale: 0.01})
	same := true
	for i := range a.Boxes {
		if len(a.Boxes[i].Fwd.Rules) != len(c.Boxes[i].Fwd.Rules) {
			same = false
			break
		}
		for j, r := range a.Boxes[i].Fwd.Rules {
			if r != c.Boxes[i].Fwd.Rules[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds must give different datasets")
	}
}

func TestStanfordTopology(t *testing.T) {
	ds := StanfordLike(Config{Seed: 1, RuleScale: 0.002})
	if len(ds.Boxes) != 16 {
		t.Fatalf("boxes = %d, want 16", len(ds.Boxes))
	}
	if len(ds.Links) != 29 {
		t.Fatalf("links = %d, want 29", len(ds.Links))
	}
	ports := 0
	for i := range ds.Boxes {
		ports += ds.Boxes[i].NumPorts
	}
	if ports != 450 {
		t.Fatalf("total ports = %d, want 450", ports)
	}
	if ds.NumACLs() == 0 || ds.NumACLRules() == 0 {
		t.Fatal("Stanford must have ACLs")
	}
	if ds.Layout.Bits() != 104 {
		t.Fatal("Stanford uses the 5-tuple layout")
	}
}

func TestStanfordFullScaleTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	ds := StanfordLike(Config{Seed: 1, RuleScale: 1})
	if got := ds.NumRules(); got < 700000 || got > 800000 {
		t.Fatalf("full-scale rules = %d, want ≈757k", got)
	}
	if got := ds.NumACLRules(); got < 1400 || got > 1700 {
		t.Fatalf("full-scale ACL rules = %d, want ≈1584", got)
	}
}

func TestInternet2FullScaleTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	ds := Internet2Like(Config{Seed: 1, RuleScale: 1})
	if got := ds.NumRules(); got < 120000 || got > 130000 {
		t.Fatalf("full-scale rules = %d, want ≈126k", got)
	}
}

func TestSimulateDeliversRoutedTraffic(t *testing.T) {
	ds := Internet2Like(Config{Seed: 7, RuleScale: 0.01})
	rng := rand.New(rand.NewSource(7))
	delivered, dropped := 0, 0
	for i := 0; i < 500; i++ {
		f := ds.RandomFields(rng)
		res := ds.Simulate(rng.Intn(len(ds.Boxes)), f)
		if len(res.Delivered) > 0 {
			delivered++
		} else {
			dropped++
		}
		if res.Looped {
			t.Fatalf("shortest-path FIBs must not loop: %+v", f)
		}
		if len(res.Delivered) > 1 {
			t.Fatalf("LPM unicast cannot multicast: %v", res.Delivered)
		}
	}
	if delivered == 0 {
		t.Fatal("no packet delivered — generator produces dead networks")
	}
	if dropped == 0 {
		t.Fatal("no packet dropped — RandomFields should include unrouted dsts")
	}
}

func TestSimulateConsistentDeliveryAcrossIngress(t *testing.T) {
	// With multihoming disabled, a routed destination must reach the same
	// host regardless of where the packet enters (shortest-path
	// consistency of generated FIBs).
	ds := Internet2Like(Config{Seed: 9, RuleScale: 0.01, Multihome: -1})
	rng := rand.New(rand.NewSource(9))
	checked := 0
	for trial := 0; trial < 200 && checked < 50; trial++ {
		f := ds.RandomFields(rng)
		res0 := ds.Simulate(0, f)
		if len(res0.Delivered) != 1 {
			continue
		}
		checked++
		for b := 1; b < len(ds.Boxes); b++ {
			res := ds.Simulate(b, f)
			if len(res.Delivered) != 1 || res.Delivered[0] != res0.Delivered[0] {
				t.Fatalf("dst %08x delivered to %v from box 0 but %v from box %d",
					f.Dst, res0.Delivered, res.Delivered, b)
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d delivered flows found", checked)
	}
}

func TestMultihomingDeliversSomewhereFromEveryIngress(t *testing.T) {
	// With anycast prefixes, the host may differ by ingress but routed
	// traffic must still deliver from everywhere.
	ds := Internet2Like(Config{Seed: 9, RuleScale: 0.01, Multihome: 0.5})
	rng := rand.New(rand.NewSource(9))
	anycastSeen := false
	checked := 0
	for trial := 0; trial < 300 && checked < 60; trial++ {
		f := ds.RandomFields(rng)
		res0 := ds.Simulate(0, f)
		if len(res0.Delivered) != 1 {
			continue
		}
		checked++
		for b := 1; b < len(ds.Boxes); b++ {
			res := ds.Simulate(b, f)
			if len(res.Delivered) != 1 {
				t.Fatalf("routed dst %08x not delivered from box %d", f.Dst, b)
			}
			if res.Delivered[0] != res0.Delivered[0] {
				anycastSeen = true
			}
		}
	}
	if !anycastSeen {
		t.Fatal("multihoming 0.5 should produce ingress-dependent delivery")
	}
}

func TestMultihomingIncreasesAtomDiversity(t *testing.T) {
	// The motivation for multihoming: more distinct forwarding patterns.
	// Count distinct (box → port) route vectors over sampled prefixes.
	single := Internet2Like(Config{Seed: 10, RuleScale: 0.02, Multihome: -1})
	multi := Internet2Like(Config{Seed: 10, RuleScale: 0.02, Multihome: 0.3})
	count := func(ds *Dataset) int {
		vecs := map[string]bool{}
		for _, r := range ds.Boxes[0].Fwd.Rules {
			key := ""
			for b := range ds.Boxes {
				p, ok := ds.Boxes[b].Fwd.Lookup(r.Prefix.Value)
				key += string(rune(b*64 + p + 2))
				_ = ok
			}
			vecs[key] = true
		}
		return len(vecs)
	}
	if count(multi) <= count(single) {
		t.Fatalf("multihoming should diversify route vectors: %d !> %d", count(multi), count(single))
	}
}

func TestStanfordACLsActuallyFilter(t *testing.T) {
	ds := StanfordLike(Config{Seed: 3, RuleScale: 0.01})
	rng := rand.New(rand.NewSource(3))
	aclDrop := false
	for i := 0; i < 3000 && !aclDrop; i++ {
		f := ds.RandomFields(rng)
		// Find a packet that routes but is ACL-denied: simulate with and
		// without ACLs and compare.
		res := ds.Simulate(rng.Intn(len(ds.Boxes)), f)
		if len(res.Delivered) > 0 {
			continue
		}
		// Retry without ACLs.
		stripped := *ds
		stripped.Boxes = append([]BoxSpec(nil), ds.Boxes...)
		for b := range stripped.Boxes {
			stripped.Boxes[b].PortACL = map[int]*rule.ACL{}
			stripped.Boxes[b].InACL = nil
		}
		res2 := stripped.Simulate(0, f)
		if len(res2.Delivered) > 0 {
			aclDrop = true
		}
	}
	if !aclDrop {
		t.Fatal("no packet was dropped by an ACL — ACL generation too weak")
	}
}

func TestPacketFromFieldsRoundTrip(t *testing.T) {
	ds := StanfordLike(Config{Seed: 1, RuleScale: 0.002})
	f := rule.Fields{Src: 0x01020304, Dst: 0xAB421234, SrcPort: 1234, DstPort: 80, Proto: 6}
	p := ds.PacketFromFields(f)
	if ds.Layout.Get(p, "dstIP") != uint64(f.Dst) || ds.Layout.Get(p, "proto") != 6 {
		t.Fatal("field encoding broken")
	}
	ds2 := Internet2Like(Config{Seed: 1, RuleScale: 0.01})
	p2 := ds2.PacketFromFields(f)
	if len(p2) != 4 || ds2.Layout.Get(p2, "dstIP") != uint64(f.Dst) {
		t.Fatal("dst-only layout encoding broken")
	}
}

func TestHostAt(t *testing.T) {
	ds := Internet2Like(Config{Seed: 1, RuleScale: 0.01})
	h := ds.Hosts[0]
	if got := ds.HostAt(h.Box, h.Port); got != h.Name {
		t.Fatalf("HostAt = %q, want %q", got, h.Name)
	}
	if got := ds.HostAt(0, 0); got != "" && got != ds.Hosts[0].Name {
		// port 0 of box 0 is a link port in our topology
		t.Fatalf("HostAt on link port = %q", got)
	}
}
