package netgen

import "apclassifier/internal/rule"

// SimResult is the outcome of a reference simulation.
type SimResult struct {
	Delivered []string // host names reached
	DropBoxes []int    // boxes where a branch died
	Looped    bool
}

// peers precomputes the far end of every (box, port).
func (ds *Dataset) peers() map[[2]int]Host {
	m := map[[2]int]Host{}
	for _, l := range ds.Links {
		m[[2]int{l.A, l.PA}] = Host{Box: l.B, Port: l.PB, Name: ""}
		m[[2]int{l.B, l.PB}] = Host{Box: l.A, Port: l.PA, Name: ""}
	}
	for _, h := range ds.Hosts {
		m[[2]int{h.Box, h.Port}] = h
	}
	return m
}

// Simulate computes a packet's behavior directly from the rule tables,
// box by box: LPM lookup, first-match ACLs, link following. It is the
// slow, obviously-correct oracle the predicate/AP-Tree pipeline is tested
// against. Middleboxes are not part of datasets and are not simulated.
func (ds *Dataset) Simulate(ingress int, f rule.Fields) SimResult {
	peers := ds.peers()
	var res SimResult
	visited := make(map[int]bool)
	queue := []int{ingress}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if visited[b] {
			res.Looped = true
			continue
		}
		visited[b] = true
		box := &ds.Boxes[b]
		if box.InACL != nil && !box.InACL.Allows(f) {
			res.DropBoxes = append(res.DropBoxes, b)
			continue
		}
		port, ok := box.Fwd.Lookup(f.Dst)
		if !ok {
			res.DropBoxes = append(res.DropBoxes, b)
			continue
		}
		if acl := box.PortACL[port]; acl != nil && !acl.Allows(f) {
			res.DropBoxes = append(res.DropBoxes, b)
			continue
		}
		peer, ok := peers[[2]int{b, port}]
		if !ok {
			res.DropBoxes = append(res.DropBoxes, b) // dangling port
			continue
		}
		if peer.Name != "" {
			res.Delivered = append(res.Delivered, peer.Name)
			continue
		}
		queue = append(queue, peer.Box)
	}
	return res
}

// RandomFields draws a packet 5-tuple biased toward routed destinations:
// with probability 3/4 the destination is sampled from an installed
// prefix, so simulations exercise delivery paths, not just drops.
func (ds *Dataset) RandomFields(rng interface {
	Intn(int) int
	Uint32() uint32
}) rule.Fields {
	f := rule.Fields{
		Src:     rng.Uint32(),
		Dst:     rng.Uint32(),
		SrcPort: uint16(rng.Intn(65536)),
		DstPort: uint16(rng.Intn(65536)),
		Proto:   []uint8{6, 17, 1, 47}[rng.Intn(4)],
	}
	if rng.Intn(4) != 0 && len(ds.Boxes) > 0 {
		b := &ds.Boxes[rng.Intn(len(ds.Boxes))]
		if len(b.Fwd.Rules) > 0 {
			p := b.Fwd.Rules[rng.Intn(len(b.Fwd.Rules))].Prefix
			f.Dst = p.Value | rng.Uint32()&^prefixMask(p.Length)
		}
	}
	return f
}

func prefixMask(length int) uint32 {
	if length == 0 {
		return 0
	}
	return ^uint32(0) << uint(32-length)
}

// PacketFromFields encodes a 5-tuple into the dataset's layout (fields the
// layout lacks are dropped, matching what the network can filter on).
func (ds *Dataset) PacketFromFields(f rule.Fields) []byte {
	p := ds.Layout.NewPacket()
	set := func(name string, v uint64) {
		if _, ok := ds.Layout.FieldByName(name); ok {
			ds.Layout.Set(p, name, v)
		}
	}
	set("srcIP", uint64(f.Src))
	set("dstIP", uint64(f.Dst))
	set("srcPort", uint64(f.SrcPort))
	set("dstPort", uint64(f.DstPort))
	set("proto", uint64(f.Proto))
	return p
}
