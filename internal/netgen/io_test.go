package netgen

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"apclassifier/internal/rule"
)

func TestDatasetRoundTrip(t *testing.T) {
	for _, gen := range []func() *Dataset{
		func() *Dataset { return Internet2Like(Config{Seed: 7, RuleScale: 0.01}) },
		func() *Dataset { return StanfordLike(Config{Seed: 7, RuleScale: 0.003}) },
	} {
		orig := gen()
		var buf bytes.Buffer
		if err := orig.Write(&buf); err != nil {
			t.Fatal(err)
		}
		parsed, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if parsed.Name != orig.Name || parsed.Layout.Bits() != orig.Layout.Bits() {
			t.Fatalf("header mismatch: %q/%d vs %q/%d",
				parsed.Name, parsed.Layout.Bits(), orig.Name, orig.Layout.Bits())
		}
		if parsed.NumRules() != orig.NumRules() || parsed.NumACLRules() != orig.NumACLRules() {
			t.Fatalf("rule counts differ: %d/%d vs %d/%d",
				parsed.NumRules(), parsed.NumACLRules(), orig.NumRules(), orig.NumACLRules())
		}
		if len(parsed.Links) != len(orig.Links) || len(parsed.Hosts) != len(orig.Hosts) {
			t.Fatal("topology counts differ")
		}
		// Semantics: the parsed dataset must simulate identically.
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 300; i++ {
			f := orig.RandomFields(rng)
			ing := rng.Intn(len(orig.Boxes))
			a := orig.Simulate(ing, f)
			b := parsed.Simulate(ing, f)
			if len(a.Delivered) != len(b.Delivered) {
				t.Fatalf("probe %d: %v vs %v", i, a.Delivered, b.Delivered)
			}
			for j := range a.Delivered {
				if a.Delivered[j] != b.Delivered[j] {
					t.Fatalf("probe %d: delivery mismatch", i)
				}
			}
			if len(a.DropBoxes) != len(b.DropBoxes) {
				t.Fatalf("probe %d: drop mismatch", i)
			}
		}
	}
}

func TestReadMinimalDataset(t *testing.T) {
	const text = `
# toy two-box network
dataset toy ipv4dst
box a 2
box b 2
link a 1 b 1
host a 0 h1
host b 0 h2
rule a 10.0.0.0/8 0
rule a 192.168.0.0/16 1
rule b 192.168.0.0/16 0
rule a 10.9.0.0/16 drop
`
	ds, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Boxes) != 2 || ds.NumRules() != 4 {
		t.Fatalf("parsed %d boxes, %d rules", len(ds.Boxes), ds.NumRules())
	}
	res := ds.Simulate(0, rule.Fields{Dst: 0x0A010101})
	if len(res.Delivered) != 1 || res.Delivered[0] != "h1" {
		t.Fatalf("10.1.1.1 should reach h1: %+v", res)
	}
	res = ds.Simulate(0, rule.Fields{Dst: 0xC0A80101})
	if len(res.Delivered) != 1 || res.Delivered[0] != "h2" {
		t.Fatalf("192.168.1.1 should reach h2 via b: %+v", res)
	}
	res = ds.Simulate(0, rule.Fields{Dst: 0x0A090001})
	if len(res.Delivered) != 0 {
		t.Fatalf("10.9.0.1 must hit the drop rule: %+v", res)
	}
}

func TestReadACLBlock(t *testing.T) {
	const text = `
dataset toy fivetuple
box a 1
host a 0 h1
rule a 0.0.0.0/0 0
acl a 0 permit
deny src 0.0.0.0/0 dst 10.0.0.0/8 sport 0-65535 dport 80-80 proto 6
end
`
	ds, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumACLs() != 1 || ds.NumACLRules() != 1 {
		t.Fatalf("ACLs %d rules %d", ds.NumACLs(), ds.NumACLRules())
	}
	blocked := rule.Fields{Dst: 0x0A000001, DstPort: 80, Proto: 6}
	if res := ds.Simulate(0, blocked); len(res.Delivered) != 0 {
		t.Fatal("ACL must block TCP/80 to 10/8")
	}
	allowed := rule.Fields{Dst: 0x0A000001, DstPort: 443, Proto: 6}
	if res := ds.Simulate(0, allowed); len(res.Delivered) != 1 {
		t.Fatal("ACL must pass other ports")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive": "frobnicate x\n",
		"unknown layout":    "dataset x foo\n",
		"bad box count":     "box a nope\n",
		"unknown box":       "rule nosuch 10.0.0.0/8 0\n",
		"bad prefix":        "box a 1\nrule a 10.0.0.8 0\n",
		"port out of range": "box a 1\nrule a 10.0.0.0/8 5\n",
		"bad link box":      "box a 1\nlink a 0 b 0\n",
		"bad acl default":   "box a 1\nacl a 0 maybe\n",
		"unterminated acl":  "box a 1\nacl a 0 permit\n",
		"bad acl rule":      "box a 1\nacl a 0 permit\nnonsense\nend\n",
		"duplicate box":     "box a 1\nbox a 1\n",
	}
	for name, text := range cases {
		if _, err := Read(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("10.20.30.0/24")
	if err != nil || p != rule.P(0x0A141E00, 24) {
		t.Fatalf("got %v, %v", p, err)
	}
	if _, err := ParsePrefix("10.20.30.0"); err == nil {
		t.Fatal("missing length must fail")
	}
	if _, err := ParsePrefix("300.0.0.0/8"); err == nil {
		t.Fatal("bad octet must fail")
	}
	if _, err := ParsePrefix("10.0.0.0/40"); err == nil {
		t.Fatal("bad length must fail")
	}
	if p, err := ParsePrefix("0.0.0.0/0"); err != nil || p.Length != 0 {
		t.Fatal("default route must parse")
	}
}
