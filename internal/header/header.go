// Package header models the filtered packet header as a fixed-width bit
// vector with named fields.
//
// AP Classifier (like AP Verifier) only reasons about the header bits that
// some forwarding table or ACL in the network evaluates. A Layout declares
// those bits once; bit i of the layout is BDD variable i, most significant
// bit of each field first. Packets are plain byte slices in the same bit
// order so that a BDD can be evaluated against a packet without any
// unpacking (see bdd.EvalBits).
package header

import (
	"fmt"
	"math/rand"
	"strings"
)

// Field is a named contiguous bit range within the filtered header.
type Field struct {
	Name   string
	Offset int // first bit, equals the BDD variable of the field's MSB
	Width  int // in bits, at most 64
}

// Layout is an ordered set of non-overlapping fields covering the filtered
// header. The zero Layout is invalid; use NewLayout.
type Layout struct {
	fields []Field
	byName map[string]int
	bits   int
}

// NewLayout builds a layout from fields laid out back to back in the given
// order. Field offsets are assigned automatically.
func NewLayout(fields ...Field) *Layout {
	l := &Layout{byName: make(map[string]int, len(fields))}
	off := 0
	for _, f := range fields {
		if f.Width <= 0 || f.Width > 64 {
			panic(fmt.Sprintf("header: field %q has invalid width %d", f.Name, f.Width))
		}
		if _, dup := l.byName[f.Name]; dup {
			panic(fmt.Sprintf("header: duplicate field %q", f.Name))
		}
		f.Offset = off
		l.byName[f.Name] = len(l.fields)
		l.fields = append(l.fields, f)
		off += f.Width
	}
	l.bits = off
	return l
}

// IPv4Dst is the minimal layout used by pure-routing networks such as
// Internet2: forwarding decisions depend only on the 32-bit destination.
var IPv4Dst = NewLayout(Field{Name: "dstIP", Width: 32})

// FiveTuple is the 104-bit layout used by networks whose ACLs filter on the
// classic 5-tuple, such as the Stanford backbone.
var FiveTuple = NewLayout(
	Field{Name: "srcIP", Width: 32},
	Field{Name: "dstIP", Width: 32},
	Field{Name: "srcPort", Width: 16},
	Field{Name: "dstPort", Width: 16},
	Field{Name: "proto", Width: 8},
)

// Bits reports the total number of filtered header bits (= BDD variables).
func (l *Layout) Bits() int { return l.bits }

// Bytes reports the packet length in bytes (Bits rounded up).
func (l *Layout) Bytes() int { return (l.bits + 7) / 8 }

// NumFields reports the number of declared fields.
func (l *Layout) NumFields() int { return len(l.fields) }

// Field returns the field at index i.
func (l *Layout) Field(i int) Field { return l.fields[i] }

// FieldByName returns the named field. The second result is false if the
// layout has no such field.
func (l *Layout) FieldByName(name string) (Field, bool) {
	i, ok := l.byName[name]
	if !ok {
		return Field{}, false
	}
	return l.fields[i], true
}

// MustField returns the named field or panics; for static layouts.
func (l *Layout) MustField(name string) Field {
	f, ok := l.FieldByName(name)
	if !ok {
		panic(fmt.Sprintf("header: no field %q", name))
	}
	return f
}

// Packet is a filtered packet header in layout bit order.
type Packet []byte

// NewPacket returns an all-zero packet sized for the layout.
func (l *Layout) NewPacket() Packet { return make(Packet, l.Bytes()) }

// Set stores value into the named field of p.
func (l *Layout) Set(p Packet, name string, value uint64) {
	f := l.MustField(name)
	SetBits(p, f.Offset, f.Width, value)
}

// Get extracts the named field from p.
func (l *Layout) Get(p Packet, name string) uint64 {
	f := l.MustField(name)
	return GetBits(p, f.Offset, f.Width)
}

// Random returns a uniformly random packet for the layout.
func (l *Layout) Random(rng *rand.Rand) Packet {
	p := l.NewPacket()
	rng.Read(p)
	// Zero any padding bits beyond Bits so equality semantics are clean.
	if extra := len(p)*8 - l.bits; extra > 0 {
		p[len(p)-1] &= 0xFF << uint(extra)
	}
	return p
}

// String renders the packet field by field, e.g. "dstIP=0a000001".
func (l *Layout) String(p Packet) string {
	var b strings.Builder
	for i, f := range l.fields {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%0*x", f.Name, (f.Width+3)/4, GetBits(p, f.Offset, f.Width))
	}
	return b.String()
}

// Clone returns an independent copy of p.
func (p Packet) Clone() Packet {
	q := make(Packet, len(p))
	copy(q, p)
	return q
}

// Bit reports header bit i (MSB-first within bytes).
func (p Packet) Bit(i int) bool { return p[i/8]&(0x80>>uint(i%8)) != 0 }

// SetBits writes the low `width` bits of value into p at bit offset,
// MSB first.
func SetBits(p Packet, offset, width int, value uint64) {
	for i := 0; i < width; i++ {
		bit := offset + i
		mask := byte(0x80 >> uint(bit%8))
		if value&(1<<uint(width-1-i)) != 0 {
			p[bit/8] |= mask
		} else {
			p[bit/8] &^= mask
		}
	}
}

// GetBits reads `width` bits of p at bit offset, MSB first.
func GetBits(p Packet, offset, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		bit := offset + i
		v <<= 1
		if p[bit/8]&(0x80>>uint(bit%8)) != 0 {
			v |= 1
		}
	}
	return v
}

// FormatIPv4 renders a 32-bit value in dotted-quad form, for diagnostics.
func FormatIPv4(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
