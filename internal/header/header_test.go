package header

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLayoutOffsets(t *testing.T) {
	if IPv4Dst.Bits() != 32 || IPv4Dst.Bytes() != 4 {
		t.Fatalf("IPv4Dst: bits=%d bytes=%d", IPv4Dst.Bits(), IPv4Dst.Bytes())
	}
	if FiveTuple.Bits() != 104 || FiveTuple.Bytes() != 13 {
		t.Fatalf("FiveTuple: bits=%d bytes=%d", FiveTuple.Bits(), FiveTuple.Bytes())
	}
	wantOffsets := map[string]int{"srcIP": 0, "dstIP": 32, "srcPort": 64, "dstPort": 80, "proto": 96}
	for name, off := range wantOffsets {
		f := FiveTuple.MustField(name)
		if f.Offset != off {
			t.Errorf("%s offset = %d, want %d", name, f.Offset, off)
		}
	}
}

func TestFieldByNameMissing(t *testing.T) {
	if _, ok := IPv4Dst.FieldByName("srcIP"); ok {
		t.Fatal("IPv4Dst must not have srcIP")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustField on a missing field must panic")
		}
	}()
	IPv4Dst.MustField("nope")
}

func TestSetGetRoundTrip(t *testing.T) {
	p := FiveTuple.NewPacket()
	FiveTuple.Set(p, "srcIP", 0x0A0B0C0D)
	FiveTuple.Set(p, "dstIP", 0xC0A80101)
	FiveTuple.Set(p, "srcPort", 54321)
	FiveTuple.Set(p, "dstPort", 443)
	FiveTuple.Set(p, "proto", 6)
	if got := FiveTuple.Get(p, "srcIP"); got != 0x0A0B0C0D {
		t.Errorf("srcIP = %x", got)
	}
	if got := FiveTuple.Get(p, "dstIP"); got != 0xC0A80101 {
		t.Errorf("dstIP = %x", got)
	}
	if got := FiveTuple.Get(p, "srcPort"); got != 54321 {
		t.Errorf("srcPort = %d", got)
	}
	if got := FiveTuple.Get(p, "dstPort"); got != 443 {
		t.Errorf("dstPort = %d", got)
	}
	if got := FiveTuple.Get(p, "proto"); got != 6 {
		t.Errorf("proto = %d", got)
	}
}

func TestSetGetQuick(t *testing.T) {
	err := quick.Check(func(src, dst uint32, sp, dp uint16, proto uint8) bool {
		p := FiveTuple.NewPacket()
		FiveTuple.Set(p, "srcIP", uint64(src))
		FiveTuple.Set(p, "dstIP", uint64(dst))
		FiveTuple.Set(p, "srcPort", uint64(sp))
		FiveTuple.Set(p, "dstPort", uint64(dp))
		FiveTuple.Set(p, "proto", uint64(proto))
		return FiveTuple.Get(p, "srcIP") == uint64(src) &&
			FiveTuple.Get(p, "dstIP") == uint64(dst) &&
			FiveTuple.Get(p, "srcPort") == uint64(sp) &&
			FiveTuple.Get(p, "dstPort") == uint64(dp) &&
			FiveTuple.Get(p, "proto") == uint64(proto)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetDoesNotClobberNeighbors(t *testing.T) {
	p := FiveTuple.NewPacket()
	for i := range p {
		p[i] = 0xFF
	}
	FiveTuple.Set(p, "dstIP", 0)
	if FiveTuple.Get(p, "srcIP") != 0xFFFFFFFF {
		t.Error("srcIP clobbered")
	}
	if FiveTuple.Get(p, "srcPort") != 0xFFFF {
		t.Error("srcPort clobbered")
	}
	if FiveTuple.Get(p, "dstIP") != 0 {
		t.Error("dstIP not cleared")
	}
}

func TestBitConvention(t *testing.T) {
	// Bit 0 is the MSB of byte 0 — the convention the BDD engine relies on.
	p := IPv4Dst.NewPacket()
	IPv4Dst.Set(p, "dstIP", 0x80000000)
	if !p.Bit(0) {
		t.Fatal("MSB of dstIP must be header bit 0")
	}
	for i := 1; i < 32; i++ {
		if p.Bit(i) {
			t.Fatalf("bit %d should be clear", i)
		}
	}
}

func TestRandomZeroesPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		p := FiveTuple.Random(rng) // 104 bits = 13 bytes, no padding
		if len(p) != 13 {
			t.Fatalf("packet length %d", len(p))
		}
	}
	odd := NewLayout(Field{Name: "f", Width: 5})
	for i := 0; i < 50; i++ {
		p := odd.Random(rng)
		if p[0]&0x07 != 0 {
			t.Fatalf("padding bits not zeroed: %08b", p[0])
		}
	}
}

func TestClone(t *testing.T) {
	p := IPv4Dst.NewPacket()
	IPv4Dst.Set(p, "dstIP", 42)
	q := p.Clone()
	IPv4Dst.Set(q, "dstIP", 43)
	if IPv4Dst.Get(p, "dstIP") != 42 {
		t.Fatal("Clone must not alias")
	}
}

func TestString(t *testing.T) {
	p := IPv4Dst.NewPacket()
	IPv4Dst.Set(p, "dstIP", 0x0A000001)
	if got := IPv4Dst.String(p); got != "dstIP=0a000001" {
		t.Fatalf("String = %q", got)
	}
	if got := FormatIPv4(0x0A000001); got != "10.0.0.1" {
		t.Fatalf("FormatIPv4 = %q", got)
	}
}

func TestNewLayoutPanics(t *testing.T) {
	for _, c := range []struct {
		name   string
		fields []Field
	}{
		{"zero width", []Field{{Name: "a", Width: 0}}},
		{"too wide", []Field{{Name: "a", Width: 65}}},
		{"duplicate", []Field{{Name: "a", Width: 8}, {Name: "a", Width: 8}}},
	} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			NewLayout(c.fields...)
		})
	}
}
