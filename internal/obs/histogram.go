package obs

import (
	"fmt"
	"math"
	"sync/atomic"
)

// DefBuckets are latency bucket upper bounds in seconds, log-spaced from
// 100 ns to 2.5 s. The range brackets everything the classifier times:
// a stage-1 search is tens of nanoseconds to microseconds, a stage-2
// walk microseconds, an update milliseconds, and a full-scale
// reconstruction can reach seconds.
var DefBuckets = []float64{
	1e-7, 2.5e-7, 5e-7,
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5,
}

// Histogram is a fixed-bucket histogram with lock-free, zero-allocation
// recording: Record performs a bounds search plus three atomic updates
// (bucket, count, sum) and never allocates. Bucket counts are exact
// under any concurrency; the sum is a CAS-loop float add, also exact
// (every addition lands once) though additions may be ordered
// arbitrarily.
type Histogram struct {
	help string
	// bounds are upper bounds of the finite buckets, strictly
	// increasing. buckets has len(bounds)+1 entries; the last is +Inf.
	bounds  []float64
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits
}

func newHistogram(help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v <= %v",
				i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		help:    help,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// bucketIndex returns the index of the first bucket whose upper bound is
// >= v (the +Inf bucket for values above every bound). Binary search,
// allocation-free.
func (h *Histogram) bucketIndex(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Record adds one observation.
func (h *Histogram) Record(v float64) {
	h.buckets[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot reads the bucket counts once. Concurrent Records may land
// between bucket loads, so the snapshot is only approximately a point in
// time; each individual count is exact.
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the bucket containing it, the standard
// histogram_quantile estimate. The lower edge of the first bucket is
// taken as 0 and values in the +Inf bucket report the largest finite
// bound. Returns NaN for an empty histogram. The estimate is monotone
// in q for a fixed set of observations.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		cum += c
		if float64(cum) >= rank {
			if i == len(counts)-1 {
				// +Inf bucket: the best available point estimate is the
				// largest finite bound.
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			if c == 0 {
				return upper
			}
			inBucket := rank - float64(cum-c)
			return lower + (upper-lower)*(inBucket/float64(c))
		}
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) metricHelp() string { return h.help }

func (h *Histogram) sampleLines(name string, add func(string)) {
	counts := h.snapshot()
	var cum uint64
	for i, b := range h.bounds {
		cum += counts[i]
		add(name + `_bucket{le="` + formatFloat(b) + `"} ` + formatUint(cum))
	}
	cum += counts[len(counts)-1]
	add(name + `_bucket{le="+Inf"} ` + formatUint(cum))
	add(name + "_sum " + formatFloat(h.Sum()))
	add(name + "_count " + formatUint(h.Count()))
}
