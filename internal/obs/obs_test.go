package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("apc_test_total", "test counter")
	if got := c.Value(); got != 0 {
		t.Fatalf("fresh counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("apc_test_total", "ignored"); again != c {
		t.Fatalf("re-registration returned a different counter")
	}
}

func TestCounterStripedConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("apc_conc_total", "concurrent counter")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("lost increments: got %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("apc_test_gauge", "test gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("apc_drops_total", "drops by reason", "reason")
	v.With("loop").Add(3)
	v.With("acl").Inc()
	if v.With("loop") != v.With("loop") {
		t.Fatalf("With not stable for same label value")
	}
	if got := v.With("loop").Value(); got != 3 {
		t.Fatalf("loop child = %d, want 3", got)
	}
	if got := v.With("acl").Value(); got != 1 {
		t.Fatalf("acl child = %d, want 1", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"counter-as-gauge", func(r *Registry) {
			r.Counter("apc_x", "h")
			r.Gauge("apc_x", "h")
		}},
		{"gauge-as-histogram", func(r *Registry) {
			r.Gauge("apc_x", "h")
			r.Histogram("apc_x", "h", DefBuckets)
		}},
		{"histogram-as-counter", func(r *Registry) {
			r.Histogram("apc_x", "h", DefBuckets)
			r.Counter("apc_x", "h")
		}},
		{"counter-as-vec", func(r *Registry) {
			r.Counter("apc_x", "h")
			r.CounterVec("apc_x", "h", "l")
		}},
		{"func-as-counter", func(r *Registry) {
			r.CounterFunc("apc_x", "h", func() uint64 { return 0 })
			r.Counter("apc_x", "h")
		}},
		{"counter-as-counterfunc", func(r *Registry) {
			r.Counter("apc_x", "h")
			r.CounterFunc("apc_x", "h", func() uint64 { return 0 })
		}},
		{"counter-as-gaugefunc", func(r *Registry) {
			r.Counter("apc_x", "h")
			r.GaugeFunc("apc_x", "h", func() float64 { return 0 })
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic on kind mismatch")
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestFuncMetricsRebind(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("apc_derived_total", "derived", func() uint64 { return 1 })
	r.GaugeFunc("apc_derived_gauge", "derived", func() float64 { return 1.5 })
	r.CounterFunc("apc_derived_total", "derived", func() uint64 { return 99 })
	r.GaugeFunc("apc_derived_gauge", "derived", func() float64 { return -2.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "apc_derived_total 99\n") {
		t.Errorf("counter func not rebound; output:\n%s", out)
	}
	if !strings.Contains(out, "apc_derived_gauge -2.5\n") {
		t.Errorf("gauge func not rebound; output:\n%s", out)
	}
}

func TestNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("apc_zz", "z")
	r.Counter("apc_aa", "a")
	r.Counter("apc_mm", "m")
	got := r.names()
	want := []string{"apc_aa", "apc_mm", "apc_zz"}
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestHistogramKeepsFirstBounds(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("apc_lat", "latency", []float64{1, 2, 3})
	h2 := r.Histogram("apc_lat", "latency", []float64{10, 20})
	if h1 != h2 {
		t.Fatalf("re-registration returned a different histogram")
	}
	if len(h1.bounds) != 3 {
		t.Fatalf("bounds overwritten: %v", h1.bounds)
	}
}

func TestBadHistogramBoundsPanic(t *testing.T) {
	for _, bounds := range [][]float64{{}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v: expected panic", bounds)
				}
			}()
			newHistogram("h", bounds)
		}()
	}
}
