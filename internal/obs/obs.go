// Package obs is the observability substrate of the classifier: a
// stdlib-only metrics registry (counters, gauges, fixed-bucket latency
// histograms) with Prometheus text exposition, plus a lightweight
// per-query trace ring.
//
// The package exists because the paper's headline claims are
// quantitative — microsecond query latency, AP Tree depth, update cost
// under churn — and a production deployment has to observe them at
// runtime, not only in offline apbench runs. Design constraints follow
// from the lock-free query path (see DESIGN.md §3 and §7):
//
//   - Counters are striped: each goroutine increments its own stripe on
//     a private cache line, so hot-path increments never bounce a line
//     between cores the way a single shared atomic would. Reads sum the
//     stripes.
//   - Histogram recording is zero-allocation: a bucket index search over
//     a fixed bounds slice and three atomic operations.
//   - Nothing in this package takes a lock on a record path. The only
//     mutexes guard registration (cold) and the trace ring (opt-in).
//
// The Default registry is process-wide; instrumented layers (bdd,
// aptree, network) register their counters at init. Per-classifier
// gauges are registered explicitly via apclassifier.RegisterMetrics so
// that processes with several classifiers (the experiment harness)
// choose which instance /metrics describes.
package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Registry holds named metrics and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu sync.Mutex
	//lint:guard mu
	families map[string]metric
}

// metric is anything the registry can expose. Implementations must be
// safe for concurrent sampling.
type metric interface {
	metricType() string // "counter", "gauge" or "histogram"
	metricHelp() string
	// sampleLines appends exposition lines (without trailing newline
	// handling; each line complete) for this family.
	sampleLines(name string, add func(line string))
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]metric)}
}

// Default is the process-wide registry that instrumented layers register
// into and /metrics exposes.
var Default = NewRegistry()

// register installs m under name, or returns the already-registered
// metric. Re-registration with a different kind panics: two packages
// claiming one name as different types is a programming error.
func (r *Registry) register(name string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.families[name]; ok {
		return existing
	}
	m := mk()
	r.families[name] = m
	return m
}

// Counter returns the registered counter, creating it on first use.
// Panics if name is registered as a different metric kind.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, func() metric { return newCounter(help) })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %s already registered as %s", name, m.metricType()))
	}
	return c
}

// Gauge returns the registered gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, func() metric { return &Gauge{help: help} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %s already registered as %s", name, m.metricType()))
	}
	return g
}

// Histogram returns the registered histogram, creating it with the given
// bucket upper bounds (strictly increasing; an implicit +Inf bucket is
// appended) on first use. Bounds of an existing histogram are kept.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, func() metric { return newHistogram(help, bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %s already registered as %s", name, m.metricType()))
	}
	return h
}

// CounterVec returns the registered labeled counter family, creating it
// on first use. All children share one label name.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	m := r.register(name, func() metric {
		return &CounterVec{help: help, label: label, children: make(map[string]*Counter)}
	})
	v, ok := m.(*CounterVec)
	if !ok {
		panic(fmt.Sprintf("obs: %s already registered as %s", name, m.metricType()))
	}
	return v
}

// CounterFunc registers (or rebinds) a counter whose value is computed
// at scrape time. Rebinding replaces the previous function: callers that
// construct a new classifier re-register its derived counters and the
// newest instance wins, which is what tests and reloading servers want.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.families[name]; ok {
		cf, ok := existing.(*counterFunc)
		if !ok {
			panic(fmt.Sprintf("obs: %s already registered as %s", name, existing.metricType()))
		}
		cf.rebind(fn)
		return
	}
	r.families[name] = &counterFunc{help: help, fn: fn}
}

// GaugeFunc registers (or rebinds) a gauge computed at scrape time; see
// CounterFunc for the rebinding rule.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.families[name]; ok {
		gf, ok := existing.(*gaugeFunc)
		if !ok {
			panic(fmt.Sprintf("obs: %s already registered as %s", name, existing.metricType()))
		}
		gf.rebind(fn)
		return
	}
	r.families[name] = &gaugeFunc{help: help, fn: fn}
}

// names returns the registered family names, sorted.
func (r *Registry) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for name := range r.families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// lookup returns the metric registered under name, or nil.
func (r *Registry) lookup(name string) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.families[name]
}
