package obs

import (
	"bytes"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), families sorted by name, and writes
// the result to w in a single Write call. It returns any write error.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var buf bytes.Buffer
	for _, name := range r.names() {
		m := r.lookup(name)
		if m == nil { // unregistered concurrently; nothing to render
			continue
		}
		buf.WriteString("# HELP ")
		buf.WriteString(name)
		buf.WriteByte(' ')
		buf.WriteString(escapeHelp(m.metricHelp()))
		buf.WriteByte('\n')
		buf.WriteString("# TYPE ")
		buf.WriteString(name)
		buf.WriteByte(' ')
		buf.WriteString(m.metricType())
		buf.WriteByte('\n')
		m.sampleLines(name, func(line string) {
			buf.WriteString(line)
			buf.WriteByte('\n')
		})
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// escapeHelp escapes backslash and newline in HELP text as the
// exposition format requires.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// quoteLabel renders a label value as a double-quoted exposition string,
// escaping backslash, double quote, and newline.
func quoteLabel(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
