package obs

import (
	"sync"
	"time"
)

// QueryTrace records the per-stage breakdown of one end-to-end query:
// how long pinning the snapshot took, the stage-1 AP Tree descent
// (latency, depth reached, nodes visited), and the stage-2 behavior walk
// (latency, hops, outcome counts). Traces are collected only when a
// TraceRing has been installed (apclassifier.SetTraceSink); the query
// path checks a single atomic pointer and skips all of this when no
// sink is set.
type QueryTrace struct {
	Seq      uint64    `json:"seq"`
	Start    time.Time `json:"start"`
	Ingress  int       `json:"ingress"`
	Atom     int       `json:"atom"`
	Depth    int       `json:"depth"`
	Visits   int       `json:"visits"`
	Version  uint64    `json:"version"`
	PinNs    int64     `json:"pin_ns"`
	ClassNs  int64     `json:"classify_ns"`
	WalkNs   int64     `json:"walk_ns"`
	Hops     int       `json:"hops"`
	Delivers int       `json:"deliveries"`
	Drops    int       `json:"drops"`
	Rewrites int       `json:"rewrites"`
}

// TraceRing is a fixed-capacity ring of the most recent query traces.
// It is mutex-guarded: tracing is opt-in diagnostics, not the hot path,
// and a mutex keeps Last trivially consistent.
type TraceRing struct {
	mu sync.Mutex
	//lint:guard mu
	buf []QueryTrace
	//lint:guard mu
	next int
	//lint:guard mu
	seq uint64
	//lint:guard mu
	filled bool
}

// NewTraceRing returns a ring holding the last n traces (n >= 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]QueryTrace, n)}
}

// Record stores t, assigning it the next sequence number, evicting the
// oldest entry when full. It returns the assigned sequence number.
func (r *TraceRing) Record(t QueryTrace) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	t.Seq = r.seq
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.filled = true
	}
	return t.Seq
}

// Len returns how many traces the ring currently holds.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lenLocked()
}

func (r *TraceRing) lenLocked() int {
	if r.filled {
		return len(r.buf)
	}
	return r.next
}

// Last returns up to n traces, newest first.
func (r *TraceRing) Last(n int) []QueryTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	have := r.lenLocked()
	if n > have {
		n = have
	}
	if n <= 0 {
		return nil
	}
	out := make([]QueryTrace, 0, n)
	for i := 1; i <= n; i++ {
		idx := r.next - i
		if idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}
