package obs

import (
	"bytes"
	"errors"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden renders a registry with one metric of every
// kind and deterministic values, then compares byte-for-byte against the
// golden exposition file. Run with -update to regenerate.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("apc_demo_requests_total", "Total demo requests.")
	c.Add(42)

	g := r.Gauge("apc_demo_nodes", "Live demo nodes.")
	g.Set(-7)

	h := r.Histogram("apc_demo_latency_seconds", "Demo latency.", []float64{0.001, 0.01, 0.1})
	h.Record(0.0005)
	h.Record(0.0005)
	h.Record(0.05)
	h.Record(5)

	v := r.CounterVec("apc_demo_drops_total", "Demo drops by reason.", "reason")
	v.With("loop").Add(3)
	v.With("acl").Inc()
	v.With(`odd"label\n`).Inc()

	r.CounterFunc("apc_demo_derived_total", "Scrape-time derived counter.", func() uint64 { return 1234 })
	r.GaugeFunc("apc_demo_ratio", "Scrape-time derived gauge.", func() float64 { return 0.625 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{1.5, "1.5"},
		{-2.5, "-2.5"},
		{2.5e-07, "2.5e-07"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{math.NaN(), "NaN"},
	}
	for _, tc := range cases {
		if got := formatFloat(tc.in); got != tc.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestQuoteLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", `"plain"`},
		{`back\slash`, `"back\\slash"`},
		{`qu"ote`, `"qu\"ote"`},
		{"new\nline", `"new\nline"`},
	}
	for _, tc := range cases {
		if got := quoteLabel(tc.in); got != tc.want {
			t.Errorf("quoteLabel(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestEscapeHelp(t *testing.T) {
	if got := escapeHelp("plain help"); got != "plain help" {
		t.Errorf("escapeHelp(plain) = %q", got)
	}
	if got := escapeHelp("two\nlines\\x"); got != `two\nlines\\x` {
		t.Errorf("escapeHelp = %q", got)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink closed") }

func TestWritePrometheusError(t *testing.T) {
	r := NewRegistry()
	r.Counter("apc_x_total", "x").Inc()
	if err := r.WritePrometheus(failWriter{}); err == nil {
		t.Fatal("expected write error to propagate")
	}
}
