package obs

import (
	"sync"
	"testing"
)

func TestTraceRingBasics(t *testing.T) {
	r := NewTraceRing(4)
	if r.Len() != 0 {
		t.Fatalf("fresh ring Len = %d", r.Len())
	}
	if got := r.Last(10); got != nil {
		t.Fatalf("Last on empty ring = %v, want nil", got)
	}
	for i := 1; i <= 3; i++ {
		seq := r.Record(QueryTrace{Atom: i})
		if seq != uint64(i) {
			t.Fatalf("Record #%d assigned seq %d", i, seq)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	last := r.Last(2)
	if len(last) != 2 || last[0].Atom != 3 || last[1].Atom != 2 {
		t.Fatalf("Last(2) = %+v, want newest first (atoms 3,2)", last)
	}
}

func TestTraceRingWrapAround(t *testing.T) {
	r := NewTraceRing(4)
	for i := 1; i <= 10; i++ {
		r.Record(QueryTrace{Atom: i})
	}
	if r.Len() != 4 {
		t.Fatalf("Len after wrap = %d, want 4", r.Len())
	}
	got := r.Last(100)
	if len(got) != 4 {
		t.Fatalf("Last(100) returned %d entries", len(got))
	}
	for i, want := range []int{10, 9, 8, 7} {
		if got[i].Atom != want {
			t.Fatalf("Last[%d].Atom = %d, want %d", i, got[i].Atom, want)
		}
		if got[i].Seq != uint64(want) {
			t.Fatalf("Last[%d].Seq = %d, want %d", i, got[i].Seq, want)
		}
	}
	if got := r.Last(0); got != nil {
		t.Fatalf("Last(0) = %v, want nil", got)
	}
}

func TestTraceRingMinCapacity(t *testing.T) {
	r := NewTraceRing(0)
	r.Record(QueryTrace{Atom: 1})
	r.Record(QueryTrace{Atom: 2})
	got := r.Last(5)
	if len(got) != 1 || got[0].Atom != 2 {
		t.Fatalf("capacity-clamped ring Last = %+v", got)
	}
}

// TestTraceRingConcurrent exercises the ring under the race detector.
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(QueryTrace{Atom: i})
				if i%16 == 0 {
					r.Last(8)
				}
			}
		}()
	}
	wg.Wait()
	if r.Len() != 16 {
		t.Fatalf("Len = %d, want 16", r.Len())
	}
	last := r.Last(16)
	for i := 1; i < len(last); i++ {
		if last[i-1].Seq <= last[i].Seq {
			t.Fatalf("Last not newest-first by seq: %d then %d", last[i-1].Seq, last[i].Seq)
		}
	}
}
