package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// refBucket is the reference bucket rule: first bucket whose upper bound
// is >= v, or the +Inf bucket.
func refBucket(bounds []float64, v float64) int {
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}

// TestHistogramBucketPlacement is the satellite property test: every
// recorded sample lands in exactly the bucket the reference rule picks,
// including samples exactly on a bucket boundary.
func TestHistogramBucketPlacement(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1, 1, 10}
	rng := rand.New(rand.NewSource(3))

	samples := make([]float64, 0, 500+2*len(bounds))
	for i := 0; i < 500; i++ {
		// Log-uniform over ~[1e-4, 1e2) so every bucket sees traffic.
		samples = append(samples, math.Pow(10, -4+6*rng.Float64()))
	}
	// Boundary values: exactly on each bound, and just above.
	for _, b := range bounds {
		samples = append(samples, b, math.Nextafter(b, math.Inf(1)))
	}

	h := newHistogram("h", bounds)
	want := make([]uint64, len(bounds)+1)
	var wantSum float64
	for _, v := range samples {
		h.Record(v)
		want[refBucket(bounds, v)]++
		wantSum += v
	}

	got := h.snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d: got %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != uint64(len(samples)) {
		t.Errorf("count = %d, want %d", h.Count(), len(samples))
	}
	if math.Abs(h.Sum()-wantSum) > 1e-9*wantSum {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

// TestHistogramQuantileMonotone checks the second property: for a fixed
// set of observations, Quantile is non-decreasing in q.
func TestHistogramQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := newHistogram("h", DefBuckets)
	for i := 0; i < 2000; i++ {
		h.Record(math.Pow(10, -8+10*rng.Float64()))
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0+1e-12; q += 0.01 {
		v := h.Quantile(q)
		if math.IsNaN(v) {
			t.Fatalf("Quantile(%v) = NaN on non-empty histogram", q)
		}
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%v gave %v after %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram("h", []float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Errorf("empty histogram quantile should be NaN")
	}
	// 10 samples in (1,2]: the median interpolates inside that bucket.
	for i := 0; i < 10; i++ {
		h.Record(1.5)
	}
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Errorf("median = %v, want within (1,2]", q)
	}
	// Out-of-range q clamps rather than extrapolating.
	if q := h.Quantile(-1); q < 0 {
		t.Errorf("Quantile(-1) = %v, want clamped", q)
	}
	if q0, q1 := h.Quantile(0), h.Quantile(1); q0 > q1 {
		t.Errorf("clamped quantiles out of order: %v > %v", q0, q1)
	}
	// Everything above the last bound lands in +Inf and reports the
	// largest finite bound.
	h2 := newHistogram("h2", []float64{1, 2, 4})
	h2.Record(100)
	if q := h2.Quantile(0.99); q != 4 {
		t.Errorf("+Inf bucket quantile = %v, want 4", q)
	}
}

// mutexHist is the mutex-guarded reference implementation the concurrent
// property test compares against.
type mutexHist struct {
	mu sync.Mutex
	//lint:guard mu
	buckets []uint64
	//lint:guard mu
	count uint64
	//lint:guard mu
	sum float64
}

func (m *mutexHist) record(bounds []float64, v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.buckets[refBucket(bounds, v)]++
	m.count++
	m.sum += v
}

// TestHistogramConcurrentRecordLosesNothing runs concurrent Record calls
// (exercised under -race in CI) and asserts the lock-free histogram
// agrees exactly with a mutex-guarded reference fed the same samples:
// no lost bucket increments, no lost count, and the CAS-loop sum matches
// up to floating-point reassociation.
func TestHistogramConcurrentRecordLosesNothing(t *testing.T) {
	bounds := []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2}
	h := newHistogram("h", bounds)
	ref := &mutexHist{buckets: make([]uint64, len(bounds)+1)}

	const workers = 8
	const per = 5000
	// Pre-generate each worker's samples so both implementations see the
	// identical multiset.
	samples := make([][]float64, workers)
	for w := range samples {
		rng := rand.New(rand.NewSource(int64(100 + w)))
		samples[w] = make([]float64, per)
		for i := range samples[w] {
			samples[w][i] = math.Pow(10, -7+6*rng.Float64())
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(vals []float64) {
			defer wg.Done()
			for _, v := range vals {
				h.Record(v)
				ref.record(bounds, v)
			}
		}(samples[w])
	}
	wg.Wait()

	ref.mu.Lock()
	defer ref.mu.Unlock()
	if h.Count() != ref.count {
		t.Errorf("count = %d, want %d", h.Count(), ref.count)
	}
	got := h.snapshot()
	for i := range ref.buckets {
		if got[i] != ref.buckets[i] {
			t.Errorf("bucket %d: got %d, want %d", i, got[i], ref.buckets[i])
		}
	}
	if d := math.Abs(h.Sum() - ref.sum); d > 1e-6*ref.sum {
		t.Errorf("sum = %v, reference %v (diff %v)", h.Sum(), ref.sum, d)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := newHistogram("h", DefBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 3.7e-5
		for pb.Next() {
			h.Record(v)
		}
	})
}

func BenchmarkCounterInc(b *testing.B) {
	c := newCounter("c")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
