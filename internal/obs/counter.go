package obs

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// numStripes is the number of independent counter stripes, a power of two
// sized to the machine, mirroring aptree's visit-counter striping.
var numStripes = func() int {
	s := 1
	for s < runtime.NumCPU() && s < 64 {
		s <<= 1
	}
	return s
}()

// stripe is one cache-line-sized counter cell. The padding keeps
// neighboring stripes on distinct 64-byte lines so concurrent increments
// by different goroutines never share a line.
type stripe struct {
	v atomic.Uint64
	_ [56]byte
}

// stripeHint derives a stripe index from the address of a stack variable.
// Goroutine stacks are distinct allocations, so concurrent writers land
// on different stripes with high probability; the hint only affects
// contention, never correctness. Like aptree's visit counters (the other
// unsafe use in the module), it never converts back from uintptr.
func stripeHint() int {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return int((p>>9 ^ p>>17) & uintptr(numStripes-1))
}

// Counter is a monotonically increasing striped counter. Increments hit
// one stripe (one atomic add on a goroutine-local cache line); Value sums
// the stripes. The total is exact: stripes only shard where increments
// land, never drop them.
type Counter struct {
	help    string
	stripes []stripe
}

func newCounter(help string) *Counter {
	return &Counter{help: help, stripes: make([]stripe, numStripes)}
}

// Inc adds one.
func (c *Counter) Inc() { c.stripes[stripeHint()].v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.stripes[stripeHint()].v.Add(n) }

// Value returns the sum over all stripes.
func (c *Counter) Value() uint64 {
	var sum uint64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}

func (c *Counter) metricType() string { return "counter" }
func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) sampleLines(name string, add func(string)) {
	add(name + " " + formatUint(c.Value()))
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	help string
	v    atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) sampleLines(name string, add func(string)) {
	add(name + " " + formatInt(g.Value()))
}

// CounterVec is a family of counters distinguished by one label.
// Children are created on first With and live forever; resolve them once
// at init on hot paths.
type CounterVec struct {
	help  string
	label string

	mu sync.Mutex
	//lint:guard mu
	children map[string]*Counter
}

// With returns the child counter for the label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = newCounter(v.help)
		v.children[value] = c
	}
	return c
}

func (v *CounterVec) metricType() string { return "counter" }
func (v *CounterVec) metricHelp() string { return v.help }
func (v *CounterVec) sampleLines(name string, add func(string)) {
	v.mu.Lock()
	values := make([]string, 0, len(v.children))
	for val := range v.children {
		values = append(values, val)
	}
	kids := make([]*Counter, 0, len(values))
	sort.Strings(values)
	for _, val := range values {
		kids = append(kids, v.children[val])
	}
	v.mu.Unlock()
	for i, val := range values {
		add(name + "{" + v.label + "=" + quoteLabel(val) + "} " + formatUint(kids[i].Value()))
	}
}

// counterFunc exposes a scrape-time computed counter (e.g. a total
// derived from the classifier's striped visit counters).
type counterFunc struct {
	help string
	mu   sync.Mutex
	//lint:guard mu
	fn func() uint64
}

func (c *counterFunc) rebind(fn func() uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fn = fn
}

func (c *counterFunc) value() uint64 {
	c.mu.Lock()
	fn := c.fn
	c.mu.Unlock()
	return fn()
}

func (c *counterFunc) metricType() string { return "counter" }
func (c *counterFunc) metricHelp() string { return c.help }
func (c *counterFunc) sampleLines(name string, add func(string)) {
	add(name + " " + formatUint(c.value()))
}

// gaugeFunc exposes a scrape-time computed gauge.
type gaugeFunc struct {
	help string
	mu   sync.Mutex
	//lint:guard mu
	fn func() float64
}

func (g *gaugeFunc) rebind(fn func() float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.fn = fn
}

func (g *gaugeFunc) value() float64 {
	g.mu.Lock()
	fn := g.fn
	g.mu.Unlock()
	return fn()
}

func (g *gaugeFunc) metricType() string { return "gauge" }
func (g *gaugeFunc) metricHelp() string { return g.help }
func (g *gaugeFunc) sampleLines(name string, add func(string)) {
	add(name + " " + formatFloat(g.value()))
}
