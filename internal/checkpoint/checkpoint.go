// Package checkpoint gives the classifier durable state: a versioned,
// CRC-guarded binary snapshot of an entire published epoch — BDD node
// store, predicate roots, liveness, the AP Tree with its leaf labels,
// the dataset, and the topology wiring — written atomically and restored
// without touching raw rules.
//
// The paper's asymmetry motivates it (§V): queries are microseconds but
// OAPT construction is seconds-to-minutes, so a control-plane restart
// that recomputes predicates, atoms and the tree from rules leaves the
// service blind exactly when the network most needs answers. A restore
// is a sequential file read plus one hash-consing pass over the saved
// node store — no predicate conversion, no atom computation, no tree
// construction.
//
// File layout (all integers little-endian):
//
//	magic "APCKPT" | format version uint16
//	sections, each: name [4]byte | payloadLen uint32 | payload | crc32(name‖payload)
//
// in fixed order: META (epoch, method, variable and predicate counts,
// atom bound, rule-delta sequence cursor), DSET (the dataset in netgen
// text form), PRED (liveness
// bitset), BDDS (one bdd.Save stream whose roots are every predicate
// slot followed by every leaf atom), TREE (the node structure as an
// indexed record array), TOPO (per-box predicate wiring), END (empty
// terminator). Every section is independently CRC-checked; a flipped
// bit anywhere is detected before any state is built, and the decoder
// additionally re-validates all structural invariants (via bdd.Load and
// aptree.RestoreTree), so a checkpoint that passes Decode yields a
// classifier as well-formed as a freshly built one.
//
// Writes are crash-safe: Dir.Save writes to a temp file, fsyncs, renames
// into place, fsyncs the directory, and only then commits the file to
// the manifest (itself updated with the same protocol). A crash at any
// point leaves the previous manifest and checkpoints intact; Dir.Restore
// walks the manifest newest-first and falls back past corrupt entries.
package checkpoint

import (
	"errors"

	"apclassifier/internal/aptree"
	"apclassifier/internal/netgen"
)

// Typed decode errors; callers match with errors.Is. Payload-level
// failures from bdd.Load (bdd.ErrTruncated etc.) are wrapped in
// ErrMalformed so one sentinel covers "this file cannot become state".
var (
	// ErrBadMagic means the file does not start with the APCKPT marker.
	ErrBadMagic = errors.New("checkpoint: bad magic")
	// ErrBadVersion means a format version this build does not speak.
	ErrBadVersion = errors.New("checkpoint: unsupported format version")
	// ErrTruncated means the file ended inside a promised structure.
	ErrTruncated = errors.New("checkpoint: truncated file")
	// ErrCorrupt means a section's CRC32 does not match its payload.
	ErrCorrupt = errors.New("checkpoint: section checksum mismatch")
	// ErrMalformed means a structurally invalid payload: bad section
	// order, out-of-range indices, or an embedded stream that fails its
	// own validation.
	ErrMalformed = errors.New("checkpoint: malformed file")
)

// BoxWiring is one box's predicate-ID wiring: which registered
// predicates implement its forwarding decisions and ACLs. IDs use -1
// (network.NoPred) for "no predicate". The dataset names the boxes and
// their rules; the wiring binds them to the checkpointed registry.
type BoxWiring struct {
	InACL  int32   // ingress ACL predicate, -1 if none
	Fwd    []int32 // per-port forwarding predicate, -1 if the port never forwards
	OutACL []int32 // per-port egress ACL predicate, -1 if none
}

// Source is everything Encode serializes: one immutable epoch plus the
// dataset and wiring that give its predicate IDs meaning. The snapshot
// pins the epoch, so encoding runs concurrently with queries and
// updates; Dataset and Wiring are read directly, so callers must hold
// them stable for the duration (the same external synchronization rule
// as apclassifier.Behavior vs rule updates).
type Source struct {
	Snap    *aptree.Snapshot
	Dataset *netgen.Dataset
	Method  aptree.Method
	Wiring  []BoxWiring
	// DeltaSeq is the last applied rule-delta sequence number (the
	// /rules/batch idempotency cursor); 0 if no sequenced batch was ever
	// applied.
	DeltaSeq uint64
}

// Restored is a decoded checkpoint: a fully published manager (its
// Snapshot answers queries immediately) plus the dataset and wiring
// needed to rebuild the stage-2 topology around it.
type Restored struct {
	Manager *aptree.Manager
	Dataset *netgen.Dataset
	Method  aptree.Method
	Wiring  []BoxWiring
	Epoch   uint64
	// DeltaSeq restores the /rules/batch idempotency cursor: a sequenced
	// batch at or below it was already applied before the checkpoint.
	DeltaSeq uint64
}
