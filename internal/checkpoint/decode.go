package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"apclassifier/internal/aptree"
	"apclassifier/internal/bdd"
	"apclassifier/internal/netgen"
	"apclassifier/internal/predicate"
)

// Decode reads one checkpoint file and rebuilds a publishable manager.
// It validates everything it touches — CRCs, counts, indices, the BDD
// stream's own invariants, and the tree structure via
// aptree.RestoreTree — and returns a typed error (never panicking, never
// allocating more than the input can justify) on any defect. A
// successful Decode has already republished a ready Snapshot: the
// returned manager answers queries immediately.
func Decode(r io.Reader) (*Restored, error) {
	start := time.Now()
	res, err := decode(r)
	if err != nil {
		mCorrupt.Inc()
		return nil, err
	}
	mRestores.Inc()
	mRestoreDur.Record(time.Since(start).Seconds())
	return res, nil
}

func decode(r io.Reader) (*Restored, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: reading magic", ErrTruncated)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: reading format version", ErrTruncated)
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: file is v%d, this build speaks v%d", ErrBadVersion, version, FormatVersion)
	}

	payloads := make(map[string][]byte, len(sectionOrder))
	for _, name := range sectionOrder {
		p, err := readSection(br, name)
		if err != nil {
			return nil, err
		}
		payloads[name] = p
	}
	if len(payloads["END "]) != 0 {
		return nil, fmt.Errorf("%w: END section carries %d payload bytes", ErrMalformed, len(payloads["END "]))
	}

	// META
	meta := &cursor{section: "META", b: payloads["META"]}
	epoch, err := meta.u64()
	if err != nil {
		return nil, err
	}
	methodU, err := meta.u32()
	if err != nil {
		return nil, err
	}
	if methodU > uint32(aptree.MethodOAPT) {
		return nil, fmt.Errorf("%w: unknown construction method %d", ErrMalformed, methodU)
	}
	numVarsU, err := meta.u32()
	if err != nil {
		return nil, err
	}
	numPredsU, err := meta.u32()
	if err != nil {
		return nil, err
	}
	nextAtomU, err := meta.u32()
	if err != nil {
		return nil, err
	}
	deltaSeq, err := meta.u64()
	if err != nil {
		return nil, err
	}
	if err := meta.done(); err != nil {
		return nil, err
	}
	numPreds := int(numPredsU)
	nextAtom := int32(nextAtomU)
	if nextAtom < 0 {
		return nil, fmt.Errorf("%w: atom bound %d overflows int32", ErrMalformed, nextAtomU)
	}

	// DSET
	ds, err := netgen.Read(bytes.NewReader(payloads["DSET"]))
	if err != nil {
		return nil, fmt.Errorf("%w: embedded dataset: %v", ErrMalformed, err)
	}
	if ds.Layout.Bits() != int(numVarsU) {
		return nil, fmt.Errorf("%w: dataset layout has %d header bits, META says %d",
			ErrMalformed, ds.Layout.Bits(), numVarsU)
	}

	// PRED
	predBits := payloads["PRED"]
	if len(predBits) != (numPreds+7)/8 {
		return nil, fmt.Errorf("%w: liveness bitset is %d bytes for %d predicates",
			ErrMalformed, len(predBits), numPreds)
	}
	live := make([]bool, numPreds)
	for id := range live {
		live[id] = predBits[id/8]&(1<<uint(id%8)) != 0
	}

	// TREE structure first: its leaf count fixes how many BDD roots the
	// BDDS section must carry beyond the predicate slots.
	root, numLeaves, leafAt, err := decodeTree(payloads["TREE"])
	if err != nil {
		return nil, err
	}

	// BDDS
	d := bdd.New(int(numVarsU))
	roots, err := d.Load(bytes.NewReader(payloads["BDDS"]))
	if err != nil {
		return nil, fmt.Errorf("%w: BDD store: %v", ErrMalformed, err)
	}
	if len(roots) != numPreds+numLeaves {
		return nil, fmt.Errorf("%w: BDD store has %d roots, need %d predicates + %d leaves",
			ErrMalformed, len(roots), numPreds, numLeaves)
	}
	preds := roots[:numPreds]
	for i, leaf := range leafAt {
		leaf.BDD = roots[numPreds+i]
	}

	// TOPO
	wiring, err := decodeTopo(payloads["TOPO"], ds, numPreds)
	if err != nil {
		return nil, err
	}

	// Assemble. RestoreTree re-validates the structure (atom IDs against
	// the META bound, predicate routing against the slots, shape) and
	// re-establishes depths, leaf retentions and visit counters.
	reg, err := aptree.RestoreRegistry(preds, live)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	tree, err := aptree.RestoreTree(d, root, preds, nextAtom)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	m := aptree.NewRestoredManager(d, reg, tree, aptree.Method(methodU), epoch)
	return &Restored{
		Manager:  m,
		Dataset:  ds,
		Method:   aptree.Method(methodU),
		Wiring:   wiring,
		Epoch:    epoch,
		DeltaSeq: deltaSeq,
	}, nil
}

// decodeTree parses the TREE section into an unlinked node structure:
// records reference children by index, every non-root node must be
// referenced exactly once, and the whole array must be reachable from
// record 0 — together that is exactly "a binary tree", checked without
// recursion so hostile deep inputs cannot exhaust the stack. Leaf BDD
// refs are left zero for the caller to fill from the BDDS roots, in the
// order leaves appear in the record array.
func decodeTree(payload []byte) (root *aptree.Node, numLeaves int, leafAt []*aptree.Node, err error) {
	c := &cursor{section: "TREE", b: payload}
	countU, err := c.u32()
	if err != nil {
		return nil, 0, nil, err
	}
	leavesU, err := c.u32()
	if err != nil {
		return nil, 0, nil, err
	}
	// Every record is at least 5 bytes, so the payload bounds the count
	// before any allocation proportional to it.
	if int64(countU)*5 > int64(c.remaining()) {
		return nil, 0, nil, fmt.Errorf("%w: TREE promises %d records in %d bytes", ErrMalformed, countU, c.remaining())
	}
	count := int(countU)
	if count == 0 {
		return nil, 0, nil, fmt.Errorf("%w: TREE has no records", ErrMalformed)
	}
	nodes := make([]*aptree.Node, count)
	type childRef struct{ t, f uint32 }
	children := make([]childRef, count)
	for i := 0; i < count; i++ {
		tag, err := c.u8()
		if err != nil {
			return nil, 0, nil, err
		}
		switch tag {
		case 0: // internal
			pred, err := c.i32()
			if err != nil {
				return nil, 0, nil, err
			}
			t, err := c.u32()
			if err != nil {
				return nil, 0, nil, err
			}
			f, err := c.u32()
			if err != nil {
				return nil, 0, nil, err
			}
			if pred < 0 {
				return nil, 0, nil, fmt.Errorf("%w: TREE record %d: negative predicate %d", ErrMalformed, i, pred)
			}
			nodes[i] = &aptree.Node{Pred: pred}
			children[i] = childRef{t, f}
		case 1: // leaf
			atom, err := c.i32()
			if err != nil {
				return nil, 0, nil, err
			}
			words, err := c.u32()
			if err != nil {
				return nil, 0, nil, err
			}
			if int64(words)*8 > int64(c.remaining()) {
				return nil, 0, nil, fmt.Errorf("%w: TREE record %d: %d membership words exceed payload", ErrMalformed, i, words)
			}
			member := make([]uint64, words)
			for w := range member {
				if member[w], err = c.u64(); err != nil {
					return nil, 0, nil, err
				}
			}
			nodes[i] = &aptree.Node{Pred: -1, AtomID: atom, Member: predicate.Bitset(member)}
			leafAt = append(leafAt, nodes[i])
			numLeaves++
		default:
			return nil, 0, nil, fmt.Errorf("%w: TREE record %d: unknown tag %d", ErrMalformed, i, tag)
		}
	}
	if err := c.done(); err != nil {
		return nil, 0, nil, err
	}
	if numLeaves != int(leavesU) {
		return nil, 0, nil, fmt.Errorf("%w: TREE header promises %d leaves, records hold %d", ErrMalformed, leavesU, numLeaves)
	}

	// Link and prove tree-ness: indices in range, no node referenced
	// twice, root referenced never, and everything reachable from 0
	// (single-parent alone admits cycles in unreachable components).
	refCount := make([]uint8, count)
	for i, n := range nodes {
		if n.IsLeaf() {
			continue
		}
		cr := children[i]
		for _, idx := range []uint32{cr.t, cr.f} {
			if int(idx) >= count {
				return nil, 0, nil, fmt.Errorf("%w: TREE record %d: child index %d out of range [0,%d)", ErrMalformed, i, idx, count)
			}
			if idx == 0 {
				return nil, 0, nil, fmt.Errorf("%w: TREE record %d references the root", ErrMalformed, i)
			}
			if refCount[idx] != 0 {
				return nil, 0, nil, fmt.Errorf("%w: TREE record %d referenced twice", ErrMalformed, idx)
			}
			refCount[idx]++
		}
		n.T = nodes[cr.t]
		n.F = nodes[cr.f]
	}
	reached := 0
	stack := []int{0}
	seen := make([]bool, count)
	seen[0] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		reached++
		if !nodes[i].IsLeaf() {
			cr := children[i]
			for _, idx := range []uint32{cr.t, cr.f} {
				if !seen[idx] {
					seen[idx] = true
					stack = append(stack, int(idx))
				}
			}
		}
	}
	if reached != count {
		return nil, 0, nil, fmt.Errorf("%w: TREE has %d records but only %d reachable from the root", ErrMalformed, count, reached)
	}
	return nodes[0], numLeaves, leafAt, nil
}

// decodeTopo parses the TOPO section and validates it against the
// decoded dataset (box and port counts must match) and the predicate ID
// space (-1 or a valid slot).
func decodeTopo(payload []byte, ds *netgen.Dataset, numPreds int) ([]BoxWiring, error) {
	c := &cursor{section: "TOPO", b: payload}
	boxesU, err := c.u32()
	if err != nil {
		return nil, err
	}
	if int(boxesU) != len(ds.Boxes) {
		return nil, fmt.Errorf("%w: TOPO wires %d boxes, dataset has %d", ErrMalformed, boxesU, len(ds.Boxes))
	}
	checkID := func(what string, box int, id int32) error {
		if id < -1 || int(id) >= numPreds {
			return fmt.Errorf("%w: TOPO box %d: %s predicate %d out of range [-1,%d)", ErrMalformed, box, what, id, numPreds)
		}
		return nil
	}
	wiring := make([]BoxWiring, boxesU)
	for b := range wiring {
		inACL, err := c.i32()
		if err != nil {
			return nil, err
		}
		if err := checkID("ingress ACL", b, inACL); err != nil {
			return nil, err
		}
		portsU, err := c.u32()
		if err != nil {
			return nil, err
		}
		if int(portsU) != ds.Boxes[b].NumPorts {
			return nil, fmt.Errorf("%w: TOPO box %d wires %d ports, dataset has %d", ErrMalformed, b, portsU, ds.Boxes[b].NumPorts)
		}
		w := BoxWiring{InACL: inACL, Fwd: make([]int32, portsU), OutACL: make([]int32, portsU)}
		for p := range w.Fwd {
			if w.Fwd[p], err = c.i32(); err != nil {
				return nil, err
			}
			if err := checkID("forwarding", b, w.Fwd[p]); err != nil {
				return nil, err
			}
			if w.OutACL[p], err = c.i32(); err != nil {
				return nil, err
			}
			if err := checkID("egress ACL", b, w.OutACL[p]); err != nil {
				return nil, err
			}
		}
		wiring[b] = w
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return wiring, nil
}

// SelfCheck cross-validates the restored classifier state against
// itself: for n random headers, the leaf found by tree search must
// carry membership bits that agree with direct BDD evaluation of every
// live predicate. It is the semantic half of `apstate verify` — the
// structural half being that Decode succeeded at all.
func (r *Restored) SelfCheck(n int, seed int64) error {
	snap := r.Manager.Snapshot()
	view := snap.View()
	tree := snap.Tree()
	rng := rand.New(rand.NewSource(seed))
	pkt := make([]byte, (view.NumVars()+7)/8)
	for i := 0; i < n; i++ {
		for b := range pkt {
			pkt[b] = byte(rng.Intn(256))
		}
		leaf, _ := snap.Classify(pkt)
		for id := int32(0); id < int32(tree.NumPreds()); id++ {
			if !snap.IsLive(id) {
				continue
			}
			if leaf.Member.Get(int(id)) != view.EvalBits(tree.Pred(id), pkt) {
				return fmt.Errorf("checkpoint: self-check: packet %x: leaf membership bit %d disagrees with predicate BDD", pkt, id)
			}
		}
	}
	return nil
}

// Info summarizes a checkpoint file without building classifier state.
type Info struct {
	FormatVersion uint16
	Epoch         uint64
	DeltaSeq      uint64
	Method        aptree.Method
	NumVars       int
	NumPreds      int
	NumLive       int
	NumTreeNodes  int
	NumLeaves     int
	DatasetName   string
	SectionBytes  map[string]int
}

// Inspect parses and CRC-checks every section and decodes the cheap
// headers (META, PRED counts, TREE counts, dataset name) — the
// `apstate inspect` backend. It does not construct BDDs or the tree;
// use Decode (or apstate verify) for full validation.
func Inspect(r io.Reader) (*Info, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: reading magic", ErrTruncated)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, magic)
	}
	info := &Info{SectionBytes: make(map[string]int, len(sectionOrder))}
	if err := binary.Read(br, binary.LittleEndian, &info.FormatVersion); err != nil {
		return nil, fmt.Errorf("%w: reading format version", ErrTruncated)
	}
	if info.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("%w: file is v%d, this build speaks v%d", ErrBadVersion, info.FormatVersion, FormatVersion)
	}
	payloads := make(map[string][]byte, len(sectionOrder))
	for _, name := range sectionOrder {
		p, err := readSection(br, name)
		if err != nil {
			return nil, err
		}
		payloads[name] = p
		info.SectionBytes[name] = len(p)
	}
	meta := &cursor{section: "META", b: payloads["META"]}
	var err error
	if info.Epoch, err = meta.u64(); err != nil {
		return nil, err
	}
	methodU, err := meta.u32()
	if err != nil {
		return nil, err
	}
	info.Method = aptree.Method(methodU)
	numVarsU, err := meta.u32()
	if err != nil {
		return nil, err
	}
	info.NumVars = int(numVarsU)
	numPredsU, err := meta.u32()
	if err != nil {
		return nil, err
	}
	info.NumPreds = int(numPredsU)
	if _, err := meta.u32(); err != nil { // atom bound, not summarized
		return nil, err
	}
	if info.DeltaSeq, err = meta.u64(); err != nil {
		return nil, err
	}
	for _, b := range payloads["PRED"] {
		for ; b != 0; b &= b - 1 {
			info.NumLive++
		}
	}
	tc := &cursor{section: "TREE", b: payloads["TREE"]}
	nodesU, err := tc.u32()
	if err != nil {
		return nil, err
	}
	leavesU, err := tc.u32()
	if err != nil {
		return nil, err
	}
	info.NumTreeNodes = int(nodesU)
	info.NumLeaves = int(leavesU)
	if ds, err := netgen.Read(bytes.NewReader(payloads["DSET"])); err == nil {
		info.DatasetName = ds.Name
	}
	return info, nil
}

// IsDecodeError reports whether err is one of the checkpoint decode
// sentinels — the distinction Dir.Restore uses to fall back to an older
// checkpoint (decode failures) versus failing outright (I/O errors).
func IsDecodeError(err error) bool {
	return errors.Is(err, ErrBadMagic) || errors.Is(err, ErrBadVersion) ||
		errors.Is(err, ErrTruncated) || errors.Is(err, ErrCorrupt) || errors.Is(err, ErrMalformed)
}
