package checkpoint

import (
	"sync"
	"time"

	"apclassifier/internal/aptree"
)

// RunnerConfig tunes the background checkpointer.
type RunnerConfig struct {
	// Interval is the periodic checkpoint cadence; 0 disables the timer
	// so only publish-triggered checkpoints happen.
	Interval time.Duration
	// MinGap is the coalescing window: after a save, further publish
	// signals accumulate until MinGap has passed before the next save.
	// An update storm therefore costs one checkpoint per window, not one
	// per update. Zero means a 1s default.
	MinGap time.Duration
	// OnError, if non-nil, observes save failures (the runner keeps
	// going; the next trigger retries). Errors are also counted in
	// apc_checkpoint_save_errors_total.
	OnError func(error)
}

// Runner is the background checkpointer: it listens for snapshot
// publications on the manager's coalesced notify channel (every update
// and reconstruction swap fires it) and for the periodic timer, and
// writes a checkpoint whenever the state is dirty and the coalescing
// window allows. It never touches the manager's locks — capture returns
// a Source whose snapshot pins the epoch — so the lock-free query path
// is never blocked by checkpointing.
type Runner struct {
	dir     *Dir
	capture func() *Source
	cfg     RunnerConfig

	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// StartRunner launches the checkpointer goroutine. capture must return
// a consistent Source (callers embedding the classifier under an outer
// lock, like the HTTP server, take that lock inside capture); it runs on
// the runner's goroutine. An initial checkpoint is written immediately
// so a fresh directory is restorable as soon as the service is up, and
// Stop writes a final one if state changed since the last save.
func StartRunner(dir *Dir, m *aptree.Manager, capture func() *Source, cfg RunnerConfig) *Runner {
	if cfg.MinGap <= 0 {
		cfg.MinGap = time.Second
	}
	r := &Runner{dir: dir, capture: capture, cfg: cfg, done: make(chan struct{})}
	notify := m.PublishNotify()
	r.wg.Add(1)
	go r.loop(notify)
	return r
}

func (r *Runner) loop(notify <-chan struct{}) {
	defer r.wg.Done()
	var tickC <-chan time.Time
	if r.cfg.Interval > 0 {
		tick := time.NewTicker(r.cfg.Interval)
		defer tick.Stop()
		tickC = tick.C
	}
	// gap is armed while a publish arrived inside the coalescing window;
	// its firing performs the deferred save.
	gap := time.NewTimer(0)
	if !gap.Stop() {
		<-gap.C
	}
	gapArmed := false

	dirty := true // initial checkpoint: a fresh dir must become restorable
	var lastSave time.Time
	save := func() {
		if _, err := r.dir.Save(r.capture()); err != nil {
			if r.cfg.OnError != nil {
				r.cfg.OnError(err)
			}
			return // stay dirty; the next trigger retries
		}
		dirty = false
		lastSave = time.Now()
	}
	save()

	for {
		select {
		case <-r.done:
			if dirty {
				save()
			}
			return
		case <-notify:
			dirty = true
			if since := time.Since(lastSave); since >= r.cfg.MinGap {
				save()
			} else if !gapArmed {
				gap.Reset(r.cfg.MinGap - since)
				gapArmed = true
			}
		case <-gap.C:
			gapArmed = false
			if dirty {
				save()
			}
		case <-tickC:
			if dirty {
				save()
			}
		}
	}
}

// Stop halts the runner, writing a final checkpoint first if any
// publish arrived since the last save — the graceful-shutdown half of
// warm restart. It returns once the goroutine has exited, and is
// idempotent so a deferred Stop can back up an explicit shutdown path.
func (r *Runner) Stop() {
	r.stopOnce.Do(func() { close(r.done) })
	r.wg.Wait()
}
