package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"apclassifier/internal/aptree"
	"apclassifier/internal/bdd"
)

// Encode writes src as one checkpoint file. The BDD payload is
// serialized through the snapshot's frozen view, so encoding never
// touches the live DD: queries and updates proceed concurrently and the
// bytes describe exactly the pinned epoch.
func Encode(w io.Writer, src *Source) error {
	if src.Snap == nil || src.Dataset == nil {
		return fmt.Errorf("checkpoint: encode needs a snapshot and a dataset")
	}
	tree := src.Snap.Tree()
	numPreds := tree.NumPreds()

	// One preorder walk fixes the node numbering shared by the TREE
	// section and the BDDS root order: records reference children by
	// index, and the leaf atoms' BDD roots follow the predicate roots in
	// the order the leaves appear here.
	var nodes []*aptree.Node
	index := map[*aptree.Node]int{}
	stack := []*aptree.Node{tree.Root()}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		index[n] = len(nodes)
		nodes = append(nodes, n)
		if !n.IsLeaf() {
			stack = append(stack, n.F, n.T) // T pops first: preorder T-then-F
		}
	}

	roots := make([]bdd.Ref, 0, numPreds+tree.NumLeaves())
	for id := int32(0); id < int32(numPreds); id++ {
		roots = append(roots, tree.Pred(id))
	}
	numLeaves := 0
	for _, n := range nodes {
		if n.IsLeaf() {
			roots = append(roots, n.BDD)
			numLeaves++
		}
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, FormatVersion); err != nil {
		return err
	}

	var meta sectionWriter
	meta.u64(src.Snap.Version())
	meta.u32(uint32(src.Method))
	meta.u32(uint32(src.Snap.View().NumVars()))
	meta.u32(uint32(numPreds))
	meta.u32(uint32(tree.NextAtom()))
	meta.u64(src.DeltaSeq)
	if err := writeSection(bw, "META", meta.b); err != nil {
		return err
	}

	var dset bytes.Buffer
	if err := src.Dataset.Write(&dset); err != nil {
		return err
	}
	if err := writeSection(bw, "DSET", dset.Bytes()); err != nil {
		return err
	}

	pred := make([]byte, (numPreds+7)/8)
	for id := int32(0); id < int32(numPreds); id++ {
		if src.Snap.IsLive(id) {
			pred[id/8] |= 1 << uint(id%8)
		}
	}
	if err := writeSection(bw, "PRED", pred); err != nil {
		return err
	}

	var bdds bytes.Buffer
	if err := src.Snap.View().Save(&bdds, roots...); err != nil {
		return err
	}
	if err := writeSection(bw, "BDDS", bdds.Bytes()); err != nil {
		return err
	}

	var trec sectionWriter
	trec.u32(uint32(len(nodes)))
	trec.u32(uint32(numLeaves))
	for _, n := range nodes {
		if n.IsLeaf() {
			trec.u8(1)
			trec.u32(uint32(n.AtomID))
			trec.u32(uint32(len(n.Member)))
			for _, word := range n.Member {
				trec.u64(word)
			}
		} else {
			trec.u8(0)
			trec.u32(uint32(n.Pred))
			trec.u32(uint32(index[n.T]))
			trec.u32(uint32(index[n.F]))
		}
	}
	if err := writeSection(bw, "TREE", trec.b); err != nil {
		return err
	}

	var topo sectionWriter
	topo.u32(uint32(len(src.Wiring)))
	for _, box := range src.Wiring {
		topo.i32(box.InACL)
		topo.u32(uint32(len(box.Fwd)))
		for p, fwd := range box.Fwd {
			topo.i32(fwd)
			out := int32(-1)
			if p < len(box.OutACL) {
				out = box.OutACL[p]
			}
			topo.i32(out)
		}
	}
	if err := writeSection(bw, "TOPO", topo.b); err != nil {
		return err
	}

	if err := writeSection(bw, "END ", nil); err != nil {
		return err
	}
	return bw.Flush()
}
