package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestOpenRecoversWithoutManifest deletes the MANIFEST outright: the
// directory scan must re-adopt every committed checkpoint, newest last,
// and the next save must not collide with an adopted name.
func TestOpenRecoversWithoutManifest(t *testing.T) {
	_, src := testSource(t, 41)
	path := t.TempDir()
	d1, err := Open(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	var saved []string
	for i := 0; i < 3; i++ {
		p, err := d1.Save(src)
		if err != nil {
			t.Fatal(err)
		}
		saved = append(saved, p)
	}
	if err := os.Remove(filepath.Join(path, manifestName)); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := d2.Checkpoints()
	if len(got) != len(saved) {
		t.Fatalf("recovered %d checkpoints, want %d: %v", len(got), len(saved), got)
	}
	for i := range saved {
		if got[i] != saved[i] {
			t.Fatalf("recovered order %v, want %v", got, saved)
		}
	}
	latest, err := d2.Latest()
	if err != nil || latest != saved[2] {
		t.Fatalf("Latest = %q, %v; want %q", latest, err, saved[2])
	}
	if _, err := d2.Restore(); err != nil {
		t.Fatalf("restore after manifest loss: %v", err)
	}
	next, err := d2.Save(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range saved {
		if next == p {
			t.Fatalf("post-recovery save reused name %s", next)
		}
	}
}

// TestOpenRecoversTruncatedManifest feeds Open a manifest whose tail was
// lost mid-write (one intact line, one truncated, trailing garbage).
// The garbage must be dropped, not trusted, and the scan must still
// surface every well-formed checkpoint file on disk.
func TestOpenRecoversTruncatedManifest(t *testing.T) {
	_, src := testSource(t, 43)
	path := t.TempDir()
	d1, err := Open(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	var saved []string
	for i := 0; i < 2; i++ {
		p, err := d1.Save(src)
		if err != nil {
			t.Fatal(err)
		}
		saved = append(saved, p)
	}
	mangled := filepath.Base(saved[0]) + "\nckpt-000000" + "\n\x00\x00garbage line\n"
	if err := os.WriteFile(filepath.Join(path, manifestName), []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := d2.Checkpoints()
	if len(got) != 2 || got[0] != saved[0] || got[1] != saved[1] {
		t.Fatalf("recovered %v, want %v", got, saved)
	}
	for _, p := range got {
		if strings.Contains(p, "garbage") || strings.HasSuffix(p, "ckpt-000000") {
			t.Fatalf("garbage manifest line adopted: %v", got)
		}
	}
	res, err := d2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != src.Snap.Version() {
		t.Fatal("recovered restore landed on the wrong state")
	}
}

// TestIngest round-trips a checkpoint through the peer-bootstrap path:
// bytes from one directory's newest file committed into another, then
// restored. A truncated transfer must be rejected before commit.
func TestIngest(t *testing.T) {
	_, src := testSource(t, 47)
	dirA, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := dirA.Save(src)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}

	dirB, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	committed, err := dirB.Ingest(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got := dirB.Checkpoints(); len(got) != 1 || got[0] != committed {
		t.Fatalf("ingest committed %v, want [%s]", got, committed)
	}
	res, err := dirB.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != src.Snap.Version() {
		t.Fatal("ingested checkpoint restored the wrong state")
	}

	// A truncated transfer decodes short and must not become an entry.
	if _, err := dirB.Ingest(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated ingest accepted")
	}
	if got := dirB.Checkpoints(); len(got) != 1 {
		t.Fatalf("failed ingest left %d entries, want 1", len(got))
	}
	entries, err := os.ReadDir(dirB.Path())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("failed ingest leaked temp file %s", e.Name())
		}
	}
}
