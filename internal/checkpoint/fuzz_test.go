package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode feeds arbitrary bytes to the full decoder. The
// contract: never panic, never allocate beyond what the input length
// justifies, and either return a typed decode error or a Restored whose
// classifier state passes its own consistency checks (RestoreTree
// already re-validated the structure; SelfCheck cross-validates leaf
// membership against predicate BDDs).
func FuzzCheckpointDecode(f *testing.F) {
	_, src := testSource(f, 41)
	var buf bytes.Buffer
	if err := Encode(&buf, src); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()
	f.Add(raw)
	f.Add(raw[:len(raw)-7])          // cut inside END
	f.Add(raw[:len(raw)/2])          // cut mid-BDDS/TREE
	f.Add(raw[:8])                   // magic+version only
	f.Add([]byte{})                  // empty
	f.Add([]byte("APCKPT"))          // magic, no version
	f.Add([]byte("APCKPT\x02\x00"))  // future version
	f.Add([]byte("NOTCKPT\x01\x00")) // wrong magic
	// A hostile section length: META claims 4 GiB.
	hostile := append([]byte("APCKPT\x01\x00META"), 0xFF, 0xFF, 0xFF, 0xFF)
	f.Add(hostile)
	// Single-byte corruptions in distinct sections.
	for _, pos := range []int{9, 30, len(raw) / 3, 2 * len(raw) / 3, len(raw) - 2} {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x80
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		res, err := Decode(bytes.NewReader(in))
		if err != nil {
			if !IsDecodeError(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if err := res.SelfCheck(10, 1); err != nil {
			t.Fatalf("accepted checkpoint fails self-check: %v", err)
		}
	})
}
