package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"apclassifier/internal/bdd"
)

func TestDirSaveRetentionAndRestore(t *testing.T) {
	_, src := testSource(t, 23)
	dir, err := Open(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for i := 0; i < 3; i++ {
		p, err := dir.Save(src)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	kept := dir.Checkpoints()
	if len(kept) != 2 || kept[0] != paths[1] || kept[1] != paths[2] {
		t.Fatalf("retention kept %v, want %v", kept, paths[1:])
	}
	if _, err := os.Stat(paths[0]); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("pruned checkpoint still on disk: %v", err)
	}
	latest, err := dir.Latest()
	if err != nil || latest != paths[2] {
		t.Fatalf("Latest = %q, %v; want %q", latest, err, paths[2])
	}
	// No stray temp files after committed saves.
	entries, err := os.ReadDir(dir.Path())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
	res, err := dir.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != src.Snap.Version() {
		t.Fatal("restored wrong epoch")
	}
}

func TestDirReopenContinuesSequence(t *testing.T) {
	_, src := testSource(t, 29)
	path := t.TempDir()
	d1, err := Open(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := d1.Save(src)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Open(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d2.Save(src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("reopened dir reused a checkpoint filename")
	}
	if got := d2.Checkpoints(); len(got) != 2 {
		t.Fatalf("reopened dir sees %d checkpoints, want 2", len(got))
	}
}

// TestRestoreFallsBackPastCorruption corrupts the newest checkpoint;
// Restore must land on the older intact one. This is the reason the
// manifest keeps K generations.
func TestRestoreFallsBackPastCorruption(t *testing.T) {
	_, src := testSource(t, 31)
	dir, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	good, err := dir.Save(src)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := dir.Save(src)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := dir.Restore()
	if err != nil {
		t.Fatalf("fallback restore failed: %v", err)
	}
	if res.Epoch != src.Snap.Version() {
		t.Fatal("fallback restored wrong state")
	}
	// Sanity: the good file is the one that loaded (the bad one errors).
	if _, err := RestoreFile(bad); err == nil {
		t.Fatal("corrupted file decoded")
	}
	if _, err := RestoreFile(good); err != nil {
		t.Fatal(err)
	}
	// All corrupt → joined error naming every file.
	raw2, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	raw2[len(raw2)/3] ^= 0xFF
	if err := os.WriteFile(good, raw2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Restore(); err == nil {
		t.Fatal("restore succeeded with every checkpoint corrupt")
	} else if !strings.Contains(err.Error(), filepath.Base(good)) || !strings.Contains(err.Error(), filepath.Base(bad)) {
		t.Fatalf("joined error does not name both files: %v", err)
	}
}

func TestEmptyDir(t *testing.T) {
	dir, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Latest(); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Latest on empty dir: %v, want ErrNotExist", err)
	}
	if _, err := dir.Restore(); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Restore on empty dir: %v, want ErrNotExist", err)
	}
}

// TestRunner drives the background checkpointer end to end: initial
// checkpoint, publish-triggered saves with coalescing, and the final
// save at Stop.
func TestRunner(t *testing.T) {
	m, src := testSource(t, 37)
	dir, err := Open(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	capture := func() *Source {
		return &Source{Snap: m.Snapshot(), Dataset: src.Dataset, Method: m.Method(), Wiring: src.Wiring}
	}
	r := StartRunner(dir, m, capture, RunnerConfig{MinGap: 20 * time.Millisecond})

	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(func() bool { return len(dir.Checkpoints()) >= 1 }, "initial checkpoint")

	// A publish triggers a save (possibly deferred by the coalescing
	// window, never dropped).
	n := len(dir.Checkpoints())
	m.AddPredicate(func(d *bdd.DD) bdd.Ref { return d.FromPrefix(0, 0xC0000000, 4, 32) })
	waitFor(func() bool { return len(dir.Checkpoints()) > n }, "publish-triggered checkpoint")

	// A burst inside one window coalesces: far fewer checkpoints than
	// updates.
	before := len(dir.Checkpoints())
	for i := 0; i < 30; i++ {
		m.AddPredicate(func(d *bdd.DD) bdd.Ref { return d.FromPrefix(0, uint64(i)<<24, 8, 32) })
	}
	waitFor(func() bool {
		latest, err := dir.Latest()
		if err != nil {
			return false
		}
		res, err := RestoreFile(latest)
		return err == nil && res.Manager.NumLive() == m.NumLive()
	}, "coalesced checkpoint capturing the burst")
	if grew := len(dir.Checkpoints()) - before; grew > 10 {
		t.Fatalf("30 updates produced %d checkpoints; coalescing is not working", grew)
	}

	// Stop writes a final checkpoint when dirty.
	m.AddPredicate(func(d *bdd.DD) bdd.Ref { return d.FromPrefix(0, 0xDE000000, 8, 32) })
	r.Stop()
	latest, err := dir.Latest()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RestoreFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manager.NumLive() != m.NumLive() {
		t.Fatalf("final checkpoint is stale: %d live, manager has %d", res.Manager.NumLive(), m.NumLive())
	}
}
