package checkpoint

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"apclassifier/internal/aptree"
	"apclassifier/internal/bdd"
	"apclassifier/internal/netgen"
)

// testSource builds a manager with live and tombstoned predicates over a
// small real dataset, plus wiring shaped to the dataset's boxes. The
// predicates are synthetic (the codec never cross-checks them against
// the dataset's rules; the facade-level differential test covers that),
// which keeps this unit test fast.
func testSource(t testing.TB, seed int64) (*aptree.Manager, *Source) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := netgen.Internet2Like(netgen.Config{Seed: seed, RuleScale: 0.002})
	m := aptree.NewManager(ds.Layout.Bits(), aptree.MethodOAPT)
	var ids []int32
	for i := 0; i < 18; i++ {
		v := uint64(rng.Uint32())
		l := 1 + rng.Intn(16)
		ids = append(ids, m.AddPredicate(func(d *bdd.DD) bdd.Ref {
			return d.FromPrefix(0, v, l, 32)
		}))
	}
	m.Reconstruct(false)
	for i := 0; i < 4; i++ {
		v := uint64(rng.Uint32())
		l := 1 + rng.Intn(16)
		ids = append(ids, m.AddPredicate(func(d *bdd.DD) bdd.Ref {
			return d.FromPrefix(0, v, l, 32)
		}))
	}
	m.DeletePredicate(ids[1])
	m.DeletePredicate(ids[19])

	snap := m.Snapshot()
	numPreds := snap.Tree().NumPreds()
	wiring := make([]BoxWiring, len(ds.Boxes))
	for b := range wiring {
		ports := ds.Boxes[b].NumPorts
		w := BoxWiring{InACL: -1, Fwd: make([]int32, ports), OutACL: make([]int32, ports)}
		for p := 0; p < ports; p++ {
			w.Fwd[p] = int32((b*7 + p) % numPreds)
			w.OutACL[p] = -1
		}
		if b%3 == 0 {
			w.InACL = int32(b % numPreds)
		}
		wiring[b] = w
	}
	return m, &Source{Snap: snap, Dataset: ds, Method: m.Method(), Wiring: wiring, DeltaSeq: uint64(seed)*100 + 7}
}

func encodeToBytes(t *testing.T, src *Source) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, src); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	m, src := testSource(t, 5)
	raw := encodeToBytes(t, src)
	res, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != src.Snap.Version() {
		t.Fatalf("epoch %d, want %d", res.Epoch, src.Snap.Version())
	}
	if res.Method != src.Method {
		t.Fatalf("method %v, want %v", res.Method, src.Method)
	}
	if res.DeltaSeq != src.DeltaSeq {
		t.Fatalf("delta seq %d, want %d", res.DeltaSeq, src.DeltaSeq)
	}
	if res.Manager.Version() != src.Snap.Version() {
		t.Fatal("restored manager must republish the checkpointed epoch")
	}
	if res.Manager.NumLive() != m.NumLive() {
		t.Fatalf("live %d, want %d", res.Manager.NumLive(), m.NumLive())
	}
	if got, want := res.Manager.Snapshot().Tree().NumLeaves(), src.Snap.Tree().NumLeaves(); got != want {
		t.Fatalf("leaves %d, want %d", got, want)
	}
	if !reflect.DeepEqual(res.Wiring, src.Wiring) {
		t.Fatalf("wiring mismatch:\n got %+v\nwant %+v", res.Wiring, src.Wiring)
	}
	if res.Dataset.Name != src.Dataset.Name || len(res.Dataset.Boxes) != len(src.Dataset.Boxes) {
		t.Fatal("dataset did not round-trip")
	}

	// Behavioral identity on random headers: the restored tree must land
	// every packet on a leaf with identical membership bits.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 1000; i++ {
		pkt := []byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
		a, _ := m.Classify(pkt)
		b, _ := res.Manager.Classify(pkt)
		for id := int32(0); id < int32(src.Snap.Tree().NumPreds()); id++ {
			if !m.IsLive(id) {
				continue
			}
			if a.Member.Get(int(id)) != b.Member.Get(int(id)) {
				t.Fatalf("packet %x: membership bit %d differs", pkt, id)
			}
		}
	}
	if err := res.SelfCheck(200, 7); err != nil {
		t.Fatal(err)
	}

	// The restored manager is a full peer: it accepts updates and
	// reconstructs, with the epoch clock continuing forward.
	v := res.Manager.Version()
	res.Manager.AddPredicate(func(d *bdd.DD) bdd.Ref { return d.FromPrefix(0, 0x0A000000, 8, 32) })
	res.Manager.Reconstruct(true)
	if res.Manager.Version() != v+1 {
		t.Fatal("epoch clock did not continue after restore")
	}
}

// TestDecodeDeterministic: decoding the same bytes twice yields managers
// that classify identically (the hash-consed rebuild is deterministic).
func TestEncodeDecodeStable(t *testing.T) {
	_, src := testSource(t, 8)
	raw := encodeToBytes(t, src)
	r1, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		pkt := []byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
		a, _ := r1.Manager.Classify(pkt)
		b, _ := r2.Manager.Classify(pkt)
		if a.AtomID != b.AtomID {
			t.Fatalf("packet %x: atoms %d vs %d", pkt, a.AtomID, b.AtomID)
		}
	}
}

// TestCorruptionRejected flips single bytes across the file and checks
// every flip is rejected with a typed error — the CRC-per-section layout
// means no corruption goes unnoticed — and that the rejection counter
// moves.
func TestCorruptionRejected(t *testing.T) {
	_, src := testSource(t, 11)
	raw := encodeToBytes(t, src)
	before := mCorrupt.Value()
	flips := 0
	for pos := 0; pos < len(raw); pos += 97 {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x40
		if _, err := Decode(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flip at byte %d accepted", pos)
		} else if !IsDecodeError(err) {
			t.Fatalf("flip at byte %d: untyped error %v", pos, err)
		}
		flips++
	}
	if got := mCorrupt.Value() - before; got != uint64(flips) {
		t.Fatalf("corruption counter moved by %d for %d rejections", got, flips)
	}
}

// TestTruncationRejected cuts the file at various points; every prefix
// must be rejected, typed.
func TestTruncationRejected(t *testing.T) {
	_, src := testSource(t, 13)
	raw := encodeToBytes(t, src)
	for _, cut := range []int{0, 1, 5, 7, 8, len(raw) / 4, len(raw) / 2, len(raw) - 5, len(raw) - 1} {
		if _, err := Decode(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		} else if !IsDecodeError(err) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}
	if _, err := Decode(bytes.NewReader(raw[:8])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("header-only file: %v, want ErrTruncated", err)
	}
}

func TestInspect(t *testing.T) {
	_, src := testSource(t, 17)
	raw := encodeToBytes(t, src)
	info, err := Inspect(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if info.FormatVersion != FormatVersion || info.Epoch != src.Snap.Version() {
		t.Fatalf("info header wrong: %+v", info)
	}
	if info.DeltaSeq != src.DeltaSeq {
		t.Fatalf("delta seq %d, want %d", info.DeltaSeq, src.DeltaSeq)
	}
	if info.NumPreds != src.Snap.Tree().NumPreds() || info.NumLive != src.Snap.NumLive() {
		t.Fatalf("predicate counts wrong: %+v", info)
	}
	if info.NumLeaves != src.Snap.Tree().NumLeaves() {
		t.Fatalf("leaf count wrong: %+v", info)
	}
	if info.DatasetName != src.Dataset.Name {
		t.Fatalf("dataset name %q, want %q", info.DatasetName, src.Dataset.Name)
	}
	if info.SectionBytes["BDDS"] == 0 || info.SectionBytes["TREE"] == 0 {
		t.Fatalf("section sizes missing: %+v", info.SectionBytes)
	}
}
