package checkpoint

import (
	"sync/atomic"
	"time"

	"apclassifier/internal/obs"
)

// Checkpoint metrics, registered at init so /metrics exposes the
// families even before the first save. Save-side metrics are updated by
// Dir.Save, restore-side by Decode — the two funnels every caller goes
// through.
var (
	mSaves = obs.Default.Counter("apc_checkpoint_saves_total",
		"Checkpoint files successfully written (temp+fsync+rename committed).")
	mSaveErrors = obs.Default.Counter("apc_checkpoint_save_errors_total",
		"Checkpoint save attempts that failed before commit.")
	mSaveDur = obs.Default.Histogram("apc_checkpoint_save_duration_seconds",
		"Wall time of one checkpoint save: encode, fsync, rename, manifest.", obs.DefBuckets)
	mLastSize = obs.Default.Gauge("apc_checkpoint_last_size_bytes",
		"Size of the most recently committed checkpoint file.")
	mRestores = obs.Default.Counter("apc_checkpoint_restores_total",
		"Checkpoint files successfully decoded into classifier state.")
	mRestoreDur = obs.Default.Histogram("apc_checkpoint_restore_duration_seconds",
		"Wall time of one checkpoint decode+restore.", obs.DefBuckets)
	mCorrupt = obs.Default.Counter("apc_checkpoint_corrupt_rejected_total",
		"Checkpoint decodes rejected as truncated, corrupt, or malformed.")
)

// lastSaveUnixNano is the commit time of the newest checkpoint, feeding
// the scrape-time age gauge below; zero means no save yet this process.
var lastSaveUnixNano atomic.Int64

func init() {
	obs.Default.GaugeFunc("apc_checkpoint_age_seconds",
		"Seconds since the last committed checkpoint; -1 before the first.",
		func() float64 {
			ns := lastSaveUnixNano.Load()
			if ns == 0 {
				return -1
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		})
}
