package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

const manifestName = "MANIFEST"

// Dir manages a checkpoint directory: atomic writes, a manifest of
// committed checkpoints (oldest first), retention of the last K, and a
// restore path that falls back past corrupt entries. All methods are
// safe for concurrent use; saves serialize.
type Dir struct {
	path string
	keep int

	mu sync.Mutex
	//lint:guard mu
	seq int
	// entries is the manifest: committed checkpoint filenames, oldest
	// first. A file is only an entry after its rename and the manifest
	// rewrite both hit disk, so every entry is a complete, synced file.
	//lint:guard mu
	entries []string
}

// Open creates (if needed) and loads a checkpoint directory keeping the
// last keep checkpoints (minimum 1).
func Open(path string, keep int) (*Dir, error) {
	if keep < 1 {
		keep = 1
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, err
	}
	d := &Dir{path: path, keep: keep}
	if err := d.loadManifestLocked(); err != nil {
		return nil, err
	}
	return d, nil
}

// Path returns the directory being managed.
func (d *Dir) Path() string { return d.path }

// Checkpoints returns the committed checkpoint paths, oldest first.
func (d *Dir) Checkpoints() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.entries))
	for i, e := range d.entries {
		out[i] = filepath.Join(d.path, e)
	}
	return out
}

func (d *Dir) loadManifestLocked() error {
	b, err := os.ReadFile(filepath.Join(d.path, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		d.entries = append(d.entries, line)
		var n int
		if _, err := fmt.Sscanf(line, "ckpt-%08d.apc", &n); err == nil && n >= d.seq {
			d.seq = n + 1
		}
	}
	return nil
}

// Save encodes src into a new checkpoint file with the atomic-write
// protocol — temp file, fsync, rename, directory fsync, manifest
// rewrite (same protocol) — then prunes checkpoints beyond the
// retention count. It returns the committed path. A crash at any point
// leaves the directory with its previous manifest and files intact.
func (d *Dir) Save(src *Source) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	start := time.Now()
	path, size, err := d.saveLocked(src)
	if err != nil {
		mSaveErrors.Inc()
		return "", err
	}
	mSaves.Inc()
	mSaveDur.Record(time.Since(start).Seconds())
	mLastSize.Set(size)
	lastSaveUnixNano.Store(time.Now().UnixNano())
	return path, nil
}

func (d *Dir) saveLocked(src *Source) (string, int64, error) {
	name := fmt.Sprintf("ckpt-%08d.apc", d.seq)
	tmp, err := os.CreateTemp(d.path, ".tmp-ckpt-*")
	if err != nil {
		return "", 0, err
	}
	tmpName := tmp.Name()
	fail := func(err error) (string, int64, error) {
		// Best-effort cleanup of a temp file we are abandoning; the
		// original error is what the caller needs.
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return "", 0, err
	}
	if err := Encode(tmp, src); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	st, err := tmp.Stat()
	if err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return "", 0, err
	}
	final := filepath.Join(d.path, name)
	if err := os.Rename(tmpName, final); err != nil {
		_ = os.Remove(tmpName)
		return "", 0, err
	}
	if err := syncDir(d.path); err != nil {
		return "", 0, err
	}

	// Commit to the manifest before deleting anything it used to
	// reference: a crash between the two steps leaves orphan files (GC'd
	// by the next prune cycle's filesystem scan being unnecessary — they
	// simply age out of the directory listing), never dangling entries.
	d.seq++
	d.entries = append(d.entries, name)
	var pruned []string
	for len(d.entries) > d.keep {
		pruned = append(pruned, d.entries[0])
		d.entries = d.entries[1:]
	}
	if err := d.writeManifestLocked(); err != nil {
		return "", 0, err
	}
	for _, old := range pruned {
		if err := os.Remove(filepath.Join(d.path, old)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return "", 0, err
		}
	}
	return final, st.Size(), nil
}

func (d *Dir) writeManifestLocked() error {
	tmp, err := os.CreateTemp(d.path, ".tmp-manifest-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return err
	}
	if _, err := tmp.WriteString(strings.Join(d.entries, "\n") + "\n"); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(d.path, manifestName)); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	return syncDir(d.path)
}

// syncDir fsyncs a directory so a completed rename is durable — without
// it the new name may be lost in a crash even though the file data is
// on disk.
func syncDir(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Latest returns the newest committed checkpoint path, or a wrapped
// os.ErrNotExist if the directory holds none.
func (d *Dir) Latest() (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.entries) == 0 {
		return "", fmt.Errorf("checkpoint: %s holds no checkpoints: %w", d.path, os.ErrNotExist)
	}
	return filepath.Join(d.path, d.entries[len(d.entries)-1]), nil
}

// Restore decodes the newest checkpoint, falling back to older entries
// when a file is missing, truncated, or corrupt — the manifest keeps K
// generations precisely so one bad write does not strand the service.
// The returned error joins every per-file failure when nothing loads.
func (d *Dir) Restore() (*Restored, error) {
	paths := d.Checkpoints()
	if len(paths) == 0 {
		return nil, fmt.Errorf("checkpoint: %s holds no checkpoints: %w", d.path, os.ErrNotExist)
	}
	var errs []error
	for i := len(paths) - 1; i >= 0; i-- {
		res, err := RestoreFile(paths[i])
		if err == nil {
			return res, nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", paths[i], err))
		if !IsDecodeError(err) && !errors.Is(err, os.ErrNotExist) {
			break // a real I/O fault; older files will not fare better
		}
	}
	return nil, errors.Join(errs...)
}

// RestoreFile decodes one checkpoint file.
func RestoreFile(path string) (*Restored, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
