package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const manifestName = "MANIFEST"

// Dir manages a checkpoint directory: atomic writes, a manifest of
// committed checkpoints (oldest first), retention of the last K, and a
// restore path that falls back past corrupt entries. All methods are
// safe for concurrent use; saves serialize.
type Dir struct {
	path string
	keep int

	mu sync.Mutex
	//lint:guard mu
	seq int
	// entries is the manifest: committed checkpoint filenames, oldest
	// first. A file is only an entry after its rename and the manifest
	// rewrite both hit disk, so every entry is a complete, synced file.
	//lint:guard mu
	entries []string
}

// Open creates (if needed) and loads a checkpoint directory keeping the
// last keep checkpoints (minimum 1).
func Open(path string, keep int) (*Dir, error) {
	if keep < 1 {
		keep = 1
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, err
	}
	d := &Dir{path: path, keep: keep}
	if err := d.loadManifestLocked(); err != nil {
		return nil, err
	}
	return d, nil
}

// Path returns the directory being managed.
func (d *Dir) Path() string { return d.path }

// Checkpoints returns the committed checkpoint paths, oldest first.
func (d *Dir) Checkpoints() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.entries))
	for i, e := range d.entries {
		out[i] = filepath.Join(d.path, e)
	}
	return out
}

// loadManifestLocked rebuilds the entry list from the MANIFEST, then
// reconciles it against a directory scan. The manifest is the intent
// log, but it is not load-bearing for recovery: if it is missing,
// truncated, or lists files that are gone, every well-formed ckpt-*.apc
// actually on disk is adopted (in name order, which is seq order — the
// names are zero-padded), so the newest-first restore fallback still
// reaches every surviving checkpoint. A garbage manifest line is
// dropped rather than trusted; whether each adopted file is intact is
// Restore's job, which decodes newest-first past corruption.
func (d *Dir) loadManifestLocked() error {
	seen := make(map[string]bool)
	b, err := os.ReadFile(filepath.Join(d.path, manifestName))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	if err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			line = strings.TrimSpace(line)
			if seqOf(line) < 0 || seen[line] {
				continue // garbage or truncated line, or duplicate
			}
			seen[line] = true
			d.entries = append(d.entries, line)
		}
	}
	// Scan for committed checkpoints the manifest does not know: the
	// manifest itself may have been lost, or a crash between a file
	// rename and the manifest rewrite left an orphan. Both are complete,
	// synced files — adopt them.
	names, err := os.ReadDir(d.path)
	if err != nil {
		return err
	}
	adopted := false
	for _, de := range names {
		if name := de.Name(); !de.IsDir() && seqOf(name) >= 0 && !seen[name] {
			seen[name] = true
			d.entries = append(d.entries, name)
			adopted = true
		}
	}
	if adopted {
		// Zero-padded names sort lexicographically in seq order.
		sort.Strings(d.entries)
	}
	for _, name := range d.entries {
		if n := seqOf(name); n >= d.seq {
			d.seq = n + 1
		}
	}
	return nil
}

// seqOf parses a checkpoint filename, returning its sequence number or
// -1 when the name is not a well-formed ckpt-%08d.apc.
func seqOf(name string) int {
	var n int
	if _, err := fmt.Sscanf(name, "ckpt-%08d.apc", &n); err != nil || name != fmt.Sprintf("ckpt-%08d.apc", n) {
		return -1
	}
	return n
}

// Save encodes src into a new checkpoint file with the atomic-write
// protocol — temp file, fsync, rename, directory fsync, manifest
// rewrite (same protocol) — then prunes checkpoints beyond the
// retention count. It returns the committed path. A crash at any point
// leaves the directory with its previous manifest and files intact.
func (d *Dir) Save(src *Source) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	start := time.Now()
	path, size, err := d.saveLocked(src)
	if err != nil {
		mSaveErrors.Inc()
		return "", err
	}
	mSaves.Inc()
	mSaveDur.Record(time.Since(start).Seconds())
	mLastSize.Set(size)
	lastSaveUnixNano.Store(time.Now().UnixNano())
	return path, nil
}

func (d *Dir) saveLocked(src *Source) (string, int64, error) {
	tmp, err := os.CreateTemp(d.path, ".tmp-ckpt-*")
	if err != nil {
		return "", 0, err
	}
	tmpName := tmp.Name()
	fail := func(err error) (string, int64, error) {
		// Best-effort cleanup of a temp file we are abandoning; the
		// original error is what the caller needs.
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return "", 0, err
	}
	if err := Encode(tmp, src); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	st, err := tmp.Stat()
	if err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return "", 0, err
	}
	final, err := d.commitLocked(tmpName)
	if err != nil {
		return "", 0, err
	}
	return final, st.Size(), nil
}

// commitLocked promotes a synced temp file into the next committed
// checkpoint: rename, directory fsync, manifest rewrite, prune. The
// manifest is rewritten before anything it used to reference is
// deleted: a crash between the two steps leaves orphan files (which
// the Open-time directory scan re-adopts), never dangling entries.
func (d *Dir) commitLocked(tmpName string) (string, error) {
	name := fmt.Sprintf("ckpt-%08d.apc", d.seq)
	final := filepath.Join(d.path, name)
	if err := os.Rename(tmpName, final); err != nil {
		_ = os.Remove(tmpName)
		return "", err
	}
	if err := syncDir(d.path); err != nil {
		return "", err
	}
	d.seq++
	d.entries = append(d.entries, name)
	var pruned []string
	for len(d.entries) > d.keep {
		pruned = append(pruned, d.entries[0])
		d.entries = d.entries[1:]
	}
	if err := d.writeManifestLocked(); err != nil {
		return "", err
	}
	for _, old := range pruned {
		if err := os.Remove(filepath.Join(d.path, old)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return "", err
		}
	}
	return final, nil
}

// Ingest commits checkpoint bytes fetched from elsewhere — a peer
// worker's GET /checkpoint/latest during cluster bootstrap — as this
// directory's next checkpoint, after fully decoding the bytes to prove
// they are an intact checkpoint (a truncated transfer must not become
// the newest entry the next restore trusts first). The committed path
// is returned; Restore and Latest see it like any saved checkpoint.
func (d *Dir) Ingest(r io.Reader) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp, err := os.CreateTemp(d.path, ".tmp-ckpt-*")
	if err != nil {
		return "", err
	}
	tmpName := tmp.Name()
	fail := func(err error) (string, error) {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return "", err
	}
	if _, err := io.Copy(tmp, r); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		return fail(err)
	}
	if _, err := Decode(tmp); err != nil {
		return fail(fmt.Errorf("checkpoint: ingest rejected: %w", err))
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return "", err
	}
	return d.commitLocked(tmpName)
}

func (d *Dir) writeManifestLocked() error {
	tmp, err := os.CreateTemp(d.path, ".tmp-manifest-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return err
	}
	if _, err := tmp.WriteString(strings.Join(d.entries, "\n") + "\n"); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(d.path, manifestName)); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	return syncDir(d.path)
}

// syncDir fsyncs a directory so a completed rename is durable — without
// it the new name may be lost in a crash even though the file data is
// on disk.
func syncDir(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Latest returns the newest committed checkpoint path, or a wrapped
// os.ErrNotExist if the directory holds none.
func (d *Dir) Latest() (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.entries) == 0 {
		return "", fmt.Errorf("checkpoint: %s holds no checkpoints: %w", d.path, os.ErrNotExist)
	}
	return filepath.Join(d.path, d.entries[len(d.entries)-1]), nil
}

// Restore decodes the newest checkpoint, falling back to older entries
// when a file is missing, truncated, or corrupt — the manifest keeps K
// generations precisely so one bad write does not strand the service.
// The returned error joins every per-file failure when nothing loads.
func (d *Dir) Restore() (*Restored, error) {
	paths := d.Checkpoints()
	if len(paths) == 0 {
		return nil, fmt.Errorf("checkpoint: %s holds no checkpoints: %w", d.path, os.ErrNotExist)
	}
	var errs []error
	for i := len(paths) - 1; i >= 0; i-- {
		res, err := RestoreFile(paths[i])
		if err == nil {
			return res, nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", paths[i], err))
		if !IsDecodeError(err) && !errors.Is(err, os.ErrNotExist) {
			break // a real I/O fault; older files will not fare better
		}
	}
	return nil, errors.Join(errs...)
}

// RestoreFile decodes one checkpoint file.
func RestoreFile(path string) (*Restored, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
