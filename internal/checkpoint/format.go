package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	fileMagic = "APCKPT"
	// FormatVersion is the checkpoint format this build reads and writes.
	// v2 appended the rule-delta sequence cursor to META so a restored
	// server resumes the /rules/batch firehose idempotently.
	FormatVersion uint16 = 2
)

// Section names, in the exact order they appear in a file.
var sectionOrder = []string{"META", "DSET", "PRED", "BDDS", "TREE", "TOPO", "END "}

// payloadChunk bounds how much a single allocation step commits to a
// section payload: a hostile 4-byte length must not allocate gigabytes
// before the stream proves it actually carries that many bytes.
const payloadChunk = 1 << 20

// writeSection frames one section: name, length, payload, CRC32 (IEEE)
// over name and payload together, so a corrupted name is as detectable
// as a corrupted body.
func writeSection(w *bufio.Writer, name string, payload []byte) error {
	if len(name) != 4 {
		panic("checkpoint: section name must be 4 bytes")
	}
	if _, err := w.WriteString(name); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(payload))); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	crc := crc32.ChecksumIEEE([]byte(name))
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	return binary.Write(w, binary.LittleEndian, crc)
}

// readSection reads the next section, verifies its CRC, and checks it is
// the expected one — the format has a fixed section order, so any other
// name means a malformed or reordered file.
func readSection(br *bufio.Reader, want string) ([]byte, error) {
	name := make([]byte, 4)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: reading section header (expected %q)", ErrTruncated, want)
	}
	if string(name) != want {
		return nil, fmt.Errorf("%w: section %q where %q expected", ErrMalformed, name, want)
	}
	var length uint32
	if err := binary.Read(br, binary.LittleEndian, &length); err != nil {
		return nil, fmt.Errorf("%w: section %q length", ErrTruncated, want)
	}
	payload := make([]byte, 0, minInt(int(length), payloadChunk))
	for remaining := int(length); remaining > 0; {
		n := minInt(remaining, payloadChunk)
		start := len(payload)
		payload = append(payload, make([]byte, n)...)
		if _, err := io.ReadFull(br, payload[start:]); err != nil {
			return nil, fmt.Errorf("%w: section %q payload (%d of %d bytes short)", ErrTruncated, want, remaining, length)
		}
		remaining -= n
	}
	var crc uint32
	if err := binary.Read(br, binary.LittleEndian, &crc); err != nil {
		return nil, fmt.Errorf("%w: section %q checksum", ErrTruncated, want)
	}
	sum := crc32.ChecksumIEEE(name)
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	if sum != crc {
		return nil, fmt.Errorf("%w: section %q (stored %08x, computed %08x)", ErrCorrupt, want, crc, sum)
	}
	return payload, nil
}

// cursor is a bounds-checked reader over one section payload. Overruns
// are ErrMalformed, not ErrTruncated: the payload passed its CRC, so a
// structure extending past it is an encoding bug or forged content, not
// a short file.
type cursor struct {
	section string
	b       []byte
	off     int
}

func (c *cursor) need(n int) error {
	if c.off+n > len(c.b) {
		return fmt.Errorf("%w: section %q record at offset %d overruns payload (%d bytes)",
			ErrMalformed, c.section, c.off, len(c.b))
	}
	return nil
}

func (c *cursor) u8() (byte, error) {
	if err := c.need(1); err != nil {
		return 0, err
	}
	v := c.b[c.off]
	c.off++
	return v, nil
}

func (c *cursor) u32() (uint32, error) {
	if err := c.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v, nil
}

func (c *cursor) i32() (int32, error) {
	v, err := c.u32()
	return int32(v), err
}

func (c *cursor) u64() (uint64, error) {
	if err := c.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v, nil
}

// remaining reports unread payload bytes; decoders use it to bound
// count-prefixed allocations by what the payload can actually hold.
func (c *cursor) remaining() int { return len(c.b) - c.off }

// done rejects trailing garbage after the last expected record.
func (c *cursor) done() error {
	if c.off != len(c.b) {
		return fmt.Errorf("%w: section %q has %d trailing bytes", ErrMalformed, c.section, len(c.b)-c.off)
	}
	return nil
}

// sectionWriter accumulates one payload; the u32/i32/u64 helpers mirror
// the cursor so encode and decode read as the same schema.
type sectionWriter struct {
	b []byte
}

func (s *sectionWriter) u8(v byte)  { s.b = append(s.b, v) }
func (s *sectionWriter) u32(v uint32) {
	s.b = binary.LittleEndian.AppendUint32(s.b, v)
}
func (s *sectionWriter) i32(v int32) { s.u32(uint32(v)) }
func (s *sectionWriter) u64(v uint64) {
	s.b = binary.LittleEndian.AppendUint64(s.b, v)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
