package baseline

import (
	"math/rand"
	"testing"

	"apclassifier"
	"apclassifier/internal/bdd"
	"apclassifier/internal/netgen"
	"apclassifier/internal/predicate"
)

func compiled(t *testing.T, seed int64, scale float64) (*apclassifier.Classifier, *netgen.Dataset) {
	t.Helper()
	ds := netgen.Internet2Like(netgen.Config{Seed: seed, RuleScale: scale})
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c, ds
}

func liveRefs(c *apclassifier.Classifier) (ids []int32, refs []bdd.Ref, capBits int) {
	m := c.Manager
	ids = m.LiveIDs()
	refs = make([]bdd.Ref, len(ids))
	var maxID int32
	for i, id := range ids {
		refs[i] = m.Ref(id)
		if id > maxID {
			maxID = id
		}
	}
	return ids, refs, int(maxID) + 1
}

func TestAPLinearMatchesTree(t *testing.T) {
	c, ds := compiled(t, 31, 0.01)
	d := c.Manager.DD()
	ids, refs, capBits := liveRefs(c)
	intIDs := make([]int, len(ids))
	for i, id := range ids {
		intIDs[i] = int(id)
	}
	atoms := predicate.ComputeMapped(d, refs, intIDs, capBits)
	ap := &APLinear{D: d, Atoms: atoms}

	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 300; i++ {
		f := ds.RandomFields(rng)
		pkt := ds.PacketFromFields(f)
		leaf := c.Classify(pkt)
		member := ap.Member(pkt)
		for _, id := range ids {
			if member.Get(int(id)) != leaf.Member.Get(int(id)) {
				t.Fatalf("probe %d: APLinear and tree disagree on predicate %d", i, id)
			}
		}
		if ap.Classify(pkt) < 0 {
			t.Fatal("APLinear failed to classify")
		}
	}
}

func TestPScanMatchesTree(t *testing.T) {
	c, ds := compiled(t, 32, 0.01)
	ids, refs, capBits := liveRefs(c)
	ps := NewPScan(c.Manager.DD(), ids, refs, capBits)
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 300; i++ {
		pkt := ds.PacketFromFields(ds.RandomFields(rng))
		leaf := c.Classify(pkt)
		member := ps.Member(pkt)
		for _, id := range ids {
			if member.Get(int(id)) != leaf.Member.Get(int(id)) {
				t.Fatalf("probe %d: PScan and tree disagree on predicate %d", i, id)
			}
		}
	}
}

func TestFwdSimMatchesOracle(t *testing.T) {
	c, ds := compiled(t, 33, 0.01)
	sim := ManagerEnv(c.Manager, c.Net)
	rng := rand.New(rand.NewSource(33))
	checks := 0
	for i := 0; i < 300; i++ {
		f := ds.RandomFields(rng)
		ingress := rng.Intn(len(ds.Boxes))
		want := ds.Simulate(ingress, f)
		got := sim.Behavior(ingress, ds.PacketFromFields(f))
		if (len(want.Delivered) > 0) != got.DeliveredTo("") {
			t.Fatalf("probe %d: FwdSim disagrees with oracle", i)
		}
		if len(want.Delivered) > 0 && !got.DeliveredTo(want.Delivered[0]) {
			t.Fatalf("probe %d: wrong host", i)
		}
		checks += got.PredChecks
	}
	if checks == 0 {
		t.Fatal("FwdSim must evaluate predicates")
	}
	// The paper's point: FwdSim checks far more predicates per packet than
	// the AP Tree's average depth.
	avgChecks := float64(checks) / 300
	if avgChecks <= c.AverageDepth() {
		t.Fatalf("FwdSim avg checks %.1f should exceed tree depth %.1f", avgChecks, c.AverageDepth())
	}
}

func TestFwdSimStanfordWithACLs(t *testing.T) {
	ds := netgen.StanfordLike(netgen.Config{Seed: 34, RuleScale: 0.003})
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim := ManagerEnv(c.Manager, c.Net)
	rng := rand.New(rand.NewSource(34))
	for i := 0; i < 150; i++ {
		f := ds.RandomFields(rng)
		ingress := rng.Intn(len(ds.Boxes))
		want := ds.Simulate(ingress, f)
		got := sim.Behavior(ingress, ds.PacketFromFields(f))
		if (len(want.Delivered) > 0) != got.DeliveredTo("") {
			t.Fatalf("probe %d: FwdSim disagrees with oracle on Stanford", i)
		}
	}
}
