// Package baseline implements the comparison methods of §VII: APLinear
// (AP Verifier's atoms searched linearly), PScan (scanning every predicate
// per packet), and Forwarding Simulation (per-box linear predicate
// matching, hop by hop). All three identify packet behaviors correctly;
// the experiments show how much slower they are than the AP Tree.
package baseline

import (
	"apclassifier/internal/aptree"
	"apclassifier/internal/bdd"
	"apclassifier/internal/network"
	"apclassifier/internal/predicate"
)

// APLinear classifies packets by scanning atomic-predicate BDDs in order
// until one evaluates true (the paper's APLinear method). Atom BDDs are
// more complex than the original predicates, which is why this is slow.
type APLinear struct {
	D     *bdd.DD
	Atoms *predicate.Atoms
}

// Classify returns the atom index for the packet (-1 never happens for a
// well-formed atom set).
func (a *APLinear) Classify(pkt []byte) int { return a.Atoms.ClassifyLinear(pkt) }

// Member returns the membership vector of the packet's atom.
func (a *APLinear) Member(pkt []byte) predicate.Bitset {
	i := a.Atoms.ClassifyLinear(pkt)
	if i < 0 {
		return nil
	}
	return a.Atoms.Member[i]
}

// PScan evaluates every predicate on the packet directly (the paper's
// PScan method), producing the membership vector without atoms at all.
type PScan struct {
	D   *bdd.DD
	IDs []int32   // global predicate IDs
	Ref []bdd.Ref // parallel BDD refs
	// capBits sizes the produced bitsets (max predicate ID + 1).
	CapBits int
}

// NewPScan assembles a PScan from a registry-style ID→ref mapping.
func NewPScan(d *bdd.DD, ids []int32, refs []bdd.Ref, capBits int) *PScan {
	return &PScan{D: d, IDs: ids, Ref: refs, CapBits: capBits}
}

// Member evaluates all predicates on the packet.
func (p *PScan) Member(pkt []byte) predicate.Bitset {
	m := predicate.NewBitset(p.CapBits)
	for i, id := range p.IDs {
		if p.D.EvalBits(p.Ref[i], pkt) {
			m.Set(int(id), true)
		}
	}
	return m
}

// FwdSim is the Forwarding Simulation method: at each box, the packet is
// checked against the box's predicates linearly (BDD evaluation per port)
// to find the output port, then the next box is visited, and so on.
type FwdSim struct {
	D   *bdd.DD
	Net *network.Network
	// Ref maps a predicate ID to its BDD.
	Ref func(id int32) bdd.Ref
	// IsLive reports tombstones (nil = all live).
	IsLive func(id int32) bool
}

// SimResult mirrors network.Behavior's essentials plus the work metric.
type SimResult struct {
	Delivered []string
	DropBoxes []int
	Looped    bool
	// PredChecks counts BDD evaluations performed — the paper reports
	// 96.8 (Internet2) and 232 (Stanford) predicates checked per packet
	// on average, versus 10.6 / 16.8 for the AP Tree.
	PredChecks int
}

// Delivered reports whether any branch reached the named host (any if "").
func (r *SimResult) DeliveredTo(name string) bool {
	for _, h := range r.Delivered {
		if name == "" || h == name {
			return true
		}
	}
	return false
}

func (s *FwdSim) live(id int32) bool {
	return s.IsLive == nil || s.IsLive(id)
}

// Behavior computes the packet's forwarding behavior by per-box linear
// predicate evaluation.
func (s *FwdSim) Behavior(ingress int, pkt []byte) SimResult {
	var res SimResult
	visited := make(map[int]bool)
	queue := []int{ingress}
	for len(queue) > 0 {
		bi := queue[0]
		queue = queue[1:]
		if visited[bi] {
			res.Looped = true
			continue
		}
		visited[bi] = true
		box := s.Net.Boxes[bi]

		if box.InACL != network.NoPred && s.live(box.InACL) {
			res.PredChecks++
			if !s.D.EvalBits(s.Ref(box.InACL), pkt) {
				res.DropBoxes = append(res.DropBoxes, bi)
				continue
			}
		}
		forwarded := false
		for pi := range box.Ports {
			port := &box.Ports[pi]
			if port.Fwd == network.NoPred || !s.live(port.Fwd) {
				continue
			}
			res.PredChecks++
			if !s.D.EvalBits(s.Ref(port.Fwd), pkt) {
				continue
			}
			if port.OutACL != network.NoPred && s.live(port.OutACL) {
				res.PredChecks++
				if !s.D.EvalBits(s.Ref(port.OutACL), pkt) {
					res.DropBoxes = append(res.DropBoxes, bi)
					forwarded = true
					continue
				}
			}
			forwarded = true
			switch port.Peer.Kind {
			case network.DestHost:
				res.Delivered = append(res.Delivered, port.Peer.Host)
			case network.DestBox:
				queue = append(queue, port.Peer.Box)
			default:
				res.DropBoxes = append(res.DropBoxes, bi)
			}
		}
		if !forwarded {
			res.DropBoxes = append(res.DropBoxes, bi)
		}
	}
	return res
}

// ManagerEnv builds a FwdSim over a live classifier manager and topology.
// The manager's DD must not be swapped (no Reconstruct) while the FwdSim
// is in use; experiments use static snapshots.
func ManagerEnv(m *aptree.Manager, net *network.Network) *FwdSim {
	d := m.DD()
	return &FwdSim{
		D:      d,
		Net:    net,
		Ref:    func(id int32) bdd.Ref { return m.Ref(id) },
		IsLive: m.IsLive,
	}
}
