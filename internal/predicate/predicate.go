// Package predicate converts data-plane rule tables into BDD predicates and
// computes atomic predicates, following the algorithms of AP Verifier
// (Yang & Lam) that the AP Classifier paper builds on.
//
// A forwarding table with m output ports becomes m forwarding predicates
// (one per port: the set of packets the table sends to that port). An ACL
// becomes one permit predicate. The atomic predicates of the resulting
// predicate set are the coarsest partition of the header space such that
// every predicate is a union of partition blocks; packets in the same block
// have identical behavior at every box in the network.
package predicate

import (
	"fmt"

	"apclassifier/internal/bdd"
	"apclassifier/internal/header"
	"apclassifier/internal/rule"
)

// PrefixBDD returns the BDD for an IPv4 prefix constraint over the named
// 32-bit field of the layout.
func PrefixBDD(d *bdd.DD, layout *header.Layout, field string, p rule.Prefix) bdd.Ref {
	f := layout.MustField(field)
	if f.Width != 32 {
		panic(fmt.Sprintf("predicate: field %q is %d bits, prefixes need 32", field, f.Width))
	}
	return d.FromPrefix(f.Offset, uint64(p.Value), p.Length, 32)
}

// PortPredicates converts a longest-prefix-match forwarding table into one
// predicate per output port: preds[i] is true exactly for the packets the
// table forwards to port i. Packets matched by a Drop rule, or matched by
// no rule, belong to no port predicate.
//
// The conversion walks rules in decreasing prefix length, maintaining the
// BDD of already-shadowed packets, so each rule contributes only the
// packets it actually wins (the AP Verifier construction).
func PortPredicates(d *bdd.DD, layout *header.Layout, dstField string, t *rule.FwdTable, numPorts int) []bdd.Ref {
	preds := make([]bdd.Ref, numPorts)
	for i := range preds {
		preds[i] = bdd.False
	}
	shadow := bdd.False
	for _, ri := range t.ByDescendingLength() {
		r := t.Rules[ri]
		match := PrefixBDD(d, layout, dstField, r.Prefix)
		eff := d.Diff(match, shadow)
		if eff != bdd.False && r.Port != rule.Drop {
			if r.Port < 0 || r.Port >= numPorts {
				panic(fmt.Sprintf("predicate: rule port %d out of range [0,%d)", r.Port, numPorts))
			}
			preds[r.Port] = d.Or(preds[r.Port], eff)
		}
		shadow = d.Or(shadow, match)
		if shadow == bdd.True {
			break
		}
	}
	return preds
}

// PortPredicateDelta records the change to one port's forwarding predicate
// caused by a table mutation: the predicate went from Old to New. Ports whose
// predicate is unchanged are not reported.
type PortPredicateDelta struct {
	Port     int
	Old, New bdd.Ref
}

// DeltaPortPredicates recomputes port predicates after table mutations whose
// LPM cones are given, touching only the header region the cones cover. t is
// the table after the mutations; old yields the pre-mutation predicate of a
// port. The result lists every port whose predicate actually changed.
//
// The construction exploits that LPM is per-packet local: the winners inside
// the cone regions are determined by the rules overlapping those regions
// alone, so the shadow walk of PortPredicates is replayed with every match
// intersected with the region union, and each changed predicate is stitched
// as (old minus region) or (winners within region). Ports outside the cones'
// port sets are untouched by the rule.Cone contract and are never even read.
func DeltaPortPredicates(d *bdd.DD, layout *header.Layout, dstField string, t *rule.FwdTable, cones []rule.Cone, numPorts int, old func(port int) bdd.Ref) []PortPredicateDelta {
	// Candidate ports form an interval-coded set: cone port lists are
	// dense index runs, so the set stays a few intervals no matter how
	// many ports a batch touches.
	candidates := EmptyAtomSet
	for _, c := range cones {
		for _, p := range c.Ports {
			if p < 0 || p >= numPorts {
				panic(fmt.Sprintf("predicate: cone port %d out of range [0,%d)", p, numPorts))
			}
			candidates = candidates.Union(AtomRange(int32(p), int32(p)+1))
		}
	}
	if candidates.Empty() {
		return nil
	}
	region := bdd.False
	for _, c := range cones {
		region = d.Or(region, PrefixBDD(d, layout, dstField, c.Region))
	}
	within := make([]bdd.Ref, numPorts)
	for i := range within {
		within[i] = bdd.False
	}
	shadow := bdd.False
	for _, ri := range t.ByDescendingLength() {
		r := t.Rules[ri]
		overlaps := false
		for _, c := range cones {
			if r.Prefix.Overlaps(c.Region) {
				overlaps = true
				break
			}
		}
		if !overlaps {
			// match ∧ region would be False; skipping is exact.
			continue
		}
		match := d.And(PrefixBDD(d, layout, dstField, r.Prefix), region)
		eff := d.Diff(match, shadow)
		if eff != bdd.False && r.Port != rule.Drop {
			if r.Port < 0 || r.Port >= numPorts {
				panic(fmt.Sprintf("predicate: rule port %d out of range [0,%d)", r.Port, numPorts))
			}
			within[r.Port] = d.Or(within[r.Port], eff)
		}
		shadow = d.Or(shadow, match)
		if shadow == region {
			break
		}
	}
	var deltas []PortPredicateDelta
	candidates.Each(func(port int32) bool {
		prev := old(int(port))
		next := d.Or(d.Diff(prev, region), within[port])
		if next != prev {
			deltas = append(deltas, PortPredicateDelta{Port: int(port), Old: prev, New: next})
		}
		return true
	})
	return deltas
}

// Match5BDD returns the BDD of a 5-tuple match condition. The layout must
// contain every field the condition constrains non-trivially; a condition
// on a field the layout lacks panics, because it could not be represented
// faithfully.
func Match5BDD(d *bdd.DD, layout *header.Layout, m rule.Match5) bdd.Ref {
	r := bdd.True
	usePrefix := func(field string, p rule.Prefix) {
		if p.Length == 0 {
			return
		}
		r = d.And(r, PrefixBDD(d, layout, field, p))
	}
	usePrefix("srcIP", m.Src)
	usePrefix("dstIP", m.Dst)
	useRange := func(field string, pr rule.PortRange) {
		if pr == rule.AnyPort {
			return
		}
		f := layout.MustField(field)
		r = d.And(r, d.FromRange(f.Offset, uint64(pr.Lo), uint64(pr.Hi), f.Width))
	}
	useRange("srcPort", m.SrcPort)
	useRange("dstPort", m.DstPort)
	if m.Proto != rule.AnyProto {
		f := layout.MustField("proto")
		r = d.And(r, d.FromValue(f.Offset, uint64(m.Proto), f.Width))
	}
	return r
}

// ACLPredicate converts a first-match ACL into its permit predicate: the
// set of packets the ACL allows through.
func ACLPredicate(d *bdd.DD, layout *header.Layout, a *rule.ACL) bdd.Ref {
	permit := bdd.False
	shadow := bdd.False
	for _, r := range a.Rules {
		match := Match5BDD(d, layout, r.Match)
		eff := d.Diff(match, shadow)
		if eff != bdd.False && r.Action == rule.Permit {
			permit = d.Or(permit, eff)
		}
		shadow = d.Or(shadow, match)
		if shadow == bdd.True {
			break
		}
	}
	if a.Default == rule.Permit {
		permit = d.Or(permit, d.Not(shadow))
	}
	return permit
}
