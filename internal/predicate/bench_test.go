package predicate

import (
	"math/rand"
	"testing"

	"apclassifier/internal/bdd"
	"apclassifier/internal/header"
	"apclassifier/internal/rule"
)

func benchTable(n int, rng *rand.Rand) *rule.FwdTable {
	var tbl rule.FwdTable
	for i := 0; i < n; i++ {
		tbl.Add(rule.FwdRule{
			Prefix: rule.P(rng.Uint32(), 8+rng.Intn(17)),
			Port:   rng.Intn(8),
		})
	}
	return &tbl
}

func BenchmarkPortPredicates1k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tbl := benchTable(1000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := bdd.New(32)
		PortPredicates(d, header.IPv4Dst, "dstIP", tbl, 8)
	}
}

func BenchmarkComputeAtoms(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	d := bdd.New(32)
	var preds []bdd.Ref
	for i := 0; i < 128; i++ {
		preds = append(preds, d.Retain(d.FromPrefix(0, uint64(rng.Uint32()), 8+rng.Intn(13), 32)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(d, preds)
	}
}

func BenchmarkACLPredicate(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	acl := &rule.ACL{Default: rule.Permit}
	for i := 0; i < 64; i++ {
		m := rule.MatchAll()
		m.Dst = rule.P(rng.Uint32(), 8+8*rng.Intn(3))
		m.Src = rule.P(rng.Uint32(), 8*rng.Intn(3))
		if i%3 == 0 {
			m.Proto = 6
			m.DstPort = rule.R(80, 80)
		}
		acl.Rules = append(acl.Rules, rule.ACLRule{Match: m, Action: rule.Action(i%4 == 0)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := bdd.New(header.FiveTuple.Bits())
		ACLPredicate(d, header.FiveTuple, acl)
	}
}

func BenchmarkClassifyLinear(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	d := bdd.New(32)
	var preds []bdd.Ref
	for i := 0; i < 64; i++ {
		preds = append(preds, d.FromPrefix(0, uint64(rng.Uint32()), 8+rng.Intn(13), 32))
	}
	atoms := Compute(d, preds)
	b.ReportMetric(float64(atoms.N()), "atoms")
	pkt := make([]byte, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng.Read(pkt)
		atoms.ClassifyLinear(pkt)
	}
}
