package predicate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"apclassifier/internal/bdd"
	"apclassifier/internal/header"
	"apclassifier/internal/rule"
)

func ipPacket(ip uint32) []byte {
	p := header.IPv4Dst.NewPacket()
	header.IPv4Dst.Set(p, "dstIP", uint64(ip))
	return p
}

func fiveTuplePacket(f rule.Fields) []byte {
	p := header.FiveTuple.NewPacket()
	header.FiveTuple.Set(p, "srcIP", uint64(f.Src))
	header.FiveTuple.Set(p, "dstIP", uint64(f.Dst))
	header.FiveTuple.Set(p, "srcPort", uint64(f.SrcPort))
	header.FiveTuple.Set(p, "dstPort", uint64(f.DstPort))
	header.FiveTuple.Set(p, "proto", uint64(f.Proto))
	return p
}

func TestPrefixBDD(t *testing.T) {
	d := bdd.New(header.IPv4Dst.Bits())
	f := PrefixBDD(d, header.IPv4Dst, "dstIP", rule.P(0x0A000000, 8))
	if !d.EvalBits(f, ipPacket(0x0A123456)) {
		t.Fatal("inside prefix must match")
	}
	if d.EvalBits(f, ipPacket(0x0B123456)) {
		t.Fatal("outside prefix must not match")
	}
}

func TestPortPredicatesBasic(t *testing.T) {
	d := bdd.New(32)
	var tbl rule.FwdTable
	tbl.Add(rule.FwdRule{Prefix: rule.P(0, 0), Port: 0})
	tbl.Add(rule.FwdRule{Prefix: rule.P(0x0A000000, 8), Port: 1})
	tbl.Add(rule.FwdRule{Prefix: rule.P(0x0A0B0000, 16), Port: 2})
	tbl.Add(rule.FwdRule{Prefix: rule.P(0x0A0C0000, 16), Port: rule.Drop})
	preds := PortPredicates(d, header.IPv4Dst, "dstIP", &tbl, 3)

	cases := []struct {
		ip   uint32
		port int // -1 = no port predicate should match
	}{
		{0xC0000001, 0},
		{0x0A000001, 1},
		{0x0A0B0001, 2},
		{0x0A0C0001, -1}, // shadowed by drop rule
	}
	for _, c := range cases {
		pkt := ipPacket(c.ip)
		for port, p := range preds {
			want := port == c.port
			if got := d.EvalBits(p, pkt); got != want {
				t.Errorf("ip %08x port %d: got %v want %v", c.ip, port, got, want)
			}
		}
	}
}

func TestPortPredicatesAreDisjointAndMatchLookup(t *testing.T) {
	const numPorts = 6
	rng := rand.New(rand.NewSource(9))
	d := bdd.New(32)
	var tbl rule.FwdTable
	// Random table with clustered prefixes so shadowing actually occurs.
	for i := 0; i < 300; i++ {
		length := []int{0, 8, 12, 16, 20, 24, 28, 32}[rng.Intn(8)]
		base := uint32(rng.Intn(4)) << 28 // cluster in 4 blocks
		tbl.Add(rule.FwdRule{
			Prefix: rule.P(base|rng.Uint32()>>4, length),
			Port:   rng.Intn(numPorts+1) - 1, // includes Drop
		})
	}
	preds := PortPredicates(d, header.IPv4Dst, "dstIP", &tbl, numPorts)

	// Pairwise disjoint: a packet is forwarded to at most one port.
	for i := 0; i < numPorts; i++ {
		for j := i + 1; j < numPorts; j++ {
			if !d.Disjoint(preds[i], preds[j]) {
				t.Fatalf("port predicates %d and %d overlap", i, j)
			}
		}
	}

	// Semantics: predicate membership == LPM lookup result.
	err := quick.Check(func(ip uint32) bool {
		pkt := ipPacket(ip)
		wantPort, ok := tbl.Lookup(ip)
		for port, p := range preds {
			got := d.EvalBits(p, pkt)
			want := ok && port == wantPort
			if got != want {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMatch5BDDAgainstGroundTruth(t *testing.T) {
	d := bdd.New(header.FiveTuple.Bits())
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		m := randomMatch5(rng)
		f := Match5BDD(d, header.FiveTuple, m)
		for probe := 0; probe < 60; probe++ {
			fl := randomFieldsNear(rng, m)
			got := d.EvalBits(f, fiveTuplePacket(fl))
			if got != m.Matches(fl) {
				t.Fatalf("trial %d: match mismatch for %+v vs %+v", trial, m, fl)
			}
		}
	}
}

func randomMatch5(rng *rand.Rand) rule.Match5 {
	m := rule.MatchAll()
	if rng.Intn(2) == 0 {
		m.Src = rule.P(rng.Uint32(), 8*rng.Intn(5))
	}
	if rng.Intn(2) == 0 {
		m.Dst = rule.P(rng.Uint32(), 8*rng.Intn(5))
	}
	if rng.Intn(2) == 0 {
		lo := uint16(rng.Intn(60000))
		m.DstPort = rule.R(lo, lo+uint16(rng.Intn(5000)))
	}
	if rng.Intn(2) == 0 {
		m.Proto = []int{6, 17, 1}[rng.Intn(3)]
	}
	return m
}

// randomFieldsNear biases probes toward the match condition so both
// outcomes are exercised.
func randomFieldsNear(rng *rand.Rand, m rule.Match5) rule.Fields {
	f := rule.Fields{
		Src: rng.Uint32(), Dst: rng.Uint32(),
		SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
		Proto: uint8(rng.Intn(256)),
	}
	if rng.Intn(2) == 0 {
		f.Src = m.Src.Value | rng.Uint32()&^maskOf(m.Src.Length)
	}
	if rng.Intn(2) == 0 {
		f.Dst = m.Dst.Value | rng.Uint32()&^maskOf(m.Dst.Length)
	}
	if rng.Intn(2) == 0 && m.DstPort.Hi >= m.DstPort.Lo {
		f.DstPort = m.DstPort.Lo + uint16(rng.Intn(int(m.DstPort.Hi-m.DstPort.Lo)+1))
	}
	if rng.Intn(2) == 0 && m.Proto != rule.AnyProto {
		f.Proto = uint8(m.Proto)
	}
	return f
}

func maskOf(length int) uint32 {
	if length == 0 {
		return 0
	}
	return ^uint32(0) << uint(32-length)
}

func TestACLPredicateFirstMatch(t *testing.T) {
	d := bdd.New(header.FiveTuple.Bits())
	acl := &rule.ACL{
		Rules: []rule.ACLRule{
			{Match: rule.Match5{Src: rule.P(0x0A000000, 8), SrcPort: rule.AnyPort, DstPort: rule.AnyPort, Proto: rule.AnyProto}, Action: rule.Deny},
			{Match: rule.Match5{Src: rule.P(0x0A0B0000, 16), SrcPort: rule.AnyPort, DstPort: rule.AnyPort, Proto: rule.AnyProto}, Action: rule.Permit},
			{Match: rule.MatchAll(), Action: rule.Permit},
		},
		Default: rule.Deny,
	}
	p := ACLPredicate(d, header.FiveTuple, acl)
	// The shadowed permit must not leak through the earlier deny.
	if d.EvalBits(p, fiveTuplePacket(rule.Fields{Src: 0x0A0B0001})) {
		t.Fatal("shadowed permit leaked")
	}
	if !d.EvalBits(p, fiveTuplePacket(rule.Fields{Src: 0x0B000001})) {
		t.Fatal("catch-all permit missing")
	}
}

func TestACLPredicateQuick(t *testing.T) {
	d := bdd.New(header.FiveTuple.Bits())
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		acl := &rule.ACL{Default: rule.Action(rng.Intn(2) == 0)}
		for i := 0; i < 20; i++ {
			acl.Rules = append(acl.Rules, rule.ACLRule{
				Match:  randomMatch5(rng),
				Action: rule.Action(rng.Intn(2) == 0),
			})
		}
		p := ACLPredicate(d, header.FiveTuple, acl)
		for probe := 0; probe < 200; probe++ {
			fl := randomFieldsNear(rng, acl.Rules[rng.Intn(len(acl.Rules))].Match)
			if d.EvalBits(p, fiveTuplePacket(fl)) != acl.Allows(fl) {
				t.Fatalf("trial %d: ACL predicate disagrees with Allows for %+v", trial, fl)
			}
		}
	}
}

func TestAtomsSimple(t *testing.T) {
	// The paper's Fig. 1: three overlapping predicates give five atoms.
	d := bdd.New(8)
	p1 := d.FromPrefix(0, 0b00000000, 2, 8)                                          // 00******
	p2 := d.Or(d.FromPrefix(0, 0b01000000, 2, 8), d.FromPrefix(0, 0b10000000, 2, 8)) // 01|10
	p3 := d.Or(d.FromPrefix(0, 0b10000000, 2, 8), d.FromPrefix(0, 0b11000000, 3, 8)) // 10|110
	preds := []bdd.Ref{p1, p2, p3}
	a := Compute(d, preds)
	if err := a.Verify(preds); err != nil {
		t.Fatal(err)
	}
	// p1 disjoint from p2,p3; p2∧p3 = 10******; expect atoms:
	// p1, p2∧¬p3 (01), p2∧p3 (10), ¬p1∧¬p2∧p3 (110), rest (111) → 5 atoms.
	if a.N() != 5 {
		t.Fatalf("atom count = %d, want 5", a.N())
	}
}

func TestAtomsVerifyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	d := bdd.New(16)
	var preds []bdd.Ref
	for i := 0; i < 25; i++ {
		preds = append(preds, d.FromPrefix(0, uint64(rng.Uint32()>>16), rng.Intn(9), 16))
	}
	a := Compute(d, preds)
	if err := a.Verify(preds); err != nil {
		t.Fatal(err)
	}
	if a.N() < 2 {
		t.Fatalf("expected multiple atoms, got %d", a.N())
	}
}

func TestAtomsMembershipMatchesImplication(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	d := bdd.New(16)
	var preds []bdd.Ref
	for i := 0; i < 15; i++ {
		preds = append(preds, d.FromPrefix(0, uint64(rng.Uint32()>>16), rng.Intn(10), 16))
	}
	a := Compute(d, preds)
	for i, atom := range a.List {
		for j, p := range preds {
			implies := d.Implies(atom, p)
			disjoint := d.Disjoint(atom, p)
			if !implies && !disjoint {
				t.Fatalf("atom %d straddles predicate %d — not atomic", i, j)
			}
			if a.Member[i].Get(j) != implies {
				t.Fatalf("membership bit (%d,%d) = %v, implication = %v", i, j, a.Member[i].Get(j), implies)
			}
		}
	}
}

func TestRSets(t *testing.T) {
	d := bdd.New(8)
	p1 := d.FromPrefix(0, 0b00000000, 1, 8)
	p2 := d.FromPrefix(0, 0b00000000, 2, 8) // subset of p1
	preds := []bdd.Ref{p1, p2}
	a := Compute(d, preds)
	rs := a.RSets()
	if len(rs) != 2 {
		t.Fatalf("RSets length %d", len(rs))
	}
	// R(p2) ⊂ R(p1) since p2 ⇒ p1.
	in := func(set []int32, x int32) bool {
		for _, v := range set {
			if v == x {
				return true
			}
		}
		return false
	}
	for _, atom := range rs[1] {
		if !in(rs[0], atom) {
			t.Fatalf("atom %d in R(p2) but not R(p1)", atom)
		}
	}
	if len(rs[1]) >= len(rs[0]) {
		t.Fatalf("|R(p2)|=%d should be < |R(p1)|=%d", len(rs[1]), len(rs[0]))
	}
	// Rebuild each predicate from its atom set.
	for j, p := range preds {
		or := bdd.False
		for _, atom := range rs[j] {
			or = d.Or(or, a.List[atom])
		}
		if or != p {
			t.Fatalf("predicate %d != disjunction of R set", j)
		}
	}
}

func TestClassifyLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d := bdd.New(16)
	var preds []bdd.Ref
	for i := 0; i < 12; i++ {
		preds = append(preds, d.FromPrefix(0, uint64(rng.Uint32()>>16), 1+rng.Intn(8), 16))
	}
	a := Compute(d, preds)
	for trial := 0; trial < 500; trial++ {
		pkt := []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
		id := a.ClassifyLinear(pkt)
		if id < 0 {
			t.Fatal("every packet belongs to exactly one atom")
		}
		// Exactly one atom matches.
		count := 0
		for _, atom := range a.List {
			if d.EvalBits(atom, pkt) {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("packet matched %d atoms", count)
		}
	}
}

func TestSamplePacket(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	d := bdd.New(16)
	preds := []bdd.Ref{
		d.FromPrefix(0, 0xAB00, 8, 16),
		d.FromPrefix(0, 0xAB40, 10, 16),
		d.FromRange(0, 100, 20000, 16),
	}
	a := Compute(d, preds)
	for i := range a.List {
		for k := 0; k < 20; k++ {
			pkt := a.SamplePacket(i, 2, rng)
			if got := a.ClassifyLinear(pkt); got != i {
				t.Fatalf("sampled packet for atom %d classified as %d", i, got)
			}
		}
	}
}

func TestBitset(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 63, 64, 127, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d should start clear", i)
		}
		b.Set(i, true)
		if !b.Get(i) {
			t.Fatalf("bit %d should be set", i)
		}
	}
	b.Set(64, false)
	if b.Get(64) || !b.Get(63) || !b.Get(127) {
		t.Fatal("Set(false) must only clear its own bit")
	}
	c := b.Clone(200)
	c.Set(0, false)
	if !b.Get(0) {
		t.Fatal("Clone must not alias")
	}
	if !c.Get(127) {
		t.Fatal("Clone must preserve bits")
	}
}

func TestSingleAtomWhenNoPredicates(t *testing.T) {
	d := bdd.New(8)
	a := Compute(d, nil)
	if a.N() != 1 || a.List[0] != bdd.True {
		t.Fatalf("no predicates → single atom True, got %d atoms", a.N())
	}
}

func TestDuplicatePredicatesDoNotSplit(t *testing.T) {
	d := bdd.New(8)
	p := d.FromPrefix(0, 0x80, 1, 8)
	a := Compute(d, []bdd.Ref{p, p, p})
	if a.N() != 2 {
		t.Fatalf("duplicated predicate must still yield 2 atoms, got %d", a.N())
	}
	if err := a.Verify([]bdd.Ref{p, p, p}); err != nil {
		t.Fatal(err)
	}
}
