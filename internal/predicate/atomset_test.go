package predicate

import (
	"math/rand"
	"sort"
	"testing"
)

// modelSet is the reference model for AtomSet: a plain map of IDs. Every
// AtomSet operation must agree with the corresponding map operation.
type modelSet map[int32]bool

func modelOf(s AtomSet) modelSet {
	m := modelSet{}
	s.Each(func(id int32) bool { m[id] = true; return true })
	return m
}

func (m modelSet) toAtomSet() AtomSet {
	ids := make([]int32, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return AtomSetFromSorted(ids)
}

func (m modelSet) union(o modelSet) modelSet {
	r := modelSet{}
	for id := range m {
		r[id] = true
	}
	for id := range o {
		r[id] = true
	}
	return r
}

func (m modelSet) intersect(o modelSet) modelSet {
	r := modelSet{}
	for id := range m {
		if o[id] {
			r[id] = true
		}
	}
	return r
}

func (m modelSet) diff(o modelSet) modelSet {
	r := modelSet{}
	for id := range m {
		if !o[id] {
			r[id] = true
		}
	}
	return r
}

func randomModel(rng *rand.Rand, bound int32) modelSet {
	m := modelSet{}
	// Mix of runs and singletons so run-boundary logic is exercised.
	for n := rng.Intn(6); n > 0; n-- {
		lo := rng.Int31n(bound)
		hi := lo + 1 + rng.Int31n(8)
		if hi > bound {
			hi = bound
		}
		for id := lo; id < hi; id++ {
			m[id] = true
		}
	}
	for n := rng.Intn(8); n > 0; n-- {
		m[rng.Int31n(bound)] = true
	}
	return m
}

func checkAgainstModel(t *testing.T, s AtomSet, m modelSet) {
	t.Helper()
	if s.Len() != len(m) {
		t.Fatalf("Len=%d model=%d (%v)", s.Len(), len(m), s)
	}
	if !s.Equal(m.toAtomSet()) {
		t.Fatalf("set %v differs from model %v", s, m.toAtomSet())
	}
	if s.Empty() != (len(m) == 0) {
		t.Fatalf("Empty=%v model size %d", s.Empty(), len(m))
	}
}

func TestAtomSetAgainstModel(t *testing.T) {
	const bound = 64
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 2000; trial++ {
		ma, mb := randomModel(rng, bound), randomModel(rng, bound)
		a, b := ma.toAtomSet(), mb.toAtomSet()
		checkAgainstModel(t, a, ma)
		checkAgainstModel(t, a.Union(b), ma.union(mb))
		checkAgainstModel(t, a.Intersect(b), ma.intersect(mb))
		checkAgainstModel(t, a.Diff(b), ma.diff(mb))
		checkAgainstModel(t, a.Complement(bound), modelSet(func() modelSet {
			r := modelSet{}
			for id := int32(0); id < bound; id++ {
				if !ma[id] {
					r[id] = true
				}
			}
			return r
		}()))
		if got, want := a.IntersectLen(b), len(ma.intersect(mb)); got != want {
			t.Fatalf("IntersectLen=%d want %d", got, want)
		}
		if got, want := a.Intersects(b), len(ma.intersect(mb)) > 0; got != want {
			t.Fatalf("Intersects=%v want %v", got, want)
		}
		for id := int32(0); id < bound; id++ {
			if a.Contains(id) != ma[id] {
				t.Fatalf("Contains(%d)=%v model %v in %v", id, a.Contains(id), ma[id], a)
			}
		}
		// Round-trips.
		if !AtomSetOf(a.Slice()...).Equal(a) {
			t.Fatalf("Slice/Of round-trip broke %v", a)
		}
		if !modelOf(a).toAtomSet().Equal(a) {
			t.Fatalf("Each round-trip broke %v", a)
		}
	}
}

func TestAtomSetAlgebraicLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const bound = 96
	for trial := 0; trial < 500; trial++ {
		a := randomModel(rng, bound).toAtomSet()
		b := randomModel(rng, bound).toAtomSet()
		c := randomModel(rng, bound).toAtomSet()
		if !a.Union(b).Equal(b.Union(a)) || !a.Intersect(b).Equal(b.Intersect(a)) {
			t.Fatal("commutativity")
		}
		if !a.Union(b).Union(c).Equal(a.Union(b.Union(c))) {
			t.Fatal("associativity")
		}
		// De Morgan within the bound.
		lhs := a.Union(b).Complement(bound)
		rhs := a.Complement(bound).Intersect(b.Complement(bound))
		if !lhs.Equal(rhs) {
			t.Fatal("De Morgan")
		}
		// A \ B = A ∩ Bᶜ.
		if !a.Diff(b).Equal(a.Intersect(b.Complement(bound))) {
			t.Fatal("diff law")
		}
		// Runs are canonical: sorted, non-empty, non-adjacent.
		u := a.Union(b)
		prev := int32(-1)
		ok := true
		u.EachRun(func(lo, hi int32) bool {
			if lo >= hi || lo <= prev {
				ok = false
				return false
			}
			prev = hi
			return true
		})
		if !ok {
			t.Fatalf("non-canonical runs in %v", u)
		}
	}
}

func TestAtomSetBuilderPanicsOutOfOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("builder must reject out-of-order IDs")
		}
	}()
	var b AtomSetBuilder
	b.Add(5)
	b.Add(5)
}

// decodeOps turns fuzz bytes into a deterministic op sequence, pairing
// every AtomSet with a model map and checking agreement after each step.
func atomSetFuzzBody(t *testing.T, data []byte) {
	const bound = 48
	set, model := EmptyAtomSet, modelSet{}
	other, otherModel := EmptyAtomSet, modelSet{}
	for i := 0; i+1 < len(data); i += 2 {
		op, arg := data[i]%6, int32(data[i+1])%bound
		switch op {
		case 0: // union a single id
			set = set.Union(AtomSetOf(arg))
			model[arg] = true
		case 1: // union a short range
			hi := arg + 1 + int32(data[i]>>4)%6
			if hi > bound {
				hi = bound
			}
			set = set.Union(AtomRange(arg, hi))
			for id := arg; id < hi; id++ {
				model[id] = true
			}
		case 2: // remove a single id
			set = set.Diff(AtomSetOf(arg))
			delete(model, arg)
		case 3: // intersect with the other set
			set = set.Intersect(other)
			model = model.intersect(otherModel)
		case 4: // complement within bound
			set = set.Complement(bound)
			m := modelSet{}
			for id := int32(0); id < bound; id++ {
				if !model[id] {
					m[id] = true
				}
			}
			model = m
		case 5: // swap the two sets
			set, other = other, set
			model, otherModel = otherModel, model
		}
		if set.Len() != len(model) || !set.Equal(model.toAtomSet()) {
			t.Fatalf("op %d diverged: %v vs model %v", op, set, model.toAtomSet())
		}
	}
}

func FuzzAtomSet(f *testing.F) {
	f.Add([]byte{0, 3, 1, 7, 2, 3, 4, 0})
	f.Add([]byte{1, 40, 1, 2, 3, 0, 5, 0, 3, 9})
	f.Add([]byte{4, 0, 2, 17, 0, 47, 1, 46})
	f.Fuzz(atomSetFuzzBody)
}

// --- Benchmarks: interval-coded AtomSet vs the slice and map encodings it
// replaced. The workload mirrors the AP-tree builder: R(p) sets are a few
// contiguous runs over thousands of atoms.

func benchSets(runs, runLen, stride int32) (AtomSet, AtomSet) {
	var a, b AtomSetBuilder
	for r := int32(0); r < runs; r++ {
		a.AddRange(r*stride, r*stride+runLen)
		b.AddRange(r*stride+runLen/2, r*stride+runLen/2+runLen)
	}
	return a.Set(), b.Set()
}

func BenchmarkAtomSetIntersect(b *testing.B) {
	x, y := benchSets(64, 24, 48) // ~1.5k elements in 64 runs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Intersect(y)
	}
}

func BenchmarkSliceIntersect(b *testing.B) {
	x, y := benchSets(64, 24, 48)
	xs, ys := x.Slice(), y.Slice()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := make([]int32, 0, len(xs))
		j := 0
		for _, v := range xs {
			for j < len(ys) && ys[j] < v {
				j++
			}
			if j < len(ys) && ys[j] == v {
				out = append(out, v)
			}
		}
		_ = out
	}
}

func BenchmarkMapIntersect(b *testing.B) {
	x, y := benchSets(64, 24, 48)
	xm, ym := modelOf(x), modelOf(y)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := make(modelSet, len(xm))
		for v := range xm {
			if ym[v] {
				out[v] = true
			}
		}
		_ = out
	}
}

func BenchmarkAtomSetUnion(b *testing.B) {
	x, y := benchSets(64, 24, 48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Union(y)
	}
}

func BenchmarkSliceUnion(b *testing.B) {
	x, y := benchSets(64, 24, 48)
	xs, ys := x.Slice(), y.Slice()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := make([]int32, 0, len(xs)+len(ys))
		j, k := 0, 0
		for j < len(xs) && k < len(ys) {
			switch {
			case xs[j] < ys[k]:
				out = append(out, xs[j])
				j++
			case xs[j] > ys[k]:
				out = append(out, ys[k])
				k++
			default:
				out = append(out, xs[j])
				j, k = j+1, k+1
			}
		}
		out = append(out, xs[j:]...)
		out = append(out, ys[k:]...)
		_ = out
	}
}

func BenchmarkAtomSetContains(b *testing.B) {
	x, _ := benchSets(64, 24, 48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Contains(int32(i) % 3072)
	}
}
