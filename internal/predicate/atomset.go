package predicate

import (
	"fmt"
	"strings"
)

// AtomSet is an interval-coded set of atom IDs: sorted, merged [lo, hi)
// runs stored as a flat pair array. It is the "field of sets"
// representation of R(p) — the atoms whose disjunction is a predicate —
// and of every derived atom set the AP Tree builder and the verification
// engine manipulate.
//
// The representation pays off because refinement allocates split-off
// atoms adjacent to their parents (see ComputeMapped): the atoms of one
// predicate then occupy a handful of contiguous ID runs regardless of how
// many atoms the predicate covers, so union/intersection/complement run
// in time proportional to the run counts, not the element counts.
//
// An AtomSet value is immutable once built; all operations return new
// sets. The zero value is the empty set.
type AtomSet struct {
	// runs holds [lo0, hi0, lo1, hi1, ...] with lo < hi, hi_k < lo_{k+1}
	// (adjacent runs are merged), ascending.
	runs []int32
}

// EmptyAtomSet is the empty set (also the zero value).
var EmptyAtomSet = AtomSet{}

// AtomRange returns the set [lo, hi). An empty range yields the empty set.
func AtomRange(lo, hi int32) AtomSet {
	if lo >= hi {
		return AtomSet{}
	}
	return AtomSet{runs: []int32{lo, hi}}
}

// AtomSetOf builds a set from arbitrary IDs (deduplicated, any order).
func AtomSetOf(ids ...int32) AtomSet {
	var b AtomSetBuilder
	// Insertion sort keeps this allocation-light; argument lists are short.
	sorted := append([]int32(nil), ids...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for i, id := range sorted {
		if i > 0 && id == sorted[i-1] {
			continue
		}
		b.Add(id)
	}
	return b.Set()
}

// AtomSetFromSorted builds a set from a strictly ascending ID slice.
func AtomSetFromSorted(ids []int32) AtomSet {
	var b AtomSetBuilder
	for _, id := range ids {
		b.Add(id)
	}
	return b.Set()
}

// AtomSetBuilder accumulates ascending IDs into merged runs.
type AtomSetBuilder struct {
	runs []int32
}

// Add appends id, which must be strictly greater than every ID added so
// far; consecutive IDs extend the current run.
func (b *AtomSetBuilder) Add(id int32) {
	if n := len(b.runs); n > 0 {
		if id < b.runs[n-1] {
			panic(fmt.Sprintf("predicate: AtomSetBuilder.Add out of order: %d after [.., %d)", id, b.runs[n-1]))
		}
		if id == b.runs[n-1] {
			b.runs[n-1] = id + 1
			return
		}
	}
	b.runs = append(b.runs, id, id+1)
}

// AddRange appends [lo, hi), which must start at or after the current
// frontier.
func (b *AtomSetBuilder) AddRange(lo, hi int32) {
	if lo >= hi {
		return
	}
	if n := len(b.runs); n > 0 {
		if lo < b.runs[n-1] {
			panic(fmt.Sprintf("predicate: AtomSetBuilder.AddRange out of order: [%d,%d) after [.., %d)", lo, hi, b.runs[n-1]))
		}
		if lo == b.runs[n-1] {
			b.runs[n-1] = hi
			return
		}
	}
	b.runs = append(b.runs, lo, hi)
}

// Set returns the accumulated set; the builder must not be reused after.
func (b *AtomSetBuilder) Set() AtomSet { return AtomSet{runs: b.runs} }

// Empty reports whether the set has no elements.
func (s AtomSet) Empty() bool { return len(s.runs) == 0 }

// Len returns the number of elements.
func (s AtomSet) Len() int {
	n := 0
	for i := 0; i < len(s.runs); i += 2 {
		n += int(s.runs[i+1] - s.runs[i])
	}
	return n
}

// NumRuns returns the number of [lo, hi) intervals — the quantity every
// set operation's cost is proportional to.
func (s AtomSet) NumRuns() int { return len(s.runs) / 2 }

// Min returns the smallest element; it panics on the empty set.
func (s AtomSet) Min() int32 {
	if len(s.runs) == 0 {
		panic("predicate: Min of empty AtomSet")
	}
	return s.runs[0]
}

// Max returns the largest element; it panics on the empty set.
func (s AtomSet) Max() int32 {
	if len(s.runs) == 0 {
		panic("predicate: Max of empty AtomSet")
	}
	return s.runs[len(s.runs)-1] - 1
}

// Contains reports whether id is an element. Binary search over runs.
func (s AtomSet) Contains(id int32) bool {
	lo, hi := 0, s.NumRuns()
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case id < s.runs[2*mid]:
			hi = mid
		case id >= s.runs[2*mid+1]:
			lo = mid + 1
		default:
			return true
		}
	}
	return false
}

// Each calls fn on every element in ascending order until fn returns
// false.
func (s AtomSet) Each(fn func(id int32) bool) {
	for i := 0; i < len(s.runs); i += 2 {
		for id := s.runs[i]; id < s.runs[i+1]; id++ {
			if !fn(id) {
				return
			}
		}
	}
}

// EachRun calls fn on every [lo, hi) run in ascending order until fn
// returns false.
func (s AtomSet) EachRun(fn func(lo, hi int32) bool) {
	for i := 0; i < len(s.runs); i += 2 {
		if !fn(s.runs[i], s.runs[i+1]) {
			return
		}
	}
}

// Slice expands the set into a sorted ID slice (nil for the empty set).
func (s AtomSet) Slice() []int32 {
	if len(s.runs) == 0 {
		return nil
	}
	out := make([]int32, 0, s.Len())
	s.Each(func(id int32) bool { out = append(out, id); return true })
	return out
}

// Equal reports set equality (run arrays are canonical, so this is a
// plain comparison).
func (s AtomSet) Equal(t AtomSet) bool {
	if len(s.runs) != len(t.runs) {
		return false
	}
	for i := range s.runs {
		if s.runs[i] != t.runs[i] {
			return false
		}
	}
	return true
}

// Union returns s ∪ t.
func (s AtomSet) Union(t AtomSet) AtomSet {
	if s.Empty() {
		return t
	}
	if t.Empty() {
		return s
	}
	var b AtomSetBuilder
	i, j := 0, 0
	for i < len(s.runs) || j < len(t.runs) {
		var lo, hi int32
		switch {
		case j >= len(t.runs) || (i < len(s.runs) && s.runs[i] <= t.runs[j]):
			lo, hi = s.runs[i], s.runs[i+1]
			i += 2
		default:
			lo, hi = t.runs[j], t.runs[j+1]
			j += 2
		}
		// Absorb every run overlapping or adjacent to [lo, hi).
		for {
			if i < len(s.runs) && s.runs[i] <= hi {
				if s.runs[i+1] > hi {
					hi = s.runs[i+1]
				}
				i += 2
				continue
			}
			if j < len(t.runs) && t.runs[j] <= hi {
				if t.runs[j+1] > hi {
					hi = t.runs[j+1]
				}
				j += 2
				continue
			}
			break
		}
		b.AddRange(lo, hi)
	}
	return b.Set()
}

// Intersect returns s ∩ t.
func (s AtomSet) Intersect(t AtomSet) AtomSet {
	var b AtomSetBuilder
	i, j := 0, 0
	for i < len(s.runs) && j < len(t.runs) {
		lo := s.runs[i]
		if t.runs[j] > lo {
			lo = t.runs[j]
		}
		hi := s.runs[i+1]
		if t.runs[j+1] < hi {
			hi = t.runs[j+1]
		}
		if lo < hi {
			b.AddRange(lo, hi)
		}
		if s.runs[i+1] <= t.runs[j+1] {
			i += 2
		} else {
			j += 2
		}
	}
	return b.Set()
}

// IntersectLen returns |s ∩ t| without allocating.
func (s AtomSet) IntersectLen(t AtomSet) int {
	n := 0
	i, j := 0, 0
	for i < len(s.runs) && j < len(t.runs) {
		lo := s.runs[i]
		if t.runs[j] > lo {
			lo = t.runs[j]
		}
		hi := s.runs[i+1]
		if t.runs[j+1] < hi {
			hi = t.runs[j+1]
		}
		if lo < hi {
			n += int(hi - lo)
		}
		if s.runs[i+1] <= t.runs[j+1] {
			i += 2
		} else {
			j += 2
		}
	}
	return n
}

// Intersects reports whether s ∩ t is non-empty, short-circuiting on the
// first overlapping run pair.
func (s AtomSet) Intersects(t AtomSet) bool {
	i, j := 0, 0
	for i < len(s.runs) && j < len(t.runs) {
		if s.runs[i] < t.runs[j+1] && t.runs[j] < s.runs[i+1] {
			return true
		}
		if s.runs[i+1] <= t.runs[j+1] {
			i += 2
		} else {
			j += 2
		}
	}
	return false
}

// Diff returns s ∖ t.
func (s AtomSet) Diff(t AtomSet) AtomSet {
	if s.Empty() || t.Empty() {
		return s
	}
	var b AtomSetBuilder
	j := 0
	for i := 0; i < len(s.runs); i += 2 {
		lo, hi := s.runs[i], s.runs[i+1]
		for j < len(t.runs) && t.runs[j+1] <= lo {
			j += 2
		}
		k := j
		for lo < hi {
			if k >= len(t.runs) || t.runs[k] >= hi {
				b.AddRange(lo, hi)
				break
			}
			if t.runs[k] > lo {
				b.AddRange(lo, t.runs[k])
			}
			if t.runs[k+1] > lo {
				lo = t.runs[k+1]
			}
			k += 2
		}
	}
	return b.Set()
}

// Complement returns [0, bound) ∖ s.
func (s AtomSet) Complement(bound int32) AtomSet {
	return AtomRange(0, bound).Diff(s)
}

// String renders the runs compactly, e.g. "{0-3, 7, 9-12}".
func (s AtomSet) String() string {
	if s.Empty() {
		return "{}"
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i < len(s.runs); i += 2 {
		if i > 0 {
			sb.WriteString(", ")
		}
		lo, hi := s.runs[i], s.runs[i+1]
		if hi == lo+1 {
			fmt.Fprintf(&sb, "%d", lo)
		} else {
			fmt.Fprintf(&sb, "%d-%d", lo, hi-1)
		}
	}
	sb.WriteByte('}')
	return sb.String()
}
