package predicate

import (
	"math/rand"
	"testing"

	"apclassifier/internal/bdd"
)

func TestAtomsAddPredicateIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	d := bdd.New(16)
	var preds []bdd.Ref
	for i := 0; i < 10; i++ {
		preds = append(preds, d.FromPrefix(0, uint64(rng.Uint32()>>16), 1+rng.Intn(8), 16))
	}
	// Incremental: start from 5 predicates and add the rest one by one.
	inc := Compute(d, preds[:5])
	for i := 5; i < 10; i++ {
		inc.AddPredicate(i, preds[i])
	}
	// Batch: compute all at once.
	batch := Compute(d, preds)

	// Same partition: same atom count and same atom BDD set.
	if inc.N() != batch.N() {
		t.Fatalf("incremental %d atoms, batch %d", inc.N(), batch.N())
	}
	batchSet := map[bdd.Ref]int{}
	for i, a := range batch.List {
		batchSet[a] = i
	}
	for i, a := range inc.List {
		j, ok := batchSet[a]
		if !ok {
			t.Fatalf("incremental atom %d missing from batch partition", i)
		}
		// Membership vectors must agree bit for bit.
		for p := 0; p < 10; p++ {
			if inc.Member[i].Get(p) != batch.Member[j].Get(p) {
				t.Fatalf("atom %d: membership bit %d differs", i, p)
			}
		}
	}
	if err := inc.Verify(preds); err != nil {
		t.Fatalf("incremental atom set invalid: %v", err)
	}
}

func TestAtomsAddPredicateGrowsMembership(t *testing.T) {
	d := bdd.New(8)
	a := Compute(d, []bdd.Ref{d.FromPrefix(0, 0x80, 1, 8)})
	// Adding with a sparse, larger ID must grow vectors safely.
	a.AddPredicate(7, d.FromPrefix(0, 0xC0, 2, 8))
	if a.NumPreds != 8 {
		t.Fatalf("NumPreds = %d, want 8", a.NumPreds)
	}
	for i := range a.List {
		want := d.Implies(a.List[i], d.FromPrefix(0, 0xC0, 2, 8))
		if a.Member[i].Get(7) != want {
			t.Fatalf("atom %d: bit 7 wrong", i)
		}
		// Bits 1..6 were never assigned and must read false.
		for p := 1; p < 7; p++ {
			if a.Member[i].Get(p) {
				t.Fatalf("atom %d: unassigned bit %d set", i, p)
			}
		}
	}
}

func TestAtomsAddDuplicatePredicate(t *testing.T) {
	d := bdd.New(8)
	p := d.FromPrefix(0, 0x80, 1, 8)
	a := Compute(d, []bdd.Ref{p})
	n := a.N()
	a.AddPredicate(1, p)
	if a.N() != n {
		t.Fatalf("duplicate predicate split atoms: %d -> %d", n, a.N())
	}
	for i := range a.List {
		if a.Member[i].Get(0) != a.Member[i].Get(1) {
			t.Fatal("duplicate predicates must have identical membership")
		}
	}
}
