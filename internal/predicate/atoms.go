package predicate

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"apclassifier/internal/bdd"
)

// Bitset is a fixed-capacity bit vector keyed by predicate ID. Atom
// membership vectors use it so that stage-2 behavior computation is a
// single bit test per predicate.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Get reports bit i. Indices past the vector's capacity read as clear:
// a membership vector sized for an older predicate-ID space answers
// "not a member" for predicates registered since, which is exactly the
// semantics persistent AP Tree snapshots need for shared leaves.
func (b Bitset) Get(i int) bool {
	if w := i >> 6; w < len(b) {
		return b[w]&(1<<uint(i&63)) != 0
	}
	return false
}

// Set sets bit i to v.
func (b Bitset) Set(i int, v bool) {
	if v {
		b[i>>6] |= 1 << uint(i&63)
	} else {
		b[i>>6] &^= 1 << uint(i&63)
	}
}

// Clone returns an independent copy, grown to capacity n bits if larger.
func (b Bitset) Clone(n int) Bitset {
	c := NewBitset(n)
	copy(c, b)
	return c
}

// Atoms is the set of atomic predicates of a predicate list, together with
// the membership matrix: which atoms make up each predicate.
type Atoms struct {
	D *bdd.DD
	// List holds the atomic predicate BDDs. They are pairwise disjoint and
	// their disjunction is True. Atom IDs are indices into List.
	List []bdd.Ref
	// Member[i] is atom i's membership vector: bit j is set iff atom i
	// implies predicate j (atom i ∈ R(p_j)).
	Member []Bitset
	// NumPreds is the number of predicates the membership vectors cover.
	NumPreds int
}

// Compute determines the atomic predicates of preds by iterative
// refinement: starting from the single block True, each predicate splits
// every block it straddles. Membership bits are recorded during the
// refinement so no implication checks are needed afterwards.
func Compute(d *bdd.DD, preds []bdd.Ref) *Atoms {
	ids := make([]int, len(preds))
	for i := range ids {
		ids[i] = i
	}
	return ComputeMapped(d, preds, ids, len(preds))
}

// ComputeMapped is Compute with an explicit predicate-ID mapping:
// membership bit ids[j] records implication of preds[j], and vectors are
// sized for capBits predicate IDs. The AP Classifier uses it to keep
// predicate IDs stable while tombstoned predicates are excluded from a
// rebuild.
func ComputeMapped(d *bdd.DD, preds []bdd.Ref, ids []int, capBits int) *Atoms {
	if len(ids) != len(preds) {
		panic("predicate: ids and preds length mismatch")
	}
	a := &Atoms{D: d, NumPreds: capBits}
	a.List = []bdd.Ref{bdd.True}
	a.Member = []Bitset{NewBitset(capBits)}
	for jj, p := range preds {
		j := ids[jj]
		n := len(a.List)
		for i := 0; i < n; i++ {
			atom := a.List[i]
			t := d.And(atom, p)
			switch t {
			case bdd.False:
				// Atom entirely outside p: bit j stays clear.
			case atom:
				// Atom entirely inside p.
				a.Member[i].Set(j, true)
			default:
				// Straddles: split into atom∧p and atom∧¬p. The ¬p half is
				// inserted adjacent to its parent (not appended at the end)
				// so that every R(p) stays a short list of contiguous ID
				// runs — the property interval-coded AtomSets exploit.
				f := d.Diff(atom, p)
				a.List[i] = t
				a.Member[i].Set(j, true)
				fm := a.Member[i].Clone(capBits)
				fm.Set(j, false)
				a.List = append(a.List, bdd.False)
				copy(a.List[i+2:], a.List[i+1:])
				a.List[i+1] = f
				a.Member = append(a.Member, nil)
				copy(a.Member[i+2:], a.Member[i+1:])
				a.Member[i+1] = fm
				n++
				i++ // the ¬p half cannot straddle p again
			}
		}
	}
	return a
}

// N reports the number of atomic predicates.
func (a *Atoms) N() int { return len(a.List) }

// R returns the sorted atom-ID set R(p_j): the atoms whose disjunction is
// predicate j.
func (a *Atoms) R(j int) []int32 {
	var r []int32
	for i, m := range a.Member {
		if m.Get(j) {
			r = append(r, int32(i))
		}
	}
	return r
}

// RSet returns R(p_j) as an interval-coded AtomSet. Because refinement
// inserts split-off atoms adjacent to their parents, the result is a
// handful of contiguous runs regardless of how many atoms p_j covers.
func (a *Atoms) RSet(j int) AtomSet {
	var b AtomSetBuilder
	for i, m := range a.Member {
		if m.Get(j) {
			b.Add(int32(i))
		}
	}
	return b.Set()
}

// RSets returns R(p_j) for every predicate.
func (a *Atoms) RSets() [][]int32 {
	r := make([][]int32, a.NumPreds)
	for j := range r {
		r[j] = a.R(j)
	}
	return r
}

// AddPredicate refines the atom set in place for a newly added predicate
// with global ID id (the incremental update of AP Verifier): every atom
// straddling p splits in two. Membership vectors grow to cover id.
func (a *Atoms) AddPredicate(id int, p bdd.Ref) {
	if id >= a.NumPreds {
		a.NumPreds = id + 1
	}
	d := a.D
	n := len(a.List)
	for i := 0; i < n; i++ {
		atom := a.List[i]
		a.Member[i] = a.Member[i].Clone(a.NumPreds)
		t := d.And(atom, p)
		switch t {
		case bdd.False:
		case atom:
			a.Member[i].Set(id, true)
		default:
			// Insert the ¬p half adjacent to its parent, matching
			// ComputeMapped's interval-local ID allocation.
			f := d.Diff(atom, p)
			a.List[i] = t
			a.Member[i].Set(id, true)
			fm := a.Member[i].Clone(a.NumPreds)
			fm.Set(id, false)
			a.List = append(a.List, bdd.False)
			copy(a.List[i+2:], a.List[i+1:])
			a.List[i+1] = f
			a.Member = append(a.Member, nil)
			copy(a.Member[i+2:], a.Member[i+1:])
			a.Member[i+1] = fm
			n++
			i++ // the ¬p half cannot straddle p again
		}
	}
}

// vecKey canonicalizes a membership vector for equality grouping, ignoring
// trailing zero words so vectors sized for different ID-space capacities
// compare by content.
func vecKey(b Bitset) string {
	n := len(b)
	for n > 0 && b[n-1] == 0 {
		n--
	}
	buf := make([]byte, n*8)
	for w := 0; w < n; w++ {
		binary.LittleEndian.PutUint64(buf[w*8:], b[w])
	}
	return string(buf)
}

// RemovePredicate coarsens the atom set in place after predicate id is
// deleted — the dual of AddPredicate. Clearing bit id leaves some atoms with
// identical membership vectors; each such group is merged into one atom
// whose BDD is the group's disjunction, restoring the coarsest-partition
// property without a global recompute. Atom IDs are compacted (atoms shift
// down); callers tracking atom identity must not rely on IDs across a
// removal. Bit id becomes permanently clear; the slot is dead until the ID
// space is rebuilt.
func (a *Atoms) RemovePredicate(id int) {
	// Only atoms in R(id) change their vectors, and any post-clear
	// collision pairs exactly one R(id) atom with one atom outside it
	// (two R(id) vectors agreed on bit id, so they still differ in some
	// other bit). The interval set bounds the cloning to R(id) members.
	r := a.RSet(id)
	groups := make(map[string]int, len(a.List))
	out := a.List[:0]
	outM := a.Member[:0]
	d := a.D
	for i, atom := range a.List {
		m := a.Member[i]
		if r.Contains(int32(i)) {
			m = m.Clone(a.NumPreds)
			m.Set(id, false)
		}
		key := vecKey(m)
		if j, ok := groups[key]; ok {
			out[j] = d.Or(out[j], atom)
			continue
		}
		groups[key] = len(out)
		out = append(out, atom)
		outM = append(outM, m)
	}
	a.List = out
	a.Member = outM
}

// ClassifyLinear finds the atom whose BDD evaluates true on the packet by
// scanning atoms in order. This is the APLinear baseline and the ground
// truth for AP Tree classification tests. It returns -1 if no atom matches
// (impossible for a well-formed atom set).
func (a *Atoms) ClassifyLinear(pkt []byte) int {
	for i, atom := range a.List {
		if a.D.EvalBits(atom, pkt) {
			return i
		}
	}
	return -1
}

// SamplePacket draws a packet satisfying atom i uniformly over the atom's
// don't-care bits. Used by workload generators to produce query traces with
// a chosen distribution over atoms.
func (a *Atoms) SamplePacket(i int, nbytes int, rng *rand.Rand) []byte {
	assign := a.D.AnySat(a.List[i])
	if assign == nil {
		panic(fmt.Sprintf("predicate: atom %d is unsatisfiable", i))
	}
	p := make([]byte, nbytes)
	rng.Read(p)
	for v, val := range assign {
		mask := byte(0x80 >> uint(v%8))
		switch val {
		case 1:
			p[v/8] |= mask
		case 0:
			p[v/8] &^= mask
		}
	}
	return p
}

// Verify checks the defining properties of an atom set against the
// predicates it was computed from: atoms are non-false and pairwise
// disjoint, their union is True, and each predicate equals the disjunction
// of its member atoms. It is O(n²) in BDD operations and meant for tests.
func (a *Atoms) Verify(preds []bdd.Ref) error {
	d := a.D
	union := bdd.False
	for i, atom := range a.List {
		if atom == bdd.False {
			return fmt.Errorf("atom %d is false", i)
		}
		if d.And(union, atom) != bdd.False {
			return fmt.Errorf("atom %d overlaps earlier atoms", i)
		}
		union = d.Or(union, atom)
	}
	if union != bdd.True {
		return fmt.Errorf("atoms do not cover the header space")
	}
	for j, p := range preds {
		rebuilt := bdd.False
		for i, m := range a.Member {
			if m.Get(j) {
				rebuilt = d.Or(rebuilt, a.List[i])
			}
		}
		if rebuilt != p {
			return fmt.Errorf("predicate %d is not the disjunction of its atoms", j)
		}
	}
	return nil
}
