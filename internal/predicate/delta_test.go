package predicate

import (
	"math/rand"
	"testing"

	"apclassifier/internal/bdd"
	"apclassifier/internal/header"
	"apclassifier/internal/rule"
)

// applyDeltas installs each delta's New predicate into preds.
func applyDeltas(preds []bdd.Ref, deltas []PortPredicateDelta) {
	for _, dl := range deltas {
		preds[dl.Port] = dl.New
	}
}

func TestDeltaPortPredicatesAdd(t *testing.T) {
	const numPorts = 3
	d := bdd.New(32)
	var tbl rule.FwdTable
	tbl.Add(rule.FwdRule{Prefix: rule.P(0, 0), Port: 0})
	tbl.Add(rule.FwdRule{Prefix: rule.P(0x0A000000, 8), Port: 1})
	preds := PortPredicates(d, header.IPv4Dst, "dstIP", &tbl, numPorts)

	cone := tbl.AddWithCone(rule.FwdRule{Prefix: rule.P(0x0A0B0000, 16), Port: 2})
	deltas := DeltaPortPredicates(d, header.IPv4Dst, "dstIP", &tbl, []rule.Cone{cone}, numPorts,
		func(p int) bdd.Ref { return preds[p] })

	// Port 1 loses 10.11/16 to port 2; port 0 is covered by the cone but
	// unchanged (10/8 already shadowed it there), so no delta for it.
	got := map[int]bool{}
	for _, dl := range deltas {
		got[dl.Port] = true
	}
	if got[0] || !got[1] || !got[2] {
		t.Fatalf("deltas for ports %v, want exactly {1,2}", got)
	}
	applyDeltas(preds, deltas)
	want := PortPredicates(d, header.IPv4Dst, "dstIP", &tbl, numPorts)
	for p := range want {
		if preds[p] != want[p] {
			t.Fatalf("port %d predicate diverges from full recompute", p)
		}
	}
}

func TestDeltaPortPredicatesEmptyCone(t *testing.T) {
	d := bdd.New(32)
	var tbl rule.FwdTable
	tbl.Add(rule.FwdRule{Prefix: rule.P(0, 0), Port: 0})
	if got := DeltaPortPredicates(d, header.IPv4Dst, "dstIP", &tbl, nil, 1,
		func(int) bdd.Ref { t.Fatal("old must not be read"); return bdd.False }); got != nil {
		t.Fatalf("no cones must yield no deltas, got %v", got)
	}
}

// TestDeltaPortPredicatesChurn drives a random table through interleaved
// adds and removes, maintaining predicates purely by deltas, and checks after
// every step that they are identical (as BDD nodes) to a full recompute.
func TestDeltaPortPredicatesChurn(t *testing.T) {
	const numPorts = 5
	rng := rand.New(rand.NewSource(31))
	d := bdd.New(32)
	var tbl rule.FwdTable
	for i := 0; i < 40; i++ {
		length := []int{0, 4, 8, 12, 16, 20, 24}[rng.Intn(7)]
		tbl.Add(rule.FwdRule{
			Prefix: rule.P(uint32(rng.Intn(4))<<28|rng.Uint32()>>4, length),
			Port:   rng.Intn(numPorts+1) - 1, // includes Drop
		})
	}
	preds := PortPredicates(d, header.IPv4Dst, "dstIP", &tbl, numPorts)
	for step := 0; step < 120; step++ {
		var cone rule.Cone
		if rng.Intn(2) == 0 || len(tbl.Rules) == 0 {
			length := []int{0, 4, 8, 12, 16, 20, 24, 28, 32}[rng.Intn(9)]
			cone = tbl.AddWithCone(rule.FwdRule{
				Prefix: rule.P(uint32(rng.Intn(4))<<28|rng.Uint32()>>4, length),
				Port:   rng.Intn(numPorts+1) - 1,
			})
		} else {
			victim := tbl.Rules[rng.Intn(len(tbl.Rules))].Prefix
			var ok bool
			cone, ok = tbl.RemoveWithCone(victim)
			if !ok {
				t.Fatalf("step %d: removing an existing prefix failed", step)
			}
		}
		deltas := DeltaPortPredicates(d, header.IPv4Dst, "dstIP", &tbl, []rule.Cone{cone}, numPorts,
			func(p int) bdd.Ref { return preds[p] })
		applyDeltas(preds, deltas)
		want := PortPredicates(d, header.IPv4Dst, "dstIP", &tbl, numPorts)
		for p := range want {
			if preds[p] != want[p] {
				t.Fatalf("step %d: port %d predicate diverges from full recompute", step, p)
			}
		}
	}
}

// TestDeltaPortPredicatesBatched checks multi-cone application: several
// mutations collected first, then converted in one DeltaPortPredicates call
// against the final table.
func TestDeltaPortPredicatesBatched(t *testing.T) {
	const numPorts = 4
	rng := rand.New(rand.NewSource(47))
	d := bdd.New(32)
	var tbl rule.FwdTable
	for i := 0; i < 30; i++ {
		tbl.Add(rule.FwdRule{
			Prefix: rule.P(rng.Uint32()&0x30FF0000, []int{0, 4, 8, 12, 16}[rng.Intn(5)]),
			Port:   rng.Intn(numPorts+1) - 1,
		})
	}
	preds := PortPredicates(d, header.IPv4Dst, "dstIP", &tbl, numPorts)
	for round := 0; round < 20; round++ {
		var cones []rule.Cone
		for k := 0; k < 1+rng.Intn(5); k++ {
			if rng.Intn(2) == 0 || len(tbl.Rules) == 0 {
				cones = append(cones, tbl.AddWithCone(rule.FwdRule{
					Prefix: rule.P(rng.Uint32()&0x30FF0000, []int{4, 8, 12, 16, 20}[rng.Intn(5)]),
					Port:   rng.Intn(numPorts+1) - 1,
				}))
			} else {
				victim := tbl.Rules[rng.Intn(len(tbl.Rules))].Prefix
				if c, ok := tbl.RemoveWithCone(victim); ok {
					cones = append(cones, c)
				}
			}
		}
		deltas := DeltaPortPredicates(d, header.IPv4Dst, "dstIP", &tbl, cones, numPorts,
			func(p int) bdd.Ref { return preds[p] })
		applyDeltas(preds, deltas)
		want := PortPredicates(d, header.IPv4Dst, "dstIP", &tbl, numPorts)
		for p := range want {
			if preds[p] != want[p] {
				t.Fatalf("round %d: port %d predicate diverges from full recompute", round, p)
			}
		}
	}
}

// TestRemovePredicateMerges checks the dual of AddPredicate directly: after
// removing a predicate, the atom set equals a fresh computation over the
// remaining predicates (same partition, correct membership).
func TestRemovePredicateMerges(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	d := bdd.New(32)
	var preds []bdd.Ref
	for i := 0; i < 8; i++ {
		preds = append(preds, PrefixBDD(d, header.IPv4Dst, "dstIP",
			rule.P(rng.Uint32(), []int{2, 4, 6, 8}[rng.Intn(4)])))
	}
	a := Compute(d, preds)
	if err := a.Verify(preds); err != nil {
		t.Fatal(err)
	}

	victim := 3
	a.RemovePredicate(victim)

	// Remaining predicates keep their original bit positions.
	rest := make([]bdd.Ref, 0, len(preds)-1)
	ids := make([]int, 0, len(preds)-1)
	for j, p := range preds {
		if j == victim {
			continue
		}
		rest = append(rest, p)
		ids = append(ids, j)
	}
	want := ComputeMapped(d, rest, ids, a.NumPreds)

	if a.N() != want.N() {
		t.Fatalf("atom count %d after removal, fresh compute has %d", a.N(), want.N())
	}
	wantSet := map[bdd.Ref]string{}
	for i, atom := range want.List {
		wantSet[atom] = vecKey(want.Member[i])
	}
	for i, atom := range a.List {
		key, ok := wantSet[atom]
		if !ok {
			t.Fatalf("atom %d not present in fresh computation", i)
		}
		if vecKey(a.Member[i]) != key {
			t.Fatalf("atom %d has wrong membership vector", i)
		}
	}
	for j, p := range rest {
		rebuilt := bdd.False
		for i, m := range a.Member {
			if m.Get(ids[j]) {
				rebuilt = d.Or(rebuilt, a.List[i])
			}
		}
		if rebuilt != p {
			t.Fatalf("predicate bit %d no longer the disjunction of its atoms", ids[j])
		}
	}
}

// TestAddRemoveRoundTrip checks AddPredicate ∘ RemovePredicate is the
// identity on the partition.
func TestAddRemoveRoundTrip(t *testing.T) {
	d := bdd.New(32)
	p0 := PrefixBDD(d, header.IPv4Dst, "dstIP", rule.P(0x0A000000, 8))
	p1 := PrefixBDD(d, header.IPv4Dst, "dstIP", rule.P(0x0A0B0000, 16))
	a := Compute(d, []bdd.Ref{p0, p1})
	n := a.N()

	extra := PrefixBDD(d, header.IPv4Dst, "dstIP", rule.P(0x0A0B0C00, 24))
	a.AddPredicate(2, extra)
	if a.N() != n+1 {
		t.Fatalf("straddling add must split exactly one atom: %d -> %d", n, a.N())
	}
	a.RemovePredicate(2)
	if a.N() != n {
		t.Fatalf("remove must merge the split back: got %d atoms, want %d", a.N(), n)
	}
	if err := a.Verify([]bdd.Ref{p0, p1}); err != nil {
		t.Fatal(err)
	}
}
