// Package rule models data-plane state: longest-prefix-match forwarding
// tables and first-match access control lists.
//
// The package also provides direct, per-packet lookup semantics
// (FwdTable.Lookup, ACL.Allows). Those lookups are the ground truth the
// predicate-based machinery is tested against: a forwarding predicate for a
// port must evaluate true on exactly the packets the table forwards there.
package rule

import (
	"fmt"
	"sort"
)

// Prefix is an IPv4-style value/length prefix over a 32-bit field.
type Prefix struct {
	Value  uint32 // bits below Length are ignored (canonicalized to zero)
	Length int    // 0..32
}

// P builds a canonical prefix, masking Value down to Length bits.
func P(value uint32, length int) Prefix {
	if length < 0 || length > 32 {
		panic(fmt.Sprintf("rule: invalid prefix length %d", length))
	}
	return Prefix{Value: value & mask32(length), Length: length}
}

func mask32(length int) uint32 {
	if length == 0 {
		return 0
	}
	return ^uint32(0) << uint(32-length)
}

// Matches reports whether ip falls inside the prefix.
func (p Prefix) Matches(ip uint32) bool { return ip&mask32(p.Length) == p.Value }

// Contains reports whether q's address block is inside p's.
func (p Prefix) Contains(q Prefix) bool {
	return p.Length <= q.Length && q.Value&mask32(p.Length) == p.Value
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool { return p.Contains(q) || q.Contains(p) }

// String renders the prefix in CIDR form.
func (p Prefix) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d",
		byte(p.Value>>24), byte(p.Value>>16), byte(p.Value>>8), byte(p.Value), p.Length)
}

// Drop is the pseudo-port denoting "no output" in a forwarding rule.
const Drop = -1

// FwdRule forwards packets matching Prefix to output port Port of its box.
type FwdRule struct {
	Prefix Prefix
	Port   int // output port index, or Drop
}

// FwdTable is a longest-prefix-match forwarding table.
type FwdTable struct {
	Rules []FwdRule
}

// Add appends a rule. Duplicate prefixes are allowed; the first added rule
// for a prefix wins (matching typical FIB behavior where an exact duplicate
// replaces — callers that want replace semantics should use Replace).
func (t *FwdTable) Add(r FwdRule) { t.Rules = append(t.Rules, r) }

// Replace installs r, removing any existing rule with the same prefix.
func (t *FwdTable) Replace(r FwdRule) {
	t.Remove(r.Prefix)
	t.Rules = append(t.Rules, r)
}

// Remove deletes all rules with exactly the given prefix and reports
// whether anything was removed.
func (t *FwdTable) Remove(p Prefix) bool {
	out := t.Rules[:0]
	removed := false
	for _, r := range t.Rules {
		if r.Prefix == p {
			removed = true
			continue
		}
		out = append(out, r)
	}
	t.Rules = out
	return removed
}

// Cone is the LPM cone of a table mutation: the header region inside which
// longest-prefix winners can change, and the output ports whose covering
// sets may have changed. Prefix laminarity makes the cone exact: a rule
// matching a packet inside Region either has its prefix contained in Region
// (strictly longer, so it keeps winning regardless of the mutation) or has a
// prefix containing Region (it can lose packets to an added rule, or regain
// packets from a removed one). Ports never lists Drop — drops have no port
// predicate; they reshape other ports' predicates, which the listed covering
// ports capture.
type Cone struct {
	Region Prefix
	Ports  []int
}

// Empty reports whether the mutation cannot have changed any port predicate.
func (c Cone) Empty() bool { return len(c.Ports) == 0 }

// addConePort appends p to the sorted, deduplicated port list.
func addConePort(ports []int, p int) []int {
	if p == Drop {
		return ports
	}
	i := sort.SearchInts(ports, p)
	if i < len(ports) && ports[i] == p {
		return ports
	}
	ports = append(ports, 0)
	copy(ports[i+1:], ports[i:])
	ports[i] = p
	return ports
}

// coveringPorts collects the ports of rules whose prefix contains p.
func (t *FwdTable) coveringPorts(ports []int, p Prefix) []int {
	for _, r := range t.Rules {
		if r.Prefix.Contains(p) {
			ports = addConePort(ports, r.Port)
		}
	}
	return ports
}

// AddWithCone appends a rule like Add and reports the affected LPM cone:
// region = the rule's prefix; ports = the rule's own output plus every
// pre-existing rule whose prefix covers it (those are the only rules that can
// lose packets to the new one — strictly-longer rules inside the region keep
// winning, and exact-duplicate prefixes keep winning by insertion order).
func (t *FwdTable) AddWithCone(r FwdRule) Cone {
	c := Cone{Region: r.Prefix}
	c.Ports = t.coveringPorts(c.Ports, r.Prefix)
	c.Ports = addConePort(c.Ports, r.Port)
	t.Add(r)
	return c
}

// RemoveWithCone deletes all rules with exactly the given prefix, like
// Remove, and reports the affected cone: region = the prefix; ports = the
// removed rules' outputs plus every remaining rule whose prefix covers the
// region (those can regain packets the removed rule used to capture). When
// nothing was removed the cone is empty.
func (t *FwdTable) RemoveWithCone(p Prefix) (Cone, bool) {
	c := Cone{Region: p}
	out := t.Rules[:0]
	removed := false
	for _, r := range t.Rules {
		if r.Prefix == p {
			removed = true
			c.Ports = addConePort(c.Ports, r.Port)
			continue
		}
		out = append(out, r)
	}
	t.Rules = out
	if !removed {
		return Cone{Region: p}, false
	}
	c.Ports = t.coveringPorts(c.Ports, p)
	return c, true
}

// Lookup performs longest-prefix matching. The boolean result is false when
// no rule matches (the packet is dropped by the table).
func (t *FwdTable) Lookup(ip uint32) (port int, ok bool) {
	best := -1
	for _, r := range t.Rules {
		if r.Prefix.Matches(ip) && r.Prefix.Length > best {
			best = r.Prefix.Length
			port = r.Port
		}
	}
	if best < 0 {
		return 0, false
	}
	if port == Drop {
		return 0, false
	}
	return port, true
}

// ByDescendingLength returns the rule indices sorted longest prefix first,
// breaking ties by insertion order. This is the priority order used when
// converting the table to predicates.
func (t *FwdTable) ByDescendingLength() []int {
	idx := make([]int, len(t.Rules))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return t.Rules[idx[a]].Prefix.Length > t.Rules[idx[b]].Prefix.Length
	})
	return idx
}

// Action is an ACL rule decision.
type Action bool

// ACL actions.
const (
	Deny   Action = false
	Permit Action = true
)

// PortRange is an inclusive 16-bit range; the zero value must not be used
// directly — use AnyPort or R.
type PortRange struct {
	Lo, Hi uint16
}

// AnyPort matches every transport port.
var AnyPort = PortRange{0, 0xFFFF}

// R builds an inclusive port range.
func R(lo, hi uint16) PortRange {
	if lo > hi {
		panic(fmt.Sprintf("rule: invalid port range [%d,%d]", lo, hi))
	}
	return PortRange{lo, hi}
}

// Contains reports whether p falls inside the range.
func (r PortRange) Contains(p uint16) bool { return p >= r.Lo && p <= r.Hi }

// AnyProto matches every protocol number in a Match5.
const AnyProto = -1

// Match5 is a classic 5-tuple match condition.
type Match5 struct {
	Src, Dst         Prefix
	SrcPort, DstPort PortRange
	Proto            int // 0..255, or AnyProto
}

// MatchAll matches every packet.
func MatchAll() Match5 {
	return Match5{SrcPort: AnyPort, DstPort: AnyPort, Proto: AnyProto}
}

// Fields is a decoded 5-tuple used for ground-truth matching.
type Fields struct {
	Src, Dst         uint32
	SrcPort, DstPort uint16
	Proto            uint8
}

// Matches reports whether the 5-tuple satisfies the condition.
func (m Match5) Matches(f Fields) bool {
	return m.Src.Matches(f.Src) && m.Dst.Matches(f.Dst) &&
		m.SrcPort.Contains(f.SrcPort) && m.DstPort.Contains(f.DstPort) &&
		(m.Proto == AnyProto || m.Proto == int(f.Proto))
}

// ACLRule pairs a match condition with an action.
type ACLRule struct {
	Match  Match5
	Action Action
}

// ACL is a first-match access control list. A packet matching no rule gets
// the Default action (real-world ACLs default to deny).
type ACL struct {
	Rules   []ACLRule
	Default Action
}

// Allows reports whether the ACL permits the 5-tuple.
func (a *ACL) Allows(f Fields) bool {
	for _, r := range a.Rules {
		if r.Match.Matches(f) {
			return bool(r.Action)
		}
	}
	return bool(a.Default)
}
