package rule

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrefixMatches(t *testing.T) {
	p := P(0x0A000000, 8) // 10.0.0.0/8
	if !p.Matches(0x0A123456) {
		t.Fatal("10.18.52.86 must match 10/8")
	}
	if p.Matches(0x0B000000) {
		t.Fatal("11.0.0.0 must not match 10/8")
	}
	if !P(0, 0).Matches(0xFFFFFFFF) {
		t.Fatal("/0 matches everything")
	}
	host := P(0xC0A80101, 32)
	if !host.Matches(0xC0A80101) || host.Matches(0xC0A80102) {
		t.Fatal("/32 must match only itself")
	}
}

func TestPrefixCanonicalization(t *testing.T) {
	// P masks the value so prefixes compare by their canonical form.
	if P(0x0A123456, 8) != P(0x0AFFFFFF, 8) {
		t.Fatal("prefixes with the same masked value must be equal")
	}
	if P(0x0A000000, 8).String() != "10.0.0.0/8" {
		t.Fatalf("String = %q", P(0x0A000000, 8).String())
	}
}

func TestPrefixContainsOverlaps(t *testing.T) {
	p8 := P(0x0A000000, 8)
	p16 := P(0x0A0B0000, 16)
	q16 := P(0x0B000000, 16)
	if !p8.Contains(p16) || p16.Contains(p8) {
		t.Fatal("containment is one-directional")
	}
	if !p8.Overlaps(p16) || !p16.Overlaps(p8) {
		t.Fatal("nested prefixes overlap")
	}
	if p16.Overlaps(q16) {
		t.Fatal("distinct same-length prefixes do not overlap")
	}
	if !p8.Contains(p8) {
		t.Fatal("a prefix contains itself")
	}
}

func TestFwdTableLPM(t *testing.T) {
	var tbl FwdTable
	tbl.Add(FwdRule{P(0, 0), 0})              // default route -> port 0
	tbl.Add(FwdRule{P(0x0A000000, 8), 1})     // 10/8 -> port 1
	tbl.Add(FwdRule{P(0x0A0B0000, 16), 2})    // 10.11/16 -> port 2
	tbl.Add(FwdRule{P(0x0A0B0C00, 24), Drop}) // 10.11.12/24 -> drop
	cases := []struct {
		ip   uint32
		port int
		ok   bool
	}{
		{0xC0000001, 0, true},
		{0x0A000001, 1, true},
		{0x0A0B0001, 2, true},
		{0x0A0B0C01, 0, false}, // drop rule
	}
	for _, c := range cases {
		port, ok := tbl.Lookup(c.ip)
		if ok != c.ok || (ok && port != c.port) {
			t.Errorf("Lookup(%08x) = (%d,%v), want (%d,%v)", c.ip, port, ok, c.port, c.ok)
		}
	}
}

func TestFwdTableNoMatch(t *testing.T) {
	var tbl FwdTable
	tbl.Add(FwdRule{P(0x0A000000, 8), 1})
	if _, ok := tbl.Lookup(0x0B000000); ok {
		t.Fatal("packet outside all prefixes must be dropped")
	}
}

func TestFwdTableFirstOfEqualLengthWins(t *testing.T) {
	var tbl FwdTable
	tbl.Add(FwdRule{P(0x0A000000, 8), 1})
	tbl.Add(FwdRule{P(0x0A000000, 8), 2})
	port, ok := tbl.Lookup(0x0A000001)
	if !ok || port != 1 {
		t.Fatalf("first rule must win: got (%d,%v)", port, ok)
	}
}

func TestFwdTableReplaceRemove(t *testing.T) {
	var tbl FwdTable
	tbl.Add(FwdRule{P(0x0A000000, 8), 1})
	tbl.Replace(FwdRule{P(0x0A000000, 8), 3})
	if port, _ := tbl.Lookup(0x0A000001); port != 3 {
		t.Fatalf("Replace did not take effect: port %d", port)
	}
	if !tbl.Remove(P(0x0A000000, 8)) {
		t.Fatal("Remove must report success")
	}
	if _, ok := tbl.Lookup(0x0A000001); ok {
		t.Fatal("rule still matching after Remove")
	}
	if tbl.Remove(P(0x0A000000, 8)) {
		t.Fatal("second Remove must report nothing removed")
	}
}

func TestByDescendingLength(t *testing.T) {
	var tbl FwdTable
	tbl.Add(FwdRule{P(0, 0), 0})
	tbl.Add(FwdRule{P(0x0A0B0000, 16), 1})
	tbl.Add(FwdRule{P(0x0A000000, 8), 2})
	tbl.Add(FwdRule{P(0x0C000000, 8), 3})
	idx := tbl.ByDescendingLength()
	lens := []int{}
	for _, i := range idx {
		lens = append(lens, tbl.Rules[i].Prefix.Length)
	}
	for i := 1; i < len(lens); i++ {
		if lens[i] > lens[i-1] {
			t.Fatalf("not descending: %v", lens)
		}
	}
	// Stability: the two /8s keep insertion order.
	if tbl.Rules[idx[1]].Port != 2 || tbl.Rules[idx[2]].Port != 3 {
		t.Fatalf("tie not stable: %v", idx)
	}
}

func TestPortRange(t *testing.T) {
	r := R(1024, 2048)
	if !r.Contains(1024) || !r.Contains(2048) || !r.Contains(1500) {
		t.Fatal("inclusive bounds")
	}
	if r.Contains(1023) || r.Contains(2049) {
		t.Fatal("out of range")
	}
	if !AnyPort.Contains(0) || !AnyPort.Contains(65535) {
		t.Fatal("AnyPort must contain all ports")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("inverted range must panic")
		}
	}()
	R(2, 1)
}

func TestMatch5(t *testing.T) {
	m := Match5{
		Src:     P(0x0A000000, 8),
		Dst:     P(0xC0A80000, 16),
		SrcPort: AnyPort,
		DstPort: R(80, 80),
		Proto:   6,
	}
	hit := Fields{Src: 0x0A000001, Dst: 0xC0A80101, SrcPort: 9999, DstPort: 80, Proto: 6}
	if !m.Matches(hit) {
		t.Fatal("expected match")
	}
	for name, f := range map[string]Fields{
		"wrong src":   {Src: 0x0B000001, Dst: 0xC0A80101, SrcPort: 9999, DstPort: 80, Proto: 6},
		"wrong dst":   {Src: 0x0A000001, Dst: 0xC0A90101, SrcPort: 9999, DstPort: 80, Proto: 6},
		"wrong dport": {Src: 0x0A000001, Dst: 0xC0A80101, SrcPort: 9999, DstPort: 81, Proto: 6},
		"wrong proto": {Src: 0x0A000001, Dst: 0xC0A80101, SrcPort: 9999, DstPort: 80, Proto: 17},
	} {
		if m.Matches(f) {
			t.Errorf("%s: unexpected match", name)
		}
	}
	if !MatchAll().Matches(hit) {
		t.Fatal("MatchAll must match anything")
	}
}

func TestACLFirstMatch(t *testing.T) {
	acl := &ACL{
		Rules: []ACLRule{
			{Match5{Src: P(0x0A000000, 8), SrcPort: AnyPort, DstPort: AnyPort, Proto: AnyProto}, Deny},
			{Match5{Src: P(0x0A0B0000, 16), SrcPort: AnyPort, DstPort: AnyPort, Proto: AnyProto}, Permit},
			{Match5{SrcPort: AnyPort, DstPort: AnyPort, Proto: AnyProto}, Permit},
		},
		Default: Deny,
	}
	// 10.11.x.y hits the broader deny first: first match wins.
	if acl.Allows(Fields{Src: 0x0A0B0001}) {
		t.Fatal("first-match deny must win over later permit")
	}
	if !acl.Allows(Fields{Src: 0x0B000001}) {
		t.Fatal("catch-all permit must apply")
	}
}

func TestACLDefault(t *testing.T) {
	deny := &ACL{Default: Deny}
	permit := &ACL{Default: Permit}
	f := Fields{Src: 1, Dst: 2}
	if deny.Allows(f) {
		t.Fatal("empty deny-default ACL must deny")
	}
	if !permit.Allows(f) {
		t.Fatal("empty permit-default ACL must permit")
	}
}

func TestLPMQuickAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var tbl FwdTable
	for i := 0; i < 200; i++ {
		tbl.Add(FwdRule{P(rng.Uint32(), rng.Intn(33)), rng.Intn(8)})
	}
	naive := func(ip uint32) (int, bool) {
		best, port := -1, 0
		for _, r := range tbl.Rules {
			if r.Prefix.Matches(ip) && r.Prefix.Length > best {
				best, port = r.Prefix.Length, r.Port
			}
		}
		if best < 0 || port == Drop {
			return 0, false
		}
		return port, true
	}
	err := quick.Check(func(ip uint32) bool {
		p1, ok1 := tbl.Lookup(ip)
		p2, ok2 := naive(ip)
		return ok1 == ok2 && (!ok1 || p1 == p2)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAddWithCone(t *testing.T) {
	var tbl FwdTable
	tbl.Add(FwdRule{P(0, 0), 0})
	tbl.Add(FwdRule{P(0x0A000000, 8), 1})
	tbl.Add(FwdRule{P(0x0B000000, 8), 2})
	tbl.Add(FwdRule{P(0x0A0B0000, 16), Drop})

	c := tbl.AddWithCone(FwdRule{P(0x0A0B0C00, 24), 3})
	if c.Region != P(0x0A0B0C00, 24) {
		t.Fatalf("region = %v", c.Region)
	}
	// Covering rules: /0 (port 0), 10/8 (port 1), 10.11/16 (Drop, excluded),
	// plus the new rule's own port 3. 11/8 is disjoint and must not appear.
	if want := []int{0, 1, 3}; !equalInts(c.Ports, want) {
		t.Fatalf("ports = %v, want %v", c.Ports, want)
	}
	if len(tbl.Rules) != 5 {
		t.Fatal("rule not installed")
	}
}

func TestAddWithConeDropRule(t *testing.T) {
	var tbl FwdTable
	tbl.Add(FwdRule{P(0x0A000000, 8), 1})
	c := tbl.AddWithCone(FwdRule{P(0x0A0B0000, 16), Drop})
	// A drop rule has no predicate of its own; only the shadowed port 1
	// can change.
	if want := []int{1}; !equalInts(c.Ports, want) {
		t.Fatalf("ports = %v, want %v", c.Ports, want)
	}
}

func TestRemoveWithCone(t *testing.T) {
	var tbl FwdTable
	tbl.Add(FwdRule{P(0, 0), 0})
	tbl.Add(FwdRule{P(0x0A000000, 8), 1})
	tbl.Add(FwdRule{P(0x0A0B0000, 16), 2})
	tbl.Add(FwdRule{P(0x0A0B0C00, 24), 3}) // inside the removed region, keeps winning

	c, ok := tbl.RemoveWithCone(P(0x0A0B0000, 16))
	if !ok {
		t.Fatal("removal must report success")
	}
	if c.Region != P(0x0A0B0000, 16) {
		t.Fatalf("region = %v", c.Region)
	}
	// Removed rule's port 2 plus remaining covering ports 0 and 1; the /24
	// inside the region is unaffected and must not appear.
	if want := []int{0, 1, 2}; !equalInts(c.Ports, want) {
		t.Fatalf("ports = %v, want %v", c.Ports, want)
	}

	if c, ok := tbl.RemoveWithCone(P(0x0A0B0000, 16)); ok || !c.Empty() {
		t.Fatalf("second removal must be an empty no-op cone, got %v ok=%v", c, ok)
	}
}

// TestConeSoundness checks the cone contract by brute force: after a random
// mutation, every IP whose lookup result changed lies inside the region, and
// every port that gained or lost any sampled IP is listed in the cone.
func TestConeSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		var tbl FwdTable
		for i := 0; i < 30; i++ {
			port := rng.Intn(6) - 1 // occasionally Drop
			tbl.Add(FwdRule{P(rng.Uint32()&0x0F0F0000, rng.Intn(20)), port})
		}
		before := tbl
		before.Rules = append([]FwdRule(nil), tbl.Rules...)

		var cone Cone
		if rng.Intn(2) == 0 {
			cone = tbl.AddWithCone(FwdRule{P(rng.Uint32()&0x0F0F0000, rng.Intn(20)), rng.Intn(6) - 1})
		} else if len(tbl.Rules) > 0 {
			victim := tbl.Rules[rng.Intn(len(tbl.Rules))].Prefix
			var ok bool
			cone, ok = tbl.RemoveWithCone(victim)
			if !ok {
				t.Fatal("removing an existing prefix must succeed")
			}
		}
		listed := map[int]bool{}
		for _, p := range cone.Ports {
			listed[p] = true
		}
		for s := 0; s < 2000; s++ {
			ip := rng.Uint32() & 0x0F0FFFFF
			p1, ok1 := before.Lookup(ip)
			p2, ok2 := tbl.Lookup(ip)
			if p1 == p2 && ok1 == ok2 {
				continue
			}
			if !cone.Region.Matches(ip) {
				t.Fatalf("trial %d: ip %08x changed outside region %v", trial, ip, cone.Region)
			}
			if ok1 && !listed[p1] {
				t.Fatalf("trial %d: port %d lost ip %08x but is not in cone %v", trial, p1, ip, cone.Ports)
			}
			if ok2 && !listed[p2] {
				t.Fatalf("trial %d: port %d gained ip %08x but is not in cone %v", trial, p2, ip, cone.Ports)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
