package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RetainRelease audits the bdd.DD reference-counting discipline inside each
// function: a Ref retained into a local variable that never escapes the
// function (is not returned, stored, or handed to another function) must be
// released before the function ends — otherwise the node is pinned for the
// DD's lifetime. Conversely, releasing a local Ref that was conjured from a
// constant and never retained will panic at runtime ("Release of
// unretained node"); the analyzer reports it statically.
//
// The escape rules are deliberately conservative: any use of the variable
// in a return statement, composite literal, assignment right-hand side,
// address-of, channel send, or as an argument to anything other than
// Retain/Release counts as an escape and silences the leak check, because
// ownership may have been transferred.
var RetainRelease = &Analyzer{
	Name: "retainrelease",
	Doc:  "DD.Retain of a non-escaping local needs a matching Release; Release needs a prior Retain",
	Run:  runRetainRelease,
}

func runRetainRelease(m *Module, report Reporter) {
	for _, pkg := range m.Pkgs {
		funcBodies(pkg, func(fd *ast.FuncDecl) {
			checkRetainRelease(pkg, fd, report)
		})
	}
}

func checkRetainRelease(pkg *Package, fd *ast.FuncDecl, report Reporter) {
	info := pkg.Info
	inFunc := func(v *types.Var) bool {
		return v.Pos() >= fd.Pos() && v.Pos() <= fd.End()
	}

	type retainSite struct {
		v   *types.Var
		pos token.Pos
	}
	var retains []retainSite
	retained := make(map[*types.Var]bool)
	released := make(map[*types.Var]bool)
	type releaseSite struct {
		v   *types.Var
		pos token.Pos
	}
	var releases []releaseSite

	// refCalls maps the CallExpr nodes of Retain/Release so escape analysis
	// can exempt their direct arguments.
	refCalls := make(map[*ast.CallExpr]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := isBDDMethod(info, call, "Retain"); ok && len(call.Args) == 1 {
			refCalls[call] = true
			if v := localVar(info, call.Args[0], inFunc); v != nil {
				retains = append(retains, retainSite{v, call.Pos()})
				retained[v] = true
			}
		}
		if _, ok := isBDDMethod(info, call, "Release"); ok && len(call.Args) == 1 {
			refCalls[call] = true
			if v := localVar(info, call.Args[0], inFunc); v != nil {
				released[v] = true
				releases = append(releases, releaseSite{v, call.Pos()})
			}
		}
		return true
	})
	if len(retains) == 0 && len(releases) == 0 {
		return
	}

	escaped := escapedVars(info, fd.Body, refCalls, inFunc)

	for _, r := range retains {
		if !released[r.v] && !escaped[r.v] {
			report(r.pos, "Ref retained into %q is never released in this function and does not escape", r.v.Name())
		}
	}

	// Release-without-Retain: only when every definition of the variable is
	// a constant expression, so the value provably never went through
	// Retain (directly or via an aliasing producer).
	litOnly := literalOnlyVars(info, fd.Body, inFunc)
	for _, r := range releases {
		if !retained[r.v] && litOnly[r.v] {
			report(r.pos, "Release of %q, which holds a constant Ref never retained in this scope", r.v.Name())
		}
	}
}

// escapedVars walks body and returns the set of local Ref variables whose
// value may outlive the function or be stored by a callee.
func escapedVars(info *types.Info, body *ast.BlockStmt, refCalls map[*ast.CallExpr]bool, inFunc func(*types.Var) bool) map[*types.Var]bool {
	escaped := make(map[*types.Var]bool)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			if v := localVar(info, id, inFunc); v != nil && isRef(v.Type()) {
				if escapesAt(stack, id, refCalls) {
					escaped[v] = true
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return escaped
}

// escapesAt climbs the ancestor stack of an identifier use and decides
// whether that use lets the value escape.
func escapesAt(stack []ast.Node, id *ast.Ident, refCalls map[*ast.CallExpr]bool) bool {
	child := ast.Node(id)
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt:
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				return true
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if containsNode(rhs, child) {
					return true
				}
			}
			return false
		case *ast.CallExpr:
			if containsNode(n.Fun, child) {
				return false // receiver or conversion target, not an argument
			}
			if refCalls[n] {
				// Direct argument of Retain/Release: accounted for by the
				// retain/release bookkeeping, not an escape.
				for _, a := range n.Args {
					if ast.Unparen(a) == child || a == child {
						return false
					}
				}
			}
			return true
		case *ast.BlockStmt, *ast.ExprStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
			*ast.SwitchStmt, *ast.CaseClause, *ast.TypeSwitchStmt:
			return false
		}
		child = stack[i]
	}
	return false
}

// containsNode reports whether sub occurs within root.
func containsNode(root, sub ast.Node) bool {
	if root == nil || sub == nil {
		return false
	}
	return root.Pos() <= sub.Pos() && sub.End() <= root.End()
}

// literalOnlyVars returns the local Ref variables every one of whose
// initializers/assignments is a constant expression (basic literal or a
// conversion of one), meaning the value cannot alias a retained node.
func literalOnlyVars(info *types.Info, body *ast.BlockStmt, inFunc func(*types.Var) bool) map[*types.Var]bool {
	status := make(map[*types.Var]int) // 1 = all literal so far, 2 = tainted
	note := func(e ast.Expr, v *types.Var) {
		if v == nil || !isRef(v.Type()) {
			return
		}
		if isConstExpr(info, e) {
			if status[v] == 0 {
				status[v] = 1
			}
		} else {
			status[v] = 2
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					note(n.Rhs[i], localVar(info, id, inFunc))
				}
			} else {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if v := localVar(info, id, inFunc); v != nil && isRef(v.Type()) {
							status[v] = 2
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					note(n.Values[i], localVar(info, name, inFunc))
				}
			}
		}
		return true
	})
	out := make(map[*types.Var]bool)
	for v, s := range status {
		if s == 1 {
			out[v] = true
		}
	}
	return out
}

// isConstExpr reports whether e has a known constant value.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
