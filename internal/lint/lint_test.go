package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// moduleRoot locates the repository root from the package directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// runFixture loads one fixture package and returns the formatted diagnostics
// of the given analyzers, with file names reduced to their base name so
// goldens are machine-independent.
func runFixture(t *testing.T, analyzers []*Analyzer, fixture string) []string {
	t.Helper()
	root := moduleRoot(t)
	dir := filepath.Join("testdata", "src", fixture)
	path := "apclassifier/internal/lint/testdata/src/" + strings.ReplaceAll(fixture, string(filepath.Separator), "/")
	m, err := LoadDir(root, dir, path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	var out []string
	for _, d := range Run(m, analyzers) {
		out = append(out, fmt.Sprintf("%s:%d:%d: [%s] %s",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message))
	}
	return out
}

// checkGolden compares got against the fixture's expect.golden file. An
// absent golden file means no diagnostics are expected.
func checkGolden(t *testing.T, fixture string, got []string) {
	t.Helper()
	golden := filepath.Join("testdata", "src", fixture, "expect.golden")
	if *update {
		if len(got) == 0 {
			if err := os.Remove(golden); err != nil && !os.IsNotExist(err) {
				t.Fatal(err)
			}
		} else if err := os.WriteFile(golden, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	var want []string
	if data, err := os.ReadFile(golden); err == nil {
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line != "" {
				want = append(want, line)
			}
		}
	} else if !os.IsNotExist(err) {
		t.Fatal(err)
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("fixture %s: diagnostics mismatch\n got:\n  %s\nwant:\n  %s\n(re-run with -update to regenerate)",
			fixture, strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

// fixtureCases pairs each analyzer with its bad and clean fixture packages.
var fixtureCases = []struct {
	analyzer *Analyzer
	fixture  string
	wantAny  bool // bad fixtures must produce at least one finding
}{
	{AtomicField, "atomicfield/bad", true},
	{AtomicField, "atomicfield/clean", false},
	{RetainRelease, "retainrelease/bad", true},
	{RetainRelease, "retainrelease/clean", false},
	{LockSafe, "locksafe/bad", true},
	{LockSafe, "locksafe/clean", false},
	{LockGuard, "lockguard/bad", true},
	{LockGuard, "lockguard/clean", false},
	{DDMix, "ddmix/bad", true},
	{DDMix, "ddmix/clean", false},
	{ErrDrop, "errdrop/bad", true},
	{ErrDrop, "errdrop/clean", false},
	{EpochPin, "epochpin/bad", true},
	{EpochPin, "epochpin/clean", false},
	{FrozenWrite, "frozenwrite/bad", true},
	{FrozenWrite, "frozenwrite/clean", false},
	{PoolPair, "poolpair/bad", true},
	{PoolPair, "poolpair/clean", false},
	{VecBound, "vecbound/bad", true},
	{VecBound, "vecbound/clean", false},
}

func TestAnalyzerFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.fixture, func(t *testing.T) {
			got := runFixture(t, []*Analyzer{tc.analyzer}, tc.fixture)
			if tc.wantAny && len(got) == 0 {
				t.Fatalf("bad fixture %s produced no findings", tc.fixture)
			}
			if !tc.wantAny && len(got) != 0 {
				t.Fatalf("clean fixture %s produced findings:\n  %s", tc.fixture, strings.Join(got, "\n  "))
			}
			checkGolden(t, tc.fixture, got)
		})
	}
}

// TestIgnoreDirective checks the suppression mechanism: trailing and
// line-above directives silence findings, malformed directives are
// themselves reported, and everything else survives.
func TestIgnoreDirective(t *testing.T) {
	got := runFixture(t, []*Analyzer{ErrDrop}, "ignore")
	checkGolden(t, "ignore", got)
	joined := strings.Join(got, "\n")
	if strings.Contains(joined, "/tmp/a") || strings.Contains(joined, "/tmp/b") {
		t.Errorf("suppressed findings leaked:\n%s", joined)
	}
	if !strings.Contains(joined, "[directive]") {
		t.Errorf("malformed directive not reported:\n%s", joined)
	}
	if !strings.Contains(joined, "ignore.go:24") {
		t.Errorf("unsuppressed finding missing:\n%s", joined)
	}
}

// TestStaleIgnore checks the directive hygiene pass: a used ignore stays
// silent, an ignore over clean code and an ignore naming a nonexistent
// check are reported, and a guard naming a missing mutex field is
// reported alongside the lockguard violation it no longer excuses.
func TestStaleIgnore(t *testing.T) {
	got := runFixture(t, All(), "staleignore")
	checkGolden(t, "staleignore", got)
	joined := strings.Join(got, "\n")
	if strings.Contains(joined, "/tmp/x") {
		t.Errorf("finding suppressed by a live directive leaked:\n%s", joined)
	}
	for _, want := range []string{"staleignore.go:19", "errdorp", "mux"} {
		if !strings.Contains(joined, want) {
			t.Errorf("stale-directive report missing %q:\n%s", want, joined)
		}
	}
}

// TestStaleIgnoreSubset checks that running a subset of analyzers never
// flags directives belonging to checks that did not run: with only
// lockguard selected, the two errdrop directives in the fixture (one
// stale under the full suite) are not judged.
func TestStaleIgnoreSubset(t *testing.T) {
	got := runFixture(t, []*Analyzer{LockGuard}, "staleignore")
	for _, line := range got {
		if strings.Contains(line, "lint:ignore errdrop") {
			t.Errorf("directive for an analyzer that did not run was judged: %s", line)
		}
	}
}

// TestMultilineDirective pins the suppression window against statements
// that span lines: directives cover their own line and the next, whether
// the call's finding position is under a leading or a trailing comment,
// and a finding two lines below a directive survives.
func TestMultilineDirective(t *testing.T) {
	got := runFixture(t, []*Analyzer{ErrDrop}, "multiline")
	checkGolden(t, "multiline", got)
	joined := strings.Join(got, "\n")
	if strings.Contains(joined, "Symlink") {
		t.Errorf("multi-line statement suppression failed:\n%s", joined)
	}
	if !strings.Contains(joined, "os.Remove") {
		t.Errorf("finding two lines below a directive should survive:\n%s", joined)
	}
}

// TestGuardValueReceiver checks lockguard on methods with value
// receivers: textual path matching and the *Locked convention behave
// exactly as they do for pointer receivers.
func TestGuardValueReceiver(t *testing.T) {
	got := runFixture(t, []*Analyzer{LockGuard}, "guardvalue")
	checkGolden(t, "guardvalue", got)
	if len(got) != 1 || !strings.Contains(got[0], "peek") {
		t.Errorf("want exactly the peek violation, got:\n  %s", strings.Join(got, "\n  "))
	}
}

// TestSamePositionSuppression checks the interaction when two analyzers
// report on one line: a directive naming one check leaves the other's
// finding standing, and "all" covers both.
func TestSamePositionSuppression(t *testing.T) {
	got := runFixture(t, []*Analyzer{RetainRelease, ErrDrop}, "dupe")
	checkGolden(t, "dupe", got)
	joined := strings.Join(got, "\n")
	if strings.Contains(joined, "errdrop") {
		t.Errorf("named-check suppression failed on a shared line:\n%s", joined)
	}
	if !strings.Contains(joined, "dupe.go:15") {
		t.Errorf("the co-located retainrelease finding must survive:\n%s", joined)
	}
	if strings.Contains(joined, "dupe.go:20") {
		t.Errorf("an \"all\" directive must cover both checks:\n%s", joined)
	}
}

// TestBuildTagExclusion checks that files constrained to custom build tags
// (like the apdebug sanitizer layer) are not loaded or analyzed.
func TestBuildTagExclusion(t *testing.T) {
	got := runFixture(t, All(), "tagged")
	if len(got) != 0 {
		t.Fatalf("tag-gated file was analyzed:\n  %s", strings.Join(got, "\n  "))
	}
}

// TestModuleIsClean is the gate that keeps the repository itself passing
// aplint: the full analyzer suite over the whole module must report
// nothing. This runs under plain `go test ./...`, so tier-1 CI enforces it
// without invoking the CLI.
func TestModuleIsClean(t *testing.T) {
	m, err := LoadModule(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Pkgs) < 10 {
		t.Fatalf("loader found only %d packages; module walk is broken", len(m.Pkgs))
	}
	diags := Run(m, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestByName covers analyzer selection.
func TestByName(t *testing.T) {
	all, err := ByName("all")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(all) = %d analyzers, err %v", len(all), err)
	}
	two, err := ByName("errdrop, locksafe")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName pair = %v, err %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
}
