package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// moduleRoot locates the repository root from the package directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// runFixture loads one fixture package and returns the formatted diagnostics
// of the given analyzers, with file names reduced to their base name so
// goldens are machine-independent.
func runFixture(t *testing.T, analyzers []*Analyzer, fixture string) []string {
	t.Helper()
	root := moduleRoot(t)
	dir := filepath.Join("testdata", "src", fixture)
	path := "apclassifier/internal/lint/testdata/src/" + strings.ReplaceAll(fixture, string(filepath.Separator), "/")
	m, err := LoadDir(root, dir, path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	var out []string
	for _, d := range Run(m, analyzers) {
		out = append(out, fmt.Sprintf("%s:%d:%d: [%s] %s",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message))
	}
	return out
}

// checkGolden compares got against the fixture's expect.golden file. An
// absent golden file means no diagnostics are expected.
func checkGolden(t *testing.T, fixture string, got []string) {
	t.Helper()
	golden := filepath.Join("testdata", "src", fixture, "expect.golden")
	if *update {
		if len(got) == 0 {
			if err := os.Remove(golden); err != nil && !os.IsNotExist(err) {
				t.Fatal(err)
			}
		} else if err := os.WriteFile(golden, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	var want []string
	if data, err := os.ReadFile(golden); err == nil {
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line != "" {
				want = append(want, line)
			}
		}
	} else if !os.IsNotExist(err) {
		t.Fatal(err)
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("fixture %s: diagnostics mismatch\n got:\n  %s\nwant:\n  %s\n(re-run with -update to regenerate)",
			fixture, strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

// fixtureCases pairs each analyzer with its bad and clean fixture packages.
var fixtureCases = []struct {
	analyzer *Analyzer
	fixture  string
	wantAny  bool // bad fixtures must produce at least one finding
}{
	{AtomicField, "atomicfield/bad", true},
	{AtomicField, "atomicfield/clean", false},
	{RetainRelease, "retainrelease/bad", true},
	{RetainRelease, "retainrelease/clean", false},
	{LockSafe, "locksafe/bad", true},
	{LockSafe, "locksafe/clean", false},
	{LockGuard, "lockguard/bad", true},
	{LockGuard, "lockguard/clean", false},
	{DDMix, "ddmix/bad", true},
	{DDMix, "ddmix/clean", false},
	{ErrDrop, "errdrop/bad", true},
	{ErrDrop, "errdrop/clean", false},
}

func TestAnalyzerFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.fixture, func(t *testing.T) {
			got := runFixture(t, []*Analyzer{tc.analyzer}, tc.fixture)
			if tc.wantAny && len(got) == 0 {
				t.Fatalf("bad fixture %s produced no findings", tc.fixture)
			}
			if !tc.wantAny && len(got) != 0 {
				t.Fatalf("clean fixture %s produced findings:\n  %s", tc.fixture, strings.Join(got, "\n  "))
			}
			checkGolden(t, tc.fixture, got)
		})
	}
}

// TestIgnoreDirective checks the suppression mechanism: trailing and
// line-above directives silence findings, malformed directives are
// themselves reported, and everything else survives.
func TestIgnoreDirective(t *testing.T) {
	got := runFixture(t, []*Analyzer{ErrDrop}, "ignore")
	checkGolden(t, "ignore", got)
	joined := strings.Join(got, "\n")
	if strings.Contains(joined, "/tmp/a") || strings.Contains(joined, "/tmp/b") {
		t.Errorf("suppressed findings leaked:\n%s", joined)
	}
	if !strings.Contains(joined, "[directive]") {
		t.Errorf("malformed directive not reported:\n%s", joined)
	}
	if !strings.Contains(joined, "ignore.go:24") {
		t.Errorf("unsuppressed finding missing:\n%s", joined)
	}
}

// TestBuildTagExclusion checks that files constrained to custom build tags
// (like the apdebug sanitizer layer) are not loaded or analyzed.
func TestBuildTagExclusion(t *testing.T) {
	got := runFixture(t, All(), "tagged")
	if len(got) != 0 {
		t.Fatalf("tag-gated file was analyzed:\n  %s", strings.Join(got, "\n  "))
	}
}

// TestModuleIsClean is the gate that keeps the repository itself passing
// aplint: the full analyzer suite over the whole module must report
// nothing. This runs under plain `go test ./...`, so tier-1 CI enforces it
// without invoking the CLI.
func TestModuleIsClean(t *testing.T) {
	m, err := LoadModule(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Pkgs) < 10 {
		t.Fatalf("loader found only %d packages; module walk is broken", len(m.Pkgs))
	}
	diags := Run(m, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestByName covers analyzer selection.
func TestByName(t *testing.T) {
	all, err := ByName("all")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(all) = %d analyzers, err %v", len(all), err)
	}
	two, err := ByName("errdrop, locksafe")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName pair = %v, err %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
}
