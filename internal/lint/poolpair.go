package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolPair generalizes retainrelease to sync.Pool: every Get on a pool
// (the server's BatchBuffer pool being the motivating case) must be
// paired, in the same block, with a Put on the same pool — deferred, so
// error returns and panics still recycle the buffer, or directly with no
// early exit able to skip it. An unpaired Get is not a memory-safety bug
// (the GC reclaims the value), but it silently degrades the pool into an
// allocator, which is exactly the regression the batch path's
// steady-state zero-allocation budget forbids.
//
// Ownership transfer silences the check: when the fetched value escapes
// the function — returned, stored into a field or container, sent on a
// channel, captured by a go statement — the release duty moves with it,
// beyond intraprocedural sight. Passing the value as a plain call
// argument is borrowing, not transfer (callees fill buffers; pools would
// be pointless otherwise), so it does not silence anything.
var PoolPair = &Analyzer{
	Name: "poolpair",
	Doc:  "every sync.Pool Get must pair with a deferred or all-paths Put on the same pool",
	Run:  runPoolPair,
}

func runPoolPair(m *Module, report Reporter) {
	for _, pkg := range m.Pkgs {
		funcBodies(pkg, func(fd *ast.FuncDecl) {
			checkPoolPair(pkg, fd, report)
		})
	}
}

// syncPoolCall matches a call to sync.Pool.Get or .Put, returning the
// textual receiver path ("s.bufs") for pairing, like syncLockCall.
func syncPoolCall(info *types.Info, call *ast.CallExpr, name string) (string, bool) {
	fn, recv, recvExpr, ok := methodCallOn(info, call)
	if !ok || fn.Name() != name {
		return "", false
	}
	obj := recv.Obj()
	if obj.Name() != "Pool" || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false
	}
	p := pathString(recvExpr)
	if p == "" {
		return "", false
	}
	return p, true
}

func checkPoolPair(pkg *Package, fd *ast.FuncDecl, report Reporter) {
	info := pkg.Info
	inFunc := func(v *types.Var) bool {
		return v.Pos() >= fd.Pos() && v.Pos() <= fd.End()
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			call, v := poolGetStmt(info, stmt, inFunc)
			if call == nil {
				continue
			}
			path, _ := syncPoolCall(info, call, "Get")
			if v != nil && poolValueEscapes(info, fd.Body, v, path, inFunc) {
				continue // ownership transferred; release is the new owner's duty
			}
			checkPoolRegion(info, block.List[i+1:], call.Pos(), path, report)
		}
		return true
	})
}

// poolGetStmt matches the statement forms a pool fetch takes — an
// assignment whose (single) right-hand side is p.Get() or a type
// assertion on it — returning the Get call and the variable bound to the
// result, nil when the result is discarded.
func poolGetStmt(info *types.Info, stmt ast.Stmt, inFunc func(*types.Var) bool) (*ast.CallExpr, *types.Var) {
	var rhs ast.Expr
	var lhs ast.Expr
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return nil, nil
		}
		rhs = s.Rhs[0]
		if len(s.Lhs) == 1 {
			lhs = s.Lhs[0]
		}
	case *ast.ExprStmt:
		rhs = s.X
	default:
		return nil, nil
	}
	e := ast.Unparen(rhs)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	if _, ok := syncPoolCall(info, call, "Get"); !ok {
		return nil, nil
	}
	if lhs != nil {
		return call, localVar(info, lhs, inFunc)
	}
	return call, nil
}

// poolValueEscapes reports whether the fetched value may outlive the
// function or be retained by other state: returned, stored, sent,
// address-taken, aliased, or handed to a goroutine. A use as the argument
// of the matching Put, or as a plain (borrowing) call argument, is not an
// escape.
func poolValueEscapes(info *types.Info, body *ast.BlockStmt, v *types.Var, path string, inFunc func(*types.Var) bool) bool {
	escaped := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok && !escaped {
			if lv := localVar(info, id, inFunc); lv == v {
				if poolEscapesAt(info, stack, id, v, path) {
					escaped = true
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return escaped
}

func poolEscapesAt(info *types.Info, stack []ast.Node, id *ast.Ident, v *types.Var, path string) bool {
	child := ast.Node(id)
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				return true
			}
		case *ast.AssignStmt:
			// The Get assignment itself binds the variable. Writing the
			// value into one of its own fields or elements
			// (buf.data = append(buf.data, ...)) is a use; any other
			// appearance on a right-hand side aliases or stores it.
			for j, rhs := range n.Rhs {
				if !containsNode(rhs, child) {
					continue
				}
				if j < len(n.Lhs) {
					if base, wrote := peelWriteBase(n.Lhs[j]); wrote {
						anyScope := func(*types.Var) bool { return true }
						if lv := localVar(info, base, anyScope); lv == v {
							continue
						}
					}
				}
				return true
			}
			return false
		case *ast.CallExpr:
			if containsNode(n.Fun, child) {
				return false // receiver position: buf.Reset() is a use, not an escape
			}
			if p, ok := syncPoolCall(info, n, "Put"); ok && p == path {
				return false // the matching release
			}
			// A plain call argument is a borrow; under go it outlives us.
			if i > 0 {
				if _, isGo := stack[i-1].(*ast.GoStmt); isGo {
					return true
				}
			}
			return false
		case *ast.BlockStmt, *ast.ExprStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
			*ast.SwitchStmt, *ast.CaseClause, *ast.TypeSwitchStmt:
			return false
		}
		child = stack[i]
	}
	return false
}

// checkPoolRegion scans the statements after a Get for the matching Put,
// reporting any path that can leave the block first. Mirrors locksafe's
// checkLockedRegion.
func checkPoolRegion(info *types.Info, rest []ast.Stmt, getPos token.Pos, path string, report Reporter) {
	for _, stmt := range rest {
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			if deferReleasesPool(info, s, path) {
				return // panics and every return now recycle the value
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if p, ok := syncPoolCall(info, call, "Put"); ok && p == path {
					return
				}
			}
		case *ast.ReturnStmt, *ast.BranchStmt:
			report(getPos, "%s.Get() value is not recycled before the %s; call %s.Put or defer it", path, describeExit(stmt), path)
			return
		}
		if escapes, pos := returnsWithoutPoolPut(info, stmt, path); escapes {
			report(pos, "early exit skips %s.Put for the value fetched at the start of this block; defer the Put", path)
			return
		}
	}
	report(getPos, "%s.Get() has no matching %s.Put in this block; defer %s.Put immediately after the Get", path, path, path)
}

// deferReleasesPool reports whether the deferred call puts back into the
// pool — directly (defer p.Put(buf)) or via a closure containing the Put.
func deferReleasesPool(info *types.Info, s *ast.DeferStmt, path string) bool {
	if p, ok := syncPoolCall(info, s.Call, "Put"); ok && p == path {
		return true
	}
	lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if p, ok := syncPoolCall(info, call, "Put"); ok && p == path {
				found = true
			}
		}
		return !found
	})
	return found
}

// returnsWithoutPoolPut reports whether stmt contains (outside nested
// function literals) a return while containing no matching Put.
func returnsWithoutPoolPut(info *types.Info, stmt ast.Stmt, path string) (bool, token.Pos) {
	var retPos token.Pos
	hasReturn := false
	hasPut := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if !hasReturn {
				retPos = n.Pos()
			}
			hasReturn = true
		case *ast.CallExpr:
			if p, ok := syncPoolCall(info, n, "Put"); ok && p == path {
				hasPut = true
			}
		}
		return true
	})
	return hasReturn && !hasPut, retPos
}
