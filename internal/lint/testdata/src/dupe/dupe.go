// Package dupe pins suppression interaction when two analyzers report on
// the same line: a directive naming one check must not swallow the
// other's finding, while "all" covers both. (The statements share a line
// via a semicolon precisely to force the position collision.)
package dupe

import (
	"os"

	"apclassifier/internal/bdd"
)

func oneSuppressed(d *bdd.DD, r bdd.Ref) {
	//lint:ignore errdrop the retainrelease finding on this line must survive
	d.Retain(r); os.Remove("/tmp/d")
}

func bothSuppressed(d *bdd.DD, r bdd.Ref) {
	//lint:ignore all one directive may excuse both checks at this position
	d.Retain(r); os.Remove("/tmp/e")
}
