// Package clean uses sync/atomic consistently: every access to hits goes
// through atomic operations, and other fields stay unrestricted.
package clean

import "sync/atomic"

type counter struct {
	hits uint64
	name string
}

func (c *counter) Touch() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counter) Snapshot() uint64 {
	return atomic.LoadUint64(&c.hits)
}

func (c *counter) Reset() {
	atomic.StoreUint64(&c.hits, 0)
}

func (c *counter) Name() string { return c.name }

// published exercises the atomic-typed-field rules: method calls and
// address-of are the sanctioned accesses.
type published struct {
	cur atomic.Pointer[counter]
}

func (p *published) Get() *counter                 { return p.cur.Load() }
func (p *published) Set(c *counter)                { p.cur.Store(c) }
func (p *published) Ptr() *atomic.Pointer[counter] { return &p.cur }
