// Package bad seeds atomicfield violations: the hits field is updated via
// sync/atomic in Touch but read plainly in Snapshot and written through a
// composite literal in Fresh.
package bad

import "sync/atomic"

type counter struct {
	hits uint64
	name string
}

func (c *counter) Touch() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counter) Snapshot() uint64 {
	return c.hits // plain read of an atomic field
}

func Fresh() *counter {
	return &counter{hits: 1, name: "seeded"} // plain composite-literal write
}
