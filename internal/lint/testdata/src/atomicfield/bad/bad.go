// Package bad seeds atomicfield violations: the hits field is updated via
// sync/atomic in Touch but read plainly in Snapshot and written through a
// composite literal in Fresh, and the atomic-typed cur field is copied by
// value in Leak.
package bad

import "sync/atomic"

type counter struct {
	hits uint64
	name string
}

func (c *counter) Touch() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counter) Snapshot() uint64 {
	return c.hits // plain read of an atomic field
}

func Fresh() *counter {
	return &counter{hits: 1, name: "seeded"} // plain composite-literal write
}

type published struct {
	cur atomic.Pointer[counter]
}

func (p *published) Set(c *counter) {
	p.cur.Store(c)
}

func (p *published) Leak() atomic.Pointer[counter] {
	return p.cur // value copy of an atomic-typed field
}
