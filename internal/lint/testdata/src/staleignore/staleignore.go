// Package staleignore exercises directive hygiene: a directive that
// still suppresses a finding stays silent, one covering clean code is
// reported stale, one naming a check that does not exist is always
// reported, and a guard naming a missing mutex field is reported (and
// causes the lockguard violation it was supposed to excuse).
package staleignore

import (
	"os"
	"sync"
)

func used() {
	//lint:ignore errdrop fixture keeps this directive in use
	os.Remove("/tmp/x")
}

func stale() {
	//lint:ignore errdrop nothing below can drop an error anymore
	_ = os.Getenv("HOME")
}

func typo() {
	//lint:ignore errdorp misspelled check name never suppresses
	_ = os.Getenv("PATH")
}

type counters struct {
	mu sync.Mutex
	//lint:guard mux
	n int
}

func (c *counters) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}
