// Package guardvalue checks lockguard on methods with value receivers:
// the receiver path still matches textually, so a value-receiver method
// that locks the guard passes, the *Locked naming convention still
// applies, and one that does neither is reported. The struct holds the
// mutex by pointer so a value receiver genuinely shares lock state
// (copying an embedded mutex would be locksafe's complaint, not ours).
package guardvalue

import "sync"

type box struct {
	mu *sync.Mutex
	//lint:guard mu
	n int
}

func (b box) get() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

func (b box) sizeLocked() int {
	return b.n
}

func (b box) peek() int {
	return b.n // no guard, no *Locked suffix: reported
}
