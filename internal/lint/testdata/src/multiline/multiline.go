// Package multiline pins the directive coverage window against
// multi-line statements: a directive covers its own line and the next,
// so a finding on a call whose statement opens on the covered line is
// suppressed even when the call spans further lines, while a finding two
// lines below a directive survives (and that directive, suppressing
// nothing, is itself reported stale).
package multiline

import "os"

func spanningSuppressed() {
	//lint:ignore errdrop the call begins on the covered line
	os.Symlink(
		"/tmp/src",
		"/tmp/dst")
}

func trailingOnOpeningLine() {
	os.Symlink( //lint:ignore errdrop trailing directive on the opening line
		"/tmp/src",
		"/tmp/dst")
}

func windowEndsAfterOneLine() {
	//lint:ignore errdrop covers only the next line, not the one after
	_ = os.Getenv("HOME")
	os.Remove("/tmp/z") // two lines below the directive: reported
}
