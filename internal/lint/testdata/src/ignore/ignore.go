// Package ignore exercises the suppression directive: one finding is
// suppressed by a trailing directive, one by a directive on the line
// above, one directive is malformed (missing the reason), and one finding
// survives.
package ignore

import "os"

func suppressedTrailing() {
	os.Remove("/tmp/a") //lint:ignore errdrop fixture demonstrates trailing suppression
}

func suppressedAbove() {
	//lint:ignore errdrop fixture demonstrates suppression from the line above
	os.Remove("/tmp/b")
}

func malformedDirective() {
	//lint:ignore errdrop
	os.Remove("/tmp/c")
}

func survives() {
	os.Remove("/tmp/d") // no directive: reported
}
