// Package clean keeps every Ref with its producing DD and crosses managers
// only through bdd.Transfer, the sanctioned path.
package clean

import "apclassifier/internal/bdd"

func sameDD(a *bdd.DD) bdd.Ref {
	x := a.Var(1)
	y := a.Not(x)
	return a.And(x, y)
}

func transferred(a, b *bdd.DD) bdd.Ref {
	x := a.Var(1)
	z := bdd.Transfer(b, a, x) // z now belongs to b
	return b.Not(z)
}

func reassigned(a, b *bdd.DD) bdd.Ref {
	x := a.Var(1)
	x = b.Var(2) // ownership moves with the assignment
	return b.Not(x)
}
