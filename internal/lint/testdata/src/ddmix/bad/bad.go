// Package bad seeds a ddmix violation: a Ref produced by DD a is handed to
// a method of DD b without going through bdd.Transfer.
package bad

import "apclassifier/internal/bdd"

func mix(a, b *bdd.DD) {
	x := a.Var(1)
	_ = b.Not(x) // x belongs to a
}

func mixBinary(a, b *bdd.DD) {
	x := a.Var(1)
	y := b.Var(2)
	_ = b.And(x, y) // x belongs to a, y is fine
}
