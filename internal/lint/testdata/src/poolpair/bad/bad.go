// Package bad seeds poolpair violations: a Get with no Put at all, an
// error path that returns before the Put, and a Get whose result is
// discarded outright.
package bad

import (
	"errors"
	"sync"
)

type buffer struct{ data []byte }

type srv struct {
	bufs sync.Pool
}

func (s *srv) missingPut() int {
	buf := s.bufs.Get().(*buffer)
	return len(buf.data) // the buffer silently falls back to the GC
}

func (s *srv) earlyReturn(fail bool) error {
	buf := s.bufs.Get().(*buffer)
	if fail {
		return errors.New("bail") // skips the Put below
	}
	s.bufs.Put(buf)
	return nil
}

func (s *srv) discardedGet() {
	s.bufs.Get() // fetched and dropped on the floor
}
