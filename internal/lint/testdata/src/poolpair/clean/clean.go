// Package clean holds pooling patterns poolpair must accept: the
// canonical deferred Put (covers error returns and panics), a deferred
// closure containing the Put, straight-line Get/Put with the buffer
// filled in between, and ownership transfer to the caller.
package clean

import "sync"

type buffer struct{ data []byte }

type srv struct {
	bufs sync.Pool
}

func (s *srv) deferredPut() int {
	buf := s.bufs.Get().(*buffer)
	defer s.bufs.Put(buf)
	return len(buf.data)
}

func (s *srv) closurePut() {
	buf := s.bufs.Get().(*buffer)
	defer func() {
		buf.data = buf.data[:0]
		s.bufs.Put(buf)
	}()
	buf.data = append(buf.data, 1)
}

func (s *srv) directPut(n int) {
	buf := s.bufs.Get().(*buffer)
	buf.data = append(buf.data[:0], byte(n))
	s.bufs.Put(buf)
}

func (s *srv) handoff() *buffer {
	buf := s.bufs.Get().(*buffer)
	return buf // ownership transfers; the caller owes the Put
}
