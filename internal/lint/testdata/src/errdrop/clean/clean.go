// Package clean handles or explicitly discards every error, and exercises
// the allowlist: fmt printing, builder writes, deferred Close.
package clean

import (
	"fmt"
	"os"
	"strings"
)

func handled() error {
	if err := os.Remove("/tmp/aplint-fixture"); err != nil {
		return err
	}
	return nil
}

func explicitDiscard() {
	_ = os.Remove("/tmp/aplint-fixture")
}

func allowlisted(f *os.File) {
	defer f.Close()
	var b strings.Builder
	b.WriteString("hello")
	fmt.Println(b.String())
}
