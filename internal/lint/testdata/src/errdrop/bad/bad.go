// Package bad seeds errdrop violations: statement-position calls whose
// error results silently vanish.
package bad

import "os"

func dropRemove() {
	os.Remove("/tmp/aplint-fixture") // error discarded
}

func dropInGoroutine() {
	go os.Remove("/tmp/aplint-fixture") // error discarded in goroutine
}

func dropClose(f *os.File) {
	f.Close() // non-deferred Close, error discarded
}
