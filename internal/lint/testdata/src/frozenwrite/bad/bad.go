// Package bad seeds frozenwrite violations: field writes on a cached
// behavior (directly, through an alias, and via increment), a write
// through a chain of pointer-shaped projections derived from a snapshot,
// and a mutating-method call on state reachable from a snapshot.
package bad

import (
	"apclassifier/internal/aptree"
	"apclassifier/internal/network"
)

func mutateCached(b *network.Behavior) {
	b.Edges = nil // field write on a frozen value
	b.Rewrites++  // increment is a write too
}

func mutateAlias(b *network.Behavior) {
	alias := b
	alias.Ingress = 0 // the alias still points at the frozen value
}

func mutateDerived(s *aptree.Snapshot) {
	s.Tree().Root().AtomID = 7 // derived pointer chain reaches the snapshot
}

func mutateViaMethod(s *aptree.Snapshot) {
	s.Tree().Root().Member.Set(0, true) // Set* on snapshot-reachable state
}

func renumberLeafInPlace(s *aptree.Snapshot, pkt []byte) {
	leaf, _ := s.Classify(pkt)
	leaf.AtomID = 9 // delta renumbering is copy-on-write, never in place
}

func deltaOnPublishedTree(s *aptree.Snapshot) {
	s.Tree().RemovePredicate(3) // deltas go through Manager.Update, not the published tree
}

func renumberViaFlat(s *aptree.Snapshot, pkt []byte) {
	s.Flat().Classify(pkt).AtomID = 3 // the flat core serves the same frozen leaves
}

func retainNodeAcrossEpochs(m *aptree.Manager, pkt []byte) {
	leaf, _ := m.Snapshot().Classify(pkt)
	m.Update(func(tx *aptree.Tx) {})
	leaf.AtomID = 5 // retained across a delta publish; nodes belong to their epoch forever
}

func mutateAtomViewLeaf(s *aptree.Snapshot) {
	s.Atoms().Leaf(0).AtomID = 1 // AtomView hands out the snapshot's own nodes
}
