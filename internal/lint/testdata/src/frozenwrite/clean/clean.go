// Package clean holds mutation patterns frozenwrite must accept: Clone
// is the sanctioned escape hatch, freshly constructed values are the
// caller's to mutate, copying an element out of a frozen slice breaks
// the alias, and reads of any depth are always fine.
package clean

import (
	"apclassifier/internal/aptree"
	"apclassifier/internal/network"
)

func cloneThenMutate(b *network.Behavior) *network.Behavior {
	c := b.Clone()
	c.Rewrites++
	c.Edges = append(c.Edges, network.Edge{})
	return c
}

func copyElementWrite(b *network.Behavior) int {
	if len(b.Edges) == 0 {
		return 0
	}
	e := b.Edges[0] // value copy: mutating it cannot reach the cache
	e.Box = 99
	return e.Box
}

func freshConstruction(ingress int) *network.Behavior {
	nb := &network.Behavior{}
	nb.Ingress = ingress
	return nb
}

func readOnly(s *aptree.Snapshot) (int, bool) {
	return s.Tree().NumLeaves(), s.Tree().Root().Member.Get(0)
}

// The delta engine's copy-on-write discipline: the replacement node is
// built fresh, so writing it cannot reach the published snapshot.
func copyOnWriteLeaf(s *aptree.Snapshot, pkt []byte) *aptree.Node {
	leaf, _ := s.Classify(pkt)
	nn := &aptree.Node{}
	nn.AtomID = leaf.AtomID + 1
	return nn
}

// The flat-builder idiom: the compiled core hanging off a snapshot is as
// frozen as the tree it mirrors — reads of any depth are fine, and its
// stats are a value copy the caller owns.
func flatReadOnly(s *aptree.Snapshot, pkt []byte) (int32, int) {
	leaf := s.Flat().Classify(pkt)
	st := s.Flat().Stats()
	st.Nodes++ // value copy: mutating it cannot reach the snapshot
	return leaf.AtomID, st.Nodes
}

// The snapshot-native analyzer idiom: atoms retained through an AtomView
// are read every which way but never written.
func atomViewReadOnly(s *aptree.Snapshot) (int, bool) {
	v := s.Atoms()
	return v.N(), v.Member(v.IDs().Min()).Get(0)
}
