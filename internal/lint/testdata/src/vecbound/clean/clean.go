// Package clean holds label patterns vecbound must accept: constants and
// conversions or concatenations of constants, a local whose every
// assignment is drawn from the fixed set, and pre-resolving children by
// ranging over an all-constant literal (the dropCounters pattern).
package clean

import "apclassifier/internal/obs"

var vec = obs.Default.CounterVec("fixture_ops_total", "Ops by kind.", "kind")

type opKind string

const (
	kindRead        = "read"
	opWrite  opKind = "write"
)

func constLabels() {
	vec.With(kindRead).Inc()
	vec.With(string(opWrite)).Inc()
	vec.With("slow-" + kindRead).Inc()
}

func boundedLocal(hit bool) {
	k := "hit"
	if !hit {
		k = "miss"
	}
	vec.With(k).Inc()
}

var children = func() map[string]*obs.Counter {
	out := make(map[string]*obs.Counter)
	for _, k := range []string{"a", "b", "c"} {
		out[k] = vec.With(k)
	}
	return out
}()

// The delta-firehose idiom: children are resolved at init from the named
// op constants, and request strings only select among them — unknown ops
// never mint a counter.
const (
	opAdd    = "add-fwd"
	opRemove = "remove-fwd"
)

var opCounters = func() map[string]*obs.Counter {
	out := make(map[string]*obs.Counter)
	for _, op := range []string{opAdd, opRemove} {
		out[op] = vec.With(op)
	}
	return out
}()

func wireLabelResolved(op string) {
	if c, ok := opCounters[op]; ok {
		c.Inc()
	}
}
