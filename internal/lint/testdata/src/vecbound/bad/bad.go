// Package bad seeds vecbound violations: labels taken straight from a
// parameter, computed with Sprintf, and flowed through a local tainted
// by unbounded input.
package bad

import (
	"fmt"

	"apclassifier/internal/obs"
)

var vec = obs.Default.CounterVec("fixture_ops_total", "Ops by kind.", "kind")

func dynamicLabel(kind string) {
	vec.With(kind).Inc() // one child counter per distinct caller string
}

func computedLabel(id int) {
	vec.With(fmt.Sprintf("id-%d", id)).Inc() // unbounded interpolation
}

func taintedVar(kind string) {
	k := "prefix-" + kind // bounded prefix, unbounded suffix
	vec.With(k).Inc()
}

type deltaReq struct{ Op string }

func wireLabel(rq deltaReq) {
	vec.With(rq.Op).Inc() // label straight off the wire: one child per client string
}
