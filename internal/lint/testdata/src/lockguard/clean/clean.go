// Package clean touches its mu-guarded field only in the sanctioned ways:
// under the guard, from a *Locked helper, or in a constructor literal.
package clean

import "sync"

type store struct {
	mu sync.RWMutex
	//lint:guard mu
	data map[string]int
}

func newStore() *store {
	return &store{data: map[string]int{}} // fresh value: nothing to guard yet
}

func (s *store) Get(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data[k]
}

func (s *store) Put(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(k, v)
}

// putLocked's name promises the caller holds mu.
func (s *store) putLocked(k string, v int) {
	s.data[k] = v
}
