// Package bad seeds lockguard violations: data is declared mu-guarded but
// Peek reads it with no lock and Wrong reads it holding the wrong mutex.
package bad

import "sync"

type store struct {
	mu  sync.RWMutex
	aux sync.Mutex
	//lint:guard mu
	data map[string]int
}

func (s *store) Peek(k string) int {
	return s.data[k] // no lock at all
}

func (s *store) Wrong(k string) int {
	s.aux.Lock()
	defer s.aux.Unlock()
	return s.data[k] // holds aux, not the declared guard
}

func (s *store) Put(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[k] = v // fine: guard held
}
