// Package bad seeds locksafe violations: copying a lock-bearing struct,
// returning with the mutex held, and locking without any unlock.
package bad

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func copyByDeref(g *guarded) int {
	h := *g // copies g.mu
	return h.n
}

func copyByArg(g *guarded) {
	sink(*g) // passes the lock by value
}

func sink(guarded) {}

func earlyReturn(g *guarded) int {
	g.mu.Lock()
	if g.n > 0 {
		return g.n // leaves with the lock held
	}
	g.mu.Unlock()
	return 0
}

func neverUnlocked(g *guarded) {
	g.mu.Lock()
	g.n++
}
