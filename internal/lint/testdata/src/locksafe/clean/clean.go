// Package clean shows the sanctioned locking shapes: defer directly after
// Lock, straight-line Lock/Unlock pairing, branches that unlock before
// returning, and read-locking with RUnlock.
package clean

import "sync"

type guarded struct {
	mu sync.RWMutex
	n  int
}

func deferred(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	return g.n
}

func straightLine(g *guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func branchUnlocks(g *guarded) int {
	g.mu.Lock()
	if g.n > 0 {
		g.mu.Unlock()
		return 1
	}
	g.mu.Unlock()
	return 0
}

func readLocked(g *guarded) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

func viaPointer(g *guarded) *guarded {
	h := g // copying the pointer is fine
	return h
}

// newMutex names the lock type without copying a lock value: the builtin
// new takes a type argument, not a value.
func newMutex() *sync.RWMutex {
	return new(sync.RWMutex)
}
