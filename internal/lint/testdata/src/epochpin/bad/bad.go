// Package bad seeds epochpin violations: a double pin in one walk, a
// live Manager read after pinning, a double raw atomic load, and a
// closure that captures a pinned snapshot yet pins its own epoch.
package bad

import (
	"sync/atomic"

	"apclassifier/internal/aptree"
	"apclassifier/internal/header"
)

type holder struct {
	snap atomic.Pointer[aptree.Snapshot]
}

func doublePin(m *aptree.Manager) (uint64, uint64) {
	a := m.Snapshot()
	b := m.Snapshot() // second epoch mid-walk
	return a.Version(), b.Version()
}

func liveAfterPin(m *aptree.Manager, pkt header.Packet) int {
	s := m.Snapshot()
	leaf, _ := s.Classify(pkt)
	_ = leaf
	return m.NumLive() // answers from the live epoch, not the pinned one
}

func (h *holder) atomicDoubleLoad() bool {
	a := h.snap.Load()
	b := h.snap.Load() // second raw load straddles a concurrent swap
	return a == b
}

func capturedMix(m *aptree.Manager) func() bool {
	s := m.Snapshot()
	return func() bool {
		return m.Snapshot() == s // closure re-pins while holding s
	}
}

func liveTreeAfterDelta(m *aptree.Manager) int {
	before := m.Snapshot()
	m.Update(func(tx *aptree.Tx) {}) // apply a delta batch
	return m.Tree().NumLeaves() - before.Tree().NumLeaves()
}

func deltaLeafDiff(m *aptree.Manager) int {
	a := m.Snapshot()
	m.Update(func(tx *aptree.Tx) {})
	b := m.Snapshot() // second pin to diff the delta's epochs
	return b.Tree().NumLeaves() - a.Tree().NumLeaves()
}

func flatDiffAcrossEpochs(m *aptree.Manager, pkt header.Packet) bool {
	f := m.Snapshot().Flat()
	p, _ := m.Snapshot().ClassifyPointer(pkt) // re-pins: compares engines across epochs
	return f.Classify(pkt) == p
}

// The pre-refactor verify.Analyzer constructor: pin an epoch, then
// assemble the analysis state from the live tree — the mixing the
// snapshot-native Analyzer exists to rule out.
func analyzerBuildFromLiveTree(m *aptree.Manager) (*aptree.Snapshot, int) {
	s := m.Snapshot()
	return s, m.Tree().NumLeaves() // atom views must come from s, not the live tree
}
