// Package clean holds epoch-correct patterns epochpin must accept: one
// pin answering the whole walk, sibling closures each pinning their own
// epoch per call (the RegisterMetrics pattern), live reads with no pin
// in scope, and a closure that only reads its captured snapshot.
package clean

import (
	"apclassifier/internal/aptree"
	"apclassifier/internal/header"
)

func pinnedWalk(m *aptree.Manager, pkt header.Packet) (int, uint64) {
	s := m.Snapshot()
	leaf, ver := s.Classify(pkt)
	_ = leaf
	return s.NumLive(), ver
}

func independentClosures(m *aptree.Manager) []func() int {
	return []func() int{
		func() int { return m.Snapshot().NumLive() },
		func() int { return m.Snapshot().Tree().NumLeaves() },
	}
}

func liveOnly(m *aptree.Manager) (uint64, int) {
	return m.Version(), m.NumLive()
}

func capturedReadOnly(m *aptree.Manager) func() uint64 {
	s := m.Snapshot()
	return func() uint64 { return s.Version() }
}

// The delta-engine idiom: apply the batch, then pin the epoch it
// published — stats and leaf counts all answer from that one snapshot.
func deltaThenPin(m *aptree.Manager) (int, uint64) {
	m.Update(func(tx *aptree.Tx) {})
	s := m.Snapshot()
	return s.Tree().NumLeaves(), s.Version()
}

// The flat-builder idiom: one pin serves both engines, so a differential
// probe compares the flat core against the pointer tree of the same
// epoch — never across a concurrent publish.
func flatDiffOnePin(m *aptree.Manager, pkt header.Packet) bool {
	s := m.Snapshot()
	f := s.Flat()
	p, _ := s.ClassifyPointer(pkt)
	return f.Classify(pkt) == p
}

// The snapshot-native verify idiom: one pin supplies the epoch, the atom
// view, and every answer derived from them.
func analyzerBuildPinned(m *aptree.Manager) (uint64, int) {
	s := m.Snapshot()
	return s.Version(), s.Atoms().N()
}
