//go:build apdebug

package tagged

import "os"

func debugOnly() {
	os.Remove("/tmp/aplint-tagged") // errdrop bait: must never be analyzed
}
