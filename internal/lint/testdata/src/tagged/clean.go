// Package tagged checks build-constraint handling in the loader: the
// sibling file is gated behind the apdebug tag and contains a seeded
// errdrop violation, so any finding from this package means the loader
// ignored the constraint.
package tagged

func Touch() error { return nil }
