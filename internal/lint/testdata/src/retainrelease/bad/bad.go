// Package bad seeds retainrelease violations: a retained local that never
// escapes or gets released, and a Release of a constant Ref that was never
// retained (a guaranteed runtime panic).
package bad

import "apclassifier/internal/bdd"

func leak(d *bdd.DD) {
	r := d.Var(1)
	d.Retain(r) // never released, never escapes
	if r == bdd.False {
		println("impossible")
	}
}

func releaseUnretained(d *bdd.DD) {
	r := bdd.Ref(7)
	d.Release(r) // never retained in this scope
}
