// Package clean shows the sanctioned Retain/Release shapes: balanced
// retain/deferred release, and ownership transfer by returning or storing
// the retained Ref.
package clean

import "apclassifier/internal/bdd"

type holder struct {
	d   *bdd.DD
	ref bdd.Ref
}

func balanced(d *bdd.DD) {
	r := d.Var(2)
	d.Retain(r)
	defer d.Release(r)
	if r == bdd.False {
		println("impossible")
	}
}

func handoff(d *bdd.DD) bdd.Ref {
	r := d.Var(3)
	d.Retain(r)
	return r // ownership transfers to the caller
}

func store(d *bdd.DD) *holder {
	r := d.Var(4)
	d.Retain(r)
	return &holder{d: d, ref: r} // ownership transfers to the holder
}

func (h *holder) drop() {
	h.d.Release(h.ref) // field refs carry no local claim
}
