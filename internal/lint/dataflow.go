package lint

// dataflow.go is the shared intraprocedural value-flow engine behind the
// concurrency-invariant analyzers (epochpin, frozenwrite, poolpair). It
// answers one question per function: which local variables may alias a
// value produced by a set of "source" expressions? The pass follows
// assignments, short variable declarations, var specs, type assertions,
// tuple-returning calls, range clauses and — because function literals
// resolve outer locals to the same *types.Var objects — goroutine and
// closure captures, iterating to a fixed point.
//
// Taint deliberately flows only through pointer-shaped projections
// (pointers, slices, maps, channels, interfaces): indexing a tainted
// slice of structs copies the element, and mutating a copy cannot reach
// the original memory, so the flow stops there. Freshly constructed
// values (composite literals, new/make, sanctioned cloning constructors)
// never carry taint even when their type matches a source.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// flowFact records why a local variable is tainted: the position of the
// assignment that first tainted it and the tag the source classifier
// attached to the originating expression (analyzer-specific, e.g. the
// home package of a frozen type).
type flowFact struct {
	pos token.Pos
	tag string
}

// flowConfig configures one value-flow query over a function.
type flowConfig struct {
	// source classifies non-identifier expressions that produce a
	// tracked value directly (a snapshot load, a Pool.Get). ok=false
	// means the expression is not itself a source; it may still be
	// tainted structurally.
	source func(e ast.Expr) (tag string, ok bool)
	// sourceType classifies values by type alone — consulted for any
	// expression source did not claim, and for the per-position result
	// types of tuple-returning calls, where no sub-expression exists to
	// hand to source.
	sourceType func(t types.Type) (tag string, ok bool)
	// fresh marks expressions whose value is provably newly constructed
	// (composite literals, new/make, Clone results): they and anything
	// assigned from them are never tainted, even when sourceType would
	// match their type.
	fresh func(e ast.Expr) bool
	// seed taints variables that enter the function already carrying a
	// tracked value (parameters, receivers).
	seed func(v *types.Var) (tag string, ok bool)
	// derive propagates taint through pointer-shaped projections:
	// selecting, indexing, slicing or dereferencing a tainted value
	// taints the result when the result can still reach the original
	// memory. Method calls on a tainted receiver with a pointer-shaped
	// result are treated as getters into the tainted value (s.Tree()),
	// and the builtin append carries the taint of its arguments.
	derive bool
}

// flowState is the engine's per-function working set; after analyze() it
// doubles as the query interface for "is this expression tainted?".
type flowState struct {
	info   *types.Info
	cfg    flowConfig
	inFunc func(*types.Var) bool
	vars   map[*types.Var]flowFact
}

// flowVars runs the value-flow pass over fd and returns the final state.
// Use state.vars for the tainted-variable set and state.tainted for
// arbitrary expressions (e.g. the base of an assignment target).
func flowVars(info *types.Info, fd *ast.FuncDecl, cfg flowConfig) *flowState {
	fl := &flowState{
		info: info,
		cfg:  cfg,
		inFunc: func(v *types.Var) bool {
			return v.Pos() >= fd.Pos() && v.Pos() <= fd.End()
		},
		vars: make(map[*types.Var]flowFact),
	}
	if cfg.seed != nil {
		seedFields := func(fl2 *ast.FieldList) {
			if fl2 == nil {
				return
			}
			for _, f := range fl2.List {
				for _, name := range f.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						if tag, isSrc := cfg.seed(v); isSrc {
							fl.vars[v] = flowFact{name.Pos(), tag}
						}
					}
				}
			}
		}
		seedFields(fd.Recv)
		seedFields(fd.Type.Params)
	}
	if fd.Body == nil {
		return fl
	}
	// Fixed point: each round may taint more variables (never fewer),
	// so the loop terminates once a full pass adds nothing.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				changed = fl.flowAssign(n.Lhs, n.Rhs) || changed
			case *ast.ValueSpec:
				changed = fl.flowSpec(n) || changed
			case *ast.RangeStmt:
				changed = fl.flowRange(n) || changed
			}
			return true
		})
	}
	return fl
}

// taint marks the variable behind lhs (if function-local) with fact.
func (fl *flowState) taint(lhs ast.Expr, fact flowFact) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	v := localVar(fl.info, id, fl.inFunc)
	if v == nil {
		return false
	}
	if _, seen := fl.vars[v]; seen {
		return false
	}
	fl.vars[v] = fact
	return true
}

func (fl *flowState) flowAssign(lhs, rhs []ast.Expr) bool {
	changed := false
	if len(lhs) == len(rhs) {
		for i := range lhs {
			if fact, ok := fl.tainted(rhs[i]); ok {
				changed = fl.taint(lhs[i], fact) || changed
			}
		}
		return changed
	}
	// Tuple form: x, y, err := f(). No per-value sub-expression exists,
	// so judge each result position by type — and, under derive, apply
	// taintedCall's getter rule here too: a tuple-returning method on a
	// tainted receiver hands out pointer-shaped projections of it
	// (leaf, ver := s.Classify(pkt)).
	if len(rhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	tup, ok := fl.info.TypeOf(call).(*types.Tuple)
	if !ok || tup.Len() != len(lhs) {
		return false
	}
	var recvFact flowFact
	var recvTainted bool
	if fl.cfg.derive {
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			if s := fl.info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
				recvFact, recvTainted = fl.tainted(sel.X)
			}
		}
	}
	for i := range lhs {
		if fl.cfg.sourceType != nil {
			if tag, isSrc := fl.cfg.sourceType(tup.At(i).Type()); isSrc {
				changed = fl.taint(lhs[i], flowFact{call.Pos(), tag}) || changed
				continue
			}
		}
		if recvTainted && pointerShaped(tup.At(i).Type()) {
			changed = fl.taint(lhs[i], recvFact) || changed
		}
	}
	return changed
}

func (fl *flowState) flowSpec(spec *ast.ValueSpec) bool {
	changed := false
	if len(spec.Values) == len(spec.Names) {
		for i, name := range spec.Names {
			if fact, ok := fl.tainted(spec.Values[i]); ok {
				changed = fl.taint(name, fact) || changed
			}
		}
	}
	return changed
}

func (fl *flowState) flowRange(r *ast.RangeStmt) bool {
	if !fl.cfg.derive || r.Value == nil {
		return false
	}
	fact, ok := fl.tainted(r.X)
	if !ok {
		return false
	}
	// Ranging a tainted container taints the element variable only when
	// elements are pointer-shaped; value elements are copies.
	if t := fl.info.TypeOf(r.Value); t != nil && pointerShaped(t) {
		return fl.taint(r.Value, fact)
	}
	return false
}

// tainted reports whether evaluating e may yield a tracked value, and
// the originating fact when it does.
func (fl *flowState) tainted(e ast.Expr) (flowFact, bool) {
	e = ast.Unparen(e)
	if e == nil {
		return flowFact{}, false
	}
	if fl.cfg.fresh != nil && fl.cfg.fresh(e) {
		return flowFact{}, false
	}
	switch x := e.(type) {
	case *ast.Ident:
		if v := localVar(fl.info, x, fl.inFunc); v != nil {
			fact, ok := fl.vars[v]
			return fact, ok
		}
		// Non-local identifiers (package-level vars) are judged by type.
		if fl.cfg.sourceType != nil {
			if _, isVar := fl.info.Uses[x].(*types.Var); isVar {
				if t := fl.info.TypeOf(x); t != nil {
					if tag, ok := fl.cfg.sourceType(t); ok {
						return flowFact{x.Pos(), tag}, true
					}
				}
			}
		}
		return flowFact{}, false
	case *ast.TypeAssertExpr:
		return fl.tainted(x.X)
	}
	if fl.cfg.source != nil {
		if tag, ok := fl.cfg.source(e); ok {
			return flowFact{e.Pos(), tag}, true
		}
	}
	if fl.cfg.sourceType != nil {
		if t := fl.info.TypeOf(e); t != nil {
			if tag, ok := fl.cfg.sourceType(t); ok {
				return flowFact{e.Pos(), tag}, true
			}
		}
	}
	if fl.cfg.derive {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if t := fl.info.TypeOf(e); t != nil && pointerShaped(t) {
				return fl.tainted(x.X)
			}
		case *ast.IndexExpr:
			if t := fl.info.TypeOf(e); t != nil && pointerShaped(t) {
				return fl.tainted(x.X)
			}
		case *ast.SliceExpr:
			return fl.tainted(x.X) // a subslice shares the backing array
		case *ast.StarExpr:
			if t := fl.info.TypeOf(e); t != nil && pointerShaped(t) {
				return fl.tainted(x.X)
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				return fl.tainted(x.X)
			}
		case *ast.CallExpr:
			return fl.taintedCall(x)
		}
	}
	return flowFact{}, false
}

// taintedCall handles taint through calls under derive: the builtin
// append carries its arguments' taint, and a method call on a tainted
// receiver returning something pointer-shaped is a getter into the
// tainted value (s.Tree(), b.Path()).
func (fl *flowState) taintedCall(call *ast.CallExpr) (flowFact, bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := fl.info.Uses[id].(*types.Builtin); isBuiltin {
			for _, arg := range call.Args {
				if fact, ok := fl.tainted(arg); ok {
					return fact, true
				}
			}
			return flowFact{}, false
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return flowFact{}, false
	}
	if s := fl.info.Selections[sel]; s == nil || s.Kind() != types.MethodVal {
		return flowFact{}, false
	}
	if t := fl.info.TypeOf(call); t == nil || !pointerShaped(t) {
		return flowFact{}, false
	}
	return fl.tainted(sel.X)
}

// pointerShaped reports whether a value of type t can still reach the
// memory it was projected from: pointers, slices, maps, channels and
// interfaces share state; plain structs, arrays and scalars copy.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// methodCallOn resolves call as a method invocation and returns the
// callee, its receiver's (pointer-stripped) named type, and the receiver
// expression. ok=false for plain function calls, conversions, and calls
// through function-typed variables.
func methodCallOn(info *types.Info, call *ast.CallExpr) (fn *types.Func, recv *types.Named, recvExpr ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, nil, false
	}
	fn = calleeFunc(info, call)
	if fn == nil {
		return nil, nil, nil, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return nil, nil, nil, false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return nil, nil, nil, false
	}
	return fn, named, sel.X, true
}

// namedDeclaredIn reports whether named is the type `name` declared in a
// package whose import path is pkg or ends in "/pkg" — the same
// suffix-matching rule bddTypeName uses, so analyzers work identically
// on the real module and on fixture packages importing it.
func namedDeclaredIn(named *types.Named, pkg, name string) bool {
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pkgPathIs(obj.Pkg().Path(), pkg)
}

// pkgPathIs reports whether path is pkg or ends in "/pkg".
func pkgPathIs(path, pkg string) bool {
	if path == pkg {
		return true
	}
	n := len(path) - len(pkg)
	return n > 0 && path[n-1] == '/' && path[n:] == pkg
}
