package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package of the module.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is a fully loaded and type-checked set of packages sharing one
// FileSet. Analyzers run over a Module so cross-package facts are visible.
type Module struct {
	Root string // directory containing go.mod
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package
}

// Lookup returns the loaded package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package {
	for _, p := range m.Pkgs {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// loader type-checks module packages from source, resolving module-internal
// imports recursively and everything else through the compiler's export
// data (stdlib only — the module has no external dependencies).
type loader struct {
	root    string
	modPath string
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // by import path; nil entry = in progress
	order   []*Package
}

func newLoader(root, modPath string) *loader {
	return &loader{
		root:    root,
		modPath: modPath,
		fset:    token.NewFileSet(),
		std:     importer.Default(),
		pkgs:    make(map[string]*Package),
	}
}

// ModulePath reads the module path from root/go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// FindModuleRoot walks up from dir to the nearest directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule parses and type-checks every package under root (skipping
// testdata, vendor, hidden and underscore directories). Test files are not
// loaded: the analyzers target production code, and the errdrop check is
// specified to exclude tests.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	ld := newLoader(root, modPath)
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := ld.load(path, dir); err != nil {
			return nil, err
		}
	}
	return &Module{Root: root, Path: modPath, Fset: ld.fset, Pkgs: ld.order}, nil
}

// LoadDir type-checks the single package in dir under the synthetic import
// path, resolving its imports against the module at root. It is the fixture
// loader used by the analyzer tests.
func LoadDir(root, dir, path string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	ld := newLoader(root, modPath)
	dir, err = filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := ld.load(path, dir)
	if err != nil {
		return nil, err
	}
	// Only the fixture package itself is analyzed; its module-internal
	// dependencies stay out of m.Pkgs so diagnostics never leak from them.
	return &Module{Root: root, Path: modPath, Fset: ld.fset, Pkgs: []*Package{pkg}}, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// load parses and type-checks one directory as the package at path.
func (ld *loader) load(path, dir string) (*Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return pkg, nil
	}
	ld.pkgs[path] = nil // mark in progress

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		full := filepath.Join(dir, name)
		if !buildIncluded(full) {
			continue
		}
		f, err := parser.ParseFile(ld.fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*moduleImporter)(ld),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, ld.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	ld.pkgs[path] = pkg
	ld.order = append(ld.order, pkg)
	return pkg, nil
}

// buildIncluded reports whether a file's //go:build constraint (if any)
// holds under the default build configuration: GOOS, GOARCH, the gc tool
// chain, and release tags — and no custom tags. Files gated behind custom
// tags such as apdebug are excluded, mirroring what `go build ./...`
// compiles. (GOOS/GOARCH filename suffixes are not interpreted; this
// module has no platform-specific files.)
func buildIncluded(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "package ") {
			break // constraints must precede the package clause
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			return true // malformed constraint: let the type checker complain
		}
		return expr.Eval(func(tag string) bool {
			return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" ||
				tag == "unix" || strings.HasPrefix(tag, "go1")
		})
	}
	return true
}

// moduleImporter resolves module-internal import paths from source and
// delegates the rest (standard library) to the default export-data
// importer.
type moduleImporter loader

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	ld := (*loader)(mi)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, ld.modPath), "/")
		pkg, err := ld.load(path, filepath.Join(ld.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}
