package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FrozenWrite enforces the publish-then-freeze contract of the query
// path: once an aptree.Snapshot, a frozen bdd.View, or a cached
// network.Behavior is published, every field reachable from it is
// immutable. Outside each type's home package (its constructor/publish
// package), the analyzer reports
//
//   - field writes through a value that may alias a frozen one —
//     directly (s.version = 2), through a derived pointer-shaped
//     projection (s.Tree().Root, b.Edges[0].Box), or through any local
//     the value-flow engine proved aliases it;
//   - calls to mutating-sounding methods (Set*, Add*, Reset, ...) on
//     such values.
//
// Behavior.Clone is the sanctioned escape hatch: a Clone result — like a
// composite literal, new/make, or nil — is fresh, and writes to it (and
// to anything assigned from it) are fine. Taint flows only through
// pointer-shaped projections: copying an element out of a frozen slice
// produces an independent value whose mutation cannot reach the
// snapshot, so the copy is writable.
var FrozenWrite = &Analyzer{
	Name: "frozenwrite",
	Doc:  "no field writes or mutating calls on snapshots, frozen views, or cached behaviors outside their home package",
	Run:  runFrozenWrite,
}

// frozenRoots maps each frozen type to its home package, the only
// package allowed to construct and mutate it.
var frozenRoots = []struct{ pkg, name string }{
	{"aptree", "Snapshot"},
	{"bdd", "View"},
	{"network", "Behavior"},
}

// frozenRootType classifies t (after stripping one pointer) as a frozen
// root, returning its home package as the taint tag.
func frozenRootType(t types.Type) (string, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	for _, r := range frozenRoots {
		if namedDeclaredIn(named, r.pkg, r.name) {
			return r.pkg, true
		}
	}
	return "", false
}

// mutatorPrefixes flag method names that conventionally mutate their
// receiver. Read accessors (Tree, View, Classify, Deterministic, ...)
// never match.
var mutatorPrefixes = []string{
	"Set", "Add", "Remove", "Delete", "Insert", "Append",
	"Push", "Pop", "Clear", "Reset", "Merge", "Apply", "Swap",
}

func mutatorName(name string) bool {
	for _, p := range mutatorPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func runFrozenWrite(m *Module, report Reporter) {
	for _, pkg := range m.Pkgs {
		// The home package constructs and publishes its own type freely.
		home := make(map[string]bool)
		for _, r := range frozenRoots {
			if pkgPathIs(pkg.Path, r.pkg) {
				home[r.pkg] = true
			}
		}
		funcBodies(pkg, func(fd *ast.FuncDecl) {
			checkFrozenWrite(m, pkg, fd, home, report)
		})
	}
}

func checkFrozenWrite(m *Module, pkg *Package, fd *ast.FuncDecl, home map[string]bool, report Reporter) {
	info := pkg.Info
	cfg := flowConfig{
		sourceType: func(t types.Type) (string, bool) {
			tag, ok := frozenRootType(t)
			if !ok || home[tag] {
				return "", false
			}
			return tag, true
		},
		fresh:  freshValue(info),
		derive: true,
		seed: func(v *types.Var) (string, bool) {
			tag, ok := frozenRootType(v.Type())
			if !ok || home[tag] {
				return "", false
			}
			return tag, true
		},
	}
	fl := flowVars(info, fd, cfg)

	reportWrite := func(lhs ast.Expr) {
		base, isWrite := peelWriteBase(lhs)
		if !isWrite {
			return
		}
		if fact, ok := fl.tainted(base); ok {
			report(lhs.Pos(), "write through frozen %s value (aliased at %s); published snapshots are immutable — Clone before mutating",
				fact.tag, shortPos(m, fact.pos))
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				reportWrite(lhs)
			}
		case *ast.IncDecStmt:
			reportWrite(n.X)
		case *ast.CallExpr:
			fn, _, recvExpr, ok := methodCallOn(info, n)
			if !ok || !mutatorName(fn.Name()) {
				return true
			}
			if fact, isTainted := fl.tainted(recvExpr); isTainted {
				report(n.Pos(), "%s mutates a frozen %s value (aliased at %s); published snapshots are immutable — Clone before mutating",
					fn.Name(), fact.tag, shortPos(m, fact.pos))
			}
		}
		return true
	})
}

// freshValue returns the freshness classifier shared by taint analyses:
// composite literals (and their address), the new/make builtins, nil,
// and Clone results are provably newly constructed.
func freshValue(info *types.Info) func(ast.Expr) bool {
	return func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return false
			}
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		case *ast.Ident:
			_, isNil := info.Uses[x].(*types.Nil)
			return isNil
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin &&
					(id.Name == "new" || id.Name == "make") {
					return true
				}
			}
			if fn := calleeFunc(info, x); fn != nil && fn.Name() == "Clone" {
				return true
			}
		}
		return false
	}
}

// peelWriteBase strips the selector/index/dereference chain from an
// assignment target, returning the base expression the write reaches
// through. A bare identifier is a rebinding, not a mutation, so ok is
// false for it.
func peelWriteBase(lhs ast.Expr) (ast.Expr, bool) {
	peeled := false
	for {
		switch x := lhs.(type) {
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.SelectorExpr:
			lhs, peeled = x.X, true
		case *ast.IndexExpr:
			lhs, peeled = x.X, true
		case *ast.StarExpr:
			lhs, peeled = x.X, true
		default:
			return lhs, peeled
		}
	}
}
