package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField flags plain (non-atomic) accesses to struct fields that are
// elsewhere accessed through sync/atomic. A field like a visit counter
// is documented as "updated atomically"; one forgotten plain increment is a
// data race the compiler happily accepts. The analyzer gathers, across the
// whole module, every field whose address is passed to a sync/atomic
// function, then reports every other selector access to those fields.
// Writes through keyed composite literals are reported too.
//
// Fields declared with a sync/atomic type (atomic.Uint64,
// atomic.Pointer[T], ...) are atomic by construction: calling their
// methods and taking their address are the sanctioned uses, while any
// other selector access — which can only copy the value, silently
// forking its state — is reported.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must never be read, written or copied plainly",
	Run:  runAtomicField,
}

func runAtomicField(m *Module, report Reporter) {
	atomicFields := make(map[*types.Var]bool)
	atomicTyped := make(map[*types.Var]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)

	// Pass 0: fields declared with a sync/atomic type are atomic whether or
	// not any call site has been written yet.
	for _, pkg := range m.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						if v, ok := info.Defs[name].(*types.Var); ok && isAtomicType(v.Type()) {
							atomicFields[v] = true
							atomicTyped[v] = true
						}
					}
				}
				return true
			})
		}
	}

	// Pass 1: find &x.f arguments to sync/atomic calls.
	for _, pkg := range m.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op.String() != "&" {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if s := info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
						if v, ok := s.Obj().(*types.Var); ok {
							atomicFields[v] = true
							sanctioned[sel] = true
						}
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: every other access to those fields is a violation.
	for _, pkg := range m.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.UnaryExpr:
					// &x.f on an atomic-typed field passes a pointer to the
					// live value — that preserves atomicity, so sanction it.
					if n.Op == token.AND {
						if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
							if v := fieldVar(info, sel); v != nil && atomicTyped[v] {
								sanctioned[sel] = true
							}
						}
					}
				case *ast.SelectorExpr:
					if sanctioned[n] {
						return true
					}
					// m.snap.Load(): the outer selector is a method of the
					// atomic type; the inner field selection it is invoked
					// on is the sanctioned way to touch the field.
					if inner, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
						if s := info.Selections[n]; s != nil && s.Kind() == types.MethodVal {
							if v := fieldVar(info, inner); v != nil && atomicTyped[v] {
								sanctioned[inner] = true
							}
						}
					}
					s := info.Selections[n]
					if s == nil || s.Kind() != types.FieldVal {
						return true
					}
					if v, ok := s.Obj().(*types.Var); ok && atomicFields[v] {
						if atomicTyped[v] {
							report(n.Sel.Pos(),
								"field %s has a sync/atomic type; this access copies the value — use its methods", v.Name())
						} else {
							report(n.Sel.Pos(),
								"field %s is accessed via sync/atomic elsewhere; plain access is a data race", v.Name())
						}
					}
				case *ast.CompositeLit:
					for _, elt := range n.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						if v, ok := info.Uses[key].(*types.Var); ok && v.IsField() && atomicFields[v] {
							report(key.Pos(),
								"field %s is accessed via sync/atomic elsewhere; composite-literal write bypasses it", v.Name())
						}
					}
				}
				return true
			})
		}
	}
}
