package lint

import (
	"go/ast"
	"go/types"
)

// AtomicField flags plain (non-atomic) accesses to struct fields that are
// elsewhere accessed through sync/atomic. A field like aptree.Node.visits
// is documented as "updated atomically"; one forgotten plain increment is a
// data race the compiler happily accepts. The analyzer gathers, across the
// whole module, every field whose address is passed to a sync/atomic
// function, then reports every other selector access to those fields.
// Writes through keyed composite literals are reported too.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must never be read or written plainly",
	Run:  runAtomicField,
}

func runAtomicField(m *Module, report Reporter) {
	atomicFields := make(map[*types.Var]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)

	// Pass 1: find &x.f arguments to sync/atomic calls.
	for _, pkg := range m.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op.String() != "&" {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if s := info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
						if v, ok := s.Obj().(*types.Var); ok {
							atomicFields[v] = true
							sanctioned[sel] = true
						}
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: every other access to those fields is a violation.
	for _, pkg := range m.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					if sanctioned[n] {
						return true
					}
					s := info.Selections[n]
					if s == nil || s.Kind() != types.FieldVal {
						return true
					}
					if v, ok := s.Obj().(*types.Var); ok && atomicFields[v] {
						report(n.Sel.Pos(),
							"field %s is accessed via sync/atomic elsewhere; plain access is a data race", v.Name())
					}
				case *ast.CompositeLit:
					for _, elt := range n.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						if v, ok := info.Uses[key].(*types.Var); ok && v.IsField() && atomicFields[v] {
							report(key.Pos(),
								"field %s is accessed via sync/atomic elsewhere; composite-literal write bypasses it", v.Name())
						}
					}
				}
				return true
			})
		}
	}
}
