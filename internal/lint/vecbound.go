package lint

import (
	"go/ast"
	"go/types"
)

// VecBound caps metric cardinality statically: every label handed to an
// obs label-vec (CounterVec.With and future vec types) must be a
// constant or a value provably drawn from a fixed set. A label computed
// from a packet, an error string, or a request parameter mints a child
// counter per distinct value — an unbounded-memory time bomb that only
// detonates in production.
//
// "Provably bounded" is a whole-package fixed point over string values:
// constants are bounded; conversions and concatenations of bounded
// values are bounded; a variable is bounded when every assignment to it
// anywhere in the package is bounded; ranging over an all-constant
// composite literal (or over the keys of an all-constant-keyed map
// literal) binds a bounded variable. Parameters, receivers and anything
// assigned a non-bounded expression are unbounded. The fix for a
// genuinely dynamic label is to pre-resolve a fixed child set (as
// network's drop counters do) and route the remainder to one catch-all
// label.
var VecBound = &Analyzer{
	Name: "vecbound",
	Doc:  "obs label-vec calls take constants or values from a provably fixed set",
	Run:  runVecBound,
}

func runVecBound(m *Module, report Reporter) {
	for _, pkg := range m.Pkgs {
		info := pkg.Info
		bounded := boundedStringVars(pkg)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !obsVecWith(info, call) {
					return true
				}
				arg := call.Args[0]
				if !boundedExpr(info, arg, bounded) {
					report(arg.Pos(), "label passed to With is not a constant or provably bounded value; unbounded labels mint a child counter per value — pre-resolve a fixed set")
				}
				return true
			})
		}
	}
}

// obsVecWith matches a single-argument With call on any named type
// declared in the obs package (CounterVec today).
func obsVecWith(info *types.Info, call *ast.CallExpr) bool {
	fn, recv, _, ok := methodCallOn(info, call)
	if !ok || fn.Name() != "With" || len(call.Args) != 1 {
		return false
	}
	obj := recv.Obj()
	return obj.Pkg() != nil && pkgPathIs(obj.Pkg().Path(), "obs")
}

// varBoundedness is the fixed-point lattice: unknown < bounded < tainted.
const (
	vbUnknown = iota
	vbBounded
	vbTainted
)

// boundedStringVars computes, package-wide, which variables are only
// ever assigned provably bounded values. Parameters and receivers start
// tainted (their values arrive from outside the package's proof).
func boundedStringVars(pkg *Package) map[*types.Var]int {
	info := pkg.Info
	status := make(map[*types.Var]int)
	anyVar := func(v *types.Var) bool { return true }

	mark := func(e ast.Expr, lvl int) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		v := localVar(info, id, anyVar)
		if v == nil {
			return
		}
		if lvl > status[v] {
			status[v] = lvl
		}
	}
	taintParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					status[v] = vbTainted
				}
			}
		}
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				taintParams(fd.Recv)
				taintParams(fd.Type.Params)
				taintParams(fd.Type.Results)
			}
		}
	}

	judge := func(e ast.Expr) int {
		if boundedExpr(info, e, status) {
			return vbBounded
		}
		return vbTainted
	}
	for changed := true; changed; {
		before := snapshotStatus(status)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) == len(n.Rhs) {
						for i := range n.Lhs {
							mark(n.Lhs[i], judge(n.Rhs[i]))
						}
					} else {
						for _, lhs := range n.Lhs {
							mark(lhs, vbTainted) // tuple results are unproven
						}
					}
				case *ast.ValueSpec:
					for i, name := range n.Names {
						if i < len(n.Values) {
							mark(name, judge(n.Values[i]))
						}
					}
				case *ast.RangeStmt:
					key, value := rangeBoundedness(info, n.X, status)
					if n.Key != nil {
						mark(n.Key, key)
					}
					if n.Value != nil {
						mark(n.Value, value)
					}
				}
				return true
			})
		}
		changed = !sameStatus(before, status)
	}
	return status
}

func snapshotStatus(m map[*types.Var]int) map[*types.Var]int {
	out := make(map[*types.Var]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sameStatus(a, b map[*types.Var]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// rangeBoundedness judges the key and value variables of `range x`:
// ranging an all-constant composite literal (or a bounded variable)
// binds bounded values; an all-constant-keyed map literal binds bounded
// keys.
func rangeBoundedness(info *types.Info, x ast.Expr, status map[*types.Var]int) (key, value int) {
	key, value = vbTainted, vbTainted
	e := ast.Unparen(x)
	if id, ok := e.(*ast.Ident); ok {
		if v := localVar(info, id, func(*types.Var) bool { return true }); v != nil && status[v] == vbBounded {
			return vbTainted, vbBounded // elements of a bounded container
		}
		return
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return
	}
	keysConst, valsConst := true, true
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if !isConstExpr(info, kv.Key) {
				keysConst = false
			}
			if !isConstExpr(info, kv.Value) {
				valsConst = false
			}
		} else {
			keysConst = false
			if !isConstExpr(info, elt) {
				valsConst = false
			}
		}
	}
	if keysConst {
		key = vbBounded
	}
	if valsConst {
		value = vbBounded
	}
	return
}

// boundedExpr reports whether e provably evaluates to one of a fixed set
// of values.
func boundedExpr(info *types.Info, e ast.Expr, status map[*types.Var]int) bool {
	e = ast.Unparen(e)
	if isConstExpr(info, e) {
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		v := localVar(info, x, func(*types.Var) bool { return true })
		return v != nil && status[v] == vbBounded
	case *ast.CallExpr:
		// A conversion of a bounded value (string(r)) stays bounded.
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return boundedExpr(info, x.Args[0], status)
		}
	case *ast.BinaryExpr:
		// Concatenating two fixed sets yields a fixed set.
		return boundedExpr(info, x.X, status) && boundedExpr(info, x.Y, status)
	case *ast.CompositeLit:
		// Not a label itself, but lets bounded containers seed ranges.
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if !isConstExpr(info, kv.Value) {
					return false
				}
			} else if !isConstExpr(info, elt) {
				return false
			}
		}
		return true
	}
	return false
}
