// Package lint is a self-contained static-analysis framework for this
// module, built only on the standard library (go/parser, go/ast, go/types,
// go/importer). It exists because the repository's correctness rests on
// data-structure disciplines the compiler cannot see: BDD Refs are only
// meaningful with the DD that produced them, Retain/Release must balance,
// atomically updated fields must never be touched plainly, and mutexes must
// not be copied or left locked on an early return.
//
// The framework loads every package of the module from source, type-checks
// it, and runs a set of Analyzers over the typed syntax trees. Diagnostics
// carry exact positions and can be suppressed at the offending line with a
// directive comment:
//
//	//lint:ignore <check> <reason>
//
// The directive suppresses diagnostics of the named check (or "all") on the
// same line as the comment and on the line immediately below it, so both
// trailing comments and comments placed above a statement work. A reason is
// mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string // analyzer name
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Check, d.Message)
}

// Analyzer is a single named check run over a whole module at once, so it
// can gather facts across packages (e.g. which fields are ever accessed
// atomically) before judging individual uses.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(m *Module, report Reporter)
}

// Reporter records a finding at a position.
type Reporter func(pos token.Pos, format string, args ...interface{})

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicField,
		RetainRelease,
		LockSafe,
		LockGuard,
		DDMix,
		ErrDrop,
		EpochPin,
		FrozenWrite,
		PoolPair,
		VecBound,
	}
}

// ByName resolves a comma-separated list of analyzer names ("" or "all"
// selects the whole suite).
func ByName(list string) ([]*Analyzer, error) {
	if list == "" || list == "all" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over the module and returns surviving
// diagnostics sorted by position. Suppressed findings are dropped;
// malformed ignore directives are reported as check "directive", and
// directives that suppressed nothing any judging analyzer could have
// produced are reported as check "staleignore" (these two passes run as
// part of every invocation rather than as named analyzers, and their
// findings are not themselves suppressible).
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		name := a.Name
		a.Run(m, func(pos token.Pos, format string, args ...interface{}) {
			diags = append(diags, Diagnostic{
				Pos:     m.Fset.Position(pos),
				Check:   name,
				Message: fmt.Sprintf(format, args...),
			})
		})
	}
	dirs, bad := collectIgnores(m)
	diags = append(diags, bad...)
	out := diags[:0]
	for _, d := range diags {
		if dirs.suppress(d) {
			continue
		}
		out = append(out, d)
	}
	out = append(out, staleDirectives(m, analyzers, dirs)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Check < out[j].Check
	})
	return out
}

// shortPos renders a cross-referenced position as base.go:line:col so
// messages (and the goldens that pin them) never embed machine-specific
// checkout paths. The primary diagnostic position keeps its full path;
// only in-message references use this.
func shortPos(m *Module, pos token.Pos) string {
	p := m.Fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", filepath.Base(p.Filename), p.Line, p.Column)
}

// ignoreKey identifies one suppressed (file, line).
type ignoreKey struct {
	file string
	line int
}

// ignoreDirective is one parsed //lint:ignore comment. used records
// whether it suppressed at least one raw diagnostic this run, which is
// what the staleignore pass judges.
type ignoreDirective struct {
	pos   token.Position
	check string
	used  bool
}

// directiveSet indexes directives by the lines they cover (their own and
// the next) and keeps the full list for staleness judging.
type directiveSet struct {
	byLine map[ignoreKey][]*ignoreDirective
	list   []*ignoreDirective
}

// suppress reports whether d is covered by a directive, marking every
// matching directive as used.
func (s *directiveSet) suppress(d Diagnostic) bool {
	hit := false
	for _, dir := range s.byLine[ignoreKey{d.Pos.Filename, d.Pos.Line}] {
		if dir.check == "all" || dir.check == d.Check {
			dir.used = true
			hit = true
		}
	}
	return hit
}

const ignorePrefix = "lint:ignore"

// collectIgnores scans every file's comments for lint:ignore directives.
// Each directive covers its own line and the next line. Directives missing
// a check name or a reason are returned as diagnostics.
func collectIgnores(m *Module) (*directiveSet, []Diagnostic) {
	dirs := &directiveSet{byLine: make(map[ignoreKey][]*ignoreDirective)}
	var bad []Diagnostic
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimPrefix(text, "/*")
					text = strings.TrimSuffix(text, "*/")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
					fields := strings.Fields(rest)
					pos := m.Fset.Position(c.Pos())
					if len(fields) < 2 {
						bad = append(bad, Diagnostic{
							Pos:     pos,
							Check:   "directive",
							Message: "malformed directive: want //lint:ignore <check> <reason>",
						})
						continue
					}
					dir := &ignoreDirective{pos: pos, check: fields[0]}
					dirs.list = append(dirs.list, dir)
					for _, line := range []int{pos.Line, pos.Line + 1} {
						k := ignoreKey{pos.Filename, line}
						dirs.byLine[k] = append(dirs.byLine[k], dir)
					}
				}
			}
		}
	}
	return dirs, bad
}

// pathString renders a chain of identifiers and field selections such as
// "m.mu" for matching lock receivers textually. Non-path expressions
// (calls, indexing) yield "" so they never match each other.
func pathString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return pathString(e.X)
	case *ast.SelectorExpr:
		x := pathString(e.X)
		if x == "" {
			return ""
		}
		return x + "." + e.Sel.Name
	}
	return ""
}
