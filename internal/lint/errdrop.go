package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop reports statement-position calls whose error result vanishes:
// the call's results are discarded entirely while one of them is an error.
// Assigning the error to blank (`_ = f()`) is treated as an explicit,
// intentional discard and is not flagged, and test files are never loaded
// by the module loader, so the check matches its spec of "outside tests".
//
// A small allowlist mirrors errcheck's defaults for calls whose error is
// either unfailable or conventionally ignored: the fmt print family,
// bytes.Buffer / strings.Builder writers, and Close calls inside defer.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "error results must be handled or explicitly discarded",
	Run:  runErrDrop,
}

func runErrDrop(m *Module, report Reporter) {
	for _, pkg := range m.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						checkDroppedErr(info, call, false, report)
					}
				case *ast.GoStmt:
					checkDroppedErr(info, n.Call, false, report)
				case *ast.DeferStmt:
					checkDroppedErr(info, n.Call, true, report)
				}
				return true
			})
		}
	}
}

func checkDroppedErr(info *types.Info, call *ast.CallExpr, deferred bool, report Reporter) {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return
	}
	if !resultHasError(tv.Type) {
		return
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return // function-typed variable or conversion; stay quiet
	}
	if allowlistedErrDrop(fn, deferred) {
		return
	}
	report(call.Pos(), "error result of %s is discarded; handle it or assign to _", calleeName(fn))
}

func resultHasError(t types.Type) bool {
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func allowlistedErrDrop(fn *types.Func, deferred bool) bool {
	if deferred && fn.Name() == "Close" {
		return true
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "fmt":
		return strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")
	case "bytes", "strings":
		// (*bytes.Buffer) and (*strings.Builder) writes never fail.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
	case "math/rand", "math/rand/v2":
		// (*rand.Rand).Read is documented to always return a nil error.
		return fn.Name() == "Read"
	}
	return false
}

func calleeName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
