package lint

// staleignore is the directive hygiene pass, run from Run alongside the
// malformed-directive check rather than as a named analyzer: it needs to
// know which analyzers actually ran and which directives matched raw
// diagnostics, facts no Analyzer.Run sees.
//
// An //lint:ignore directive is stale when the analyzer it names ran and
// the directive still suppressed nothing — the code it excused has been
// fixed or moved, and the directive now only masks future regressions at
// that line. Directives are only judged when their named check was among
// the analyzers run ("all" requires the full suite), so running a subset
// (`aplint -checks errdrop`) never misfires on directives for the other
// checks. A directive naming a check that does not exist at all is
// always reported: it can never suppress anything.
//
// //lint:guard directives are judged structurally when lockguard runs: a
// guard must name a sibling field of the struct (the mutex protecting
// the annotated field); naming a removed or renamed field means the
// guard silently stopped guarding.

import (
	"go/ast"
	"go/token"
	"strings"
)

// staleDirectives judges every collected directive after suppression
// matching and returns the staleignore diagnostics.
func staleDirectives(m *Module, analyzers []*Analyzer, dirs *directiveSet) []Diagnostic {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	fullSuite := true
	known := map[string]bool{"all": true, "directive": true, "staleignore": true}
	for _, a := range All() {
		known[a.Name] = true
		if !ran[a.Name] {
			fullSuite = false
		}
	}

	var out []Diagnostic
	for _, dir := range dirs.list {
		if dir.used {
			continue
		}
		switch {
		case !known[dir.check]:
			out = append(out, Diagnostic{
				Pos:     dir.pos,
				Check:   "staleignore",
				Message: "//lint:ignore names unknown check \"" + dir.check + "\"; it can never suppress anything",
			})
		case dir.check == "all" && fullSuite, ran[dir.check]:
			out = append(out, Diagnostic{
				Pos:     dir.pos,
				Check:   "staleignore",
				Message: "//lint:ignore " + dir.check + " suppresses nothing; delete the stale directive",
			})
		}
	}
	if ran[LockGuard.Name] {
		out = append(out, staleGuards(m)...)
	}
	return out
}

// staleGuards reports //lint:guard directives whose named mutex is not a
// sibling field of the annotated field's struct.
func staleGuards(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				siblings := make(map[string]bool)
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						siblings[name.Name] = true
					}
				}
				for _, field := range st.Fields.List {
					for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
						g, pos, ok := guardDirective(cg)
						if ok && !siblings[g] {
							out = append(out, Diagnostic{
								Pos:     m.Fset.Position(pos),
								Check:   "staleignore",
								Message: "//lint:guard " + g + " names no field of this struct; the guard no longer guards anything",
							})
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// guardDirective parses a //lint:guard comment like lockguard's
// guardName, but returns the directive position and stays silent on
// malformed directives (lockguard already reports those).
func guardDirective(cg *ast.CommentGroup) (string, token.Pos, bool) {
	if cg == nil {
		return "", token.NoPos, false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, guardPrefix) {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(text, guardPrefix))
		if len(fields) == 0 {
			return "", token.NoPos, false
		}
		return fields[0], c.Pos(), true
	}
	return "", token.NoPos, false
}
