package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafe enforces two mutex disciplines:
//
//  1. No lock-bearing value is copied. Copying a struct that contains a
//     sync.Mutex or sync.RWMutex (directly or transitively) duplicates
//     lock state; the copy's mutex no longer guards anything. Flagged at
//     assignments, value arguments, and range clauses.
//
//  2. Every Lock()/RLock() statement is followed, in the same block, by a
//     deferred or direct matching Unlock()/RUnlock() on the same receiver
//     path, with no return, break, continue or goto able to leave the
//     block in between. This catches the early-return-while-locked bug
//     that deadlocks the next caller.
//
// Paths are matched textually ("m.mu"), which is exact for the idiomatic
// receiver.field spelling used throughout this module.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "no copying of lock-bearing values; Lock must pair with Unlock on every path",
	Run:  runLockSafe,
}

func runLockSafe(m *Module, report Reporter) {
	for _, pkg := range m.Pkgs {
		checkLockCopies(pkg, report)
		funcBodies(pkg, func(fd *ast.FuncDecl) {
			checkLockPairing(pkg, fd, report)
		})
	}
}

// copyableLockValue reports whether e denotes an existing lock-bearing
// value that the surrounding context would copy. Fresh values (composite
// literals, function results) are excluded: constructing them is fine,
// duplicating a live one is not.
func copyableLockValue(info *types.Info, e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return false
	}
	tv, ok := info.Types[ast.Unparen(e)]
	// A type expression — new(sync.RWMutex), a generic type argument — names
	// the lock type without copying any value.
	return ok && !tv.IsType() && tv.Type != nil && containsLock(tv.Type)
}

func checkLockCopies(pkg *Package, report Reporter) {
	info := pkg.Info
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for _, rhs := range n.Rhs {
					if copyableLockValue(info, rhs) {
						report(rhs.Pos(), "assignment copies a value containing a sync lock")
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if copyableLockValue(info, v) {
						report(v.Pos(), "variable initialization copies a value containing a sync lock")
					}
				}
			case *ast.CallExpr:
				if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
					return true // conversion, not a call
				}
				for _, arg := range n.Args {
					if copyableLockValue(info, arg) {
						report(arg.Pos(), "call passes a value containing a sync lock by value")
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if tv, ok := info.Types[n.Value]; ok && tv.Type != nil && containsLock(tv.Type) {
						report(n.Value.Pos(), "range clause copies values containing a sync lock")
					}
				}
			}
			return true
		})
	}
}

// syncLockCall matches an expression-statement or deferred call to a
// sync.Mutex/RWMutex method with the given name set, returning the textual
// receiver path.
func syncLockCall(info *types.Info, call *ast.CallExpr, names ...string) (path, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	for _, name := range names {
		if fn.Name() == name {
			p := pathString(sel.X)
			if p == "" {
				return "", "", false
			}
			return p, name, true
		}
	}
	return "", "", false
}

var unlockFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

func checkLockPairing(pkg *Package, fd *ast.FuncDecl, report Reporter) {
	info := pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			path, method, ok := syncLockCall(info, call, "Lock", "RLock")
			if !ok {
				continue
			}
			checkLockedRegion(info, block.List[i+1:], call.Pos(), path, unlockFor[method], report)
		}
		return true
	})
}

// checkLockedRegion scans the statements after a Lock for the matching
// unlock and reports paths that can leave the block while still locked.
func checkLockedRegion(info *types.Info, rest []ast.Stmt, lockPos token.Pos, path, unlock string, report Reporter) {
	for _, stmt := range rest {
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			if p, _, ok := syncLockCall(info, s.Call, unlock); ok && p == path {
				return // protected from here on; earlier statements were checked below
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if p, _, ok := syncLockCall(info, call, unlock); ok && p == path {
					return
				}
			}
		case *ast.ReturnStmt, *ast.BranchStmt:
			report(lockPos, "%s held at %s; add %s.%s() before leaving the block or defer it", path, describeExit(stmt), path, unlock)
			return
		}
		// A nested statement that can return while the lock is held and
		// does not itself unlock is an early-exit leak.
		if escapes, pos := returnsWithoutUnlock(info, stmt, path, unlock); escapes {
			report(pos, "early exit with %s still locked; no %s.%s() on this path", path, path, unlock)
			return
		}
	}
	report(lockPos, "%s.%s() is not paired with %s.%s() in this block", path, lockFor(unlock), path, unlock)
}

func lockFor(unlock string) string {
	if unlock == "RUnlock" {
		return "RLock"
	}
	return "Lock"
}

func describeExit(s ast.Stmt) string {
	if b, ok := s.(*ast.BranchStmt); ok {
		return b.Tok.String() + " statement"
	}
	return "return statement"
}

// returnsWithoutUnlock reports whether stmt contains (outside nested
// function literals) a return statement, while containing no matching
// unlock call.
func returnsWithoutUnlock(info *types.Info, stmt ast.Stmt, path, unlock string) (bool, token.Pos) {
	var retPos token.Pos
	hasReturn := false
	hasUnlock := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if !hasReturn {
				retPos = n.Pos()
			}
			hasReturn = true
		case *ast.CallExpr:
			if p, _, ok := syncLockCall(info, n, unlock); ok && p == path {
				hasUnlock = true
			}
		}
		return true
	})
	return hasReturn && !hasUnlock, retPos
}
