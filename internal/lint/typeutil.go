package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// bddTypeName reports whether t (after stripping pointers) is the named
// type name declared in this module's bdd package. Matching is by package
// path suffix so the analyzers also work on fixture packages that import
// the real package.
func bddTypeName(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "bdd" || strings.HasSuffix(p, "/bdd")
}

// isDD reports whether t is bdd.DD or *bdd.DD.
func isDD(t types.Type) bool { return bddTypeName(t, "DD") }

// isRef reports whether t is bdd.Ref.
func isRef(t types.Type) bool { return bddTypeName(t, "Ref") }

// isSyncLock reports whether t is exactly sync.Mutex or sync.RWMutex.
func isSyncLock(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// containsLock reports whether a value of type t embeds a sync.Mutex or
// sync.RWMutex anywhere (directly, in a struct field, or in an array), so
// that copying the value would copy lock state.
func containsLock(t types.Type) bool {
	return lockIn(t, make(map[types.Type]bool))
}

func lockIn(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if isSyncLock(t) {
		return true
	}
	switch t := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if lockIn(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return lockIn(t.Elem(), seen)
	}
	return false
}

// isAtomicType reports whether t is a named type declared in sync/atomic
// (atomic.Uint64, atomic.Pointer[T], atomic.Value, ...).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// fieldVar returns the struct field selected by sel, or nil when sel is not
// a field selection.
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return nil
	}
	return v
}

// calleeFunc resolves the called function or method object of call, or nil
// for calls through function-typed variables and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isBDDMethod reports whether call invokes the bdd.DD method with the given
// name, and returns the receiver expression when it does.
func isBDDMethod(info *types.Info, call *ast.CallExpr, name string) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != name {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isDD(sig.Recv().Type()) {
		return nil, false
	}
	return sel.X, true
}

// funcBodies invokes fn for every function or method declaration with a
// body in the package. Function literals are visited as part of their
// enclosing declaration's body, which is what the intraprocedural checks
// want: a deferred closure releasing a lock still belongs to the function
// that took it.
func funcBodies(pkg *Package, fn func(decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// localVar returns the *types.Var for an identifier naming a function-local
// variable (not a field, package-level var, or parameter unless
// includeParams), or nil.
func localVar(info *types.Info, e ast.Expr, scopeOf func(*types.Var) bool) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		if v, ok = info.Defs[id].(*types.Var); !ok {
			return nil
		}
	}
	if v.IsField() || !scopeOf(v) {
		return nil
	}
	return v
}
