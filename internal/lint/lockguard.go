package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockGuard enforces declared mutex ownership of struct fields. A field
// annotated in its declaration with
//
//	//lint:guard <mutexField>
//
// may only be read or written by functions that visibly hold the guard:
// either the function body contains a <recv>.<mutexField>.Lock() or
// .RLock() call (matched textually against the access's receiver path,
// like locksafe), or the function's name ends in "Locked", the module's
// convention for helpers whose callers hold the lock. Everything else is
// reported once per function and field, at the function declaration, so a
// //lint:ignore lockguard directive above the func covers the whole body.
//
// Composite literals are exempt: constructors initialize guarded fields
// on values no other goroutine can see yet. The check is intraprocedural
// and textual — it proves the guard was acquired somewhere in the
// function, not that it is held at the access; locksafe separately
// enforces that acquisitions pair with releases.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated //lint:guard <mutex> are only touched with the guard held or from *Locked helpers",
	Run:  runLockGuard,
}

const guardPrefix = "lint:guard"

// guardName extracts the mutex field name from a //lint:guard directive in
// the comment group, or "" if the group has no directive. A directive with
// no field name is reported as malformed.
func guardName(cg *ast.CommentGroup, report Reporter) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, guardPrefix) {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(text, guardPrefix))
		if len(fields) == 0 {
			report(c.Pos(), "malformed directive: want //lint:guard <mutexField>")
			return ""
		}
		return fields[0]
	}
	return ""
}

func runLockGuard(m *Module, report Reporter) {
	// Pass 1: collect annotated fields from struct declarations.
	guarded := make(map[*types.Var]string)
	for _, pkg := range m.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					g := guardName(field.Doc, report)
					if g == "" {
						g = guardName(field.Comment, report)
					}
					if g == "" {
						continue
					}
					for _, name := range field.Names {
						if v, ok := info.Defs[name].(*types.Var); ok {
							guarded[v] = g
						}
					}
				}
				return true
			})
		}
	}
	if len(guarded) == 0 {
		return
	}

	// Pass 2: judge every selector access to a guarded field.
	for _, pkg := range m.Pkgs {
		info := pkg.Info
		funcBodies(pkg, func(fd *ast.FuncDecl) {
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				return
			}
			// Every Lock/RLock receiver path acquired anywhere in the body
			// (including deferred closures, which funcBodies keeps inline).
			locked := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if p, _, ok := syncLockCall(info, call, "Lock", "RLock"); ok {
						locked[p] = true
					}
				}
				return true
			})
			reported := make(map[*types.Var]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s := info.Selections[sel]
				if s == nil || s.Kind() != types.FieldVal {
					return true
				}
				v, ok := s.Obj().(*types.Var)
				if !ok {
					return true
				}
				g, isGuarded := guarded[v]
				if !isGuarded || reported[v] {
					return true
				}
				base := pathString(sel.X)
				if base != "" && locked[base+"."+g] {
					return true
				}
				reported[v] = true
				reportGuardViolation(report, fd.Name.Pos(), fd.Name.Name, v.Name(), base, g)
				return true
			})
		})
	}
}

func reportGuardViolation(report Reporter, pos token.Pos, fn, field, base, guard string) {
	if base == "" {
		base = "<recv>"
	}
	report(pos, "%s accesses %s-guarded field %s without %s.%s.Lock/RLock in the body (hold the guard or name the helper *Locked)",
		fn, guard, field, base, guard)
}
