package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EpochPin is the static twin of the apdebug debugCheckCacheEpoch
// assertion: a function that pins an epoch — loading a snapshot through
// aptree.Manager.Snapshot, Classifier.Snapshot, or a Load on an
// atomic.Pointer holding a snapshot — must answer the rest of its query
// from that pinned value. Three mixings are reported, each a way to
// straddle two reconstruction epochs inside one logical walk:
//
//  1. pinning a second snapshot in the same function: the two loads may
//     observe different epochs across a concurrent swap;
//  2. calling a live-answering Manager/Classifier method (Classify,
//     Version, NumLive, Tree, ...) after the pin: the live method
//     re-loads the published pointer and may see a newer epoch than the
//     walk in progress;
//  3. a function literal that captures a pinned snapshot variable from
//     its enclosing function and then pins or reads live state itself —
//     the goroutine/callback variant of the same bug.
//
// Each function literal is its own scope: a metrics closure that pins,
// reads, and returns is independent of its siblings (RegisterMetrics
// registers many such closures, each correctly pinning per scrape).
// The value-flow engine tracks which locals alias a pinned snapshot, so
// rule 3 sees captures through assignments and renames, not just the
// original variable.
var EpochPin = &Analyzer{
	Name: "epochpin",
	Doc:  "a function that pins a snapshot must not pin a second epoch or read live classifier state mid-walk",
	Run:  runEpochPin,
}

// managerLiveReads are aptree.Manager methods that answer from the live
// published epoch (each performs its own atomic load internally).
var managerLiveReads = map[string]bool{
	"Classify": true, "IsLive": true, "Version": true, "NumLive": true,
	"Tree": true, "DD": true, "Ref": true, "LiveIDs": true,
	"UpdatesSinceSwap": true, "TotalClassifications": true,
}

// classifierLiveReads are facade Classifier methods that pin internally
// and answer from whatever epoch is published at call time.
var classifierLiveReads = map[string]bool{
	"Classify": true, "Behavior": true, "BehaviorWith": true,
	"ClassifyBatch": true, "BehaviorBatch": true, "BehaviorBatchFrom": true,
	"NumPredicates": true, "NumAtoms": true, "AverageDepth": true,
	"MemBytes": true, "LiveMemBytes": true,
}

func runEpochPin(m *Module, report Reporter) {
	for _, pkg := range m.Pkgs {
		funcBodies(pkg, func(fd *ast.FuncDecl) {
			checkEpochPin(m, pkg, fd, report)
		})
	}
}

// pinCall reports whether call loads (pins) a snapshot, with a short
// description for diagnostics.
func pinCall(m *Module, info *types.Info, call *ast.CallExpr) (string, bool) {
	fn, recv, _, ok := methodCallOn(info, call)
	if !ok {
		return "", false
	}
	switch {
	case fn.Name() == "Snapshot" && namedDeclaredIn(recv, "aptree", "Manager"):
		return "Manager.Snapshot", true
	case fn.Name() == "Snapshot" && rootNamed(m, recv, "Classifier"):
		return "Classifier.Snapshot", true
	case fn.Name() == "Load" && atomicSnapshotPointer(m, recv):
		return "atomic snapshot Load", true
	}
	return "", false
}

// rootNamed reports whether named is the given type declared in the
// module's root package (the facade).
func rootNamed(m *Module, named *types.Named, name string) bool {
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == m.Path
}

// atomicSnapshotPointer reports whether named is atomic.Pointer[T] with T
// a snapshot type (aptree.Snapshot or the root facade Snapshot). Loads on
// other atomic pointers (behavior cache slots, trace sinks) do not pin an
// epoch.
func atomicSnapshotPointer(m *Module, named *types.Named) bool {
	obj := named.Obj()
	if obj.Name() != "Pointer" || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return false
	}
	elem := args.At(0)
	if ptr, ok := elem.(*types.Pointer); ok {
		elem = ptr.Elem()
	}
	en, ok := elem.(*types.Named)
	if !ok {
		return false
	}
	return namedDeclaredIn(en, "aptree", "Snapshot") || rootNamed(m, en, "Snapshot")
}

// liveReadCall reports whether call answers from live classifier state.
func liveReadCall(m *Module, info *types.Info, call *ast.CallExpr) (string, bool) {
	fn, recv, _, ok := methodCallOn(info, call)
	if !ok {
		return "", false
	}
	switch {
	case namedDeclaredIn(recv, "aptree", "Manager") && managerLiveReads[fn.Name()]:
		return "Manager." + fn.Name(), true
	case rootNamed(m, recv, "Classifier") && classifierLiveReads[fn.Name()]:
		return "Classifier." + fn.Name(), true
	}
	return "", false
}

// pinSite is one snapshot load or live read attributed to a scope.
type pinSite struct {
	pos  token.Pos
	desc string
}

// pinScope is the per-function-literal (or declaration-body) unit of
// epoch accounting.
type pinScope struct {
	lit     *ast.FuncLit // nil for the declaration body itself
	pins    []pinSite
	reads   []pinSite
	capture *pinSite // first use of a pinned variable captured from outside the literal
}

func checkEpochPin(m *Module, pkg *Package, fd *ast.FuncDecl, report Reporter) {
	info := pkg.Info

	// Which locals alias a pinned snapshot (for the capture rule).
	fl := flowVars(info, fd, flowConfig{
		source: func(e ast.Expr) (string, bool) {
			if call, ok := e.(*ast.CallExpr); ok {
				return pinCall(m, info, call)
			}
			return "", false
		},
	})

	root := &pinScope{}
	scopes := []*pinScope{root}
	stack := []*pinScope{root}
	var nodes []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			last := nodes[len(nodes)-1]
			nodes = nodes[:len(nodes)-1]
			if _, ok := last.(*ast.FuncLit); ok {
				stack = stack[:len(stack)-1]
			}
			return true
		}
		nodes = append(nodes, n)
		cur := stack[len(stack)-1]
		switch x := n.(type) {
		case *ast.FuncLit:
			sc := &pinScope{lit: x}
			scopes = append(scopes, sc)
			stack = append(stack, sc)
		case *ast.CallExpr:
			if desc, ok := pinCall(m, info, x); ok {
				cur.pins = append(cur.pins, pinSite{x.Pos(), desc})
			} else if desc, ok := liveReadCall(m, info, x); ok {
				cur.reads = append(cur.reads, pinSite{x.Pos(), desc})
			}
		case *ast.Ident:
			if cur.lit == nil || cur.capture != nil {
				break
			}
			if v := localVar(info, x, fl.inFunc); v != nil {
				if _, pinned := fl.vars[v]; pinned &&
					(v.Pos() < cur.lit.Pos() || v.Pos() > cur.lit.End()) {
					cur.capture = &pinSite{x.Pos(), v.Name()}
				}
			}
		}
		return true
	})

	for _, sc := range scopes {
		if len(sc.pins) > 0 {
			first := sc.pins[0]
			for _, p := range sc.pins[1:] {
				report(p.pos, "%s pins a second epoch in one function (first pinned via %s at %s); a query must stay on a single snapshot",
					p.desc, first.desc, shortPos(m, first.pos))
			}
			for _, r := range sc.reads {
				if r.pos > first.pos {
					report(r.pos, "%s answers from the live epoch after this function pinned a snapshot via %s at %s; use the pinned snapshot instead",
						r.desc, first.desc, shortPos(m, first.pos))
				}
			}
		}
		if sc.lit != nil && sc.capture != nil && (len(sc.pins) > 0 || len(sc.reads) > 0) {
			report(sc.capture.pos, "function literal captures pinned snapshot %q but pins or reads live classifier state itself; a closure must stay on its captured epoch",
				sc.capture.desc)
		}
	}
}
