package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DDMix guards the cardinal BDD rule: a Ref is only meaningful together
// with the DD that produced it. Within each function the analyzer tracks
// which DD identifier produced each Ref-typed local (r := d.And(x, y)
// marks r as owned by d) and reports Ref locals passed to a method of a
// *different* DD identifier. bdd.Transfer, whose whole purpose is moving a
// Ref between managers, is the sanctioned crossing point and resets
// ownership to the destination DD.
//
// The check is an intraprocedural heuristic: Refs arriving through fields,
// slices, or calls other than DD methods carry no owner and are never
// flagged.
var DDMix = &Analyzer{
	Name: "ddmix",
	Doc:  "a bdd.Ref produced by one DD must not be passed to a method of another DD",
	Run:  runDDMix,
}

func runDDMix(m *Module, report Reporter) {
	for _, pkg := range m.Pkgs {
		funcBodies(pkg, func(fd *ast.FuncDecl) {
			checkDDMix(pkg, fd, report)
		})
	}
}

// ddIdent resolves an expression to the object of a *bdd.DD identifier.
func ddIdent(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil || !isDD(obj.Type()) {
		return nil
	}
	return obj
}

func checkDDMix(pkg *Package, fd *ast.FuncDecl, report Reporter) {
	info := pkg.Info
	inFunc := func(v *types.Var) bool {
		return v.Pos() >= fd.Pos() && v.Pos() <= fd.End()
	}
	owner := make(map[*types.Var]types.Object)

	// producerDD identifies the DD that owns the result of a call: the
	// receiver for DD methods, the destination manager for bdd.Transfer.
	producerDD := func(call *ast.CallExpr) types.Object {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			fn := calleeFunc(info, call)
			if fn == nil {
				return nil
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isDD(sig.Recv().Type()) {
				return ddIdent(info, sel.X)
			}
			// bdd.Transfer(dst, src, ref): result lives in dst.
			if fn.Name() == "Transfer" && fn.Pkg() != nil && len(call.Args) >= 1 {
				if p := fn.Pkg().Path(); p == "bdd" || strings.HasSuffix(p, "/bdd") {
					return ddIdent(info, call.Args[0])
				}
			}
		}
		return nil
	}

	// Walk statements in source order; ownership is last-write-wins.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v := localVar(info, id, inFunc)
				if v == nil || !isRef(v.Type()) {
					continue
				}
				if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok {
					if dd := producerDD(call); dd != nil {
						owner[v] = dd
						continue
					}
				}
				delete(owner, v) // unknown producer: no claim
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, n)
			if fn == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !isDD(sig.Recv().Type()) {
				return true
			}
			callDD := ddIdent(info, sel.X)
			if callDD == nil {
				return true
			}
			for _, arg := range n.Args {
				v := localVar(info, arg, inFunc)
				if v == nil || !isRef(v.Type()) {
					continue
				}
				if own, ok := owner[v]; ok && own != callDD {
					report(arg.Pos(),
						"Ref %q was produced by DD %q but is passed to a method of DD %q; Refs are only valid in their own DD",
						v.Name(), own.Name(), callDD.Name())
				}
			}
		}
		return true
	})
}
