package network

import (
	"fmt"
	"strings"
)

// DOT renders the topology in Graphviz format: boxes as ellipses, hosts as
// plain boxes, links as undirected edges (drawn once per pair). Useful for
// documenting generated datasets and debugging behavior traces.
func (n *Network) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n  layout=neato;\n", name)
	for i, box := range n.Boxes {
		fmt.Fprintf(&b, "  b%d [label=%q];\n", i, box.Name)
	}
	seen := map[[2]int]bool{}
	hostID := 0
	for i, box := range n.Boxes {
		for pi := range box.Ports {
			p := &box.Ports[pi]
			switch p.Peer.Kind {
			case DestBox:
				a, c := i, p.Peer.Box
				if a > c {
					a, c = c, a
				}
				key := [2]int{a*len(n.Boxes) + c, 0}
				if seen[key] {
					continue
				}
				seen[key] = true
				fmt.Fprintf(&b, "  b%d -- b%d;\n", a, c)
			case DestHost:
				fmt.Fprintf(&b, "  h%d [shape=box,label=%q];\n", hostID, p.Peer.Host)
				fmt.Fprintf(&b, "  b%d -- h%d [style=dotted];\n", i, hostID)
				hostID++
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// HighlightDOT renders the topology with a behavior's traversed edges
// emphasized: the forwarding path/tree in bold red, drop boxes shaded.
func (n *Network) HighlightDOT(name string, beh *Behavior) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	drops := map[int]bool{}
	for _, d := range beh.Drops {
		drops[d.Box] = true
	}
	for i, box := range n.Boxes {
		attrs := ""
		switch {
		case drops[i]:
			attrs = ",style=filled,fillcolor=lightcoral"
		case i == beh.Ingress:
			attrs = ",style=filled,fillcolor=lightblue"
		}
		fmt.Fprintf(&b, "  b%d [label=%q%s];\n", i, box.Name, attrs)
	}
	hostID := 0
	for _, e := range beh.Edges {
		switch e.To.Kind {
		case DestBox:
			fmt.Fprintf(&b, "  b%d -> b%d [color=red,penwidth=2];\n", e.Box, e.To.Box)
		case DestHost:
			fmt.Fprintf(&b, "  h%d [shape=box,label=%q];\n", hostID, e.To.Host)
			fmt.Fprintf(&b, "  b%d -> h%d [color=red,penwidth=2];\n", e.Box, hostID)
			hostID++
		}
	}
	b.WriteString("}\n")
	return b.String()
}
