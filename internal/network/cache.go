package network

import (
	"sync/atomic"

	"apclassifier/internal/aptree"
)

// BehaviorCache memoizes network-wide behaviors per (ingress box, leaf
// atom) for one immutable classifier epoch — the paper's central
// invariant made operational: every packet matching the same atomic
// predicate has the identical behavior from a given ingress (§III, §IV),
// so the first walk of an (ingress, atom) pair can answer every later
// packet in the class.
//
// The cache is owned by the epoch it was built for and dies with it:
// entries live in a flat table of atomic pointers sized by the epoch
// tree's AtomID bound, and consumers key the whole cache on the epoch
// snapshot's pointer identity (not its version — several published
// snapshots share a version between reconstructions, and each one
// partitions atoms differently). Invalidation is therefore structural;
// there is no eviction, no generation counter, and no lock anywhere:
// Lookup is one atomic load, Store one atomic store, preserving the
// lock-free query discipline of the snapshot path.
//
// Only deterministic walks may be stored. A walk that traversed a Type-2
// (payload-dependent) or Type-3 (probabilistic) middlebox entry is not a
// pure function of the atom (§V-E) and must be recomputed per packet;
// Behavior.Deterministic reports that. Type-1 entries are atom-consistent
// by the paper's model (their new atomic predicate is a function of the
// entry and the incoming atom — the same contract the middlebox flow
// table already relies on), so behaviors that only cross Type-1
// middleboxes remain cacheable.
//
// Stored *Behavior values are shared between all readers and must be
// treated as immutable.
type BehaviorCache struct {
	epoch *aptree.Snapshot
	atoms int32
	slots []atomic.Pointer[Behavior]
}

// NewBehaviorCache builds an empty cache for the given epoch over a
// network of `boxes` boxes. Allocation is one flat pointer table of
// boxes × AtomIDBound slots; entries fill lazily as walks complete.
func NewBehaviorCache(epoch *aptree.Snapshot, boxes int) *BehaviorCache {
	atoms := epoch.Tree().AtomIDBound()
	return &BehaviorCache{
		epoch: epoch,
		atoms: atoms,
		slots: make([]atomic.Pointer[Behavior], boxes*int(atoms)),
	}
}

// Epoch returns the snapshot this cache memoizes for. Consumers must
// compare it by pointer identity against the snapshot they are querying
// before trusting a Lookup.
func (c *BehaviorCache) Epoch() *aptree.Snapshot { return c.epoch }

// Lookup returns the memoized behavior for (ingress, atom), or nil on a
// miss. It also feeds the apc_behavior_cache_{hits,misses}_total
// counters.
func (c *BehaviorCache) Lookup(ingress int, atom int32) *Behavior {
	i := ingress*int(c.atoms) + int(atom)
	if atom < 0 || atom >= c.atoms || i >= len(c.slots) {
		mCacheMisses.Inc()
		return nil
	}
	if b := c.slots[i].Load(); b != nil {
		mCacheHits.Inc()
		return b
	}
	mCacheMisses.Inc()
	return nil
}

// Store memoizes a behavior for (ingress, atom). The caller must have
// computed b against this cache's epoch, and b must be deterministic
// (Behavior.Deterministic) and never mutated afterwards. Out-of-range
// atoms are ignored. Concurrent stores of the same pair race benignly:
// both values are correct, one wins.
func (c *BehaviorCache) Store(ingress int, atom int32, b *Behavior) {
	i := ingress*int(c.atoms) + int(atom)
	if atom < 0 || atom >= c.atoms || i >= len(c.slots) {
		return
	}
	c.slots[i].Store(b)
}

// Len counts the filled entries; for tests and debugging.
func (c *BehaviorCache) Len() int {
	n := 0
	for i := range c.slots {
		if c.slots[i].Load() != nil {
			n++
		}
	}
	return n
}
