package network

import (
	"sync"

	"apclassifier/internal/aptree"
)

// MBType classifies a middlebox flow-table entry by how its header change
// can be predicted (§V-E).
type MBType int

// Middlebox entry types.
const (
	// MBDeterministic (Type 1): the new header is a function of the old
	// header, so the new atomic predicate can be stored in the flow table.
	// AP Classifier fills that cache lazily, one (entry, atom) pair at a
	// time, and reads it on every later packet.
	MBDeterministic MBType = iota
	// MBPayload (Type 2): the new header depends on packet payload; the AP
	// Tree must be searched again for every packet.
	MBPayload
	// MBProbabilistic (Type 3): one of several rewrites happens; all
	// possibilities are explored and the behavior is marked probabilistic.
	MBProbabilistic
)

// Rewrite maps an incoming header to one or more outgoing headers. A nil
// return means the middlebox passes the packet unmodified; an empty
// non-nil return means the middlebox drops it.
type Rewrite func(pkt []byte) [][]byte

// MBEntry is one middlebox flow-table entry: match fields, a type, and the
// header-rewriting instruction.
type MBEntry struct {
	// Match is the predicate ID of the entry's match condition. The match
	// predicate participates in atomic-predicate computation exactly like
	// a forwarding predicate, so matching is a membership-bit test.
	Match int32
	Type  MBType
	// Rewrite produces the new header(s). For MBDeterministic it must be a
	// pure function of the header (that is what makes caching sound).
	Rewrite Rewrite
}

// Middlebox is an ordered flow table attached to a box; the first matching
// entry applies, like an OpenFlow table (§V-E Fig. 7). A packet matching no
// entry passes through unmodified.
type Middlebox struct {
	Name    string
	Entries []MBEntry

	// cache holds, per (entry, incoming atom), the leaf of the rewritten
	// header — the "new atomic predicate" column of the paper's flow
	// table. It is invalidated when the AP Tree is swapped (version
	// change). Only MBDeterministic entries use it.
	mu sync.Mutex
	//lint:guard mu
	cacheVersion uint64
	//lint:guard mu
	cache map[mbCacheKey]*aptree.Node
}

type mbCacheKey struct {
	entry int
	atom  int32
}

// CacheLen reports the number of cached (entry, atom) classifications; for
// tests and the Table II experiment.
func (m *Middlebox) CacheLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cache)
}

// process applies the middlebox to a traversal head, returning the
// resulting heads (possibly several for probabilistic entries) and whether
// the packet survived.
func (m *Middlebox) process(env *Env, b *Behavior, w workItem) ([]workItem, bool) {
	for ei := range m.Entries {
		e := &m.Entries[ei]
		if !member(env, w.leaf, e.Match) {
			continue
		}
		if e.Type != MBDeterministic {
			// The entry's outcome — pass, drop, or whichever rewrite —
			// may differ between packets of the same atom, so the walk as
			// a whole stops being a function of the atom (§V-E) and the
			// behavior cache must skip it.
			b.nondet = true
		}
		outs := e.Rewrite(w.pkt)
		if outs == nil {
			return []workItem{w}, true // pass-through entry
		}
		if len(outs) == 0 {
			return nil, false // middlebox drop
		}
		if e.Type == MBProbabilistic {
			b.Probabilistic = true
		}
		heads := make([]workItem, 0, len(outs))
		for _, out := range outs {
			var leaf *aptree.Node
			if e.Type == MBDeterministic {
				leaf = m.cachedClassify(env, ei, w.leaf.AtomID, out)
			} else {
				leaf, _ = env.Source.Classify(out)
			}
			b.Rewrites++
			heads = append(heads, workItem{box: w.box, pkt: out, leaf: leaf, hops: w.hops})
		}
		return heads, true
	}
	return []workItem{w}, true // no entry matched: default pass-through
}

// cachedClassify implements the Type-1 fast path: the new atomic predicate
// for (entry, old atom) is computed once and then served from the flow
// table, so repeated packets avoid the AP Tree search entirely. The cache
// is keyed to the classifier epoch and discarded wholesale when the AP
// Tree is swapped, because leaves of a retired tree may not reflect
// predicates added since.
func (m *Middlebox) cachedClassify(env *Env, entry int, atom int32, out []byte) *aptree.Node {
	key := mbCacheKey{entry, atom}
	cur := env.Source.Version()
	m.mu.Lock()
	if m.cache == nil || m.cacheVersion != cur {
		m.cache = make(map[mbCacheKey]*aptree.Node)
		m.cacheVersion = cur
	} else if cached, ok := m.cache[key]; ok {
		m.mu.Unlock()
		return cached
	}
	m.mu.Unlock()
	leaf, v := env.Source.Classify(out)
	m.mu.Lock()
	if m.cacheVersion == v {
		m.cache[key] = leaf
	}
	m.mu.Unlock()
	return leaf
}

// SetFieldRewrite returns a Rewrite that overwrites one layout field with a
// constant — the typical NAT-style translation of the paper's examples.
func SetFieldRewrite(set func(pkt []byte)) Rewrite {
	return func(pkt []byte) [][]byte {
		out := make([]byte, len(pkt))
		copy(out, pkt)
		set(out)
		return [][]byte{out}
	}
}
