package network

import "apclassifier/internal/obs"

// Stage-2 traversal counters. behaviorInto accumulates locally and
// flushes once per walk (plus one striped add per terminal event), so a
// traversal of h hops costs a handful of atomic adds total — not one per
// hop — and the walk loop itself stays allocation- and atomic-free.
var (
	mWalks = obs.Default.Counter("apc_network_walks_total",
		"Stage-2 behavior traversals computed.")
	mHops = obs.Default.Counter("apc_network_hops_total",
		"Boxes processed across all stage-2 traversals (multicast branches included).")
	mDeliveries = obs.Default.Counter("apc_network_deliveries_total",
		"Traversal branches that reached an end host.")
	mRewrites = obs.Default.Counter("apc_network_rewrites_total",
		"Middlebox header rewrites applied during traversals.")
	mDropVec = obs.Default.CounterVec("apc_network_drops_total",
		"Traversal branches that ended in a drop, by reason.", "reason")

	// Behavior-cache counters: one striped add per BehaviorCache.Lookup.
	// A miss is counted every time a walk could not be answered from the
	// table — including walks that stay uncacheable because they cross a
	// non-deterministic middlebox — so hits/(hits+misses) is the true
	// memoization rate of the batch pipeline.
	mCacheHits = obs.Default.Counter("apc_behavior_cache_hits_total",
		"Stage-2 walks answered from the per-epoch behavior cache.")
	mCacheMisses = obs.Default.Counter("apc_behavior_cache_misses_total",
		"Behavior-cache lookups that required a full stage-2 walk.")

	// dropCounters resolves each known reason's child once at init, so
	// the per-walk flush never takes the CounterVec mutex.
	dropCounters = map[DropReason]*obs.Counter{
		DropNoRoute:   mDropVec.With(string(DropNoRoute)),
		DropInACL:     mDropVec.With(string(DropInACL)),
		DropOutACL:    mDropVec.With(string(DropOutACL)),
		DropDangling:  mDropVec.With(string(DropDangling)),
		DropLoop:      mDropVec.With(string(DropLoop)),
		DropHopBudget: mDropVec.With(string(DropHopBudget)),
		DropMiddlebox: mDropVec.With(string(DropMiddlebox)),
	}

	// dropOther absorbs reasons not known at init. Labeling the child
	// with the raw reason would mint one counter per distinct string —
	// unbounded cardinality if a reason ever carries dynamic content —
	// so the catch-all keeps the label set fixed (and the flush
	// mutex-free even on this path).
	dropOther = mDropVec.With("other")
)

// countDrop bumps the per-reason drop counter; reasons not known at init
// share the "other" child.
func countDrop(r DropReason) {
	if c, ok := dropCounters[r]; ok {
		c.Inc()
		return
	}
	dropOther.Inc()
}
