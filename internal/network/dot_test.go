package network

import (
	"strings"
	"testing"
)

func TestDOT(t *testing.T) {
	n, m, env, _ := fig1Net(t)
	dot := n.DOT("fig1")
	for _, want := range []string{"graph \"fig1\"", "b1", "b2", "h1", "h2", "--"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Each link rendered once: exactly one "b0 -- b1" style edge.
	if got := strings.Count(dot, "b0 -- b1"); got != 1 {
		t.Fatalf("link rendered %d times", got)
	}

	pkt := []byte{0b10000001} // a4: delivered via b2, no drops
	b := n.Behavior(env, 0, pkt, classify(m, pkt))
	h := n.HighlightDOT("path", b)
	for _, want := range []string{"digraph", "lightblue", "color=red", "h2"} {
		if !strings.Contains(h, want) {
			t.Fatalf("HighlightDOT missing %q:\n%s", want, h)
		}
	}

	// A dropped packet shades the drop box.
	pktDrop := []byte{0b11100001}
	bd := n.Behavior(env, 0, pktDrop, classify(m, pktDrop))
	hd := n.HighlightDOT("drop", bd)
	if !strings.Contains(hd, "lightcoral") {
		t.Fatalf("drop box not shaded:\n%s", hd)
	}
}
