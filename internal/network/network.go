// Package network models the topology — boxes, ports, links, hosts — and
// implements stage 2 of AP Classifier: computing the network-wide behavior
// of a packet from its atomic predicate (§IV-B).
//
// Stage 2 never evaluates a BDD. Every port's forwarding predicate and
// every ACL is identified by a global predicate ID; the atomic predicate
// found in stage 1 carries a membership bit per predicate ID, so deciding
// whether a box forwards the packet to a port is two bit tests. That is why
// the paper measures stage 2 at 10M+ packets per second and spends all its
// optimization effort on stage 1.
package network

import (
	"fmt"
	"strings"

	"apclassifier/internal/aptree"
)

// NoPred marks an absent predicate reference (no ACL on a port, or a port
// with no forwarding predicate).
const NoPred int32 = -1

// DestKind tells what a port's far end is.
type DestKind int

// Port destination kinds.
const (
	DestNone DestKind = iota // unconnected port: forwarded packets vanish
	DestBox                  // inter-box link
	DestHost                 // attachment to an end host
)

// Dest is the far end of a port.
type Dest struct {
	Kind DestKind
	Box  int    // valid for DestBox
	Port int    // ingress port index on the peer box, valid for DestBox
	Host string // valid for DestHost
}

// Port is an output port of a box.
type Port struct {
	Name string
	// Fwd is the predicate ID of the port's forwarding predicate: the set
	// of packets the box's table sends to this port. NoPred means the port
	// never forwards (e.g. a pure ingress port).
	Fwd int32
	// OutACL optionally filters packets leaving through the port.
	OutACL int32
	Peer   Dest
}

// Box is a packet-forwarding device: router, switch, or middlebox host.
type Box struct {
	Name  string
	Ports []Port
	// InACL optionally filters every packet entering the box.
	InACL int32
	// MB, if non-nil, is a header-modifying middlebox traversed by every
	// packet entering the box before forwarding (§V-E).
	MB *Middlebox
}

// Network is a directed graph of boxes.
type Network struct {
	Boxes []*Box
}

// New returns an empty network.
func New() *Network { return &Network{} }

// Clone returns a deep copy of the topology graph: boxes and ports are
// copied, so later in-place mutations of n (the facade's delta engine
// rewrites port predicate IDs and ACLs under its manager's write lock)
// never show through the copy. Middlebox pointers are shared — their
// tables are not part of the graph and callers that reject middleboxes
// (the verification engine) never read them.
func (n *Network) Clone() *Network {
	c := &Network{Boxes: make([]*Box, len(n.Boxes))}
	for i, b := range n.Boxes {
		nb := *b
		nb.Ports = append([]Port(nil), b.Ports...)
		c.Boxes[i] = &nb
	}
	return c
}

// AddBox appends a box with the given number of ports and returns its ID.
func (n *Network) AddBox(name string, numPorts int) int {
	b := &Box{Name: name, InACL: NoPred}
	for i := 0; i < numPorts; i++ {
		b.Ports = append(b.Ports, Port{Name: fmt.Sprintf("%s.%d", name, i), Fwd: NoPred, OutACL: NoPred})
	}
	n.Boxes = append(n.Boxes, b)
	return len(n.Boxes) - 1
}

// Link connects port pa of box a to port pb of box b, bidirectionally.
func (n *Network) Link(a, pa, b, pb int) {
	n.Boxes[a].Ports[pa].Peer = Dest{Kind: DestBox, Box: b, Port: pb}
	n.Boxes[b].Ports[pb].Peer = Dest{Kind: DestBox, Box: a, Port: pa}
}

// AttachHost declares that port p of box b faces the named host.
func (n *Network) AttachHost(b, p int, host string) {
	n.Boxes[b].Ports[p].Peer = Dest{Kind: DestHost, Host: host}
}

// BoxByName finds a box ID by name (-1 if absent).
func (n *Network) BoxByName(name string) int {
	for i, b := range n.Boxes {
		if b.Name == name {
			return i
		}
	}
	return -1
}

// Source supplies stage 2 with the classifier state it depends on: atom
// lookup for rewritten headers, predicate liveness for tombstones
// (§VI-A), and the epoch that keys middlebox flow-table caches.
//
// Both *aptree.Manager (the live, self-updating classifier) and
// *aptree.Snapshot (one immutable epoch) implement Source. Pinning a
// Snapshot for the duration of a query gives the whole traversal — every
// membership test and every mid-flight reclassification after a header
// rewrite — one consistent view, with no locks on the hot path.
type Source interface {
	// Classify maps a (possibly rewritten) header to its AP Tree leaf
	// and reports the classifier epoch the result came from.
	Classify(pkt []byte) (*aptree.Node, uint64)
	// IsLive reports whether a predicate ID is not tombstoned.
	IsLive(id int32) bool
	// Version reports the classifier epoch; middlebox flow-table caches
	// are invalidated when it changes.
	Version() uint64
}

// Env provides stage 2 with the classifier state it depends on.
type Env struct {
	// Source is the classifier behind the traversal. A nil Source treats
	// every predicate as live and supports no header-rewriting
	// middleboxes; it serves static tests over a fixed tree.
	Source Source
	// MaxHops bounds traversal (0 means 4×boxes+16).
	MaxHops int
}

// DropReason explains why a traversal branch ended without delivery.
type DropReason string

// Drop reasons.
const (
	DropNoRoute   DropReason = "no matching output port"
	DropInACL     DropReason = "denied by ingress ACL"
	DropOutACL    DropReason = "denied by egress ACL"
	DropDangling  DropReason = "forwarded out an unconnected port"
	DropLoop      DropReason = "forwarding loop detected"
	DropHopBudget DropReason = "hop budget exhausted"
	DropMiddlebox DropReason = "dropped by middlebox"
)

// Edge is one traversed link (or host delivery) in a behavior.
type Edge struct {
	Box  int
	Port int
	To   Dest
}

// DropEvent records a branch that ended in a drop.
type DropEvent struct {
	Box    int
	Reason DropReason
}

// Delivery records a branch that reached a host.
type Delivery struct {
	Host string
	Box  int
	Port int
}

// Behavior is the network-wide forwarding behavior of a packet: the tree of
// links it traverses from the ingress box, and how each branch ends.
type Behavior struct {
	Ingress    int
	Edges      []Edge
	Deliveries []Delivery
	Drops      []DropEvent
	// Rewrites counts middlebox header modifications applied.
	Rewrites int
	// Probabilistic is set when some middlebox entry was Type 3, so the
	// behavior is one of several possibilities (all are included).
	Probabilistic bool

	// nondet is set when the walk matched a middlebox entry whose outcome
	// is not a pure function of the packet's atomic predicate — Type 2
	// (payload-dependent) or Type 3 (probabilistic) entries (§V-E). Such
	// a behavior describes this packet only, not its whole atom, so the
	// per-epoch behavior cache must never store it.
	nondet bool
}

// Deterministic reports whether the behavior is a pure function of
// (ingress, atomic predicate): no Type-2 or Type-3 middlebox entry was
// matched during the walk. Only deterministic behaviors may be memoized
// per atom (§V-E).
func (b *Behavior) Deterministic() bool { return !b.nondet }

// Clone returns a deep copy whose slices do not alias b — how a behavior
// computed in Walker scratch is made durable before it is cached or
// returned from a batch.
func (b *Behavior) Clone() *Behavior {
	c := *b
	c.Edges = append([]Edge(nil), b.Edges...)
	c.Deliveries = append([]Delivery(nil), b.Deliveries...)
	c.Drops = append([]DropEvent(nil), b.Drops...)
	return &c
}

// Delivered reports whether any branch reached the named host (any host if
// name is empty).
func (b *Behavior) Delivered(name string) bool {
	for _, d := range b.Deliveries {
		if name == "" || d.Host == name {
			return true
		}
	}
	return false
}

// Traverses reports whether the behavior crosses the given box.
func (b *Behavior) Traverses(box int) bool {
	if b.Ingress == box && (len(b.Edges) > 0 || len(b.Deliveries) > 0 || len(b.Drops) > 0) {
		return true
	}
	for _, e := range b.Edges {
		if e.Box == box || (e.To.Kind == DestBox && e.To.Box == box) {
			return true
		}
	}
	return false
}

// Path returns the box sequence of a unicast behavior (panics on
// multicast). It includes the ingress box and, for delivered packets, ends
// at the delivery box.
func (b *Behavior) Path() []int {
	path := []int{b.Ingress}
	cur := b.Ingress
	for {
		next := -1
		for _, e := range b.Edges {
			if e.Box == cur && e.To.Kind == DestBox {
				if next >= 0 {
					panic("network: Path on multicast behavior")
				}
				next = e.To.Box
			}
		}
		if next < 0 {
			return path
		}
		path = append(path, next)
		cur = next
	}
}

// String renders the behavior compactly for logs and examples.
func (b *Behavior) String() string {
	var s strings.Builder
	fmt.Fprintf(&s, "ingress=%d edges=%d", b.Ingress, len(b.Edges))
	for _, d := range b.Deliveries {
		fmt.Fprintf(&s, " deliver:%s", d.Host)
	}
	for _, d := range b.Drops {
		fmt.Fprintf(&s, " drop@%d(%s)", d.Box, d.Reason)
	}
	if b.Rewrites > 0 {
		fmt.Fprintf(&s, " rewrites=%d", b.Rewrites)
	}
	return s.String()
}

// member tests a predicate bit, treating tombstoned predicates as absent.
func member(env *Env, leaf *aptree.Node, id int32) bool {
	if id == NoPred {
		return false
	}
	if env.Source != nil && !env.Source.IsLive(id) {
		return false
	}
	return leaf.Member.Get(int(id))
}

// aclPasses evaluates an optional ACL predicate: absent or tombstoned ACLs
// pass everything.
func aclPasses(env *Env, leaf *aptree.Node, id int32) bool {
	if id == NoPred {
		return true
	}
	if env.Source != nil && !env.Source.IsLive(id) {
		return true
	}
	return leaf.Member.Get(int(id))
}

// workItem is one traversal branch head.
type workItem struct {
	box  int
	pkt  []byte
	leaf *aptree.Node
	hops int
}

type visitKey struct {
	box  int
	leaf *aptree.Node
}

// Walker runs stage-2 traversals with reusable scratch space, avoiding the
// per-query allocations of Network.Behavior. A Walker is not safe for
// concurrent use; pool one per goroutine for hot query loops.
type Walker struct {
	n *Network
	// env is a private copy: BehaviorPinned swaps its Source per query
	// without touching the Env the Walker was built from.
	env     Env
	visited map[visitKey]bool
	queue   []workItem
	beh     Behavior
}

// NewWalker returns a reusable traverser for the network. The Env is
// copied; later changes to it do not affect the Walker.
func NewWalker(n *Network, env *Env) *Walker {
	w := &Walker{n: n, visited: make(map[visitKey]bool)}
	if env != nil {
		w.env = *env
	}
	return w
}

// Behavior computes the packet's behavior like Network.Behavior, reusing
// internal buffers. The returned pointer aliases the Walker's scratch and
// is only valid until the next call.
func (w *Walker) Behavior(ingress int, pkt []byte, leaf *aptree.Node) *Behavior {
	clear(w.visited)
	w.queue = w.queue[:0]
	w.beh = Behavior{
		Ingress:    ingress,
		Edges:      w.beh.Edges[:0],
		Deliveries: w.beh.Deliveries[:0],
		Drops:      w.beh.Drops[:0],
	}
	w.n.behaviorInto(&w.env, ingress, pkt, leaf, &w.beh, w.visited, &w.queue)
	return &w.beh
}

// BehaviorPinned runs the traversal against src instead of the Walker's
// default Source. Pass the epoch snapshot the leaf was classified under
// so the whole query — stage 1 and stage 2 — observes one epoch.
func (w *Walker) BehaviorPinned(src Source, ingress int, pkt []byte, leaf *aptree.Node) *Behavior {
	w.env.Source = src
	return w.Behavior(ingress, pkt, leaf)
}

// Behavior computes the network-wide behavior of a packet that enters at
// the ingress box and was classified to leaf. pkt is needed only when the
// network contains middleboxes that rewrite headers; it may be nil
// otherwise.
func (n *Network) Behavior(env *Env, ingress int, pkt []byte, leaf *aptree.Node) *Behavior {
	b := &Behavior{Ingress: ingress}
	var queue []workItem
	n.behaviorInto(env, ingress, pkt, leaf, b, make(map[visitKey]bool), &queue)
	return b
}

func (n *Network) behaviorInto(env *Env, ingress int, pkt []byte, leaf *aptree.Node, b *Behavior, visited map[visitKey]bool, queuep *[]workItem) {
	maxHops := env.MaxHops
	if maxHops == 0 {
		maxHops = 4*len(n.Boxes) + 16
	}
	// Metrics are accumulated in locals and flushed once at the end; the
	// walk loop itself performs no atomic operations. Walker reuses b, so
	// deltas are taken against the lengths at entry.
	hops := 0
	startDeliveries, startDrops, startRewrites := len(b.Deliveries), len(b.Drops), b.Rewrites
	defer func() {
		mWalks.Inc()
		mHops.Add(uint64(hops))
		mDeliveries.Add(uint64(len(b.Deliveries) - startDeliveries))
		mRewrites.Add(uint64(b.Rewrites - startRewrites))
		for _, d := range b.Drops[startDrops:] {
			countDrop(d.Reason)
		}
	}()
	queue := append(*queuep, workItem{box: ingress, pkt: pkt, leaf: leaf})
	defer func() { *queuep = queue[:0] }()
	for len(queue) > 0 {
		hops++
		w := queue[0]
		queue = queue[1:]
		if w.hops > maxHops {
			b.Drops = append(b.Drops, DropEvent{w.box, DropHopBudget})
			continue
		}
		vk := visitKey{w.box, w.leaf}
		if visited[vk] {
			b.Drops = append(b.Drops, DropEvent{w.box, DropLoop})
			continue
		}
		visited[vk] = true
		box := n.Boxes[w.box]

		if !aclPasses(env, w.leaf, box.InACL) {
			b.Drops = append(b.Drops, DropEvent{w.box, DropInACL})
			continue
		}

		// Middlebox processing happens before the box's own forwarding.
		heads := []workItem{w}
		if box.MB != nil {
			var ok bool
			heads, ok = box.MB.process(env, b, w)
			if !ok {
				b.Drops = append(b.Drops, DropEvent{w.box, DropMiddlebox})
				continue
			}
		}

		for _, h := range heads {
			forwarded := false
			for pi := range box.Ports {
				port := &box.Ports[pi]
				if !member(env, h.leaf, port.Fwd) {
					continue
				}
				if !aclPasses(env, h.leaf, port.OutACL) {
					b.Drops = append(b.Drops, DropEvent{w.box, DropOutACL})
					forwarded = true
					continue
				}
				forwarded = true
				b.Edges = append(b.Edges, Edge{Box: w.box, Port: pi, To: port.Peer})
				switch port.Peer.Kind {
				case DestHost:
					b.Deliveries = append(b.Deliveries, Delivery{Host: port.Peer.Host, Box: w.box, Port: pi})
				case DestBox:
					queue = append(queue, workItem{box: port.Peer.Box, pkt: h.pkt, leaf: h.leaf, hops: w.hops + 1})
				case DestNone:
					b.Drops = append(b.Drops, DropEvent{w.box, DropDangling})
				}
			}
			if !forwarded {
				b.Drops = append(b.Drops, DropEvent{w.box, DropNoRoute})
			}
		}
	}
}
