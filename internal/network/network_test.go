package network

import (
	"testing"

	"apclassifier/internal/aptree"
	"apclassifier/internal/bdd"
)

// fig1Net builds the paper's running example (Fig. 1(c)/Fig. 3): boxes b1
// and b2, hosts h1 and h2, and predicates p1 (b1→h1), p2 (b1→b2),
// p3 (b2→h2) over an 8-bit toy header.
func fig1Net(t *testing.T) (*Network, *aptree.Manager, *Env, [3]int32) {
	t.Helper()
	m := aptree.NewManager(8, aptree.MethodOAPT)
	p1 := m.AddPredicate(func(d *bdd.DD) bdd.Ref { return d.FromPrefix(0, 0b00000000, 2, 8) })
	p2 := m.AddPredicate(func(d *bdd.DD) bdd.Ref {
		return d.Or(d.FromPrefix(0, 0b01000000, 2, 8), d.FromPrefix(0, 0b10000000, 2, 8))
	})
	p3 := m.AddPredicate(func(d *bdd.DD) bdd.Ref {
		return d.Or(d.FromPrefix(0, 0b10000000, 2, 8), d.FromPrefix(0, 0b11000000, 3, 8))
	})

	n := New()
	b1 := n.AddBox("b1", 2)
	b2 := n.AddBox("b2", 2)
	n.AttachHost(b1, 0, "h1")
	n.Boxes[b1].Ports[0].Fwd = p1
	n.Boxes[b1].Ports[1].Fwd = p2
	n.Link(b1, 1, b2, 1)
	n.AttachHost(b2, 0, "h2")
	n.Boxes[b2].Ports[0].Fwd = p3

	env := &Env{Source: m}
	return n, m, env, [3]int32{p1, p2, p3}
}

func classify(m *aptree.Manager, pkt []byte) *aptree.Node {
	leaf, _ := m.Classify(pkt)
	return leaf
}

func TestPaperFig3ForwardingPath(t *testing.T) {
	n, m, env, _ := fig1Net(t)
	b1, b2 := n.BoxByName("b1"), n.BoxByName("b2")

	// A packet in a4 = ¬p1∧p2∧p3 (pattern 10******) entering b1 follows
	// b1 → b2 → h2.
	pkt := []byte{0b10000001}
	b := n.Behavior(env, b1, pkt, classify(m, pkt))
	if !b.Delivered("h2") {
		t.Fatalf("a4 packet must reach h2: %v", b)
	}
	if got := b.Path(); len(got) != 2 || got[0] != b1 || got[1] != b2 {
		t.Fatalf("path = %v, want [b1 b2]", got)
	}
	if len(b.Drops) != 0 {
		t.Fatalf("unexpected drops: %v", b.Drops)
	}
	if !b.Traverses(b1) || !b.Traverses(b2) {
		t.Fatal("behavior must traverse both boxes")
	}

	// A packet in a5 = ¬p1∧¬p2∧p3 (pattern 110*****) is dropped at b1...
	pkt5 := []byte{0b11000001}
	b = n.Behavior(env, b1, pkt5, classify(m, pkt5))
	if b.Delivered("") {
		t.Fatalf("a5 packet from b1 must not be delivered: %v", b)
	}
	if len(b.Drops) != 1 || b.Drops[0].Reason != DropNoRoute || b.Drops[0].Box != b1 {
		t.Fatalf("expected no-route drop at b1: %v", b.Drops)
	}
	// ...but delivered to h2 if it enters at b2.
	b = n.Behavior(env, b2, pkt5, classify(m, pkt5))
	if !b.Delivered("h2") {
		t.Fatalf("a5 packet from b2 must reach h2: %v", b)
	}

	// A packet in a1 (p1, pattern 00******) goes straight to h1.
	pkt1 := []byte{0b00000001}
	b = n.Behavior(env, b1, pkt1, classify(m, pkt1))
	if !b.Delivered("h1") || b.Delivered("h2") {
		t.Fatalf("a1 packet must reach exactly h1: %v", b)
	}
}

func TestTombstonedPredicateIsIgnored(t *testing.T) {
	n, m, env, preds := fig1Net(t)
	b1 := n.BoxByName("b1")
	pkt := []byte{0b10000001}   // a4: normally b1→b2→h2
	m.DeletePredicate(preds[1]) // delete p2 (b1→b2)
	b := n.Behavior(env, b1, pkt, classify(m, pkt))
	if b.Delivered("") {
		t.Fatalf("packet must drop once its forwarding predicate is deleted: %v", b)
	}
	if len(b.Drops) != 1 || b.Drops[0].Reason != DropNoRoute {
		t.Fatalf("drops = %v", b.Drops)
	}
}

func TestIngressAndEgressACLs(t *testing.T) {
	n, m, env, _ := fig1Net(t)
	b1, b2 := n.BoxByName("b1"), n.BoxByName("b2")
	pkt := []byte{0b10000001}

	// Egress ACL on b1's b2-facing port that denies the packet's atom.
	aclDeny := m.AddPredicate(func(d *bdd.DD) bdd.Ref { return d.FromPrefix(0, 0b11000000, 2, 8) })
	n.Boxes[b1].Ports[1].OutACL = aclDeny
	b := n.Behavior(env, b1, pkt, classify(m, pkt))
	if b.Delivered("") {
		t.Fatalf("egress ACL must drop: %v", b)
	}
	if len(b.Drops) != 1 || b.Drops[0].Reason != DropOutACL {
		t.Fatalf("drops = %v", b.Drops)
	}

	// Permit ACL lets it through.
	aclPermit := m.AddPredicate(func(d *bdd.DD) bdd.Ref { return d.FromPrefix(0, 0b10000000, 1, 8) })
	n.Boxes[b1].Ports[1].OutACL = aclPermit
	b = n.Behavior(env, b1, pkt, classify(m, pkt))
	if !b.Delivered("h2") {
		t.Fatalf("permitting egress ACL must pass: %v", b)
	}

	// Ingress ACL at b2 denies.
	n.Boxes[b2].InACL = aclDeny
	b = n.Behavior(env, b1, pkt, classify(m, pkt))
	if b.Delivered("") {
		t.Fatalf("ingress ACL must drop: %v", b)
	}
	found := false
	for _, d := range b.Drops {
		if d.Box == b2 && d.Reason == DropInACL {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected ingress-ACL drop at b2: %v", b.Drops)
	}

	// A tombstoned ACL passes everything.
	m.DeletePredicate(aclDeny)
	b = n.Behavior(env, b1, pkt, classify(m, pkt))
	if !b.Delivered("h2") {
		t.Fatalf("tombstoned ACL must pass: %v", b)
	}
}

func TestLoopDetection(t *testing.T) {
	m := aptree.NewManager(8, aptree.MethodOAPT)
	p := m.AddPredicate(func(d *bdd.DD) bdd.Ref { return d.FromPrefix(0, 0b10000000, 1, 8) })
	n := New()
	b1 := n.AddBox("b1", 1)
	b2 := n.AddBox("b2", 1)
	n.Boxes[b1].Ports[0].Fwd = p
	n.Boxes[b2].Ports[0].Fwd = p
	n.Link(b1, 0, b2, 0)
	env := &Env{Source: m}
	pkt := []byte{0b10000001}
	b := n.Behavior(env, b1, pkt, classify(m, pkt))
	foundLoop := false
	for _, d := range b.Drops {
		if d.Reason == DropLoop {
			foundLoop = true
		}
	}
	if !foundLoop {
		t.Fatalf("expected loop detection: %v", b)
	}
}

func TestMulticast(t *testing.T) {
	m := aptree.NewManager(8, aptree.MethodOAPT)
	p := m.AddPredicate(func(d *bdd.DD) bdd.Ref { return d.FromPrefix(0, 0b10000000, 1, 8) })
	q := m.AddPredicate(func(d *bdd.DD) bdd.Ref { return d.FromPrefix(0, 0b10000000, 2, 8) })
	n := New()
	b1 := n.AddBox("b1", 2)
	b2 := n.AddBox("b2", 2)
	b3 := n.AddBox("b3", 2)
	n.Boxes[b1].Ports[0].Fwd = p
	n.Boxes[b1].Ports[1].Fwd = q
	n.Link(b1, 0, b2, 1)
	n.Link(b1, 1, b3, 1)
	n.AttachHost(b2, 0, "h1")
	n.AttachHost(b3, 0, "h2")
	n.Boxes[b2].Ports[0].Fwd = p
	n.Boxes[b3].Ports[0].Fwd = p
	env := &Env{Source: m}
	pkt := []byte{0b10000001} // in both p and q
	b := n.Behavior(env, b1, pkt, classify(m, pkt))
	if !b.Delivered("h1") || !b.Delivered("h2") {
		t.Fatalf("multicast packet must reach both hosts: %v", b)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Path must panic on multicast")
		}
	}()
	b.Path()
}

func TestDanglingPort(t *testing.T) {
	m := aptree.NewManager(8, aptree.MethodOAPT)
	p := m.AddPredicate(func(d *bdd.DD) bdd.Ref { return d.FromPrefix(0, 0b10000000, 1, 8) })
	n := New()
	b1 := n.AddBox("b1", 1)
	n.Boxes[b1].Ports[0].Fwd = p // peer left at DestNone
	env := &Env{Source: m}
	pkt := []byte{0b10000001}
	b := n.Behavior(env, b1, pkt, classify(m, pkt))
	if len(b.Drops) != 1 || b.Drops[0].Reason != DropDangling {
		t.Fatalf("drops = %v", b.Drops)
	}
}

// mbNet: b1 --- b2 --- h2, with a middlebox on b1 that rewrites the
// header's leading bits from 111 to 10 (so an otherwise-dropped packet is
// forwarded), mirroring the NAT example of Fig. 7.
func mbNet(t *testing.T, typ MBType) (*Network, *aptree.Manager, *Env) {
	t.Helper()
	m := aptree.NewManager(8, aptree.MethodOAPT)
	p2 := m.AddPredicate(func(d *bdd.DD) bdd.Ref { return d.FromPrefix(0, 0b10000000, 2, 8) })
	p3 := m.AddPredicate(func(d *bdd.DD) bdd.Ref { return d.FromPrefix(0, 0b10000000, 2, 8) })
	match := m.AddPredicate(func(d *bdd.DD) bdd.Ref { return d.FromPrefix(0, 0b11100000, 3, 8) })

	n := New()
	b1 := n.AddBox("b1", 1)
	b2 := n.AddBox("b2", 2)
	n.Boxes[b1].Ports[0].Fwd = p2
	n.Link(b1, 0, b2, 1)
	n.AttachHost(b2, 0, "h2")
	n.Boxes[b2].Ports[0].Fwd = p3

	n.Boxes[b1].MB = &Middlebox{
		Name: "MB1",
		Entries: []MBEntry{{
			Match: match,
			Type:  typ,
			Rewrite: SetFieldRewrite(func(pkt []byte) {
				pkt[0] = 0b10000000 | pkt[0]&0x1F
			}),
		}},
	}
	env := &Env{Source: m}
	return n, m, env
}

func TestMiddleboxRewriteDeterministic(t *testing.T) {
	n, m, env := mbNet(t, MBDeterministic)
	b1 := n.BoxByName("b1")
	pkt := []byte{0b11100101} // matches MB entry; rewritten to 100xxxxx
	b := n.Behavior(env, b1, pkt, classify(m, pkt))
	if !b.Delivered("h2") {
		t.Fatalf("rewritten packet must reach h2: %v", b)
	}
	if b.Rewrites != 1 {
		t.Fatalf("Rewrites = %d, want 1", b.Rewrites)
	}
	if b.Probabilistic {
		t.Fatal("deterministic rewrite must not mark probabilistic")
	}
	// The Type-1 cache must be primed and reused.
	mb := n.Boxes[b1].MB
	if mb.CacheLen() != 1 {
		t.Fatalf("cache length = %d, want 1", mb.CacheLen())
	}
	b = n.Behavior(env, b1, pkt, classify(m, pkt))
	if !b.Delivered("h2") || mb.CacheLen() != 1 {
		t.Fatalf("second query must hit the cache: %v len=%d", b, mb.CacheLen())
	}
}

func TestMiddleboxCacheInvalidatedOnReconstruct(t *testing.T) {
	n, m, env := mbNet(t, MBDeterministic)
	b1 := n.BoxByName("b1")
	pkt := []byte{0b11100101}
	n.Behavior(env, b1, pkt, classify(m, pkt))
	mb := n.Boxes[b1].MB
	if mb.CacheLen() != 1 {
		t.Fatalf("cache not primed")
	}
	m.Reconstruct(false)
	b := n.Behavior(env, b1, pkt, classify(m, pkt))
	if !b.Delivered("h2") {
		t.Fatalf("behavior wrong after reconstruct: %v", b)
	}
	if mb.CacheLen() != 1 {
		t.Fatalf("cache should be rebuilt with one fresh entry, len=%d", mb.CacheLen())
	}
}

func TestMiddleboxPayloadTypeDoesNotCache(t *testing.T) {
	n, m, env := mbNet(t, MBPayload)
	b1 := n.BoxByName("b1")
	pkt := []byte{0b11100101}
	b := n.Behavior(env, b1, pkt, classify(m, pkt))
	if !b.Delivered("h2") {
		t.Fatalf("Type-2 rewrite must still deliver: %v", b)
	}
	if n.Boxes[b1].MB.CacheLen() != 0 {
		t.Fatal("Type-2 entries must not populate the Type-1 cache")
	}
}

func TestMiddleboxProbabilistic(t *testing.T) {
	n, m, env := mbNet(t, MBProbabilistic)
	b1 := n.BoxByName("b1")
	// Rewrite to two possible headers: one forwarded, one dropped.
	n.Boxes[b1].MB.Entries[0].Rewrite = func(pkt []byte) [][]byte {
		fwd := append([]byte(nil), pkt...)
		fwd[0] = 0b10000001
		drop := append([]byte(nil), pkt...)
		drop[0] = 0b00000001
		return [][]byte{fwd, drop}
	}
	pkt := []byte{0b11100101}
	b := n.Behavior(env, b1, pkt, classify(m, pkt))
	if !b.Probabilistic {
		t.Fatal("Type-3 must mark the behavior probabilistic")
	}
	if !b.Delivered("h2") {
		t.Fatalf("one alternative must deliver: %v", b)
	}
	if len(b.Drops) == 0 {
		t.Fatalf("the other alternative must drop: %v", b)
	}
	if b.Rewrites != 2 {
		t.Fatalf("Rewrites = %d, want 2", b.Rewrites)
	}
}

func TestMiddleboxDropAndPassthrough(t *testing.T) {
	n, m, env := mbNet(t, MBDeterministic)
	b1 := n.BoxByName("b1")
	// Entry that drops matching packets.
	n.Boxes[b1].MB.Entries[0].Rewrite = func(pkt []byte) [][]byte { return [][]byte{} }
	pkt := []byte{0b11100101}
	b := n.Behavior(env, b1, pkt, classify(m, pkt))
	if b.Delivered("") || len(b.Drops) != 1 || b.Drops[0].Reason != DropMiddlebox {
		t.Fatalf("middlebox drop expected: %v", b)
	}

	// A packet matching no entry passes through untouched (here: it is in
	// p2 so it is forwarded normally).
	pkt2 := []byte{0b10000001}
	b = n.Behavior(env, b1, pkt2, classify(m, pkt2))
	if !b.Delivered("h2") || b.Rewrites != 0 {
		t.Fatalf("non-matching packet must pass through unmodified: %v", b)
	}

	// A nil rewrite result is an explicit pass-through entry.
	n.Boxes[b1].MB.Entries[0].Rewrite = func(pkt []byte) [][]byte { return nil }
	b = n.Behavior(env, b1, pkt, classify(m, pkt))
	// 111xxxxx is in no forwarding predicate, so it drops with no route —
	// but not at the middlebox.
	if len(b.Drops) != 1 || b.Drops[0].Reason != DropNoRoute {
		t.Fatalf("pass-through entry must leave forwarding to the box: %v", b)
	}
}

func TestWalkerMatchesBehavior(t *testing.T) {
	n, m, env, _ := fig1Net(t)
	w := NewWalker(n, env)
	for _, pktByte := range []byte{0b00000001, 0b01000001, 0b10000001, 0b11000001, 0b11100001} {
		for ingress := 0; ingress < 2; ingress++ {
			pkt := []byte{pktByte}
			leaf := classify(m, pkt)
			want := n.Behavior(env, ingress, pkt, leaf)
			got := w.Behavior(ingress, pkt, leaf)
			if got.String() != want.String() {
				t.Fatalf("pkt %08b ingress %d: walker %q vs behavior %q",
					pktByte, ingress, got.String(), want.String())
			}
		}
	}
}

func TestWalkerReuseDoesNotLeakState(t *testing.T) {
	n, m, env, _ := fig1Net(t)
	w := NewWalker(n, env)
	// A delivering query followed by a dropping query must not inherit
	// the earlier edges/deliveries.
	pktGood := []byte{0b10000001}
	w.Behavior(0, pktGood, classify(m, pktGood))
	pktBad := []byte{0b11100001}
	got := w.Behavior(0, pktBad, classify(m, pktBad))
	if len(got.Edges) != 0 || len(got.Deliveries) != 0 {
		t.Fatalf("scratch leaked into next query: %v", got)
	}
	if len(got.Drops) != 1 {
		t.Fatalf("drops = %v", got.Drops)
	}
	// And back again.
	got = w.Behavior(0, pktGood, classify(m, pktGood))
	if !got.Delivered("h2") {
		t.Fatalf("walker broken after reuse: %v", got)
	}
}

func TestBehaviorString(t *testing.T) {
	n, m, env, _ := fig1Net(t)
	pkt := []byte{0b10000001}
	b := n.Behavior(env, n.BoxByName("b1"), pkt, classify(m, pkt))
	s := b.String()
	if s == "" || !b.Delivered("h2") {
		t.Fatalf("String() = %q", s)
	}
}

func TestBehaviorDeterministic(t *testing.T) {
	// Identical queries must produce identical behaviors (stage 2 is a
	// pure function of the data plane and the atom) — including edge
	// order, which downstream fingerprinting relies on.
	n, m, env, _ := fig1Net(t)
	for _, pktByte := range []byte{0b00000001, 0b10000001, 0b11000001} {
		pkt := []byte{pktByte}
		leaf := classify(m, pkt)
		first := n.Behavior(env, 0, pkt, leaf).String()
		for i := 0; i < 10; i++ {
			if got := n.Behavior(env, 0, pkt, leaf).String(); got != first {
				t.Fatalf("behavior not deterministic: %q vs %q", got, first)
			}
		}
	}
}

func TestBehaviorIndependentOfCounters(t *testing.T) {
	// Visit counters must not affect results.
	n, m, env, _ := fig1Net(t)
	pkt := []byte{0b10000001}
	a := n.Behavior(env, 0, pkt, classify(m, pkt)).String()
	for i := 0; i < 1000; i++ {
		m.Classify(pkt)
	}
	b := n.Behavior(env, 0, pkt, classify(m, pkt)).String()
	if a != b {
		t.Fatalf("behavior changed after counter churn: %q vs %q", a, b)
	}
}

func TestHopBudget(t *testing.T) {
	// A long chain with MaxHops smaller than its length must stop.
	m := aptree.NewManager(8, aptree.MethodOAPT)
	p := m.AddPredicate(func(d *bdd.DD) bdd.Ref { return d.FromPrefix(0, 0b10000000, 1, 8) })
	n := New()
	const chain = 10
	ids := make([]int, chain)
	for i := range ids {
		ids[i] = n.AddBox("", 1)
		n.Boxes[ids[i]].Ports[0].Fwd = p
	}
	for i := 0; i+1 < chain; i++ {
		n.Boxes[ids[i]].Ports[0].Peer = Dest{Kind: DestBox, Box: ids[i+1], Port: 0}
	}
	env := &Env{Source: m, MaxHops: 3}
	pkt := []byte{0b10000001}
	b := n.Behavior(env, ids[0], pkt, classify(m, pkt))
	budget := false
	for _, d := range b.Drops {
		if d.Reason == DropHopBudget {
			budget = true
		}
	}
	if !budget {
		t.Fatalf("hop budget must trigger: %v", b)
	}
}
