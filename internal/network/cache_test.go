package network

import (
	"testing"

	"apclassifier/internal/bdd"
)

func TestBehaviorCacheStoreLookup(t *testing.T) {
	n, m, env, _ := fig1Net(t)
	b1 := n.BoxByName("b1")
	s := m.Snapshot()
	bc := NewBehaviorCache(s, len(n.Boxes))
	if bc.Epoch() != s {
		t.Fatal("cache must key to the snapshot it was built for")
	}

	pkt := []byte{0b10000001}
	leaf := classify(m, pkt)
	if got := bc.Lookup(b1, leaf.AtomID); got != nil {
		t.Fatalf("empty cache returned %v", got)
	}
	b := n.Behavior(env, b1, pkt, leaf)
	if !b.Deterministic() {
		t.Fatal("plain forwarding walk must be deterministic")
	}
	bc.Store(b1, leaf.AtomID, b)
	if got := bc.Lookup(b1, leaf.AtomID); got != b {
		t.Fatalf("lookup = %v, want the stored behavior", got)
	}
	// Same atom from the other box is a distinct slot.
	if got := bc.Lookup(n.BoxByName("b2"), leaf.AtomID); got != nil {
		t.Fatalf("other-ingress lookup = %v, want nil", got)
	}
	if bc.Len() != 1 {
		t.Fatalf("Len = %d, want 1", bc.Len())
	}
	// Out-of-range atoms are a safe miss, not a panic.
	if got := bc.Lookup(b1, s.Tree().AtomIDBound()+5); got != nil {
		t.Fatal("out-of-range lookup must miss")
	}
	bc.Store(b1, -1, b)
}

// TestMiddleboxDeterminismFlag checks that walks crossing Type-2/Type-3
// entries are flagged non-deterministic (and thus uncacheable), while
// Type-1 walks remain cacheable.
func TestMiddleboxDeterminismFlag(t *testing.T) {
	cases := []struct {
		name string
		typ  MBType
		det  bool
	}{
		{"type1-deterministic", MBDeterministic, true},
		{"type2-payload", MBPayload, false},
		{"type3-probabilistic", MBProbabilistic, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, m, env, _ := fig1Net(t)
			b1 := n.BoxByName("b1")
			match := m.AddPredicate(func(d *bdd.DD) bdd.Ref { return bdd.True })
			n.Boxes[b1].MB = &Middlebox{
				Name: "mb",
				Entries: []MBEntry{{
					Match: match,
					Type:  tc.typ,
					Rewrite: func(pkt []byte) [][]byte {
						out := append([]byte(nil), pkt...)
						return [][]byte{out}
					},
				}},
			}
			pkt := []byte{0b10000001}
			b := n.Behavior(env, b1, pkt, classify(m, pkt))
			if b.Deterministic() != tc.det {
				t.Fatalf("Deterministic() = %v, want %v", b.Deterministic(), tc.det)
			}
			if tc.typ == MBProbabilistic && !b.Probabilistic {
				t.Fatal("Type-3 walk must stay marked Probabilistic")
			}
			// A walk on a box without the middlebox stays deterministic.
			b2 := n.BoxByName("b2")
			if !n.Behavior(env, b2, pkt, classify(m, pkt)).Deterministic() {
				t.Fatal("middlebox-free walk must be deterministic")
			}
		})
	}
}

// TestWalkerResetsDeterminism checks the Walker scratch does not leak the
// non-determinism flag from one query into the next.
func TestWalkerResetsDeterminism(t *testing.T) {
	n, m, env, _ := fig1Net(t)
	b1, b2 := n.BoxByName("b1"), n.BoxByName("b2")
	match := m.AddPredicate(func(d *bdd.DD) bdd.Ref { return bdd.True })
	n.Boxes[b1].MB = &Middlebox{Entries: []MBEntry{{
		Match: match, Type: MBPayload,
		Rewrite: func(pkt []byte) [][]byte { return [][]byte{append([]byte(nil), pkt...)} },
	}}}
	w := NewWalker(n, env)
	pkt := []byte{0b10000001}
	if w.Behavior(b1, pkt, classify(m, pkt)).Deterministic() {
		t.Fatal("walk through the Type-2 box must be non-deterministic")
	}
	if !w.Behavior(b2, pkt, classify(m, pkt)).Deterministic() {
		t.Fatal("next walk on the same Walker must reset the flag")
	}
}

func TestBehaviorClone(t *testing.T) {
	n, m, env, _ := fig1Net(t)
	b1 := n.BoxByName("b1")
	pkt := []byte{0b10000001}
	b := n.Behavior(env, b1, pkt, classify(m, pkt))
	c := b.Clone()
	if c.String() != b.String() || c.Ingress != b.Ingress {
		t.Fatalf("clone differs: %v vs %v", c, b)
	}
	if len(b.Edges) > 0 {
		b.Edges[0].Box = 99
		if c.Edges[0].Box == 99 {
			t.Fatal("clone aliases the original's edges")
		}
	}
}
