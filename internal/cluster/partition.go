// Package cluster scales the classifier horizontally: a fleet of
// apserver worker processes, each owning one slice of a deterministic
// header-space partition, behind a thin stateless fan-out router
// (cmd/aprouter). The partition function lives here so the router (which
// picks a shard per query) and the workers (which refuse queries outside
// their slice) can never disagree about ownership.
//
// Two partition modes exist:
//
//   - ModeHeader hashes the packet's 5-tuple key fields. Every point of
//     header space is owned by exactly one shard, so a query stream is
//     spread near-uniformly however skewed its ingress distribution is.
//     This is the default.
//   - ModeIngress hashes the ingress box name. All queries entering the
//     network at one box land on one shard, which keeps that shard's
//     per-epoch behavior cache perfectly warm for its boxes — the right
//     trade when the query stream is ingress-local (e.g. per-PoP taps).
//
// Rule state is deliberately replicated, not partitioned: stage 2
// computes *network-wide* behavior, so any walk can traverse any box,
// and every worker must hold the full topology and predicate set. What
// the partition divides is the query load and the per-epoch working set
// (behavior-cache entries, visit counters, flat-core cache lines) — the
// resources that bound a single box's throughput. /rules/batch churn is
// replicated to all shards by the router, and each shard's idempotency
// cursor (?seq=, PR 7) makes the replication converge even across
// worker restarts.
package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"apclassifier/internal/rule"
)

// Mode selects the partition function.
type Mode int

// Partition modes.
const (
	// ModeHeader partitions by a hash of the 5-tuple key fields.
	ModeHeader Mode = iota
	// ModeIngress partitions by a hash of the ingress box name.
	ModeIngress
)

func (m Mode) String() string {
	switch m {
	case ModeHeader:
		return "header"
	case ModeIngress:
		return "ingress"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses "header" or "ingress".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "header":
		return ModeHeader, nil
	case "ingress":
		return ModeIngress, nil
	}
	return ModeHeader, fmt.Errorf("cluster: unknown partition mode %q: want \"header\" or \"ingress\"", s)
}

// Partition is one worker's slice of the header space: shard Index of
// Total under Mode. The zero value (Total == 0) is the unsharded
// single-process configuration, which owns everything.
type Partition struct {
	Mode  Mode
	Index int
	Total int
}

// ParseShard parses a "k/N" shard spec (0 ≤ k < N).
func ParseShard(spec string, mode Mode) (Partition, error) {
	k, n, ok := strings.Cut(spec, "/")
	if !ok {
		return Partition{}, fmt.Errorf("cluster: bad shard spec %q: want \"k/N\"", spec)
	}
	idx, err1 := strconv.Atoi(k)
	total, err2 := strconv.Atoi(n)
	if err1 != nil || err2 != nil || total < 1 || idx < 0 || idx >= total {
		return Partition{}, fmt.Errorf("cluster: bad shard spec %q: want 0 <= k < N", spec)
	}
	return Partition{Mode: mode, Index: idx, Total: total}, nil
}

// Enabled reports whether the partition actually restricts ownership.
func (p Partition) Enabled() bool { return p.Total > 1 }

func (p Partition) String() string {
	if p.Total == 0 {
		return ""
	}
	return fmt.Sprintf("%d/%d", p.Index, p.Total)
}

// Shard returns the owning shard index for a query, in [0, Total).
func (p Partition) Shard(ingress string, f rule.Fields) int {
	return ShardOf(p.Mode, p.Total, ingress, f)
}

// Owns reports whether this partition's worker serves the query.
func (p Partition) Owns(ingress string, f rule.Fields) bool {
	return !p.Enabled() || p.Shard(ingress, f) == p.Index
}

// ShardOf is the partition function itself: the shard index owning a
// query under mode with total shards. total < 2 always maps to 0.
func ShardOf(mode Mode, total int, ingress string, f rule.Fields) int {
	if total < 2 {
		return 0
	}
	var h uint64
	if mode == ModeIngress {
		h = hashString(ingress)
	} else {
		h = hashFields(f)
	}
	return int(h % uint64(total))
}

// FNV-1a 64-bit, inlined so the hot router path allocates nothing.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashFields hashes the canonical big-endian encoding of the 5-tuple
// key fields. The encoding is fixed wire contract: changing it
// repartitions a live fleet, so it may only change with a rolling
// restart of every worker and router together.
func hashFields(f rule.Fields) uint64 {
	h := uint64(fnvOffset)
	for _, b := range [13]byte{
		byte(f.Dst >> 24), byte(f.Dst >> 16), byte(f.Dst >> 8), byte(f.Dst),
		byte(f.Src >> 24), byte(f.Src >> 16), byte(f.Src >> 8), byte(f.Src),
		byte(f.SrcPort >> 8), byte(f.SrcPort),
		byte(f.DstPort >> 8), byte(f.DstPort),
		f.Proto,
	} {
		h = (h ^ uint64(b)) * fnvPrime
	}
	return h
}

func hashString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// ParseIPv4 parses a dotted quad into its 32-bit value. It is the one
// address parser the router and the workers share — the shard function
// hashes the parsed value, so a parser disagreement would misdirect
// queries.
func ParseIPv4(s string) (uint32, error) {
	var v uint32
	rest := s
	for i := 0; i < 4; i++ {
		part := rest
		if i < 3 {
			var ok bool
			if part, rest, ok = strings.Cut(rest, "."); !ok {
				return 0, fmt.Errorf("bad IPv4 address %q", s)
			}
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("bad IPv4 address %q", s)
		}
		v = v<<8 | uint32(n)
	}
	return v, nil
}
