package cluster

import (
	"math/rand"
	"testing"

	"apclassifier/internal/rule"
)

func TestParseShard(t *testing.T) {
	good := map[string]Partition{
		"0/1": {Index: 0, Total: 1},
		"0/2": {Index: 0, Total: 2},
		"3/4": {Index: 3, Total: 4},
	}
	for spec, want := range good {
		got, err := ParseShard(spec, ModeHeader)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %+v, %v; want %+v", spec, got, err, want)
		}
	}
	for _, spec := range []string{"", "1", "2/2", "3/2", "-1/2", "a/b", "1/0", "1/-2"} {
		if _, err := ParseShard(spec, ModeHeader); err == nil {
			t.Errorf("ParseShard(%q) accepted", spec)
		}
	}
}

func TestParseMode(t *testing.T) {
	if m, err := ParseMode("header"); err != nil || m != ModeHeader {
		t.Fatalf("header: %v, %v", m, err)
	}
	if m, err := ParseMode("ingress"); err != nil || m != ModeIngress {
		t.Fatalf("ingress: %v, %v", m, err)
	}
	if _, err := ParseMode("5tuple"); err == nil {
		t.Fatal("bad mode accepted")
	}
}

// TestZeroPartitionOwnsEverything: the zero value is the unsharded
// configuration — it must never refuse a query.
func TestZeroPartitionOwnsEverything(t *testing.T) {
	var p Partition
	if p.Enabled() {
		t.Fatal("zero partition is enabled")
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		f := rule.Fields{Dst: rng.Uint32(), Src: rng.Uint32(), Proto: uint8(rng.Intn(256))}
		if !p.Owns("anybox", f) {
			t.Fatalf("zero partition refused %+v", f)
		}
	}
}

// TestPartitionCoversAndIsDisjoint: for any total, every query is owned
// by exactly one shard, and Shard agrees with Owns.
func TestPartitionCoversAndIsDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, total := range []int{1, 2, 3, 4, 8} {
		for i := 0; i < 200; i++ {
			f := rule.Fields{
				Dst: rng.Uint32(), Src: rng.Uint32(),
				SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
				Proto: uint8(rng.Intn(256)),
			}
			owners := 0
			for k := 0; k < total; k++ {
				p := Partition{Mode: ModeHeader, Index: k, Total: total}
				if p.Owns("box", f) {
					owners++
					if p.Shard("box", f) != k {
						t.Fatalf("Owns/Shard disagree for shard %d/%d", k, total)
					}
				}
			}
			if owners != 1 {
				t.Fatalf("total=%d: %d owners for %+v", total, owners, f)
			}
		}
	}
}

// TestPartitionIsDeterministic: the shard function is a wire contract —
// the same fields must map to the same shard on every call (router and
// worker compute it independently).
func TestPartitionIsDeterministic(t *testing.T) {
	f := rule.Fields{Dst: 0x0A010203, Src: 0xC0A80001, SrcPort: 443, DstPort: 51234, Proto: 6}
	want := ShardOf(ModeHeader, 8, "seattle", f)
	for i := 0; i < 10; i++ {
		if got := ShardOf(ModeHeader, 8, "seattle", f); got != want {
			t.Fatalf("call %d: shard %d, want %d", i, got, want)
		}
	}
	// Known-answer pin: FNV-1a over the canonical 13-byte encoding.
	// Changing this value repartitions live fleets — see hashFields.
	if h := hashFields(f); h != 0x12b70890864cddd8 {
		t.Fatalf("hashFields changed: %#x", h)
	}
}

// TestHeaderModeSpreadsSkewedIngress: under ModeHeader a single-ingress
// query stream still spreads across shards; under ModeIngress it pins
// to one.
func TestHeaderModeSpreadsSkewedIngress(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const total = 4
	headerCounts := make([]int, total)
	ingressCounts := make([]int, total)
	for i := 0; i < 4000; i++ {
		f := rule.Fields{Dst: rng.Uint32(), Src: rng.Uint32(), SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)), Proto: 6}
		headerCounts[ShardOf(ModeHeader, total, "onlybox", f)]++
		ingressCounts[ShardOf(ModeIngress, total, "onlybox", f)]++
	}
	for k, n := range headerCounts {
		// Uniform would be 1000 per shard; allow wide slack, reject collapse.
		if n < 600 || n > 1400 {
			t.Fatalf("header mode shard %d got %d of 4000 (counts %v)", k, n, headerCounts)
		}
	}
	pinned := 0
	for _, n := range ingressCounts {
		if n > 0 {
			pinned++
		}
	}
	if pinned != 1 {
		t.Fatalf("ingress mode spread one ingress over %d shards: %v", pinned, ingressCounts)
	}
}

func TestParseIPv4(t *testing.T) {
	good := map[string]uint32{
		"0.0.0.0":         0,
		"10.1.2.3":        0x0A010203,
		"255.255.255.255": 0xFFFFFFFF,
		"192.168.0.1":     0xC0A80001,
		"010.001.002.003": 0x0A010203, // leading zeros tolerated, matching the worker parse
	}
	for s, want := range good {
		if got, err := ParseIPv4(s); err != nil || got != want {
			t.Errorf("ParseIPv4(%q) = %#x, %v; want %#x", s, got, err, want)
		}
	}
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "-1.0.0.1", "a.b.c.d", "1..2.3", "1.2.3.4 "} {
		if _, err := ParseIPv4(s); err == nil {
			t.Errorf("ParseIPv4(%q) accepted", s)
		}
	}
}
