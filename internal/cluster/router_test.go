package cluster_test

// The router's contract is differential: a sharded fleet behind the
// router must be indistinguishable — byte for byte — from one unsharded
// worker. These tests run real workers (internal/server over real
// classifiers) behind a real router and hold the merged answers to an
// unsharded oracle across random and boundary headers, interleaved
// /rules/batch churn, and a worker rolling restart.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"apclassifier"
	"apclassifier/internal/cluster"
	"apclassifier/internal/netgen"
	"apclassifier/internal/server"
)

func startWorker(t *testing.T, ds *netgen.Dataset, part cluster.Partition) *httptest.Server {
	t.Helper()
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(c)
	s.SetPartition(part)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func startRouter(t *testing.T, cfg cluster.Config) (*cluster.Router, *httptest.Server) {
	t.Helper()
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}
	r, err := cluster.NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(ts.Close)
	return r, ts
}

func postRaw(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func ipStr(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// buildQueries mixes boundary headers (header-space corners every shard
// function must place somewhere) with dataset-biased random ones.
func buildQueries(ds *netgen.Dataset, rng *rand.Rand, n int) []server.QueryRequest {
	boxes := ds.Boxes
	bounds := []server.QueryRequest{
		{Dst: "0.0.0.0"},
		{Dst: "255.255.255.255", Src: "255.255.255.255", SrcPort: 65535, DstPort: 65535, Proto: 255},
		{Dst: "0.0.0.1", Src: "255.255.255.255", DstPort: 1},
		{Dst: "128.0.0.0", Src: "0.0.0.0", SrcPort: 1, Proto: 6},
		{Dst: "127.255.255.255", SrcPort: 65535, Proto: 17},
	}
	qs := make([]server.QueryRequest, 0, n)
	for i, q := range bounds {
		q.Ingress = boxes[i%len(boxes)].Name
		qs = append(qs, q)
	}
	for len(qs) < n {
		f := ds.RandomFields(rng)
		qs = append(qs, server.QueryRequest{
			Ingress: boxes[rng.Intn(len(boxes))].Name,
			Dst:     ipStr(f.Dst),
			Src:     ipStr(f.Src),
			SrcPort: f.SrcPort,
			DstPort: f.DstPort,
			Proto:   f.Proto,
		})
	}
	return qs
}

// assertSameAnswers sends one identical batch to the oracle and the
// router and requires the answer arrays to match element for element,
// byte for byte.
func assertSameAnswers(t *testing.T, label, oracleURL, routerURL string, qs []server.QueryRequest) {
	t.Helper()
	body, err := json.Marshal(qs)
	if err != nil {
		t.Fatal(err)
	}
	so, bo := postRaw(t, oracleURL+"/query/batch", body)
	sr, br := postRaw(t, routerURL+"/query/batch", body)
	if so != 200 || sr != 200 {
		t.Fatalf("%s: oracle %d (%s), router %d (%s)", label, so, bo, sr, br)
	}
	var eo, er []json.RawMessage
	if err := json.Unmarshal(bo, &eo); err != nil {
		t.Fatalf("%s: oracle body: %v", label, err)
	}
	if err := json.Unmarshal(br, &er); err != nil {
		t.Fatalf("%s: router body: %v", label, err)
	}
	if len(eo) != len(er) {
		t.Fatalf("%s: oracle %d answers, router %d", label, len(eo), len(er))
	}
	for i := range eo {
		if !bytes.Equal(eo[i], er[i]) {
			t.Fatalf("%s: answer %d diverges for %+v:\n  oracle %s\n  router %s",
				label, i, qs[i], eo[i], er[i])
		}
	}
}

// churnBatch is one deterministic step of rule churn: install a fresh
// 240/8 route with a permissive egress ACL, and from step 2 on withdraw
// the route installed two steps earlier — adds, ACL flips, and removes
// all replicate through the router.
func churnBatch(ds *netgen.Dataset, step int) []server.RuleDeltaRequest {
	box := ds.Boxes[step%len(ds.Boxes)].Name
	batch := []server.RuleDeltaRequest{
		{Op: "add-fwd", Box: box, Prefix: fmt.Sprintf("240.%d.0.0/16", step), Port: 0},
		{Op: "set-port-acl", Box: box, Port: 0, ACL: &server.ACLSpec{Default: "permit"}},
	}
	if step >= 2 {
		old := ds.Boxes[(step-2)%len(ds.Boxes)].Name
		batch = append(batch, server.RuleDeltaRequest{
			Op: "remove-fwd", Box: old, Prefix: fmt.Sprintf("240.%d.0.0/16", step-2),
		})
	}
	return batch
}

// applyChurn replicates one churn step to the router fleet and applies
// the identical batch (same cursor) to the oracle.
func applyChurn(t *testing.T, ds *netgen.Dataset, oracleURL, routerURL string, step int) {
	t.Helper()
	body, err := json.Marshal(churnBatch(ds, step))
	if err != nil {
		t.Fatal(err)
	}
	seq := fmt.Sprintf("?seq=%d", step+1)
	if code, resp := postRaw(t, oracleURL+"/rules/batch"+seq, body); code != 200 {
		t.Fatalf("step %d: oracle churn status %d: %s", step, code, resp)
	}
	code, resp := postRaw(t, routerURL+"/rules/batch"+seq, body)
	if code != 200 {
		t.Fatalf("step %d: router churn status %d: %s", step, code, resp)
	}
	var ack cluster.RulesFanoutResponse
	if err := json.Unmarshal(resp, &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.Applied || ack.Seq != uint64(step+1) {
		t.Fatalf("step %d: fleet ack %+v", step, ack)
	}
	for _, sh := range ack.Shards {
		if sh.Error != "" || sh.Seq != uint64(step+1) {
			t.Fatalf("step %d: shard %d diverged: %+v", step, sh.Shard, sh)
		}
	}
}

// TestRouterDifferentialTwoShards is the acceptance centerpiece: over
// all three dataset families, a 2-shard fleet behind the router answers
// bit-identically to a single unsharded process, across random and
// boundary headers with rule churn interleaved between query rounds.
func TestRouterDifferentialTwoShards(t *testing.T) {
	cases := []struct {
		name string
		make func() *netgen.Dataset
	}{
		{"internet2", func() *netgen.Dataset { return netgen.Internet2Like(netgen.Config{Seed: 71, RuleScale: 0.01}) }},
		{"stanford", func() *netgen.Dataset { return netgen.StanfordLike(netgen.Config{Seed: 71, RuleScale: 0.003}) }},
		{"multitenant", func() *netgen.Dataset { return netgen.MultiTenantLike(2, 2, 71) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oracle := startWorker(t, tc.make(), cluster.Partition{})
			w0 := startWorker(t, tc.make(), cluster.Partition{Mode: cluster.ModeHeader, Index: 0, Total: 2})
			w1 := startWorker(t, tc.make(), cluster.Partition{Mode: cluster.ModeHeader, Index: 1, Total: 2})
			_, router := startRouter(t, cluster.Config{Shards: []string{w0.URL, w1.URL}})
			ds := tc.make()
			rng := rand.New(rand.NewSource(97))

			for step := 0; step < 4; step++ {
				label := fmt.Sprintf("%s step %d", tc.name, step)
				assertSameAnswers(t, label, oracle.URL, router.URL, buildQueries(ds, rng, 48))
				applyChurn(t, ds, oracle.URL, router.URL, step)
			}
			assertSameAnswers(t, tc.name+" final", oracle.URL, router.URL, buildQueries(ds, rng, 48))

			// The single-query path relays the owning worker's answer
			// byte-for-byte too.
			for _, q := range buildQueries(ds, rng, 8) {
				body, _ := json.Marshal(q)
				so, bo := postRaw(t, oracle.URL+"/query", body)
				sr, br := postRaw(t, router.URL+"/query", body)
				if so != 200 || sr != 200 || !bytes.Equal(bo, br) {
					t.Fatalf("single query diverges for %+v: oracle %d %s, router %d %s", q, so, bo, sr, br)
				}
			}
		})
	}
}

// TestWorkerRefusesMisdirectedQuery: a worker answers 421 for a query
// outside its slice — the fleet fails loud on a stale shard table
// instead of serving from the wrong worker.
func TestWorkerRefusesMisdirectedQuery(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 71, RuleScale: 0.01})
	w0 := startWorker(t, ds, cluster.Partition{Mode: cluster.ModeHeader, Index: 0, Total: 2})
	rng := rand.New(rand.NewSource(3))
	refused, served := 0, 0
	for _, q := range buildQueries(ds, rng, 40) {
		body, _ := json.Marshal(q)
		switch code, resp := postRaw(t, w0.URL+"/query", body); code {
		case http.StatusOK:
			served++
		case http.StatusMisdirectedRequest:
			refused++
			if !strings.Contains(string(resp), "0/2") {
				t.Fatalf("421 does not name the serving shard: %s", resp)
			}
		default:
			t.Fatalf("query %+v: status %d: %s", q, code, resp)
		}
	}
	if refused == 0 || served == 0 {
		t.Fatalf("shard 0/2 served %d and refused %d of 40 — partition is not splitting", served, refused)
	}
}

// TestRouterRetriesIdempotent: a shard answering 5xx is retried with
// backoff until it recovers — the mechanism that spans a worker's warm
// restart — while an unsequenced /rules/batch is never retried after it
// may have been applied.
func TestRouterRetriesIdempotent(t *testing.T) {
	var queryCalls, rulesCalls, seqRulesCalls atomic.Int32
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/query":
			if queryCalls.Add(1) <= 2 {
				http.Error(w, "warming up", http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"atom":7,"searchDepth":1,"delivered":[],"drops":[]}`)
		case r.URL.Path == "/rules/batch" && r.URL.Query().Get("seq") == "":
			rulesCalls.Add(1)
			http.Error(w, "nope", http.StatusInternalServerError)
		case r.URL.Path == "/rules/batch":
			seqRulesCalls.Add(1)
			http.Error(w, "nope", http.StatusInternalServerError)
		}
	}))
	defer backend.Close()
	_, router := startRouter(t, cluster.Config{
		Shards: []string{backend.URL}, Retries: 4, RetryBackoff: time.Millisecond, Timeout: time.Second,
	})

	code, body := postRaw(t, router.URL+"/query", []byte(`{"ingress":"x","dst":"10.1.2.3"}`))
	if code != 200 || !bytes.Contains(body, []byte(`"atom":7`)) {
		t.Fatalf("query after recovery: %d %s", code, body)
	}
	if got := queryCalls.Load(); got != 3 {
		t.Fatalf("query attempts = %d, want 3 (2 failures + success)", got)
	}

	if code, _ := postRaw(t, router.URL+"/rules/batch", []byte(`[]`)); code != http.StatusBadGateway {
		t.Fatalf("unsequenced rules fan-out: status %d, want 502", code)
	}
	if got := rulesCalls.Load(); got != 1 {
		t.Fatalf("unsequenced rules batch attempted %d times, want exactly 1 (not idempotent)", got)
	}

	if code, _ := postRaw(t, router.URL+"/rules/batch?seq=1", []byte(`[]`)); code != http.StatusBadGateway {
		t.Fatalf("sequenced rules fan-out: status %d, want 502", code)
	}
	if got := seqRulesCalls.Load(); got != 5 {
		t.Fatalf("sequenced rules batch attempted %d times, want 5 (retries exhausted)", got)
	}
}

// TestRouterBodyLimits: the router rejects oversized payloads itself,
// before fanning anything out.
func TestRouterBodyLimits(t *testing.T) {
	var calls atomic.Int32
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Write([]byte(`[]`))
	}))
	defer backend.Close()
	_, router := startRouter(t, cluster.Config{Shards: []string{backend.URL}})

	big := bytes.Repeat([]byte("x"), (1<<20)+1)
	if code, _ := postRaw(t, router.URL+"/query", big); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized /query: status %d, want 413", code)
	}
	huge := bytes.Repeat([]byte("y"), (8<<20)+1)
	if code, _ := postRaw(t, router.URL+"/query/batch", huge); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized /query/batch: status %d, want 413", code)
	}
	if code, _ := postRaw(t, router.URL+"/rules/batch", huge); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized /rules/batch: status %d, want 413", code)
	}
	wide := "[" + strings.Repeat(`{"ingress":"a","dst":"1.2.3.4"},`, 256) + `{"ingress":"a","dst":"1.2.3.4"}]`
	if code, _ := postRaw(t, router.URL+"/query/batch", []byte(wide)); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("257-element batch: status %d, want 413", code)
	}
	if got := calls.Load(); got != 0 {
		t.Fatalf("oversized payloads reached the fleet %d times", got)
	}
}

// TestRouterHealthGating: the router's /healthz follows the fleet — 200
// only when every shard reports ready, 503 once any worker drains.
func TestRouterHealthGating(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 71, RuleScale: 0.01})
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s0 := server.New(c)
	s0.SetPartition(cluster.Partition{Mode: cluster.ModeHeader, Index: 0, Total: 2})
	w0 := httptest.NewServer(s0.Handler())
	defer w0.Close()
	w1 := startWorker(t, netgen.Internet2Like(netgen.Config{Seed: 71, RuleScale: 0.01}),
		cluster.Partition{Mode: cluster.ModeHeader, Index: 1, Total: 2})
	_, router := startRouter(t, cluster.Config{Shards: []string{w0.URL, w1.URL}})

	get := func() (int, []byte) {
		t.Helper()
		resp, err := http.Get(router.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}
	if code, body := get(); code != 200 {
		t.Fatalf("healthy fleet: status %d: %s", code, body)
	}
	s0.StartDrain()
	code, body := get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining fleet: status %d: %s", code, body)
	}
	var h struct {
		Ready  bool `json:"ready"`
		Shards []struct {
			Shard int  `json:"shard"`
			Ready bool `json:"ready"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Ready || len(h.Shards) != 2 || h.Shards[0].Ready || !h.Shards[1].Ready {
		t.Fatalf("healthz payload does not isolate the draining shard: %s", body)
	}
}
