package cluster_test

// Process-level smoke: the real apserver and aprouter binaries, not
// in-process handlers. Two sharded workers behind a router must answer
// bit-identically to an unsharded oracle process through churn and a
// SIGTERM restart of one worker — the `make cluster-smoke` target CI
// runs on every push. Everything the binaries need is regenerated from
// flags; nothing is copied into the fleet.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"apclassifier/internal/netgen"
)

func TestClusterProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; skipped in -short")
	}
	bin := buildBinaries(t)
	ports := reservePorts(t, 4)
	dsFlags := []string{"-net", "internet2", "-scale", "0.01", "-seed", "71"}

	oracleURL := fmt.Sprintf("http://127.0.0.1:%d", ports[0])
	w0URL := fmt.Sprintf("http://127.0.0.1:%d", ports[1])
	w1URL := fmt.Sprintf("http://127.0.0.1:%d", ports[2])
	routerURL := fmt.Sprintf("http://127.0.0.1:%d", ports[3])
	ckptDir := t.TempDir()

	startServer := func(port int, extra ...string) *exec.Cmd {
		args := append([]string{"-listen", fmt.Sprintf("127.0.0.1:%d", port)}, dsFlags...)
		return startProc(t, bin.apserver, append(args, extra...)...)
	}
	oracle := startServer(ports[0])
	w0 := startServer(ports[1], "-shard", "0/2", "-checkpoint-dir", ckptDir)
	w1 := startServer(ports[2], "-shard", "1/2")
	router := startProc(t, bin.aprouter,
		"-listen", fmt.Sprintf("127.0.0.1:%d", ports[3]),
		"-shards", w0URL+","+w1URL)
	defer func() {
		for _, p := range []*exec.Cmd{router, w1, oracle} {
			sigterm(t, p)
		}
	}()

	for _, u := range []string{oracleURL, w0URL, w1URL, routerURL} {
		waitHealthz(t, u)
	}

	ds := netgen.Internet2Like(netgen.Config{Seed: 71, RuleScale: 0.01})
	rng := rand.New(rand.NewSource(9))
	assertSameAnswers(t, "smoke baseline", oracleURL, routerURL, buildQueries(ds, rng, 48))

	// One churn batch to the oracle and through the router's fan-out.
	batch, _ := json.Marshal(churnBatch(ds, 0))
	if code, resp := postRaw(t, oracleURL+"/rules/batch?seq=1", batch); code != 200 {
		t.Fatalf("oracle churn: %d %s", code, resp)
	}
	if code, resp := postRaw(t, routerURL+"/rules/batch?seq=1", batch); code != 200 {
		t.Fatalf("router churn: %d %s", code, resp)
	}
	assertSameAnswers(t, "smoke post-churn", oracleURL, routerURL, buildQueries(ds, rng, 48))

	// SIGTERM worker 0: it must drain, write a final checkpoint, and
	// exit cleanly; the relaunch warm-restores from that checkpoint.
	sigterm(t, w0)
	entries, err := filepath.Glob(filepath.Join(ckptDir, "ckpt-*.apc"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no checkpoint after SIGTERM (err %v)", err)
	}
	w0 = startServer(ports[1], "-shard", "0/2", "-checkpoint-dir", ckptDir, "-restore")
	defer sigterm(t, w0)
	waitHealthz(t, w0URL)

	assertSameAnswers(t, "smoke post-restart", oracleURL, routerURL, buildQueries(ds, rng, 48))
}

type smokeBinaries struct {
	apserver, aprouter string
}

func buildBinaries(t *testing.T) smokeBinaries {
	t.Helper()
	dir := t.TempDir()
	b := smokeBinaries{
		apserver: filepath.Join(dir, "apserver"),
		aprouter: filepath.Join(dir, "aprouter"),
	}
	for pkg, out := range map[string]string{
		"apclassifier/cmd/apserver": b.apserver,
		"apclassifier/cmd/aprouter": b.aprouter,
	} {
		cmd := exec.Command("go", "build", "-o", out, pkg)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v: %s", pkg, err, msg)
		}
	}
	return b
}

func reservePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, 0, n)
	var lns []net.Listener
	for len(ports) < n {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	for _, ln := range lns {
		ln.Close()
	}
	return ports
}

func startProc(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// sigterm asks the process to shut down gracefully and requires a clean
// exit — a worker that dies non-zero under SIGTERM fails the smoke.
// Safe on processes already stopped by an earlier call.
func sigterm(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if cmd.ProcessState != nil {
		return
	}
	_ = cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("%s exited: %v", filepath.Base(cmd.Path), err)
		}
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		t.Errorf("%s ignored SIGTERM", filepath.Base(cmd.Path))
	}
}

func waitHealthz(t *testing.T, base string) {
	t.Helper()
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", base)
}
