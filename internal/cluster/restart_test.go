package cluster_test

// Rolling-restart differential: one worker of a 2-shard fleet is torn
// down mid-churn (graceful drain → final checkpoint), warm-restored
// from its own checkpoint directory on the SAME address, and the fleet
// must come back answering bit-identically to the unsharded oracle —
// with the router's retry loop spanning the outage and the ?seq=
// cursor replaying the churn the dead worker missed.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"apclassifier"
	"apclassifier/internal/checkpoint"
	"apclassifier/internal/cluster"
	"apclassifier/internal/netgen"
	"apclassifier/internal/server"
)

// restartableWorker is an in-process apserver twin: a server.Server on
// a real TCP listener with a checkpoint directory, restartable on the
// same address the router keeps in its shard table.
type restartableWorker struct {
	t      *testing.T
	makeDS func() *netgen.Dataset
	part   cluster.Partition
	ckpt   string
	addr   string

	api    *server.Server
	srv    *http.Server
	runner *checkpoint.Runner
	done   chan struct{}
}

func (w *restartableWorker) start() {
	w.t.Helper()
	dir, err := checkpoint.Open(w.ckpt, 3)
	if err != nil {
		w.t.Fatal(err)
	}
	c, err := apclassifier.RestoreDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		c, err = apclassifier.New(w.makeDS(), apclassifier.Options{})
	}
	if err != nil {
		w.t.Fatal(err)
	}
	w.api = server.New(c)
	w.api.SetPartition(w.part)
	w.runner = w.api.EnableCheckpoints(dir, checkpoint.RunnerConfig{
		OnError: func(err error) { w.t.Errorf("worker %s checkpoint: %v", w.part, err) },
	})
	if w.addr == "" {
		w.addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", w.addr)
	if err != nil {
		w.t.Fatal(err)
	}
	w.addr = ln.Addr().String()
	w.srv = &http.Server{Handler: w.api.Handler()}
	w.done = make(chan struct{})
	go func(srv *http.Server, done chan struct{}) {
		defer close(done)
		_ = srv.Serve(ln)
	}(w.srv, w.done)
}

// stop mirrors cmd/apserver's SIGTERM ordering: drain, shut the
// listener down, then write the final checkpoint.
func (w *restartableWorker) stop() {
	w.t.Helper()
	w.api.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = w.srv.Shutdown(ctx)
	cancel()
	<-w.done
	w.runner.Stop()
}

func (w *restartableWorker) url() string { return "http://" + w.addr }

func TestRouterRollingRestartDifferential(t *testing.T) {
	makeDS := func() *netgen.Dataset {
		return netgen.Internet2Like(netgen.Config{Seed: 71, RuleScale: 0.01})
	}
	oracle := startWorker(t, makeDS(), cluster.Partition{})
	w0 := &restartableWorker{
		t: t, makeDS: makeDS, ckpt: t.TempDir(),
		part: cluster.Partition{Mode: cluster.ModeHeader, Index: 0, Total: 2},
	}
	w0.start()
	t.Cleanup(func() { w0.stop() })
	w1 := startWorker(t, makeDS(), cluster.Partition{Mode: cluster.ModeHeader, Index: 1, Total: 2})

	// Generous retry budget: the warm restore must fit inside the
	// retry window for queries issued while worker 0 is down.
	_, router := startRouter(t, cluster.Config{
		Shards:       []string{w0.url(), w1.URL},
		Retries:      40,
		RetryBackoff: 5 * time.Millisecond,
		Timeout:      5 * time.Second,
	})
	ds := makeDS()
	rng := rand.New(rand.NewSource(101))

	// Warm-up churn + baseline agreement before any restart.
	assertSameAnswers(t, "pre-restart", oracle.URL, router.URL, buildQueries(ds, rng, 32))
	applyChurn(t, ds, oracle.URL, router.URL, 0)
	assertSameAnswers(t, "post-churn", oracle.URL, router.URL, buildQueries(ds, rng, 32))

	// Phase 1 — restart with no churn in flight: a batch launched while
	// worker 0 is down must be answered once it warm-restores (the retry
	// loop spans the gap), and since no rules moved, those answers must
	// already match the oracle bit for bit.
	w0.stop()
	qs := buildQueries(ds, rng, 32)
	qbody, _ := json.Marshal(qs)
	type result struct {
		code int
		body []byte
	}
	inFlight := make(chan result, 1)
	go func() {
		c, b := postRaw(t, router.URL+"/query/batch", qbody)
		inFlight <- result{c, b}
	}()
	time.Sleep(20 * time.Millisecond) // let the fan-out hit the dead port at least once
	w0.start()
	got := <-inFlight
	if got.code != 200 {
		t.Fatalf("batch across restart: status %d: %s", got.code, got.body)
	}
	so, bo := postRaw(t, oracle.URL+"/query/batch", qbody)
	if so != 200 {
		t.Fatalf("oracle batch: %d", so)
	}
	var eo, er []json.RawMessage
	if err := json.Unmarshal(bo, &eo); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(got.body, &er); err != nil {
		t.Fatal(err)
	}
	if len(eo) != len(er) {
		t.Fatalf("oracle %d answers, router %d", len(eo), len(er))
	}
	for i := range eo {
		if string(eo[i]) != string(er[i]) {
			t.Fatalf("answer %d diverges across restart for %+v:\n  oracle %s\n  router %s", i, qs[i], eo[i], er[i])
		}
	}

	// Phase 2 — churn lands while worker 0 is gone. A fast-fail router
	// records the partial failure: shard 1 applies, shard 0 is
	// unreachable, and the fleet is intentionally skewed until the
	// cursor replay converges it.
	w0.stop()
	_, fastRouter := startRouter(t, cluster.Config{
		Shards:       []string{w0.url(), w1.URL},
		Retries:      1,
		RetryBackoff: time.Millisecond,
		Timeout:      time.Second,
	})
	body, _ := json.Marshal(churnBatch(ds, 1))
	if code, resp := postRaw(t, oracle.URL+"/rules/batch?seq=2", body); code != 200 {
		t.Fatalf("oracle churn: %d %s", code, resp)
	}
	code, resp := postRaw(t, fastRouter.URL+"/rules/batch?seq=2", body)
	if code != http.StatusBadGateway {
		t.Fatalf("churn with a dead shard: status %d, want 502: %s", code, resp)
	}
	var partial cluster.RulesFanoutResponse
	if err := json.Unmarshal(resp, &partial); err != nil {
		t.Fatal(err)
	}
	if partial.Shards[0].Error == "" || partial.Shards[1].Error != "" || !partial.Shards[1].Applied {
		t.Fatalf("partial failure shape wrong: %+v", partial)
	}

	// Bring worker 0 back and replay the missed churn with the same
	// cursor: the restored worker applies it (its checkpointed cursor
	// predates it), worker 1 acks without re-applying, and the fleet
	// converges.
	w0.start()
	code, resp = postRaw(t, router.URL+"/rules/batch?seq=2", body)
	if code != 200 {
		t.Fatalf("churn replay: status %d: %s", code, resp)
	}
	var replay cluster.RulesFanoutResponse
	if err := json.Unmarshal(resp, &replay); err != nil {
		t.Fatal(err)
	}
	if !replay.Shards[0].Applied || replay.Shards[1].Applied {
		t.Fatalf("replay must apply on the restarted shard only: %+v", replay)
	}
	if replay.Seq != 2 {
		t.Fatalf("fleet cursor %d after replay, want 2", replay.Seq)
	}

	// Converged again: fresh rounds stay bit-identical through more churn.
	assertSameAnswers(t, "post-restart", oracle.URL, router.URL, buildQueries(ds, rng, 32))
	for step := 2; step < 4; step++ {
		applyChurn(t, ds, oracle.URL, router.URL, step)
		assertSameAnswers(t, fmt.Sprintf("post-restart step %d", step), oracle.URL, router.URL, buildQueries(ds, rng, 32))
	}
}

// TestWorkerBootstrapFromPeer: a joining worker ingests a sibling's
// /checkpoint/latest and warm-restores into the same published state —
// the cmd/apserver -bootstrap-from path, minus the process boundary.
func TestWorkerBootstrapFromPeer(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 71, RuleScale: 0.01})
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(c)
	dir, err := checkpoint.Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	runner := s.EnableCheckpoints(dir, checkpoint.RunnerConfig{})
	defer runner.Stop()
	peer := httptest.NewServer(s.Handler())
	defer peer.Close()

	// Churn the peer, then force a checkpoint capturing cursor + epoch.
	body, _ := json.Marshal(churnBatch(ds, 0))
	if code, resp := postRaw(t, peer.URL+"/rules/batch?seq=3", body); code != 200 {
		t.Fatalf("peer churn: %d %s", code, resp)
	}
	if code, resp := postRaw(t, peer.URL+"/checkpoint", nil); code != 200 {
		t.Fatalf("forced checkpoint: %d %s", code, resp)
	}

	resp, err := http.Get(peer.URL + "/checkpoint/latest")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /checkpoint/latest: status %d", resp.StatusCode)
	}
	joinDir, err := checkpoint.Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := joinDir.Ingest(resp.Body); err != nil {
		t.Fatal(err)
	}
	joined, err := apclassifier.RestoreDir(joinDir)
	if err != nil {
		t.Fatal(err)
	}
	if joined.DeltaSeq() != 3 {
		t.Fatalf("bootstrapped cursor %d, want 3", joined.DeltaSeq())
	}
	if joined.NumPredicates() != c.NumPredicates() || joined.Manager.Version() != c.Manager.Version() {
		t.Fatalf("bootstrapped %d preds @ epoch %d, peer %d @ %d",
			joined.NumPredicates(), joined.Manager.Version(), c.NumPredicates(), c.Manager.Version())
	}

	// The bootstrapped worker answers like its donor, byte for byte.
	js := server.New(joined)
	joinedTS := httptest.NewServer(js.Handler())
	defer joinedTS.Close()
	rng := rand.New(rand.NewSource(7))
	assertSameAnswers(t, "bootstrap", peer.URL, joinedTS.URL, buildQueries(ds, rng, 32))
}
