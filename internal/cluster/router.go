package cluster

// This file is the fan-out router: the thin, stateless front door of a
// sharded apserver fleet. It splits /query/batch by the shard key,
// forwards each sub-batch with bounded per-shard concurrency, a
// per-attempt timeout and retry-on-next-epoch (a worker mid rolling
// restart answers after its warm restore; the retry loop spans the
// gap), merges the per-shard answers back into input order, and
// replicates /rules/batch to every shard so churn converges fleet-wide.
// The router holds no classifier state — only the shard table — so any
// number of router replicas can front the same fleet.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"apclassifier/internal/obs"
	"apclassifier/internal/rule"
)

// Router-layer body bounds. The router rejects oversized payloads
// before fanning anything out, so one hostile request cannot make N
// workers parse N copies of it.
const (
	maxQueryBody = 1 << 20
	maxBatchBody = 8 << 20
	maxRulesBody = 8 << 20
)

// maxRouterBatch mirrors the workers' per-request batch bound: a batch
// the fleet would refuse is refused here, with the same 413.
const maxRouterBatch = 256

// Router metrics. Per-shard detail (error and retry counts by shard
// index) is exposed through /healthz rather than a label vec — shard
// count is a deployment parameter, not a compile-time constant, and
// label sets must stay provably bounded (see the vecbound analyzer).
var (
	mFanoutDur = obs.Default.Histogram("apc_router_fanout_duration_seconds",
		"End-to-end /query/batch fan-out latency: split, forward, merge.", obs.DefBuckets)
	mFanoutShards = obs.Default.Histogram("apc_router_fanout_shards",
		"Shards touched per /query/batch fan-out.", []float64{1, 2, 4, 8, 16, 32})
	mQueryFwd = obs.Default.Counter("apc_router_query_forwards_total",
		"Single /query requests forwarded to a shard.")
	mBatchFanouts = obs.Default.Counter("apc_router_batch_fanouts_total",
		"/query/batch requests split and fanned out.")
	mRulesFanouts = obs.Default.Counter("apc_router_rules_fanouts_total",
		"/rules/batch requests replicated to the fleet.")
	mShardErrors = obs.Default.Counter("apc_router_shard_errors_total",
		"Failed shard sub-requests (after retries), all shards.")
	mShardRetries = obs.Default.Counter("apc_router_shard_retries_total",
		"Shard sub-request attempts retried, all shards.")
)

// Config parameterizes a Router.
type Config struct {
	// Shards are the worker base URLs; index k is shard k/len(Shards).
	Shards []string
	// Mode is the partition mode, which must match the workers' -shard-mode.
	Mode Mode
	// ShardConcurrency bounds in-flight sub-requests per shard
	// (default 4). Excess sub-requests queue.
	ShardConcurrency int
	// Timeout bounds each forwarding attempt (default 10s).
	Timeout time.Duration
	// Retries is how many times a failed idempotent sub-request is
	// retried (default 6). With exponential backoff the retry window
	// comfortably spans a worker's warm restart.
	Retries int
	// RetryBackoff is the initial backoff between attempts (default
	// 25ms, doubling per attempt, capped at 500ms).
	RetryBackoff time.Duration
	// HealthInterval is the background health-poll cadence (default 1s).
	HealthInterval time.Duration
	// Client overrides the HTTP client (tests); nil builds one with
	// per-shard keep-alive pools.
	Client *http.Client
}

func (c *Config) fillDefaults() {
	if c.ShardConcurrency <= 0 {
		c.ShardConcurrency = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 6
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.Client == nil {
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = 64
		c.Client = &http.Client{Transport: t}
	}
}

// shard is the router's view of one worker: its address, the
// concurrency gate, and health state maintained by the poller and the
// forwarding path. All fields past sem are atomics — the router has no
// locks anywhere on the request path.
type shard struct {
	index int
	base  string
	sem   chan struct{}

	ready   atomic.Bool
	epoch   atomic.Uint64 // tree version reported by /healthz
	seq     atomic.Uint64 // rule-delta cursor reported by /healthz
	errors  atomic.Uint64 // failed sub-requests (after retries)
	retries atomic.Uint64 // retried attempts
	polls   atomic.Uint64 // successful health polls
}

// Router fans queries out over a shard fleet. Create with NewRouter,
// mount Handler, and optionally Start the background health poller.
type Router struct {
	cfg    Config
	shards []*shard
	client *http.Client

	stopPoll chan struct{}
	pollWG   sync.WaitGroup
	started  atomic.Bool
}

// NewRouter builds a router over the configured shard fleet. The
// epoch-skew and readiness gauges are (re)bound to this router — like
// Classifier.RegisterMetrics, the newest instance wins the registry.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: router needs at least one shard URL")
	}
	cfg.fillDefaults()
	r := &Router{cfg: cfg, client: cfg.Client, stopPoll: make(chan struct{})}
	for i, base := range cfg.Shards {
		for len(base) > 0 && base[len(base)-1] == '/' {
			base = base[:len(base)-1]
		}
		r.shards = append(r.shards, &shard{
			index: i,
			base:  base,
			sem:   make(chan struct{}, cfg.ShardConcurrency),
		})
	}
	obs.Default.GaugeFunc("apc_router_ready",
		"1 when every shard's last health probe reported ready.",
		func() float64 {
			for _, sh := range r.shards {
				if !sh.ready.Load() {
					return 0
				}
			}
			return 1
		})
	obs.Default.GaugeFunc("apc_router_seq_skew",
		"Max minus min rule-delta cursor across shards: 0 means churn has converged fleet-wide.",
		func() float64 { _, skew := r.seqSpread(); return float64(skew) })
	obs.Default.GaugeFunc("apc_router_epoch_skew",
		"Max minus min reconstruction epoch across shards.",
		func() float64 {
			lo, hi := uint64(0), uint64(0)
			for i, sh := range r.shards {
				e := sh.epoch.Load()
				if i == 0 || e < lo {
					lo = e
				}
				if e > hi {
					hi = e
				}
			}
			return float64(hi - lo)
		})
	return r, nil
}

// seqSpread returns the minimum shard cursor and the max-min skew.
func (r *Router) seqSpread() (min, skew uint64) {
	lo, hi := uint64(0), uint64(0)
	for i, sh := range r.shards {
		s := sh.seq.Load()
		if i == 0 || s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	return lo, hi - lo
}

// Start launches the background health poller; Stop halts it. The
// poller keeps /healthz answers and the skew gauges fresh between
// requests; the forwarding path never blocks on it.
func (r *Router) Start() {
	if !r.started.CompareAndSwap(false, true) {
		return
	}
	r.pollWG.Add(1)
	go func() {
		defer r.pollWG.Done()
		tick := time.NewTicker(r.cfg.HealthInterval)
		defer tick.Stop()
		for {
			r.RefreshHealth(context.Background())
			select {
			case <-r.stopPoll:
				return
			case <-tick.C:
			}
		}
	}()
}

// Stop halts the background poller started by Start.
func (r *Router) Stop() {
	if r.started.CompareAndSwap(true, false) {
		close(r.stopPoll)
		r.pollWG.Wait()
		r.stopPoll = make(chan struct{})
	}
}

// RefreshHealth probes every shard's /healthz once, concurrently,
// updating the per-shard health state the gauges and /healthz report.
func (r *Router) RefreshHealth(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, sh := range r.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.base+"/healthz", nil)
			if err != nil {
				sh.ready.Store(false)
				return
			}
			resp, err := r.client.Do(req)
			if err != nil {
				sh.ready.Store(false)
				return
			}
			defer resp.Body.Close()
			var h Health
			if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h); err != nil {
				sh.ready.Store(false)
				return
			}
			sh.epoch.Store(h.Epoch)
			sh.seq.Store(h.Seq)
			sh.polls.Add(1)
			sh.ready.Store(resp.StatusCode == http.StatusOK && h.Ready)
		}(sh)
	}
	wg.Wait()
}

// Health is the /healthz payload a worker reports (and the per-shard
// shape the router's own /healthz embeds). Ready means "routable":
// workers gate it on the first published epoch and clear it while
// draining.
type Health struct {
	Ready    bool   `json:"ready"`
	Draining bool   `json:"draining,omitempty"`
	Shard    string `json:"shard,omitempty"`
	Epoch    uint64 `json:"epoch"`
	Seq      uint64 `json:"seq"`
}

// Handler returns the router's HTTP handler.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", r.handleQuery)
	mux.HandleFunc("POST /query/batch", r.handleQueryBatch)
	mux.HandleFunc("POST /rules/batch", r.handleRulesBatch)
	mux.HandleFunc("GET /stats", r.handleStats)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	return mux
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// A write failure means the scraper went away; nothing to report.
	_ = obs.Default.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Status line already sent; an encode failure means the client left.
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// readBody reads a bounded request body, answering 413 on overflow.
func readBody(w http.ResponseWriter, req *http.Request, limit int64) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, limit))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", limit)
		} else {
			writeErr(w, http.StatusBadRequest, "read body: %v", err)
		}
		return nil, false
	}
	return body, true
}

// routeKey is the slice of a query the router must understand: exactly
// the fields the shard function hashes. Everything else in the element
// is forwarded untouched — the worker owns query semantics.
type routeKey struct {
	Ingress string `json:"ingress"`
	Dst     string `json:"dst"`
	Src     string `json:"src"`
	SrcPort uint16 `json:"srcPort"`
	DstPort uint16 `json:"dstPort"`
	Proto   uint8  `json:"proto"`
}

// fields resolves the key's addresses, mirroring the worker's parse so
// ownership is computed on identical values.
func (k *routeKey) fields() (rule.Fields, error) {
	f := rule.Fields{SrcPort: k.SrcPort, DstPort: k.DstPort, Proto: k.Proto}
	var err error
	if f.Dst, err = ParseIPv4(k.Dst); err != nil {
		return f, fmt.Errorf("dst: %w", err)
	}
	if k.Src != "" {
		if f.Src, err = ParseIPv4(k.Src); err != nil {
			return f, fmt.Errorf("src: %w", err)
		}
	}
	return f, nil
}

// shardOfRaw computes the owning shard for one raw query element.
func (r *Router) shardOfRaw(raw []byte) (int, error) {
	var k routeKey
	if err := json.Unmarshal(raw, &k); err != nil {
		return 0, fmt.Errorf("bad JSON: %v", err)
	}
	f, err := k.fields()
	if err != nil {
		return 0, err
	}
	return ShardOf(r.cfg.Mode, len(r.shards), k.Ingress, f), nil
}

// forward sends body to one shard with the retry-on-next-epoch loop:
// transport errors and 5xx responses are retried with exponential
// backoff while the attempt budget lasts, so a worker that is down for
// a rolling restart answers the retry that lands after its warm
// restore publishes the next epoch. A non-idempotent request (an
// unsequenced rules batch) is never retried after it may have been
// applied. The shard's concurrency gate is held for the whole call,
// queued retries included, so a struggling shard is never hammered.
func (r *Router) forward(ctx context.Context, sh *shard, method, path string, body []byte, idempotent bool) (int, http.Header, []byte, error) {
	sh.sem <- struct{}{}
	defer func() { <-sh.sem }()
	backoff := r.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		status, hdr, respBody, err := r.attempt(ctx, sh, method, path, body)
		retryable := err != nil || status >= 500
		if err == nil && (status < 500 || !idempotent) {
			return status, hdr, respBody, nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("shard %d: status %d: %s", sh.index, status, bytes.TrimSpace(respBody))
		}
		if !retryable || !idempotent || attempt >= r.cfg.Retries {
			sh.errors.Add(1)
			mShardErrors.Inc()
			return status, hdr, respBody, lastErr
		}
		sh.retries.Add(1)
		mShardRetries.Inc()
		select {
		case <-ctx.Done():
			sh.errors.Add(1)
			mShardErrors.Inc()
			return 0, nil, nil, lastErr
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

// attempt is one forwarding try under the per-attempt timeout.
func (r *Router) attempt(ctx context.Context, sh *shard, method, path string, body []byte) (int, http.Header, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, sh.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("shard %d: %w", sh.index, err)
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("shard %d: read response: %w", sh.index, err)
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

// relay writes a shard's response through to the client unchanged, so
// a routed /query is byte-identical to querying the worker directly.
func relay(w http.ResponseWriter, status int, hdr http.Header, body []byte) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(status)
	// Client-side write failures have no one left to report to.
	_, _ = w.Write(body)
}

func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req, maxQueryBody)
	if !ok {
		return
	}
	target, err := r.shardOfRaw(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	mQueryFwd.Inc()
	status, hdr, respBody, err := r.forward(req.Context(), r.shards[target], http.MethodPost, "/query", body, true)
	if err != nil && status == 0 {
		writeErr(w, http.StatusBadGateway, "%v", err)
		return
	}
	relay(w, status, hdr, respBody)
}

// handleQueryBatch splits the batch by shard key, fans the sub-batches
// out concurrently, and merges the answers back into input order. The
// merged array is element-for-element byte-identical to what one
// unsharded worker would have answered: workers produce each element,
// the router only reorders bytes.
func (r *Router) handleQueryBatch(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req, maxBatchBody)
	if !ok {
		return
	}
	var elems []json.RawMessage
	if err := json.Unmarshal(body, &elems); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(elems) > maxRouterBatch {
		writeErr(w, http.StatusRequestEntityTooLarge,
			"batch of %d exceeds the %d-query limit; split the workload", len(elems), maxRouterBatch)
		return
	}
	if len(elems) == 0 {
		writeJSON(w, http.StatusOK, []json.RawMessage{})
		return
	}

	// Split: per-shard element lists plus the original index of each
	// element, for the order-preserving merge.
	perShard := make([][]json.RawMessage, len(r.shards))
	perShardIdx := make([][]int, len(r.shards))
	for i, raw := range elems {
		target, err := r.shardOfRaw(raw)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
		perShard[target] = append(perShard[target], raw)
		perShardIdx[target] = append(perShardIdx[target], i)
	}

	mBatchFanouts.Inc()
	start := time.Now()
	merged := make([]json.RawMessage, len(elems))
	type shardFail struct {
		status int
		hdr    http.Header
		body   []byte
		err    error
	}
	fails := make([]*shardFail, len(r.shards))
	var wg sync.WaitGroup
	touched := 0
	for si := range r.shards {
		if len(perShard[si]) == 0 {
			continue
		}
		touched++
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sub, err := json.Marshal(perShard[si])
			if err != nil {
				fails[si] = &shardFail{err: err}
				return
			}
			status, hdr, respBody, err := r.forward(req.Context(), r.shards[si], http.MethodPost, "/query/batch", sub, true)
			if err != nil || status != http.StatusOK {
				fails[si] = &shardFail{status: status, hdr: hdr, body: respBody, err: err}
				return
			}
			var answers []json.RawMessage
			if err := json.Unmarshal(respBody, &answers); err != nil {
				fails[si] = &shardFail{err: fmt.Errorf("shard %d: bad answer array: %v", si, err)}
				return
			}
			if len(answers) != len(perShard[si]) {
				fails[si] = &shardFail{err: fmt.Errorf("shard %d: %d answers for %d queries", si, len(answers), len(perShard[si]))}
				return
			}
			for j, a := range answers {
				merged[perShardIdx[si][j]] = a
			}
		}(si)
	}
	wg.Wait()
	for si, f := range fails {
		if f == nil {
			continue
		}
		if f.err != nil && f.status == 0 {
			writeErr(w, http.StatusBadGateway, "shard %d: %v", si, f.err)
			return
		}
		// A worker rejected its sub-batch (4xx); relay its verdict. The
		// index in its message is sub-batch-local — remap to the
		// client's numbering where the shape allows.
		relay(w, f.status, f.hdr, f.body)
		return
	}
	mFanoutShards.Record(float64(touched))
	mFanoutDur.Record(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, merged)
}

// shardRulesResult is one shard's verdict inside a RulesFanoutResponse.
type shardRulesResult struct {
	Shard   int    `json:"shard"`
	Applied bool   `json:"applied"`
	Seq     uint64 `json:"seq"`
	Error   string `json:"error,omitempty"`
}

// RulesFanoutResponse is the router's /rules/batch result: the
// per-shard verdicts plus the fleet's converged cursor. Seq is the
// minimum cursor across shards — the safe resume point: replaying from
// it cannot skip a shard, and shards that are ahead acknowledge
// replayed batches without re-applying them.
type RulesFanoutResponse struct {
	Applied bool               `json:"applied"` // true when any shard applied the batch
	Seq     uint64             `json:"seq"`
	Shards  []shardRulesResult `json:"shards"`
}

// handleRulesBatch replicates one rule-delta batch to every shard.
// With a ?seq= cursor the replication is idempotent per shard, so a
// partial failure is safe to retry with the same cursor: shards that
// already applied it acknowledge without re-applying, shards that
// missed it converge. Without a cursor a transport-failed shard is NOT
// retried (the batch may have been applied); the response names the
// shards that diverged.
func (r *Router) handleRulesBatch(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req, maxRulesBody)
	if !ok {
		return
	}
	seq := req.URL.Query().Get("seq")
	if seq != "" {
		if v, err := strconv.ParseUint(seq, 10, 64); err != nil || v == 0 {
			writeErr(w, http.StatusBadRequest, "bad seq %q: want a positive integer", seq)
			return
		}
	}
	path := "/rules/batch"
	if seq != "" {
		path += "?seq=" + seq
	}
	mRulesFanouts.Inc()
	results := make([]shardRulesResult, len(r.shards))
	var wg sync.WaitGroup
	for si := range r.shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			res := shardRulesResult{Shard: si}
			status, _, respBody, err := r.forward(req.Context(), r.shards[si], http.MethodPost, path, body, seq != "")
			switch {
			case err != nil && status == 0:
				res.Error = err.Error()
			case status != http.StatusOK:
				res.Error = fmt.Sprintf("status %d: %s", status, bytes.TrimSpace(respBody))
			default:
				var ack struct {
					Applied bool   `json:"applied"`
					Seq     uint64 `json:"seq"`
				}
				if jerr := json.Unmarshal(respBody, &ack); jerr != nil {
					res.Error = fmt.Sprintf("bad ack: %v", jerr)
				} else {
					res.Applied = ack.Applied
					res.Seq = ack.Seq
					r.shards[si].seq.Store(ack.Seq)
				}
			}
			results[si] = res
		}(si)
	}
	wg.Wait()
	resp := RulesFanoutResponse{Shards: results}
	status := http.StatusOK
	first := true
	for _, res := range results {
		if res.Error != "" {
			status = http.StatusBadGateway
			continue
		}
		resp.Applied = resp.Applied || res.Applied
		if first || res.Seq < resp.Seq {
			resp.Seq = res.Seq
		}
		first = false
	}
	writeJSON(w, status, resp)
}

// handleStats fans GET /stats to every shard and returns the answers
// side by side — the operator's one-glance view of fleet symmetry.
func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	type shardStats struct {
		Shard int             `json:"shard"`
		URL   string          `json:"url"`
		Stats json.RawMessage `json:"stats,omitempty"`
		Error string          `json:"error,omitempty"`
	}
	out := make([]shardStats, len(r.shards))
	var wg sync.WaitGroup
	for si, sh := range r.shards {
		wg.Add(1)
		go func(si int, sh *shard) {
			defer wg.Done()
			out[si] = shardStats{Shard: si, URL: sh.base}
			status, _, body, err := r.forward(req.Context(), sh, http.MethodGet, "/stats", nil, true)
			if err != nil || status != http.StatusOK {
				if err == nil {
					err = fmt.Errorf("status %d", status)
				}
				out[si].Error = err.Error()
				return
			}
			out[si].Stats = body
		}(si, sh)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, map[string]interface{}{"shards": out})
}

// handleHealthz probes the fleet synchronously and reports readiness:
// 200 only when every shard is ready, else 503 — the contract a load
// balancer in front of router replicas consumes. The payload carries
// per-shard health plus the seq/epoch skew, so "is churn converged"
// is one curl away.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	r.RefreshHealth(req.Context())
	type shardHealth struct {
		Shard   int    `json:"shard"`
		URL     string `json:"url"`
		Ready   bool   `json:"ready"`
		Epoch   uint64 `json:"epoch"`
		Seq     uint64 `json:"seq"`
		Errors  uint64 `json:"errors"`
		Retries uint64 `json:"retries"`
	}
	shards := make([]shardHealth, len(r.shards))
	ready := true
	for i, sh := range r.shards {
		shards[i] = shardHealth{
			Shard:   i,
			URL:     sh.base,
			Ready:   sh.ready.Load(),
			Epoch:   sh.epoch.Load(),
			Seq:     sh.seq.Load(),
			Errors:  sh.errors.Load(),
			Retries: sh.retries.Load(),
		}
		ready = ready && shards[i].Ready
	}
	_, skew := r.seqSpread()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]interface{}{
		"ready":   ready,
		"mode":    r.cfg.Mode.String(),
		"shards":  shards,
		"seqSkew": skew,
	})
}
