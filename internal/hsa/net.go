package hsa

import (
	"sort"

	"apclassifier/internal/header"
	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

// TRule is one transfer-function rule: a ternary match and an action.
// Rules apply in slice order (priority), like Hassel's transfer functions.
type TRule struct {
	Match Expr
	Port  int  // output port; ignored when Deny
	Deny  bool // drop matching packets (ACL deny or FIB drop rule)
}

// Filter is an ordered permit/deny rule list (an ACL in header space).
type Filter struct {
	Rules         []TRule // Deny=false means permit here
	DefaultPermit bool
}

// HBox is a box compiled to header-space form.
type HBox struct {
	Name    string
	TF      []TRule         // forwarding transfer function, priority-ordered
	InACL   *Filter         // optional ingress filter
	PortACL map[int]*Filter // optional egress filters
	Peer    map[int]netgen.Host
}

// Net is a dataset compiled for header-space reachability analysis.
type Net struct {
	Layout *header.Layout
	Boxes  []HBox
}

// Compile converts a dataset's rule tables into header-space transfer
// functions: each forwarding rule's prefix becomes a ternary match over
// the dstIP field (priority = descending prefix length), and each ACL rule
// becomes one or more ternary matches (port ranges expand into aligned
// prefixes, the standard TCAM expansion).
func Compile(ds *netgen.Dataset) *Net {
	n := &Net{Layout: ds.Layout}
	dst := ds.Layout.MustField("dstIP")
	peerOf := map[[2]int]netgen.Host{}
	for _, l := range ds.Links {
		peerOf[[2]int{l.A, l.PA}] = netgen.Host{Box: l.B, Port: l.PB}
		peerOf[[2]int{l.B, l.PB}] = netgen.Host{Box: l.A, Port: l.PA}
	}
	for _, h := range ds.Hosts {
		peerOf[[2]int{h.Box, h.Port}] = h
	}
	for bi := range ds.Boxes {
		spec := &ds.Boxes[bi]
		hb := HBox{Name: spec.Name, PortACL: map[int]*Filter{}, Peer: map[int]netgen.Host{}}
		// FIB → priority-ordered ternary rules.
		idx := spec.Fwd.ByDescendingLength()
		for _, ri := range idx {
			r := spec.Fwd.Rules[ri]
			e := All(ds.Layout.Bits())
			e.SetField(dst.Offset, dst.Width, uint64(r.Prefix.Value), r.Prefix.Length)
			hb.TF = append(hb.TF, TRule{Match: e, Port: r.Port, Deny: r.Port == rule.Drop})
		}
		if spec.InACL != nil {
			hb.InACL = compileACL(ds.Layout, spec.InACL)
		}
		for pi, acl := range spec.PortACL {
			hb.PortACL[pi] = compileACL(ds.Layout, acl)
		}
		for pi := 0; pi < spec.NumPorts; pi++ {
			if p, ok := peerOf[[2]int{bi, pi}]; ok {
				hb.Peer[pi] = p
			}
		}
		n.Boxes = append(n.Boxes, hb)
	}
	return n
}

// compileACL expands a 5-tuple ACL into ternary rules.
func compileACL(layout *header.Layout, acl *rule.ACL) *Filter {
	f := &Filter{DefaultPermit: acl.Default == rule.Permit}
	for _, r := range acl.Rules {
		for _, e := range matchExprs(layout, r.Match) {
			f.Rules = append(f.Rules, TRule{Match: e, Deny: r.Action == rule.Deny})
		}
	}
	return f
}

// matchExprs expands a Match5 into ternary expressions (cross product of
// the port-range prefix expansions).
func matchExprs(layout *header.Layout, m rule.Match5) []Expr {
	base := All(layout.Bits())
	setPrefix := func(field string, p rule.Prefix) {
		if p.Length == 0 {
			return
		}
		f := layout.MustField(field)
		base.SetField(f.Offset, f.Width, uint64(p.Value), p.Length)
	}
	setPrefix("srcIP", m.Src)
	setPrefix("dstIP", m.Dst)
	if m.Proto != rule.AnyProto {
		if f, ok := layout.FieldByName("proto"); ok {
			base.SetField(f.Offset, f.Width, uint64(m.Proto), f.Width)
		}
	}
	exprs := []Expr{base}
	expand := func(field string, pr rule.PortRange) {
		if pr == rule.AnyPort {
			return
		}
		f, ok := layout.FieldByName(field)
		if !ok {
			return
		}
		var next []Expr
		for _, pfx := range rangePrefixes(uint64(pr.Lo), uint64(pr.Hi), f.Width) {
			for _, e := range exprs {
				c := cloneExpr(e)
				c.SetField(f.Offset, f.Width, pfx.value, pfx.length)
				next = append(next, c)
			}
		}
		exprs = next
	}
	expand("srcPort", m.SrcPort)
	expand("dstPort", m.DstPort)
	return exprs
}

type prefixPart struct {
	value  uint64
	length int
}

// rangePrefixes decomposes [lo,hi] into maximal aligned prefixes.
func rangePrefixes(lo, hi uint64, width int) []prefixPart {
	var out []prefixPart
	maxv := uint64(1)<<uint(width) - 1
	for lo <= hi {
		size := uint64(1)
		for lo+size*2-1 <= hi && lo&(size*2-1) == 0 {
			size *= 2
		}
		nbits := 0
		for s := size; s > 1; s >>= 1 {
			nbits++
		}
		out = append(out, prefixPart{value: lo, length: width - nbits})
		if lo+size-1 >= maxv {
			break
		}
		lo += size
	}
	return out
}

// Result is the outcome of a reachability query.
type Result struct {
	Delivered []string
	DropBoxes []int
	Looped    bool
	// RuleChecks counts ternary intersections performed — the work metric
	// that explains why HSA is orders of magnitude slower per query.
	RuleChecks int
}

// Reach computes where a concrete packet entering at ingress goes, by
// propagating its header-space expression through transfer functions.
func (n *Net) Reach(ingress int, pkt []byte) Result {
	var res Result
	start := FromPacket(pkt, n.Layout.Bits())
	type head struct {
		box int
		hs  Expr
	}
	visited := make(map[int]bool)
	queue := []head{{ingress, start}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		if visited[h.box] {
			res.Looped = true
			continue
		}
		visited[h.box] = true
		hb := &n.Boxes[h.box]

		hs := h.hs
		if hb.InACL != nil {
			var pass bool
			hs, pass, res.RuleChecks = applyFilter(hb.InACL, hs, res.RuleChecks)
			if !pass {
				res.DropBoxes = append(res.DropBoxes, h.box)
				continue
			}
		}

		// Transfer function: first matching rule wins for a concrete
		// packet, but every rule above it costs an intersection — the
		// Hassel cost model.
		out := -1
		deny := false
		for i := range hb.TF {
			res.RuleChecks++
			if _, ok := hs.Intersect(hb.TF[i].Match); ok {
				out, deny = hb.TF[i].Port, hb.TF[i].Deny
				break
			}
		}
		if out < 0 && !deny || deny {
			res.DropBoxes = append(res.DropBoxes, h.box)
			continue
		}
		if f := hb.PortACL[out]; f != nil {
			var pass bool
			hs, pass, res.RuleChecks = applyFilter(f, hs, res.RuleChecks)
			if !pass {
				res.DropBoxes = append(res.DropBoxes, h.box)
				continue
			}
		}
		peer, ok := hb.Peer[out]
		if !ok {
			res.DropBoxes = append(res.DropBoxes, h.box)
			continue
		}
		if peer.Name != "" {
			res.Delivered = append(res.Delivered, peer.Name)
			continue
		}
		queue = append(queue, head{peer.Box, hs})
	}
	sort.Strings(res.Delivered)
	return res
}

// applyFilter runs a concrete header-space through an ACL filter.
func applyFilter(f *Filter, hs Expr, checks int) (Expr, bool, int) {
	for i := range f.Rules {
		checks++
		if _, ok := hs.Intersect(f.Rules[i].Match); ok {
			return hs, !f.Rules[i].Deny, checks
		}
	}
	return hs, f.DefaultPermit, checks
}
