package hsa

import (
	"math/rand"
	"testing"

	"apclassifier/internal/netgen"
)

func BenchmarkExprIntersect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	exprs := make([]Expr, 64)
	for i := range exprs {
		s := make([]byte, 32)
		for j := range s {
			s[j] = "01*"[rng.Intn(3)]
		}
		exprs[i] = ParseExpr(string(s))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exprs[i%64].Intersect(exprs[(i*7+1)%64])
	}
}

func BenchmarkReachConcrete(b *testing.B) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: 0.02})
	n := Compile(ds)
	rng := rand.New(rand.NewSource(2))
	pkts := make([][]byte, 256)
	ings := make([]int, 256)
	for i := range pkts {
		pkts[i] = ds.PacketFromFields(ds.RandomFields(rng))
		ings[i] = rng.Intn(len(ds.Boxes))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Reach(ings[i%256], pkts[i%256])
	}
}

func BenchmarkReachAllFullSpace(b *testing.B) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: 0.005})
	n := Compile(ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.ReachAll(0, []Expr{All(ds.Layout.Bits())})
	}
}
