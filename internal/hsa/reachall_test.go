package hsa

import (
	"math/rand"
	"testing"

	"apclassifier"
	"apclassifier/internal/bdd"
	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
	"apclassifier/internal/verify"
)

func TestReachAllAgreesWithConcreteReach(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 71, RuleScale: 0.01})
	n := Compile(ds)
	rng := rand.New(rand.NewSource(71))
	for ingress := 0; ingress < 3; ingress++ {
		all := n.ReachAll(ingress, []Expr{All(ds.Layout.Bits())})
		for i := 0; i < 200; i++ {
			f := ds.RandomFields(rng)
			pkt := ds.PacketFromFields(f)
			concrete := n.Reach(ingress, pkt)
			pt := FromPacket(pkt, ds.Layout.Bits())
			for host, exprs := range all.ToHost {
				inSet := false
				for _, e := range exprs {
					if _, ok := e.Intersect(pt); ok {
						inSet = true
						break
					}
				}
				delivered := false
				for _, h := range concrete.Delivered {
					if h == host {
						delivered = true
					}
				}
				if inSet != delivered {
					t.Fatalf("ingress %d host %s: set-based %v vs concrete %v", ingress, host, inSet, delivered)
				}
			}
		}
	}
}

// TestReachAllEqualsAtomLevelReachability is the flagship cross-validation:
// two independent implementations — wildcard-expression propagation (HSA)
// and atomic-predicate analysis (AP Classifier + verify) — must compute
// exactly the same reachability sets, as canonical BDDs.
func TestReachAllEqualsAtomLevelReachability(t *testing.T) {
	for _, gen := range []func() *netgen.Dataset{
		func() *netgen.Dataset { return netgen.Internet2Like(netgen.Config{Seed: 72, RuleScale: 0.005}) },
		func() *netgen.Dataset { return netgen.StanfordLike(netgen.Config{Seed: 72, RuleScale: 0.002}) },
	} {
		ds := gen()
		c, err := apclassifier.New(ds, apclassifier.Options{})
		if err != nil {
			t.Fatal(err)
		}
		an := verify.New(c)
		hn := Compile(ds)
		d := c.Manager.DD()

		for _, ingress := range []int{0, len(ds.Boxes) / 2} {
			all := hn.ReachAll(ingress, []Expr{All(ds.Layout.Bits())})
			// Every host's HSA set must equal the atom-level reach set.
			seen := map[string]bool{}
			for host, exprs := range all.ToHost {
				seen[host] = true
				hsaSet := bdd.False
				for _, e := range exprs {
					hsaSet = d.Or(hsaSet, d.FromTernary(e.String()))
				}
				atomSet := an.ReachSet(ingress, host).UnionRef(d)
				if hsaSet != atomSet {
					t.Fatalf("%s ingress %d host %s: HSA and atom-level reach sets differ "+
						"(HSA %.0f headers, atoms %.0f)", ds.Name, ingress, host,
						d.SatCount(hsaSet), d.SatCount(atomSet))
				}
			}
			// Hosts HSA never delivers to must have empty atom-level sets.
			for _, h := range ds.Hosts {
				if !seen[h.Name] && !an.ReachSet(ingress, h.Name).Empty() {
					t.Fatalf("%s: atom-level says %s reachable, HSA disagrees", ds.Name, h.Name)
				}
			}
		}
	}
}

func TestReachAllDetectsLoops(t *testing.T) {
	ds := &netgen.Dataset{Name: "loopy", Layout: netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: 0.01}).Layout}
	ds.Boxes = []netgen.BoxSpec{
		{Name: "a", NumPorts: 2, PortACL: map[int]*rule.ACL{}},
		{Name: "b", NumPorts: 2, PortACL: map[int]*rule.ACL{}},
	}
	ds.Links = []netgen.Link{{A: 0, PA: 1, B: 1, PB: 1}}
	ds.Hosts = []netgen.Host{{Box: 0, Port: 0, Name: "h1"}}
	ds.Boxes[0].Fwd.Add(rule.FwdRule{Prefix: rule.P(0x0A000000, 8), Port: 1})
	ds.Boxes[1].Fwd.Add(rule.FwdRule{Prefix: rule.P(0x0A000000, 8), Port: 1})
	ds.Boxes[0].Fwd.Add(rule.FwdRule{Prefix: rule.P(0xC0000000, 8), Port: 0})
	n := Compile(ds)
	res := n.ReachAll(0, []Expr{All(32)})
	if len(res.Loops) == 0 {
		t.Fatal("loop not detected by set propagation")
	}
	// The looping set is exactly 10/8.
	total := 0.0
	for _, e := range res.Loops {
		total += e.Count()
	}
	if total != float64(uint64(1)<<24) {
		t.Fatalf("looping header count = %v, want 2^24", total)
	}
	hosts := res.Hosts()
	if len(hosts) != 1 || hosts[0] != "h1" {
		t.Fatalf("delivered hosts = %v, want [h1]", hosts)
	}
}

func TestCountTo(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 73, RuleScale: 0.005})
	n := Compile(ds)
	all := n.ReachAll(0, []Expr{All(32)})
	totalDelivered := 0.0
	for _, h := range all.Hosts() {
		totalDelivered += all.CountTo(h)
	}
	totalDropped := 0.0
	for _, e := range all.Dropped {
		totalDropped += e.Count()
	}
	// Conservation: delivered + dropped (+ loops, none here) = 2^32.
	if got := totalDelivered + totalDropped; got != float64(uint64(1)<<32) {
		t.Fatalf("header-space not conserved: %v", got)
	}
	if len(all.Loops) != 0 {
		t.Fatal("unexpected loops")
	}
}
