package hsa

import "sort"

// AllResult is the outcome of whole-header-space reachability analysis:
// for a set of headers injected at one box, the subsets that reach each
// host, the subsets that die, and the subsets that loop.
type AllResult struct {
	// ToHost maps host name → union of wildcard expressions delivered.
	ToHost map[string][]Expr
	// Dropped is the union of expressions that died anywhere (no route,
	// ACL deny, deny rule, or dangling port).
	Dropped []Expr
	// Loops is the union of expressions that re-entered a box already on
	// their own path.
	Loops []Expr
	// Pieces counts header-space fragments processed, the HSA work
	// metric for set-based analysis.
	Pieces int
}

// ReachAll propagates an arbitrary header-space set from ingress through
// the network, splitting it per rule exactly as Hassel does: each transfer
// function routes hs∩match_i to rule i's port and passes hs∖match_i to the
// next rule. Loop detection follows the HSA paper: a branch terminates
// (and is reported) when it revisits a box on its own path.
func (n *Net) ReachAll(ingress int, hs []Expr) *AllResult {
	res := &AllResult{ToHost: map[string][]Expr{}}
	type head struct {
		box  int
		hs   Expr
		path []int
	}
	var queue []head
	for _, e := range hs {
		queue = append(queue, head{ingress, e, nil})
	}
	onPath := func(path []int, box int) bool {
		for _, b := range path {
			if b == box {
				return true
			}
		}
		return false
	}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		res.Pieces++
		if onPath(h.path, h.box) {
			res.Loops = append(res.Loops, h.hs)
			continue
		}
		hb := &n.Boxes[h.box]
		path := append(append([]int(nil), h.path...), h.box)

		pieces := []Expr{h.hs}
		if hb.InACL != nil {
			var denied []Expr
			pieces, denied = filterSet(hb.InACL, pieces)
			res.Dropped = append(res.Dropped, denied...)
		}

		// Transfer function with per-rule subtraction.
		for _, piece := range pieces {
			remaining := []Expr{piece}
			for ri := range hb.TF {
				if len(remaining) == 0 {
					break
				}
				match := hb.TF[ri].Match
				var hit []Expr
				var miss []Expr
				for _, r := range remaining {
					if inter, ok := r.Intersect(match); ok {
						hit = append(hit, inter)
						miss = append(miss, r.Subtract(match)...)
					} else {
						miss = append(miss, r)
					}
				}
				remaining = miss
				if len(hit) == 0 {
					continue
				}
				if hb.TF[ri].Deny {
					res.Dropped = append(res.Dropped, hit...)
					continue
				}
				out := hb.TF[ri].Port
				if f := hb.PortACL[out]; f != nil {
					var denied []Expr
					hit, denied = filterSet(f, hit)
					res.Dropped = append(res.Dropped, denied...)
				}
				peer, ok := hb.Peer[out]
				if !ok {
					res.Dropped = append(res.Dropped, hit...)
					continue
				}
				if peer.Name != "" {
					res.ToHost[peer.Name] = append(res.ToHost[peer.Name], hit...)
					continue
				}
				for _, e := range hit {
					queue = append(queue, head{peer.Box, e, path})
				}
			}
			// Matched by no rule at all: dropped.
			res.Dropped = append(res.Dropped, remaining...)
		}
	}
	return res
}

// filterSet pushes a header-space set through an ACL filter, returning the
// permitted and denied subsets.
func filterSet(f *Filter, hs []Expr) (permitted, denied []Expr) {
	remaining := hs
	for ri := range f.Rules {
		if len(remaining) == 0 {
			break
		}
		match := f.Rules[ri].Match
		var miss []Expr
		for _, r := range remaining {
			if inter, ok := r.Intersect(match); ok {
				if f.Rules[ri].Deny {
					denied = append(denied, inter)
				} else {
					permitted = append(permitted, inter)
				}
				miss = append(miss, r.Subtract(match)...)
			} else {
				miss = append(miss, r)
			}
		}
		remaining = miss
	}
	if f.DefaultPermit {
		permitted = append(permitted, remaining...)
	} else {
		denied = append(denied, remaining...)
	}
	return permitted, denied
}

// Hosts lists the hosts an AllResult delivered to, sorted.
func (r *AllResult) Hosts() []string {
	out := make([]string, 0, len(r.ToHost))
	for h := range r.ToHost {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// CountTo sums the header counts delivered to one host. Because the
// delivered pieces for one host are pairwise disjoint (each piece came
// from a disjoint slice of the injected set), the sum is exact.
func (r *AllResult) CountTo(host string) float64 {
	total := 0.0
	for _, e := range r.ToHost[host] {
		total += e.Count()
	}
	return total
}
