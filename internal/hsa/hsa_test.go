package hsa

import (
	"math/rand"
	"testing"

	"apclassifier/internal/netgen"
)

func TestExprBasics(t *testing.T) {
	e := ParseExpr("10**")
	if e.String() != "10**" {
		t.Fatalf("round trip: %q", e.String())
	}
	if got := e.Count(); got != 4 {
		t.Fatalf("Count = %v, want 4", got)
	}
	all := All(4)
	if all.Count() != 16 || all.String() != "****" {
		t.Fatalf("All: %q %v", all.String(), all.Count())
	}
}

func TestFromPacketBitOrder(t *testing.T) {
	// Packet bytes are MSB-first: bit 0 is the top bit of byte 0.
	e := FromPacket([]byte{0b10100000}, 8)
	if e.String() != "10100000" {
		t.Fatalf("FromPacket = %q", e.String())
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct {
		a, b, want string
		empty      bool
	}{
		{"10**", "1*0*", "100*", false},
		{"10**", "11**", "", true},
		{"****", "1010", "1010", false},
		{"1010", "1010", "1010", false},
		{"0***", "*1*0", "01*0", false},
	}
	for _, c := range cases {
		got, ok := ParseExpr(c.a).Intersect(ParseExpr(c.b))
		if ok == c.empty {
			t.Fatalf("%s ∩ %s: empty=%v, want %v", c.a, c.b, !ok, c.empty)
		}
		if ok && got.String() != c.want {
			t.Fatalf("%s ∩ %s = %s, want %s", c.a, c.b, got.String(), c.want)
		}
	}
}

func TestContains(t *testing.T) {
	if !ParseExpr("1***").Contains(ParseExpr("10*1")) {
		t.Fatal("1*** must contain 10*1")
	}
	if ParseExpr("10*1").Contains(ParseExpr("1***")) {
		t.Fatal("10*1 must not contain 1***")
	}
	if !ParseExpr("****").Contains(ParseExpr("0000")) {
		t.Fatal("all must contain any")
	}
	if ParseExpr("0***").Contains(ParseExpr("1000")) {
		t.Fatal("disjoint: no containment")
	}
}

func TestSubtract(t *testing.T) {
	// (1***) − (10**) = 11**
	diff := ParseExpr("1***").Subtract(ParseExpr("10**"))
	if len(diff) != 1 || diff[0].String() != "11**" {
		t.Fatalf("diff = %v", diff)
	}
	// (****) − (10**): three pieces covering everything but 10**.
	diff = All(4).Subtract(ParseExpr("10**"))
	total := 0.0
	for _, d := range diff {
		total += d.Count()
		if _, ok := d.Intersect(ParseExpr("10**")); ok {
			t.Fatalf("piece %s overlaps subtrahend", d.String())
		}
	}
	if total != 12 {
		t.Fatalf("sum of pieces = %v, want 12", total)
	}
	// Subtracting a disjoint expression is identity.
	diff = ParseExpr("0***").Subtract(ParseExpr("1***"))
	if len(diff) != 1 || diff[0].String() != "0***" {
		t.Fatalf("disjoint subtract = %v", diff)
	}
	// Subtracting a superset leaves nothing.
	if diff := ParseExpr("10**").Subtract(ParseExpr("1***")); len(diff) != 0 {
		t.Fatalf("subset minus superset = %v", diff)
	}
}

func TestSubtractRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const nbits = 10
	randExpr := func() Expr {
		s := make([]byte, nbits)
		for i := range s {
			s[i] = "01*"[rng.Intn(3)]
		}
		return ParseExpr(string(s))
	}
	member := func(e Expr, v uint) bool {
		p := []byte{byte(v >> 2), byte(v << 6)}
		pt := FromPacket(p, nbits)
		_, ok := e.Intersect(pt)
		return ok
	}
	for trial := 0; trial < 100; trial++ {
		a, b := randExpr(), randExpr()
		diff := a.Subtract(b)
		for v := uint(0); v < 1<<nbits; v++ {
			want := member(a, v) && !member(b, v)
			got := false
			for _, d := range diff {
				if member(d, v) {
					got = true
					break
				}
			}
			if got != want {
				t.Fatalf("trial %d: (%s − %s) membership of %010b: got %v want %v",
					trial, a.String(), b.String(), v, got, want)
			}
		}
	}
}

func TestRangePrefixes(t *testing.T) {
	for _, c := range []struct{ lo, hi uint64 }{
		{0, 65535}, {80, 80}, {1024, 65535}, {100, 1000}, {1, 65534},
	} {
		parts := rangePrefixes(c.lo, c.hi, 16)
		covered := 0.0
		for _, p := range parts {
			covered += float64(uint64(1) << uint(16-p.length))
		}
		if covered != float64(c.hi-c.lo+1) {
			t.Fatalf("[%d,%d]: covered %v values, want %d", c.lo, c.hi, covered, c.hi-c.lo+1)
		}
	}
}

func TestReachMatchesOracleInternet2(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 11, RuleScale: 0.01})
	n := Compile(ds)
	rng := rand.New(rand.NewSource(11))
	delivered := 0
	for i := 0; i < 300; i++ {
		f := ds.RandomFields(rng)
		ingress := rng.Intn(len(ds.Boxes))
		want := ds.Simulate(ingress, f)
		got := n.Reach(ingress, ds.PacketFromFields(f))
		if len(want.Delivered) != len(got.Delivered) {
			t.Fatalf("probe %d: HSA delivered %v, oracle %v", i, got.Delivered, want.Delivered)
		}
		for j := range want.Delivered {
			if want.Delivered[j] != got.Delivered[j] {
				t.Fatalf("probe %d: HSA delivered %v, oracle %v", i, got.Delivered, want.Delivered)
			}
		}
		if got.RuleChecks == 0 {
			t.Fatal("HSA must do per-rule work")
		}
		if len(want.Delivered) > 0 {
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatal("no delivered traffic exercised")
	}
}

func TestReachMatchesOracleStanford(t *testing.T) {
	ds := netgen.StanfordLike(netgen.Config{Seed: 12, RuleScale: 0.003})
	n := Compile(ds)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 150; i++ {
		f := ds.RandomFields(rng)
		ingress := rng.Intn(len(ds.Boxes))
		want := ds.Simulate(ingress, f)
		got := n.Reach(ingress, ds.PacketFromFields(f))
		if (len(want.Delivered) > 0) != (len(got.Delivered) > 0) {
			t.Fatalf("probe %d: HSA %v vs oracle %v (fields %+v)", i, got.Delivered, want.Delivered, f)
		}
		if len(want.Delivered) > 0 && want.Delivered[0] != got.Delivered[0] {
			t.Fatalf("probe %d: wrong host", i)
		}
	}
}

func TestReachRuleChecksScaleWithRules(t *testing.T) {
	small := netgen.Internet2Like(netgen.Config{Seed: 13, RuleScale: 0.005})
	big := netgen.Internet2Like(netgen.Config{Seed: 13, RuleScale: 0.02})
	ns, nb := Compile(small), Compile(big)
	rng := rand.New(rand.NewSource(13))
	var cs, cb int
	for i := 0; i < 100; i++ {
		fs := small.RandomFields(rng)
		cs += ns.Reach(rng.Intn(9), small.PacketFromFields(fs)).RuleChecks
		fb := big.RandomFields(rng)
		cb += nb.Reach(rng.Intn(9), big.PacketFromFields(fb)).RuleChecks
	}
	if cb <= cs {
		t.Fatalf("per-query work must grow with rule volume: %d !> %d", cb, cs)
	}
}
