// Package hsa implements Header Space Analysis (Kazemian et al., NSDI'12)
// as the paper's main baseline, standing in for Hassel-C: packet headers as
// points in a {0,1}^L space, rule matches as wildcard (ternary)
// expressions, boxes as transfer functions, and reachability computed by
// propagating header-space sets hop by hop.
//
// The paper reports Hassel-C answering per-packet behavior queries about
// three orders of magnitude slower than AP Classifier; the gap is inherent
// to the algorithm — every box traversal re-scans the box's rule list
// doing ternary intersections — and reproduces here.
package hsa

import (
	"fmt"
	"math"
	"math/bits"
)

// Expr is a wildcard expression over L header bits: a set of headers where
// each bit is 0, 1 or don't-care. Bit i of the header is bit i%64 of word
// i/64 (note: this differs from packet byte order; use FromPacket).
type Expr struct {
	nbits int
	val   []uint64 // bit value where care
	wild  []uint64 // 1 = don't care
}

func words(nbits int) int { return (nbits + 63) / 64 }

// All returns the expression matching every header.
func All(nbits int) Expr {
	e := Expr{nbits: nbits, val: make([]uint64, words(nbits)), wild: make([]uint64, words(nbits))}
	for i := range e.wild {
		e.wild[i] = ^uint64(0)
	}
	if r := nbits % 64; r != 0 {
		e.wild[len(e.wild)-1] = 1<<uint(r) - 1
	}
	return e
}

// FromPacket returns the fully concrete expression of one header. Packet
// bytes use the layout convention (bit i = MSB-first within bytes).
func FromPacket(pkt []byte, nbits int) Expr {
	e := All(nbits)
	for i := 0; i < nbits; i++ {
		set := pkt[i/8]&(0x80>>uint(i%8)) != 0
		e.setBit(i, set)
	}
	return e
}

func (e *Expr) setBit(i int, v bool) {
	w, b := i/64, uint(i%64)
	e.wild[w] &^= 1 << b
	if v {
		e.val[w] |= 1 << b
	} else {
		e.val[w] &^= 1 << b
	}
}

// SetField constrains a layout field: the leading `length` bits of the
// width-bit field at bit offset must equal the prefix of value. Remaining
// field bits stay as they were.
func (e *Expr) SetField(offset, width int, value uint64, length int) {
	for i := 0; i < length; i++ {
		e.setBit(offset+i, value&(1<<uint(width-1-i)) != 0)
	}
}

// Intersect returns e ∩ o; ok is false when the intersection is empty.
func (e Expr) Intersect(o Expr) (Expr, bool) {
	if e.nbits != o.nbits {
		panic("hsa: intersecting expressions of different widths")
	}
	r := Expr{nbits: e.nbits, val: make([]uint64, len(e.val)), wild: make([]uint64, len(e.val))}
	for i := range e.val {
		// Conflict: both care and values differ.
		conflict := ^e.wild[i] & ^o.wild[i] & (e.val[i] ^ o.val[i])
		if conflict != 0 {
			return Expr{}, false
		}
		r.wild[i] = e.wild[i] & o.wild[i]
		r.val[i] = (e.val[i] & ^e.wild[i]) | (o.val[i] & ^o.wild[i])
	}
	return r, true
}

// Contains reports whether o ⊆ e: every bit e cares about, o must care
// about with the same value. (Bits past nbits are stored as care-with-zero
// on both sides, so they never disqualify.)
func (e Expr) Contains(o Expr) bool {
	for i := range e.val {
		care := ^e.wild[i]
		if care&o.wild[i] != 0 {
			return false // e cares, o doesn't: o has headers outside e
		}
		if care&^o.wild[i]&(e.val[i]^o.val[i]) != 0 {
			return false
		}
	}
	return true
}

// Subtract returns e ∖ o as a union of expressions — one per bit where e is
// wild and o cares (the standard HSA complement expansion).
func (e Expr) Subtract(o Expr) []Expr {
	inter, ok := e.Intersect(o)
	if !ok {
		return []Expr{e}
	}
	_ = inter
	var out []Expr
	prefix := e // progressively constrained copy
	for i := 0; i < e.nbits; i++ {
		w, b := i/64, uint(i%64)
		if o.wild[w]&(1<<b) != 0 {
			continue // o doesn't care: no split on this bit
		}
		oval := o.val[w]&(1<<b) != 0
		if prefix.wild[w]&(1<<b) == 0 {
			// e (as constrained so far) cares: either matches o (keep
			// going) or we already returned via empty intersection.
			if (prefix.val[w]&(1<<b) != 0) != oval {
				return []Expr{e}
			}
			continue
		}
		// e is wild here: the half with the opposite value survives.
		surv := cloneExpr(prefix)
		surv.setBit(i, !oval)
		out = append(out, surv)
		prefix = cloneExpr(prefix)
		prefix.setBit(i, oval)
	}
	return out
}

func cloneExpr(e Expr) Expr {
	return Expr{
		nbits: e.nbits,
		val:   append([]uint64(nil), e.val...),
		wild:  append([]uint64(nil), e.wild...),
	}
}

// Count returns the number of headers the expression matches (as float64,
// like bdd.SatCount).
func (e Expr) Count() float64 {
	n := 0
	for _, w := range e.wild {
		n += bits.OnesCount64(w)
	}
	return math.Exp2(float64(n))
}

// String renders the expression as a ternary string, MSB of byte 0 first.
func (e Expr) String() string {
	out := make([]byte, e.nbits)
	for i := 0; i < e.nbits; i++ {
		w, b := i/64, uint(i%64)
		switch {
		case e.wild[w]&(1<<b) != 0:
			out[i] = '*'
		case e.val[w]&(1<<b) != 0:
			out[i] = '1'
		default:
			out[i] = '0'
		}
	}
	return string(out)
}

// ParseExpr parses a ternary string produced by String (for tests).
func ParseExpr(s string) Expr {
	e := All(len(s))
	for i, c := range s {
		switch c {
		case '0':
			e.setBit(i, false)
		case '1':
			e.setBit(i, true)
		case '*', 'x':
		default:
			panic(fmt.Sprintf("hsa: bad ternary char %q", c))
		}
	}
	return e
}
