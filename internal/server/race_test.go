package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
)

// TestConcurrentQueriesAndUpdates hammers the HTTP API from many
// goroutines at once: behavior queries, rule installs/removals,
// reconstructions and stats reads all interleave. The server serializes on
// one mutex; under -race this test proves no handler leaks state outside
// it.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	ts, ds := testServer(t)
	const (
		workers          = 6
		requestsPerGorou = 40
	)
	boxName := ds.Boxes[0].Name

	var wg sync.WaitGroup
	errs := make(chan error, workers*requestsPerGorou)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < requestsPerGorou; i++ {
				switch rng.Intn(5) {
				case 0: // stats
					var stats StatsResponse
					if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
						errs <- fmt.Errorf("stats status %d", code)
						return
					}
				case 1: // rule install on a private prefix per worker
					prefix := fmt.Sprintf("203.%d.%d.0/24", seed, i%250)
					code := postJSON(t, ts.URL+"/rules/add", RuleRequest{
						Box: boxName, Prefix: prefix, Port: 0,
					}, nil)
					if code != 200 {
						errs <- fmt.Errorf("rules/add status %d", code)
						return
					}
				case 2: // rule removal (may 404 if not yet added; both are fine)
					prefix := fmt.Sprintf("203.%d.%d.0/24", seed, rng.Intn(250))
					code := postJSON(t, ts.URL+"/rules/remove", RuleRequest{
						Box: boxName, Prefix: prefix,
					}, nil)
					if code != 200 && code != 404 {
						errs <- fmt.Errorf("rules/remove status %d", code)
						return
					}
				case 3: // reconstruction racing the queries
					code := postJSON(t, ts.URL+"/reconstruct",
						map[string]bool{"weighted": rng.Intn(2) == 0}, nil)
					if code != 200 {
						errs <- fmt.Errorf("reconstruct status %d", code)
						return
					}
				default: // behavior query
					f := ds.RandomFields(rng)
					var resp QueryResponse
					code := postJSON(t, ts.URL+"/query", QueryRequest{
						Ingress: ds.Boxes[rng.Intn(len(ds.Boxes))].Name,
						Dst:     dotted(f.Dst),
						Src:     dotted(f.Src),
						SrcPort: f.SrcPort,
						DstPort: f.DstPort,
						Proto:   f.Proto,
					}, &resp)
					if code != 200 {
						errs <- fmt.Errorf("query status %d", code)
						return
					}
					if resp.Atom < 0 {
						errs <- fmt.Errorf("query returned atom %d", resp.Atom)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The classifier must still answer coherently after the storm.
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("final stats status %d", code)
	}
	if stats.Atoms == 0 || stats.Predicates == 0 {
		t.Fatalf("classifier degenerated: %+v", stats)
	}
}

func dotted(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}
