package server

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"apclassifier/internal/rule"
)

// TestConcurrentQueriesAndUpdates hammers the HTTP API from many
// goroutines at once: behavior queries, rule installs/removals,
// reconstructions, stats reads, metrics scrapes and trace reads all
// interleave. The server serializes updates on one mutex, but /metrics
// and /debug/trace deliberately take no server lock — they read atomics
// and the manager's own lock — so this test is what proves a scrape
// racing a snapshot swap (reconstruct retires the DD and flushes its
// stats) is clean under -race.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	ts, ds := testServer(t)
	const (
		workers          = 6
		requestsPerGorou = 40
	)
	boxName := ds.Boxes[0].Name

	// Pre-generate probe headers: RandomFields samples the dataset's rule
	// tables, which the rules/add and rules/remove handlers mutate. The
	// dataset is the server's to guard, not the test client's, so draw all
	// probes before the storm begins.
	probeRng := rand.New(rand.NewSource(7))
	probes := make([]rule.Fields, workers*requestsPerGorou)
	for i := range probes {
		probes[i] = ds.RandomFields(probeRng)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers*requestsPerGorou)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < requestsPerGorou; i++ {
				switch rng.Intn(7) {
				case 0: // stats
					var stats StatsResponse
					if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
						errs <- fmt.Errorf("stats status %d", code)
						return
					}
				case 1: // rule install on a private prefix per worker
					prefix := fmt.Sprintf("203.%d.%d.0/24", seed, i%250)
					code := postJSON(t, ts.URL+"/rules/add", RuleRequest{
						Box: boxName, Prefix: prefix, Port: 0,
					}, nil)
					if code != 200 {
						errs <- fmt.Errorf("rules/add status %d", code)
						return
					}
				case 2: // rule removal (may 404 if not yet added; both are fine)
					prefix := fmt.Sprintf("203.%d.%d.0/24", seed, rng.Intn(250))
					code := postJSON(t, ts.URL+"/rules/remove", RuleRequest{
						Box: boxName, Prefix: prefix,
					}, nil)
					if code != 200 && code != 404 {
						errs <- fmt.Errorf("rules/remove status %d", code)
						return
					}
				case 3: // reconstruction racing the queries
					code := postJSON(t, ts.URL+"/reconstruct",
						map[string]bool{"weighted": rng.Intn(2) == 0}, nil)
					if code != 200 {
						errs <- fmt.Errorf("reconstruct status %d", code)
						return
					}
				case 4: // metrics scrape racing swaps and updates
					resp, err := http.Get(ts.URL + "/metrics")
					if err != nil {
						errs <- err
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						errs <- err
						return
					}
					if resp.StatusCode != 200 {
						errs <- fmt.Errorf("metrics status %d", resp.StatusCode)
						return
					}
					if !bytes.Contains(body, []byte("apc_aptree_classify_total")) {
						errs <- fmt.Errorf("metrics scrape missing classify counter")
						return
					}
				case 5: // trace read racing trace writes
					var tr struct {
						Count int `json:"count"`
					}
					if code := getJSON(t, ts.URL+"/debug/trace?n=16", &tr); code != 200 {
						errs <- fmt.Errorf("trace status %d", code)
						return
					}
					if tr.Count < 0 || tr.Count > 16 {
						errs <- fmt.Errorf("trace count %d out of range", tr.Count)
						return
					}
				default: // behavior query
					f := probes[int(seed)*requestsPerGorou+i]
					var resp QueryResponse
					code := postJSON(t, ts.URL+"/query", QueryRequest{
						Ingress: ds.Boxes[rng.Intn(len(ds.Boxes))].Name,
						Dst:     dotted(f.Dst),
						Src:     dotted(f.Src),
						SrcPort: f.SrcPort,
						DstPort: f.DstPort,
						Proto:   f.Proto,
					}, &resp)
					if code != 200 {
						errs <- fmt.Errorf("query status %d", code)
						return
					}
					if resp.Atom < 0 {
						errs <- fmt.Errorf("query returned atom %d", resp.Atom)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The classifier must still answer coherently after the storm.
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("final stats status %d", code)
	}
	if stats.Atoms == 0 || stats.Predicates == 0 {
		t.Fatalf("classifier degenerated: %+v", stats)
	}
}

func dotted(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}
