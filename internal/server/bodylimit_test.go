package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestPostBodyLimits: every POST endpoint bounds its request body with
// http.MaxBytesReader and refuses overflow with 413 before doing any
// work. The oversized body is limit bytes of whitespace followed by
// valid JSON, so the decoder must read past the limit to find the first
// token — the failure is the byte bound, never a parse error.
func TestPostBodyLimits(t *testing.T) {
	ts, _ := testServer(t)
	cases := []struct {
		path  string
		limit int64
	}{
		{"/query", maxSingleBody},
		{"/query/batch", maxBatchBody},
		{"/rules/add", maxSingleBody},
		{"/rules/remove", maxSingleBody},
		{"/rules/batch", maxBatchBody},
		{"/reconstruct", maxSingleBody},
		{"/checkpoint", maxSingleBody},
	}
	for _, tc := range cases {
		t.Run(tc.path, func(t *testing.T) {
			body := append(bytes.Repeat([]byte{' '}, int(tc.limit)), []byte("{}")...)
			resp, err := http.Post(ts.URL+tc.path, "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Fatalf("POST %s with %d-byte body: status %d, want 413", tc.path, len(body), resp.StatusCode)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("413 body is not the JSON error shape: %v", err)
			}
			if !strings.Contains(e.Error, "exceeds") {
				t.Fatalf("413 error %q does not name the bound", e.Error)
			}
		})
	}
}

// TestPostBodyUnderLimit: a body just under the bound is not rejected
// on size — the same whitespace-padded payload one byte shorter reaches
// the JSON decoder (and from there the handler's own validation).
func TestPostBodyUnderLimit(t *testing.T) {
	ts, _ := testServer(t)
	body := append(bytes.Repeat([]byte{' '}, maxSingleBody-3), []byte("{}")...)
	resp, err := http.Post(ts.URL+"/reconstruct", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /reconstruct with in-bound body: status %d, want 200", resp.StatusCode)
	}
}

// TestBatchCountLimit: element-count bounds are enforced on top of the
// byte bounds — 257 cheap elements fit in 8MB but still draw 413.
func TestBatchCountLimit(t *testing.T) {
	ts, _ := testServer(t)
	tiny := make([]map[string]string, maxBatch+1)
	for i := range tiny {
		tiny[i] = map[string]string{}
	}
	body, _ := json.Marshal(tiny)
	for _, path := range []string{"/query/batch", "/rules/batch"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("POST %s with %d elements: status %d, want 413", path, len(tiny), resp.StatusCode)
		}
	}
}
