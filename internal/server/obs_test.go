package server

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// doQuery fires one valid /query so the latency histograms and the trace
// ring have something to show.
func doQuery(t *testing.T, url, box string) {
	t.Helper()
	var resp QueryResponse
	if code := postJSON(t, url+"/query", QueryRequest{Ingress: box, Dst: "10.1.2.3"}, &resp); code != 200 {
		t.Fatalf("query status %d", code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, ds := testServer(t)
	for i := 0; i < 3; i++ {
		doQuery(t, ts.URL, ds.Boxes[0].Name)
	}
	// One batch so the batch histograms and cache counters have samples.
	var batchResp []QueryResponse
	batch := []QueryRequest{
		{Ingress: ds.Boxes[0].Name, Dst: "10.1.2.3"},
		{Ingress: ds.Boxes[0].Name, Dst: "10.1.2.3"},
	}
	if code := postJSON(t, ts.URL+"/query/batch", batch, &batchResp); code != 200 {
		t.Fatalf("batch status %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	// Live counters from every instrumented layer must be present: the
	// ISSUE's acceptance bar is that /metrics reflects bdd, aptree and
	// network state, not a static page.
	for _, want := range []string{
		"# TYPE apc_server_query_duration_seconds histogram",
		"apc_server_query_duration_seconds_count",
		"apc_aptree_classify_duration_seconds_count",
		"apc_network_walk_duration_seconds_count",
		"# TYPE apc_batch_size histogram",
		"apc_batch_size_count",
		"apc_server_batch_duration_seconds_count",
		"apc_aptree_batch_classify_duration_seconds_count",
		"apc_network_batch_walk_duration_seconds_count",
		"apc_behavior_cache_hits_total",
		"apc_behavior_cache_misses_total",
		"apc_aptree_classify_total",
		"apc_aptree_atoms",
		"apc_aptree_predicates_live",
		"apc_aptree_version",
		"apc_bdd_live_nodes",
		"apc_bdd_nodes_allocated_total",
		"apc_network_walks_total",
		"apc_network_hops_total",
		"apc_checkpoint_saves_total",
		"apc_checkpoint_save_duration_seconds",
		"apc_checkpoint_age_seconds",
		"apc_checkpoint_corrupt_rejected_total",
		"apc_flat_builds_total",
		"apc_flat_build_duration_seconds_count",
		"apc_flat_nodes",
		"apc_flat_bytes",
		"apc_flat_mask_nodes",
		"apc_flat_table_nodes",
		"apc_flat_cube_nodes",
		"apc_flat_fallback_nodes",
		"apc_flat_enabled",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The three queries above each pinned, classified and walked once.
	found := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "apc_server_query_duration_seconds_count") {
			found = true
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if v < 3 {
				t.Fatalf("query histogram count %v after 3 queries", v)
			}
		}
	}
	if !found {
		t.Fatal("no apc_server_query_duration_seconds_count sample line")
	}
}

type traceResponse struct {
	Count  int                      `json:"count"`
	Traces []map[string]interface{} `json:"traces"`
}

func TestTraceEndpoint(t *testing.T) {
	ts, ds := testServer(t)

	var empty traceResponse
	if code := getJSON(t, ts.URL+"/debug/trace", &empty); code != 200 {
		t.Fatalf("status %d", code)
	}
	if empty.Count != 0 || len(empty.Traces) != 0 {
		t.Fatalf("fresh server has traces: %+v", empty)
	}

	const queries = 5
	for i := 0; i < queries; i++ {
		doQuery(t, ts.URL, ds.Boxes[0].Name)
	}

	cases := []struct {
		name string
		url  string
		want int
	}{
		{"default n", "/debug/trace", queries},
		{"n smaller than ring", "/debug/trace?n=2", 2},
		{"n larger than recorded", "/debug/trace?n=999", queries},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp traceResponse
			if code := getJSON(t, ts.URL+tc.url, &resp); code != 200 {
				t.Fatalf("status %d", code)
			}
			if resp.Count != tc.want || len(resp.Traces) != tc.want {
				t.Fatalf("count = %d, traces = %d, want %d", resp.Count, len(resp.Traces), tc.want)
			}
			// Newest first: sequence numbers strictly decreasing.
			for i := 1; i < len(resp.Traces); i++ {
				if resp.Traces[i]["seq"].(float64) >= resp.Traces[i-1]["seq"].(float64) {
					t.Fatalf("traces not newest-first: %v then %v",
						resp.Traces[i-1]["seq"], resp.Traces[i]["seq"])
				}
			}
			for _, tr := range resp.Traces {
				if tr["classify_ns"].(float64) < 0 || tr["depth"].(float64) < 0 {
					t.Fatalf("nonsense trace %v", tr)
				}
			}
		})
	}
}

func TestTraceEndpointBadN(t *testing.T) {
	ts, _ := testServer(t)
	// Empty n falls back to the default rather than erroring.
	var ok traceResponse
	if code := getJSON(t, ts.URL+"/debug/trace?n=", &ok); code != 200 {
		t.Fatalf("empty n: status %d", code)
	}
	for _, n := range []string{"abc", "0", "-3", "1.5"} {
		url := ts.URL + "/debug/trace?n=" + n
		var resp map[string]string
		if code := getJSON(t, url, &resp); code != 400 {
			t.Fatalf("n=%q: status %d, want 400", n, code)
		}
		if !strings.Contains(resp["error"], "bad n") {
			t.Fatalf("n=%q: error %q", n, resp["error"])
		}
	}
}

func TestObservabilityMethodNotAllowed(t *testing.T) {
	ts, _ := testServer(t)
	cases := []struct {
		method, path string
	}{
		{"POST", "/metrics"},
		{"DELETE", "/metrics"},
		{"POST", "/debug/trace"},
		{"GET", "/query"},
		{"PUT", "/stats"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
	}
}

// TestPprofIndex checks the pprof mux is mounted (the handlers themselves
// are stdlib).
func TestPprofIndex(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}
}
