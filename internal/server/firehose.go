package server

// This file is the /rules/batch firehose: a controller streams batches of
// data-plane deltas (forwarding rules and ACLs) and each request is
// applied as one update transaction — one epoch swap per batch, however
// many deltas it carries. An optional ?seq= cursor makes redelivery
// idempotent: the classifier remembers the last applied sequence number
// (it survives checkpoints), and a batch at or below it is acknowledged
// without being applied, so a controller can replay its log after a
// reconnect or a warm restart without double-applying.

import (
	"fmt"
	"net/http"
	"strconv"

	"apclassifier"
	"apclassifier/internal/netgen"
	"apclassifier/internal/obs"
	"apclassifier/internal/rule"
)

// Wire names of the delta operations. These are the only values the op
// field accepts — and the only label values apc_delta_ops_total can grow,
// which keeps the vector's cardinality provably bounded.
const (
	opAddFwd     = "add-fwd"
	opRemoveFwd  = "remove-fwd"
	opSetPortACL = "set-port-acl"
	opSetInACL   = "set-in-acl"
)

var (
	mDeltaOps = obs.Default.CounterVec("apc_delta_ops_total",
		"Rule-delta operations applied through the /rules/batch firehose, by kind.", "op")
	// deltaOpCounters resolves each op's child once at init, so the apply
	// path never takes the CounterVec mutex and every label value is a
	// compile-time constant.
	deltaOpCounters = map[string]*obs.Counter{
		opAddFwd:     mDeltaOps.With(opAddFwd),
		opRemoveFwd:  mDeltaOps.With(opRemoveFwd),
		opSetPortACL: mDeltaOps.With(opSetPortACL),
		opSetInACL:   mDeltaOps.With(opSetInACL),
	}
)

// RuleDeltaRequest is one element of the /rules/batch payload. Which
// fields are read depends on op:
//
//	{"op":"add-fwd","box":"seattle","prefix":"10.0.0.0/8","port":3}
//	{"op":"remove-fwd","box":"seattle","prefix":"10.0.0.0/8"}
//	{"op":"set-port-acl","box":"seattle","port":2,"acl":{...}}
//	{"op":"set-in-acl","box":"seattle","acl":null}
//
// A null (or absent) acl on the set-*-acl ops clears the ACL.
type RuleDeltaRequest struct {
	Op     string   `json:"op"`
	Box    string   `json:"box"`
	Prefix string   `json:"prefix,omitempty"`
	Port   int      `json:"port,omitempty"`
	ACL    *ACLSpec `json:"acl,omitempty"`
}

// ACLSpec is the wire form of a first-match ACL. An absent default means
// deny, matching real-world ACL semantics (rule.ACL's zero Default).
type ACLSpec struct {
	Rules   []ACLRuleSpec `json:"rules"`
	Default string        `json:"default,omitempty"` // "permit" or "deny" (the default)
}

// ACLRuleSpec is one ACL entry. Absent fields match everything.
type ACLRuleSpec struct {
	Src     string     `json:"src,omitempty"`     // IPv4 prefix, e.g. "10.0.0.0/8"
	Dst     string     `json:"dst,omitempty"`     // IPv4 prefix
	SrcPort *[2]uint16 `json:"srcPort,omitempty"` // inclusive [lo, hi]
	DstPort *[2]uint16 `json:"dstPort,omitempty"` // inclusive [lo, hi]
	Proto   *int       `json:"proto,omitempty"`   // 0..255
	Action  string     `json:"action"`            // "permit" or "deny", required
}

// parseAction maps the wire action strings onto rule.Action.
func parseAction(s string) (rule.Action, error) {
	switch s {
	case "permit":
		return rule.Permit, nil
	case "deny":
		return rule.Deny, nil
	}
	return rule.Deny, fmt.Errorf("bad action %q: want \"permit\" or \"deny\"", s)
}

// acl converts the wire spec into a rule.ACL.
func (spec *ACLSpec) acl() (*rule.ACL, error) {
	a := &rule.ACL{Rules: make([]rule.ACLRule, 0, len(spec.Rules))}
	if spec.Default != "" {
		var err error
		if a.Default, err = parseAction(spec.Default); err != nil {
			return nil, fmt.Errorf("default: %w", err)
		}
	}
	for i, rs := range spec.Rules {
		m := rule.MatchAll()
		var err error
		if rs.Src != "" {
			if m.Src, err = netgen.ParsePrefix(rs.Src); err != nil {
				return nil, fmt.Errorf("rule %d: src: %w", i, err)
			}
		}
		if rs.Dst != "" {
			if m.Dst, err = netgen.ParsePrefix(rs.Dst); err != nil {
				return nil, fmt.Errorf("rule %d: dst: %w", i, err)
			}
		}
		if rs.SrcPort != nil {
			if rs.SrcPort[0] > rs.SrcPort[1] {
				return nil, fmt.Errorf("rule %d: srcPort range [%d,%d] inverted", i, rs.SrcPort[0], rs.SrcPort[1])
			}
			m.SrcPort = rule.R(rs.SrcPort[0], rs.SrcPort[1])
		}
		if rs.DstPort != nil {
			if rs.DstPort[0] > rs.DstPort[1] {
				return nil, fmt.Errorf("rule %d: dstPort range [%d,%d] inverted", i, rs.DstPort[0], rs.DstPort[1])
			}
			m.DstPort = rule.R(rs.DstPort[0], rs.DstPort[1])
		}
		if rs.Proto != nil {
			if *rs.Proto < 0 || *rs.Proto > 255 {
				return nil, fmt.Errorf("rule %d: proto %d out of range", i, *rs.Proto)
			}
			m.Proto = *rs.Proto
		}
		action, err := parseAction(rs.Action)
		if err != nil {
			return nil, fmt.Errorf("rule %d: %w", i, err)
		}
		a.Rules = append(a.Rules, rule.ACLRule{Match: m, Action: action})
	}
	return a, nil
}

// convertDelta resolves one wire delta against the topology. The returned
// status is 0 on success, or the HTTP status the element should fail the
// whole batch with (unknown boxes are 404, everything else 400).
func (s *Server) convertDelta(rq RuleDeltaRequest) (apclassifier.RuleDelta, int, error) {
	box := s.c.Net.BoxByName(rq.Box)
	if box < 0 {
		return apclassifier.RuleDelta{}, http.StatusNotFound, fmt.Errorf("unknown box %q", rq.Box)
	}
	dl := apclassifier.RuleDelta{Box: box}
	switch rq.Op {
	case opAddFwd:
		p, err := netgen.ParsePrefix(rq.Prefix)
		if err != nil {
			return dl, http.StatusBadRequest, fmt.Errorf("prefix: %w", err)
		}
		dl.Op = apclassifier.OpAddFwdRule
		dl.Rule = rule.FwdRule{Prefix: p, Port: rq.Port}
	case opRemoveFwd:
		p, err := netgen.ParsePrefix(rq.Prefix)
		if err != nil {
			return dl, http.StatusBadRequest, fmt.Errorf("prefix: %w", err)
		}
		dl.Op = apclassifier.OpRemoveFwdRule
		dl.Prefix = p
	case opSetPortACL, opSetInACL:
		if rq.Op == opSetPortACL {
			dl.Op = apclassifier.OpSetPortACL
			dl.Port = rq.Port
		} else {
			dl.Op = apclassifier.OpSetInACL
		}
		if rq.ACL != nil {
			acl, err := rq.ACL.acl()
			if err != nil {
				return dl, http.StatusBadRequest, fmt.Errorf("acl: %w", err)
			}
			dl.ACL = acl
		}
	default:
		return dl, http.StatusBadRequest,
			fmt.Errorf("unknown op %q: want %q, %q, %q or %q",
				rq.Op, opAddFwd, opRemoveFwd, opSetPortACL, opSetInACL)
	}
	return dl, 0, nil
}

// RulesBatchResponse is the /rules/batch result. Applied is false when the
// request carried a sequence number at or below the last applied one — the
// batch was acknowledged but not re-applied. Seq echoes the classifier's
// cursor after the request. TreeVersion is the reconstruction epoch (as in
// /stats): delta batches splice the live tree in place of rebuilding it,
// so the number does not advance per batch — only a Reconstruct bumps it.
type RulesBatchResponse struct {
	Applied     bool   `json:"applied"`
	Count       int    `json:"count"`
	Seq         uint64 `json:"seq"`
	TreeVersion uint64 `json:"treeVersion"`
}

// handleRulesBatch applies a JSON array of rule deltas as one update
// transaction. Like /query/batch the array is bounded by maxBatch (413
// above it), the whole batch is validated before anything is touched, and
// a bad element is reported with its index. Queries racing the request see
// either the pre-batch or the post-batch epoch, never a partial batch.
func (s *Server) handleRulesBatch(w http.ResponseWriter, r *http.Request) {
	var reqs []RuleDeltaRequest
	if !s.decodeBody(w, r, maxBatchBody, &reqs) {
		return
	}
	if len(reqs) > maxBatch {
		writeErr(w, http.StatusRequestEntityTooLarge,
			"batch of %d exceeds the %d-delta limit; split the stream", len(reqs), maxBatch)
		return
	}
	var seq uint64
	if q := r.URL.Query().Get("seq"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil || v == 0 {
			writeErr(w, http.StatusBadRequest, "bad seq %q: want a positive integer", q)
			return
		}
		seq = v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	deltas := make([]apclassifier.RuleDelta, len(reqs))
	for i, rq := range reqs {
		dl, status, err := s.convertDelta(rq)
		if status != 0 {
			writeErr(w, status, "delta %d: %v", i, err)
			return
		}
		deltas[i] = dl
	}
	applied, err := s.c.ApplyRuleDeltasSeq(seq, deltas)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if applied {
		for i := range reqs {
			deltaOpCounters[reqs[i].Op].Inc()
		}
	}
	writeJSON(w, http.StatusOK, RulesBatchResponse{
		Applied:     applied,
		Count:       len(deltas),
		Seq:         s.c.DeltaSeq(),
		TreeVersion: s.c.Manager.Version(),
	})
}
