package server

import (
	"errors"
	"io"
	"net/http"
	"os"

	"apclassifier/internal/checkpoint"
)

// EnableCheckpoints attaches a managed checkpoint directory to the
// server and starts the background checkpointer: an initial save so the
// directory is restorable as soon as the service is up, a save after
// every coalescing window with published updates, the optional periodic
// timer, and a final save on Stop. It also arms the POST /checkpoint
// endpoint for operator-forced saves. Call before Handler is serving
// traffic; the returned runner's Stop is the graceful-shutdown hook.
//
// The capture callback takes the server's read lock — the same lock the
// query handlers hold — because Source reads the dataset and topology
// wiring, which rule updates rewrite under the write lock. Queries keep
// flowing during capture; only updates wait, and only for the capture
// (the encode works off the pinned snapshot, outside any lock).
func (s *Server) EnableCheckpoints(dir *checkpoint.Dir, cfg checkpoint.RunnerConfig) *checkpoint.Runner {
	s.ckpt = dir
	return checkpoint.StartRunner(dir, s.c.Manager, s.captureCheckpoint, cfg)
}

func (s *Server) captureCheckpoint() *checkpoint.Source {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.c.CheckpointSource()
}

// handleCheckpoint forces a checkpoint right now — the operator's "save
// before I do something risky" button. 503 when the server was started
// without a checkpoint directory.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	// The endpoint takes no body, but a client that sends one anyway is
	// bounded like every other POST: drain up to the limit, 413 past it.
	r.Body = http.MaxBytesReader(w, r.Body, maxSingleBody)
	if _, err := io.Copy(io.Discard, r.Body); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", int64(maxSingleBody))
			return
		}
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if s.ckpt == nil {
		writeErr(w, http.StatusServiceUnavailable, "checkpointing disabled: start apserver with -checkpoint-dir")
		return
	}
	path, err := s.ckpt.Save(s.captureCheckpoint())
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "checkpoint failed: %v", err)
		return
	}
	size := int64(0)
	if fi, err := os.Stat(path); err == nil {
		size = fi.Size()
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"path":      path,
		"sizeBytes": size,
		"epoch":     s.c.Manager.Version(),
	})
}

// handleCheckpointLatest streams the newest committed checkpoint file —
// the peer-bootstrap path: a worker joining (or rejoining) the fleet
// fetches a sibling's checkpoint and warm-restores from it instead of
// cold-rebuilding from rules. The file is immutable once committed
// (saves create new names), so serving it takes no lock and races no
// writer; ServeFile handles range requests and conditional gets.
func (s *Server) handleCheckpointLatest(w http.ResponseWriter, r *http.Request) {
	if s.ckpt == nil {
		writeErr(w, http.StatusServiceUnavailable, "checkpointing disabled: start apserver with -checkpoint-dir")
		return
	}
	path, err := s.ckpt.Latest()
	if errors.Is(err, os.ErrNotExist) {
		writeErr(w, http.StatusNotFound, "no checkpoint committed yet")
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, path)
}
