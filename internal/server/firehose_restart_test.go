package server

import (
	"testing"

	"apclassifier"
	"apclassifier/internal/checkpoint"
	"apclassifier/internal/netgen"
	"net/http/httptest"
)

// TestRulesBatchSeqSurvivesRestart: the ?seq= redelivery contract must
// hold across a process restart, not just within one. The delivery
// cursor rides the checkpoint (META v2), so a warm-restored server
// acknowledges a replayed batch without re-applying it — the exact
// scenario of a rules firehose redelivering after its consumer crashed
// between apply and ack.
func TestRulesBatchSeqSurvivesRestart(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 71, RuleScale: 0.01})
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir, err := checkpoint.Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	runner := s.EnableCheckpoints(dir, checkpoint.RunnerConfig{})
	ts := httptest.NewServer(s.Handler())

	box := ds.Boxes[0].Name
	q := QueryRequest{Ingress: box, Dst: "240.9.1.2"}
	var before QueryResponse
	postJSON(t, ts.URL+"/query", q, &before)
	batch := []RuleDeltaRequest{
		{Op: "add-fwd", Box: box, Prefix: "240.9.0.0/16", Port: 0},
		{Op: "set-port-acl", Box: box, Port: 0, ACL: &ACLSpec{Default: "permit"}},
	}
	var resp RulesBatchResponse
	if code := postJSON(t, ts.URL+"/rules/batch?seq=5", batch, &resp); code != 200 || !resp.Applied || resp.Seq != 5 {
		t.Fatalf("first delivery: status %d, %+v", code, resp)
	}
	var applied QueryResponse
	postJSON(t, ts.URL+"/query", q, &applied)
	if equalStrings(applied.Path, before.Path) && equalStrings(applied.Drops, before.Drops) {
		t.Fatalf("delta had no observable effect: %+v vs %+v", before, applied)
	}
	epoch := resp.TreeVersion

	// "Crash" after the ack was lost: final checkpoint, server gone.
	if code := postJSON(t, ts.URL+"/checkpoint", nil, nil); code != 200 {
		t.Fatalf("forced checkpoint: status %d", code)
	}
	ts.Close()
	runner.Stop()

	// Warm restore from the same directory — the cursor comes back too.
	restored, err := apclassifier.RestoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if restored.DeltaSeq() != 5 {
		t.Fatalf("restored cursor %d, want 5", restored.DeltaSeq())
	}
	rs := New(restored)
	rts := httptest.NewServer(rs.Handler())
	defer rts.Close()

	// The firehose redelivers seq 5: acknowledged, not re-applied. The
	// epoch not moving is the proof — a real apply publishes a new tree.
	if code := postJSON(t, rts.URL+"/rules/batch?seq=5", batch, &resp); code != 200 {
		t.Fatalf("redelivery: status %d", code)
	}
	if resp.Applied || resp.Seq != 5 {
		t.Fatalf("redelivery after restart applied: %+v", resp)
	}
	if resp.TreeVersion != epoch {
		t.Fatalf("redelivery moved the epoch %d -> %d", epoch, resp.TreeVersion)
	}
	var after QueryResponse
	postJSON(t, rts.URL+"/query", q, &after)
	if !equalStrings(after.Path, applied.Path) || !equalStrings(after.Drops, applied.Drops) {
		t.Fatalf("restored state lost the delta: %+v vs %+v", applied, after)
	}

	// The stream resumes: the next cursor value applies normally.
	next := []RuleDeltaRequest{{Op: "add-fwd", Box: box, Prefix: "240.10.0.0/16", Port: 0}}
	if code := postJSON(t, rts.URL+"/rules/batch?seq=6", next, &resp); code != 200 || !resp.Applied || resp.Seq != 6 {
		t.Fatalf("resume at seq 6: status %d, %+v", code, resp)
	}
}
