package server

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"apclassifier"
	"apclassifier/internal/checkpoint"
	"apclassifier/internal/netgen"
)

func TestCheckpointEndpointDisabled(t *testing.T) {
	ts, _ := testServer(t)
	var resp map[string]string
	if code := postJSON(t, ts.URL+"/checkpoint", struct{}{}, &resp); code != 503 {
		t.Fatalf("status %d, want 503 when checkpointing is disabled", code)
	}
	if !strings.Contains(resp["error"], "checkpoint-dir") {
		t.Fatalf("error %q does not tell the operator how to enable", resp["error"])
	}
}

// TestCheckpointEndpointAndRunner drives the full server-side loop:
// enable → initial background save → forced save via POST /checkpoint →
// rule update through the HTTP API captured by the coalesced runner →
// graceful-stop final save, restorable into an equivalent classifier.
func TestCheckpointEndpointAndRunner(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 73, RuleScale: 0.01})
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	dir, err := checkpoint.Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	runner := s.EnableCheckpoints(dir, checkpoint.RunnerConfig{MinGap: 20 * time.Millisecond})
	defer runner.Stop()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(func() bool { return len(dir.Checkpoints()) >= 1 }, "initial checkpoint")

	var forced struct {
		Path      string `json:"path"`
		SizeBytes int64  `json:"sizeBytes"`
		Epoch     uint64 `json:"epoch"`
	}
	if code := postJSON(t, ts.URL+"/checkpoint", struct{}{}, &forced); code != 200 {
		t.Fatalf("forced checkpoint: status %d", code)
	}
	if forced.Path == "" || forced.SizeBytes == 0 {
		t.Fatalf("forced checkpoint response incomplete: %+v", forced)
	}
	if forced.Epoch != c.Manager.Version() {
		t.Fatalf("forced checkpoint epoch %d, classifier at %d", forced.Epoch, c.Manager.Version())
	}

	// A rule update through the API publishes a new epoch; the runner
	// must persist it without further prompting.
	var add map[string]interface{}
	if code := postJSON(t, ts.URL+"/rules/add",
		RuleRequest{Box: ds.Boxes[0].Name, Prefix: "240.11.0.0/16", Port: 0}, &add); code != 200 {
		t.Fatalf("rule add: status %d (%v)", code, add)
	}
	wantEpoch := c.Manager.Version()
	waitFor(func() bool {
		res, err := dir.Restore()
		return err == nil && res.Epoch >= wantEpoch
	}, "runner to capture the rule update")

	// Graceful stop leaves a checkpoint that warm-restarts into a peer.
	runner.Stop()
	rc, err := apclassifier.RestoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rc.NumPredicates() != c.NumPredicates() || rc.Manager.Version() != c.Manager.Version() {
		t.Fatalf("restored %d preds @ epoch %d, live %d @ %d",
			rc.NumPredicates(), rc.Manager.Version(), c.NumPredicates(), c.Manager.Version())
	}
}
