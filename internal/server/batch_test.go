package server

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"reflect"
	"testing"

	"apclassifier/internal/netgen"
)

func batchRequests(ds *netgen.Dataset, rng *rand.Rand, n int) []QueryRequest {
	reqs := make([]QueryRequest, n)
	for i := range reqs {
		f := ds.RandomFields(rng)
		if i%3 == 0 && i > 0 {
			// Duplicate headers exercise the batch pipeline's collapse paths.
			reqs[i] = reqs[i-1]
			continue
		}
		reqs[i] = QueryRequest{
			Ingress: ds.Boxes[rng.Intn(len(ds.Boxes))].Name,
			Dst:     fmt.Sprintf("%d.%d.%d.%d", byte(f.Dst>>24), byte(f.Dst>>16), byte(f.Dst>>8), byte(f.Dst)),
		}
	}
	return reqs
}

// TestBatchEndpointMatchesSingle holds /query/batch to the /query answer,
// element-wise, for a mixed batch of random and duplicated queries.
func TestBatchEndpointMatchesSingle(t *testing.T) {
	ts, ds := testServer(t)
	rng := rand.New(rand.NewSource(72))
	for _, size := range []int{1, 7, 64} {
		reqs := batchRequests(ds, rng, size)
		var got []QueryResponse
		if code := postJSON(t, ts.URL+"/query/batch", reqs, &got); code != 200 {
			t.Fatalf("batch status %d", code)
		}
		if len(got) != len(reqs) {
			t.Fatalf("batch of %d answered %d responses", len(reqs), len(got))
		}
		for i, req := range reqs {
			var want QueryResponse
			if code := postJSON(t, ts.URL+"/query", req, &want); code != 200 {
				t.Fatalf("single status %d", code)
			}
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("size %d, query %d: batch %+v, single %+v", size, i, got[i], want)
			}
		}
	}
}

func TestBatchEndpointValidation(t *testing.T) {
	ts, ds := testServer(t)

	var empty []QueryResponse
	if code := postJSON(t, ts.URL+"/query/batch", []QueryRequest{}, &empty); code != 200 || len(empty) != 0 {
		t.Fatalf("empty batch: status %d, body %v", code, empty)
	}

	resp, err := http.Post(ts.URL+"/query/batch", "application/json", bytes.NewReader([]byte("{not-an-array")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("garbage JSON: status %d", resp.StatusCode)
	}

	// A bad element is reported with its index.
	bad := []QueryRequest{
		{Ingress: ds.Boxes[0].Name, Dst: "10.0.0.1"},
		{Ingress: "nosuch", Dst: "10.0.0.1"},
	}
	var errResp map[string]string
	if code := postJSON(t, ts.URL+"/query/batch", bad, &errResp); code != 400 {
		t.Fatalf("unknown box: status %d", code)
	}
	if errResp["error"] == "" || !bytes.Contains([]byte(errResp["error"]), []byte("query 1")) {
		t.Fatalf("error does not locate the bad element: %q", errResp["error"])
	}
	bad[1] = QueryRequest{Ingress: ds.Boxes[0].Name, Dst: "not-an-ip"}
	if code := postJSON(t, ts.URL+"/query/batch", bad, &errResp); code != 400 {
		t.Fatalf("bad dst: status %d", code)
	}

	// Oversized batches are refused before any work happens.
	huge := batchRequests(ds, rand.New(rand.NewSource(1)), maxBatch+1)
	if code := postJSON(t, ts.URL+"/query/batch", huge, &errResp); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d, want 413", code)
	}

	req, err := http.NewRequest("GET", ts.URL+"/query/batch", nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query/batch: status %d, want 405", r2.StatusCode)
	}
}
