// Package server exposes a classifier over HTTP/JSON — the shape in which
// an SDN controller would embed AP Classifier as a service: behavior
// queries, live rule updates, reconstruction, and invariant checks, all on
// one mutexed classifier instance.
//
// Endpoints:
//
//	GET  /stats                     → dataset and classifier statistics
//	POST /query                     → {"dst":"10.1.2.3","ingress":"seattle", ...} → behavior
//	POST /query/batch               → [query, ...] → [behavior, ...] (≤256 per request)
//	POST /rules/add                 → {"box":"seattle","prefix":"10.0.0.0/8","port":3}
//	POST /rules/remove              → {"box":"seattle","prefix":"10.0.0.0/8"}
//	POST /rules/batch[?seq=n]       → [delta, ...] → one epoch per batch (≤256, idempotent via seq)
//	POST /reconstruct               → {"weighted":false}
//	POST /checkpoint                → force a checkpoint save (503 if disabled)
//	GET  /checkpoint/latest         → newest committed checkpoint file (peer bootstrap)
//	GET  /healthz                   → readiness: 200 serving, 503 draining; epoch + delta cursor
//	GET  /verify/loops              → loop-freedom check over all packets (epoch-pinned)
//	GET  /verify/reach?from=a&host=h → exact reachability summary (epoch-pinned)
//	GET  /verify/blackholes?from=a  → packets dropped with no route (epoch-pinned)
//	GET  /metrics                   → Prometheus text exposition of the obs registry
//	GET  /debug/trace?n=k           → last k per-query stage traces (JSON)
//	GET  /debug/pprof/...           → net/http/pprof profiles
//
// Queries and stats run concurrently under a read lock: each request
// resolves one classifier snapshot and answers entirely from that epoch,
// so classification never waits on another query. The lock exists for
// the topology, not the classifier — rule updates rewrite port
// predicate IDs in plain fields, so mutating endpoints (and the
// verification sweeps, which perform BDD operations on the live DD)
// take the write lock.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"apclassifier"
	"apclassifier/internal/aptree"
	"apclassifier/internal/checkpoint"
	"apclassifier/internal/cluster"
	"apclassifier/internal/netgen"
	"apclassifier/internal/network"
	"apclassifier/internal/obs"
	"apclassifier/internal/rule"
	"apclassifier/internal/verify"
)

// traceRingSize is how many recent query traces /debug/trace retains.
const traceRingSize = 256

// Request-layer latency histograms. The stage-1 classify duration is
// recorded here — at the request layer, once per query — rather than
// inside Snapshot.Classify, where even one atomic add would not fit the
// lock-free path's budget (see DESIGN §7).
var (
	mQueryDur = obs.Default.Histogram("apc_server_query_duration_seconds",
		"End-to-end /query latency: parse, pin, classify, walk, encode.", obs.DefBuckets)
	mClassifyDur = obs.Default.Histogram("apc_aptree_classify_duration_seconds",
		"Stage-1 AP Tree classification latency, sampled per /query request.", obs.DefBuckets)
	mWalkDur = obs.Default.Histogram("apc_network_walk_duration_seconds",
		"Stage-2 behavior-walk latency, sampled per /query request.", obs.DefBuckets)
	mBatchDur = obs.Default.Histogram("apc_server_batch_duration_seconds",
		"End-to-end /query/batch latency: parse, pin, batch classify, batch walk, encode.", obs.DefBuckets)
	mBatchClassifyDur = obs.Default.Histogram("apc_aptree_batch_classify_duration_seconds",
		"Stage-1 batch classification latency (whole batch), per /query/batch request.", obs.DefBuckets)
	mBatchWalkDur = obs.Default.Histogram("apc_network_batch_walk_duration_seconds",
		"Stage-2 batch behavior latency (whole batch), per /query/batch request.", obs.DefBuckets)
	mBatchSize = obs.Default.Histogram("apc_batch_size",
		"Accepted /query/batch sizes (packets per request).", batchSizeBuckets)
)

// maxBatch bounds a /query/batch request; larger batches are refused with
// 413 so one request cannot hold decoded packets and results for an
// unbounded payload. Clients split bigger workloads into several
// requests — throughput saturates well before this size (EXPERIMENTS.md).
const maxBatch = 256

// Byte bounds on POST bodies, enforced with http.MaxBytesReader before
// any decode: a hostile Content-Length (or chunked stream) is cut off
// at the limit and answered with 413 instead of being buffered. Batch
// endpoints get the larger bound (an ACL-heavy rules batch is big);
// single-object endpoints a tight one.
const (
	maxSingleBody = 64 << 10
	maxBatchBody  = 8 << 20
)

// batchSizeBuckets are power-of-two size buckets up to maxBatch.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Server wraps a classifier with an HTTP API.
type Server struct {
	// mu guards the topology and dataset: read-locked by query/stats
	// handlers (which pin a classifier snapshot for everything else),
	// write-locked by rule updates and verification sweeps.
	mu sync.RWMutex
	c  *apclassifier.Classifier
	ds *netgen.Dataset

	// trace holds the most recent per-query stage traces for
	// /debug/trace. The ring is also installed as the classifier's trace
	// sink, so library-level Behavior calls on the same classifier land
	// in it too.
	trace *obs.TraceRing

	// ckpt is the managed checkpoint directory, set by EnableCheckpoints
	// before the handler serves traffic; nil means POST /checkpoint
	// answers 503.
	ckpt *checkpoint.Dir

	// bufs pools BatchBuffers for /query/batch, one checked out per
	// in-flight request, so steady-state batches reuse classify scratch,
	// result slices and walker state instead of allocating them.
	bufs sync.Pool

	// part is this worker's slice of the cluster partition; the zero
	// value (set unless SetPartition was called) owns all of header
	// space — the single-process configuration.
	part cluster.Partition

	// draining flips when graceful shutdown begins: /healthz answers 503
	// so the router (or any load balancer) stops routing new work here
	// while in-flight requests finish. Queries keep being served until
	// the listener actually closes — drain is advisory, not a gate.
	draining atomic.Bool
}

// New builds a server around a compiled classifier. The classifier's
// derived metrics are registered into the process-wide obs registry
// (newest classifier wins) and a trace ring is installed as its sink.
func New(c *apclassifier.Classifier) *Server {
	s := &Server{c: c, ds: c.Dataset, trace: obs.NewTraceRing(traceRingSize)}
	s.bufs.New = func() interface{} { return c.NewBatchBuffer() }
	c.RegisterMetrics(obs.Default)
	c.SetTraceSink(s.trace)
	return s
}

// SetPartition restricts the server to one shard of a cluster
// partition: queries outside the slice are refused with 421 Misdirected
// Request (a router bug, or a stale shard table — never silently served
// by the wrong worker's cache and counters). Call before Handler serves
// traffic. The zero Partition restores single-process behavior.
func (s *Server) SetPartition(p cluster.Partition) { s.part = p }

// StartDrain marks the server draining: /healthz flips to 503 so
// routers stop sending new work, while every other endpoint keeps
// answering until the HTTP server is shut down. Safe to call more than
// once. This is step one of the rolling-restart sequence; see
// cmd/apserver's signal handler for the full ordering.
func (s *Server) StartDrain() { s.draining.Store(true) }

// decodeBody bounds the request body at limit bytes and decodes it into
// v, answering 413 on overflow and 400 on malformed JSON. The returned
// bool reports whether the handler should proceed.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v interface{}) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", limit)
		} else {
			writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
		}
		return false
	}
	return true
}

// Handler returns the HTTP handler (mountable under any mux).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /query/batch", s.handleQueryBatch)
	mux.HandleFunc("POST /rules/add", s.handleRuleAdd)
	mux.HandleFunc("POST /rules/remove", s.handleRuleRemove)
	mux.HandleFunc("POST /rules/batch", s.handleRulesBatch)
	mux.HandleFunc("POST /reconstruct", s.handleReconstruct)
	mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /verify/loops", s.handleLoops)
	mux.HandleFunc("GET /verify/reach", s.handleReach)
	mux.HandleFunc("GET /verify/blackholes", s.handleBlackholes)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /checkpoint/latest", s.handleCheckpointLatest)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already on the wire; an encode failure here means
	// the client went away and there is nothing left to report to it.
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Dataset    string  `json:"dataset"`
	Boxes      int     `json:"boxes"`
	Rules      int     `json:"rules"`
	ACLRules   int     `json:"aclRules"`
	Predicates int     `json:"predicates"`
	Atoms      int     `json:"atoms"`
	AvgDepth   float64 `json:"avgTreeDepth"`
	LiveMemMB  float64 `json:"liveMemMB"`
	Version    uint64  `json:"treeVersion"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	// One snapshot serves the whole response: predicate count, atom
	// count, depth, memory and version all describe the same epoch, and
	// the BDD statistics come from the epoch's frozen view rather than
	// from the live DD a concurrent update may be growing.
	snap := s.c.Snapshot()
	writeJSON(w, http.StatusOK, StatsResponse{
		Dataset:    s.ds.Name,
		Boxes:      len(s.ds.Boxes),
		Rules:      s.ds.NumRules(),
		ACLRules:   s.ds.NumACLRules(),
		Predicates: snap.NumPredicates(),
		Atoms:      snap.NumAtoms(),
		AvgDepth:   snap.AverageDepth(),
		LiveMemMB:  float64(snap.LiveMemBytes()) / 1e6,
		Version:    snap.Version(),
	})
}

// QueryRequest is the /query payload. Addresses are dotted quads; ingress
// is a box name. Fields the layout lacks are ignored.
type QueryRequest struct {
	Ingress string `json:"ingress"`
	Dst     string `json:"dst"`
	Src     string `json:"src,omitempty"`
	SrcPort uint16 `json:"srcPort,omitempty"`
	DstPort uint16 `json:"dstPort,omitempty"`
	Proto   uint8  `json:"proto,omitempty"`
}

// QueryResponse is the /query result.
type QueryResponse struct {
	Atom      int32    `json:"atom"`
	Depth     int32    `json:"searchDepth"`
	Delivered []string `json:"delivered"`
	Drops     []string `json:"drops"`
	Path      []string `json:"path,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decodeBody(w, r, maxSingleBody, &req) {
		return
	}
	f, err := req.fields()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.part.Owns(req.Ingress, f) {
		writeErr(w, http.StatusMisdirectedRequest,
			"query belongs to shard %d, this worker serves %s", s.part.Shard(req.Ingress, f), s.part)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ingress := s.c.Net.BoxByName(req.Ingress)
	if ingress < 0 {
		writeErr(w, http.StatusBadRequest, "unknown ingress box %q", req.Ingress)
		return
	}
	pkt := s.ds.PacketFromFields(f)
	// Pin one epoch for the whole request so the reported atom and the
	// traversal agree even if the tree is swapped mid-request. Stage
	// boundaries are timed for the latency histograms and the trace ring.
	t0 := time.Now()
	snap := s.c.Snapshot()
	t1 := time.Now()
	leaf := snap.Classify(pkt)
	t2 := time.Now()
	b := snap.BehaviorFrom(ingress, pkt, leaf)
	t3 := time.Now()
	mClassifyDur.Record(t2.Sub(t1).Seconds())
	mWalkDur.Record(t3.Sub(t2).Seconds())
	mQueryDur.Record(t3.Sub(t0).Seconds())
	s.trace.Record(obs.QueryTrace{
		Start:    t0,
		Ingress:  ingress,
		Atom:     int(leaf.AtomID),
		Depth:    int(leaf.Depth),
		Visits:   int(leaf.Depth) + 1,
		Version:  snap.Version(),
		PinNs:    t1.Sub(t0).Nanoseconds(),
		ClassNs:  t2.Sub(t1).Nanoseconds(),
		WalkNs:   t3.Sub(t2).Nanoseconds(),
		Hops:     len(b.Edges),
		Delivers: len(b.Deliveries),
		Drops:    len(b.Drops),
		Rewrites: b.Rewrites,
	})
	writeJSON(w, http.StatusOK, s.buildResponse(leaf, b))
}

// buildResponse renders one answered query; shared by /query and
// /query/batch so the two endpoints cannot drift in shape.
func (s *Server) buildResponse(leaf *aptree.Node, b *network.Behavior) QueryResponse {
	resp := QueryResponse{Atom: leaf.AtomID, Depth: leaf.Depth}
	for _, d := range b.Deliveries {
		resp.Delivered = append(resp.Delivered, d.Host)
	}
	for _, d := range b.Drops {
		resp.Drops = append(resp.Drops, fmt.Sprintf("%s: %s", s.c.Net.Boxes[d.Box].Name, d.Reason))
	}
	if len(b.Deliveries) <= 1 {
		for _, box := range b.Path() {
			resp.Path = append(resp.Path, s.c.Net.Boxes[box].Name)
		}
	}
	return resp
}

// fields converts a request into stage-0 match fields, reporting which
// field (if any) failed to parse.
func (q *QueryRequest) fields() (rule.Fields, error) {
	f := rule.Fields{SrcPort: q.SrcPort, DstPort: q.DstPort, Proto: q.Proto}
	var err error
	if f.Dst, err = parseIP(q.Dst); err != nil {
		return f, fmt.Errorf("dst: %w", err)
	}
	if q.Src != "" {
		if f.Src, err = parseIP(q.Src); err != nil {
			return f, fmt.Errorf("src: %w", err)
		}
	}
	return f, nil
}

// handleQueryBatch answers a JSON array of queries in one request. The
// whole batch is pinned to a single classifier epoch and answered through
// the batched pipeline: one group-by-branch tree descent for all packets,
// and one behavior walk per distinct (ingress, atom) class. Batches above
// maxBatch are refused with 413 Content Too Large.
func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	var reqs []QueryRequest
	if !s.decodeBody(w, r, maxBatchBody, &reqs) {
		return
	}
	if len(reqs) > maxBatch {
		writeErr(w, http.StatusRequestEntityTooLarge,
			"batch of %d exceeds the %d-query limit; split the workload", len(reqs), maxBatch)
		return
	}
	if len(reqs) == 0 {
		writeJSON(w, http.StatusOK, []QueryResponse{})
		return
	}
	ingress := make([]int, len(reqs))
	pkts := make([][]byte, len(reqs))
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := range reqs {
		f, err := reqs[i].fields()
		if err != nil {
			writeErr(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
		if !s.part.Owns(reqs[i].Ingress, f) {
			writeErr(w, http.StatusMisdirectedRequest,
				"query %d belongs to shard %d, this worker serves %s", i, s.part.Shard(reqs[i].Ingress, f), s.part)
			return
		}
		ingress[i] = s.c.Net.BoxByName(reqs[i].Ingress)
		if ingress[i] < 0 {
			writeErr(w, http.StatusBadRequest, "query %d: unknown ingress box %q", i, reqs[i].Ingress)
			return
		}
		pkts[i] = s.ds.PacketFromFields(f)
	}
	buf := s.bufs.Get().(*apclassifier.BatchBuffer)
	defer s.bufs.Put(buf)
	t0 := time.Now()
	snap := s.c.Snapshot()
	leaves := snap.ClassifyBatch(buf, pkts)
	t1 := time.Now()
	behaviors := snap.BehaviorBatchFrom(buf, ingress, pkts, leaves)
	t2 := time.Now()
	resps := make([]QueryResponse, len(reqs))
	for i := range resps {
		resps[i] = s.buildResponse(leaves[i], behaviors[i])
	}
	mBatchSize.Record(float64(len(reqs)))
	mBatchClassifyDur.Record(t1.Sub(t0).Seconds())
	mBatchWalkDur.Record(t2.Sub(t1).Seconds())
	mBatchDur.Record(t2.Sub(t0).Seconds())
	writeJSON(w, http.StatusOK, resps)
}

// RuleRequest is the /rules/{add,remove} payload.
type RuleRequest struct {
	Box    string `json:"box"`
	Prefix string `json:"prefix"`
	Port   int    `json:"port"` // output port index; -1 = drop (add only)
}

func (s *Server) parseRule(w http.ResponseWriter, r *http.Request) (int, rule.Prefix, int, bool) {
	var req RuleRequest
	if !s.decodeBody(w, r, maxSingleBody, &req) {
		return 0, rule.Prefix{}, 0, false
	}
	box := s.c.Net.BoxByName(req.Box)
	if box < 0 {
		writeErr(w, http.StatusBadRequest, "unknown box %q", req.Box)
		return 0, rule.Prefix{}, 0, false
	}
	p, err := netgen.ParsePrefix(req.Prefix)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "prefix: %v", err)
		return 0, rule.Prefix{}, 0, false
	}
	return box, p, req.Port, true
}

func (s *Server) handleRuleAdd(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	box, p, port, ok := s.parseRule(w, r)
	if !ok {
		return
	}
	if port != rule.Drop && (port < 0 || port >= s.ds.Boxes[box].NumPorts) {
		writeErr(w, http.StatusBadRequest, "port %d out of range", port)
		return
	}
	s.c.AddFwdRule(box, rule.FwdRule{Prefix: p, Port: port})
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"installed": true, "treeVersion": s.c.Manager.Version(),
		"updatesSinceSwap": s.c.Manager.UpdatesSinceSwap(),
	})
}

func (s *Server) handleRuleRemove(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	box, p, _, ok := s.parseRule(w, r)
	if !ok {
		return
	}
	removed := s.c.RemoveFwdRule(box, p)
	status := http.StatusOK
	if !removed {
		status = http.StatusNotFound
	}
	writeJSON(w, status, map[string]bool{"removed": removed})
}

func (s *Server) handleReconstruct(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Weighted bool `json:"weighted"`
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxSingleBody)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", int64(maxSingleBody))
			return
		}
		// An absent or malformed body legitimately means unweighted.
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.c.AverageDepth()
	s.c.Reconstruct(req.Weighted)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"avgDepthBefore": before,
		"avgDepthAfter":  s.c.AverageDepth(),
		"treeVersion":    s.c.Manager.Version(),
	})
}

// The verify handlers take no server lock at all: verify.New pins one
// epoch and clones the topology under the manager's read lock, and every
// query after that runs against the pinned state. Rule churn through the
// write endpoints proceeds concurrently; the response names the epoch the
// answer is exact for.

func (s *Server) handleLoops(w http.ResponseWriter, r *http.Request) {
	a := verify.New(s.c)
	loops := a.Loops()
	names := make([]string, 0, len(loops))
	for _, l := range loops {
		names = append(names, fmt.Sprintf("atom %d from %s", l.AtomID, a.BoxName(l.Ingress)))
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"loopFree": len(loops) == 0, "violations": names, "epoch": a.Epoch(),
	})
}

func (s *Server) handleReach(w http.ResponseWriter, r *http.Request) {
	from := r.URL.Query().Get("from")
	host := r.URL.Query().Get("host")
	a := verify.New(s.c)
	box := a.BoxByName(from)
	if box < 0 {
		writeErr(w, http.StatusBadRequest, "unknown box %q", from)
		return
	}
	set := a.ReachSet(box, host)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"from": from, "host": host, "packets": a.Describe(set),
		"atoms": set.NumAtoms(), "fraction": set.Fraction(), "epoch": a.Epoch(),
	})
}

func (s *Server) handleBlackholes(w http.ResponseWriter, r *http.Request) {
	from := r.URL.Query().Get("from")
	a := verify.New(s.c)
	box := a.BoxByName(from)
	if box < 0 {
		writeErr(w, http.StatusBadRequest, "unknown box %q", from)
		return
	}
	set := a.Blackholes(box)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"from": from, "packets": a.Describe(set),
		"atoms": set.NumAtoms(), "fraction": set.Fraction(), "epoch": a.Epoch(),
	})
}

// handleMetrics serves the process-wide obs registry in Prometheus text
// exposition format. It takes no server lock: value metrics are read
// atomically and derived metrics take the manager's read lock themselves.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// A write failure means the scraper went away mid-response; there is
	// no one left to report it to.
	_ = obs.Default.WritePrometheus(w)
}

// handleTrace serves the newest n per-query stage traces (default 32,
// capped at the ring size), newest first.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	n := 32
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest, "bad n %q: want a positive integer", q)
			return
		}
		n = v
	}
	traces := s.trace.Last(n)
	if traces == nil {
		traces = []obs.QueryTrace{}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"count":  len(traces),
		"traces": traces,
	})
}

// handleHealthz is the cluster readiness probe: 200 once the classifier
// has a published epoch (true by construction — New and NewFromRestored
// both publish before the handler exists) and the server is not
// draining, 503 while draining so routers stop sending new work ahead
// of the listener closing. The payload carries the reconstruction epoch
// and the rule-delta cursor — what the router's skew gauges and "has
// churn converged" checks consume.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := cluster.Health{
		Ready:    !s.draining.Load(),
		Draining: s.draining.Load(),
		Shard:    s.part.String(),
		Epoch:    s.c.Manager.Version(),
		Seq:      s.c.DeltaSeq(),
	}
	status := http.StatusOK
	if !h.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// parseIP parses a dotted quad. It delegates to the cluster package's
// parser — the shard function hashes the parsed value, so the router
// and the workers must share one parser or sharding would misdirect.
func parseIP(s string) (uint32, error) { return cluster.ParseIPv4(s) }
