package server

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
)

// TestRulesBatchLifecycle drives one header's fate through the firehose:
// route a fresh /32, fence it off with a deny-all egress ACL, lift the
// ACL, and withdraw the route — each step one batch, each observable
// through /query.
func TestRulesBatchLifecycle(t *testing.T) {
	ts, ds := testServer(t)
	box := ds.Boxes[0].Name
	q := QueryRequest{Ingress: box, Dst: "240.1.2.3"}

	var before QueryResponse
	postJSON(t, ts.URL+"/query", q, &before)
	if len(before.Delivered) != 0 {
		t.Fatal("240/8 must start unrouted")
	}

	// One batch installs the route and a permissive port ACL together.
	var resp RulesBatchResponse
	batch := []RuleDeltaRequest{
		{Op: "add-fwd", Box: box, Prefix: "240.1.2.3/32", Port: 0},
		{Op: "set-port-acl", Box: box, Port: 0, ACL: &ACLSpec{Default: "permit"}},
	}
	if code := postJSON(t, ts.URL+"/rules/batch", batch, &resp); code != 200 {
		t.Fatalf("install batch: status %d", code)
	}
	if !resp.Applied || resp.Count != 2 {
		t.Fatalf("install batch: %+v", resp)
	}
	var routed QueryResponse
	postJSON(t, ts.URL+"/query", q, &routed)
	if len(routed.Delivered) == 0 && len(routed.Drops) == len(before.Drops) && routed.Atom == before.Atom {
		t.Fatalf("batch had no observable effect: %+v vs %+v", before, routed)
	}

	// A deny-all egress ACL on the same port blackholes the route again.
	fence := []RuleDeltaRequest{{Op: "set-port-acl", Box: box, Port: 0, ACL: &ACLSpec{Default: "deny"}}}
	if code := postJSON(t, ts.URL+"/rules/batch", fence, &resp); code != 200 || !resp.Applied {
		t.Fatalf("fence batch: status %d, %+v", code, resp)
	}
	var fenced QueryResponse
	postJSON(t, ts.URL+"/query", q, &fenced)
	if len(fenced.Delivered) != 0 {
		t.Fatalf("deny-all ACL did not fence the route: %+v", fenced)
	}

	// Lifting the ACL (null acl) and withdrawing the route restores the
	// original behavior.
	restore := []RuleDeltaRequest{
		{Op: "set-port-acl", Box: box, Port: 0},
		{Op: "remove-fwd", Box: box, Prefix: "240.1.2.3/32"},
	}
	if code := postJSON(t, ts.URL+"/rules/batch", restore, &resp); code != 200 || !resp.Applied {
		t.Fatalf("restore batch: status %d, %+v", code, resp)
	}
	// Atom IDs are epoch-local (split-then-merge renumbers the leaf), so
	// the restored state is compared by behavior, not by atom.
	var after QueryResponse
	postJSON(t, ts.URL+"/query", q, &after)
	if len(after.Delivered) != 0 || !equalStrings(after.Drops, before.Drops) {
		t.Fatalf("restore did not return to the original behavior: %+v vs %+v", before, after)
	}
}

// TestRulesBatchSeqIdempotent checks the ?seq= redelivery contract: a
// replayed sequence number acknowledges without applying, a fresh one
// applies, and unsequenced batches always apply.
func TestRulesBatchSeqIdempotent(t *testing.T) {
	ts, ds := testServer(t)
	box := ds.Boxes[0].Name
	batch := []RuleDeltaRequest{{Op: "add-fwd", Box: box, Prefix: "240.9.9.9/32", Port: 0}}

	var resp RulesBatchResponse
	if code := postJSON(t, ts.URL+"/rules/batch?seq=7", batch, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !resp.Applied || resp.Seq != 7 {
		t.Fatalf("first delivery: %+v", resp)
	}
	version := resp.TreeVersion

	// Redelivery of seq 7 — and anything below it — is acknowledged
	// without touching the tree.
	for _, seq := range []string{"7", "3"} {
		if code := postJSON(t, ts.URL+"/rules/batch?seq="+seq, batch, &resp); code != 200 {
			t.Fatalf("seq %s: status %d", seq, code)
		}
		if resp.Applied || resp.Seq != 7 || resp.TreeVersion != version {
			t.Fatalf("seq %s replay applied: %+v", seq, resp)
		}
	}

	// The next sequence number applies; an unsequenced batch always does.
	if code := postJSON(t, ts.URL+"/rules/batch?seq=8", []RuleDeltaRequest{
		{Op: "remove-fwd", Box: box, Prefix: "240.9.9.9/32"},
	}, &resp); code != 200 || !resp.Applied || resp.Seq != 8 {
		t.Fatalf("seq 8: status %d, %+v", code, resp)
	}
	if code := postJSON(t, ts.URL+"/rules/batch", batch, &resp); code != 200 || !resp.Applied || resp.Seq != 8 {
		t.Fatalf("unsequenced: status %d, %+v", code, resp)
	}
}

func TestRulesBatchValidation(t *testing.T) {
	ts, ds := testServer(t)
	box := ds.Boxes[0].Name

	var empty RulesBatchResponse
	if code := postJSON(t, ts.URL+"/rules/batch", []RuleDeltaRequest{}, &empty); code != 200 {
		t.Fatalf("empty batch: status %d", code)
	}

	resp, err := http.Post(ts.URL+"/rules/batch", "application/json", bytes.NewReader([]byte("{not-an-array")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("garbage JSON: status %d", resp.StatusCode)
	}

	// A bad element fails the whole batch, reported with its index and the
	// right status: unknown boxes are 404, malformed elements 400.
	var errResp map[string]string
	cases := []struct {
		name  string
		batch []RuleDeltaRequest
		want  int
	}{
		{"unknown box", []RuleDeltaRequest{
			{Op: "add-fwd", Box: box, Prefix: "10.0.0.0/8", Port: 0},
			{Op: "add-fwd", Box: "nosuch", Prefix: "10.0.0.0/8", Port: 0},
		}, 404},
		{"unknown op", []RuleDeltaRequest{{Op: "frobnicate", Box: box}}, 400},
		{"bad prefix", []RuleDeltaRequest{{Op: "add-fwd", Box: box, Prefix: "10.0.0.0", Port: 0}}, 400},
		{"bad port", []RuleDeltaRequest{{Op: "add-fwd", Box: box, Prefix: "10.0.0.0/8", Port: 1000}}, 400},
		{"bad acl action", []RuleDeltaRequest{{Op: "set-in-acl", Box: box,
			ACL: &ACLSpec{Rules: []ACLRuleSpec{{Action: "reject"}}}}}, 400},
		{"inverted port range", []RuleDeltaRequest{{Op: "set-in-acl", Box: box,
			ACL: &ACLSpec{Rules: []ACLRuleSpec{{Action: "deny", DstPort: &[2]uint16{9, 3}}}}}}, 400},
	}
	for _, tc := range cases {
		if code := postJSON(t, ts.URL+"/rules/batch", tc.batch, &errResp); code != tc.want {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, code, tc.want, errResp)
		}
	}
	if !strings.Contains(errResp["error"], "delta 0") {
		t.Fatalf("error does not locate the bad element: %q", errResp["error"])
	}
	// Nothing above may have mutated the table: the rejected batches were
	// validated before application.
	var probe QueryResponse
	if code := postJSON(t, ts.URL+"/query", QueryRequest{Ingress: box, Dst: "10.0.0.1"}, &probe); code != 200 {
		t.Fatalf("probe after rejected batches: status %d", code)
	}

	// Bad or zero seq values are rejected before the lock is taken.
	for _, seq := range []string{"abc", "-1", "0", "1.5"} {
		if code := postJSON(t, ts.URL+"/rules/batch?seq="+seq, []RuleDeltaRequest{}, &errResp); code != 400 {
			t.Errorf("seq=%q: status %d, want 400", seq, code)
		}
	}

	// Oversized batches are refused before any work happens.
	huge := make([]RuleDeltaRequest, maxBatch+1)
	for i := range huge {
		huge[i] = RuleDeltaRequest{Op: "remove-fwd", Box: box, Prefix: "10.0.0.0/8"}
	}
	if code := postJSON(t, ts.URL+"/rules/batch", huge, &errResp); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d, want 413", code)
	}

	req, err := http.NewRequest("GET", ts.URL+"/rules/batch", nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /rules/batch: status %d, want 405", r2.StatusCode)
	}
}

// TestRulesBatchAgainstSingleEndpoints holds a firehose-updated server to
// the answers of a twin mutated through the single-rule endpoints, over a
// randomized churn of adds and removes.
func TestRulesBatchAgainstSingleEndpoints(t *testing.T) {
	tsA, ds := testServer(t)
	tsB, _ := testServer(t) // same Seed → identical dataset
	rng := rand.New(rand.NewSource(73))

	var installed []string
	for step := 0; step < 6; step++ {
		var batch []RuleDeltaRequest
		for k := 0; k < 1+rng.Intn(4); k++ {
			box := ds.Boxes[rng.Intn(len(ds.Boxes))].Name
			if len(installed) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(installed))
				parts := strings.SplitN(installed[i], "|", 2)
				batch = append(batch, RuleDeltaRequest{Op: "remove-fwd", Box: parts[0], Prefix: parts[1]})
				var rm map[string]bool
				postJSON(t, tsB.URL+"/rules/remove", RuleRequest{Box: parts[0], Prefix: parts[1]}, &rm)
				installed = append(installed[:i], installed[i+1:]...)
				continue
			}
			prefix := randomProbePrefix(rng)
			batch = append(batch, RuleDeltaRequest{Op: "add-fwd", Box: box, Prefix: prefix, Port: 0})
			var add map[string]interface{}
			if code := postJSON(t, tsB.URL+"/rules/add", RuleRequest{Box: box, Prefix: prefix, Port: 0}, &add); code != 200 {
				t.Fatalf("twin add: status %d", code)
			}
			installed = append(installed, box+"|"+prefix)
		}
		var resp RulesBatchResponse
		if code := postJSON(t, tsA.URL+"/rules/batch", batch, &resp); code != 200 || !resp.Applied {
			t.Fatalf("step %d: batch status %d, %+v", step, code, resp)
		}
		// The two servers must answer every probe identically.
		for i := 0; i < 20; i++ {
			q := QueryRequest{
				Ingress: ds.Boxes[rng.Intn(len(ds.Boxes))].Name,
				Dst:     randomProbeIP(rng),
			}
			var a, b QueryResponse
			postJSON(t, tsA.URL+"/query", q, &a)
			postJSON(t, tsB.URL+"/query", q, &b)
			// Atom IDs are lineage-local; behaviors must agree.
			if !equalStrings(a.Delivered, b.Delivered) || !equalStrings(a.Drops, b.Drops) {
				t.Fatalf("step %d: firehose %+v, single-endpoint %+v for %+v", step, a, b, q)
			}
		}
	}
}

func randomProbePrefix(rng *rand.Rand) string {
	return randomProbeIP(rng) + "/" + []string{"16", "24", "32"}[rng.Intn(3)]
}

func randomProbeIP(rng *rand.Rand) string {
	// Stay in 240/8 half the time so churned rules hit the probes often.
	if rng.Intn(2) == 0 {
		return fmt.Sprintf("240.%d.%d.%d", rng.Intn(4), rng.Intn(4), rng.Intn(4))
	}
	return fmt.Sprintf("%d.%d.%d.%d", rng.Intn(256), rng.Intn(256), rng.Intn(256), rng.Intn(256))
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRulesBatchMetrics checks the delta engine's counters reach the
// Prometheus exposition: structural work, apply latency and the bounded
// per-op vector.
func TestRulesBatchMetrics(t *testing.T) {
	ts, ds := testServer(t)
	box := ds.Boxes[0].Name
	batch := []RuleDeltaRequest{
		{Op: "add-fwd", Box: box, Prefix: "240.4.4.0/24", Port: 0},
		{Op: "remove-fwd", Box: box, Prefix: "240.4.4.0/24"},
		{Op: "set-in-acl", Box: box, ACL: &ACLSpec{Default: "permit"}},
		{Op: "set-in-acl", Box: box},
	}
	var resp RulesBatchResponse
	if code := postJSON(t, ts.URL+"/rules/batch", batch, &resp); code != 200 || !resp.Applied {
		t.Fatalf("batch status %d, %+v", code, resp)
	}
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE apc_delta_touched_leaves_total counter",
		"apc_delta_touched_leaves_total",
		"apc_delta_splits_total",
		"apc_delta_merges_total",
		"apc_delta_apply_duration_seconds_count",
		`apc_delta_ops_total{op="add-fwd"}`,
		`apc_delta_ops_total{op="remove-fwd"}`,
		`apc_delta_ops_total{op="set-in-acl"}`,
		`apc_delta_ops_total{op="set-port-acl"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
