package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"apclassifier"
	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

func testServer(t *testing.T) (*httptest.Server, *netgen.Dataset) {
	t.Helper()
	ds := netgen.Internet2Like(netgen.Config{Seed: 71, RuleScale: 0.01})
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(c).Handler())
	t.Cleanup(ts.Close)
	return ts, ds
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body interface{}, out interface{}) int {
	t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestStatsEndpoint(t *testing.T) {
	ts, ds := testServer(t)
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("status %d", code)
	}
	if stats.Rules != ds.NumRules() || stats.Predicates == 0 || stats.Atoms == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.LiveMemMB <= 0 {
		t.Fatal("live memory must be positive")
	}
}

func TestQueryEndpointAgreesWithOracle(t *testing.T) {
	ts, ds := testServer(t)
	rng := rand.New(rand.NewSource(71))
	delivered := 0
	for i := 0; i < 60; i++ {
		f := ds.RandomFields(rng)
		ing := rng.Intn(len(ds.Boxes))
		var resp QueryResponse
		code := postJSON(t, ts.URL+"/query", QueryRequest{
			Ingress: ds.Boxes[ing].Name,
			Dst:     fmt.Sprintf("%d.%d.%d.%d", byte(f.Dst>>24), byte(f.Dst>>16), byte(f.Dst>>8), byte(f.Dst)),
		}, &resp)
		if code != 200 {
			t.Fatalf("query status %d", code)
		}
		want := ds.Simulate(ing, rule.Fields{Dst: f.Dst})
		if len(want.Delivered) != len(resp.Delivered) {
			t.Fatalf("query %d: delivered %v, oracle %v", i, resp.Delivered, want.Delivered)
		}
		if len(resp.Delivered) > 0 {
			delivered++
			if resp.Delivered[0] != want.Delivered[0] {
				t.Fatalf("query %d: wrong host", i)
			}
			if len(resp.Path) == 0 {
				t.Fatal("delivered query must include a path")
			}
		}
	}
	if delivered == 0 {
		t.Fatal("no delivered queries exercised")
	}
}

func TestQueryValidation(t *testing.T) {
	ts, _ := testServer(t)
	if code := postJSON(t, ts.URL+"/query", QueryRequest{Ingress: "nosuch", Dst: "10.0.0.1"}, &map[string]string{}); code != 400 {
		t.Fatalf("unknown box: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/query", QueryRequest{Ingress: "seattle", Dst: "not-an-ip"}, &map[string]string{}); code != 400 {
		t.Fatalf("bad dst: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{garbage")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("garbage JSON: status %d", resp.StatusCode)
	}
}

func TestRuleLifecycleOverHTTP(t *testing.T) {
	ts, ds := testServer(t)
	// Install a drop for a fresh /32 and see the query flip.
	target := "240.1.2.3"
	q := QueryRequest{Ingress: ds.Boxes[0].Name, Dst: target}
	var before QueryResponse
	postJSON(t, ts.URL+"/query", q, &before)
	if len(before.Delivered) != 0 {
		t.Fatal("240/8 must start unrouted")
	}

	// Route it to port 0 of box 0 (an edge port on internet2 boxes? port 0
	// is a link port; either way the rule installs and the behavior
	// changes deterministically).
	var addResp map[string]interface{}
	if code := postJSON(t, ts.URL+"/rules/add", RuleRequest{Box: ds.Boxes[0].Name, Prefix: "240.1.2.3/32", Port: 0}, &addResp); code != 200 {
		t.Fatalf("add status %d", code)
	}
	var after QueryResponse
	postJSON(t, ts.URL+"/query", q, &after)
	if len(after.Delivered) == 0 && len(after.Drops) == len(before.Drops) && after.Atom == before.Atom {
		t.Fatalf("rule add had no observable effect: %+v vs %+v", before, after)
	}

	var rmResp map[string]bool
	if code := postJSON(t, ts.URL+"/rules/remove", RuleRequest{Box: ds.Boxes[0].Name, Prefix: "240.1.2.3/32"}, &rmResp); code != 200 || !rmResp["removed"] {
		t.Fatalf("remove failed: %d %v", code, rmResp)
	}
	if code := postJSON(t, ts.URL+"/rules/remove", RuleRequest{Box: ds.Boxes[0].Name, Prefix: "240.1.2.3/32"}, &rmResp); code != 404 {
		t.Fatalf("second remove: status %d", code)
	}
}

func TestReconstructEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var resp map[string]interface{}
	if code := postJSON(t, ts.URL+"/reconstruct", map[string]bool{"weighted": false}, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp["treeVersion"].(float64) < 1 {
		t.Fatalf("version did not bump: %v", resp)
	}
}

func TestVerifyEndpoints(t *testing.T) {
	ts, ds := testServer(t)
	var loops map[string]interface{}
	if code := getJSON(t, ts.URL+"/verify/loops", &loops); code != 200 {
		t.Fatalf("status %d", code)
	}
	if loops["loopFree"] != true {
		t.Fatalf("generated network must be loop-free: %v", loops)
	}
	var reach map[string]interface{}
	url := fmt.Sprintf("%s/verify/reach?from=%s&host=%s", ts.URL, ds.Boxes[0].Name, ds.Hosts[0].Name)
	if code := getJSON(t, url, &reach); code != 200 {
		t.Fatalf("status %d", code)
	}
	if reach["packets"] == "" {
		t.Fatal("reach summary empty")
	}
	if code := getJSON(t, ts.URL+"/verify/reach?from=nosuch&host=x", &reach); code != 400 {
		t.Fatalf("unknown box: status %d", code)
	}
}
