package trie

import (
	"math/rand"
	"testing"

	"apclassifier/internal/netgen"
)

func TestSimMatchesOracleInternet2(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 81, RuleScale: 0.01})
	s := NewSim(ds)
	rng := rand.New(rand.NewSource(81))
	work := 0
	for i := 0; i < 500; i++ {
		f := ds.RandomFields(rng)
		ingress := rng.Intn(len(ds.Boxes))
		want := ds.Simulate(ingress, f)
		got := s.Behavior(ingress, f)
		if len(want.Delivered) != len(got.Delivered) {
			t.Fatalf("probe %d: trie %v vs oracle %v", i, got.Delivered, want.Delivered)
		}
		for j := range want.Delivered {
			if want.Delivered[j] != got.Delivered[j] {
				t.Fatalf("probe %d: wrong host", i)
			}
		}
		if len(want.DropBoxes) != len(got.DropBoxes) {
			t.Fatalf("probe %d: drops differ", i)
		}
		work += got.RulesCollected
	}
	if work == 0 {
		t.Fatal("trie queries must collect rules")
	}
}

func TestSimMatchesOracleStanfordWithACLs(t *testing.T) {
	ds := netgen.StanfordLike(netgen.Config{Seed: 82, RuleScale: 0.003})
	s := NewSim(ds)
	rng := rand.New(rand.NewSource(82))
	for i := 0; i < 300; i++ {
		f := ds.RandomFields(rng)
		ingress := rng.Intn(len(ds.Boxes))
		want := ds.Simulate(ingress, f)
		got := s.Behavior(ingress, f)
		if (len(want.Delivered) > 0) != got.DeliveredTo("") {
			t.Fatalf("probe %d: trie disagrees with oracle under ACLs", i)
		}
	}
}

func TestSimWorkScalesWithRuleVolume(t *testing.T) {
	small := NewSim(netgen.Internet2Like(netgen.Config{Seed: 83, RuleScale: 0.005}))
	big := NewSim(netgen.Internet2Like(netgen.Config{Seed: 83, RuleScale: 0.05}))
	rng := rand.New(rand.NewSource(83))
	ws, wb := 0, 0
	for i := 0; i < 200; i++ {
		fs := small.ds.RandomFields(rng)
		ws += small.Behavior(rng.Intn(9), fs).RulesCollected
		fb := big.ds.RandomFields(rng)
		wb += big.Behavior(rng.Intn(9), fb).RulesCollected
	}
	if wb <= ws {
		t.Fatalf("trie work should grow with rules: %d !> %d", wb, ws)
	}
}
