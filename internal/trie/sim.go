package trie

import (
	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

// Sim identifies packet behaviors the Veriflow way: one network-wide trie
// holds every forwarding rule; a query walks the trie once to collect the
// rules matching the destination, then simulates the path box by box from
// the collected rules, checking ACLs against the rule tables. (The
// related-work discussion in the paper notes this approach was shown to be
// slow for behavior identification; the Fig 12 experiment includes it.)
type Sim struct {
	ds    *netgen.Dataset
	trie  Trie
	peers map[[2]int]netgen.Host
}

// NewSim builds the network-wide trie from a dataset.
func NewSim(ds *netgen.Dataset) *Sim {
	s := &Sim{ds: ds, peers: map[[2]int]netgen.Host{}}
	for b := range ds.Boxes {
		for _, r := range ds.Boxes[b].Fwd.Rules {
			s.trie.Insert(b, r)
		}
	}
	for _, l := range ds.Links {
		s.peers[[2]int{l.A, l.PA}] = netgen.Host{Box: l.B, Port: l.PB}
		s.peers[[2]int{l.B, l.PB}] = netgen.Host{Box: l.A, Port: l.PA}
	}
	for _, h := range ds.Hosts {
		s.peers[[2]int{h.Box, h.Port}] = h
	}
	return s
}

// Result is the outcome of a trie-based behavior query.
type Result struct {
	Delivered []string
	DropBoxes []int
	Looped    bool
	// RulesCollected counts trie-matched rules, the per-query work that
	// grows with total rule volume.
	RulesCollected int
}

// DeliveredTo reports whether any branch reached the named host ("" = any).
func (r *Result) DeliveredTo(name string) bool {
	for _, h := range r.Delivered {
		if name == "" || h == name {
			return true
		}
	}
	return false
}

// Behavior identifies the behavior of a 5-tuple from an ingress box.
func (s *Sim) Behavior(ingress int, f rule.Fields) Result {
	var res Result
	matches := s.trie.Matching(f.Dst)
	res.RulesCollected = len(matches)
	visited := map[int]bool{}
	queue := []int{ingress}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if visited[b] {
			res.Looped = true
			continue
		}
		visited[b] = true
		spec := &s.ds.Boxes[b]
		if spec.InACL != nil && !spec.InACL.Allows(f) {
			res.DropBoxes = append(res.DropBoxes, b)
			continue
		}
		port, ok := LookupBox(matches, b)
		if !ok {
			res.DropBoxes = append(res.DropBoxes, b)
			continue
		}
		if acl := spec.PortACL[port]; acl != nil && !acl.Allows(f) {
			res.DropBoxes = append(res.DropBoxes, b)
			continue
		}
		peer, ok := s.peers[[2]int{b, port}]
		if !ok {
			res.DropBoxes = append(res.DropBoxes, b)
			continue
		}
		if peer.Name != "" {
			res.Delivered = append(res.Delivered, peer.Name)
			continue
		}
		queue = append(queue, peer.Box)
	}
	return res
}
