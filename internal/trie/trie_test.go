package trie

import (
	"math/rand"
	"testing"

	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

func TestInsertAndMatching(t *testing.T) {
	var tr Trie
	tr.Insert(0, rule.FwdRule{Prefix: rule.P(0x0A000000, 8), Port: 1})
	tr.Insert(0, rule.FwdRule{Prefix: rule.P(0x0A0B0000, 16), Port: 2})
	tr.Insert(1, rule.FwdRule{Prefix: rule.P(0, 0), Port: 3})
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	m := tr.Matching(0x0A0B0001)
	if len(m) != 3 {
		t.Fatalf("matching = %d rules, want 3", len(m))
	}
	m = tr.Matching(0x0B000000)
	if len(m) != 1 || m[0].Box != 1 {
		t.Fatalf("matching = %v", m)
	}
}

func TestLookupBoxAgainstFwdTable(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var tr Trie
	tables := make([]rule.FwdTable, 4)
	for b := range tables {
		for i := 0; i < 150; i++ {
			r := rule.FwdRule{
				Prefix: rule.P(rng.Uint32(), []int{0, 8, 12, 16, 24, 32}[rng.Intn(6)]),
				Port:   rng.Intn(5) - 1, // includes Drop
			}
			tables[b].Add(r)
			tr.Insert(b, r)
		}
	}
	for probe := 0; probe < 2000; probe++ {
		ip := rng.Uint32()
		if probe%3 == 0 { // bias toward installed prefixes
			b := rng.Intn(4)
			ip = tables[b].Rules[rng.Intn(len(tables[b].Rules))].Prefix.Value | rng.Uint32()>>16
		}
		matches := tr.Matching(ip)
		for b := range tables {
			wantPort, wantOK := tables[b].Lookup(ip)
			gotPort, gotOK := LookupBox(matches, b)
			if wantOK != gotOK || (wantOK && wantPort != gotPort) {
				t.Fatalf("ip %08x box %d: trie (%d,%v) vs table (%d,%v)",
					ip, b, gotPort, gotOK, wantPort, wantOK)
			}
		}
	}
}

func TestOverlapping(t *testing.T) {
	var tr Trie
	tr.Insert(0, rule.FwdRule{Prefix: rule.P(0x0A000000, 8), Port: 1})  // above
	tr.Insert(0, rule.FwdRule{Prefix: rule.P(0x0A0B0000, 16), Port: 2}) // the query
	tr.Insert(0, rule.FwdRule{Prefix: rule.P(0x0A0B0C00, 24), Port: 3}) // below
	tr.Insert(0, rule.FwdRule{Prefix: rule.P(0x0B000000, 8), Port: 4})  // unrelated
	got := tr.Overlapping(rule.P(0x0A0B0000, 16))
	if len(got) != 3 {
		t.Fatalf("overlapping = %d rules, want 3 (got %v)", len(got), got)
	}
	for _, e := range got {
		if e.Rule.Port == 4 {
			t.Fatal("unrelated prefix included")
		}
	}
}

func TestECsPartitionAndAreUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var tr Trie
	tables := make([]rule.FwdTable, 3)
	base := rule.P(0x0A000000, 8)
	for b := range tables {
		for i := 0; i < 60; i++ {
			// Rules clustered inside and around the query prefix.
			var p rule.Prefix
			if rng.Intn(2) == 0 {
				p = rule.P(0x0A000000|rng.Uint32()>>8, 9+rng.Intn(24))
			} else {
				p = rule.P(rng.Uint32(), rng.Intn(33))
			}
			r := rule.FwdRule{Prefix: p, Port: rng.Intn(4)}
			tables[b].Add(r)
			tr.Insert(b, r)
		}
	}
	ecs := tr.ECs(base)
	if len(ecs) < 2 {
		t.Fatalf("expected several ECs, got %d", len(ecs))
	}
	// Partition: contiguous, non-overlapping, covering the base range.
	lo := base.Value
	hi := base.Value | 0x00FFFFFF
	if ecs[0].Lo != lo || ecs[len(ecs)-1].Hi != hi {
		t.Fatalf("ECs do not span the prefix: %v", ecs)
	}
	for i := 1; i < len(ecs); i++ {
		if ecs[i].Lo != ecs[i-1].Hi+1 {
			t.Fatalf("gap or overlap between ECs %d and %d", i-1, i)
		}
	}
	// Uniformity: within one EC, every box forwards every address the
	// same way. Probe boundaries and random interior points.
	for _, ec := range ecs {
		probes := []uint32{ec.Lo, ec.Hi}
		for k := 0; k < 4; k++ {
			if ec.Hi > ec.Lo {
				probes = append(probes, ec.Lo+uint32(rng.Int63n(int64(ec.Hi-ec.Lo)+1)))
			}
		}
		for b := range tables {
			p0, ok0 := tables[b].Lookup(probes[0])
			for _, ip := range probes[1:] {
				p, ok := tables[b].Lookup(ip)
				if ok != ok0 || (ok && p != p0) {
					t.Fatalf("EC [%08x,%08x] not uniform at box %d: %08x differs from %08x",
						ec.Lo, ec.Hi, b, ip, probes[0])
				}
			}
		}
	}
}

func TestTrieOnGeneratedDataset(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 44, RuleScale: 0.01})
	var tr Trie
	for b := range ds.Boxes {
		for _, r := range ds.Boxes[b].Fwd.Rules {
			tr.Insert(b, r)
		}
	}
	if tr.Len() != ds.NumRules() {
		t.Fatalf("trie holds %d rules, dataset has %d", tr.Len(), ds.NumRules())
	}
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 500; i++ {
		f := ds.RandomFields(rng)
		matches := tr.Matching(f.Dst)
		for b := range ds.Boxes {
			wantPort, wantOK := ds.Boxes[b].Fwd.Lookup(f.Dst)
			gotPort, gotOK := LookupBox(matches, b)
			if wantOK != gotOK || (wantOK && wantPort != gotPort) {
				t.Fatalf("trie and FIB disagree at box %d for %08x", b, f.Dst)
			}
		}
	}
}
