// Package trie implements a Veriflow-style network-wide prefix trie: all
// forwarding rules of all boxes stored in one binary trie over the
// destination address. It serves two purposes in this reproduction:
//
//  1. as the related-work baseline the paper discusses (storing all rules
//     and simulating forwarding per query), and
//  2. as an equivalence-class (EC) extractor: for a rule or address, the
//     trie yields the set of overlapping rules and the disjoint address
//     ranges (ECs) they induce — Veriflow's core primitive.
package trie

import (
	"sort"

	"apclassifier/internal/rule"
)

// Entry is one rule in the trie, tagged with its owning box.
type Entry struct {
	Box  int
	Rule rule.FwdRule
}

type node struct {
	children [2]*node
	entries  []Entry // rules whose prefix ends exactly here
}

// Trie is a binary trie over 32-bit destination addresses.
type Trie struct {
	root  node
	count int
}

// Insert adds a forwarding rule of a box.
func (t *Trie) Insert(box int, r rule.FwdRule) {
	n := &t.root
	for i := 0; i < r.Prefix.Length; i++ {
		b := (r.Prefix.Value >> uint(31-i)) & 1
		if n.children[b] == nil {
			n.children[b] = &node{}
		}
		n = n.children[b]
	}
	n.entries = append(n.entries, Entry{box, r})
	t.count++
}

// Len reports the number of stored rules.
func (t *Trie) Len() int { return t.count }

// Matching returns every rule (from every box) whose prefix contains ip,
// in root-to-leaf (shortest-prefix-first) order.
func (t *Trie) Matching(ip uint32) []Entry {
	var out []Entry
	n := &t.root
	for i := 0; ; i++ {
		out = append(out, n.entries...)
		if i == 32 {
			return out
		}
		b := (ip >> uint(31-i)) & 1
		if n.children[b] == nil {
			return out
		}
		n = n.children[b]
	}
}

// LookupBox resolves the LPM decision of one box for ip from the trie
// content (first-inserted rule wins length ties, matching rule.FwdTable).
func LookupBox(matches []Entry, box int) (port int, ok bool) {
	best := -1
	for _, e := range matches {
		if e.Box != box {
			continue
		}
		if e.Rule.Prefix.Length > best {
			best = e.Rule.Prefix.Length
			port = e.Rule.Port
		}
	}
	if best < 0 || port == rule.Drop {
		return 0, false
	}
	return port, true
}

// Overlapping returns every rule whose prefix overlaps the given prefix:
// rules on the path above it plus the entire subtree below it. This is the
// set of rules Veriflow examines when a rule changes.
func (t *Trie) Overlapping(p rule.Prefix) []Entry {
	var out []Entry
	n := &t.root
	for i := 0; i < p.Length; i++ {
		out = append(out, n.entries...)
		b := (p.Value >> uint(31-i)) & 1
		if n.children[b] == nil {
			return out
		}
		n = n.children[b]
	}
	var walk func(*node)
	walk = func(n *node) {
		out = append(out, n.entries...)
		for _, c := range n.children {
			if c != nil {
				walk(c)
			}
		}
	}
	walk(n)
	return out
}

// Range is a half-open address interval [Lo, Hi].
type Range struct {
	Lo, Hi uint32
}

// ECs computes the equivalence classes (disjoint destination ranges) that
// the rules overlapping p induce within p's own range: inside one range,
// every box makes the same forwarding decision. This is Veriflow's EC
// slicing restricted to one dimension (destination address).
func (t *Trie) ECs(p rule.Prefix) []Range {
	lo := p.Value
	hi := p.Value | ^prefixMask(p.Length)
	cuts := map[uint32]bool{lo: true}
	for _, e := range t.Overlapping(p) {
		rl := e.Rule.Prefix.Value
		rh := e.Rule.Prefix.Value | ^prefixMask(e.Rule.Prefix.Length)
		if rl > lo && rl <= hi {
			cuts[rl] = true
		}
		if rh >= lo && rh < hi {
			cuts[rh+1] = true
		}
	}
	points := make([]uint32, 0, len(cuts))
	for c := range cuts {
		points = append(points, c)
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	var out []Range
	for i, c := range points {
		end := hi
		if i+1 < len(points) {
			end = points[i+1] - 1
		}
		out = append(out, Range{c, end})
	}
	return out
}

func prefixMask(length int) uint32 {
	if length == 0 {
		return 0
	}
	return ^uint32(0) << uint(32-length)
}
