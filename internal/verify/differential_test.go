package verify

import (
	"math/rand"
	"testing"

	"apclassifier/internal/netgen"
)

// TestDifferentialAgainstSimulate cross-checks the snapshot-native engine
// against netgen's rule-table simulator — the slow, obviously-correct
// oracle — on all three dataset families. For sampled packets:
//
//   - delivery is exact in both directions (in ReachSet ⇔ simulator
//     delivers to that host);
//   - loop verdicts are exact in both directions;
//   - blackholes are one-directional: every packet in Blackholes must be
//     dropped by the simulator, but not vice versa (the simulator's drop
//     reasons are not distinguished, and ACL drops are not blackholes).
func TestDifferentialAgainstSimulate(t *testing.T) {
	for _, tc := range []struct {
		name string
		ds   *netgen.Dataset
	}{
		{"internet2", netgen.Internet2Like(netgen.Config{Seed: 61, RuleScale: 0.01})},
		{"stanford", netgen.StanfordLike(netgen.Config{Seed: 61, RuleScale: 0.003})},
		{"multitenant", netgen.MultiTenantLike(3, 2, 61)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ds := tc.ds
			c := compile(t, ds)
			a := New(c)
			rng := rand.New(rand.NewSource(61))
			ingresses := []int{0, len(ds.Boxes) / 2, len(ds.Boxes) - 1}

			// Reach sets and blackhole sets, precomputed per ingress.
			type perIngress struct {
				reach map[string]PacketSet
				bh    PacketSet
				loops PacketSet
			}
			pre := map[int]perIngress{}
			for _, ingress := range ingresses {
				p := perIngress{reach: map[string]PacketSet{}, bh: a.Blackholes(ingress), loops: a.LoopSet(ingress)}
				for _, h := range ds.Hosts {
					p.reach[h.Name] = a.ReachSet(ingress, h.Name)
				}
				pre[ingress] = p
			}

			for i := 0; i < 400; i++ {
				f := ds.RandomFields(rng)
				pkt := ds.PacketFromFields(f)
				for _, ingress := range ingresses {
					want := ds.Simulate(ingress, f)
					p := pre[ingress]
					// Delivery: exact, both directions, per host.
					delivered := map[string]bool{}
					for _, h := range want.Delivered {
						delivered[h] = true
					}
					for _, h := range ds.Hosts {
						if got := p.reach[h.Name].Contains(pkt); got != delivered[h.Name] {
							t.Fatalf("probe %d ingress %d host %s: verify=%v simulate=%v",
								i, ingress, h.Name, got, delivered[h.Name])
						}
					}
					// Loops: exact, both directions.
					if got := p.loops.Contains(pkt); got != want.Looped {
						t.Fatalf("probe %d ingress %d: loop verify=%v simulate=%v", i, ingress, got, want.Looped)
					}
					// Blackholes: one-directional (verify ⇒ simulator drops
					// somewhere and delivers nowhere).
					if p.bh.Contains(pkt) {
						if len(want.Delivered) != 0 || len(want.DropBoxes) == 0 {
							t.Fatalf("probe %d ingress %d: in Blackholes but simulator delivered=%v drops=%v",
								i, ingress, want.Delivered, want.DropBoxes)
						}
					}
				}
			}
		})
	}
}
