// Package verify builds the control-plane applications of §I on top of
// packet behavior identification: network-wide invariant checking at
// atomic-predicate granularity.
//
// Because every packet in an atom behaves identically at every box,
// network-wide questions ("which packets reach host h from box b?", "does
// any packet loop?", "can traffic bypass the firewall?") reduce to one
// behavior computation per (atom, ingress) pair, and their answers are
// exact packet sets — unions of atoms — rather than samples.
//
// The Analyzer is snapshot-native: New pins one classifier epoch (the
// published snapshot plus a copy of the topology captured atomically with
// it) and never reads the live Manager again. Analyses are therefore
// lock-free and churn-safe — concurrent rule-delta batches and
// reconstructions cannot change an Analyzer's answers — with no
// quiescence requirement. Results are PacketSets: interval-coded atom-ID
// sets interpreted against the pinned epoch.
package verify

import (
	"fmt"
	"runtime"
	"sync"

	"apclassifier"
	"apclassifier/internal/aptree"
	"apclassifier/internal/bdd"
	"apclassifier/internal/header"
	"apclassifier/internal/network"
	"apclassifier/internal/predicate"
)

// Analyzer answers network-wide verification queries against one pinned
// classifier epoch. It is safe for concurrent use; sweep queries
// parallelize internally.
type Analyzer struct {
	layout *header.Layout
	snap   *aptree.Snapshot
	view   *aptree.AtomView
	net    *network.Network
	// cache memoizes behaviors per (ingress, atom) for targeted queries.
	// Exhaustive sweeps (Loops, ReachabilityMatrix) deliberately bypass it:
	// at fat-tree scale persisting millions of cloned behaviors costs more
	// than the walks they would save.
	cache *network.BehaviorCache
}

// New pins the classifier's published epoch — snapshot and topology
// captured atomically — and builds an analyzer over it. The classifier
// may keep updating freely; the analyzer's answers describe the pinned
// epoch. Networks with middleboxes are rejected (their rewrites depend on
// concrete headers, not atoms).
func New(c *apclassifier.Classifier) *Analyzer {
	snap, net := c.PinForVerify()
	for _, b := range net.Boxes {
		if b.MB != nil {
			panic("verify: atom-level analysis does not support middleboxes")
		}
	}
	return &Analyzer{
		layout: c.Layout,
		snap:   snap,
		view:   snap.Atoms(),
		net:    net,
		cache:  network.NewBehaviorCache(snap, len(net.Boxes)),
	}
}

// Epoch reports the reconstruction epoch the analyzer is pinned to.
func (a *Analyzer) Epoch() uint64 { return a.snap.Version() }

// NumAtoms reports the number of atoms in the pinned epoch.
func (a *Analyzer) NumAtoms() int { return a.view.N() }

// NumBoxes reports the number of boxes in the pinned topology.
func (a *Analyzer) NumBoxes() int { return len(a.net.Boxes) }

// BoxByName resolves a box name against the pinned topology (not the live
// one, which may gain boxes concurrently). Returns -1 if absent.
func (a *Analyzer) BoxByName(name string) int {
	for i, b := range a.net.Boxes {
		if b.Name == name {
			return i
		}
	}
	return -1
}

// BoxName returns the pinned topology's name for a box ID.
func (a *Analyzer) BoxName(i int) string { return a.net.Boxes[i].Name }

// newWalker returns a traverser over the pinned topology and epoch. One
// per goroutine; the analyzer itself holds none.
func (a *Analyzer) newWalker() *network.Walker {
	return network.NewWalker(a.net, &network.Env{Source: a.snap})
}

// behavior computes (or recalls) the behavior of an atom from an ingress
// through the per-epoch cache.
func (a *Analyzer) behavior(w *network.Walker, ingress int, atom int32) *network.Behavior {
	if b := a.cache.Lookup(ingress, atom); b != nil {
		return b
	}
	b := w.BehaviorPinned(a.snap, ingress, nil, a.view.Leaf(atom)).Clone()
	a.cache.Store(ingress, atom, b)
	return b
}

// PacketSet is an exact set of packets of the analyzer's epoch: a union
// of atomic predicates, held as an interval-coded atom-ID set. All
// per-packet questions (membership, counting, examples) are answered
// from the pinned snapshot without touching the live classifier.
type PacketSet struct {
	a   *Analyzer
	set predicate.AtomSet
}

// Empty reports whether the set contains no packets.
func (ps PacketSet) Empty() bool { return ps.set.Empty() }

// NumAtoms reports how many atoms make up the set.
func (ps PacketSet) NumAtoms() int { return ps.set.Len() }

// Atoms returns the underlying interval-coded atom-ID set.
func (ps PacketSet) Atoms() predicate.AtomSet { return ps.set }

// Contains reports whether the concrete packet belongs to the set,
// classifying it against the pinned epoch.
func (ps PacketSet) Contains(pkt []byte) bool {
	leaf, _ := ps.a.snap.ClassifyPointer(pkt)
	return ps.set.Contains(leaf.AtomID)
}

// Count returns the number of headers in the set (atoms are disjoint, so
// their satisfying-assignment counts add).
func (ps PacketSet) Count() float64 {
	v := ps.a.snap.View()
	total := 0.0
	ps.set.Each(func(id int32) bool {
		total += v.SatCount(ps.a.view.BDD(id))
		return true
	})
	return total
}

// Fraction returns the set's share of the whole header space, in [0, 1].
func (ps PacketSet) Fraction() float64 {
	return ps.Count() / ps.a.snap.View().SatCount(bdd.True)
}

// Example returns one satisfying header assignment (bdd.AnySat form:
// entries 0, 1 or -1 for don't-care) from the set, or nil if it is empty.
func (ps PacketSet) Example() []int8 {
	if ps.set.Empty() {
		return nil
	}
	return ps.a.snap.View().AnySat(ps.a.view.BDD(ps.set.Min()))
}

// UnionRef materializes the set as a single BDD by disjoining its atom
// BDDs in d. The atom refs belong to the pinned epoch's DD lineage, so d
// must be that same DD — in practice: the classifier's live DD, with no
// Reconstruct between New and this call. That is the situation of
// quiescent tests and BDD-interoperating tools (the policy guard); the
// analyzer itself never needs it.
func (ps PacketSet) UnionRef(d *bdd.DD) bdd.Ref {
	set := bdd.False
	ps.set.Each(func(id int32) bool {
		set = d.Or(set, ps.a.view.BDD(id))
		return true
	})
	return set
}

// packetSet assembles a PacketSet from an ascending-ID builder.
func (a *Analyzer) packetSet(b *predicate.AtomSetBuilder) PacketSet {
	return PacketSet{a: a, set: b.Set()}
}

// ReachSet returns the exact set of packets that, entering at ingress,
// are delivered to the named host.
func (a *Analyzer) ReachSet(ingress int, host string) PacketSet {
	w := a.newWalker()
	var b predicate.AtomSetBuilder
	a.view.Each(func(atom int32) bool {
		if a.behavior(w, ingress, atom).Delivered(host) {
			b.Add(atom)
		}
		return true
	})
	return a.packetSet(&b)
}

// Blackholes returns the set of packets that, entering at ingress, have
// at least one branch dropped for lack of any matching output port.
func (a *Analyzer) Blackholes(ingress int) PacketSet {
	w := a.newWalker()
	var b predicate.AtomSetBuilder
	a.view.Each(func(atom int32) bool {
		for _, drop := range a.behavior(w, ingress, atom).Drops {
			if drop.Reason == network.DropNoRoute {
				b.Add(atom)
				break
			}
		}
		return true
	})
	return a.packetSet(&b)
}

// Loop describes a forwarding loop: an atom that revisits a box when
// entering at Ingress.
type Loop struct {
	Ingress int
	AtomID  int32
	Example []int8 // one satisfying header assignment (bdd.AnySat form)
}

// LoopSet returns the set of packets that loop when entering at ingress.
func (a *Analyzer) LoopSet(ingress int) PacketSet {
	w := a.newWalker()
	var b predicate.AtomSetBuilder
	a.view.Each(func(atom int32) bool {
		if loops(a.behavior(w, ingress, atom)) {
			b.Add(atom)
		}
		return true
	})
	return a.packetSet(&b)
}

func loops(b *network.Behavior) bool {
	for _, drop := range b.Drops {
		if drop.Reason == network.DropLoop {
			return true
		}
	}
	return false
}

// Loops sweeps every (ingress, atom) pair — in parallel, one worker per
// CPU — and reports every forwarding loop with an example header.
func (a *Analyzer) Loops() []Loop {
	view := a.snap.View()
	perIngress := make([][]Loop, len(a.net.Boxes))
	a.sweep(func(w *network.Walker, ingress int) {
		var out []Loop
		a.view.Each(func(atom int32) bool {
			if loops(w.BehaviorPinned(a.snap, ingress, nil, a.view.Leaf(atom))) {
				out = append(out, Loop{
					Ingress: ingress,
					AtomID:  atom,
					Example: view.AnySat(a.view.BDD(atom)),
				})
			}
			return true
		})
		perIngress[ingress] = out
	})
	var out []Loop
	for _, l := range perIngress {
		out = append(out, l...)
	}
	return out
}

// WaypointViolations returns the set of packets that reach the host from
// ingress without traversing the waypoint box — the policy-enforcement
// check of §I ("HTTP traffic should be forwarded through firewall, IDS,
// proxy"). An empty result means the waypoint property holds.
func (a *Analyzer) WaypointViolations(ingress int, host string, waypoint int) PacketSet {
	w := a.newWalker()
	var b predicate.AtomSetBuilder
	a.view.Each(func(atom int32) bool {
		beh := a.behavior(w, ingress, atom)
		if beh.Delivered(host) && !beh.Traverses(waypoint) {
			b.Add(atom)
		}
		return true
	})
	return a.packetSet(&b)
}

// CanReach returns the set of packets that, entering at box from,
// traverse box to (the VLAN-isolation check of §I asks for this to be
// empty between tenants).
func (a *Analyzer) CanReach(from, to int) PacketSet {
	if from == to {
		return PacketSet{a: a, set: a.view.IDs()}
	}
	w := a.newWalker()
	var b predicate.AtomSetBuilder
	a.view.Each(func(atom int32) bool {
		if a.behavior(w, from, atom).Traverses(to) {
			b.Add(atom)
		}
		return true
	})
	return a.packetSet(&b)
}

// Isolated reports whether no packet entering at from can traverse to.
func (a *Analyzer) Isolated(from, to int) bool {
	if from == to {
		return false
	}
	w := a.newWalker()
	isolated := true
	a.view.Each(func(atom int32) bool {
		if a.behavior(w, from, atom).Traverses(to) {
			isolated = false
			return false
		}
		return true
	})
	return isolated
}

// ReachabilityMatrix computes, for every ordered box pair (i, j), how
// many atoms entering at i traverse j — a compact network-wide
// connectivity summary (the diagonal counts atoms that do anything at all
// at i). Rows are computed in parallel.
func (a *Analyzer) ReachabilityMatrix() [][]int {
	n := len(a.net.Boxes)
	m := make([][]int, n)
	a.sweep(func(w *network.Walker, ingress int) {
		row := make([]int, n)
		// stamp marks the boxes one behavior traverses; stamping with a
		// per-behavior token avoids clearing it between atoms.
		stamp := make([]int32, n)
		token := int32(0)
		a.view.Each(func(atom int32) bool {
			b := w.BehaviorPinned(a.snap, ingress, nil, a.view.Leaf(atom))
			token++
			mark := func(box int) {
				if stamp[box] != token {
					stamp[box] = token
					row[box]++
				}
			}
			if len(b.Edges) > 0 || len(b.Deliveries) > 0 || len(b.Drops) > 0 {
				mark(ingress)
			}
			for _, e := range b.Edges {
				mark(e.Box)
				if e.To.Kind == network.DestBox {
					mark(e.To.Box)
				}
			}
			return true
		})
		m[ingress] = row
	})
	return m
}

// sweep runs fn once per ingress box across GOMAXPROCS workers, each with
// its own Walker. fn must only write state owned by its ingress.
func (a *Analyzer) sweep(fn func(w *network.Walker, ingress int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(a.net.Boxes) {
		workers = len(a.net.Boxes)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := a.newWalker()
			for ingress := range next {
				fn(w, ingress)
			}
		}()
	}
	for ingress := range a.net.Boxes {
		next <- ingress
	}
	close(next)
	wg.Wait()
}

// Describe renders a packet set as a human-readable summary: its share of
// the header space and one example header.
func (a *Analyzer) Describe(ps PacketSet) string {
	if ps.Empty() {
		return "(empty)"
	}
	pkt := a.layout.NewPacket()
	for i, v := range ps.Example() {
		if v == 1 {
			pkt[i/8] |= 0x80 >> uint(i%8)
		}
	}
	return fmt.Sprintf("%.4g%% of header space, e.g. %s", ps.Fraction()*100, a.layout.String(pkt))
}

// DescribeRef renders a BDD packet set against a live DD the same way
// Describe renders a PacketSet; for BDD-interoperating callers (the
// policy guard) that still work in refs.
func DescribeRef(d *bdd.DD, layout *header.Layout, set bdd.Ref) string {
	if set == bdd.False {
		return "(empty)"
	}
	frac := d.SatCount(set) / d.SatCount(bdd.True)
	pkt := layout.NewPacket()
	for i, v := range d.AnySat(set) {
		if v == 1 {
			pkt[i/8] |= 0x80 >> uint(i%8)
		}
	}
	return fmt.Sprintf("%.4g%% of header space, e.g. %s", frac*100, layout.String(pkt))
}
