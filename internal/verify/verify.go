// Package verify builds the control-plane applications of §I on top of
// packet behavior identification: network-wide invariant checking at
// atomic-predicate granularity.
//
// Because every packet in an atom behaves identically at every box,
// network-wide questions ("which packets reach host h from box b?", "does
// any packet loop?", "can traffic bypass the firewall?") reduce to one
// behavior computation per (atom, ingress) pair, and their answers are
// exact predicates — BDDs — rather than samples.
//
// The analyzer snapshots the classifier's current tree; run it while the
// classifier is quiescent (no concurrent updates or reconstructions).
package verify

import (
	"fmt"

	"apclassifier"
	"apclassifier/internal/aptree"
	"apclassifier/internal/bdd"
	"apclassifier/internal/network"
)

// Analyzer answers network-wide verification queries for one snapshot of
// the data plane.
type Analyzer struct {
	c      *apclassifier.Classifier
	leaves []*aptree.Node
	// cache memoizes behavior per (ingress, leaf).
	cache map[behKey]*network.Behavior
}

type behKey struct {
	ingress int
	leaf    *aptree.Node
}

// New snapshots the classifier's live AP Tree leaves.
func New(c *apclassifier.Classifier) *Analyzer {
	a := &Analyzer{c: c, cache: make(map[behKey]*network.Behavior)}
	c.Manager.Tree().Leaves(func(n *aptree.Node) { a.leaves = append(a.leaves, n) })
	return a
}

// NumAtoms reports the number of atoms in the snapshot.
func (a *Analyzer) NumAtoms() int { return len(a.leaves) }

// behavior computes (or recalls) the behavior of an atom from an ingress.
// Middleboxes are not supported by atom-level analysis (their rewrites
// depend on concrete headers), so networks with middleboxes are rejected.
func (a *Analyzer) behavior(ingress int, leaf *aptree.Node) *network.Behavior {
	k := behKey{ingress, leaf}
	if b, ok := a.cache[k]; ok {
		return b
	}
	b := a.c.Net.Behavior(a.c.Env(), ingress, nil, leaf)
	a.cache[k] = b
	return b
}

func (a *Analyzer) checkNoMiddleboxes() {
	for _, b := range a.c.Net.Boxes {
		if b.MB != nil {
			panic("verify: atom-level analysis does not support middleboxes")
		}
	}
}

// ReachSet returns the exact set of packets (as a BDD) that, entering at
// ingress, are delivered to the named host.
func (a *Analyzer) ReachSet(ingress int, host string) bdd.Ref {
	a.checkNoMiddleboxes()
	d := a.c.Manager.DD()
	set := bdd.False
	for _, leaf := range a.leaves {
		if a.behavior(ingress, leaf).Delivered(host) {
			set = d.Or(set, leaf.BDD)
		}
	}
	return set
}

// Blackholes returns the set of packets that, entering at ingress, have at
// least one branch dropped for lack of any matching output port.
func (a *Analyzer) Blackholes(ingress int) bdd.Ref {
	a.checkNoMiddleboxes()
	d := a.c.Manager.DD()
	set := bdd.False
	for _, leaf := range a.leaves {
		for _, drop := range a.behavior(ingress, leaf).Drops {
			if drop.Reason == network.DropNoRoute {
				set = d.Or(set, leaf.BDD)
				break
			}
		}
	}
	return set
}

// Loop describes a forwarding loop: an atom that revisits a box when
// entering at Ingress.
type Loop struct {
	Ingress int
	AtomID  int32
	Example []int8 // one satisfying header assignment (bdd.AnySat form)
}

// Loops sweeps every (ingress, atom) pair and reports forwarding loops.
func (a *Analyzer) Loops() []Loop {
	a.checkNoMiddleboxes()
	d := a.c.Manager.DD()
	var out []Loop
	for ingress := range a.c.Net.Boxes {
		for _, leaf := range a.leaves {
			for _, drop := range a.behavior(ingress, leaf).Drops {
				if drop.Reason == network.DropLoop {
					out = append(out, Loop{
						Ingress: ingress,
						AtomID:  leaf.AtomID,
						Example: d.AnySat(leaf.BDD),
					})
					break
				}
			}
		}
	}
	return out
}

// WaypointViolations returns the set of packets that reach the host from
// ingress without traversing the waypoint box — the policy-enforcement
// check of §I ("HTTP traffic should be forwarded through firewall, IDS,
// proxy"). A False result means the waypoint property holds.
func (a *Analyzer) WaypointViolations(ingress int, host string, waypoint int) bdd.Ref {
	a.checkNoMiddleboxes()
	d := a.c.Manager.DD()
	set := bdd.False
	for _, leaf := range a.leaves {
		b := a.behavior(ingress, leaf)
		if b.Delivered(host) && !b.Traverses(waypoint) {
			set = d.Or(set, leaf.BDD)
		}
	}
	return set
}

// CanReach returns the set of packets that, entering at box from, traverse
// box to (the VLAN-isolation check of §I asks for this to be empty between
// tenants).
func (a *Analyzer) CanReach(from, to int) bdd.Ref {
	a.checkNoMiddleboxes()
	d := a.c.Manager.DD()
	set := bdd.False
	for _, leaf := range a.leaves {
		if from == to || a.behavior(from, leaf).Traverses(to) {
			set = d.Or(set, leaf.BDD)
		}
	}
	return set
}

// Isolated reports whether no packet entering at from can traverse to.
func (a *Analyzer) Isolated(from, to int) bool {
	if from == to {
		return false
	}
	a.checkNoMiddleboxes()
	for _, leaf := range a.leaves {
		if a.behavior(from, leaf).Traverses(to) {
			return false
		}
	}
	return true
}

// ReachabilityMatrix computes, for every ordered box pair (i, j), how many
// atoms entering at i traverse j — a compact network-wide connectivity
// summary (diagonal counts atoms that do anything at all at i).
func (a *Analyzer) ReachabilityMatrix() [][]int {
	a.checkNoMiddleboxes()
	n := len(a.c.Net.Boxes)
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
		for _, leaf := range a.leaves {
			b := a.behavior(i, leaf)
			for j := 0; j < n; j++ {
				if b.Traverses(j) {
					m[i][j]++
				}
			}
		}
	}
	return m
}

// Describe renders a packet-set BDD as a human-readable summary: its share
// of the header space and one example header.
func (a *Analyzer) Describe(set bdd.Ref) string {
	d := a.c.Manager.DD()
	if set == bdd.False {
		return "(empty)"
	}
	frac := d.SatCount(set) / d.SatCount(bdd.True)
	ex := d.AnySat(set)
	pkt := a.c.Layout.NewPacket()
	for i, v := range ex {
		if v == 1 {
			pkt[i/8] |= 0x80 >> uint(i%8)
		}
	}
	return fmt.Sprintf("%.4g%% of header space, e.g. %s", frac*100, a.c.Layout.String(pkt))
}
