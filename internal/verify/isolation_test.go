package verify

import (
	"math/rand"
	"testing"

	"apclassifier"
	"apclassifier/internal/bdd"
	"apclassifier/internal/netgen"
	"apclassifier/internal/predicate"
	"apclassifier/internal/rule"
)

// TestTenantIsolationHolds proves the §I "VLAN isolation" property exactly
// on the multi-tenant fabric: no packet sourced in tenant A's block is
// ever delivered to a tenant-B host, from any ingress.
func TestTenantIsolationHolds(t *testing.T) {
	const leaves, tenants = 4, 3
	ds := netgen.MultiTenantLike(leaves, tenants, 91)
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := New(c)
	d := c.Manager.DD()

	srcOf := func(tn int) bdd.Ref {
		return predicate.PrefixBDD(d, ds.Layout, "srcIP", netgen.TenantPrefix(tn))
	}
	for ingress := range ds.Boxes {
		for _, h := range ds.Hosts {
			hostTenant := int(h.Name[1] - '0')
			// The quiescent test may materialize the set in the live DD
			// to intersect with an arbitrary source predicate.
			reach := a.ReachSet(ingress, h.Name).UnionRef(d)
			for tn := 0; tn < tenants; tn++ {
				cross := d.And(reach, srcOf(tn))
				if tn == hostTenant {
					continue // intra-tenant traffic is allowed
				}
				if cross != bdd.False {
					t.Fatalf("isolation violated: tenant %d sources reach %s (ingress %s): %s",
						tn, h.Name, ds.Boxes[ingress].Name, DescribeRef(d, ds.Layout, cross))
				}
			}
		}
	}
}

// TestTenantTrafficActuallyFlows guards against vacuous isolation: the
// fabric must deliver intra-tenant traffic end to end.
func TestTenantTrafficActuallyFlows(t *testing.T) {
	ds := netgen.MultiTenantLike(4, 3, 92)
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(92))
	delivered := 0
	for i := 0; i < 300; i++ {
		tn := rng.Intn(3)
		srcLeaf, dstLeaf := rng.Intn(4), rng.Intn(4)
		f := rule.Fields{
			Src: netgen.TenantPrefix(tn).Value | uint32(rng.Intn(1<<16)),
			Dst: 0x0A000000 | uint32(tn)<<16 | uint32(dstLeaf)<<8 | uint32(rng.Intn(256)),
		}
		b := c.Behavior(2+srcLeaf, ds.PacketFromFields(f))
		want := ds.Simulate(2+srcLeaf, f)
		if (len(want.Delivered) > 0) != b.Delivered("") {
			t.Fatalf("probe %d: classifier and oracle disagree", i)
		}
		if b.Delivered("") {
			delivered++
			hostName := b.Deliveries[0].Host
			if hostName[1]-'0' != byte(tn) {
				t.Fatalf("probe %d: tenant %d traffic delivered to %s", i, tn, hostName)
			}
		}
	}
	if delivered < 100 {
		t.Fatalf("only %d/300 intra-tenant probes delivered — fabric routing broken?", delivered)
	}
}

// TestCrossTenantInjectionDetected breaks isolation on purpose (a
// misconfigured ACL) and checks the analyzer catches it.
func TestCrossTenantInjectionDetected(t *testing.T) {
	ds := netgen.MultiTenantLike(3, 2, 93)
	// Sabotage: leaf00's tenant-1 host port ACL accidentally permits all.
	leaf0 := 2
	for p, acl := range ds.Boxes[leaf0].PortACL {
		_ = p
		acl.Default = rule.Permit
		break
	}
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := New(c)
	d := c.Manager.DD()
	violations := 0
	for _, h := range ds.Hosts {
		hostTenant := int(h.Name[1] - '0')
		otherTenant := 1 - hostTenant
		reach := a.ReachSet(leaf0, h.Name).UnionRef(d)
		src := predicate.PrefixBDD(d, ds.Layout, "srcIP", netgen.TenantPrefix(otherTenant))
		if d.And(reach, src) != bdd.False {
			violations++
		}
	}
	if violations == 0 {
		t.Fatal("injected ACL misconfiguration not detected")
	}
}
