package verify

import (
	"math/rand"
	"testing"

	"apclassifier"
	"apclassifier/internal/netgen"
	"apclassifier/internal/network"
	"apclassifier/internal/rule"
)

func compile(t *testing.T, ds *netgen.Dataset) *apclassifier.Classifier {
	t.Helper()
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestReachSetMatchesSampledBehavior(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 51, RuleScale: 0.01})
	c := compile(t, ds)
	a := New(c)
	rng := rand.New(rand.NewSource(51))

	host := ds.Hosts[3]
	reach := a.ReachSet(0, host.Name)
	// Every sampled packet agrees: in the set ⇔ delivered to the host.
	for i := 0; i < 500; i++ {
		f := ds.RandomFields(rng)
		pkt := ds.PacketFromFields(f)
		inSet := reach.Contains(pkt)
		delivered := c.Behavior(0, pkt).Delivered(host.Name)
		if inSet != delivered {
			t.Fatalf("probe %d: ReachSet=%v but behavior delivered=%v", i, inSet, delivered)
		}
	}
}

func TestReachSetsOfDistinctHostsAreDisjoint(t *testing.T) {
	// Unicast LPM: a packet reaches at most one host, so reach sets from
	// one ingress must be pairwise disjoint.
	ds := netgen.Internet2Like(netgen.Config{Seed: 52, RuleScale: 0.01})
	c := compile(t, ds)
	a := New(c)
	sets := make([]PacketSet, 0, 10)
	names := make([]string, 0, 10)
	for _, h := range ds.Hosts[:10] {
		names = append(names, h.Name)
		sets = append(sets, a.ReachSet(0, h.Name))
	}
	for i := range sets {
		for j := i + 1; j < len(sets); j++ {
			if sets[i].Atoms().Intersects(sets[j].Atoms()) {
				t.Fatalf("reach sets of %s and %s overlap", names[i], names[j])
			}
		}
	}
}

func TestBlackholesComplementDeliveries(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 53, RuleScale: 0.01})
	c := compile(t, ds)
	a := New(c)
	// From any ingress: every packet either reaches some host or hits a
	// blackhole (Internet2 has no ACLs, loops or dangling ports).
	union := a.Blackholes(0).Atoms()
	for _, h := range ds.Hosts {
		union = union.Union(a.ReachSet(0, h.Name).Atoms())
	}
	if !union.Equal(a.view.IDs()) {
		t.Fatalf("deliveries ∪ blackholes ≠ header space: %v vs %v", union, a.view.IDs())
	}
}

func TestNoLoopsInGeneratedNetwork(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 54, RuleScale: 0.01})
	c := compile(t, ds)
	if loops := New(c).Loops(); len(loops) != 0 {
		t.Fatalf("shortest-path FIBs must be loop-free, found %d", len(loops))
	}
}

func TestLoopsDetectInjectedLoop(t *testing.T) {
	// Hand-build a two-box network that loops a prefix between the boxes.
	ds := &netgen.Dataset{Name: "loopy", Layout: netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: 0.01}).Layout}
	ds.Boxes = []netgen.BoxSpec{
		{Name: "a", NumPorts: 2, PortACL: map[int]*rule.ACL{}},
		{Name: "b", NumPorts: 2, PortACL: map[int]*rule.ACL{}},
	}
	ds.Links = []netgen.Link{{A: 0, PA: 1, B: 1, PB: 1}}
	ds.Hosts = []netgen.Host{{Box: 0, Port: 0, Name: "h1"}, {Box: 1, Port: 0, Name: "h2"}}
	ds.Boxes[0].Fwd.Add(rule.FwdRule{Prefix: rule.P(0x0A000000, 8), Port: 1}) // a: 10/8 -> b
	ds.Boxes[1].Fwd.Add(rule.FwdRule{Prefix: rule.P(0x0A000000, 8), Port: 1}) // b: 10/8 -> a (loop!)
	ds.Boxes[0].Fwd.Add(rule.FwdRule{Prefix: rule.P(0xC0000000, 8), Port: 0}) // some delivered traffic
	c := compile(t, ds)
	a := New(c)
	loops := a.Loops()
	if len(loops) == 0 {
		t.Fatal("injected loop not detected")
	}
	for _, l := range loops {
		if l.Example == nil {
			t.Fatal("loop without example header")
		}
	}
	// The per-ingress LoopSet agrees with the sweep.
	fromSweep := 0
	for _, l := range loops {
		if l.Ingress == 0 {
			fromSweep++
		}
	}
	if got := a.LoopSet(0).NumAtoms(); got != fromSweep {
		t.Fatalf("LoopSet(0) has %d atoms, sweep found %d", got, fromSweep)
	}
}

func TestWaypointViolations(t *testing.T) {
	ds := netgen.StanfordLike(netgen.Config{Seed: 55, RuleScale: 0.003})
	c := compile(t, ds)
	a := New(c)
	bbra, bbrb := c.Net.BoxByName("bbra"), c.Net.BoxByName("bbrb")

	// Inter-zone delivery must traverse a backbone router: violations of
	// "bbra OR bbrb" must be empty for hosts on other zone routers.
	ingress := c.Net.BoxByName("zone00")
	for _, h := range ds.Hosts {
		if h.Box == ingress {
			continue
		}
		va := a.WaypointViolations(ingress, h.Name, bbra)
		vb := a.WaypointViolations(ingress, h.Name, bbrb)
		// Packets bypassing both backbones would violate the two-tier
		// topology; the intersection must be empty.
		if va.Atoms().Intersects(vb.Atoms()) {
			t.Fatalf("traffic to %s bypasses both backbone routers", h.Name)
		}
	}
}

func TestIsolationAndCanReach(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 56, RuleScale: 0.01})
	c := compile(t, ds)
	a := New(c)
	// Internet2 is a connected backbone: no pair of boxes is isolated.
	for i := 0; i < len(ds.Boxes); i++ {
		for j := 0; j < len(ds.Boxes); j++ {
			if i == j {
				continue
			}
			if a.Isolated(i, j) {
				t.Fatalf("boxes %d and %d wrongly isolated", i, j)
			}
		}
	}
	// CanReach is consistent with Isolated.
	if a.CanReach(0, 1).Empty() {
		t.Fatal("CanReach(0,1) empty but not isolated")
	}
}

func TestIsolationHoldsOnPartitionedNetwork(t *testing.T) {
	// Two disconnected islands must be mutually isolated.
	layout := netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: 0.01}).Layout
	ds := &netgen.Dataset{Name: "split", Layout: layout}
	ds.Boxes = []netgen.BoxSpec{
		{Name: "a", NumPorts: 1, PortACL: map[int]*rule.ACL{}},
		{Name: "b", NumPorts: 1, PortACL: map[int]*rule.ACL{}},
	}
	ds.Hosts = []netgen.Host{{Box: 0, Port: 0, Name: "ha"}, {Box: 1, Port: 0, Name: "hb"}}
	ds.Boxes[0].Fwd.Add(rule.FwdRule{Prefix: rule.P(0x0A000000, 8), Port: 0})
	ds.Boxes[1].Fwd.Add(rule.FwdRule{Prefix: rule.P(0x0B000000, 8), Port: 0})
	c := compile(t, ds)
	a := New(c)
	if !a.Isolated(0, 1) || !a.Isolated(1, 0) {
		t.Fatal("disconnected boxes must be isolated")
	}
}

func TestReachabilityMatrix(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 57, RuleScale: 0.01})
	c := compile(t, ds)
	a := New(c)
	m := a.ReachabilityMatrix()
	if len(m) != len(ds.Boxes) {
		t.Fatal("matrix size")
	}
	// Diagonal counts all atoms (everything "traverses" its ingress).
	for i := range m {
		if m[i][i] != a.NumAtoms() {
			t.Fatalf("diagonal [%d][%d] = %d, want %d", i, i, m[i][i], a.NumAtoms())
		}
	}
	// Connected backbone: every off-diagonal entry positive.
	for i := range m {
		for j := range m {
			if i != j && m[i][j] == 0 {
				t.Fatalf("no atoms from %d traverse %d in a connected backbone", i, j)
			}
		}
	}
}

func TestDescribe(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 58, RuleScale: 0.01})
	c := compile(t, ds)
	a := New(c)
	if got := a.Describe(PacketSet{}); got != "(empty)" {
		t.Fatalf("Describe(empty) = %q", got)
	}
	// Some edge ports own no prefixes at small scale; find a host that
	// actually receives traffic.
	for _, h := range ds.Hosts {
		set := a.ReachSet(0, h.Name)
		if set.Empty() {
			continue
		}
		s := a.Describe(set)
		if s == "" || s == "(empty)" {
			t.Fatalf("Describe = %q", s)
		}
		return
	}
	t.Fatal("no host receives any traffic")
}

func TestPacketSetCountAndFraction(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 60, RuleScale: 0.01})
	c := compile(t, ds)
	a := New(c)
	// The whole atom universe covers the header space exactly.
	all := PacketSet{a: a, set: a.view.IDs()}
	if got := all.Fraction(); got != 1 {
		t.Fatalf("Fraction(universe) = %v, want 1", got)
	}
	// Fractions of a partition into reach sets + blackholes sum to 1.
	total := a.Blackholes(0).Fraction()
	for _, h := range ds.Hosts {
		total += a.ReachSet(0, h.Name).Fraction()
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("partition fractions sum to %v", total)
	}
}

func TestAnalyzerRejectsMiddleboxes(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 59, RuleScale: 0.01})
	c := compile(t, ds)
	c.Net.Boxes[0].MB = &network.Middlebox{Name: "mb"}
	defer func() {
		if recover() == nil {
			t.Fatal("middlebox networks must be rejected")
		}
	}()
	New(c)
}
