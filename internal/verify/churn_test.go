package verify

import (
	"math/rand"
	"sync"
	"testing"

	"apclassifier/internal/netgen"
	"apclassifier/internal/predicate"
	"apclassifier/internal/rule"
)

// TestAnalyzerStableUnderChurn pins an Analyzer, then mutates the
// classifier's rule tables concurrently (semantics-changing deltas: child
// prefixes re-homed to different ports) while re-running the analyzer's
// queries from several goroutines. Every answer must be bit-identical to
// the pre-churn baseline: the analyzer is pinned to one epoch and never
// reads live state. A fresh Analyzer pinned after the churn must see the
// new semantics.
func TestAnalyzerStableUnderChurn(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 62, RuleScale: 0.01})
	c := compile(t, ds)
	a := New(c)

	type baseline struct {
		loops   int
		reach   map[string]predicate.AtomSet
		bh      predicate.AtomSet
		matrix0 []int
	}
	snapshotResults := func() baseline {
		b := baseline{loops: len(a.Loops()), reach: map[string]predicate.AtomSet{}}
		for _, h := range ds.Hosts {
			b.reach[h.Name] = a.ReachSet(0, h.Name).Atoms()
		}
		b.bh = a.Blackholes(0).Atoms()
		b.matrix0 = a.ReachabilityMatrix()[0]
		return b
	}
	base := snapshotResults()

	// Churn: add child prefixes of installed rules pointing at *different*
	// ports (real semantic changes), then remove them. Every delta bumps
	// the epoch through Manager.Update.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(62))
		var installed []struct {
			box int
			p   rule.Prefix
		}
		for i := 0; i < 120; i++ {
			box := rng.Intn(len(ds.Boxes))
			spec := &ds.Boxes[box]
			parent := spec.Fwd.Rules[rng.Intn(len(spec.Fwd.Rules))]
			if parent.Prefix.Length >= 31 {
				continue
			}
			length := parent.Prefix.Length + 1 + rng.Intn(31-parent.Prefix.Length)
			child := rule.P(parent.Prefix.Value|rng.Uint32()&^(^uint32(0)<<uint(32-parent.Prefix.Length)), length)
			port := (parent.Port + 1) % ds.Boxes[box].NumPorts
			c.AddFwdRule(box, rule.FwdRule{Prefix: child, Port: port})
			installed = append(installed, struct {
				box int
				p   rule.Prefix
			}{box, child})
		}
		for _, in := range installed {
			c.RemoveFwdRule(in.box, in.p)
		}
		close(stop)
	}()

	// Concurrent readers re-run the pinned analyzer until churn finishes.
	check := func(got baseline) {
		if got.loops != base.loops {
			t.Errorf("loops changed under churn: %d -> %d", base.loops, got.loops)
		}
		for h, want := range base.reach {
			if !got.reach[h].Equal(want) {
				t.Errorf("reach(%s) changed under churn: %v -> %v", h, want, got.reach[h])
			}
		}
		if !got.bh.Equal(base.bh) {
			t.Errorf("blackholes changed under churn")
		}
		for i, v := range base.matrix0 {
			if got.matrix0[i] != v {
				t.Errorf("matrix row changed under churn at %d: %d -> %d", i, v, got.matrix0[i])
			}
		}
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					check(snapshotResults())
				}
			}
		}()
	}
	wg.Wait()
	check(snapshotResults()) // once more after all deltas landed

	// A fresh analyzer pins the post-churn snapshot (same reconstruction
	// epoch — incremental deltas republish without bumping the version —
	// but a different tree); add/remove cancelled out, so its results must
	// match the baseline too, proving New is safe after heavy delta
	// traffic. Atom IDs are not comparable across pins, so compare shape.
	a2 := New(c)
	for _, h := range ds.Hosts {
		want := base.reach[h.Name]
		got := a2.ReachSet(0, h.Name)
		if (got.NumAtoms() == 0) != (want.Len() == 0) {
			t.Fatalf("post-churn reach(%s) emptiness differs", h.Name)
		}
	}
	if len(a2.Loops()) != base.loops {
		t.Fatal("post-churn loop count differs")
	}
}

// TestFreshAnalyzersDuringChurn hammers New(c) while deltas are applied:
// every pin must observe an internally consistent epoch (reach ∪
// blackholes ∪ loops covers the whole atom universe from any ingress).
func TestFreshAnalyzersDuringChurn(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 63, RuleScale: 0.01})
	c := compile(t, ds)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(63))
		for i := 0; i < 150; i++ {
			box := rng.Intn(len(ds.Boxes))
			spec := &ds.Boxes[box]
			parent := spec.Fwd.Rules[rng.Intn(len(spec.Fwd.Rules))]
			if parent.Prefix.Length >= 31 {
				continue
			}
			length := parent.Prefix.Length + 1 + rng.Intn(31-parent.Prefix.Length)
			child := rule.P(parent.Prefix.Value|rng.Uint32()&^(^uint32(0)<<uint(32-parent.Prefix.Length)), length)
			c.AddFwdRule(box, rule.FwdRule{Prefix: child, Port: (parent.Port + 1) % ds.Boxes[box].NumPorts})
		}
		close(stop)
	}()

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := New(c)
				union := a.Blackholes(0).Atoms().Union(a.LoopSet(0).Atoms())
				for _, h := range ds.Hosts {
					union = union.Union(a.ReachSet(0, h.Name).Atoms())
				}
				if union.Len() != a.NumAtoms() {
					t.Errorf("epoch %d inconsistent: %d/%d atoms accounted for",
						a.Epoch(), union.Len(), a.NumAtoms())
					return
				}
			}
		}()
	}
	wg.Wait()
}
