package aptree

import (
	"math/rand"
	"strings"
	"testing"

	"apclassifier/internal/bdd"
	"apclassifier/internal/predicate"
)

func TestFprintAndDOT(t *testing.T) {
	d := bdd.New(8)
	preds := paperFig1(d)
	rng := rand.New(rand.NewSource(0))
	in := buildInput(d, preds, rng)
	tree := Build(in, MethodOAPT)

	s := tree.String()
	if !strings.Contains(s, "p1?") || !strings.Contains(s, "atom ") {
		t.Fatalf("String rendering incomplete:\n%s", s)
	}
	// Exactly one line per node: leaves + internal.
	lines := strings.Count(s, "\n")
	wantLines := tree.NumLeaves()*2 - 1 // full binary tree node count
	if lines != wantLines {
		t.Fatalf("rendered %d lines, want %d:\n%s", lines, wantLines, s)
	}

	dot := tree.DOT("fig2c")
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "shape=box") ||
		!strings.Contains(dot, "style=dashed") {
		t.Fatalf("DOT rendering incomplete:\n%s", dot)
	}
	if got := strings.Count(dot, "shape=box"); got != tree.NumLeaves() {
		t.Fatalf("DOT has %d leaf boxes, want %d", got, tree.NumLeaves())
	}
}

func TestFprintSingleLeaf(t *testing.T) {
	d := bdd.New(8)
	in := Input{D: d, Atoms: predicate.Compute(d, nil)}
	tree := Build(in, MethodOrder)
	if got := tree.String(); !strings.HasPrefix(got, "atom 0") {
		t.Fatalf("single-leaf rendering = %q", got)
	}
}
