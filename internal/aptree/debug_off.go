//go:build !apdebug

package aptree

// Debug reports whether the apdebug runtime sanitizers are compiled in.
// Build with -tags apdebug to check the leaf partition after every tree
// construction and live predicate insertion.
const Debug = false

func (t *Tree) debugCheckPartition() {}

func (s *Snapshot) debugCheckFlat() {}
