package aptree

import (
	"fmt"

	"apclassifier/internal/bdd"
	"apclassifier/internal/predicate"
)

// AtomView is a snapshot's atom index: every live atom of the epoch,
// addressable by AtomID, with its BDD and membership vector — plus the
// epoch's atom-ID universe as an interval-coded AtomSet. It lets
// consumers (the verification engine, behavior computation) work in
// terms of atom IDs and AtomSets instead of retaining `*Node` pointers,
// whose identity is only meaningful within one epoch.
//
// An AtomView is derived once from the snapshot's immutable tree and is
// itself immutable; it is valid exactly as long as its snapshot.
type AtomView struct {
	// leaves is indexed by AtomID; nil entries are IDs retired by
	// predicate removals earlier in the lineage.
	leaves []*Node
	ids    predicate.AtomSet
	n      int
}

func newAtomView(s *Snapshot) *AtomView {
	v := &AtomView{leaves: make([]*Node, s.tree.AtomIDBound())}
	var b predicate.AtomSetBuilder
	s.tree.Leaves(func(n *Node) {
		v.leaves[n.AtomID] = n
		v.n++
	})
	for id, n := range v.leaves {
		if n != nil {
			b.Add(int32(id))
		}
	}
	v.ids = b.Set()
	return v
}

// N reports the number of live atoms in the epoch.
func (v *AtomView) N() int { return v.n }

// Bound returns the exclusive upper bound on AtomIDs, suitable for
// sizing flat per-atom tables (matches Tree.AtomIDBound).
func (v *AtomView) Bound() int32 { return int32(len(v.leaves)) }

// IDs returns the epoch's live atom IDs as an interval-coded set.
func (v *AtomView) IDs() predicate.AtomSet { return v.ids }

// BDD returns atom id's predicate (a ref into the snapshot's frozen
// view). It panics on a retired or out-of-range ID.
func (v *AtomView) BDD(id int32) bdd.Ref { return v.mustLeaf(id).BDD }

// Member returns atom id's membership vector (bit j set iff the atom
// implies predicate j). Read-only.
func (v *AtomView) Member(id int32) predicate.Bitset { return v.mustLeaf(id).Member }

// Leaf returns atom id's leaf node. The handle is epoch-scoped: it must
// not be retained beyond the snapshot the view came from (the epochpin
// lint rejects cross-epoch leaf retention).
func (v *AtomView) Leaf(id int32) *Node { return v.mustLeaf(id) }

func (v *AtomView) mustLeaf(id int32) *Node {
	if id < 0 || int(id) >= len(v.leaves) || v.leaves[id] == nil {
		panic(fmt.Sprintf("aptree: atom %d not live in this epoch", id))
	}
	return v.leaves[id]
}

// Each calls fn for every live atom in ascending AtomID order until fn
// returns false.
func (v *AtomView) Each(fn func(id int32) bool) { v.ids.Each(fn) }

// RSet returns R(p) within this epoch — the atoms implying predicate
// predID — as an interval-coded set.
func (v *AtomView) RSet(predID int32) predicate.AtomSet {
	var b predicate.AtomSetBuilder
	v.ids.Each(func(id int32) bool {
		if v.leaves[id].Member.Get(int(predID)) {
			b.Add(id)
		}
		return true
	})
	return b.Set()
}

// Atoms returns the snapshot's atom view, building it on first use. The
// view is cached on the snapshot; concurrent first calls may race to
// build it, and the first published result wins (the builds are
// identical, derived from immutable state).
func (s *Snapshot) Atoms() *AtomView {
	if v := s.atomView.Load(); v != nil {
		return v
	}
	s.atomView.CompareAndSwap(nil, newAtomView(s))
	return s.atomView.Load()
}
