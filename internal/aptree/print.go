package aptree

import (
	"fmt"
	"io"
	"strings"
)

// Fprint writes an ASCII rendering of the tree: internal nodes as
// "p<ID>?", true branches first, leaves as "atom <ID> depth=<d>".
// Intended for debugging and documentation of small trees.
func (t *Tree) Fprint(w io.Writer) {
	var walk func(n *Node, prefix string, last bool)
	walk = func(n *Node, prefix string, last bool) {
		connector := "├─"
		childPrefix := prefix + "│ "
		if last {
			connector = "└─"
			childPrefix = prefix + "  "
		}
		if n.IsLeaf() {
			fmt.Fprintf(w, "%s%s atom %d (depth %d)\n", prefix, connector, n.AtomID, n.Depth)
			return
		}
		fmt.Fprintf(w, "%s%s p%d?\n", prefix, connector, n.Pred)
		walk(n.T, childPrefix, false)
		walk(n.F, childPrefix, true)
	}
	if t.root.IsLeaf() {
		fmt.Fprintf(w, "atom %d (depth 0)\n", t.root.AtomID)
		return
	}
	fmt.Fprintf(w, "p%d?\n", t.root.Pred)
	walk(t.root.T, "", false)
	walk(t.root.F, "", true)
}

// String renders the tree via Fprint.
func (t *Tree) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// DOT renders the tree in Graphviz format: internal nodes labeled by
// predicate ID (true branch solid, false branch dashed), leaves as boxes
// labeled by atom ID.
func (t *Tree) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	id := 0
	var walk func(n *Node) int
	walk = func(n *Node) int {
		my := id
		id++
		if n.IsLeaf() {
			fmt.Fprintf(&b, "  n%d [shape=box,label=\"a%d\"];\n", my, n.AtomID)
			return my
		}
		fmt.Fprintf(&b, "  n%d [label=\"p%d\"];\n", my, n.Pred)
		ti := walk(n.T)
		fi := walk(n.F)
		fmt.Fprintf(&b, "  n%d -> n%d;\n", my, ti)
		fmt.Fprintf(&b, "  n%d -> n%d [style=dashed];\n", my, fi)
		return my
	}
	walk(t.root)
	b.WriteString("}\n")
	return b.String()
}
