package aptree

import (
	"encoding/binary"
	"slices"

	"apclassifier/internal/bdd"
)

// Compiler from the pointer AP Tree to the Flat array form. compileFlat
// runs inside publishLocked on every epoch publication, so its cost is on
// the delta engine's critical path; the expensive part — deciding how each
// predicate BDD lowers (minterm walk, support enumeration, truth-table
// fill) — is therefore cached across publishes in a flatPlanner owned by
// the Manager. Refs are canonical within one DD lineage (hash-consed,
// append-only between the GC-at-swap boundaries, never collected after the
// first freeze), so a plan computed for a ref at one publish stays valid
// for that ref at every later publish of the same lineage; the planner is
// discarded wholesale when Reconstruct swaps in a fresh DD.

// predPlan is the cached lowering decision for one predicate ref: how the
// flat engine evaluates it and the data that evaluation needs. Plans hold
// their payload privately; compileFlat copies it into the per-Flat arenas
// (deduplicated per build), so a published Flat never aliases planner
// state.
type predPlan struct {
	kind uint8

	// flatMask payload: probe bytes [base, base+nb) of the packet and
	// require (pkt[base+j]^want[j])&mask[j] == 0 for all j.
	base       uint32
	nb         uint8
	want, mask [8]byte

	// flatTable payload: the probed bit positions (ascending) and the
	// truth table over them, one bit per assignment, index built MSB-first
	// in bits order.
	bits  []uint16
	table []uint64

	// flatCubes payload: the predicate holds iff any cube matches.
	cubes []flatCube
}

// flatPlanner caches predicate lowering plans for one DD lineage.
type flatPlanner struct {
	d     *bdd.DD
	plans map[bdd.Ref]*predPlan
	// tableWords counts truth-table words planned so far; past
	// flatTableBudgetWords new predicates fall back to the frozen view.
	tableWords int
}

func newFlatPlanner(d *bdd.DD) *flatPlanner {
	return &flatPlanner{d: d, plans: make(map[bdd.Ref]*predPlan)}
}

// plan returns the (possibly cached) lowering for ref f, computing it
// against view on first sight.
func (pl *flatPlanner) plan(v *bdd.View, f bdd.Ref) *predPlan {
	if p, ok := pl.plans[f]; ok {
		return p
	}
	p := lowerPred(v, f, &pl.tableWords)
	pl.plans[f] = p
	return p
}

// flatMaxPredNodes caps the support-enumeration DFS: a predicate whose BDD
// has more reachable nodes than this is declared wide without finishing
// the walk and falls back to the frozen view.
const flatMaxPredNodes = 4096

// lowerPred decides how predicate f evaluates in the flat engine,
// cheapest admissible form first: masked byte compare for minterms, truth
// table for few-bit predicates, cube list for small unions of rule cubes,
// frozen-view descent for everything else.
func lowerPred(v *bdd.View, f bdd.Ref, tableWords *int) *predPlan {
	if f <= bdd.True {
		// Terminal predicate (never placed on a tree node in practice —
		// constants split nothing): view descent is O(1) and correct.
		return &predPlan{kind: flatBDD}
	}
	if p := mintermPlan(v, f); p != nil {
		return p
	}
	support, ok := supportLevels(v, f)
	if ok && len(support) <= flatMaxTableBits && int(support[len(support)-1]) < 1<<16 {
		words := 1
		if len(support) > 6 {
			words = 1 << (len(support) - 6)
		}
		if *tableWords+words <= flatTableBudgetWords {
			*tableWords += words
			return tablePlan(v, f, support, words)
		}
	}
	if p := cubeListPlan(v, f); p != nil {
		return p
	}
	return &predPlan{kind: flatBDD}
}

// mintermPlan recognizes minterm BDDs — exactly one satisfying path, the
// shape every prefix/exact-match predicate takes — and lowers them to a
// masked byte compare when the probed levels span at most 8 bytes.
// Returns nil when f is not a minterm or spans too many bytes.
func mintermPlan(v *bdd.View, f bdd.Ref) *predPlan {
	type probe struct {
		level int32
		high  bool
	}
	var probes []probe
	for f > bdd.True {
		level, low, high := v.Node(f)
		switch {
		case low == bdd.False:
			probes = append(probes, probe{level, true})
			f = high
		case high == bdd.False:
			probes = append(probes, probe{level, false})
			f = low
		default:
			return nil // two live children: more than one satisfying path
		}
		if len(probes) > 64 { // > 8 bytes of probed bits: cannot fit anyway
			return nil
		}
	}
	if f != bdd.True || len(probes) == 0 {
		return nil
	}
	// Levels strictly ascend along any ordered-BDD path, so the first and
	// last probes bound the byte window.
	base := probes[0].level >> 3
	span := probes[len(probes)-1].level>>3 - base + 1
	if span > 8 {
		return nil
	}
	p := &predPlan{kind: flatMask, base: uint32(base), nb: uint8(span)}
	for _, pr := range probes {
		j := pr.level>>3 - base
		bit := byte(0x80) >> (uint(pr.level) & 7)
		p.mask[j] |= bit
		if pr.high {
			p.want[j] |= bit
		}
	}
	return p
}

// flatMaxCubeSteps caps the path-enumeration DFS of cubeListPlan. The walk
// is path-wise, not node-wise — paths to False count too — so a dense BDD
// can cost far more than its node count; bailing early keeps publish-time
// compile cheap.
const flatMaxCubeSteps = 4096

// cubeProbe is one probed level along a BDD path: the path takes the high
// branch at level iff high.
type cubeProbe struct {
	level int32
	high  bool
}

// cubeListPlan lowers f to a disjunction of masked byte compares — one
// cube per satisfying BDD path, the shape union-of-rules predicates take
// (forwarding tables, ACL permit sets). Paths of an ordered BDD are
// disjoint, so the disjunction is exact. Returns nil when f has more than
// flatMaxCubes satisfying paths, any cube's probed window exceeds 8 bytes,
// or the walk exceeds flatMaxCubeSteps visits.
func cubeListPlan(v *bdd.View, f bdd.Ref) *predPlan {
	var (
		cubes []flatCube
		path  []cubeProbe
		steps int
		bad   bool
	)
	var walk func(r bdd.Ref)
	walk = func(r bdd.Ref) {
		if bad || r == bdd.False {
			return
		}
		if steps++; steps > flatMaxCubeSteps {
			bad = true
			return
		}
		if r == bdd.True {
			c, ok := cubeFromProbes(path)
			if !ok || len(cubes) >= flatMaxCubes {
				bad = true
				return
			}
			cubes = append(cubes, c)
			return
		}
		level, low, high := v.Node(r)
		path = append(path, cubeProbe{level, false})
		walk(low)
		path[len(path)-1].high = true
		walk(high)
		path = path[:len(path)-1]
	}
	walk(f)
	if bad || len(cubes) == 0 {
		return nil
	}
	return &predPlan{kind: flatCubes, nb: uint8(len(cubes)), cubes: cubes}
}

// cubeFromProbes packs one path's probes into a masked-compare cube; ok is
// false when the probed window spans more than 8 bytes. Byte j of the
// window sits at word bits [8j, 8j+8) — the little-endian convention the
// word loads in Flat.test/testSlow read packets with.
func cubeFromProbes(probes []cubeProbe) (flatCube, bool) {
	// Levels strictly ascend along any ordered-BDD path, so the first and
	// last probes bound the byte window.
	base := probes[0].level >> 3
	span := probes[len(probes)-1].level>>3 - base + 1
	if span > 8 {
		return flatCube{}, false
	}
	c := flatCube{off: uint32(base), n: uint8(span)}
	for _, pr := range probes {
		j := pr.level>>3 - base
		bit := uint64(0x80>>(uint(pr.level)&7)) << (8 * uint(j))
		c.mask |= bit
		if pr.high {
			c.want |= bit
		}
	}
	return c, true
}

// supportLevels enumerates the distinct variable levels f depends on, in
// ascending order. ok is false when the walk exceeds flatMaxPredNodes
// nodes or the support exceeds flatMaxTableBits levels — both mean "too
// wide to tabulate", and bailing early keeps publish-time compile cheap on
// the big ACL predicates.
func supportLevels(v *bdd.View, f bdd.Ref) (support []int32, ok bool) {
	seen := make(map[bdd.Ref]bool)
	levels := make(map[int32]bool)
	stack := []bdd.Ref{f}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if r <= bdd.True || seen[r] {
			continue
		}
		seen[r] = true
		if len(seen) > flatMaxPredNodes {
			return nil, false
		}
		level, low, high := v.Node(r)
		if !levels[level] {
			levels[level] = true
			if len(levels) > flatMaxTableBits {
				return nil, false
			}
		}
		stack = append(stack, low, high)
	}
	support = make([]int32, 0, len(levels))
	for l := range levels {
		support = append(support, l)
	}
	slices.Sort(support)
	return support, true
}

// tablePlan tabulates f over its support: one truth-table bit per
// assignment of the support levels, indexed MSB-first in ascending level
// order — exactly how Flat.test rebuilds the index from packet bits.
func tablePlan(v *bdd.View, f bdd.Ref, support []int32, words int) *predPlan {
	p := &predPlan{
		kind:  flatTable,
		nb:    uint8(len(support)),
		bits:  make([]uint16, len(support)),
		table: make([]uint64, words),
	}
	for i, l := range support {
		p.bits[i] = uint16(l)
	}
	k := len(support)
	// fill enumerates the subcube below r: bi is the next support slot to
	// assign, idx the assignment prefix. Ordered-BDD paths visit levels
	// ascending, so when r's level is past support[bi] (or r is terminal)
	// the function is constant in that bit and both halves inherit r.
	var fill func(r bdd.Ref, bi int, idx uint32)
	fill = func(r bdd.Ref, bi int, idx uint32) {
		if r == bdd.False {
			return // table words start zeroed
		}
		if bi == k {
			p.table[idx>>6] |= 1 << (idx & 63)
			return
		}
		if r > bdd.True {
			if level, low, high := v.Node(r); level == support[bi] {
				fill(low, bi+1, idx<<1)
				fill(high, bi+1, idx<<1|1)
				return
			}
		}
		fill(r, bi+1, idx<<1)
		fill(r, bi+1, idx<<1|1)
	}
	fill(f, 0, 0)
	return p
}

// compileFlat lowers the pointer tree into its Flat array form against the
// epoch's frozen view. Nodes are emitted in descent order — each internal
// node is immediately followed by its entire true-subtree, then its
// false-subtree — so every internal child index is strictly greater than
// its parent's (the acyclicity invariant the property tests check) and the
// leaves array enumerates leaves in Tree.Leaves preorder. Plan payloads
// are copied into per-Flat arenas, deduplicated by ref within the build.
func compileFlat(t *Tree, view *bdd.View, pl *flatPlanner) *Flat {
	f := &Flat{view: view, src: t.root}
	type arenaLoc struct{ off, aux uint32 }
	placed := make(map[bdd.Ref]arenaLoc)
	var emit func(n *Node) int32
	emit = func(n *Node) int32 {
		if n.IsLeaf() {
			f.leaves = append(f.leaves, n)
			return ^int32(len(f.leaves) - 1)
		}
		i := int32(len(f.nodes))
		f.nodes = append(f.nodes, flatNode{})
		ref := t.preds[n.Pred]
		p := pl.plan(view, ref)
		fn := flatNode{pred: ref, kind: p.kind}
		switch p.kind {
		case flatMask:
			f.maskNodes++
			fn.n = p.nb
			fn.off = p.base
			fn.want = binary.LittleEndian.Uint64(p.want[:])
			fn.mask = binary.LittleEndian.Uint64(p.mask[:])
		case flatTable:
			f.tableNodes++
			fn.n = p.nb
			loc, ok := placed[ref]
			if !ok {
				loc = arenaLoc{off: uint32(len(f.bits)), aux: uint32(len(f.table))}
				f.bits = append(f.bits, p.bits...)
				f.table = append(f.table, p.table...)
				placed[ref] = loc
			}
			fn.off, fn.aux = loc.off, loc.aux
		case flatCubes:
			f.cubeNodes++
			fn.n = p.nb
			loc, ok := placed[ref]
			if !ok {
				loc = arenaLoc{aux: uint32(len(f.cubes))}
				f.cubes = append(f.cubes, p.cubes...)
				placed[ref] = loc
			}
			fn.aux = loc.aux
		default:
			f.fallbackNodes++
		}
		kt := emit(n.T)
		kf := emit(n.F)
		fn.kids = [2]int32{kf, kt}
		f.nodes[i] = fn
		return i
	}
	f.root = emit(t.root)
	return f
}
