package aptree

import (
	"math/rand"
	"testing"

	"apclassifier/internal/bdd"
)

func benchSetup(b *testing.B, numPreds int) (*bdd.DD, Input, [][]byte) {
	rng := rand.New(rand.NewSource(1))
	d := bdd.New(32)
	preds := make([]bdd.Ref, numPreds)
	for i := range preds {
		preds[i] = d.Retain(d.FromPrefix(0, uint64(rng.Uint32()), 8+rng.Intn(17), 32))
	}
	in := buildInput(d, preds, rng)
	trace := make([][]byte, 1024)
	for i := range trace {
		trace[i] = make([]byte, 4)
		rng.Read(trace[i])
	}
	return d, in, trace
}

func BenchmarkBuildOAPT(b *testing.B) {
	_, in, _ := benchSetup(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(in, MethodOAPT).Drop()
	}
}

func BenchmarkBuildQuick(b *testing.B) {
	_, in, _ := benchSetup(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(in, MethodQuick).Drop()
	}
}

func BenchmarkTreeClassify(b *testing.B) {
	_, in, trace := benchSetup(b, 64)
	tree := Build(in, MethodOAPT)
	b.ReportMetric(tree.AverageDepth(), "avg-depth")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Classify(trace[i%len(trace)])
	}
}

func BenchmarkAddPredicate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	d, in, _ := benchSetup(b, 48)
	tree := Build(in, MethodOAPT)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := d.FromPrefix(0, uint64(rng.Uint32()), 8+rng.Intn(17), 32)
		tree.AddPredicate(int32(len(in.Preds)+i), d.Retain(p))
	}
}

func BenchmarkManagerClassifyUnderRLock(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := NewManager(16, MethodOAPT)
	for i := 0; i < 40; i++ {
		addRandomPredicate(m, rng)
	}
	trace := make([][]byte, 1024)
	for i := range trace {
		trace[i] = []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Classify(trace[i%len(trace)])
	}
}
