package aptree

import (
	"math/rand"
	"testing"

	"apclassifier/internal/bdd"
)

func benchSetup(b *testing.B, numPreds int) (*bdd.DD, Input, [][]byte) {
	rng := rand.New(rand.NewSource(1))
	d := bdd.New(32)
	preds := make([]bdd.Ref, numPreds)
	for i := range preds {
		preds[i] = d.Retain(d.FromPrefix(0, uint64(rng.Uint32()), 8+rng.Intn(17), 32))
	}
	in := buildInput(d, preds, rng)
	trace := make([][]byte, 1024)
	for i := range trace {
		trace[i] = make([]byte, 4)
		rng.Read(trace[i])
	}
	return d, in, trace
}

func BenchmarkBuildOAPT(b *testing.B) {
	_, in, _ := benchSetup(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(in, MethodOAPT).Drop()
	}
}

func BenchmarkBuildQuick(b *testing.B) {
	_, in, _ := benchSetup(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(in, MethodQuick).Drop()
	}
}

func BenchmarkTreeClassify(b *testing.B) {
	_, in, trace := benchSetup(b, 64)
	tree := Build(in, MethodOAPT)
	b.ReportMetric(tree.AverageDepth(), "avg-depth")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Classify(trace[i%len(trace)])
	}
}

func BenchmarkAddPredicate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	d, in, _ := benchSetup(b, 48)
	tree := Build(in, MethodOAPT)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := d.FromPrefix(0, uint64(rng.Uint32()), 8+rng.Intn(17), 32)
		tree = tree.AddPredicate(int32(len(in.Preds)+i), d.Retain(p))
	}
}

func benchManager(b *testing.B) (*Manager, [][]byte) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	m := NewManager(16, MethodOAPT)
	for i := 0; i < 40; i++ {
		addRandomPredicate(m, rng)
	}
	trace := make([][]byte, 1024)
	for i := range trace {
		trace[i] = []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
	}
	return m, trace
}

// BenchmarkManagerClassify measures the single-threaded snapshot query
// path (one atomic load + tree search). The name kept its historical
// counterpart BenchmarkManagerClassifyUnderRLock until the read path
// went lock-free.
func BenchmarkManagerClassify(b *testing.B) {
	m, trace := benchManager(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Classify(trace[i%len(trace)])
	}
}

// benchFlatManager builds a manager on the paper's workload shape — IP
// prefixes of length 8..24 over a 32-bit header — where node predicates
// have real BDD depth, then returns it with a 4-byte trace.
func benchFlatManager(b *testing.B) (*Manager, [][]byte) {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	m := NewManager(32, MethodOAPT)
	m.Update(func(tx *Tx) {
		for i := 0; i < 64; i++ {
			v := uint64(rng.Uint32())
			l := 8 + rng.Intn(17)
			tx.Add(tx.DD().FromPrefix(0, v, l, 32))
		}
	})
	trace := make([][]byte, 1024)
	for i := range trace {
		// Real headers run past any one predicate's probe window (netgen
		// layouts are 13+ bytes); 8-byte packets keep the word fast path
		// honest without padding tricks.
		trace[i] = make([]byte, 8)
		rng.Read(trace[i])
	}
	return m, trace
}

// BenchmarkFlatClassify pits the compiled flat core against the pointer
// descent of the same published epoch, single-packet and batched. The
// flat/pointer ratio is the headline number for the flat engine: the
// branch-free array walk must hold at least 2x on single packets.
func BenchmarkFlatClassify(b *testing.B) {
	m, trace := benchFlatManager(b)
	s := m.Snapshot()
	f := s.Flat()
	if f == nil {
		b.Fatal("publish did not compile a flat core")
	}
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.Classify(trace[i%len(trace)])
		}
	})
	b.Run("pointer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.ClassifyPointer(trace[i%len(trace)])
		}
	})
	out := make([]*Node, len(trace))
	sc := &BatchScratch{}
	b.Run("batch-flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.ClassifyBatchWith(sc, trace, out)
		}
	})
	b.Run("batch-pointer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.ClassifyBatchPointerWith(sc, trace, out)
		}
	})
}

// BenchmarkParallelClassify drives Classify from GOMAXPROCS goroutines.
// With the lock-free snapshot path and striped visit counters this must
// scale with cores; under the old RLock-per-query design it collapsed on
// the lock's cache line.
func BenchmarkParallelClassify(b *testing.B) {
	m, trace := benchManager(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.Classify(trace[i%len(trace)])
			i++
		}
	})
}

// BenchmarkParallelClassifyWithUpdates is the mixed workload: parallel
// queries while one background goroutine keeps adding predicates, each
// add republishing the snapshot.
func BenchmarkParallelClassifyWithUpdates(b *testing.B) {
	m, trace := benchManager(b)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(7))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			addRandomPredicate(m, rng)
			if i%64 == 63 {
				m.Reconstruct(false)
			}
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.Classify(trace[i%len(trace)])
			i++
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}
