package aptree

import (
	"fmt"

	"apclassifier/internal/bdd"
)

// AddPredicate installs a new predicate with the given global ID into the
// tree per §VI-A: every leaf whose atom straddles p is split into a node
// labeled id with two child leaves (atom∧p and atom∧¬p); leaves entirely
// inside p just gain the membership bit. The tree remains a correct
// classifier for the enlarged predicate set immediately.
//
// The caller must serialize AddPredicate with queries (the paper's query
// process applies updates and answers queries in one thread of control).
func (t *Tree) AddPredicate(id int32, p bdd.Ref) {
	if int(id) < len(t.preds) && t.preds[id] != bdd.False {
		panic(fmt.Sprintf("aptree: predicate ID %d already present", id))
	}
	for int(id) >= len(t.preds) {
		t.preds = append(t.preds, bdd.False)
	}
	t.preds[id] = p
	t.root = t.addRec(t.root, id, p)
	t.debugCheckPartition()
}

func (t *Tree) addRec(n *Node, id int32, p bdd.Ref) *Node {
	if !n.IsLeaf() {
		n.T = t.addRec(n.T, id, p)
		n.F = t.addRec(n.F, id, p)
		return n
	}
	d := t.D
	tr := d.And(n.BDD, p)
	switch tr {
	case bdd.False:
		// Atom entirely outside p; membership bit stays clear. The vector
		// may need growing so later Get(id) is in range.
		n.Member = n.Member.Clone(len(t.preds))
		return n
	case n.BDD:
		// Atom entirely inside p.
		n.Member = n.Member.Clone(len(t.preds))
		n.Member.Set(int(id), true)
		return n
	}
	// Straddles: split the leaf.
	fr := d.Diff(n.BDD, p)
	mt := n.Member.Clone(len(t.preds))
	mt.Set(int(id), true)
	mf := n.Member.Clone(len(t.preds))
	d.Retain(tr)
	d.Retain(fr)
	d.Release(n.BDD)
	tLeaf := &Node{Pred: -1, Depth: n.Depth + 1, AtomID: t.nextAtom, BDD: tr, Member: mt}
	fLeaf := &Node{Pred: -1, Depth: n.Depth + 1, AtomID: t.nextAtom + 1, BDD: fr, Member: mf}
	t.nextAtom += 2
	t.numLeaves++
	return &Node{Pred: id, Depth: n.Depth, T: tLeaf, F: fLeaf}
}

// Registry assigns stable global IDs to predicate BDDs and tracks
// tombstones. IDs are never reused: a deleted predicate's slot stays dead
// so membership vectors and network references remain unambiguous.
type Registry struct {
	refs []bdd.Ref
	live []bool
	n    int // live count
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Add registers a predicate BDD and returns its new global ID.
func (r *Registry) Add(ref bdd.Ref) int32 {
	r.refs = append(r.refs, ref)
	r.live = append(r.live, true)
	r.n++
	return int32(len(r.refs) - 1)
}

// Delete tombstones an ID per §VI-A. The predicate may keep routing inside
// existing AP Trees, but behavior computation must ignore it.
func (r *Registry) Delete(id int32) {
	if !r.live[id] {
		panic(fmt.Sprintf("aptree: double delete of predicate %d", id))
	}
	r.live[id] = false
	r.n--
}

// Ref returns the BDD of predicate id (valid even if tombstoned).
func (r *Registry) Ref(id int32) bdd.Ref { return r.refs[id] }

// IsLive reports whether id has not been deleted.
func (r *Registry) IsLive(id int32) bool { return r.live[id] }

// NumIDs reports the size of the ID space (live + tombstoned).
func (r *Registry) NumIDs() int { return len(r.refs) }

// NumLive reports the number of live predicates.
func (r *Registry) NumLive() int { return r.n }

// LiveIDs returns the live IDs in increasing order.
func (r *Registry) LiveIDs() []int32 {
	ids := make([]int32, 0, r.n)
	for i, l := range r.live {
		if l {
			ids = append(ids, int32(i))
		}
	}
	return ids
}

// Refs returns the full ID-indexed BDD slice (tombstoned slots included).
func (r *Registry) Refs() []bdd.Ref { return r.refs }

// Clone returns an independent copy (used to snapshot for reconstruction).
func (r *Registry) Clone() *Registry {
	return &Registry{
		refs: append([]bdd.Ref(nil), r.refs...),
		live: append([]bool(nil), r.live...),
		n:    r.n,
	}
}
