package aptree

import (
	"fmt"

	"apclassifier/internal/bdd"
)

// AddPredicate installs a new predicate with the given global ID per
// §VI-A: every leaf whose atom straddles p is split into a node labeled
// id with two child leaves (atom∧p and atom∧¬p); leaves entirely inside
// p gain the membership bit. The result is a correct classifier for the
// enlarged predicate set immediately.
//
// The update is persistent: the receiver is left untouched and a new
// *Tree is returned, sharing every unchanged subtree with the old
// version by pointer. A published snapshot of the old tree therefore
// keeps classifying against the old predicate set while the manager
// republishes the new one — this is what makes the lock-free query path
// possible. Leaves entirely outside p are shared as-is (their shorter
// membership vectors read bit id as clear, see predicate.Bitset.Get);
// leaves inside p are replaced by a copy with the bit set; straddling
// leaves split into two fresh leaves whose atom BDDs are retained.
//
// The old leaf's BDD reference is deliberately NOT released: the old
// tree version may still be pinned by a snapshot, and all references of
// an epoch die together when Reconstruct swaps in a fresh DD. Because
// of this transfer of release responsibility to the epoch boundary,
// Drop must not be used on a lineage that has seen AddPredicate; the
// manager never does.
func (t *Tree) AddPredicate(id int32, p bdd.Ref) *Tree {
	var st DeltaStats
	return t.addPredicate(id, p, &st)
}

func (t *Tree) addPredicate(id int32, p bdd.Ref, st *DeltaStats) *Tree {
	if int(id) < len(t.preds) && t.preds[id] != bdd.False {
		panic(fmt.Sprintf("aptree: predicate ID %d already present", id))
	}
	nt := &Tree{
		D:           t.D,
		preds:       append([]bdd.Ref(nil), t.preds...),
		numLeaves:   t.numLeaves,
		nextAtom:    t.nextAtom,
		CountVisits: t.CountVisits,
		visits:      t.visits,
	}
	for int(id) >= len(nt.preds) {
		nt.preds = append(nt.preds, bdd.False)
	}
	nt.preds[id] = p
	nt.root = nt.addRec(t.root, id, p, st)
	nt.visits.grow(int(nt.nextAtom))
	nt.debugCheckPartition()
	return nt
}

// addRec returns the updated version of n, sharing n itself whenever the
// subtree is unaffected by the new predicate.
func (t *Tree) addRec(n *Node, id int32, p bdd.Ref, st *DeltaStats) *Node {
	if !n.IsLeaf() {
		nt, nf := t.addRec(n.T, id, p, st), t.addRec(n.F, id, p, st)
		if nt == n.T && nf == n.F {
			return n
		}
		return &Node{Pred: n.Pred, Depth: n.Depth, T: nt, F: nf}
	}
	d := t.D
	tr := d.And(n.BDD, p)
	switch tr {
	case bdd.False:
		// Atom entirely outside p: the leaf is shared unchanged. Its
		// membership vector may be shorter than the new predicate space;
		// Bitset.Get reads the missing bit as clear, which is correct.
		return n
	case n.BDD:
		// Atom entirely inside p: copy the leaf with the bit set.
		m := n.Member.Clone(len(t.preds))
		m.Set(int(id), true)
		st.TouchedLeaves++
		return &Node{Pred: -1, Depth: n.Depth, AtomID: n.AtomID, BDD: n.BDD, Member: m}
	}
	// Straddles: split into two fresh leaves. The old leaf (and its BDD
	// reference) lives on in any pinned older tree version; see the
	// AddPredicate doc comment for why n.BDD is not released here.
	fr := d.Diff(n.BDD, p)
	mt := n.Member.Clone(len(t.preds))
	mt.Set(int(id), true)
	mf := n.Member.Clone(len(t.preds))
	d.Retain(tr)
	d.Retain(fr)
	tLeaf := &Node{Pred: -1, Depth: n.Depth + 1, AtomID: t.nextAtom, BDD: tr, Member: mt}
	fLeaf := &Node{Pred: -1, Depth: n.Depth + 1, AtomID: t.nextAtom + 1, BDD: fr, Member: mf}
	t.nextAtom += 2
	t.numLeaves++
	st.TouchedLeaves++
	st.Splits++
	return &Node{Pred: id, Depth: n.Depth, T: tLeaf, F: fLeaf}
}

// Registry assigns stable global IDs to predicate BDDs and tracks
// tombstones. IDs are never reused: a deleted predicate's slot stays dead
// so membership vectors and network references remain unambiguous.
type Registry struct {
	refs []bdd.Ref
	live []bool
	n    int // live count
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Add registers a predicate BDD and returns its new global ID.
func (r *Registry) Add(ref bdd.Ref) int32 {
	r.refs = append(r.refs, ref)
	r.live = append(r.live, true)
	r.n++
	return int32(len(r.refs) - 1)
}

// Delete tombstones an ID per §VI-A. The predicate may keep routing inside
// existing AP Trees, but behavior computation must ignore it.
func (r *Registry) Delete(id int32) {
	if !r.live[id] {
		panic(fmt.Sprintf("aptree: double delete of predicate %d", id))
	}
	r.live[id] = false
	r.n--
}

// Ref returns the BDD of predicate id (valid even if tombstoned).
func (r *Registry) Ref(id int32) bdd.Ref { return r.refs[id] }

// IsLive reports whether id has not been deleted.
func (r *Registry) IsLive(id int32) bool { return r.live[id] }

// NumIDs reports the size of the ID space (live + tombstoned).
func (r *Registry) NumIDs() int { return len(r.refs) }

// NumLive reports the number of live predicates.
func (r *Registry) NumLive() int { return r.n }

// LiveIDs returns the live IDs in increasing order.
func (r *Registry) LiveIDs() []int32 {
	ids := make([]int32, 0, r.n)
	for i, l := range r.live {
		if l {
			ids = append(ids, int32(i))
		}
	}
	return ids
}

// Refs returns the full ID-indexed BDD slice (tombstoned slots included).
func (r *Registry) Refs() []bdd.Ref { return r.refs }

// Clone returns an independent copy (used to snapshot for reconstruction).
func (r *Registry) Clone() *Registry {
	return &Registry{
		refs: append([]bdd.Ref(nil), r.refs...),
		live: append([]bool(nil), r.live...),
		n:    r.n,
	}
}
