package aptree

import (
	"fmt"

	"apclassifier/internal/bdd"
)

// CheckLeafPartition verifies the defining property of an AP Tree: the
// leaf atoms are non-empty, pairwise disjoint, and together cover the full
// header space, so every packet classifies to exactly one leaf. It is the
// partition half of Validate without the O(n²) membership cross-check,
// cheap enough to run after every structural mutation under -tags apdebug.
//
// The check allocates scratch BDD nodes in t.D (the running union), so it
// must be serialized with other DD mutations exactly like an update.
func (t *Tree) CheckLeafPartition() error {
	d := t.D
	union := bdd.False
	var err error
	i := 0
	t.Leaves(func(n *Node) {
		if err != nil {
			return
		}
		switch {
		case n.BDD == bdd.False:
			err = fmt.Errorf("aptree: leaf %d (atom %d) has an empty predicate", i, n.AtomID)
		case !d.Disjoint(union, n.BDD):
			err = fmt.Errorf("aptree: leaf %d (atom %d) overlaps an earlier leaf", i, n.AtomID)
		default:
			union = d.Or(union, n.BDD)
		}
		i++
	})
	if err != nil {
		return err
	}
	if union != bdd.True {
		return fmt.Errorf("aptree: %d leaves do not cover the header space", i)
	}
	return nil
}
