package aptree

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"apclassifier/internal/bdd"
)

// TestManagerConcurrentClassifyUpdateReconstruct is the contract test for
// the manager's two-process design (§VI): classification must be safe to
// run from many goroutines concurrently with live predicate updates and
// with the auto-reconstruction policy swapping optimized trees in. Run
// under -race this exercises the lock discipline the locksafe and
// atomicfield analyzers check statically.
func TestManagerConcurrentClassifyUpdateReconstruct(t *testing.T) {
	const (
		numVars  = 32
		readers  = 4
		queries  = 2000
		updates  = 60
		pktBytes = numVars / 8
	)
	m := NewManager(numVars, MethodQuick)
	// Seed a few predicates so classification starts non-trivial.
	for i := 0; i < 8; i++ {
		bits := uint64(i) << (numVars - 8)
		m.AddPredicate(func(d *bdd.DD) bdd.Ref {
			return d.FromPrefix(0, bits, 8, numVars)
		})
	}
	stop := m.AutoReconstruct(10, time.Millisecond, true)
	defer stop()

	var wg sync.WaitGroup
	done := make(chan struct{})

	// Writer: a stream of adds and deletes racing the readers and the
	// reconstruction goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		rng := rand.New(rand.NewSource(17))
		var ids []int32
		for i := 0; i < updates; i++ {
			if len(ids) > 4 && rng.Intn(3) == 0 {
				k := rng.Intn(len(ids))
				m.DeletePredicate(ids[k])
				ids = append(ids[:k], ids[k+1:]...)
			} else {
				length := 1 + rng.Intn(numVars/2)
				bits := uint64(rng.Uint32())
				id := m.AddPredicate(func(d *bdd.DD) bdd.Ref {
					return d.FromPrefix(0, bits>>(32-numVars/2), length, numVars)
				})
				ids = append(ids, id)
			}
			if i%8 == 0 {
				m.Reconstruct(rng.Intn(2) == 0) // explicit rebuilds race the policy's
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			pkt := make([]byte, pktBytes)
			for i := 0; i < queries; i++ {
				rng.Read(pkt)
				leaf, _ := m.Classify(pkt)
				if leaf == nil || !leaf.IsLeaf() {
					t.Error("Classify returned a non-leaf")
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}(int64(100 + r))
	}
	wg.Wait()

	// The surviving tree must still be a coherent classifier.
	if err := m.Tree().Validate(m.LiveIDs()); err != nil {
		t.Fatal(err)
	}
}

// TestManagerConcurrentReaders checks the read-side accessors that back
// monitoring endpoints (Version, NumLive, UpdatesSinceSwap, Tree) against
// a concurrent reconstruction loop.
func TestManagerConcurrentReaders(t *testing.T) {
	m := NewManager(16, MethodOAPT)
	for i := 0; i < 6; i++ {
		bits := uint64(i) << 12
		m.AddPredicate(func(d *bdd.DD) bdd.Ref {
			return d.FromPrefix(0, bits, 4, 16)
		})
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			m.Reconstruct(i%2 == 0)
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pkt := make([]byte, 2)
			for i := 0; i < 4000; i++ {
				_ = m.Version()
				_ = m.NumLive()
				_ = m.UpdatesSinceSwap()
				if tr := m.Tree(); tr.NumLeaves() < 1 {
					t.Error("tree lost its leaves")
					return
				}
				m.Classify(pkt)
			}
		}()
	}
	wg.Wait()
	if got := m.Version(); got < 20 {
		t.Fatalf("version = %d after 20 reconstructions", got)
	}
}
