//go:build apdebug

// Debug-tagged snapshot checks: the GC-at-swap rule promises that a
// retained snapshot keeps evaluating correctly against its abandoned DD
// for as long as it is held. With -tags apdebug the retained tree's leaf
// partition is re-verified with real BDD operations on that old DD after
// the live manager has swapped epochs twice.
package aptree

import (
	"math/rand"
	"testing"

	"apclassifier/internal/bdd"
)

func TestApdebugRetainedSnapshotSurvivesTwoSwaps(t *testing.T) {
	m := NewManager(16, MethodQuick)
	rng := rand.New(rand.NewSource(37))
	var ids []int32
	for i := 0; i < 10; i++ {
		bits := uint64(rng.Uint32()) >> 20
		ids = append(ids, m.AddPredicate(func(d *bdd.DD) bdd.Ref {
			return d.FromPrefix(0, bits, 1+rng.Intn(10), 16)
		}))
	}
	trace := make([][]byte, 128)
	for i := range trace {
		trace[i] = []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
	}

	old := m.Snapshot()
	v0 := old.Version()
	want := make([]*Node, len(trace))
	for i, pkt := range trace {
		want[i], _ = old.Classify(pkt)
	}

	// Swap 1: more predicates, unweighted rebuild.
	for i := 0; i < 3; i++ {
		bits := uint64(rng.Uint32()) >> 20
		m.AddPredicate(func(d *bdd.DD) bdd.Ref {
			return d.FromPrefix(0, bits, 1+rng.Intn(10), 16)
		})
	}
	m.Reconstruct(false)
	// Swap 2: a delete, then a weighted rebuild.
	m.DeletePredicate(ids[0])
	m.Reconstruct(true)

	if got := m.Version(); got != v0+2 {
		t.Fatalf("manager version = %d, want %d after two swaps", got, v0+2)
	}
	if old.Version() != v0 {
		t.Fatalf("retained snapshot's version changed: %d -> %d", v0, old.Version())
	}
	for i, pkt := range trace {
		leaf, v := old.Classify(pkt)
		if leaf != want[i] {
			t.Fatalf("retained snapshot re-classified packet %d to a different leaf", i)
		}
		if v != v0 {
			t.Fatalf("retained snapshot reports epoch %d, want %d", v, v0)
		}
	}
	// The retained tree must still satisfy the leaf-partition invariant,
	// evaluated with BDD operations against the abandoned epoch's DD.
	if err := old.Tree().CheckLeafPartition(); err != nil {
		t.Fatalf("retained epoch's partition broke after swaps: %v", err)
	}
}
