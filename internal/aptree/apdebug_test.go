//go:build apdebug

// Debug-tagged wrappers: with -tags apdebug every Build and AddPredicate
// already self-checks the leaf partition via debugCheckPartition; these
// tests drive construction, live splicing and reconstruction through that
// path and call CheckLeafPartition directly so failures surface as test
// errors with context.
package aptree

import (
	"math/rand"
	"testing"

	"apclassifier/internal/bdd"
)

func TestApdebugPartitionAllMethods(t *testing.T) {
	if !Debug {
		t.Fatal("apdebug build tag set but Debug is false")
	}
	for _, method := range []Method{MethodOrder, MethodRandom, MethodQuick, MethodOAPT} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			d := bdd.New(16)
			preds := randomPrefixPreds(d, 16, 16, rng)
			tree := Build(buildInput(d, preds, rng), method)
			if err := tree.CheckLeafPartition(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestApdebugPartitionSurvivesLiveUpdates(t *testing.T) {
	m := NewManager(16, MethodQuick)
	rng := rand.New(rand.NewSource(13))
	var ids []int32
	for i := 0; i < 12; i++ {
		length := 1 + rng.Intn(8)
		bits := uint64(rng.Uint32()) >> 16
		id := m.AddPredicate(func(d *bdd.DD) bdd.Ref {
			return d.FromPrefix(0, bits, length, 16)
		})
		ids = append(ids, id)
	}
	if err := m.Tree().CheckLeafPartition(); err != nil {
		t.Fatal(err)
	}
	m.DeletePredicate(ids[3])
	m.Reconstruct(false)
	if err := m.Tree().CheckLeafPartition(); err != nil {
		t.Fatalf("after reconstruct: %v", err)
	}
	if err := m.Tree().Validate(m.LiveIDs()); err != nil {
		t.Fatalf("after reconstruct: %v", err)
	}
}
