package aptree

import (
	"math/rand"
	"testing"

	"apclassifier/internal/bdd"
)

func TestBuildOptimalMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 20; trial++ {
		d := bdd.New(12)
		preds := randomPrefixPreds(d, 6+rng.Intn(3), 12, rng)
		in := buildInput(d, preds, rng)
		opt := BuildOptimal(in)
		if err := opt.Validate(in.Live); err != nil {
			t.Fatalf("trial %d: optimal tree invalid: %v", trial, err)
		}
		rsets := make([][]int32, len(preds))
		for i := range rsets {
			rsets[i] = in.Atoms.R(i)
		}
		all := make([]int32, in.Atoms.N())
		for i := range all {
			all[i] = int32(i)
		}
		want := optimalSumDepth(rsets, all) // the independent test oracle
		if got := opt.SumDepth(); got != want {
			t.Fatalf("trial %d: BuildOptimal depth %d, oracle %d", trial, got, want)
		}
		// Optimality: no other method may beat it.
		for _, m := range []Method{MethodOAPT, MethodQuick} {
			other := Build(in, m)
			if other.SumDepth() < opt.SumDepth() {
				t.Fatalf("trial %d: %v beat the optimum", trial, m)
			}
			other.Drop()
		}
		checkClassification(t, opt, d, preds, in.Live, 2, rng, 100)
		opt.Drop()
	}
}

func TestBuildOptimalOnPaperExample(t *testing.T) {
	d := bdd.New(8)
	preds := paperFig1(d)
	rng := rand.New(rand.NewSource(0))
	in := buildInput(d, preds, rng)
	opt := BuildOptimal(in)
	if got := opt.AverageDepth(); got != 2.4 {
		t.Fatalf("optimal average depth = %v, want 2.4 (Fig 2(c))", got)
	}
}

func TestBuildOptimalRejectsLargeInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	d := bdd.New(32)
	preds := randomPrefixPreds(d, MaxOptimalPreds+1, 32, rng)
	in := buildInput(d, preds, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized input must panic")
		}
	}()
	BuildOptimal(in)
}

// TestOAPTOptimalityGap quantifies how close the heuristic gets — the
// number the paper never reports.
func TestOAPTOptimalityGap(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	totOpt, totOAPT := 0, 0
	for trial := 0; trial < 15; trial++ {
		d := bdd.New(12)
		preds := randomPrefixPreds(d, 8, 12, rng)
		in := buildInput(d, preds, rng)
		opt := BuildOptimal(in)
		oapt := Build(in, MethodOAPT)
		totOpt += opt.SumDepth()
		totOAPT += oapt.SumDepth()
		opt.Drop()
		oapt.Drop()
	}
	gap := float64(totOAPT)/float64(totOpt) - 1
	t.Logf("OAPT optimality gap over 15 random 8-predicate inputs: %.1f%%", gap*100)
	if gap > 0.30 {
		t.Fatalf("OAPT gap %.1f%% is suspiciously large", gap*100)
	}
	if gap < 0 {
		t.Fatal("heuristic cannot beat the optimum")
	}
}
