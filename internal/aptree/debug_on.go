//go:build apdebug

package aptree

// Debug reports whether the apdebug runtime sanitizers are compiled in.
const Debug = true

// debugCheckPartition panics if the tree's leaves stop being a partition
// of the header space. It runs after Build and after every AddPredicate
// splice, so the mutation that broke the partition is the one on the
// stack. Only compiled under -tags apdebug.
func (t *Tree) debugCheckPartition() {
	if err := t.CheckLeafPartition(); err != nil {
		panic("aptree: apdebug partition violation: " + err.Error())
	}
}
