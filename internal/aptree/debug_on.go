//go:build apdebug

package aptree

// Debug reports whether the apdebug runtime sanitizers are compiled in.
const Debug = true

// debugCheckPartition panics if the tree's leaves stop being a partition
// of the header space. It runs after Build and after every AddPredicate
// splice, so the mutation that broke the partition is the one on the
// stack. Only compiled under -tags apdebug.
func (t *Tree) debugCheckPartition() {
	if err := t.CheckLeafPartition(); err != nil {
		panic("aptree: apdebug partition violation: " + err.Error())
	}
}

// debugCheckFlat panics if the snapshot is about to serve a flat classify
// core compiled for a different epoch — a different tree root or a
// different frozen view than the snapshot's own. Publish compiles the
// flat form and the snapshot in one critical section, so a mismatch means
// a stale-compile bug at the swap. Only compiled under -tags apdebug.
func (s *Snapshot) debugCheckFlat() {
	if s.flat != nil && (s.flat.src != s.tree.root || s.flat.view != s.view) {
		panic("aptree: apdebug flat/epoch mismatch: flat core compiled for a retired epoch")
	}
}
