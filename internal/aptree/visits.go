package aptree

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Per-leaf visit counting feeds the distribution-aware rebuild (§V-D).
// It used to live in an atomic uint64 inside each leaf Node, which made
// every parallel query to a hot atom bounce one cache line between cores
// — the counter, not the tree search, became the stage-1 scaling limit.
//
// visitCounters replaces that with a store that is
//
//   - keyed by atom ID, not by leaf pointer, so counts survive the
//     persistent (copy-on-write) AddPredicate that replaces Node values;
//   - striped: each goroutine increments its own stripe of a counter,
//     eliminating write sharing between cores (reads sum the stripes);
//   - chunked: counters live in fixed-size chunks that never move once
//     allocated, so snapshots taken at different times all address the
//     same memory and a growth never invalidates a published view.
//
// Growth (appending chunks for new atom IDs) happens only under the
// manager's write lock; published snapshots hold a visitView — a copy of
// the chunk-pointer slice — so they never read the growing slice header.
const (
	visitChunkBits = 10
	visitChunkSize = 1 << visitChunkBits // atoms per chunk
)

// visitStripes is the number of independent counter stripes, a power of
// two sized to the machine.
var visitStripes = func() int {
	s := 1
	for s < runtime.NumCPU() && s < 64 {
		s <<= 1
	}
	return s
}()

// visitChunk holds visitChunkSize counters × visitStripes stripes,
// stripe-major: stripe s of atom a is at [s<<visitChunkBits | a&mask].
// Stripe-major layout keeps different goroutines' increments of the same
// atom on distant cache lines.
type visitChunk []uint64

// visitCounters is the growable store. Only the owner (a Tree lineage,
// serialized by the manager's write lock) may grow it.
type visitCounters struct {
	chunks []*visitChunk
}

func newVisitCounters(atoms int) *visitCounters {
	c := &visitCounters{}
	c.grow(atoms)
	return c
}

// grow ensures capacity for atom IDs < n. Existing chunks never move.
func (c *visitCounters) grow(n int) {
	for len(c.chunks)<<visitChunkBits < n {
		ch := make(visitChunk, visitStripes<<visitChunkBits)
		c.chunks = append(c.chunks, &ch)
	}
}

// view returns an immutable handle over the current chunks, safe to use
// concurrently with later grow calls (which may reallocate c.chunks).
func (c *visitCounters) view() visitView {
	return visitView{chunks: c.chunks[:len(c.chunks):len(c.chunks)]}
}

// add increments atom's counter on the calling goroutine's stripe.
func (c *visitCounters) add(atom int32) { c.view().add(atom) }

// addN adds n visits to atom's counter on the calling goroutine's stripe.
func (c *visitCounters) addN(atom int32, n uint64) { c.view().addN(atom, n) }

// count sums atom's stripes.
func (c *visitCounters) count(atom int32) uint64 { return c.view().count(atom) }

// reset zeroes every counter.
func (c *visitCounters) reset() {
	for _, ch := range c.chunks {
		s := *ch
		for i := range s {
			atomic.StoreUint64(&s[i], 0)
		}
	}
}

// visitView is the snapshot-side handle: a frozen chunk-pointer slice.
// The counters themselves are shared with the live store, so increments
// made through any view in the lineage are visible to the §V-D rebuild.
type visitView struct {
	chunks []*visitChunk
}

func (v visitView) add(atom int32) { v.addN(atom, 1) }

// addN adds n visits to atom's counter in one striped add — how batched
// classification charges a whole leaf group at once.
func (v visitView) addN(atom int32, n uint64) {
	ch := *v.chunks[atom>>visitChunkBits]
	i := stripeHint()<<visitChunkBits | int(atom)&(visitChunkSize-1)
	atomic.AddUint64(&ch[i], n)
}

func (v visitView) count(atom int32) uint64 {
	ch := *v.chunks[atom>>visitChunkBits]
	var n uint64
	for s := 0; s < visitStripes; s++ {
		n += atomic.LoadUint64(&ch[s<<visitChunkBits|int(atom)&(visitChunkSize-1)])
	}
	return n
}

// stripeHint derives a stripe index from the address of a stack variable.
// Goroutine stacks are distinct allocations, so concurrent classifiers
// land on different stripes with high probability; the hint only affects
// contention, never correctness. The obs package's striped counters use
// the same technique; like there, the pointer is only ever hashed, never
// converted back from uintptr.
func stripeHint() int {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return int((p>>9 ^ p>>17) & uintptr(visitStripes-1))
}
