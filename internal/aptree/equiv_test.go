package aptree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"apclassifier/internal/bdd"
)

func TestSemanticallyEqualAcrossMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	d := bdd.New(16)
	preds := randomPrefixPreds(d, 20, 16, rng)
	in := buildInput(d, preds, rng)
	oapt := Build(in, MethodOAPT)
	quickT := Build(in, MethodQuick)
	in.Rand = rand.New(rand.NewSource(5))
	random := Build(in, MethodRandom)
	for _, other := range []*Tree{quickT, random} {
		if err := SemanticallyEqual(oapt, other, in.Live); err != nil {
			t.Fatalf("construction methods disagree: %v", err)
		}
	}
}

func TestSemanticallyEqualDetectsDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	d := bdd.New(16)
	preds := randomPrefixPreds(d, 10, 16, rng)
	in := buildInput(d, preds, rng)
	a := Build(in, MethodOAPT)
	b := Build(in, MethodOAPT)
	// Extend b with one extra predicate: membership must now differ for
	// the extended ID (a never saw it).
	extra := d.Retain(d.FromPrefix(0, 0x1234, 9, 16))
	id := int32(len(preds))
	b = b.AddPredicate(id, extra)
	// a's leaves have no bit for `id` (vectors too short) — compare only
	// shared IDs first (must pass), then the difference scenario via a
	// third tree that saw a different predicate under the same ID.
	if err := SemanticallyEqual(a, b, in.Live); err != nil {
		t.Fatalf("shared predicates should still agree: %v", err)
	}
	c := Build(in, MethodQuick)
	other := d.Retain(d.FromPrefix(0, 0xFFFF, 16, 16))
	c = c.AddPredicate(id, other)
	if err := SemanticallyEqual(b, c, []int32{id}); err == nil {
		t.Fatal("different predicates under the same ID must be detected")
	}
}

// TestRandomUpdateSequencesKeepTreeCorrect drives the live-update machinery
// with testing/quick-generated operation sequences and validates the full
// correctness contract after each batch.
func TestRandomUpdateSequencesKeepTreeCorrect(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewManager(16, MethodOAPT)
		var live []int32
		ops := 30 + rng.Intn(40)
		for i := 0; i < ops; i++ {
			if len(live) == 0 || rng.Intn(3) > 0 {
				id := addRandomPredicate(m, rng)
				live = append(live, id)
			} else {
				k := rng.Intn(len(live))
				m.DeletePredicate(live[k])
				live = append(live[:k], live[k+1:]...)
			}
			if rng.Intn(10) == 0 {
				m.Reconstruct(false)
			}
		}
		// Contract: classification membership == direct evaluation for
		// every live predicate.
		d := m.DD()
		for probe := 0; probe < 100; probe++ {
			pkt := []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
			leaf, _ := m.Classify(pkt)
			for _, id := range m.LiveIDs() {
				if leaf.Member.Get(int(id)) != d.EvalBits(m.Ref(id), pkt) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatalf("update sequence broke the tree contract: %v", err)
	}
}

func TestTreeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	d := bdd.New(16)
	preds := randomPrefixPreds(d, 15, 16, rng)
	in := buildInput(d, preds, rng)
	tree := Build(in, MethodOAPT)
	s := tree.Stats()
	if s.Leaves != tree.NumLeaves() || s.SumDepth != tree.SumDepth() ||
		s.MaxDepth != tree.MaxDepth() || s.AvgDepth != tree.AverageDepth() {
		t.Fatalf("Stats inconsistent: %+v", s)
	}
}
