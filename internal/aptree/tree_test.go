package aptree

import (
	"fmt"
	"math/rand"
	"testing"

	"apclassifier/internal/bdd"
	"apclassifier/internal/predicate"
)

// buildInput computes atoms for preds and assembles a Build input.
func buildInput(d *bdd.DD, preds []bdd.Ref, rng *rand.Rand) Input {
	live := make([]int32, len(preds))
	for i := range live {
		live[i] = int32(i)
	}
	return Input{
		D:     d,
		Preds: preds,
		Live:  live,
		Atoms: predicate.Compute(d, preds),
		Rand:  rng,
	}
}

// randomPrefixPreds builds k random prefix predicates over nbits header bits.
func randomPrefixPreds(d *bdd.DD, k, nbits int, rng *rand.Rand) []bdd.Ref {
	preds := make([]bdd.Ref, k)
	for i := range preds {
		length := 1 + rng.Intn(nbits/2)
		preds[i] = d.FromPrefix(0, uint64(rng.Uint32())<<32>>uint(64-nbits), length, nbits)
		d.Retain(preds[i])
	}
	return preds
}

// checkClassification verifies the fundamental spec: for any packet, the
// leaf's membership bit for every predicate equals direct BDD evaluation.
func checkClassification(t *testing.T, tree *Tree, d *bdd.DD, preds []bdd.Ref, live []int32, nbytes int, rng *rand.Rand, probes int) {
	t.Helper()
	for i := 0; i < probes; i++ {
		pkt := make([]byte, nbytes)
		rng.Read(pkt)
		leaf := tree.Classify(pkt)
		if !leaf.IsLeaf() {
			t.Fatal("Classify returned non-leaf")
		}
		if !d.EvalBits(leaf.BDD, pkt) {
			t.Fatalf("probe %d: packet not in its leaf's atom", i)
		}
		for _, id := range live {
			want := d.EvalBits(preds[id], pkt)
			if got := leaf.Member.Get(int(id)); got != want {
				t.Fatalf("probe %d: membership bit %d = %v, eval = %v", i, id, got, want)
			}
		}
	}
}

func TestBuildMethodsAllValidAndCorrect(t *testing.T) {
	for _, method := range []Method{MethodOrder, MethodRandom, MethodQuick, MethodOAPT} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			d := bdd.New(16)
			preds := randomPrefixPreds(d, 20, 16, rng)
			in := buildInput(d, preds, rng)
			tree := Build(in, method)
			if tree.NumLeaves() != in.Atoms.N() {
				t.Fatalf("leaves = %d, atoms = %d", tree.NumLeaves(), in.Atoms.N())
			}
			if err := tree.Validate(in.Live); err != nil {
				t.Fatal(err)
			}
			checkClassification(t, tree, d, preds, in.Live, 2, rng, 400)
		})
	}
}

func TestClassifyAgreesWithLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := bdd.New(16)
	preds := randomPrefixPreds(d, 25, 16, rng)
	in := buildInput(d, preds, rng)
	tree := Build(in, MethodOAPT)
	for i := 0; i < 1000; i++ {
		pkt := []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
		leaf := tree.Classify(pkt)
		want := in.Atoms.ClassifyLinear(pkt)
		if int(leaf.AtomID) != want {
			t.Fatalf("tree atom %d, linear atom %d", leaf.AtomID, want)
		}
	}
}

// Fig. 1 of the paper: three predicates over a toy header space with
// p1 disjoint from p2 and p3, and p2 ∧ p3 ≠ ∅, giving atoms a1..a5.
// Fig. 2 shows the pruned tree in order (p1,p2,p3) has average depth 2.6
// and the optimized order (p2,p3,p1) achieves 2.4.
func paperFig1(d *bdd.DD) []bdd.Ref {
	p1 := d.FromPrefix(0, 0b00000000, 2, 8)                                          // 00******
	p2 := d.Or(d.FromPrefix(0, 0b01000000, 2, 8), d.FromPrefix(0, 0b10000000, 2, 8)) // 01|10
	p3 := d.Or(d.FromPrefix(0, 0b10000000, 2, 8), d.FromPrefix(0, 0b11000000, 3, 8)) // 10|110
	return []bdd.Ref{p1, p2, p3}
}

func TestPaperFig2Depths(t *testing.T) {
	d := bdd.New(8)
	preds := paperFig1(d)
	rng := rand.New(rand.NewSource(0))
	in := buildInput(d, preds, rng)
	if in.Atoms.N() != 5 {
		t.Fatalf("Fig 1 has 5 atoms, got %d", in.Atoms.N())
	}
	// Order p1,p2,p3 — the pruned tree of Fig 2(b): average depth 2.6.
	tb := Build(in, MethodOrder)
	if got := tb.AverageDepth(); got != 2.6 {
		t.Fatalf("Fig 2(b) average depth = %v, want 2.6", got)
	}
	// Order p2,p3,p1 — Fig 2(c): average depth 2.4.
	in2 := in
	in2.Live = []int32{1, 2, 0}
	tc := Build(in2, MethodOrder)
	if got := tc.AverageDepth(); got != 2.4 {
		t.Fatalf("Fig 2(c) average depth = %v, want 2.4", got)
	}
	// OAPT must find a 2.4 tree (the optimum for this example).
	topt := Build(in, MethodOAPT)
	if got := topt.AverageDepth(); got != 2.4 {
		t.Fatalf("OAPT average depth = %v, want 2.4", got)
	}
	// Quick-Ordering sorts by |R|: |R(p2)|=2,|R(p3)|=2,|R(p1)|=1 → also 2.4.
	tq := Build(in, MethodQuick)
	if got := tq.AverageDepth(); got != 2.4 {
		t.Fatalf("Quick-Ordering average depth = %v, want 2.4", got)
	}
}

// intersect and subtract are sorted-slice set ops kept test-local so the
// optimalSumDepth oracle stays independent of the AtomSet representation
// the builder uses.
func intersect(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func subtract(a, b []int32) []int32 {
	var out []int32
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// optimalSumDepth is the exact recursion of equation (1), memoized — the
// oracle the OAPT heuristic approximates.
func optimalSumDepth(rsets [][]int32, s []int32) int {
	memo := make(map[string]int)
	var f func(qmask uint32, s []int32) int
	key := func(qmask uint32, s []int32) string { return fmt.Sprint(qmask, s) }
	f = func(qmask uint32, s []int32) int {
		if len(s) == 1 {
			return 0
		}
		k := key(qmask, s)
		if v, ok := memo[k]; ok {
			return v
		}
		best := -1
		for p := 0; p < len(rsets); p++ {
			if qmask&(1<<uint(p)) == 0 {
				continue
			}
			st := intersect(s, rsets[p])
			if len(st) == 0 || len(st) == len(s) {
				continue
			}
			sf := subtract(s, rsets[p])
			q2 := qmask &^ (1 << uint(p))
			v := f(q2, st) + f(q2, sf) + len(s)
			if best < 0 || v < best {
				best = v
			}
		}
		if best < 0 {
			panic("indistinguishable atoms")
		}
		memo[k] = best
		return best
	}
	all := uint32(1)<<uint(len(rsets)) - 1
	return f(all, s)
}

func TestOAPTNeverBeatsExactOptimumAndIsClose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	totalOpt, totalOAPT, totalQuick := 0, 0, 0
	for trial := 0; trial < 30; trial++ {
		d := bdd.New(12)
		preds := randomPrefixPreds(d, 7, 12, rng)
		in := buildInput(d, preds, rng)
		rsets := make([][]int32, len(preds))
		for i := range rsets {
			rsets[i] = in.Atoms.R(i)
		}
		all := make([]int32, in.Atoms.N())
		for i := range all {
			all[i] = int32(i)
		}
		opt := optimalSumDepth(rsets, all)
		oapt := Build(in, MethodOAPT).SumDepth()
		quick := Build(in, MethodQuick).SumDepth()
		if oapt < opt {
			t.Fatalf("trial %d: heuristic %d beat the optimum %d — oracle or tree is wrong", trial, oapt, opt)
		}
		totalOpt += opt
		totalOAPT += oapt
		totalQuick += quick
	}
	if totalOAPT > totalQuick {
		t.Errorf("across trials OAPT (%d) should not be worse than Quick-Ordering (%d)", totalOAPT, totalQuick)
	}
	if float64(totalOAPT) > 1.25*float64(totalOpt) {
		t.Errorf("OAPT total %d is more than 25%% above optimal %d", totalOAPT, totalOpt)
	}
}

func TestOAPTBeatsRandomOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := bdd.New(20)
	preds := randomPrefixPreds(d, 30, 20, rng)
	in := buildInput(d, preds, rng)
	oapt := Build(in, MethodOAPT).AverageDepth()
	sum := 0.0
	const n = 20
	for i := 0; i < n; i++ {
		in.Rand = rand.New(rand.NewSource(int64(100 + i)))
		sum += Build(in, MethodRandom).AverageDepth()
	}
	if avg := sum / n; oapt >= avg {
		t.Fatalf("OAPT depth %.2f not better than mean random depth %.2f", oapt, avg)
	}
}

func TestNoSplitFilterAblationIsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := bdd.New(16)
	preds := randomPrefixPreds(d, 18, 16, rng)
	in := buildInput(d, preds, rng)
	a := Build(in, MethodOAPT)
	in.NoSplitFilter = true
	b := Build(in, MethodOAPT)
	if a.SumDepth() != b.SumDepth() || a.NumLeaves() != b.NumLeaves() {
		t.Fatalf("filter changed the result: %d/%d vs %d/%d",
			a.SumDepth(), a.NumLeaves(), b.SumDepth(), b.NumLeaves())
	}
}

func TestWeightedBuildMovesHotAtomsUp(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := bdd.New(16)
	preds := randomPrefixPreds(d, 22, 16, rng)
	in := buildInput(d, preds, rng)
	uniform := Build(in, MethodOAPT)

	// Make a few atoms very hot.
	weights := make([]float64, in.Atoms.N())
	for i := range weights {
		weights[i] = 1
	}
	hot := map[int32]bool{}
	for i := 0; i < 3 && i < in.Atoms.N(); i++ {
		a := int32(rng.Intn(in.Atoms.N()))
		weights[a] = 1000
		hot[a] = true
	}
	in.Weights = weights
	weighted := Build(in, MethodOAPT)
	if err := weighted.Validate(in.Live); err != nil {
		t.Fatal(err)
	}
	wf := func(a int32) float64 { return weights[a] }
	uw, ww := uniform.WeightedAverageDepth(wf), weighted.WeightedAverageDepth(wf)
	if ww > uw {
		t.Fatalf("weighted build has worse weighted depth (%.3f) than uniform (%.3f)", ww, uw)
	}
}

func TestDepthHistogramAndStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := bdd.New(16)
	preds := randomPrefixPreds(d, 15, 16, rng)
	in := buildInput(d, preds, rng)
	tree := Build(in, MethodOAPT)
	h := tree.DepthHistogram()
	total, sum := 0, 0
	for depth, c := range h {
		total += c
		sum += depth * c
	}
	if total != tree.NumLeaves() {
		t.Fatalf("histogram total %d != leaves %d", total, tree.NumLeaves())
	}
	if sum != tree.SumDepth() {
		t.Fatalf("histogram sum %d != SumDepth %d", sum, tree.SumDepth())
	}
	if tree.MaxDepth() != len(h)-1 {
		t.Fatalf("MaxDepth %d != histogram top %d", tree.MaxDepth(), len(h)-1)
	}
	if tree.MaxDepth() > len(preds) {
		t.Fatal("depth cannot exceed predicate count")
	}
}

func TestVisitCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := bdd.New(16)
	preds := randomPrefixPreds(d, 10, 16, rng)
	in := buildInput(d, preds, rng)
	tree := Build(in, MethodOAPT)
	const q = 500
	for i := 0; i < q; i++ {
		pkt := []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
		tree.Classify(pkt)
	}
	var total uint64
	tree.Leaves(func(n *Node) { total += tree.Visits(n) })
	if total != q {
		t.Fatalf("visit total %d, want %d", total, q)
	}
	tree.ResetVisits()
	total = 0
	tree.Leaves(func(n *Node) { total += tree.Visits(n) })
	if total != 0 {
		t.Fatal("ResetVisits left counters")
	}
	tree.CountVisits = false
	tree.Classify([]byte{0, 0})
	tree.Leaves(func(n *Node) { total += tree.Visits(n) })
	if total != 0 {
		t.Fatal("counter incremented while disabled")
	}
}

func TestEmptyPredicateSet(t *testing.T) {
	d := bdd.New(8)
	in := Input{D: d, Atoms: predicate.Compute(d, nil)}
	tree := Build(in, MethodOrder)
	if tree.NumLeaves() != 1 || !tree.Root().IsLeaf() {
		t.Fatal("empty predicate set must give a single-leaf tree")
	}
	leaf := tree.Classify([]byte{0xAB})
	if leaf.AtomID != 0 {
		t.Fatal("everything classifies to atom 0")
	}
}

func TestSetHelpers(t *testing.T) {
	a := predicate.AtomSetOf(1, 3, 5, 7, 9)
	b := predicate.AtomSetOf(3, 4, 5, 10)
	if got := a.Intersect(b).Slice(); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.IntersectLen(b); got != 2 {
		t.Fatalf("IntersectLen = %d", got)
	}
	if got := a.Diff(b).Slice(); len(got) != 3 || got[0] != 1 || got[1] != 7 || got[2] != 9 {
		t.Fatalf("Diff = %v", got)
	}
	if got := predicate.EmptyAtomSet.Intersect(b); !got.Empty() {
		t.Fatalf("Intersect(empty) = %v", got)
	}
	if got := a.Diff(predicate.EmptyAtomSet); got.Len() != a.Len() {
		t.Fatalf("Diff(empty) = %v", got)
	}
}

func TestSuperiorRelationAcyclicOnRandomSets(t *testing.T) {
	// The paper proves the superior/inferior relation acyclic by
	// exhaustion; spot-check no 3-cycle arises on random candidate sets.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		d := bdd.New(10)
		preds := randomPrefixPreds(d, 3, 10, rng)
		in := buildInput(d, preds, rng)
		b := &builder{in: in, t: &Tree{D: d}}
		all := predicate.AtomRange(0, int32(in.Atoms.N()))
		r := make([]predicate.AtomSet, 3)
		for i := range r {
			r[i] = all.Intersect(in.Atoms.RSet(i))
		}
		s01 := b.superior(r[0], r[1], all)
		s12 := b.superior(r[1], r[2], all)
		s20 := b.superior(r[2], r[0], all)
		if s01 < 0 && s12 < 0 && s20 < 0 {
			t.Fatalf("trial %d: superior cycle p0→p1→p2→p0", trial)
		}
		if s01 > 0 && s12 > 0 && s20 > 0 {
			t.Fatalf("trial %d: inferior cycle", trial)
		}
	}
}
