package aptree

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"apclassifier/internal/bdd"
)

// TestSnapshotPinnedEpochUnderChurn is the contract test for epoch
// pinning: a snapshot taken at any moment must keep answering exactly as
// it did at capture time, from any number of goroutines, while the live
// manager absorbs updates, explicit reconstructions and the
// auto-reconstruction policy. Run under -race this exercises the
// publish-under-lock / load-without-lock discipline end to end.
func TestSnapshotPinnedEpochUnderChurn(t *testing.T) {
	const (
		numVars = 32
		readers = 4
		rounds  = 300
		updates = 50
	)
	m := NewManager(numVars, MethodQuick)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 10; i++ {
		bits := uint64(rng.Uint32()) >> 16
		m.AddPredicate(func(d *bdd.DD) bdd.Ref {
			return d.FromPrefix(0, bits, 1+rng.Intn(16), numVars)
		})
	}
	trace := make([][]byte, 64)
	for i := range trace {
		trace[i] = make([]byte, numVars/8)
		rng.Read(trace[i])
	}
	stop := m.AutoReconstruct(6, time.Millisecond, true)
	defer stop()

	var wg sync.WaitGroup
	done := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		wrng := rand.New(rand.NewSource(29))
		var ids []int32
		for i := 0; i < updates; i++ {
			if len(ids) > 3 && wrng.Intn(3) == 0 {
				k := wrng.Intn(len(ids))
				m.DeletePredicate(ids[k])
				ids = append(ids[:k], ids[k+1:]...)
			} else {
				bits := uint64(wrng.Uint32()) >> 16
				id := m.AddPredicate(func(d *bdd.DD) bdd.Ref {
					return d.FromPrefix(0, bits, 1+wrng.Intn(16), numVars)
				})
				ids = append(ids, id)
			}
			if i%7 == 0 {
				m.Reconstruct(i%14 == 0)
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Pin one epoch and classify the whole trace twice: a
				// pinned snapshot must be deterministic no matter what the
				// writer publishes meanwhile.
				s := m.Snapshot()
				v := s.Version()
				first := make([]*Node, len(trace))
				for j, pkt := range trace {
					leaf, sv := s.Classify(pkt)
					if leaf == nil || !leaf.IsLeaf() {
						t.Error("snapshot Classify returned a non-leaf")
						return
					}
					if sv != v {
						t.Errorf("snapshot version drifted: %d then %d", v, sv)
						return
					}
					first[j] = leaf
				}
				for j, pkt := range trace {
					if leaf, _ := s.Classify(pkt); leaf != first[j] {
						t.Error("pinned snapshot changed its answer between passes")
						return
					}
					// The epoch's flat core and pointer tree must agree from
					// any goroutine, under every interleaving of publishes:
					// the flat form is compiled inside the same critical
					// section that captured the snapshot.
					if leaf, _ := s.ClassifyPointer(pkt); leaf != first[j] {
						t.Error("pointer engine disagrees with the pinned epoch's flat answer")
						return
					}
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()

	// Halt the reconstruction policy before validating: Validate runs BDD
	// operations on the live diagram and must not race a background swap.
	stop()

	if err := m.Tree().Validate(m.LiveIDs()); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotIsLiveConsistentWithEpoch checks the liveness bitset riding
// in each snapshot: a predicate tombstoned after the snapshot was pinned
// must still read live in the old epoch while reading dead through the
// manager (and the next snapshot).
func TestSnapshotIsLiveConsistentWithEpoch(t *testing.T) {
	m := NewManager(16, MethodQuick)
	rng := rand.New(rand.NewSource(31))
	var ids []int32
	for i := 0; i < 6; i++ {
		bits := uint64(rng.Uint32()) >> 20
		ids = append(ids, m.AddPredicate(func(d *bdd.DD) bdd.Ref {
			return d.FromPrefix(0, bits, 1+rng.Intn(8), 16)
		}))
	}
	old := m.Snapshot()
	if !old.IsLive(ids[2]) {
		t.Fatal("freshly added predicate not live in pinned snapshot")
	}
	m.DeletePredicate(ids[2])
	if !old.IsLive(ids[2]) {
		t.Fatal("tombstone leaked into the already-pinned epoch")
	}
	if m.IsLive(ids[2]) {
		t.Fatal("manager still reports a tombstoned predicate live")
	}
	if m.Snapshot().IsLive(ids[2]) {
		t.Fatal("new epoch still reports a tombstoned predicate live")
	}
}
