//go:build apdebug

// Debug-tagged flat-core checks: publish compiles the flat classifier and
// captures the snapshot in one critical section, so a snapshot must never
// serve a flat form compiled from another epoch's tree or view. The
// sanitizer that enforces this at classify time is exercised both ways —
// a healthy epoch passes, a hand-crafted stale-compile panics.
package aptree

import (
	"math/rand"
	"testing"

	"apclassifier/internal/bdd"
)

func TestApdebugFlatEpochMismatchPanics(t *testing.T) {
	m := NewManager(16, MethodQuick)
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 8; i++ {
		bits := uint64(rng.Uint32()) >> 20
		m.AddPredicate(func(d *bdd.DD) bdd.Ref {
			return d.FromPrefix(0, bits, 1+rng.Intn(10), 16)
		})
	}
	old := m.Snapshot()
	m.Reconstruct(false)
	cur := m.Snapshot()
	if old.Flat() == nil || cur.Flat() == nil {
		t.Fatal("expected flat forms on both epochs")
	}

	pkt := []byte{0xA5, 0x3C}
	// Healthy epochs, retired or live, classify without tripping.
	if leaf, _ := old.Classify(pkt); leaf == nil {
		t.Fatal("retired epoch failed to classify")
	}
	if leaf, _ := cur.Classify(pkt); leaf == nil {
		t.Fatal("live epoch failed to classify")
	}

	// A snapshot serving the retired epoch's flat form — the stale-compile
	// bug debugCheckFlat exists to catch — must panic at classify time.
	bad := *cur
	bad.flat = old.flat
	defer func() {
		if recover() == nil {
			t.Fatal("classify through a stale flat form did not panic under apdebug")
		}
	}()
	bad.Classify(pkt)
}
