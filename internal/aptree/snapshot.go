package aptree

import (
	"sync/atomic"

	"apclassifier/internal/bdd"
	"apclassifier/internal/predicate"
)

// Snapshot is one immutable epoch of classifier state: an AP Tree, a
// frozen evaluation view of the BDD it labels its nodes with, and the
// predicate-liveness set, all captured together under the manager's
// write lock and published through a single atomic pointer.
//
// Everything reachable from a Snapshot is immutable, so any number of
// goroutines may Classify through one concurrently — with updates, with
// reconstructions, and with each other — without any lock. A query that
// loads the snapshot pointer once is pinned to that epoch: stage 1 and
// stage 2 see one consistent tree, DD and liveness set even if the
// manager swaps several times mid-query. A retained Snapshot stays
// valid across swaps indefinitely; its DD view is never garbage
// collected (the manager abandons a retired DD wholesale instead of
// reclaiming nodes from it — see bdd.View on the GC-at-swap rule).
//
// Visit counters are the one deliberate exception to immutability:
// Classify increments the per-atom counter store shared with the live
// lineage, so queries answered from an old epoch still inform the
// distribution-aware rebuild (§V-D).
type Snapshot struct {
	tree *Tree
	view *bdd.View
	// flat is the cache-packed classify core compiled for this epoch at
	// publish time, or nil when flat compilation is off (APC_FLAT=0 /
	// Manager.SetFlatCompile(false)). When present it is the stage-1
	// engine; the pointer tree stays the reference implementation.
	flat *Flat
	// live has bit id set iff predicate id was not tombstoned at capture
	// time. Out-of-range IDs (added after the capture) read as dead,
	// which keeps stage 2 consistent with the pinned tree.
	live    predicate.Bitset
	numLive int
	version uint64

	count  bool
	visits visitView

	// atomView caches the lazily built per-epoch atom index (see
	// Snapshot.Atoms in atomview.go). CAS-installed; benign build race.
	atomView atomic.Pointer[AtomView]
}

// classifyPointer is the pointer-tree stage-1 walk, visit counting
// excluded: node BDDs evaluate through the frozen view, so a writer
// growing the live DD never races with it.
func (s *Snapshot) classifyPointer(pkt []byte) *Node {
	n := s.tree.root
	v := s.view
	preds := s.tree.preds
	for !n.IsLeaf() {
		if v.EvalBits(preds[n.Pred], pkt) {
			n = n.T
		} else {
			n = n.F
		}
	}
	return n
}

// Classify runs the stage-1 search against this epoch and returns the
// leaf together with the epoch's version. It takes no lock and does not
// allocate. When the epoch carries a compiled flat core the descent runs
// over it; otherwise (flat compilation disabled) the pointer tree is
// walked directly. Either way the answer and the visit accounting are
// identical.
func (s *Snapshot) Classify(pkt []byte) (*Node, uint64) {
	var n *Node
	if f := s.flat; f != nil {
		s.debugCheckFlat()
		n = f.Classify(pkt)
	} else {
		n = s.classifyPointer(pkt)
	}
	if s.count {
		s.visits.add(n.AtomID)
	}
	return n, s.version
}

// ClassifyPointer runs stage 1 through the pointer tree regardless of
// whether a flat core was compiled — the reference engine the
// differential fuzz and churn suites pit the flat form against. It does
// no visit accounting, so differential probing never skews the §V-D
// distribution statistics.
func (s *Snapshot) ClassifyPointer(pkt []byte) (*Node, uint64) {
	return s.classifyPointer(pkt), s.version
}

// Flat returns the epoch's compiled flat classify core, or nil when flat
// compilation was disabled at publish time.
func (s *Snapshot) Flat() *Flat { return s.flat }

// IsLive reports whether predicate id was live in this epoch.
func (s *Snapshot) IsLive(id int32) bool { return s.live.Get(int(id)) }

// Version reports the reconstruction epoch this snapshot belongs to.
func (s *Snapshot) Version() uint64 { return s.version }

// NumLive reports the number of live predicates in this epoch.
func (s *Snapshot) NumLive() int { return s.numLive }

// Tree returns the epoch's AP Tree. The tree (like everything else
// reachable from the snapshot) must be treated as read-only.
func (s *Snapshot) Tree() *Tree { return s.tree }

// View returns the frozen BDD evaluation view, whose memory statistics
// describe the DD as of this epoch.
func (s *Snapshot) View() *bdd.View { return s.view }
