package aptree

import (
	"bytes"
	"math/rand"
	"testing"

	"apclassifier/internal/bdd"
	"apclassifier/internal/predicate"
)

// cloneStructure deep-copies a node structure, mapping leaf BDD refs
// through refMap — the shape of work the checkpoint decoder performs.
func cloneStructure(n *Node, refMap map[bdd.Ref]bdd.Ref) *Node {
	c := &Node{Pred: n.Pred}
	if n.IsLeaf() {
		c.AtomID = n.AtomID
		c.BDD = refMap[n.BDD]
		c.Member = n.Member.Clone(64 * len(n.Member))
		return c
	}
	c.T = cloneStructure(n.T, refMap)
	c.F = cloneStructure(n.F, refMap)
	return c
}

// TestRestoreRoundTrip rebuilds a manager from serialized parts — the
// exact sequence the checkpoint restore path runs: View.Save the epoch's
// BDD roots, Load them into a fresh DD, re-link the node structure, then
// RestoreRegistry/RestoreTree/NewRestoredManager — and checks the result
// classifies identically and stays fully updatable.
func TestRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := NewManager(16, MethodOAPT)
	var ids []int32
	for i := 0; i < 24; i++ {
		ids = append(ids, addRandomPredicate(m, rng))
	}
	m.Reconstruct(false)
	for i := 0; i < 6; i++ {
		ids = append(ids, addRandomPredicate(m, rng))
	}
	// Tombstones that still route in the live tree.
	m.DeletePredicate(ids[2])
	m.DeletePredicate(ids[25])

	snap := m.Snapshot()
	tree := snap.Tree()

	// Serialize the epoch's roots: every predicate slot, then every leaf
	// atom, in deterministic order.
	roots := make([]bdd.Ref, 0, tree.NumPreds()+tree.NumLeaves())
	for id := 0; id < tree.NumPreds(); id++ {
		roots = append(roots, tree.Pred(int32(id)))
	}
	var leafOld []bdd.Ref
	tree.Leaves(func(n *Node) { leafOld = append(leafOld, n.BDD) })
	roots = append(roots, leafOld...)

	var buf bytes.Buffer
	if err := snap.View().Save(&buf, roots...); err != nil {
		t.Fatal(err)
	}
	d2 := bdd.New(16)
	loaded, err := d2.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(roots) {
		t.Fatalf("loaded %d roots, saved %d", len(loaded), len(roots))
	}

	preds2 := loaded[:tree.NumPreds()]
	refMap := make(map[bdd.Ref]bdd.Ref, len(leafOld))
	for i, old := range leafOld {
		refMap[old] = loaded[tree.NumPreds()+i]
	}
	live := make([]bool, tree.NumPreds())
	for id := range live {
		live[id] = snap.IsLive(int32(id))
	}

	reg2, err := RestoreRegistry(preds2, live)
	if err != nil {
		t.Fatal(err)
	}
	tree2, err := RestoreTree(d2, cloneStructure(tree.Root(), refMap), preds2, tree.NextAtom())
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewRestoredManager(d2, reg2, tree2, m.Method(), snap.Version())

	if m2.Version() != snap.Version() {
		t.Fatalf("restored version %d, want %d", m2.Version(), snap.Version())
	}
	if m2.NumLive() != m.NumLive() {
		t.Fatalf("restored live count %d, want %d", m2.NumLive(), m.NumLive())
	}
	if tree2.NumLeaves() != tree.NumLeaves() {
		t.Fatalf("restored leaf count %d, want %d", tree2.NumLeaves(), tree.NumLeaves())
	}
	if err := tree2.CheckLeafPartition(); err != nil {
		t.Fatal(err)
	}

	checkSame := func() {
		for i := 0; i < 500; i++ {
			pkt := []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
			a, _ := m.Classify(pkt)
			b, _ := m2.Classify(pkt)
			for _, id := range ids {
				if !m.IsLive(id) {
					continue
				}
				if a.Member.Get(int(id)) != b.Member.Get(int(id)) {
					t.Fatalf("membership bit %d differs for packet %x", id, pkt)
				}
			}
		}
	}
	checkSame()

	// The restored manager must be a full peer: updatable, rebuildable,
	// with version numbers continuing past the restored epoch.
	v := m2.Version()
	id := addRandomPredicate(m2, rng)
	if !m2.IsLive(id) {
		t.Fatal("predicate added after restore is not live")
	}
	m2.Reconstruct(true)
	if m2.Version() != v+1 {
		t.Fatalf("version after post-restore reconstruct = %d, want %d", m2.Version(), v+1)
	}
	if err := m2.Tree().Validate(m2.LiveIDs()); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreTreeRejectsBadStructure(t *testing.T) {
	d := bdd.New(8)
	p := d.Retain(d.FromPrefix(0, 0x80, 1, 8))
	np := d.Retain(d.Not(p))
	leaf := func(atom int32, ref bdd.Ref) *Node {
		mb := predicate.NewBitset(1)
		return &Node{Pred: -1, AtomID: atom, BDD: ref, Member: mb}
	}
	cases := []struct {
		name  string
		root  *Node
		preds []bdd.Ref
		next  int32
	}{
		{"nil root", nil, []bdd.Ref{p}, 1},
		{"atom out of range", leaf(3, bdd.True), []bdd.Ref{p}, 1},
		{"negative atom", leaf(-1, bdd.True), []bdd.Ref{p}, 1},
		{"false leaf bdd", leaf(0, bdd.False), []bdd.Ref{p}, 1},
		{"duplicate atom", &Node{Pred: 0, T: leaf(0, p), F: leaf(0, np)}, []bdd.Ref{p}, 2},
		{"pred out of range", &Node{Pred: 5, T: leaf(0, p), F: leaf(1, np)}, []bdd.Ref{p}, 2},
		{"pred absent", &Node{Pred: 0, T: leaf(0, p), F: leaf(1, np)}, []bdd.Ref{bdd.False}, 2},
		{"missing child", &Node{Pred: 0, T: leaf(0, p)}, []bdd.Ref{p}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := RestoreTree(d, tc.root, tc.preds, tc.next); err == nil {
				t.Fatal("RestoreTree accepted invalid structure")
			}
		})
	}
	// And the well-formed version of the same shape is accepted.
	tr, err := RestoreTree(d, &Node{Pred: 0, T: leaf(0, p), F: leaf(1, np)}, []bdd.Ref{p}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 2 || tr.Root().Depth != 0 || tr.Root().T.Depth != 1 {
		t.Fatal("restored tree shape wrong")
	}
}

func TestRestoreRegistryRejects(t *testing.T) {
	if _, err := RestoreRegistry([]bdd.Ref{bdd.True}, []bool{true, false}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := RestoreRegistry([]bdd.Ref{bdd.False}, []bool{true}); err == nil {
		t.Fatal("live slot with false BDD accepted")
	}
	r, err := RestoreRegistry([]bdd.Ref{bdd.True, bdd.False, bdd.True}, []bool{true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLive() != 1 || r.NumIDs() != 3 || !r.IsLive(0) || r.IsLive(1) || r.IsLive(2) {
		t.Fatal("restored registry counts wrong")
	}
}

func TestPublishNotify(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewManager(16, MethodOAPT)
	ch := m.PublishNotify()
	select {
	case <-ch:
		t.Fatal("signal before any publish")
	default:
	}
	addRandomPredicate(m, rng)
	select {
	case <-ch:
	default:
		t.Fatal("no signal after update publish")
	}
	// A burst of publishes with nobody draining coalesces into exactly one
	// pending signal; publishers never block.
	for i := 0; i < 5; i++ {
		addRandomPredicate(m, rng)
	}
	m.Reconstruct(false)
	<-ch
	select {
	case <-ch:
		t.Fatal("coalesced burst left more than one pending signal")
	default:
	}
	// Reconstruction swaps signal too.
	m.Reconstruct(false)
	select {
	case <-ch:
	default:
		t.Fatal("no signal after reconstruction swap")
	}
}
