package aptree

import (
	"sync/atomic"

	"apclassifier/internal/obs"
)

// Process-wide aptree counters. Everything here records on the update
// and rebuild paths, which already hold the manager's write lock — the
// lock-free Classify path records nothing (its totals are derived at
// scrape time from the striped visit counters, see
// Manager.TotalClassifications).
var (
	mUpdates = obs.Default.Counter("apc_aptree_updates_total",
		"Predicate update transactions applied to the live AP Tree.")
	mUpdateDur = obs.Default.Histogram("apc_aptree_update_duration_seconds",
		"Wall time of one update transaction (build + splice + republish).", obs.DefBuckets)
	mRebuildDur = obs.Default.Histogram("apc_aptree_rebuild_duration_seconds",
		"Wall time of one full reconstruction (§VI-B), journal replay and swap included.", obs.DefBuckets)
	mSwaps = obs.Default.Counter("apc_aptree_snapshot_swaps_total",
		"Reconstruction swaps: times a freshly rebuilt tree replaced the live one.")
	mPublishes = obs.Default.Counter("apc_aptree_snapshot_publishes_total",
		"Snapshot publications (every update or swap republishes the epoch pointer).")

	// Delta-engine counters: structural work done by incremental predicate
	// transactions (Tx.Add splits, Tx.Remove merges). Recorded once per
	// Update under the write lock, from the transaction's DeltaStats.
	mDeltaTouched = obs.Default.Counter("apc_delta_touched_leaves_total",
		"Leaves copied or created by delta transactions (the copy-on-write footprint).")
	mDeltaSplits = obs.Default.Counter("apc_delta_splits_total",
		"Atom splits performed by delta transactions (AddPredicate on a straddling leaf).")
	mDeltaMerges = obs.Default.Counter("apc_delta_merges_total",
		"Atom merges performed by delta transactions (RemovePredicate joining sibling leaves).")
	mDeltaApplyDur = obs.Default.Histogram("apc_delta_apply_duration_seconds",
		"Wall time of one delta transaction (structural splice + republish).", obs.DefBuckets)

	// Flat classify-core counters: compile work done at publish time and
	// the shape of the latest compiled form. All recorded inside
	// publishLocked under the write lock; the flat descent itself, like
	// the pointer descent, records nothing.
	mFlatBuilds = obs.Default.Counter("apc_flat_builds_total",
		"Flat classify cores compiled (one per snapshot publication while enabled).")
	mFlatBuildDur = obs.Default.Histogram("apc_flat_build_duration_seconds",
		"Wall time to compile one epoch's flat classify core.", obs.DefBuckets)
	mFlatNodes = obs.Default.Gauge("apc_flat_nodes",
		"Internal nodes in the latest compiled flat classify core.")
	mFlatBytes = obs.Default.Gauge("apc_flat_bytes",
		"Compiled footprint of the latest flat core: node array plus predicate arenas.")
	mFlatMask = obs.Default.Gauge("apc_flat_mask_nodes",
		"Flat nodes lowered to masked byte compares (minterm predicates).")
	mFlatTable = obs.Default.Gauge("apc_flat_table_nodes",
		"Flat nodes lowered to truth-table bit tests over their probed bits.")
	mFlatCubes = obs.Default.Gauge("apc_flat_cube_nodes",
		"Flat nodes lowered to rule-cube lists (unions of masked byte compares).")
	mFlatFallback = obs.Default.Gauge("apc_flat_fallback_nodes",
		"Flat nodes still evaluating their predicate through the frozen BDD view.")
)

// total sums every counter across all chunks and stripes: the number of
// counted classifications served by this tree lineage. The manager folds
// it into the retired-visits accumulator at swap time so the derived
// apc_aptree_classify_total metric never touches the query path.
func (c *visitCounters) total() uint64 {
	var n uint64
	for _, ch := range c.chunks {
		s := *ch
		for i := range s {
			n += atomic.LoadUint64(&s[i])
		}
	}
	return n
}

// TotalClassifications reports how many stage-1 classifications this
// manager has served (while visit counting was enabled, the default):
// visits banked from retired tree lineages plus the live lineage's
// striped counters. The count is derived entirely at read time — the
// query path does no metrics work — so it is the scrape-time source for
// the apc_aptree_classify_total counter. See the retiredVisits field
// for the undercount caveat on epochs retired mid-query.
func (m *Manager) TotalClassifications() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.retiredVisits + m.tree.visits.total()
}
